// Package volap is VelocityOLAP: a distributed real-time OLAP system for
// high-velocity data, reproducing Dehne, Robillard, Rau-Chaplin and Burke,
// "VOLAP: A Scalable Distributed System for Real-Time OLAP with High
// Velocity Data" (IEEE CLUSTER 2016).
//
// A VOLAP cluster consists of worker nodes storing data shards in Hilbert
// PDC trees, server nodes that route client insertions and aggregate
// queries through a local image of the shard map, a Zookeeper-style
// coordination service holding the global system image, and a manager
// process that load-balances shards across workers in real time. This
// package boots all of them — either embedded in one process (inproc
// transport) or as a real multi-process deployment over TCP (see cmd/) —
// and provides the client API.
//
// Quick start:
//
//	cluster, _ := volap.Start(volap.Options{Schema: volap.TPCDSSchema()})
//	defer cluster.Stop()
//	client, _ := cluster.Client()
//	_ = client.InsertNoCtx(volap.Item{Coords: []uint64{...}, Measure: 9.99})
//	res, _ := client.QueryNoCtx(volap.AllRect(cluster.Schema()))
//
// Every client operation also has a context-first form (Insert, Query,
// ...) that supports cancellation and deadlines; the NoCtx variants are
// thin wrappers over context.Background() bounded by the session's
// request timeout.
package volap

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/hierarchy"
	"repro/internal/image"
	"repro/internal/keys"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/netmsg"
	"repro/internal/rollup"
	"repro/internal/server"
	"repro/internal/tpcds"
	"repro/internal/worker"
)

// Re-exported data model types: these aliases are the public face of the
// internal packages, so downstream users never import internal paths.
type (
	// Item is one data record: a leaf ordinal per dimension plus a measure.
	Item = core.Item
	// Aggregate is a query result: COUNT, SUM, MIN, MAX.
	Aggregate = core.Aggregate
	// Rect is an aggregate query region: one hierarchy-value interval per
	// dimension.
	Rect = keys.Rect
	// Interval is an inclusive range of leaf ordinals in one dimension.
	Interval = hierarchy.Interval
	// Schema is an ordered set of hierarchical dimensions.
	Schema = hierarchy.Schema
	// Dimension is one hierarchy of levels.
	Dimension = hierarchy.Dimension
	// Level describes one level of a dimension hierarchy.
	Level = hierarchy.Level
	// StoreKind selects the shard data structure.
	StoreKind = core.StoreKind
	// KeyKind selects MBR or MDS keys.
	KeyKind = keys.Kind
	// QueryInfo describes the distributed work a query performed.
	QueryInfo = server.QueryInfo
	// ShardID identifies a shard globally.
	ShardID = image.ShardID
	// BalanceStats counts load-balancer activity.
	BalanceStats = manager.Stats
	// ClusterStats aggregates per-worker shard placement, item counts and
	// operation latency summaries (see Client.ClusterStats).
	ClusterStats = server.ClusterStats
	// WorkerStats is one worker's slice of ClusterStats.
	WorkerStats = server.WorkerStats
	// ReplicaInfo describes one standby shard copy a worker hosts as a
	// replication follower (see WorkerStats.Replicas).
	ReplicaInfo = worker.ReplicaInfo
	// ShipLink describes one outgoing replication stream of a primary
	// (see WorkerStats.ShipLinks).
	ShipLink = worker.ShipLink
	// ReadPreference selects which copies of a shard a query may read:
	// ReadLeader (default) or ReadPreferReplica.
	ReadPreference = server.ReadPreference
	// QueryOptions tunes one query's read path (see Client.QueryWith).
	QueryOptions = server.QueryOptions
	// RollupDef selects a materialized rollup: one retained hierarchy
	// depth per dimension (0 = aggregated away). See Options.Rollups.
	RollupDef = rollup.Def
	// OpLatency summarizes one operation's latency distribution.
	OpLatency = worker.OpLatency
	// Registry collects named counters, gauges and histograms and exports
	// them as Prometheus text (see internal/obs for the HTTP endpoint).
	Registry = metrics.Registry
	// TraceEvent is one entry of a component's request-trace ring.
	TraceEvent = metrics.TraceEvent
	// FaultInjector intercepts intra-cluster RPC traffic (drop, delay,
	// duplicate, sever, partition) for chaos testing; wire one in via
	// Options.Fault.
	FaultInjector = netmsg.FaultInjector
	// FaultRule matches fault points and prescribes an action.
	FaultRule = netmsg.FaultRule
	// FaultPoint identifies one interception site (party, peer, op, kind).
	FaultPoint = netmsg.FaultPoint
	// FaultAction is what an injector does with one frame or dial.
	FaultAction = netmsg.FaultAction
	// DurabilityMode selects the worker persistence contract: off (the
	// paper's pure in-memory system), async (ack after the in-memory
	// apply, background group commit), or sync (ack only after an fsync
	// covers the insert's WAL record).
	DurabilityMode = durable.Mode
	// RecoveryReport says what a restarted worker rebuilt from its data
	// directory: recovered shards, replayed WAL records/bytes, truncated
	// torn tails, honored release tombstones, and wall-clock duration.
	RecoveryReport = durable.Recovery
)

// Durability modes.
const (
	DurabilityOff   = durable.ModeOff
	DurabilityAsync = durable.ModeAsync
	DurabilitySync  = durable.ModeSync
)

// Read preferences for queries (see ClientOptions.ReadPreference and
// Client.QueryWith).
const (
	// ReadLeader routes every shard read to the shard's primary.
	ReadLeader = server.ReadLeader
	// ReadPreferReplica spreads shard reads round-robin across each
	// shard's copies (followers and leader), falling back to the leader
	// for copies that are unreachable or lagging beyond the staleness
	// bound.
	ReadPreferReplica = server.ReadPreferReplica
)

// DefaultMaxReplicaLag is the staleness bound, in shipped-but-unapplied
// WAL records, a ReadPreferReplica query tolerates unless it sets its
// own.
const DefaultMaxReplicaLag = server.DefaultMaxReplicaLag

// Answer sources reported by QueryInfo.Source(): every searched shard
// answered from a materialized rollup table, none did, or some mix.
const (
	SourceTree   = server.SourceTree
	SourceRollup = server.SourceRollup
	SourceMixed  = server.SourceMixed
)

// ParseRollupDef parses a rollup specification against a schema:
// "dim:depth" pairs separated by commas, dimensions by name or index,
// omitted dimensions aggregated away ("all" = everything aggregated to
// one cell). Example: "time:2,location:1".
func ParseRollupDef(s *Schema, spec string) (RollupDef, error) {
	return rollup.ParseDef(s, spec)
}

// Fault actions and kinds, re-exported for rule construction.
const (
	FaultPass      = netmsg.FaultPass
	FaultDrop      = netmsg.FaultDrop
	FaultDelay     = netmsg.FaultDelay
	FaultDuplicate = netmsg.FaultDuplicate
	FaultSever     = netmsg.FaultSever
)

// NewFaultInjector returns a fault injector whose probabilistic decisions
// are driven by the given seed (deterministic schedules use Count-limited
// rules instead of probabilities).
func NewFaultInjector(seed int64) *FaultInjector { return netmsg.NewFaultInjector(seed) }

// Shard store kinds (see the paper §III-D).
const (
	StoreArray      = core.StoreArray
	StorePDC        = core.StorePDC
	StoreHilbertPDC = core.StoreHilbertPDC
)

// Key kinds.
const (
	MBR = keys.MBR
	MDS = keys.MDS
)

// NewDimension builds a dimension from its levels.
func NewDimension(name string, levels ...Level) (*Dimension, error) {
	return hierarchy.NewDimension(name, levels...)
}

// NewSchema builds a schema from dimensions.
func NewSchema(dims ...*Dimension) (*Schema, error) {
	return hierarchy.NewSchema(dims...)
}

// TPCDSSchema returns the 8-dimension TPC-DS schema of the paper's
// Figure 1.
func TPCDSSchema() *Schema { return tpcds.Schema() }

// Generator produces the paper's TPC-DS-style workload: skewed items and
// aggregate queries spanning a wide coverage range.
type Generator = tpcds.Generator

// Band is a query coverage band (§IV): low < 33%, medium 33-66%, high > 66%.
type Band = tpcds.Band

// Coverage bands.
const (
	BandLow    = tpcds.Low
	BandMedium = tpcds.Medium
	BandHigh   = tpcds.High
)

// NewGenerator builds a deterministic workload generator over the schema
// with the given power-law skew (the paper-scale experiments use 1.1;
// 0 = uniform).
func NewGenerator(schema *Schema, seed int64, skew float64) *Generator {
	return tpcds.NewGenerator(schema, seed, skew)
}

// BinnedQueries is a pool of queries grouped by true coverage band.
type BinnedQueries = tpcds.BinnedQueries

// AllRect returns the query covering the entire space.
func AllRect(s *Schema) Rect { return keys.AllRect(s) }

// NewRect builds a query region from per-dimension intervals.
func NewRect(ivs ...Interval) Rect { return keys.NewRect(ivs...) }

// Options configures a cluster.
type Options struct {
	// Schema is required.
	Schema *Schema
	// Store selects the shard data structure (default Hilbert PDC tree).
	Store StoreKind
	// Keys selects the key representation (default MDS).
	Keys KeyKind
	// MDSCap, LeafCapacity, DirCapacity tune the shard stores (0 =
	// package defaults).
	MDSCap, LeafCapacity, DirCapacity int

	// Workers and Servers size the cluster (defaults 2 and 1).
	Workers, Servers int
	// ShardsPerWorker sets the initial shard count per worker (default 4).
	ShardsPerWorker int

	// Transport is "inproc" (default; embedded single-process cluster) or
	// "tcp" (every component listens on 127.0.0.1).
	Transport string
	// Name namespaces inproc addresses; autogenerated when empty.
	Name string

	// SyncInterval is the server image synchronization rate (paper
	// default 3 s).
	SyncInterval time.Duration
	// StatsInterval is the worker statistics publication rate (default
	// 500 ms).
	StatsInterval time.Duration
	// BalanceInterval is the manager's pass rate (default 1 s; negative
	// disables the background loop — use RunBalancePass manually).
	BalanceInterval time.Duration
	// BalanceRatio is the max/min load imbalance threshold (default 1.25).
	BalanceRatio float64
	// MinMoveItems suppresses balancing below this absolute gap.
	MinMoveItems uint64
	// MaxShardItems splits any shard beyond this size (0 disables).
	MaxShardItems uint64

	// RequestTimeout bounds every RPC end to end — client→server and
	// server→worker, including retries (default 10 s). A hung worker can
	// therefore never stall a caller past this deadline.
	RequestTimeout time.Duration
	// MaxRetries is how many times a failed shard group is re-sent after
	// an image refresh before an operation reports ErrUnavailable
	// (default 3).
	MaxRetries int

	// SessionTTL is the liveness lease of worker registrations in the
	// coordination service (default 5 s). A worker that stops
	// heartbeating — crash, partition — is reaped after one TTL: its
	// ephemeral registration disappears, servers mark its shards down
	// and degrade gracefully (ErrWorkerDown inserts, Partial queries).
	SessionTTL time.Duration
	// Fault, when non-nil, intercepts every intra-cluster RPC
	// (server→worker, worker→worker, manager→worker, and the serving
	// sides) for chaos testing. Production deployments leave it nil.
	Fault *FaultInjector

	// IngestWorkers sizes each worker's background drain pool for the
	// asynchronous insertion pipeline (§III-E). 0 (the default) keeps
	// inserts synchronous — applied inline on the RPC goroutine, today's
	// behavior byte for byte. With n > 0, inserts acknowledge after
	// buffer + WAL append and n goroutines apply buffered batches.
	IngestWorkers int
	// MaxPendingItems bounds each shard's insertion buffer; inserts
	// beyond it block (backpressure). 0 = worker default (64Ki items).
	// Only meaningful with IngestWorkers > 0.
	MaxPendingItems int
	// QueryParallelism bounds how many shards one query request fans
	// across concurrently inside a worker (0 = GOMAXPROCS, 1 =
	// sequential).
	QueryParallelism int

	// Durability selects the worker persistence contract (default off —
	// byte-identical to the paper's in-memory system). With async or
	// sync, every worker keeps per-shard WALs and snapshots under
	// DataDir/<workerID> and survives KillWorker + RestartWorker with its
	// shards intact.
	Durability DurabilityMode
	// DataDir is the root directory for worker durable state; required
	// when Durability is not off.
	DataDir string

	// Rollups lists materialized rollup cubes every worker maintains per
	// shard: for each definition a table keyed by the retained hierarchy
	// depths, updated incrementally as drains apply batches. Servers
	// route covering aggregate and group-by queries to the cheapest
	// table and fall back to the trees otherwise (QueryInfo.Source
	// reports which path answered). Order matters — workers and servers
	// refer to definitions by index.
	Rollups []RollupDef

	// ReplicationFactor is the total number of copies of each shard,
	// primary included (default 1 = no replication). With RF >= 2 every
	// primary ships its WAL records to RF-1 follower workers before
	// acknowledging an insert; the manager keeps replica sets topped up
	// and promotes the freshest follower when a primary's liveness
	// session expires, so a worker crash costs one image refresh instead
	// of a recovery wait. Requires Durability != off (replication ships
	// the same framed records the WAL persists) and at most Workers
	// copies.
	ReplicationFactor int
}

var clusterSeq atomic.Uint64

func (o *Options) defaults() error {
	if o.Schema == nil {
		return errors.New("volap: Options.Schema is required")
	}
	// The zero values of Store and Keys are the paper's defaults
	// (Hilbert PDC tree with MDS keys), so nothing to fill in there.
	if o.Workers < 0 {
		return fmt.Errorf("volap: Options.Workers = %d must not be negative", o.Workers)
	}
	if o.Servers < 0 {
		return fmt.Errorf("volap: Options.Servers = %d must not be negative", o.Servers)
	}
	if o.Servers > 0 && o.Workers == 0 {
		return errors.New("volap: Options.Servers set without Options.Workers — servers need at least one worker to route to")
	}
	if o.RequestTimeout < 0 {
		return fmt.Errorf("volap: Options.RequestTimeout = %v must not be negative", o.RequestTimeout)
	}
	if o.MaxRetries < 0 {
		return fmt.Errorf("volap: Options.MaxRetries = %d must not be negative", o.MaxRetries)
	}
	if o.Workers == 0 {
		o.Workers = 2
	}
	if o.Servers == 0 {
		o.Servers = 1
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = DefaultMaxRetries
	}
	if o.ShardsPerWorker <= 0 {
		o.ShardsPerWorker = 4
	}
	if o.Transport == "" {
		o.Transport = "inproc"
	}
	if o.Transport != "inproc" && o.Transport != "tcp" {
		return fmt.Errorf("volap: unknown transport %q", o.Transport)
	}
	if o.Name == "" {
		o.Name = fmt.Sprintf("volap%d", clusterSeq.Add(1))
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 3 * time.Second
	}
	if o.StatsInterval <= 0 {
		o.StatsInterval = 500 * time.Millisecond
	}
	if o.BalanceInterval == 0 {
		o.BalanceInterval = time.Second
	}
	if o.BalanceRatio <= 1 {
		o.BalanceRatio = 1.25
	}
	if o.SessionTTL <= 0 {
		o.SessionTTL = 5 * time.Second
	}
	if o.IngestWorkers < 0 {
		return fmt.Errorf("volap: Options.IngestWorkers = %d must not be negative", o.IngestWorkers)
	}
	if o.MaxPendingItems < 0 {
		return fmt.Errorf("volap: Options.MaxPendingItems = %d must not be negative", o.MaxPendingItems)
	}
	if o.QueryParallelism < 0 {
		return fmt.Errorf("volap: Options.QueryParallelism = %d must not be negative", o.QueryParallelism)
	}
	if o.Durability != DurabilityOff && o.DataDir == "" {
		return errors.New("volap: Options.DataDir is required when Durability is enabled")
	}
	if o.ReplicationFactor < 0 {
		return fmt.Errorf("volap: Options.ReplicationFactor = %d must not be negative", o.ReplicationFactor)
	}
	if o.ReplicationFactor == 0 {
		o.ReplicationFactor = 1
	}
	if o.ReplicationFactor > o.Workers {
		return fmt.Errorf("volap: Options.ReplicationFactor = %d exceeds Workers = %d — each copy needs its own worker",
			o.ReplicationFactor, o.Workers)
	}
	if o.ReplicationFactor > 1 && o.Durability == DurabilityOff {
		return errors.New("volap: Options.ReplicationFactor > 1 requires Durability (replication ships WAL records)")
	}
	for i, def := range o.Rollups {
		if err := def.Validate(o.Schema); err != nil {
			return fmt.Errorf("volap: Options.Rollups[%d]: %w", i, err)
		}
	}
	return nil
}

// workerOpts translates the cluster options into per-worker tuning.
func (o *Options) workerOpts() worker.Options {
	return worker.Options{
		IngestWorkers:    o.IngestWorkers,
		MaxPendingItems:  o.MaxPendingItems,
		QueryParallelism: o.QueryParallelism,
	}
}

// Cluster is a running VOLAP deployment.
type Cluster struct {
	opts Options
	cfg  *image.ClusterConfig

	store    *coord.Store
	coordSrv *netmsg.Server

	workers  []*worker.Worker
	sessions map[string]*coord.Session // worker ID -> liveness session
	servers  []*server.Server
	mgr      *manager.Manager

	clientSeq atomic.Uint64
	stopped   atomic.Bool
}

// DefaultOptions returns the paper's configuration over the given schema:
// Hilbert PDC tree shards with MDS keys.
func DefaultOptions(s *Schema) Options {
	return Options{Schema: s, Store: StoreHilbertPDC, Keys: MDS}
}

// Start boots a cluster: coordination service, workers (with initial
// empty shards registered in the global image), servers, and the manager.
func Start(opts Options) (*Cluster, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	c := &Cluster{opts: opts, store: coord.NewStore(), sessions: make(map[string]*coord.Session)}
	c.cfg = &image.ClusterConfig{
		Schema:       opts.Schema,
		Store:        opts.Store,
		Keys:         opts.Keys,
		MDSCap:       opts.MDSCap,
		LeafCapacity: opts.LeafCapacity,
		DirCapacity:  opts.DirCapacity,
		Rollups:      opts.Rollups,
	}
	if _, err := c.store.Create(image.PathConfig, c.cfg.EncodeBytes()); err != nil {
		return nil, err
	}

	fail := func(err error) (*Cluster, error) {
		c.Stop()
		return nil, err
	}

	// Workers first, so servers find shards at startup.
	for i := 0; i < opts.Workers; i++ {
		if _, err := c.startWorker(); err != nil {
			return fail(err)
		}
	}
	for i := 0; i < opts.Servers; i++ {
		id := fmt.Sprintf("s%d", i)
		srv, err := server.New(server.Options{
			ID:             id,
			Coord:          c.coordinator(),
			SyncInterval:   opts.SyncInterval,
			RequestTimeout: opts.RequestTimeout,
			MaxRetries:     opts.MaxRetries,
			Fault:          opts.Fault,
		})
		if err != nil {
			return fail(err)
		}
		if _, err := srv.Listen(c.addrFor("server", id)); err != nil {
			srv.Close()
			return fail(err)
		}
		c.servers = append(c.servers, srv)
	}

	mgr, err := manager.New(manager.Options{
		Coord:             c.coordinator(),
		Interval:          opts.BalanceInterval,
		Ratio:             opts.BalanceRatio,
		MinMoveItems:      opts.MinMoveItems,
		MaxShardItems:     opts.MaxShardItems,
		ReplicationFactor: opts.ReplicationFactor,
		Fault:             opts.Fault,
	})
	if err != nil {
		return fail(err)
	}
	c.mgr = mgr
	if opts.ReplicationFactor > 1 {
		// Seed every shard's replica set synchronously so the cluster is
		// fault tolerant from the first insert, even when the background
		// balance loop is disabled.
		if _, err := mgr.RunReplicationPass(); err != nil {
			return fail(err)
		}
	}
	if opts.BalanceInterval > 0 {
		mgr.Start()
	}
	return c, nil
}

// coordinator returns the coordination handle components should use. The
// embedded store doubles as the in-process coordinator; a TCP deployment
// via cmd/ uses coord.DialClient instead.
func (c *Cluster) coordinator() coord.Coordinator { return c.store }

// addrFor builds a component listen address for the chosen transport.
func (c *Cluster) addrFor(role, id string) string {
	if c.opts.Transport == "tcp" {
		return "127.0.0.1:0"
	}
	return fmt.Sprintf("inproc://%s-%s-%s", c.opts.Name, role, id)
}

// registerWorker opens the worker's liveness session and publishes its
// record as an ephemeral node — immediately (servers need the address)
// and then periodically. If the worker crashes, the session expires
// after SessionTTL and the registration vanishes, firing server watches.
func (c *Cluster) registerWorker(w *worker.Worker, id string) (*coord.Session, error) {
	sess, err := coord.OpenSession(c.coordinator(), c.opts.SessionTTL)
	if err != nil {
		return nil, err
	}
	publish := func(m *image.WorkerMeta) {
		_ = sess.Publish(image.WorkerPath(id), m.EncodeBytes())
	}
	publish(w.Meta())
	w.StartStats(publish, c.opts.StatsInterval)
	c.sessions[id] = sess
	return sess, nil
}

// openDurability attaches a durable log rooted at DataDir/<id> and
// recovers whatever the directory already holds. Returns nil when the
// cluster runs durability-off (the paper's in-memory mode).
func (c *Cluster) openDurability(w *worker.Worker, id string) (*durable.Recovery, error) {
	if c.opts.Durability == DurabilityOff {
		return nil, nil
	}
	d, err := durable.Open(filepath.Join(c.opts.DataDir, id), id, c.opts.Durability, durable.Config{
		Metrics: w.Metrics(),
	})
	if err != nil {
		return nil, err
	}
	return w.AttachDurability(d)
}

// startWorker boots one worker with its initial shards. A durable worker
// whose data directory already holds shards (recovery) keeps those
// instead of creating fresh ones.
func (c *Cluster) startWorker() (string, error) {
	id := fmt.Sprintf("w%d", len(c.workers))
	w := worker.NewWithOptions(id, c.cfg, c.opts.workerOpts())
	w.SetFaults(c.opts.Fault)
	rec, err := c.openDurability(w, id)
	if err != nil {
		w.Close()
		return "", err
	}
	if _, err := w.Listen(c.addrFor("worker", id)); err != nil {
		w.Close()
		return "", err
	}
	if _, err := c.registerWorker(w, id); err != nil {
		w.Close()
		return "", err
	}
	co := c.coordinator()

	if rec != nil && len(rec.Shards) > 0 {
		// Recovered shards: reconcile with the global image instead of
		// minting fresh ones.
		if _, err := manager.ReadoptShards(co, id, w.ShardIDs()); err != nil {
			w.Close()
			return "", err
		}
		c.workers = append(c.workers, w)
		return id, nil
	}

	first, err := manager.AllocShardIDs(co, uint64(c.opts.ShardsPerWorker))
	if err != nil {
		w.Close()
		return "", err
	}
	for i := 0; i < c.opts.ShardsPerWorker; i++ {
		sid := first + image.ShardID(i)
		if err := w.CreateShard(sid); err != nil {
			w.Close()
			return "", err
		}
		meta := &image.ShardMeta{
			ID:     sid,
			Worker: id,
			Key:    keys.NewEmpty(c.cfg.Keys, c.cfg.Schema.NumDims(), c.cfg.MDSCap),
		}
		if _, err := co.CreateOrSet(image.ShardPath(sid), meta.EncodeBytes()); err != nil {
			w.Close()
			return "", err
		}
	}
	c.workers = append(c.workers, w)
	return id, nil
}

// AddWorker elastically adds an empty worker (it receives shards through
// load balancing, §IV-B). New workers get no initial shards.
func (c *Cluster) AddWorker() (string, error) {
	id := fmt.Sprintf("w%d", len(c.workers))
	w := worker.NewWithOptions(id, c.cfg, c.opts.workerOpts())
	w.SetFaults(c.opts.Fault)
	if _, err := w.Listen(c.addrFor("worker", id)); err != nil {
		return "", err
	}
	if _, err := c.registerWorker(w, id); err != nil {
		w.Close()
		return "", err
	}
	c.workers = append(c.workers, w)
	return id, nil
}

// KillWorker simulates a crash of the named worker: the process stops
// serving immediately and its liveness session is abandoned — not
// closed — so the registration lingers until the TTL reaps it, exactly
// like a real failure. Use CoordStore().ExpireSessions with SetClock for
// deterministic expiry in tests.
func (c *Cluster) KillWorker(id string) error {
	var w *worker.Worker
	for _, cand := range c.workers {
		if cand.ID() == id {
			w = cand
			break
		}
	}
	if w == nil {
		return fmt.Errorf("volap: no worker %q", id)
	}
	// Stop the worker first: its stats loop publishes through the
	// session, and a publish after the TTL reaps the node would open a
	// fresh session and resurrect the registration. Crash (not Close)
	// drops any durable log on the floor without flushing, so only
	// acknowledged writes survive — exactly a SIGKILL.
	w.Crash()
	if sess := c.sessions[id]; sess != nil {
		sess.Abandon()
	}
	return nil
}

// RestartWorker replaces a killed worker with a fresh process over the
// same identity: same ID, same listen address, and — when the cluster
// runs durable — the same data directory, so the new worker recovers
// every shard the old one owned (snapshots + WAL replay) and re-adopts
// its persistent shard records in the global image. Returns the recovery
// report (nil when durability is off, in which case the restarted worker
// comes back empty and relies on the manager to re-place data).
func (c *Cluster) RestartWorker(id string) (*RecoveryReport, error) {
	idx := -1
	for i, cand := range c.workers {
		if cand.ID() == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("volap: no worker %q", id)
	}
	// Make sure the old incarnation is fully down: Crash is idempotent,
	// and its closed listener frees the inproc address for rebinding.
	c.workers[idx].Crash()
	if sess := c.sessions[id]; sess != nil {
		sess.Abandon()
		delete(c.sessions, id)
	}
	// The abandoned session's ephemeral registration may still linger
	// (TTL not yet expired); clear it so the new registration is not a
	// stale-address ghost.
	if err := c.store.Delete(image.WorkerPath(id), coord.AnyVersion); err != nil && !errors.Is(err, coord.ErrNoNode) {
		return nil, err
	}

	w := worker.NewWithOptions(id, c.cfg, c.opts.workerOpts())
	w.SetFaults(c.opts.Fault)
	rec, err := c.openDurability(w, id)
	if err != nil {
		w.Close()
		return nil, err
	}
	if _, err := w.Listen(c.addrFor("worker", id)); err != nil {
		w.Close()
		return nil, err
	}
	if _, err := c.registerWorker(w, id); err != nil {
		w.Close()
		return nil, err
	}
	if rec != nil && len(rec.Shards) > 0 {
		if _, err := manager.ReadoptShards(c.coordinator(), id, w.ShardIDs()); err != nil {
			w.Close()
			return nil, err
		}
	}
	c.workers[idx] = w
	return rec, nil
}

// Schema returns the cluster's schema.
func (c *Cluster) Schema() *Schema { return c.cfg.Schema }

// NumWorkers returns the current worker count.
func (c *Cluster) NumWorkers() int { return len(c.workers) }

// NumServers returns the server count.
func (c *Cluster) NumServers() int { return len(c.servers) }

// ServerAddr returns the client-facing address of server i.
func (c *Cluster) ServerAddr(i int) string { return c.servers[i].Addr() }

// WorkerAddr returns the RPC address of worker i.
func (c *Cluster) WorkerAddr(i int) string { return c.workers[i].Addr() }

// CoordStore exposes the embedded coordination store. Chaos tests use
// it to drive session expiry deterministically (SetClock,
// ExpireSessions); production code never needs it.
func (c *Cluster) CoordStore() *coord.Store { return c.store }

// SyncAll forces every server to push its local image immediately —
// useful in tests and freshness experiments instead of waiting out
// SyncInterval.
func (c *Cluster) SyncAll() {
	for _, s := range c.servers {
		s.SyncNow()
	}
}

// RunBalancePass triggers one manager pass synchronously and returns the
// number of balancing operations performed.
func (c *Cluster) RunBalancePass() (int, error) { return c.mgr.RunPass() }

// DrainWorker migrates every shard off the named worker so it can be
// decommissioned (the shrink half of VOLAP's elasticity). The worker
// keeps running — and keeps forwarding in-flight operations — until
// servers have observed the new shard placement; stop it afterwards.
func (c *Cluster) DrainWorker(id string) (int, error) { return c.mgr.DrainWorker(id) }

// BalanceStats snapshots the manager's split/migration counters.
func (c *Cluster) BalanceStats() BalanceStats { return c.mgr.Stats() }

// PromoteReplica manually promotes the freshest follower of the given
// shard to primary (planned maintenance, hot-spot drain). The previous
// primary, when alive, is demoted to a forwarder; the manager's next
// ensure pass re-seeds the replica set back to full strength. Returns
// the promoted worker's ID.
func (c *Cluster) PromoteReplica(id ShardID) (string, error) { return c.mgr.PromoteShard(id) }

// RunReplicationPass triggers one manager replication pass synchronously
// — dead-primary promotion plus replica-set repair — and returns the
// number of operations performed. Useful in tests with the background
// loop disabled; RunBalancePass includes this pass.
func (c *Cluster) RunReplicationPass() (int, error) { return c.mgr.RunReplicationPass() }

// WorkerLoads returns per-worker item counts, ordered by worker ID.
func (c *Cluster) WorkerLoads() ([]string, []uint64, error) { return c.mgr.SortedLoads() }

// Client connects a new client session to a server chosen round-robin
// (each user session "is attached to one of the server nodes", §IV-F).
func (c *Cluster) Client() (*Client, error) {
	i := int(c.clientSeq.Add(1)-1) % len(c.servers)
	return c.ClientTo(i)
}

// ClientTo connects a client session to a specific server.
func (c *Cluster) ClientTo(i int) (*Client, error) {
	if i < 0 || i >= len(c.servers) {
		return nil, fmt.Errorf("volap: no server %d", i)
	}
	return Connect(c.servers[i].Addr(),
		WithRequestTimeout(c.opts.RequestTimeout),
		WithMaxRetries(c.opts.MaxRetries))
}

// Stop shuts the whole cluster down. It is idempotent.
func (c *Cluster) Stop() {
	if !c.stopped.CompareAndSwap(false, true) {
		return
	}
	if c.mgr != nil {
		c.mgr.Close()
	}
	for _, s := range c.servers {
		s.Close()
	}
	for _, w := range c.workers {
		w.Close()
	}
	for _, sess := range c.sessions {
		_ = sess.Close()
	}
	if c.coordSrv != nil {
		c.coordSrv.Close()
	}
	c.store.Close()
}

// Typed errors of the client API. Callers distinguish "the system is
// saturated or converging — retry later" (ErrTimeout, ErrUnavailable)
// from a genuine bug (anything else). ErrStaleRoute never reaches
// callers on its own — the pipeline retries it — but it appears wrapped
// inside ErrUnavailable when retries run out.
var (
	// ErrTimeout means the operation's deadline expired before every
	// involved worker replied.
	ErrTimeout = netmsg.ErrTimeout
	// ErrUnavailable means some shard stayed unreachable across image
	// refreshes and bounded retries.
	ErrUnavailable = server.ErrUnavailable
	// ErrStaleRoute classifies one routing miss after a shard migration.
	ErrStaleRoute = server.ErrStaleRoute
	// ErrWorkerDown fails an insert fast when the target shard's owner is
	// known dead (its liveness session expired); retrying immediately is
	// pointless — wait for the manager to re-place the shard.
	ErrWorkerDown = server.ErrWorkerDown
)

// Defaults of the client/server request policy.
const (
	DefaultRequestTimeout = 10 * time.Second
	DefaultMaxRetries     = 3
)

// ClientOptions tunes one client session. New code passes functional
// options (WithRequestTimeout, WithReadPreference, ...) to Connect; this
// struct remains the home of the session defaults and the deprecated
// struct-taking constructors.
type ClientOptions struct {
	// RequestTimeout bounds each operation whose context has no deadline
	// (default 10 s; negative disables the bound entirely).
	RequestTimeout time.Duration
	// MaxRetries re-issues an operation whose connection dropped before
	// the reply arrived (default 3). Only transport failures are
	// retried; remote errors and deadline expiry are not.
	MaxRetries int
	// Metrics receives the session's transport instrumentation
	// (netmsg_request_seconds, reconnect counters). When nil the client
	// creates a private registry, reachable via Client.Metrics().
	Metrics *metrics.Registry
	// ReadPreference is the session's default query read path: ReadLeader
	// (zero value) or ReadPreferReplica. Individual queries override it
	// with Client.QueryWith.
	ReadPreference ReadPreference
	// MaxReplicaLag is the session's default staleness bound for replica
	// reads, in shipped-but-unapplied WAL records (0 = the server's
	// DefaultMaxReplicaLag). Ignored under ReadLeader.
	MaxReplicaLag uint64
}

// ClientOption configures one aspect of a client session (see Connect).
type ClientOption func(*ClientOptions)

// WithRequestTimeout bounds each operation whose context has no deadline
// of its own (negative disables the bound entirely).
func WithRequestTimeout(d time.Duration) ClientOption {
	return func(o *ClientOptions) { o.RequestTimeout = d }
}

// WithMaxRetries sets how often a transport-failed request is re-issued
// (negative disables retries).
func WithMaxRetries(n int) ClientOption {
	return func(o *ClientOptions) { o.MaxRetries = n }
}

// WithMetrics points the session's transport instrumentation at an
// existing registry.
func WithMetrics(reg *Registry) ClientOption {
	return func(o *ClientOptions) { o.Metrics = reg }
}

// WithReadPreference sets the session's default query read path.
func WithReadPreference(p ReadPreference) ClientOption {
	return func(o *ClientOptions) { o.ReadPreference = p }
}

// WithMaxReplicaLag sets the session's default staleness bound for
// replica reads, in shipped-but-unapplied WAL records.
func WithMaxReplicaLag(n uint64) ClientOption {
	return func(o *ClientOptions) { o.MaxReplicaLag = n }
}

func (o *ClientOptions) defaults() {
	if o.RequestTimeout == 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.RequestTimeout < 0 {
		o.RequestTimeout = 0
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = DefaultMaxRetries
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
}

// Client is a session attached to one server.
type Client struct {
	c        *netmsg.Client
	dims     int
	hash     uint64 // schema fingerprint from the handshake (0 if skipped)
	retries  int
	reg      *metrics.Registry
	readPref ReadPreference
	maxLag   uint64
}

// Connect attaches a client session to a server address. The schema's
// dimension count is learned from the server.hello handshake, so the
// caller needs nothing beyond the address:
//
//	client, err := volap.Connect(addr,
//	    volap.WithRequestTimeout(2*time.Second),
//	    volap.WithReadPreference(volap.ReadPreferReplica))
func Connect(addr string, options ...ClientOption) (*Client, error) {
	var opts ClientOptions
	for _, apply := range options {
		apply(&opts)
	}
	return connect(addr, opts, true, 0)
}

// connect dials and, when handshake is set, learns the dimension count
// from server.hello; otherwise it trusts the given dims (the deprecated
// ConnectDims path, which must stay handshake-free for callers talking
// to minimal or test servers).
func connect(addr string, opts ClientOptions, handshake bool, dims int) (*Client, error) {
	opts.defaults()
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	nc, err := netmsg.DialOptions(addr, netmsg.DialOpts{DefaultTimeout: opts.RequestTimeout, Metrics: reg})
	if err != nil {
		return nil, err
	}
	cl := &Client{
		c: nc, dims: dims, retries: opts.MaxRetries, reg: reg,
		readPref: opts.ReadPreference, maxLag: opts.MaxReplicaLag,
	}
	if !handshake {
		return cl, nil
	}
	resp, err := nc.Request("server.hello", nil)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("volap: handshake with %s: %w", addr, err)
	}
	h, err := server.DecodeHello(resp)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("volap: handshake with %s: %w", addr, err)
	}
	cl.dims, cl.hash = h.Dims, h.ConfigHash
	return cl, nil
}

// ConnectWith is Connect with an explicit options struct.
//
// Deprecated: use Connect with functional options.
func ConnectWith(addr string, opts ClientOptions) (*Client, error) {
	return connect(addr, opts, true, 0)
}

// ConnectDims attaches a client session without the handshake round
// trip, for callers that already know the schema's dimension count.
//
// Deprecated: use Connect, which learns the dimension count from the
// server.hello handshake.
func ConnectDims(addr string, dims int) (*Client, error) {
	return connect(addr, ClientOptions{}, false, dims)
}

// ConnectDimsWith is ConnectDims with an explicit options struct.
//
// Deprecated: use Connect, which learns the dimension count from the
// server.hello handshake.
func ConnectDimsWith(addr string, dims int, opts ClientOptions) (*Client, error) {
	return connect(addr, opts, false, dims)
}

// Dims returns the schema dimension count the session encodes items
// with.
func (cl *Client) Dims() int { return cl.dims }

// ConfigHash returns the schema fingerprint learned from the handshake
// (0 when the session was opened with ConnectDims).
func (cl *Client) ConfigHash() uint64 { return cl.hash }

// Metrics returns the session's registry: request latency histograms per
// op plus reconnect/dial-failure counters.
func (cl *Client) Metrics() *Registry { return cl.reg }

// WithTrace stamps a fresh trace ID on the context (keeping an existing
// one) and returns it alongside the derived context. Every RPC the
// client issues under that context — and every hop it fans out to inside
// the cluster — records trace events tagged with the same ID.
func WithTrace(ctx context.Context) (context.Context, uint64) {
	return netmsg.EnsureTraceID(ctx)
}

// TraceID extracts the trace ID from a context (0 when absent).
func TraceID(ctx context.Context) uint64 { return netmsg.TraceIDFrom(ctx) }

// request issues one RPC, re-dialing and re-issuing on transport
// failures (the netmsg layer reconnects with backoff; this layer decides
// the attempt budget) and mapping remote error text back onto the typed
// error set.
func (cl *Client) request(ctx context.Context, op string, payload []byte) ([]byte, error) {
	ctx, _ = netmsg.EnsureTraceID(ctx)
	var resp []byte
	var err error
	for attempt := 0; attempt <= cl.retries; attempt++ {
		resp, err = cl.c.RequestCtx(ctx, op, payload)
		if err == nil || !isTransient(err) {
			return resp, mapRemoteError(err)
		}
	}
	return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
}

// isTransient reports whether re-issuing the request may succeed: the
// connection dropped before a reply, or reconnecting failed outright.
// Remote errors, timeouts, and cancellations are final.
func isTransient(err error) bool {
	if errors.Is(err, netmsg.ErrConnLost) {
		return true
	}
	if errors.Is(err, netmsg.ErrTimeout) || errors.Is(err, netmsg.ErrClosed) ||
		errors.Is(err, context.Canceled) {
		return false
	}
	var re *netmsg.RemoteError
	return !errors.As(err, &re) // dial errors and other transport faults
}

// mapRemoteError restores the typed error set across the RPC boundary:
// a server-side ErrTimeout/ErrUnavailable arrives as a RemoteError whose
// message embeds the sentinel's text.
func mapRemoteError(err error) error {
	var re *netmsg.RemoteError
	if err == nil || !errors.As(err, &re) {
		return err
	}
	sentinels := []error{ErrTimeout, ErrUnavailable, ErrStaleRoute, ErrWorkerDown}
	for _, sentinel := range sentinels {
		if rest, ok := strings.CutPrefix(re.Msg, sentinel.Error()); ok {
			if rest = strings.TrimPrefix(rest, ": "); rest == "" {
				return sentinel
			}
			return fmt.Errorf("%w: %s", sentinel, rest)
		}
	}
	for _, sentinel := range sentinels {
		if strings.Contains(re.Msg, sentinel.Error()) {
			return fmt.Errorf("%w: %s", sentinel, re.Msg)
		}
	}
	return err
}

// Insert sends one item.
func (cl *Client) Insert(ctx context.Context, it Item) error {
	return cl.InsertBatch(ctx, []Item{it})
}

// InsertBatch sends a batch of items in one round trip.
func (cl *Client) InsertBatch(ctx context.Context, items []Item) error {
	_, err := cl.request(ctx, "server.insert", server.EncodeItems(cl.dims, items))
	return err
}

// BulkLoad ingests a large batch through the workers' bulk path (§IV-C).
func (cl *Client) BulkLoad(ctx context.Context, items []Item) error {
	_, err := cl.request(ctx, "server.bulkload", server.EncodeItems(cl.dims, items))
	return err
}

// GroupResult is one group of a grouped query: the ordinal of the level
// value (its left-to-right index among all values at that level) and
// its aggregate.
type GroupResult = server.GroupResult

// Result is the answer to one Query call.
type Result struct {
	// Agg aggregates the whole queried region.
	Agg Aggregate
	// Groups holds one aggregate per level value when the query was
	// built with WithGroupBy; nil otherwise.
	Groups []GroupResult
	// Info reports the work performed: shards searched and missing,
	// replica staleness, and which path answered (Info.Source():
	// SourceRollup, SourceTree, or SourceMixed).
	Info QueryInfo
}

// queryPlan is the resolved shape of one Query call.
type queryPlan struct {
	opts    QueryOptions
	groupBy bool
	dim     int
	level   int
}

// QueryOption shapes one Query call (WithGroupBy, WithReadPref,
// WithMaxLag, WithNoRollup).
type QueryOption func(*queryPlan)

// WithGroupBy turns the query into a grouped aggregate: one result per
// child value of dimension dim at the given level (0-based) inside the
// queried region — the OLAP roll-up/drill-down primitive.
func WithGroupBy(dim, level int) QueryOption {
	return func(p *queryPlan) { p.groupBy = true; p.dim = dim; p.level = level }
}

// WithReadPref overrides the session's read preference for this query.
func WithReadPref(pref ReadPreference) QueryOption {
	return func(p *queryPlan) { p.opts.Read = pref }
}

// WithMaxLag bounds how many shipped-but-unapplied WAL records a
// replica copy may be behind and still serve this query (only
// meaningful under ReadPreferReplica).
func WithMaxLag(n uint64) QueryOption {
	return func(p *queryPlan) { p.opts.MaxReplicaLag = n }
}

// WithNoRollup forces the raw tree path even when a materialized rollup
// covers the query (exact-path benchmarking, debugging).
func WithNoRollup() QueryOption {
	return func(p *queryPlan) { p.opts.NoRollup = true }
}

// Query is the session's one aggregate-query surface. Bare, it returns
// the aggregate over q under the session's read preference; options
// refine it:
//
//	res, err := client.Query(ctx, q)                          // aggregate
//	res, err := client.Query(ctx, q, volap.WithGroupBy(0, 1)) // grouped
//	res, err := client.Query(ctx, q, volap.WithNoRollup())    // force trees
//
// Result.Info reports the work performed, including which data path
// answered (Info.Source()) and any shards missing from the answer.
func (cl *Client) Query(ctx context.Context, q Rect, options ...QueryOption) (*Result, error) {
	plan := queryPlan{opts: QueryOptions{Read: cl.readPref, MaxReplicaLag: cl.maxLag}}
	for _, apply := range options {
		apply(&plan)
	}
	if plan.groupBy {
		resp, err := cl.request(ctx, "server.groupby",
			server.EncodeGroupByRequestOpts(q, plan.dim, plan.level, plan.opts))
		if err != nil {
			return nil, err
		}
		groups, info, err := server.DecodeGroupByResponse(resp)
		if err != nil {
			return nil, err
		}
		res := &Result{Agg: core.NewAggregate(), Groups: groups, Info: info}
		for _, g := range groups {
			res.Agg.Merge(g.Agg)
		}
		return res, nil
	}
	resp, err := cl.request(ctx, "server.query", server.EncodeQueryRequest(q, plan.opts))
	if err != nil {
		return nil, err
	}
	agg, info, err := server.DecodeQueryResponse(resp)
	if err != nil {
		return nil, err
	}
	return &Result{Agg: agg, Info: info}, nil
}

// QueryWith runs an aggregate query with an explicit options struct.
//
// Deprecated: use Query with WithReadPref / WithMaxLag / WithNoRollup.
func (cl *Client) QueryWith(ctx context.Context, q Rect, opts QueryOptions) (Aggregate, QueryInfo, error) {
	resp, err := cl.request(ctx, "server.query", server.EncodeQueryRequest(q, opts))
	if err != nil {
		return core.NewAggregate(), QueryInfo{}, err
	}
	return server.DecodeQueryResponse(resp)
}

// GroupBy runs one aggregate per child value of dimension dim at the
// given level (0-based) within the base region.
//
// Deprecated: use Query with WithGroupBy.
func (cl *Client) GroupBy(ctx context.Context, base Rect, dim, level int) ([]GroupResult, error) {
	res, err := cl.Query(ctx, base, WithGroupBy(dim, level))
	if err != nil {
		return nil, err
	}
	return res.Groups, nil
}

// Sync asks the session's server to push its local image immediately.
func (cl *Client) Sync(ctx context.Context) error {
	_, err := cl.request(ctx, "server.sync", nil)
	return err
}

// ClusterStats asks the session's server for a cluster-wide snapshot:
// per-worker shard counts, item totals, memory footprint and operation
// latency summaries, gathered over the workers' stats RPCs.
func (cl *Client) ClusterStats(ctx context.Context) (*ClusterStats, error) {
	resp, err := cl.request(ctx, "server.clusterstats", nil)
	if err != nil {
		return nil, err
	}
	return server.DecodeClusterStats(resp)
}

// No-context convenience wrappers: context.Background() bounded by the
// session's request timeout, so examples and interactive use stay
// one-liners.

// InsertNoCtx is Insert with context.Background().
func (cl *Client) InsertNoCtx(it Item) error { return cl.Insert(context.Background(), it) }

// InsertBatchNoCtx is InsertBatch with context.Background().
func (cl *Client) InsertBatchNoCtx(items []Item) error {
	return cl.InsertBatch(context.Background(), items)
}

// BulkLoadNoCtx is BulkLoad with context.Background().
func (cl *Client) BulkLoadNoCtx(items []Item) error {
	return cl.BulkLoad(context.Background(), items)
}

// QueryNoCtx is Query with context.Background().
func (cl *Client) QueryNoCtx(q Rect, options ...QueryOption) (*Result, error) {
	return cl.Query(context.Background(), q, options...)
}

// QueryWithNoCtx is QueryWith with context.Background().
//
// Deprecated: use QueryNoCtx with WithReadPref / WithMaxLag / WithNoRollup.
func (cl *Client) QueryWithNoCtx(q Rect, opts QueryOptions) (Aggregate, QueryInfo, error) {
	return cl.QueryWith(context.Background(), q, opts)
}

// GroupByNoCtx is GroupBy with context.Background().
//
// Deprecated: use QueryNoCtx with WithGroupBy.
func (cl *Client) GroupByNoCtx(base Rect, dim, level int) ([]GroupResult, error) {
	return cl.GroupBy(context.Background(), base, dim, level)
}

// SyncNoCtx is Sync with context.Background().
func (cl *Client) SyncNoCtx() error { return cl.Sync(context.Background()) }

// ClusterStatsNoCtx is ClusterStats with context.Background().
func (cl *Client) ClusterStatsNoCtx() (*ClusterStats, error) {
	return cl.ClusterStats(context.Background())
}

// Close detaches the session.
func (cl *Client) Close() { cl.c.Close() }
