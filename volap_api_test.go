package volap

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/netmsg"
)

// TestConnectHandshake checks Connect learns the schema dimension count
// and config fingerprint from the server.hello handshake — no out-of-band
// dims parameter.
func TestConnectHandshake(t *testing.T) {
	c, err := Start(Options{Schema: TPCDSSchema(), BalanceInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := Connect(c.ServerAddr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if got, want := cl.Dims(), c.Schema().NumDims(); got != want {
		t.Fatalf("handshake dims = %d, want %d", got, want)
	}
	if cl.ConfigHash() == 0 {
		t.Fatal("handshake config hash = 0")
	}
	if cl.ConfigHash() != c.Schema().Fingerprint() {
		t.Fatalf("config hash = %d, want schema fingerprint %d", cl.ConfigHash(), c.Schema().Fingerprint())
	}
	gen := NewGenerator(c.Schema(), 1, 0)
	if err := cl.InsertBatchNoCtx(gen.Items(50)); err != nil {
		t.Fatal(err)
	}
	res, err := cl.QueryNoCtx(AllRect(c.Schema()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.Count != 50 {
		t.Fatalf("count = %d, want 50", res.Agg.Count)
	}
}

// TestClientTimeoutWedgedServer checks the end-to-end deadline: a server
// that accepts a query but never replies makes the client return
// ErrTimeout within the session's request timeout, not hang.
func TestClientTimeoutWedgedServer(t *testing.T) {
	stub := netmsg.NewServer()
	block := make(chan struct{})
	stub.Handle("server.query", func(_ context.Context, p []byte) ([]byte, error) { <-block; return nil, nil })
	addr, err := stub.Listen("inproc://wedged-server-test")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stub.Close)
	t.Cleanup(func() { close(block) })

	cl, err := ConnectDimsWith(addr, 2, ClientOptions{RequestTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	schema := twoDimSchema(t)
	start := time.Now()
	_, err = cl.Query(context.Background(), AllRect(schema))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("query took %v, deadline was 100ms", d)
	}

	// An explicit context deadline takes precedence and cancels too.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := cl.Query(ctx, AllRect(schema)); !errors.Is(err, ErrTimeout) {
		t.Fatalf("ctx deadline err = %v, want ErrTimeout", err)
	}
}

func twoDimSchema(t *testing.T) *Schema {
	t.Helper()
	a, err := NewDimension("A", Level{Name: "L", Fanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDimension("B", Level{Name: "L", Fanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSchema(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestOptionsValidation checks defaults() rejects nonsense and fills the
// documented defaults.
func TestOptionsValidation(t *testing.T) {
	schema := TPCDSSchema()
	bad := []Options{
		{},                                      // no schema
		{Schema: schema, Workers: -1},           // negative workers
		{Schema: schema, Servers: -2},           // negative servers
		{Schema: schema, Servers: 1},            // servers without workers: Workers stays 0
		{Schema: schema, RequestTimeout: -1},    // negative timeout
		{Schema: schema, MaxRetries: -3},        // negative retries
		{Schema: schema, Transport: "carrier"},  // unknown transport
		{Schema: schema, ReplicationFactor: -1}, // negative RF
		{Schema: schema, ReplicationFactor: 3},  // RF beyond the default 2 workers
		{Schema: schema, Workers: 2, ReplicationFactor: 2, Durability: DurabilitySync}, // RF>1 without DataDir
		{Schema: schema, Workers: 2, ReplicationFactor: 2},                             // RF>1 without durability
	}
	for i, o := range bad {
		if err := o.defaults(); err == nil {
			t.Errorf("case %d: options %+v accepted", i, o)
		}
	}
	good := Options{Schema: schema}
	if err := good.defaults(); err != nil {
		t.Fatal(err)
	}
	if good.RequestTimeout != DefaultRequestTimeout || good.MaxRetries != DefaultMaxRetries {
		t.Fatalf("defaults: timeout %v retries %d", good.RequestTimeout, good.MaxRetries)
	}
	if good.Workers != 2 || good.Servers != 1 {
		t.Fatalf("defaults: workers %d servers %d", good.Workers, good.Servers)
	}
	if good.ReplicationFactor != 1 {
		t.Fatalf("defaults: replication factor %d, want 1", good.ReplicationFactor)
	}
	replicated := Options{Schema: schema, Workers: 3, ReplicationFactor: 2,
		Durability: DurabilitySync, DataDir: t.TempDir()}
	if err := replicated.defaults(); err != nil {
		t.Fatalf("RF=2 with durability rejected: %v", err)
	}
}

// TestMapRemoteError checks typed errors survive the RPC boundary: the
// server serializes them as message text and the client maps them back.
func TestMapRemoteError(t *testing.T) {
	cases := []struct {
		msg  string
		want error
	}{
		{"volap: unavailable: shard 3 after 4 attempts: dial failed", ErrUnavailable},
		{"netmsg: request timeout", ErrTimeout},
		{"volap: stale route: shard 1", ErrStaleRoute},
	}
	for _, c := range cases {
		got := mapRemoteError(&netmsg.RemoteError{Op: "server.query", Msg: c.msg})
		if !errors.Is(got, c.want) {
			t.Errorf("mapRemoteError(%q) = %v, want %v", c.msg, got, c.want)
		}
	}
	plain := &netmsg.RemoteError{Op: "server.query", Msg: "schema: point out of range"}
	if got := mapRemoteError(plain); !errors.As(got, new(*netmsg.RemoteError)) {
		t.Errorf("plain remote error remapped to %v", got)
	}
	if got := mapRemoteError(nil); got != nil {
		t.Errorf("nil error mapped to %v", got)
	}
}
