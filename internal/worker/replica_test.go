package worker

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/image"
	"repro/internal/keys"
)

// TestReplicaSeedShipPromote drives the replication protocol between two
// live workers end to end: AddReplica seeds the follower with the
// primary's current state, subsequent inserts ship before the ack and
// keep the standby's lag at zero, replica queries serve from the standby
// under the lag bound, and Promote turns the standby into a served
// shard without losing an item.
func TestReplicaSeedShipPromote(t *testing.T) {
	p, _ := startWorker(t, "p")
	f, _ := startWorker(t, "f")
	ctx := context.Background()
	const shard = image.ShardID(7)

	if err := p.CreateShard(shard); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	if err := p.Insert(ctx, shard, randItems(rng, p.cfg, 100)); err != nil {
		t.Fatal(err)
	}

	// Seed: the follower receives a serialized snapshot of the shard.
	count, err := p.AddReplica(shard, "f", f.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("seed count = %d, want 100", count)
	}
	// Re-adding the same follower is idempotent (re-seed).
	if _, err := p.AddReplica(shard, "f", f.Addr()); err != nil {
		t.Fatal(err)
	}

	// Live shipping: every acked insert is on the follower before the
	// ack returns, so the watermark distance is zero right here.
	if err := p.Insert(ctx, shard, randItems(rng, p.cfg, 50)); err != nil {
		t.Fatal(err)
	}
	fs := f.ReplStatus()
	if len(fs.Standbys) != 1 || fs.Standbys[0].Shard != shard || fs.Standbys[0].Primary != "p" {
		t.Fatalf("follower standbys = %+v", fs.Standbys)
	}
	if lag := fs.Standbys[0].Lag(); lag != 0 {
		t.Fatalf("standby lag = %d after synchronous ship, want 0", lag)
	}
	ps := p.ReplStatus()
	if len(ps.Links) != 1 || ps.Links[0].Follower != "f" || ps.Links[0].Acked != ps.Links[0].Seq {
		t.Fatalf("primary links = %+v", ps.Links)
	}

	// Replica read on the follower serves the standby under the bound.
	all := keys.AllRect(p.cfg.Schema)
	rep, err := f.QueryReplicas(ctx, all, []image.ShardID{shard}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Served) != 1 || rep.Served[0] != shard {
		t.Fatalf("replica query served = %v, want [%d]", rep.Served, shard)
	}
	if rep.Agg.Count != 150 {
		t.Fatalf("replica query count = %d, want 150", rep.Agg.Count)
	}
	// A zero lag bound still serves a fully caught-up standby.
	if rep, err = f.QueryReplicas(ctx, all, []image.ShardID{shard}, 0); err != nil || len(rep.Served) != 1 {
		t.Fatalf("lag-0 replica query: err=%v served=%v", err, rep.Served)
	}

	// Promotion: the standby becomes a served shard with every item.
	promoted, err := f.Promote(shard)
	if err != nil {
		t.Fatal(err)
	}
	if promoted != 150 {
		t.Fatalf("promoted count = %d, want 150", promoted)
	}
	agg, searched, err := f.QueryShards(ctx, all, []image.ShardID{shard})
	if err != nil || searched != 1 || agg.Count != 150 {
		t.Fatalf("post-promotion query: err=%v searched=%d count=%d", err, searched, agg.Count)
	}
	if st := f.ReplStatus(); len(st.Standbys) != 0 {
		t.Fatalf("standby list after promotion = %+v, want empty", st.Standbys)
	}

	// Late replicate RPCs from the not-yet-demoted old primary re-route
	// into the promoted shard's normal insert path — nothing acked on
	// the old primary is dropped on the floor.
	if err := p.Insert(ctx, shard, randItems(rng, p.cfg, 10)); err != nil {
		t.Fatal(err)
	}
	agg, _, err = f.QueryShards(ctx, all, []image.ShardID{shard})
	if err != nil || agg.Count != 160 {
		t.Fatalf("post-promotion ship: err=%v count=%d, want 160", err, agg.Count)
	}

	// DropReplica on a promoted (absent) standby is a no-op.
	f.DropReplica(shard)
}

// TestReplicaLagGate checks the staleness bound: a standby that is
// behind the primary's ship watermark is skipped by replica queries
// until the bound admits it.
func TestReplicaLagGate(t *testing.T) {
	p, _ := startWorker(t, "p")
	f, _ := startWorker(t, "f")
	ctx := context.Background()
	const shard = image.ShardID(3)

	if err := p.CreateShard(shard); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddReplica(shard, "f", f.Addr()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	if err := p.Insert(ctx, shard, randItems(rng, p.cfg, 20)); err != nil {
		t.Fatal(err)
	}

	// Fake a lagging standby: push the head watermark past applied, as
	// if records had been acked by a link the standby has not applied.
	rs := f.replica(shard)
	if rs == nil {
		t.Fatal("follower hosts no standby")
	}
	rs.head.Store(rs.applied.Load() + 5)

	all := keys.AllRect(p.cfg.Schema)
	rep, err := f.QueryReplicas(ctx, all, []image.ShardID{shard}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Served) != 0 {
		t.Fatalf("lagging standby served under a tighter bound: %v", rep.Served)
	}
	rep, err = f.QueryReplicas(ctx, all, []image.ShardID{shard}, 5)
	if err != nil || len(rep.Served) != 1 || rep.MaxLag != 5 {
		t.Fatalf("bound-5 query: err=%v served=%v maxLag=%d", err, rep.Served, rep.MaxLag)
	}
}
