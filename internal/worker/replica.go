package worker

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/image"
	"repro/internal/keys"
	"repro/internal/metrics"
	"repro/internal/rollup"
	"repro/internal/wire"
)

// This file implements per-shard replication. A primary ships every
// acknowledged insert batch — framed exactly like its WAL records
// (internal/durable) — to follower workers, which apply it into standby
// shard state. Shipping is semi-synchronous: it happens under the same
// shard read-lock hold as the local apply + WAL append, before the
// insert is acknowledged. That gives two guarantees at once:
//
//   - an acknowledged item is on every healthy follower, so promoting a
//     follower after primary loss loses no acknowledged data;
//   - any write-lock transition (checkpoint, split, migration, demote)
//     observes fully-replicated state, so tearing replication down under
//     the write lock can never strand a half-shipped batch.
//
// Insert batches commute (a shard is a multiset), so concurrent ships
// may arrive at a follower in any order; the per-record sequence number
// exists for the lag watermark and promotion freshness ranking, not for
// ordering.
//
// A follower that cannot be reached is dropped from the primary's link
// table and the insert is still acknowledged — availability wins, and
// the manager's next ensure pass re-seeds the follower from a fresh
// snapshot (snapshot + live tail, never item-by-item streaming).

// replShip is the primary-side shipping state of one shard. The pointer
// lives in shardState.repl and is installed/cleared only under the shard
// write lock; ship operations run under the shard read lock and use this
// mutex for the sequence counter and link table.
type replShip struct {
	mu        sync.Mutex
	seq       uint64 // records assigned to the ship stream
	followers map[string]*followerLink
}

// followerLink is one outgoing replication stream.
type followerLink struct {
	id     string
	addr   string
	acked  uint64 // highest sequence the follower acknowledged
	broken bool
}

// replicaState is one standby shard copy hosted by a follower. The
// RWMutex guards the store pointer and the promoted flag; the watermarks
// are atomics so concurrent applies never serialize on them.
type replicaState struct {
	mu       sync.RWMutex
	store    core.Store
	promoted bool // promote() won the shard; late applies must re-route
	primary  string
	applied  atomic.Uint64 // highest record sequence applied
	head     atomic.Uint64 // highest primary sequence observed
	lag      *metrics.Gauge
}

func atomicMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// lagRecords is the standby's current watermark distance.
func (rs *replicaState) lagRecords() uint64 {
	h, a := rs.head.Load(), rs.applied.Load()
	if h <= a {
		return 0
	}
	return h - a
}

// replica returns the standby state for a shard, nil if none is hosted.
func (w *Worker) replica(id image.ShardID) *replicaState {
	w.replMu.Lock()
	defer w.replMu.Unlock()
	return w.replicas[id]
}

// teardownReplLocked disconnects the shard from its followers. The
// caller holds the shard write lock (queue install for split/migration,
// or demote), so no ship is in flight. Follower standby state is the
// manager's to clean up: it clears the meta replica set and drops the
// stale standbys, then re-seeds on the next ensure pass.
func teardownReplLocked(st *shardState) { st.repl = nil }

// shipToReplicas sends one already-applied, already-logged insert batch
// to every follower of the shard. The caller holds the shard read lock
// and has appended the batch to the WAL. Unreachable followers are
// dropped (the ack still happens); the error is absorbed into the
// replica_ship_failures_total counter.
func (w *Worker) shipToReplicas(ctx context.Context, st *shardState, id image.ShardID, items []core.Item) {
	rs := st.repl
	if rs == nil {
		return
	}
	rs.mu.Lock()
	if len(rs.followers) == 0 {
		rs.mu.Unlock()
		return
	}
	rs.seq++
	seq := rs.seq
	links := make([]*followerLink, 0, len(rs.followers))
	for _, l := range rs.followers {
		links = append(links, l)
	}
	rs.mu.Unlock()

	frame := durable.EncodeRecord(durable.Record{
		Type:  durable.RecInsert,
		Shard: uint64(id),
		Data:  durable.EncodeInsert(w.cfg.Schema.NumDims(), items),
	})
	req := wire.NewWriter(len(frame) + 16)
	req.Uvarint(uint64(id))
	req.Uvarint(seq)
	req.Raw(frame)
	payload := req.Bytes()

	for _, l := range links {
		peer, err := w.peer(l.addr)
		var resp []byte
		if err == nil {
			resp, err = peer.RequestCtx(ctx, "worker.replicate", payload)
		}
		if err != nil {
			w.shipFails.Inc()
			rs.mu.Lock()
			l.broken = true
			delete(rs.followers, l.id)
			rs.mu.Unlock()
			continue
		}
		w.shipBytes.Add(uint64(len(frame)))
		r := wire.NewReader(resp)
		if acked := r.Uvarint(); r.Err() == nil {
			rs.mu.Lock()
			if acked > l.acked {
				l.acked = acked
			}
			rs.mu.Unlock()
		}
	}
}

// AddReplica seeds a follower with a snapshot of the shard and starts
// shipping subsequent inserts to it. The whole sequence — drain,
// serialize, seed RPC, link registration — runs under the shard write
// lock, so no insert can slip between the snapshot and the stream (the
// same discipline SendShard uses for its final queue round). Returns the
// item count of the seeded snapshot.
func (w *Worker) AddReplica(id image.ShardID, followerID, followerAddr string) (uint64, error) {
	st := w.shard(id)
	if st == nil {
		return 0, fmt.Errorf("worker %s: unknown shard %d", w.id, id)
	}
	peer, err := w.peer(followerAddr)
	if err != nil {
		return 0, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.store == nil || st.queue != nil {
		return 0, fmt.Errorf("worker %s: shard %d busy or gone", w.id, id)
	}
	w.drainLocked(st)
	if st.repl == nil {
		st.repl = &replShip{followers: make(map[string]*followerLink)}
	}
	base := st.repl.seq
	blob := st.store.Serialize()
	req := wire.NewWriter(len(blob) + 32)
	req.Uvarint(uint64(id))
	req.String(w.id)
	req.Uvarint(base)
	req.Bytes1(blob)
	if _, err := peer.Request("worker.replicaseed", req.Bytes()); err != nil {
		return 0, err
	}
	st.repl.followers[followerID] = &followerLink{id: followerID, addr: followerAddr, acked: base}
	w.shipBytes.Add(uint64(len(blob)))
	return st.store.Count(), nil
}

// DropReplica discards a hosted standby copy.
func (w *Worker) DropReplica(id image.ShardID) {
	w.replMu.Lock()
	rs := w.replicas[id]
	delete(w.replicas, id)
	w.replMu.Unlock()
	if rs != nil {
		rs.lag.Set(0)
	}
}

// Promote turns a hosted standby into an owned, served shard: the store
// moves into the worker's shard table (durably adopted when a log is
// attached) and the standby entry is retired. Late replicate RPCs from a
// still-live old primary re-route through the normal insert path, so a
// manual promotion of a healthy shard loses nothing either. Returns the
// promoted item count.
func (w *Worker) Promote(id image.ShardID) (uint64, error) {
	w.replMu.Lock()
	rs := w.replicas[id]
	if rs == nil {
		w.replMu.Unlock()
		return 0, fmt.Errorf("worker %s: no replica of shard %d", w.id, id)
	}
	rs.mu.Lock() // exclude in-flight applies while the store changes hands
	store := rs.store
	// Standbys never maintain rollup tables; build them from the
	// promoted store so served queries can take the rollup path.
	roll := rollup.Rebuild(w.cfg.Schema, w.cfg.Rollups, store.Items)
	if w.dur != nil {
		if err := w.dur.AdoptShard(uint64(id),
			append(store.Serialize(), roll.EncodeTrailer()...)); err != nil {
			rs.mu.Unlock()
			w.replMu.Unlock()
			return 0, err
		}
	}
	w.mu.Lock()
	if st, ok := w.shards[id]; ok {
		// A forwarding tombstone from an old migration may linger; an
		// occupied shard means a routing error upstream.
		st.mu.Lock()
		occupied := st.store != nil || st.queue != nil
		if !occupied {
			st.store = store
			st.roll = roll
			st.forward = ""
		}
		st.mu.Unlock()
		if occupied {
			w.mu.Unlock()
			rs.mu.Unlock()
			w.replMu.Unlock()
			return 0, fmt.Errorf("worker %s: shard %d already hosted", w.id, id)
		}
	} else {
		st := w.newShardState(id)
		st.store = store
		st.roll = roll
		w.shards[id] = st
	}
	w.mu.Unlock()
	rs.promoted = true
	delete(w.replicas, id)
	rs.mu.Unlock()
	w.replMu.Unlock()
	rs.lag.Set(0)
	return store.Count(), nil
}

// Demote retires the local copy of a shard after a replica elsewhere was
// promoted: buffered items drain (they were shipped at ack time, like
// everything else), the store is discarded, and a forwarding tombstone
// sends stragglers to the new owner. With durability attached the shard
// is released like a completed migration.
func (w *Worker) Demote(id image.ShardID, destAddr string) error {
	st := w.shard(id)
	if st == nil {
		return fmt.Errorf("worker %s: unknown shard %d", w.id, id)
	}
	st.mu.Lock()
	if st.store == nil || st.queue != nil {
		st.mu.Unlock()
		return fmt.Errorf("worker %s: shard %d busy or gone", w.id, id)
	}
	w.drainLocked(st)
	teardownReplLocked(st)
	st.store = nil
	st.roll = nil
	st.rollCells.Set(0)
	st.forward = destAddr
	st.mu.Unlock()
	if w.dur != nil {
		return w.dur.ReleaseShard(uint64(id))
	}
	return nil
}

// --- status ----------------------------------------------------------------

// ReplicaInfo describes one standby copy hosted by a worker.
type ReplicaInfo struct {
	Shard   image.ShardID
	Primary string
	Applied uint64
	Head    uint64
}

// Lag is the standby's watermark distance in records.
func (ri ReplicaInfo) Lag() uint64 {
	if ri.Head <= ri.Applied {
		return 0
	}
	return ri.Head - ri.Applied
}

// ShipLink describes one outgoing replication stream of a primary.
type ShipLink struct {
	Shard    image.ShardID
	Follower string
	Acked    uint64
	Seq      uint64
}

// ReplStatus is a worker's full replication snapshot: the standbys it
// hosts and the streams it ships as a primary.
type ReplStatus struct {
	Standbys []ReplicaInfo
	Links    []ShipLink
}

// ReplStatus snapshots the worker's replication state.
func (w *Worker) ReplStatus() ReplStatus {
	var out ReplStatus
	w.replMu.Lock()
	for id, rs := range w.replicas {
		out.Standbys = append(out.Standbys, ReplicaInfo{
			Shard:   id,
			Primary: rs.primary,
			Applied: rs.applied.Load(),
			Head:    rs.head.Load(),
		})
	}
	w.replMu.Unlock()

	w.mu.RLock()
	states := make(map[image.ShardID]*shardState, len(w.shards))
	for id, st := range w.shards {
		states[id] = st
	}
	w.mu.RUnlock()
	for id, st := range states {
		st.mu.RLock()
		rs := st.repl
		st.mu.RUnlock()
		if rs == nil {
			continue
		}
		rs.mu.Lock()
		for _, l := range rs.followers {
			out.Links = append(out.Links, ShipLink{Shard: id, Follower: l.id, Acked: l.acked, Seq: rs.seq})
		}
		rs.mu.Unlock()
	}
	return out
}

// EncodeReplStatus serializes a worker.replicastatus reply.
func EncodeReplStatus(s ReplStatus) []byte {
	w := wire.NewWriter(16 + 32*(len(s.Standbys)+len(s.Links)))
	w.Uvarint(uint64(len(s.Standbys)))
	for _, r := range s.Standbys {
		w.Uvarint(uint64(r.Shard))
		w.String(r.Primary)
		w.Uvarint(r.Applied)
		w.Uvarint(r.Head)
	}
	w.Uvarint(uint64(len(s.Links)))
	for _, l := range s.Links {
		w.Uvarint(uint64(l.Shard))
		w.String(l.Follower)
		w.Uvarint(l.Acked)
		w.Uvarint(l.Seq)
	}
	return w.Bytes()
}

// DecodeReplStatus parses a worker.replicastatus reply.
func DecodeReplStatus(b []byte) (ReplStatus, error) {
	r := wire.NewReader(b)
	var s ReplStatus
	n := r.Uvarint()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		s.Standbys = append(s.Standbys, ReplicaInfo{
			Shard:   image.ShardID(r.Uvarint()),
			Primary: r.String(),
			Applied: r.Uvarint(),
			Head:    r.Uvarint(),
		})
	}
	n = r.Uvarint()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		s.Links = append(s.Links, ShipLink{
			Shard:    image.ShardID(r.Uvarint()),
			Follower: r.String(),
			Acked:    r.Uvarint(),
			Seq:      r.Uvarint(),
		})
	}
	return s, r.Err()
}

// --- RPC handlers ----------------------------------------------------------

func (w *Worker) handleAddReplica(_ context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := image.ShardID(r.Uvarint())
	fid := r.String()
	faddr := r.String()
	if r.Err() != nil {
		return nil, r.Err()
	}
	n, err := w.AddReplica(id, fid, faddr)
	if err != nil {
		return nil, err
	}
	out := wire.NewWriter(8)
	out.Uvarint(n)
	return out.Bytes(), nil
}

func (w *Worker) handleDropReplica(_ context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := image.ShardID(r.Uvarint())
	if r.Err() != nil {
		return nil, r.Err()
	}
	w.DropReplica(id)
	return nil, nil
}

func (w *Worker) handleReplicaSeed(_ context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := image.ShardID(r.Uvarint())
	primary := r.String()
	base := r.Uvarint()
	blob := r.Bytes1()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if st := w.shard(id); st != nil {
		st.mu.RLock()
		owned := st.store != nil
		st.mu.RUnlock()
		if owned {
			return nil, fmt.Errorf("worker %s: shard %d owned locally, refusing standby", w.id, id)
		}
	}
	store, err := core.DeserializeStore(blob)
	if err != nil {
		return nil, err
	}
	if store.Config().Schema.Fingerprint() != w.cfg.Schema.Fingerprint() {
		return nil, fmt.Errorf("worker %s: replica seed with foreign schema", w.id)
	}
	rs := &replicaState{store: store, primary: primary, lag: w.replicaLag.With(shardLabel(id))}
	rs.applied.Store(base)
	rs.head.Store(base)
	rs.lag.Set(0)
	w.replMu.Lock()
	w.replicas[id] = rs // a re-seed replaces any stale standby wholesale
	w.replMu.Unlock()
	return nil, nil
}

func (w *Worker) handleReplicate(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := image.ShardID(r.Uvarint())
	seq := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	frame := p[len(p)-r.Remaining():]
	rec, _, err := durable.DecodeRecord(frame)
	if err != nil {
		return nil, err
	}
	if rec.Type != durable.RecInsert || rec.Shard != uint64(id) {
		return nil, fmt.Errorf("worker %s: replicate record type %d shard %d, want insert for %d", w.id, rec.Type, rec.Shard, id)
	}
	items, err := durable.DecodeInsert(rec.Data, w.cfg.Schema.NumDims())
	if err != nil {
		return nil, err
	}
	rs := w.replica(id)
	if rs != nil {
		rs.mu.RLock()
		if !rs.promoted {
			err := rs.store.BulkLoad(items)
			rs.mu.RUnlock()
			if err != nil {
				return nil, err
			}
			atomicMax(&rs.head, seq)
			atomicMax(&rs.applied, seq)
			rs.lag.Set(float64(rs.lagRecords()))
			out := wire.NewWriter(8)
			out.Uvarint(rs.applied.Load())
			return out.Bytes(), nil
		}
		rs.mu.RUnlock()
		// Promoted between lookup and apply: fall through to the owned
		// path so the record still lands in WAL-backed state.
	}
	if st := w.shard(id); st != nil {
		// The standby was promoted here (the record streams from an old
		// primary that has not been demoted yet): apply through the normal
		// insert path, which logs to the WAL and re-ships downstream.
		if err := w.Insert(ctx, id, items); err != nil {
			return nil, err
		}
		out := wire.NewWriter(8)
		out.Uvarint(seq)
		return out.Bytes(), nil
	}
	return nil, fmt.Errorf("worker %s: no replica of shard %d", w.id, id)
}

func (w *Worker) handleReplStatus(context.Context, []byte) ([]byte, error) {
	return EncodeReplStatus(w.ReplStatus()), nil
}

func (w *Worker) handlePromote(_ context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := image.ShardID(r.Uvarint())
	if r.Err() != nil {
		return nil, r.Err()
	}
	n, err := w.Promote(id)
	if err != nil {
		return nil, err
	}
	out := wire.NewWriter(8)
	out.Uvarint(n)
	return out.Bytes(), nil
}

func (w *Worker) handleDemote(_ context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := image.ShardID(r.Uvarint())
	dest := r.String()
	if r.Err() != nil {
		return nil, r.Err()
	}
	return nil, w.Demote(id, dest)
}

// --- replica-served queries ------------------------------------------------

// EncodeReplicaQueryRequest builds the payload for worker.queryreplica.
func EncodeReplicaQueryRequest(q keys.Rect, shards []image.ShardID, maxLag uint64) []byte {
	w := wire.NewWriter(64)
	q.Encode(w)
	w.Uvarint(maxLag)
	w.Uvarint(uint64(len(shards)))
	for _, id := range shards {
		w.Uvarint(uint64(id))
	}
	return w.Bytes()
}

// ReplicaQueryReply is the decoded result of worker.queryreplica.
type ReplicaQueryReply struct {
	Agg    core.Aggregate
	Served []image.ShardID
	MaxLag uint64 // highest watermark distance among the served shards
}

// DecodeReplicaQueryReply parses a worker.queryreplica response.
func DecodeReplicaQueryReply(b []byte) (ReplicaQueryReply, error) {
	r := wire.NewReader(b)
	agg, err := core.DecodeAggregate(r)
	if err != nil {
		return ReplicaQueryReply{}, err
	}
	rep := ReplicaQueryReply{Agg: agg}
	n := r.Uvarint()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		rep.Served = append(rep.Served, image.ShardID(r.Uvarint()))
	}
	rep.MaxLag = r.Uvarint()
	return rep, r.Err()
}

// QueryReplicas answers a bounded-staleness read from standby state:
// each requested shard is served from its local standby when the lag
// watermark is within maxLag — or from the owned store if this worker
// was promoted meanwhile — and skipped otherwise. Skipped shards are
// simply absent from Served; the caller falls back to the leader.
func (w *Worker) QueryReplicas(ctx context.Context, q keys.Rect, ids []image.ShardID, maxLag uint64) (ReplicaQueryReply, error) {
	rep := ReplicaQueryReply{Agg: core.NewAggregate()}
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return ReplicaQueryReply{}, err
		}
		if rs := w.replica(id); rs != nil {
			lag := rs.lagRecords()
			if lag > maxLag {
				continue
			}
			rs.mu.RLock()
			if !rs.promoted {
				part := rs.store.Query(q)
				rs.mu.RUnlock()
				rep.Agg.Merge(part)
				rep.Served = append(rep.Served, id)
				if lag > rep.MaxLag {
					rep.MaxLag = lag
				}
				continue
			}
			rs.mu.RUnlock()
		}
		// Promoted (or owned for any other reason): the local store is the
		// leader copy — serve it at lag zero instead of bouncing the
		// caller back to a dead old primary.
		if st := w.shard(id); st != nil {
			ans, err := w.queryOneShard(ctx, id, q, 1, -1)
			if err != nil || !ans.ok {
				continue
			}
			rep.Agg.Merge(ans.agg)
			rep.Served = append(rep.Served, id)
		}
	}
	return rep, nil
}

func (w *Worker) handleQueryReplica(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	q, err := keys.DecodeRect(r)
	if err != nil {
		return nil, err
	}
	maxLag := r.Uvarint()
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	ids := make([]image.ShardID, 0, n)
	for i := uint64(0); i < n; i++ {
		ids = append(ids, image.ShardID(r.Uvarint()))
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	rep, err := w.QueryReplicas(ctx, q, ids, maxLag)
	if err != nil {
		return nil, err
	}
	out := wire.NewWriter(48 + 4*len(rep.Served))
	rep.Agg.Encode(out)
	out.Uvarint(uint64(len(rep.Served)))
	for _, id := range rep.Served {
		out.Uvarint(uint64(id))
	}
	out.Uvarint(rep.MaxLag)
	return out.Bytes(), nil
}
