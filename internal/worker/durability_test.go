package worker

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/image"
	"repro/internal/keys"
	"repro/internal/netmsg"
)

// startDurableWorker boots a worker with a durable log over dir and
// recovers whatever the directory already holds.
func startDurableWorker(tb testing.TB, id, dir string, mode durable.Mode) (*Worker, *durable.Recovery, *netmsg.Client) {
	tb.Helper()
	inprocSeq++
	w := New(id, testConfig(tb))
	d, err := durable.Open(dir, id, mode, durable.Config{
		GroupInterval: time.Millisecond,
		Metrics:       w.Metrics(),
	})
	if err != nil {
		tb.Fatal(err)
	}
	rec, err := w.AttachDurability(d)
	if err != nil {
		tb.Fatal(err)
	}
	addr, err := w.Listen(fmt.Sprintf("inproc://wdur-%s-%d", id, inprocSeq))
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(w.Close)
	c, err := netmsg.Dial(addr)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(c.Close)
	return w, rec, c
}

func queryCount(tb testing.TB, w *Worker, id image.ShardID) uint64 {
	tb.Helper()
	agg, ok, err := w.QueryShard(context.Background(), id, keys.AllRect(w.cfg.Schema))
	if err != nil {
		tb.Fatalf("QueryShard: %v", err)
	}
	if !ok {
		return 0
	}
	return agg.Count
}

// TestWorkerCrashRecover: a sync-mode worker crashes mid-life and a
// replacement over the same directory recovers every acknowledged insert.
func TestWorkerCrashRecover(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))

	w, rec, _ := startDurableWorker(t, "w1", dir, durable.ModeSync)
	if len(rec.Shards) != 0 {
		t.Fatalf("fresh dir recovered %d shards", len(rec.Shards))
	}
	if err := w.CreateShard(1); err != nil {
		t.Fatal(err)
	}
	if err := w.CreateShard(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := w.Insert(ctx, 1, randItems(rng, w.cfg, 25)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Insert(ctx, 2, randItems(rng, w.cfg, 40)); err != nil {
		t.Fatal(err)
	}
	w.Crash()

	w2, rec2, _ := startDurableWorker(t, "w1", dir, durable.ModeSync)
	if len(rec2.Shards) != 2 {
		t.Fatalf("recovered %d shards, want 2", len(rec2.Shards))
	}
	if n := queryCount(t, w2, 1); n != 500 {
		t.Errorf("shard 1 recovered %d items, want 500", n)
	}
	if n := queryCount(t, w2, 2); n != 40 {
		t.Errorf("shard 2 recovered %d items, want 40", n)
	}
	// The recovered worker keeps serving and persisting.
	if err := w2.Insert(ctx, 1, randItems(rng, w2.cfg, 10)); err != nil {
		t.Fatal(err)
	}
	w2.Crash()

	w3, _, _ := startDurableWorker(t, "w1", dir, durable.ModeSync)
	if n := queryCount(t, w3, 1); n != 510 {
		t.Errorf("shard 1 after second recovery = %d items, want 510", n)
	}
}

// TestWorkerCheckpointRecover: an explicit checkpoint truncates the WAL
// so recovery replays only the post-snapshot tail.
func TestWorkerCheckpointRecover(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(8))

	w, _, _ := startDurableWorker(t, "w1", dir, durable.ModeSync)
	if err := w.CreateShard(1); err != nil {
		t.Fatal(err)
	}
	if err := w.Insert(ctx, 1, randItems(rng, w.cfg, 300)); err != nil {
		t.Fatal(err)
	}
	if err := w.CheckpointShard(1); err != nil {
		t.Fatal(err)
	}
	if err := w.Insert(ctx, 1, randItems(rng, w.cfg, 50)); err != nil {
		t.Fatal(err)
	}
	w.Crash()

	w2, rec, _ := startDurableWorker(t, "w1", dir, durable.ModeSync)
	if rec.ReplayedRecords != 1 {
		t.Errorf("replayed %d records, want 1 (snapshot covers the first insert)", rec.ReplayedRecords)
	}
	if n := queryCount(t, w2, 1); n != 350 {
		t.Errorf("recovered %d items, want 350", n)
	}
}

// TestWorkerSplitDurable: both halves of a split survive a crash under
// their own identities.
func TestWorkerSplitDurable(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(9))

	w, _, _ := startDurableWorker(t, "w1", dir, durable.ModeSync)
	if err := w.CreateShard(1); err != nil {
		t.Fatal(err)
	}
	if err := w.Insert(ctx, 1, randItems(rng, w.cfg, 400)); err != nil {
		t.Fatal(err)
	}
	res, err := w.SplitShard(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.LeftCount+res.RightCount != 400 {
		t.Fatalf("split counts %d+%d != 400", res.LeftCount, res.RightCount)
	}
	// Post-split inserts land in the halves' own logs.
	if err := w.Insert(ctx, 1, randItems(rng, w.cfg, 10)); err != nil {
		t.Fatal(err)
	}
	w.Crash()

	w2, rec, _ := startDurableWorker(t, "w1", dir, durable.ModeSync)
	if len(rec.Shards) != 2 {
		t.Fatalf("recovered %d shards, want 2", len(rec.Shards))
	}
	left, right := queryCount(t, w2, 1), queryCount(t, w2, 2)
	if left != res.LeftCount+10 {
		t.Errorf("left recovered %d, want %d", left, res.LeftCount+10)
	}
	if right != res.RightCount {
		t.Errorf("right recovered %d, want %d", right, res.RightCount)
	}
}

// TestWorkerMigrateDurable: after a migration the sender's durable state
// is a tombstone (never resurrected) and the receiver's copy survives a
// crash.
func TestWorkerMigrateDurable(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(10))

	wa, _, _ := startDurableWorker(t, "wa", dirA, durable.ModeSync)
	wb, _, _ := startDurableWorker(t, "wb", dirB, durable.ModeSync)
	if err := wa.CreateShard(1); err != nil {
		t.Fatal(err)
	}
	if err := wa.Insert(ctx, 1, randItems(rng, wa.cfg, 200)); err != nil {
		t.Fatal(err)
	}
	shipped, err := wa.SendShard(1, wb.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if shipped != 200 {
		t.Fatalf("shipped %d items, want 200", shipped)
	}
	// Post-migration inserts reach the receiver's log via forwarding.
	if err := wa.Insert(ctx, 1, randItems(rng, wa.cfg, 5)); err != nil {
		t.Fatal(err)
	}
	wa.Crash()
	wb.Crash()

	wa2, recA, _ := startDurableWorker(t, "wa", dirA, durable.ModeSync)
	if len(recA.Shards) != 0 {
		t.Fatalf("sender resurrected %d shards after migration", len(recA.Shards))
	}
	if recA.Released != 1 {
		t.Errorf("sender Released = %d, want 1", recA.Released)
	}
	_ = wa2

	wb2, recB, _ := startDurableWorker(t, "wb", dirB, durable.ModeSync)
	if len(recB.Shards) != 1 {
		t.Fatalf("receiver recovered %d shards, want 1", len(recB.Shards))
	}
	if n := queryCount(t, wb2, 1); n != 205 {
		t.Errorf("receiver recovered %d items, want 205", n)
	}
}
