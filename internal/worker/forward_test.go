package worker

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/image"
	"repro/internal/keys"
	"repro/internal/netmsg"
)

// TestForwardErrContract pins the moved-error mapping servers depend on:
// transport failures reaching a forwarding destination become the moved
// sentinel (refresh your image), while genuine remote handler errors
// pass through untouched.
func TestForwardErrContract(t *testing.T) {
	const dest = "inproc://gone-worker"
	cases := []struct {
		name      string
		err       error
		wantMoved bool
	}{
		{"nil passes", nil, false},
		{"conn lost maps to moved", netmsg.ErrConnLost, true},
		{"timeout maps to moved", netmsg.ErrTimeout, true},
		{"dial failure maps to moved", errors.New("netmsg: no inproc listener"), true},
		{"remote error passes through", &netmsg.RemoteError{Op: "worker.insert", Msg: "bad item"}, false},
	}
	for _, tc := range cases {
		got := forwardErr(tc.err, dest)
		if tc.err == nil {
			if got != nil {
				t.Errorf("%s: forwardErr(nil) = %v", tc.name, got)
			}
			continue
		}
		isMoved := got != nil && strings.HasPrefix(got.Error(), MovedPrefix)
		if isMoved != tc.wantMoved {
			t.Errorf("%s: forwardErr = %v, moved=%v want %v", tc.name, got, isMoved, tc.wantMoved)
		}
		if tc.wantMoved {
			if got.Error() != MovedPrefix+dest {
				t.Errorf("%s: moved error %q does not name the destination", tc.name, got)
			}
			if !IsStaleRouteMsg(got.Error()) {
				t.Errorf("%s: moved error not classified stale by IsStaleRouteMsg", tc.name)
			}
		} else if !errors.Is(got, tc.err) && got != tc.err {
			var re *netmsg.RemoteError
			if !errors.As(got, &re) {
				t.Errorf("%s: remote error not preserved: %v", tc.name, got)
			}
		}
	}
}

// TestIsStaleRouteMsg pins the message fragments the server's error
// classifier keys on.
func TestIsStaleRouteMsg(t *testing.T) {
	cases := []struct {
		msg  string
		want bool
	}{
		{MovedPrefix + "inproc://w2", true},
		{"worker w0: unknown shard 7", true},
		{"worker w0: shard 7 unavailable", false},
		{"some other error", false},
	}
	for _, tc := range cases {
		if got := IsStaleRouteMsg(tc.msg); got != tc.want {
			t.Errorf("IsStaleRouteMsg(%q) = %v, want %v", tc.msg, got, tc.want)
		}
	}
}

// TestInsertForwardToDeadPeer checks the live path: a shard whose
// forwarding destination is unreachable reports the moved sentinel so
// the caller re-resolves ownership instead of retrying this worker.
func TestInsertForwardToDeadPeer(t *testing.T) {
	w, _ := startWorker(t, "fw0")
	const id = image.ShardID(3)
	if err := w.CreateShard(id); err != nil {
		t.Fatal(err)
	}
	// Simulate a completed migration: store gone, forward set to an
	// address nobody listens on.
	st := w.shard(id)
	st.mu.Lock()
	st.store = nil
	st.forward = "inproc://nobody-here"
	st.mu.Unlock()

	rng := rand.New(rand.NewSource(5))
	err := w.Insert(context.Background(), id, randItems(rng, w.cfg, 5))
	if err == nil || !strings.HasPrefix(err.Error(), MovedPrefix) {
		t.Fatalf("insert to dead forward = %v, want %q prefix", err, MovedPrefix)
	}
	if _, _, err := w.QueryShard(context.Background(), id, keys.AllRect(w.cfg.Schema)); err == nil || !IsStaleRouteMsg(err.Error()) {
		t.Fatalf("query to dead forward = %v, want stale-route error", err)
	}
}
