package worker

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/image"
	"repro/internal/keys"
	"repro/internal/netmsg"
	"repro/internal/wire"
)

var inprocSeq int

func testConfig(tb testing.TB) *image.ClusterConfig {
	tb.Helper()
	schema := hierarchy.MustSchema(
		hierarchy.MustDimension("A",
			hierarchy.Level{Name: "L1", Fanout: 10},
			hierarchy.Level{Name: "L2", Fanout: 10}),
		hierarchy.MustDimension("B",
			hierarchy.Level{Name: "L1", Fanout: 40}),
	)
	return &image.ClusterConfig{
		Schema: schema,
		Store:  core.StoreHilbertPDC,
		Keys:   keys.MDS,
		MDSCap: 4, LeafCapacity: 32, DirCapacity: 8,
	}
}

func startWorker(tb testing.TB, id string) (*Worker, *netmsg.Client) {
	tb.Helper()
	inprocSeq++
	w := New(id, testConfig(tb))
	addr, err := w.Listen(fmt.Sprintf("inproc://wtest-%s-%d", id, inprocSeq))
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(w.Close)
	c, err := netmsg.Dial(addr)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(c.Close)
	return w, c
}

func randItems(rng *rand.Rand, cfg *image.ClusterConfig, n int) []core.Item {
	items := make([]core.Item, n)
	for i := range items {
		items[i] = core.Item{
			Coords:  []uint64{uint64(rng.Intn(100)), uint64(rng.Intn(40))},
			Measure: 1,
		}
	}
	return items
}

func TestCreateInsertQueryRPC(t *testing.T) {
	w, c := startWorker(t, "w1")
	cfg := w.cfg
	if _, err := c.Request("worker.createshard", EncodeInsertRequest(1, 0, nil)[:1]); err != nil {
		t.Fatal(err)
	}
	// Duplicate create fails.
	if _, err := c.Request("worker.createshard", EncodeInsertRequest(1, 0, nil)[:1]); err == nil {
		t.Fatal("duplicate create should fail")
	}
	rng := rand.New(rand.NewSource(1))
	items := randItems(rng, cfg, 500)
	if _, err := c.Request("worker.insert", EncodeInsertRequest(1, 2, items)); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Request("worker.query", EncodeQueryRequest(keys.AllRect(cfg.Schema), []image.ShardID{1}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := DecodeQueryReply(resp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Agg.Count != 500 || rep.ShardsSearched != 1 {
		t.Fatalf("query = %v searched %d", rep.Agg, rep.ShardsSearched)
	}
	// Unknown shard in a query is skipped, not an error.
	resp, err = c.Request("worker.query", EncodeQueryRequest(keys.AllRect(cfg.Schema), []image.ShardID{1, 99}))
	if err != nil {
		t.Fatal(err)
	}
	rep, _ = DecodeQueryReply(resp)
	if rep.ShardsSearched != 1 {
		t.Errorf("unknown shard searched = %d", rep.ShardsSearched)
	}
	// Insert to an unknown shard is an error.
	if err := w.Insert(context.Background(), 42, items[:1]); err == nil {
		t.Error("insert to unknown shard should fail")
	}
	if n := w.ShardCount(1); n != 500 {
		t.Errorf("ShardCount = %d", n)
	}
	if n := w.ShardCount(77); n != 0 {
		t.Errorf("ShardCount of unknown = %d", n)
	}
}

func TestBulkLoadRPC(t *testing.T) {
	w, c := startWorker(t, "wb")
	if err := w.CreateShard(1); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	items := randItems(rng, w.cfg, 2000)
	if _, err := c.Request("worker.bulkload", EncodeInsertRequest(1, 2, items)); err != nil {
		t.Fatal(err)
	}
	if n := w.ShardCount(1); n != 2000 {
		t.Fatalf("count after bulk = %d", n)
	}
}

func TestMeta(t *testing.T) {
	w, _ := startWorker(t, "wm")
	w.CreateShard(1)
	w.CreateShard(2)
	rng := rand.New(rand.NewSource(3))
	w.Insert(context.Background(), 1, randItems(rng, w.cfg, 100))
	m := w.Meta()
	if m.ID != "wm" || m.Shards != 2 || m.Items != 100 || m.MemBytes == 0 {
		t.Fatalf("meta = %+v", m)
	}
	if m.Addr == "" || m.UpdatedMs == 0 {
		t.Error("meta missing addr/timestamp")
	}
}

func TestStatsPublication(t *testing.T) {
	w, _ := startWorker(t, "ws")
	w.CreateShard(1)
	var mu sync.Mutex
	var got []*image.WorkerMeta
	w.StartStats(func(m *image.WorkerMeta) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	}, 10*time.Millisecond)
	time.Sleep(50 * time.Millisecond)
	w.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(got) < 2 {
		t.Fatalf("stats published %d times", len(got))
	}
}

func TestSplitShard(t *testing.T) {
	w, c := startWorker(t, "wsp")
	w.CreateShard(1)
	rng := rand.New(rand.NewSource(5))
	items := randItems(rng, w.cfg, 3000)
	if err := w.Insert(context.Background(), 1, items); err != nil {
		t.Fatal(err)
	}
	// Plan via RPC.
	if _, err := c.Request("worker.splitquery", EncodeSplitRequest(1, 0)[:1]); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Request("worker.splitshard", EncodeSplitRequest(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := DecodeSplitResult(resp)
	if err != nil {
		t.Fatal(err)
	}
	if res.LeftCount+res.RightCount != 3000 {
		t.Fatalf("split lost items: %d + %d", res.LeftCount, res.RightCount)
	}
	if res.LeftCount == 0 || res.RightCount == 0 {
		t.Fatal("degenerate split")
	}
	if w.ShardCount(1) != res.LeftCount || w.ShardCount(2) != res.RightCount {
		t.Error("hosted counts do not match split result")
	}
	// Together the halves answer like the original.
	agg1, ok, _ := w.QueryShard(context.Background(), 1, keys.AllRect(w.cfg.Schema))
	agg2, ok2, _ := w.QueryShard(context.Background(), 2, keys.AllRect(w.cfg.Schema))
	if !ok || !ok2 || agg1.Count+agg2.Count != 3000 {
		t.Fatalf("halves query %d + %d", agg1.Count, agg2.Count)
	}
	// Splitting into an existing ID fails.
	if _, err := w.SplitShard(1, 2); err == nil {
		t.Error("split into existing ID should fail")
	}
	if _, err := w.SplitShard(42, 43); err == nil {
		t.Error("split of unknown shard should fail")
	}
}

// TestSplitUnderLoad splits while writers keep inserting; conservation
// must hold afterwards.
func TestSplitUnderLoad(t *testing.T) {
	w, _ := startWorker(t, "wsl")
	w.CreateShard(1)
	rng := rand.New(rand.NewSource(7))
	if err := w.Insert(context.Background(), 1, randItems(rng, w.cfg, 2000)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var inserted sync.Map
	total := 2000
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			n := 0
			for i := 0; i < 500; i++ {
				if err := w.Insert(context.Background(), 1, randItems(r, w.cfg, 1)); err != nil {
					t.Error(err)
					return
				}
				n++
			}
			inserted.Store(seed, n)
		}(int64(g + 10))
	}
	res, err := w.SplitShard(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	wg.Wait()
	inserted.Range(func(_, v any) bool {
		total += v.(int)
		return true
	})
	got := w.ShardCount(1) + w.ShardCount(2)
	if got != uint64(total) {
		t.Fatalf("after split under load: %d items, want %d", got, total)
	}
}

// TestMigration ships a shard to another worker, with writers running,
// and checks conservation and forwarding.
func TestMigration(t *testing.T) {
	src, _ := startWorker(t, "wsrc")
	dst, _ := startWorker(t, "wdst")
	src.CreateShard(1)
	rng := rand.New(rand.NewSource(9))
	if err := src.Insert(context.Background(), 1, randItems(rng, src.cfg, 2000)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	extra := 0
	var extraMu sync.Mutex
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(11))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := src.Insert(context.Background(), 1, randItems(r, src.cfg, 1)); err != nil {
				t.Error(err)
				return
			}
			extraMu.Lock()
			extra++
			extraMu.Unlock()
		}
	}()
	time.Sleep(10 * time.Millisecond)

	shipped, err := src.SendShard(1, dst.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if shipped < 2000 {
		t.Fatalf("shipped only %d", shipped)
	}
	close(stop)
	wg.Wait()

	extraMu.Lock()
	want := uint64(2000 + extra)
	extraMu.Unlock()

	// Queries against the source forward to the destination; counts
	// converge once the writer stops.
	deadline := time.Now().Add(3 * time.Second)
	for {
		agg, ok, err := src.QueryShard(context.Background(), 1, keys.AllRect(src.cfg.Schema))
		if err != nil {
			t.Fatal(err)
		}
		if ok && agg.Count == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("forwarded query = %v (ok=%v), want %d", agg, ok, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if dst.ShardCount(1) != want {
		t.Fatalf("destination has %d items, want %d", dst.ShardCount(1), want)
	}
	// Inserts to the source keep working via forwarding.
	if err := src.Insert(context.Background(), 1, randItems(rng, src.cfg, 5)); err != nil {
		t.Fatal(err)
	}
	if dst.ShardCount(1) != want+5 {
		t.Fatalf("forwarded inserts missing: %d", dst.ShardCount(1))
	}
	// Source reports zero local items for the shard now.
	if src.Meta().Items != 0 {
		t.Errorf("source still reports %d items", src.Meta().Items)
	}
}

func TestSendShardErrors(t *testing.T) {
	w, _ := startWorker(t, "wse")
	if _, err := w.SendShard(9, "inproc://nowhere"); err == nil {
		t.Error("sending unknown shard should fail")
	}
	w.CreateShard(1)
	rng := rand.New(rand.NewSource(13))
	w.Insert(context.Background(), 1, randItems(rng, w.cfg, 10))
	if _, err := w.SendShard(1, "inproc://nowhere"); err == nil {
		t.Error("sending to unreachable worker should fail")
	}
	// Shard still fully usable after the rollback.
	if n := w.ShardCount(1); n != 10 {
		t.Fatalf("after rollback count = %d", n)
	}
	if err := w.Insert(context.Background(), 1, randItems(rng, w.cfg, 3)); err != nil {
		t.Fatal(err)
	}
	if n := w.ShardCount(1); n != 13 {
		t.Fatalf("after rollback insert count = %d", n)
	}
}

// TestReceiveShardErrors checks schema guarding and double-hosting.
func TestReceiveShardErrors(t *testing.T) {
	a, _ := startWorker(t, "wra")
	b, _ := startWorker(t, "wrb")
	a.CreateShard(1)
	rng := rand.New(rand.NewSource(15))
	a.Insert(context.Background(), 1, randItems(rng, a.cfg, 50))
	if _, err := a.SendShard(1, b.Addr()); err != nil {
		t.Fatal(err)
	}
	// Re-sending the same shard: source no longer hosts it.
	if _, err := a.SendShard(1, b.Addr()); err == nil {
		t.Error("re-sending a migrated shard should fail")
	}
	// Receiving garbage fails.
	c, err := netmsg.Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := wire.NewWriter(16)
	w.Uvarint(9)
	w.Bytes1([]byte("garbage"))
	if _, err := c.Request("worker.receiveshard", w.Bytes()); err == nil {
		t.Error("garbage shard blob should fail")
	}
	// Receiving a shard ID that is already hosted fails.
	blob := func() []byte {
		st, _ := core.NewStore(b.cfg.StoreConfig())
		_ = st.BulkLoad(randItems(rng, b.cfg, 10))
		return st.Serialize()
	}()
	w = wire.NewWriter(len(blob) + 8)
	w.Uvarint(1) // b hosts shard 1 now
	w.Bytes1(blob)
	if _, err := c.Request("worker.receiveshard", w.Bytes()); err == nil {
		t.Error("double-hosting should fail")
	}
}

// TestShardCounts checks the manager-facing per-shard statistics RPC.
func TestShardCounts(t *testing.T) {
	w, c := startWorker(t, "wsc")
	w.CreateShard(1)
	w.CreateShard(2)
	rng := rand.New(rand.NewSource(16))
	w.Insert(context.Background(), 1, randItems(rng, w.cfg, 30))
	w.Insert(context.Background(), 2, randItems(rng, w.cfg, 70))
	resp, err := c.Request("worker.shardcounts", nil)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := DecodeShardCounts(resp)
	if err != nil {
		t.Fatal(err)
	}
	if counts[1] != 30 || counts[2] != 70 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestPing(t *testing.T) {
	_, c := startWorker(t, "wping")
	resp, err := c.Request("worker.ping", nil)
	if err != nil || string(resp) != "pong" {
		t.Fatalf("ping = %q %v", resp, err)
	}
}

// TestTraceForwardPropagation checks that a traced insert against a
// migrated-away shard records the trace ID on both the forwarding worker
// (with a forward event) and the destination worker.
func TestTraceForwardPropagation(t *testing.T) {
	src, _ := startWorker(t, "wtfsrc")
	dst, _ := startWorker(t, "wtfdst")
	src.CreateShard(1)
	rng := rand.New(rand.NewSource(21))
	if err := src.Insert(context.Background(), 1, randItems(rng, src.cfg, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := src.SendShard(1, dst.Addr()); err != nil {
		t.Fatal(err)
	}

	ctx, traceID := netmsg.EnsureTraceID(context.Background())
	if err := src.Insert(ctx, 1, randItems(rng, src.cfg, 5)); err != nil {
		t.Fatal(err)
	}
	forwarded := false
	for _, ev := range src.Trace().For(traceID) {
		if ev.Op == "worker.insert.forward" {
			forwarded = true
		}
	}
	if !forwarded {
		t.Errorf("source trace has no forward event: %+v", src.Trace().For(traceID))
	}
	if !dst.Trace().Has(traceID) {
		t.Errorf("destination trace is missing trace %d: %+v", traceID, dst.Trace().Events())
	}

	// The traced query path forwards the same way.
	qctx, qID := netmsg.EnsureTraceID(context.Background())
	if _, _, err := src.QueryShard(qctx, 1, keys.AllRect(src.cfg.Schema)); err != nil {
		t.Fatal(err)
	}
	if !dst.Trace().Has(qID) {
		t.Errorf("destination trace is missing query trace %d", qID)
	}
}
