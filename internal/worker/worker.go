// Package worker implements VOLAP's worker nodes (§III-A, §III-E): each
// worker stores several shards in memory, executes insert and aggregate
// query operations on them in parallel, publishes shard statistics to the
// coordination service, and participates in load balancing — splitting
// shards, serializing and migrating them to other workers — while
// continuing to serve both inserts (via per-shard insertion queues) and
// queries (shard plus queue are consulted) throughout.
package worker

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/image"
	"repro/internal/keys"
	"repro/internal/metrics"
	"repro/internal/netmsg"
	"repro/internal/rollup"
	"repro/internal/wire"
)

// shardState is one hosted shard. The store itself is internally
// concurrent; the state's lock guards the queue/forward transitions made
// by load-balancing operations (§III-E mapping table) and the moves of
// buffered items into the store (see ingest.go).
type shardState struct {
	mu      sync.RWMutex
	store   core.Store
	queue   core.Store // non-nil while a split or migration is in progress
	forward string     // destination worker address after migration

	buf *ingestBuf // insertion buffer; non-nil when the ingest pipeline is on

	repl *replShip // follower links when this worker is the shard's primary

	// roll holds the shard's materialized rollup tables (nil when none
	// are configured). The tables mirror the store exactly: every batch
	// applied to the store is folded into them under the same shard-lock
	// hold, and rollup reads merge queue + buffer on top, so a rollup
	// answer equals a raw scan under any read-lock observation.
	roll *rollup.Set

	// Per-shard metric handles, resolved once at creation so the hot
	// insert/query paths skip label formatting and map lookups.
	insertLat *metrics.Histogram
	queryLat  *metrics.Histogram
	items     *metrics.Gauge
	rollCells *metrics.Gauge
}

// Options tunes a worker's intra-node parallelism. The zero value
// reproduces the paper's synchronous single-threaded-per-request
// behavior exactly.
type Options struct {
	// IngestWorkers is the size of the background drain pool of the
	// asynchronous ingest pipeline. 0 (the default) disables the
	// pipeline: inserts apply inline on the RPC goroutine before the
	// ack, byte-for-byte today's semantics.
	IngestWorkers int
	// MaxPendingItems bounds each shard's insertion buffer; an insert
	// that would overflow it blocks until a drain frees room
	// (backpressure). 0 means DefaultMaxPendingItems.
	MaxPendingItems int
	// QueryParallelism bounds the per-request shard fan-out of
	// multi-shard queries and the root fan-out of single-shard tree
	// queries. 0 means GOMAXPROCS; 1 forces sequential processing.
	QueryParallelism int
}

// withDefaults resolves zero fields.
func (o Options) withDefaults() Options {
	if o.IngestWorkers < 0 {
		o.IngestWorkers = 0
	}
	if o.MaxPendingItems <= 0 {
		o.MaxPendingItems = DefaultMaxPendingItems
	}
	if o.QueryParallelism <= 0 {
		o.QueryParallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Worker is one worker node.
type Worker struct {
	id   string
	cfg  *image.ClusterConfig
	opts Options
	srv  *netmsg.Server
	addr string

	mu     sync.RWMutex
	shards map[image.ShardID]*shardState

	peerMu sync.Mutex
	peers  map[string]*netmsg.Client // addr -> client (for forwarding/migration)

	replMu   sync.Mutex
	replicas map[image.ShardID]*replicaState // standby copies this worker hosts

	fault *netmsg.FaultInjector // chaos testing; nil in production

	// durability; nil when running in the paper's pure in-memory mode
	dur      *durable.Log
	stopCkpt chan struct{}
	ckptWg   sync.WaitGroup

	// ingest pipeline drain pool (see ingest.go); nil channels when off
	ingestCh   chan *shardState
	stopIngest chan struct{}
	ingestWg   sync.WaitGroup

	statPublish func(*image.WorkerMeta) // set by Start when a coordinator is attached
	stopStats   chan struct{}
	statsWg     sync.WaitGroup
	closeOnce   sync.Once

	// observability
	reg        *metrics.Registry
	trace      *metrics.TraceLog
	insertLat  *metrics.HistogramVec // worker_insert_seconds{shard}
	queryLat   *metrics.HistogramVec // worker_query_seconds{shard}
	shardItems *metrics.GaugeVec     // worker_shard_items{shard}
	forwards   *metrics.Counter      // worker_forwards_total

	// Pipeline metrics. The two histograms record counts, not
	// durations: a value of n is stored as n on the histogram's
	// microsecond scale, so percentiles read back as plain counts.
	ingestItems   *metrics.Gauge     // worker_ingest_queue_items
	drainBatch    *metrics.Histogram // worker_drain_batch_items
	queryParallel *metrics.Histogram // worker_query_parallel_shards

	// replication metrics
	shipBytes  *metrics.Counter  // replica_ship_bytes_total
	shipFails  *metrics.Counter  // replica_ship_failures_total
	replicaLag *metrics.GaugeVec // replica_lag_records{shard}

	// rollup metrics
	rollupHits  *metrics.Counter  // rollup_hits_total
	rollupCells *metrics.GaugeVec // rollup_cells{shard}
}

// MovedPrefix is the error prefix returned when a shard has migrated
// away and forwarding is impossible; servers refresh their image and
// retry (§III-E).
const MovedPrefix = "worker: shard moved to "

// unknownShardFrag appears in errors for shards this worker has never
// hosted — a server whose image is stale relative to a migration or
// split sees these.
const unknownShardFrag = "unknown shard"

// peerTimeout bounds forwarding and migration RPCs between workers.
const peerTimeout = 10 * time.Second

// IsStaleRouteMsg reports whether a worker error message indicates the
// sender's routing image is stale: the shard moved away, or this worker
// never hosted it. Servers react by refreshing the shard's global record
// and retrying.
func IsStaleRouteMsg(msg string) bool {
	return strings.Contains(msg, MovedPrefix) || strings.Contains(msg, unknownShardFrag)
}

// New builds a worker (not yet listening) with default options: the
// synchronous ingest path and GOMAXPROCS query parallelism.
func New(id string, cfg *image.ClusterConfig) *Worker {
	return NewWithOptions(id, cfg, Options{})
}

// NewWithOptions builds a worker with explicit parallelism options.
func NewWithOptions(id string, cfg *image.ClusterConfig, opts Options) *Worker {
	opts = opts.withDefaults()
	reg := metrics.NewRegistry()
	w := &Worker{
		id:            id,
		cfg:           cfg,
		opts:          opts,
		shards:        make(map[image.ShardID]*shardState),
		peers:         make(map[string]*netmsg.Client),
		replicas:      make(map[image.ShardID]*replicaState),
		reg:           reg,
		trace:         metrics.NewTraceLog(0),
		insertLat:     reg.Histogram("worker_insert_seconds", "shard"),
		queryLat:      reg.Histogram("worker_query_seconds", "shard"),
		shardItems:    reg.Gauge("worker_shard_items", "shard"),
		forwards:      reg.Counter("worker_forwards_total").With(),
		ingestItems:   reg.Gauge("worker_ingest_queue_items").With(),
		drainBatch:    reg.Histogram("worker_drain_batch_items").With(),
		queryParallel: reg.Histogram("worker_query_parallel_shards").With(),
		shipBytes:     reg.Counter("replica_ship_bytes_total").With(),
		shipFails:     reg.Counter("replica_ship_failures_total").With(),
		replicaLag:    reg.Gauge("replica_lag_records", "shard"),
		rollupHits:    reg.Counter("rollup_hits_total").With(),
		rollupCells:   reg.Gauge("rollup_cells", "shard"),
	}
	if opts.IngestWorkers > 0 {
		w.ingestCh = make(chan *shardState, 256)
		w.stopIngest = make(chan struct{})
		w.ingestWg.Add(opts.IngestWorkers)
		for i := 0; i < opts.IngestWorkers; i++ {
			go w.ingestLoop()
		}
	}
	return w
}

// newShardState builds the state for one hosted shard, resolving its
// metric handles once and attaching an insertion buffer when the ingest
// pipeline is enabled.
func (w *Worker) newShardState(id image.ShardID) *shardState {
	lbl := shardLabel(id)
	st := &shardState{
		insertLat: w.insertLat.With(lbl),
		queryLat:  w.queryLat.With(lbl),
		items:     w.shardItems.With(lbl),
		rollCells: w.rollupCells.With(lbl),
		roll:      rollup.NewSet(w.cfg.Schema, w.cfg.Rollups),
	}
	if w.opts.IngestWorkers > 0 {
		st.buf = newIngestBuf(w.opts.MaxPendingItems)
	}
	return st
}

// ID returns the worker's identifier.
func (w *Worker) ID() string { return w.id }

// Metrics returns the worker's metric registry (for the /metrics
// endpoint and tests).
func (w *Worker) Metrics() *metrics.Registry { return w.reg }

// Trace returns the worker's recent trace events.
func (w *Worker) Trace() *metrics.TraceLog { return w.trace }

// traceAdd records one trace event if the context carries a trace ID.
func (w *Worker) traceAdd(ctx context.Context, op, detail string) {
	if id := netmsg.TraceIDFrom(ctx); id != 0 {
		w.trace.Add(id, "worker/"+w.id, op, detail)
	}
}

func shardLabel(id image.ShardID) string { return strconv.FormatUint(uint64(id), 10) }

// Addr returns the bound address (after Listen).
func (w *Worker) Addr() string { return w.addr }

// SetFaults wires a fault injector into the worker's serving side and
// its peer (forwarding/migration) connections, labeled "worker/<id>".
// Call before Listen.
func (w *Worker) SetFaults(f *netmsg.FaultInjector) {
	w.fault = f
	if w.srv != nil {
		w.srv.SetFaults(f, "worker/"+w.id)
	}
}

// Listen binds the worker's RPC server.
func (w *Worker) Listen(addr string) (string, error) {
	srv := netmsg.NewServer()
	srv.SetFaults(w.fault, "worker/"+w.id)
	srv.Handle("worker.createshard", w.handleCreateShard)
	srv.Handle("worker.insert", w.handleInsert)
	srv.Handle("worker.bulkload", w.handleBulkLoad)
	srv.Handle("worker.query", w.handleQuery)
	srv.Handle("worker.groupby", w.handleGroupBy)
	srv.Handle("worker.stats", w.handleStats)
	srv.Handle("worker.shardcounts", w.handleShardCounts)
	srv.Handle("worker.opstats", w.handleOpStats)
	srv.Handle("worker.splitquery", w.handleSplitQuery)
	srv.Handle("worker.splitshard", w.handleSplitShard)
	srv.Handle("worker.sendshard", w.handleSendShard)
	srv.Handle("worker.receiveshard", w.handleReceiveShard)
	srv.Handle("worker.addreplica", w.handleAddReplica)
	srv.Handle("worker.dropreplica", w.handleDropReplica)
	srv.Handle("worker.replicaseed", w.handleReplicaSeed)
	srv.Handle("worker.replicate", w.handleReplicate)
	srv.Handle("worker.replicastatus", w.handleReplStatus)
	srv.Handle("worker.promote", w.handlePromote)
	srv.Handle("worker.demote", w.handleDemote)
	srv.Handle("worker.queryreplica", w.handleQueryReplica)
	srv.Handle("worker.ping", func(context.Context, []byte) ([]byte, error) { return []byte("pong"), nil })
	bound, err := srv.Listen(addr)
	if err != nil {
		return "", err
	}
	w.srv = srv
	w.addr = bound
	return bound, nil
}

// StartStats begins periodic statistics publication through publish (the
// server-side half lives in the coordinator); the paper's workers "update
// shard statistics in Zookeeper periodically" (§III-B).
func (w *Worker) StartStats(publish func(*image.WorkerMeta), interval time.Duration) {
	w.statPublish = publish
	w.stopStats = make(chan struct{})
	w.statsWg.Add(1)
	go func() {
		defer w.statsWg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			publish(w.Meta())
			select {
			case <-w.stopStats:
				return
			case <-tick.C:
			}
		}
	}()
}

// Meta snapshots the worker's statistics and refreshes the per-shard
// item-count gauges as a side effect (it runs on the stats interval).
func (w *Worker) Meta() *image.WorkerMeta {
	w.mu.RLock()
	defer w.mu.RUnlock()
	m := &image.WorkerMeta{ID: w.id, Addr: w.addr, UpdatedMs: time.Now().UnixMilli()}
	for _, st := range w.shards {
		st.mu.RLock()
		if st.store != nil {
			n := shardItemsLocked(st)
			m.Shards++
			m.Items += n
			m.MemBytes += st.store.MemoryBytes()
			st.items.Set(float64(n))
			if st.roll != nil {
				st.rollCells.Set(float64(st.roll.Cells()))
			}
		}
		st.mu.RUnlock()
	}
	return m
}

// shardItemsLocked counts a shard's items across store, queue and
// insertion buffer. The caller holds the shard's (read) lock and has
// checked store != nil.
func shardItemsLocked(st *shardState) uint64 {
	n := st.store.Count()
	if st.queue != nil {
		n += st.queue.Count()
	}
	if st.buf != nil {
		n += uint64(st.buf.len())
	}
	return n
}

// ShardCount returns the item count of one shard (0 if absent).
func (w *Worker) ShardCount(id image.ShardID) uint64 {
	w.mu.RLock()
	st := w.shards[id]
	w.mu.RUnlock()
	if st == nil {
		return 0
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	var n uint64
	if st.store != nil {
		n += st.store.Count()
	}
	if st.queue != nil {
		n += st.queue.Count()
	}
	if st.buf != nil {
		n += uint64(st.buf.len())
	}
	return n
}

// Close stops the worker gracefully, flushing and fsyncing any attached
// durable log. It is idempotent.
func (w *Worker) Close() {
	w.shutdown(false)
}

// Crash stops the worker abruptly: the durable log's file descriptors
// are closed without flushing, the closest an in-process test can get to
// SIGKILL. Unsynced async-mode records are lost, exactly as they would
// be from a real crash.
func (w *Worker) Crash() {
	w.shutdown(true)
}

func (w *Worker) shutdown(crash bool) {
	w.closeOnce.Do(func() {
		if w.stopStats != nil {
			close(w.stopStats)
			w.statsWg.Wait()
		}
		if w.stopCkpt != nil {
			close(w.stopCkpt)
			w.ckptWg.Wait()
		}
		if w.srv != nil {
			w.srv.Close()
		}
		if w.stopIngest != nil {
			close(w.stopIngest)
			w.ingestWg.Wait()
			if !crash {
				// Graceful close: apply every acknowledged item. A crash
				// skips this — buffered items survive only through the
				// WAL, exactly like the old in-flight applies.
				w.Flush()
			}
		}
		w.peerMu.Lock()
		for _, c := range w.peers {
			c.Close()
		}
		w.peers = nil
		w.peerMu.Unlock()
		if w.dur != nil {
			if crash {
				w.dur.Crash()
			} else {
				w.dur.Close()
			}
		}
	})
}

// peer returns (dialing if needed) a client to another worker.
func (w *Worker) peer(addr string) (*netmsg.Client, error) {
	w.peerMu.Lock()
	defer w.peerMu.Unlock()
	if w.peers == nil {
		return nil, netmsg.ErrClosed
	}
	if c, ok := w.peers[addr]; ok {
		return c, nil
	}
	c, err := netmsg.DialOptions(addr, netmsg.DialOpts{
		DefaultTimeout: peerTimeout,
		Metrics:        w.reg,
		Fault:          w.fault,
		Party:          "worker/" + w.id,
	})
	if err != nil {
		return nil, err
	}
	w.peers[addr] = c
	return c, nil
}

// forwardErr maps a failed forwarding RPC onto the moved-error contract:
// a transport failure reaching the destination means the caller should
// re-resolve the shard's owner from the global image rather than keep
// hammering this tombstone. Genuine remote handler errors pass through.
func forwardErr(err error, dest string) error {
	if err == nil {
		return nil
	}
	var re *netmsg.RemoteError
	if errors.As(err, &re) {
		return err
	}
	return errors.New(MovedPrefix + dest)
}

func (w *Worker) shard(id image.ShardID) *shardState {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.shards[id]
}

// CreateShard installs a fresh empty shard store.
func (w *Worker) CreateShard(id image.ShardID) error {
	store, err := core.NewStore(w.cfg.StoreConfig())
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.shards[id]; dup {
		return fmt.Errorf("worker: shard %d already hosted", id)
	}
	if w.dur != nil {
		if err := w.dur.CreateShard(uint64(id)); err != nil {
			return err
		}
	}
	st := w.newShardState(id)
	st.store = store
	w.shards[id] = st
	return nil
}

// --- wire helpers --------------------------------------------------------

// encodeItems appends items to the writer.
func encodeItems(w *wire.Writer, dims int, items []core.Item) {
	w.Uvarint(uint64(len(items)))
	for _, it := range items {
		for _, c := range it.Coords {
			w.Uvarint(c)
		}
		w.Float64(it.Measure)
	}
}

// decodeItems reads items written by encodeItems. All coordinate slices
// sub-slice one flat backing array, so a batch costs two allocations
// instead of one per item on the hot RPC decode path.
func decodeItems(r *wire.Reader, dims int) ([]core.Item, error) {
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n == 0 {
		return nil, nil
	}
	// Every item occupies at least one varint byte per coordinate plus
	// an 8-byte measure, so a hostile count cannot force a huge
	// allocation out of a short payload.
	if minBytes := uint64(dims + 8); n > uint64(r.Remaining())/minBytes {
		return nil, fmt.Errorf("worker: item count %d exceeds payload", n)
	}
	flat := make([]uint64, int(n)*dims)
	items := make([]core.Item, 0, n)
	for i := uint64(0); i < n; i++ {
		coords := flat[:dims:dims]
		flat = flat[dims:]
		for d := range coords {
			coords[d] = r.Uvarint()
		}
		m := r.Float64()
		if r.Err() != nil {
			return nil, r.Err()
		}
		items = append(items, core.Item{Coords: coords, Measure: m})
	}
	return items, nil
}

// EncodeInsertRequest builds the payload for worker.insert / bulkload.
func EncodeInsertRequest(shard image.ShardID, dims int, items []core.Item) []byte {
	w := wire.NewWriter(16 + len(items)*(dims*4+8))
	w.Uvarint(uint64(shard))
	encodeItems(w, dims, items)
	return w.Bytes()
}

// EncodeQueryRequest builds the payload for worker.query.
func EncodeQueryRequest(q keys.Rect, shards []image.ShardID) []byte {
	return EncodeQueryRequestRollup(q, shards, -1)
}

// EncodeQueryRequestRollup is EncodeQueryRequest carrying the cluster
// rollup definition the worker may answer from (-1 forces the tree).
// The definition index rides as an optional trailing field, so
// rollup-unaware workers still parse the request.
func EncodeQueryRequestRollup(q keys.Rect, shards []image.ShardID, defIdx int) []byte {
	w := wire.NewWriter(64)
	q.Encode(w)
	w.Uvarint(uint64(len(shards)))
	for _, id := range shards {
		w.Uvarint(uint64(id))
	}
	if defIdx >= 0 {
		w.Uvarint(uint64(defIdx) + 1)
	}
	return w.Bytes()
}

// QueryReply is the decoded result of worker.query.
type QueryReply struct {
	Agg            core.Aggregate
	ShardsSearched uint32
	// RollupShards counts the searched shards answered from a
	// materialized rollup table; RollupCells the cells those answers
	// merged. Zero when the tree answered everything.
	RollupShards uint32
	RollupCells  uint64
}

// DecodeQueryReply parses a worker.query response.
func DecodeQueryReply(b []byte) (QueryReply, error) {
	r := wire.NewReader(b)
	agg, err := core.DecodeAggregate(r)
	if err != nil {
		return QueryReply{}, err
	}
	rep := QueryReply{Agg: agg, ShardsSearched: uint32(r.Uvarint())}
	// Rollup fields are absent from pre-rollup replies.
	if r.Err() == nil && r.Remaining() > 0 {
		rep.RollupShards = uint32(r.Uvarint())
		rep.RollupCells = r.Uvarint()
	}
	return rep, r.Err()
}

// --- RPC handlers ----------------------------------------------------------

func (w *Worker) handleCreateShard(_ context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := image.ShardID(r.Uvarint())
	if r.Err() != nil {
		return nil, r.Err()
	}
	return nil, w.CreateShard(id)
}

func (w *Worker) handleInsert(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := image.ShardID(r.Uvarint())
	items, err := decodeItems(r, w.cfg.Schema.NumDims())
	if err != nil {
		return nil, err
	}
	return nil, w.Insert(ctx, id, items)
}

// Insert applies items to a shard: through the asynchronous ingest
// pipeline when it is enabled (ack after buffer append + WAL append),
// otherwise inline on the calling goroutine; diverting to the insertion
// queue during load-balancing operations and forwarding (with the
// caller's trace context) after a migration.
func (w *Worker) Insert(ctx context.Context, id image.ShardID, items []core.Item) error {
	w.traceAdd(ctx, "worker.insert", "shard "+shardLabel(id))
	st := w.shard(id)
	if st == nil {
		return fmt.Errorf("worker %s: unknown shard %d", w.id, id)
	}
	defer st.insertLat.Time()()
	if st.buf != nil {
		if handled, err := w.insertBuffered(ctx, st, id, items); handled {
			return err
		}
		// Queue active, forwarded, or gone: fall through to the
		// synchronous paths, which handle those states.
	}
	st.mu.RLock()
	switch {
	case st.queue != nil:
		q := st.queue
		defer st.mu.RUnlock()
		if err := q.BulkLoad(items); err != nil {
			return err
		}
		// Queued items are logged against the original shard: a split
		// re-snapshots both halves afterwards, and a migration ships them
		// before releasing, so replay stays consistent either way.
		return w.appendInsert(id, items)
	case st.store != nil:
		s := st.store
		defer st.mu.RUnlock()
		// Validate-then-bulk-apply: BulkLoad rejects the whole batch
		// before touching the store and, in Hilbert mode, applies it in
		// curve order (every store implements it natively).
		if err := s.BulkLoad(items); err != nil {
			return err
		}
		st.roll.Add(items)
		if err := w.appendInsert(id, items); err != nil {
			return err
		}
		// Replicate under the same read-lock hold as apply + WAL append,
		// before the ack: see replica.go for the contract.
		w.shipToReplicas(ctx, st, id, items)
		return nil
	case st.forward != "":
		dest := st.forward
		st.mu.RUnlock()
		peer, err := w.peer(dest)
		if err != nil {
			return errors.New(MovedPrefix + dest)
		}
		w.forwards.Inc()
		w.traceAdd(ctx, "worker.insert.forward", dest)
		_, err = peer.RequestCtx(ctx, "worker.insert", EncodeInsertRequest(id, w.cfg.Schema.NumDims(), items))
		return forwardErr(err, dest)
	default:
		st.mu.RUnlock()
		return fmt.Errorf("worker %s: shard %d unavailable", w.id, id)
	}
}

func (w *Worker) handleBulkLoad(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := image.ShardID(r.Uvarint())
	items, err := decodeItems(r, w.cfg.Schema.NumDims())
	if err != nil {
		return nil, err
	}
	w.traceAdd(ctx, "worker.bulkload", "shard "+shardLabel(id))
	st := w.shard(id)
	if st == nil {
		return nil, fmt.Errorf("worker %s: unknown shard %d", w.id, id)
	}
	defer st.insertLat.Time()()
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.queue != nil {
		if err := st.queue.BulkLoad(items); err != nil {
			return nil, err
		}
		return nil, w.appendInsert(id, items)
	}
	if st.store == nil {
		return nil, fmt.Errorf("worker %s: shard %d unavailable", w.id, id)
	}
	if err := st.store.BulkLoad(items); err != nil {
		return nil, err
	}
	st.roll.Add(items)
	if err := w.appendInsert(id, items); err != nil {
		return nil, err
	}
	w.shipToReplicas(ctx, st, id, items)
	return nil, nil
}

func (w *Worker) handleQuery(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	q, err := keys.DecodeRect(r)
	if err != nil {
		return nil, err
	}
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	ids := make([]image.ShardID, 0, n)
	for i := uint64(0); i < n; i++ {
		ids = append(ids, image.ShardID(r.Uvarint()))
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	defIdx := -1
	if r.Remaining() > 0 {
		defIdx = int(r.Uvarint()) - 1
		if r.Err() != nil {
			return nil, r.Err()
		}
	}
	w.traceAdd(ctx, "worker.query", "")
	rep, err := w.queryShards(ctx, q, ids, defIdx)
	if err != nil {
		return nil, err
	}
	out := wire.NewWriter(48)
	rep.Agg.Encode(out)
	out.Uvarint(uint64(rep.ShardsSearched))
	out.Uvarint(uint64(rep.RollupShards))
	out.Uvarint(rep.RollupCells)
	return out.Bytes(), nil
}

// QueryShards aggregates a set of shards, fanning them across up to
// Options.QueryParallelism goroutines with per-shard partial merge; the
// first error cancels the remaining shards' contexts. Single-shard
// requests instead fan out across the tree's root subtrees
// (core.ParallelQuerier). Returns the merged aggregate and how many
// shards contributed.
func (w *Worker) QueryShards(ctx context.Context, q keys.Rect, ids []image.ShardID) (core.Aggregate, uint32, error) {
	rep, err := w.queryShards(ctx, q, ids, -1)
	return rep.Agg, rep.ShardsSearched, err
}

// queryShards is QueryShards with an optional rollup definition index
// each shard may answer from (-1 forces the tree), reporting how many
// shards took the rollup path.
func (w *Worker) queryShards(ctx context.Context, q keys.Rect, ids []image.ShardID, defIdx int) (QueryReply, error) {
	par := w.opts.QueryParallelism
	if len(ids) <= 1 || par <= 1 {
		// Sequential path; a lone shard still parallelizes inside its
		// tree when it is the only work on the request.
		rep := QueryReply{Agg: core.NewAggregate()}
		treePar := 1
		if len(ids) == 1 {
			treePar = par
		}
		for _, id := range ids {
			part, err := w.queryOneShard(ctx, id, q, treePar, defIdx)
			if err != nil {
				return QueryReply{Agg: core.NewAggregate()}, err
			}
			mergeShardAnswer(&rep, part)
		}
		return rep, nil
	}

	if par > len(ids) {
		par = len(ids)
	}
	w.queryParallel.Record(time.Duration(par) * time.Microsecond)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type partial struct {
		ans shardAnswer
		err error
	}
	parts := make([]partial, len(ids))
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(par)
	for g := 0; g < par; g++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					parts[i].err = ctx.Err()
					continue
				}
				ans, err := w.queryOneShard(ctx, ids[i], q, 1, defIdx)
				parts[i] = partial{ans: ans, err: err}
				if err != nil {
					cancel() // first error stops the fan-out
				}
			}
		}()
	}
	for i := range ids {
		next <- i
	}
	close(next)
	wg.Wait()

	// Merge in shard order so float sums stay deterministic for a given
	// request; report the first real error (not a cancellation echo).
	rep := QueryReply{Agg: core.NewAggregate()}
	var firstErr error
	for _, p := range parts {
		if p.err != nil && (firstErr == nil || errors.Is(firstErr, context.Canceled)) {
			firstErr = p.err
		}
	}
	if firstErr != nil {
		return QueryReply{Agg: core.NewAggregate()}, firstErr
	}
	for _, p := range parts {
		mergeShardAnswer(&rep, p.ans)
	}
	return rep, nil
}

// shardAnswer is one shard's contribution to a multi-shard query.
type shardAnswer struct {
	agg   core.Aggregate
	ok    bool // the shard contributed (false for unknown shards)
	hit   bool // answered from a rollup table instead of the tree
	cells uint64
}

// mergeShardAnswer folds one shard's answer into a reply.
func mergeShardAnswer(rep *QueryReply, ans shardAnswer) {
	if !ans.ok {
		return
	}
	rep.Agg.Merge(ans.agg)
	rep.ShardsSearched++
	if ans.hit {
		rep.RollupShards++
		rep.RollupCells += ans.cells
	}
}

// QueryShard aggregates one shard (including its insertion queue, so
// "query processing is not interrupted while a split is in progress",
// §III-E). Forwards (propagating the trace context) if the shard
// migrated away. The boolean reports whether the shard contributed
// (false for unknown shards, which can happen transiently when a
// server's image is ahead of this worker).
func (w *Worker) QueryShard(ctx context.Context, id image.ShardID, q keys.Rect) (core.Aggregate, bool, error) {
	ans, err := w.queryOneShard(ctx, id, q, 1, -1)
	return ans.agg, ans.ok, err
}

// queryOneShard answers one shard with an explicit tree-level
// parallelism bound and an optional rollup definition index. When the
// definition's grid covers q and the shard holds its table, the answer
// is the covering cells merged with the insertion buffer and the
// split/migration queue — exactly what the tree path reads, at cell
// granularity instead of item granularity.
func (w *Worker) queryOneShard(ctx context.Context, id image.ShardID, q keys.Rect, treePar, defIdx int) (shardAnswer, error) {
	st := w.shard(id)
	if st == nil {
		return shardAnswer{agg: core.NewAggregate()}, nil
	}
	defer st.queryLat.Time()()
	st.mu.RLock()
	store, queue, forward := st.store, st.queue, st.forward
	if store == nil && forward != "" {
		st.mu.RUnlock()
		peer, err := w.peer(forward)
		if err != nil {
			return shardAnswer{agg: core.NewAggregate()}, errors.New(MovedPrefix + forward)
		}
		w.forwards.Inc()
		w.traceAdd(ctx, "worker.query.forward", forward)
		resp, err := peer.RequestCtx(ctx, "worker.query", EncodeQueryRequestRollup(q, []image.ShardID{id}, defIdx))
		if err != nil {
			return shardAnswer{agg: core.NewAggregate()}, forwardErr(err, forward)
		}
		rep, err := DecodeQueryReply(resp)
		return shardAnswer{agg: rep.Agg, ok: rep.ShardsSearched > 0,
			hit: rep.RollupShards > 0, cells: rep.RollupCells}, err
	}
	if store == nil {
		st.mu.RUnlock()
		return shardAnswer{agg: core.NewAggregate()}, nil
	}
	// Hold the read lock so the queue and insertion buffer cannot be
	// drained-and-destroyed between querying the store and them (no
	// double or zero count: drain moves happen under the write lock).
	defer st.mu.RUnlock()
	var agg core.Aggregate
	hit := false
	cells := 0
	if t := st.roll.Table(defIdx); t != nil && defIdx >= 0 && t.Def().Covers(w.cfg.Schema, q) {
		agg, cells = t.Query(q)
		hit = true
		w.rollupHits.Inc()
	} else if pq, ok := store.(core.ParallelQuerier); ok && treePar > 1 {
		agg = pq.QueryParallel(q, treePar)
	} else {
		agg = store.Query(q)
	}
	if queue != nil {
		agg.Merge(queue.Query(q))
	}
	if st.buf != nil {
		agg.Merge(st.buf.query(q))
	}
	return shardAnswer{agg: agg, ok: true, hit: hit, cells: uint64(cells)}, nil
}

func (w *Worker) handleStats(context.Context, []byte) ([]byte, error) {
	return w.Meta().EncodeBytes(), nil
}

// OpLatency is one operation's latency summary, as served by
// worker.opstats and aggregated into ClusterStats.
type OpLatency struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// OpStats summarizes the worker's per-op latency histograms, merged
// across shards.
func (w *Worker) OpStats() map[string]OpLatency {
	out := make(map[string]OpLatency, 2)
	for op, v := range map[string]*metrics.HistogramVec{
		"insert": w.insertLat,
		"query":  w.queryLat,
	} {
		d := v.Merged()
		if d.Count == 0 {
			continue
		}
		out[op] = OpLatency{
			Count: d.Count,
			Mean:  d.Mean(),
			P50:   d.Percentile(0.5),
			P99:   d.Percentile(0.99),
			Max:   d.Max,
		}
	}
	return out
}

func (w *Worker) handleOpStats(context.Context, []byte) ([]byte, error) {
	stats := w.OpStats()
	out := wire.NewWriter(16 + len(stats)*48)
	out.Uvarint(uint64(len(stats)))
	for op, s := range stats {
		out.String(op)
		out.Uvarint(s.Count)
		out.Uvarint(uint64(s.Mean.Microseconds()))
		out.Uvarint(uint64(s.P50.Microseconds()))
		out.Uvarint(uint64(s.P99.Microseconds()))
		out.Uvarint(uint64(s.Max.Microseconds()))
	}
	return out.Bytes(), nil
}

// DecodeOpStats parses a worker.opstats reply.
func DecodeOpStats(b []byte) (map[string]OpLatency, error) {
	r := wire.NewReader(b)
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	out := make(map[string]OpLatency, n)
	for i := uint64(0); i < n; i++ {
		op := r.String()
		out[op] = OpLatency{
			Count: r.Uvarint(),
			Mean:  time.Duration(r.Uvarint()) * time.Microsecond,
			P50:   time.Duration(r.Uvarint()) * time.Microsecond,
			P99:   time.Duration(r.Uvarint()) * time.Microsecond,
			Max:   time.Duration(r.Uvarint()) * time.Microsecond,
		}
	}
	return out, r.Err()
}

// ShardIDs lists every locally hosted shard, sorted ascending.
func (w *Worker) ShardIDs() []image.ShardID {
	w.mu.RLock()
	ids := make([]image.ShardID, 0, len(w.shards))
	for id := range w.shards {
		ids = append(ids, id)
	}
	w.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ShardCounts snapshots the item count of every locally hosted shard.
func (w *Worker) ShardCounts() map[image.ShardID]uint64 {
	w.mu.RLock()
	ids := make([]image.ShardID, 0, len(w.shards))
	for id := range w.shards {
		ids = append(ids, id)
	}
	w.mu.RUnlock()
	out := make(map[image.ShardID]uint64, len(ids))
	for _, id := range ids {
		st := w.shard(id)
		if st == nil {
			continue
		}
		st.mu.RLock()
		if st.store != nil {
			out[id] = shardItemsLocked(st)
		}
		st.mu.RUnlock()
	}
	return out
}

func (w *Worker) handleShardCounts(_ context.Context, p []byte) ([]byte, error) {
	counts := w.ShardCounts()
	out := wire.NewWriter(8 + len(counts)*10)
	out.Uvarint(uint64(len(counts)))
	for id, n := range counts {
		out.Uvarint(uint64(id))
		out.Uvarint(n)
	}
	return out.Bytes(), nil
}

// DecodeShardCounts parses a worker.shardcounts reply.
func DecodeShardCounts(b []byte) (map[image.ShardID]uint64, error) {
	r := wire.NewReader(b)
	n := r.Uvarint()
	out := make(map[image.ShardID]uint64, n)
	for i := uint64(0); i < n; i++ {
		id := image.ShardID(r.Uvarint())
		out[id] = r.Uvarint()
	}
	return out, r.Err()
}
