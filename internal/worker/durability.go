package worker

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/image"
	"repro/internal/rollup"
)

// This file attaches the durable subsystem to the worker. The ordering
// contract with internal/durable:
//
//   - inserts apply to the store/queue and append to the shard's WAL
//     under the shard's read lock, so a checkpoint (serialize + WAL
//     rotation under the write lock) observes no half-applied pair —
//     every record in sealed generations is contained in the snapshot,
//     and replay never double-applies;
//   - a split adopts the new right half durably and checkpoints the
//     surviving left half before the split returns, so the durable state
//     tracks the mapping-table flip (§III-E);
//   - a migration releases the shard (force-synced WAL record, manifest
//     tombstone) only after the destination acknowledged the whole copy,
//     so a crash at any point leaves at least one complete owner.

// checkpointPoll is how often the background loop tests shards against
// the snapshot thresholds.
const checkpointPoll = 500 * time.Millisecond

// AttachDurability recovers every shard owned by d's manifest, installs
// the rebuilt stores, and begins logging all subsequent writes to d.
// Call after New and before Listen (no concurrent operations). The
// returned report says what was replayed.
func (w *Worker) AttachDurability(d *durable.Log) (*durable.Recovery, error) {
	// Rollup tables recover alongside the stores: the winning snapshot's
	// trailer restores the cells as of that snapshot, and replayed WAL
	// batches fold in incrementally — no post-recovery rescan of the raw
	// items unless a shard has no usable trailer (pre-rollup snapshot,
	// or the configured definitions changed).
	sets := make(map[uint64]*rollup.Set)
	hooks := durable.RecoverHooks{
		SnapshotTrailer: func(shard uint64, trailer []byte) {
			set, err := rollup.DecodeTrailer(trailer, w.cfg.Schema, w.cfg.Rollups)
			if err == nil && set != nil {
				sets[shard] = set
			}
		},
		Replayed: func(shard uint64, items []core.Item) {
			sets[shard].Add(items)
		},
	}
	rec, err := d.RecoverWithHooks(w.cfg.Schema.NumDims(), func() (core.Store, error) {
		return core.NewStore(w.cfg.StoreConfig())
	}, hooks)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	for id, store := range rec.Shards {
		sid := image.ShardID(id)
		if _, dup := w.shards[sid]; dup {
			w.mu.Unlock()
			return nil, fmt.Errorf("worker %s: recovered shard %d already hosted", w.id, id)
		}
		st := w.newShardState(sid)
		st.store = store
		if set := sets[id]; set != nil {
			st.roll = set
		} else if len(w.cfg.Rollups) > 0 {
			st.roll = rollup.Rebuild(w.cfg.Schema, w.cfg.Rollups, store.Items)
		}
		w.shards[sid] = st
	}
	w.dur = d
	w.mu.Unlock()

	w.stopCkpt = make(chan struct{})
	w.ckptWg.Add(1)
	go w.checkpointLoop()
	return rec, nil
}

// Durability returns the attached log (nil when running in-memory only).
func (w *Worker) Durability() *durable.Log { return w.dur }

// appendInsert logs an applied insert batch; the caller holds the
// shard's read lock, ordering it against checkpoints.
func (w *Worker) appendInsert(id image.ShardID, items []core.Item) error {
	if w.dur == nil {
		return nil
	}
	return w.dur.AppendInsert(uint64(id), w.cfg.Schema.NumDims(), items)
}

// CheckpointShard snapshots one shard and truncates its WAL. Shards in
// the middle of a split or migration are skipped (those operations
// checkpoint their own outcome).
func (w *Worker) CheckpointShard(id image.ShardID) error {
	if w.dur == nil {
		return nil
	}
	st := w.shard(id)
	if st == nil {
		return fmt.Errorf("worker %s: unknown shard %d", w.id, id)
	}
	// The write lock excludes in-flight apply+append pairs: the serialized
	// blob contains every record of the generations the rotation seals.
	// Buffered items were WAL-logged at ack time, so they must be flushed
	// into the store before it is serialized — otherwise the rotation
	// would seal their records out of replay.
	st.mu.Lock()
	if st.store == nil || st.queue != nil {
		st.mu.Unlock()
		return nil
	}
	w.drainLocked(st)
	// Composite blob: the store image plus the rollup trailer, so
	// recovery restores the tables without rescanning the raw items.
	blob := append(st.store.Serialize(), st.roll.EncodeTrailer()...)
	err := w.dur.RotateWAL(uint64(id))
	st.mu.Unlock()
	if err != nil {
		return err
	}
	return w.dur.WriteSnapshot(uint64(id), blob)
}

// checkpointLoop periodically checkpoints shards whose WAL outgrew the
// snapshot thresholds, bounding recovery replay time.
func (w *Worker) checkpointLoop() {
	defer w.ckptWg.Done()
	tick := time.NewTicker(checkpointPoll)
	defer tick.Stop()
	for {
		select {
		case <-w.stopCkpt:
			return
		case <-tick.C:
		}
		w.mu.RLock()
		ids := make([]image.ShardID, 0, len(w.shards))
		for id := range w.shards {
			ids = append(ids, id)
		}
		w.mu.RUnlock()
		for _, id := range ids {
			if w.dur.ShouldCheckpoint(uint64(id)) {
				_ = w.CheckpointShard(id) // sticky WAL errors resurface on the next append
			}
		}
	}
}
