package worker

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/image"
	"repro/internal/keys"
	"repro/internal/netmsg"
)

// startWorkerOpts is startWorker with explicit parallelism options.
func startWorkerOpts(tb testing.TB, id string, opts Options) (*Worker, *netmsg.Client) {
	tb.Helper()
	inprocSeq++
	w := NewWithOptions(id, testConfig(tb), opts)
	addr, err := w.Listen(fmt.Sprintf("inproc://wpipe-%s-%d", id, inprocSeq))
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(w.Close)
	c, err := netmsg.Dial(addr)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(c.Close)
	return w, c
}

// TestPipelineVisibility: with the ingest pipeline on, an acknowledged
// insert is immediately visible to queries and stats — whether it is
// still buffered, mid-drain, or applied — and Flush leaves the store
// holding everything.
func TestPipelineVisibility(t *testing.T) {
	w, _ := startWorkerOpts(t, "wpv", Options{IngestWorkers: 2})
	if err := w.CreateShard(1); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(21))
	total := uint64(0)
	for i := 0; i < 50; i++ {
		if err := w.Insert(ctx, 1, randItems(rng, w.cfg, 20)); err != nil {
			t.Fatal(err)
		}
		total += 20
		// Exact-count visibility right after the ack, no matter where
		// the items sit.
		if n := queryCount(t, w, 1); n != total {
			t.Fatalf("after insert %d: query count = %d, want %d", i, n, total)
		}
		if n := w.ShardCount(1); n != total {
			t.Fatalf("after insert %d: ShardCount = %d, want %d", i, n, total)
		}
	}
	w.Flush()
	st := w.shard(1)
	if n := st.buf.len(); n != 0 {
		t.Fatalf("buffer holds %d items after Flush", n)
	}
	st.mu.RLock()
	stored := st.store.Count()
	st.mu.RUnlock()
	if stored != total {
		t.Fatalf("store holds %d after Flush, want %d", stored, total)
	}
}

// TestPipelineInvalidItems: validation happens before the ack, so a bad
// batch is rejected whole and never pollutes the buffer.
func TestPipelineInvalidItems(t *testing.T) {
	w, _ := startWorkerOpts(t, "wpi", Options{IngestWorkers: 1})
	if err := w.CreateShard(1); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bad := randItems(rand.New(rand.NewSource(3)), w.cfg, 4)
	bad[2].Coords = []uint64{0, 9999} // out of dimension B's range
	if err := w.Insert(ctx, 1, bad); err == nil {
		t.Fatal("invalid batch should fail")
	}
	w.Flush()
	if n := queryCount(t, w, 1); n != 0 {
		t.Fatalf("rejected batch leaked %d items", n)
	}
}

// TestPipelineBackpressure: a tiny buffer forces inserters to block on
// drains; every acknowledged item must still arrive exactly once.
func TestPipelineBackpressure(t *testing.T) {
	w, _ := startWorkerOpts(t, "wbp", Options{IngestWorkers: 1, MaxPendingItems: 8})
	if err := w.CreateShard(1); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	const writers, perWriter = 4, 300
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				if err := w.Insert(ctx, 1, randItems(r, w.cfg, 3)); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(g + 100))
	}
	wg.Wait()
	w.Flush()
	want := uint64(writers * perWriter * 3)
	if n := queryCount(t, w, 1); n != want {
		t.Fatalf("count = %d, want %d", n, want)
	}
}

// TestPipelineBackpressureCancel: an insert blocked on a full buffer
// honors context cancellation instead of waiting forever.
func TestPipelineBackpressureCancel(t *testing.T) {
	// No drain goroutine will ever free room: fill the buffer manually,
	// then watch a blocked insert unblock on cancel.
	w, _ := startWorkerOpts(t, "wbc", Options{IngestWorkers: 1, MaxPendingItems: 4})
	if err := w.CreateShard(1); err != nil {
		t.Fatal(err)
	}
	st := w.shard(1)
	// Park the buffer at capacity while holding the drain out: simulate
	// by stuffing items directly without notifying the pool.
	rng := rand.New(rand.NewSource(5))
	st.buf.tryAppend(randItems(rng, w.cfg, 4))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := w.insertBuffered(ctx, st, 1, randItems(rng, w.cfg, 2))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("insert did not block on full buffer (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled insert returned nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled insert never returned")
	}
}

// TestPipelineRaceStress drives concurrent inserts, queries, a split,
// and a migration against pipeline-enabled workers and asserts exact
// conservation at the end. Run under -race this exercises every
// container transition (buffer -> store, buffer -> queue, queue ->
// halves, queue -> shipped copy).
func TestPipelineRaceStress(t *testing.T) {
	src, _ := startWorkerOpts(t, "wrs-src", Options{IngestWorkers: 2, MaxPendingItems: 512, QueryParallelism: 4})
	dst, _ := startWorkerOpts(t, "wrs-dst", Options{IngestWorkers: 2, MaxPendingItems: 512, QueryParallelism: 4})
	if err := src.CreateShard(1); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(31))
	if err := src.Insert(ctx, 1, randItems(rng, src.cfg, 2000)); err != nil {
		t.Fatal(err)
	}

	var inserted atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := 1 + r.Intn(4)
				if err := src.Insert(ctx, 1, randItems(r, src.cfg, n)); err != nil {
					t.Error(err)
					return
				}
				inserted.Add(uint64(n))
			}
		}(int64(g + 40))
	}
	// Readers: multi-shard fan-out across both shards the whole time.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			all := keys.AllRect(src.cfg.Schema)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := src.QueryShards(ctx, all, []image.ShardID{1, 2}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	time.Sleep(5 * time.Millisecond)
	if _, err := src.SplitShard(1, 2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := src.SendShard(2, dst.Addr()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()

	want := 2000 + inserted.Load()
	// Shard 1 lives on src; shard 2 migrated to dst (src forwards).
	agg1, ok1, err1 := src.QueryShard(ctx, 1, keys.AllRect(src.cfg.Schema))
	agg2, ok2, err2 := src.QueryShard(ctx, 2, keys.AllRect(src.cfg.Schema))
	if err1 != nil || err2 != nil || !ok1 || !ok2 {
		t.Fatalf("final queries: %v/%v ok=%v/%v", err1, err2, ok1, ok2)
	}
	if got := agg1.Count + agg2.Count; got != want {
		t.Fatalf("conservation broken: %d + %d = %d items, want %d", agg1.Count, agg2.Count, got, want)
	}
}

// TestPipelineDrainOnCloseDurable: a graceful Close drains the buffers
// and the durable log retains every acknowledged item, in both sync and
// async modes; a sync-mode Crash skips the flush but recovery replays
// the WAL to the same exact count.
func TestPipelineDrainOnCloseDurable(t *testing.T) {
	for _, mode := range []durable.Mode{durable.ModeSync, durable.ModeAsync} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			ctx := context.Background()
			rng := rand.New(rand.NewSource(51))

			w := startDurablePipelineWorker(t, "wdc", dir, mode)
			if err := w.CreateShard(1); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 40; i++ {
				if err := w.Insert(ctx, 1, randItems(rng, w.cfg, 25)); err != nil {
					t.Fatal(err)
				}
			}
			w.Close() // graceful: drains buffers, syncs the log

			w2 := startDurablePipelineWorker(t, "wdc", dir, mode)
			if n := queryCount(t, w2, 1); n != 1000 {
				t.Fatalf("%s close+recover: %d items, want 1000", mode, n)
			}

			if mode != durable.ModeSync {
				return
			}
			// Sync mode also guarantees crash safety with the pipeline on:
			// acked-but-undrained items come back from the WAL.
			if err := w2.Insert(ctx, 1, randItems(rng, w2.cfg, 123)); err != nil {
				t.Fatal(err)
			}
			w2.Crash()
			w3 := startDurablePipelineWorker(t, "wdc", dir, mode)
			if n := queryCount(t, w3, 1); n != 1123 {
				t.Fatalf("sync crash+recover: %d items, want 1123", n)
			}
		})
	}
}

// startDurablePipelineWorker boots a pipeline-enabled worker over dir.
func startDurablePipelineWorker(tb testing.TB, id, dir string, mode durable.Mode) *Worker {
	tb.Helper()
	w := NewWithOptions(id, testConfig(tb), Options{IngestWorkers: 2})
	d, err := durable.Open(dir, id, mode, durable.Config{
		GroupInterval: time.Millisecond,
		Metrics:       w.Metrics(),
	})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := w.AttachDurability(d); err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(w.Close)
	return w
}

// TestPipelineCheckpointFlush: a checkpoint serializes the store after
// draining the buffer, so recovery from snapshot + empty WAL tail is
// exact even when items were still buffered at checkpoint time.
func TestPipelineCheckpointFlush(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(61))

	w := startDurablePipelineWorker(t, "wcf", dir, durable.ModeSync)
	if err := w.CreateShard(1); err != nil {
		t.Fatal(err)
	}
	if err := w.Insert(ctx, 1, randItems(rng, w.cfg, 500)); err != nil {
		t.Fatal(err)
	}
	if err := w.CheckpointShard(1); err != nil {
		t.Fatal(err)
	}
	st := w.shard(1)
	if n := st.buf.len(); n != 0 {
		t.Fatalf("checkpoint left %d items buffered", n)
	}
	w.Crash()

	w2 := startDurablePipelineWorker(t, "wcf", dir, durable.ModeSync)
	if n := queryCount(t, w2, 1); n != 500 {
		t.Fatalf("recovered %d items, want 500", n)
	}
}

// TestPipelineDisabledSynchronous: IngestWorkers 0 must reproduce the
// synchronous semantics — no buffer exists and an acked insert is in
// the store itself before the ack returns.
func TestPipelineDisabledSynchronous(t *testing.T) {
	w, _ := startWorkerOpts(t, "wds", Options{})
	if err := w.CreateShard(1); err != nil {
		t.Fatal(err)
	}
	st := w.shard(1)
	if st.buf != nil {
		t.Fatal("pipeline-off shard has an insertion buffer")
	}
	rng := rand.New(rand.NewSource(71))
	if err := w.Insert(context.Background(), 1, randItems(rng, w.cfg, 10)); err != nil {
		t.Fatal(err)
	}
	st.mu.RLock()
	n := st.store.Count()
	st.mu.RUnlock()
	if n != 10 {
		t.Fatalf("store count right after ack = %d, want 10 (synchronous)", n)
	}
	w.Flush() // no-op without buffers
	if n := queryCount(t, w, 1); n != 10 {
		t.Fatalf("count after no-op Flush = %d", n)
	}
}

// TestQueryShardsParallelMatchesSequential: the parallel fan-out and the
// sequential path agree exactly on every aggregate field.
func TestQueryShardsParallelMatchesSequential(t *testing.T) {
	seqW, _ := startWorkerOpts(t, "wqs-seq", Options{QueryParallelism: 1})
	parW, _ := startWorkerOpts(t, "wqs-par", Options{QueryParallelism: 4})
	rng := rand.New(rand.NewSource(81))
	ids := []image.ShardID{1, 2, 3, 4, 5}
	for _, id := range ids {
		if err := seqW.CreateShard(id); err != nil {
			t.Fatal(err)
		}
		if err := parW.CreateShard(id); err != nil {
			t.Fatal(err)
		}
		items := randItems(rng, seqW.cfg, 800)
		for i := range items {
			items[i].Measure = float64(i%97) - 13
		}
		ctx := context.Background()
		if err := seqW.Insert(ctx, id, items); err != nil {
			t.Fatal(err)
		}
		if err := parW.Insert(ctx, id, items); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	qrng := rand.New(rand.NewSource(82))
	for i := 0; i < 30; i++ {
		lo := uint64(qrng.Intn(60))
		hi := lo + uint64(qrng.Intn(40))
		q := keys.AllRect(seqW.cfg.Schema)
		q.Ivs[0].Lo, q.Ivs[0].Hi = lo, hi
		sa, sn, err := seqW.QueryShards(ctx, q, ids)
		if err != nil {
			t.Fatal(err)
		}
		pa, pn, err := parW.QueryShards(ctx, q, ids)
		if err != nil {
			t.Fatal(err)
		}
		if sa != pa || sn != pn {
			t.Fatalf("query %d: sequential %v/%d != parallel %v/%d", i, sa, sn, pa, pn)
		}
	}
}
