package worker

import (
	"context"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/keys"
)

// This file implements the asynchronous ingest pipeline of §III-E: each
// shard owns a bounded insertion buffer, the insert RPC acknowledges
// after buffer append + WAL append, and a pool of background drain
// goroutines batches buffered items — pre-sorted by compact Hilbert
// index inside core.BulkLoad — into the shard store.
//
// Consistency contract (the same one the split/migration queue obeys):
// an acknowledged item is visible in exactly one container — buffer,
// queue, or store. Appends happen under the shard's read lock; every
// move between containers (drain batches, checkpoint/split/migration
// flushes) happens under the shard's write lock, so concurrent queries
// (which hold the read lock across store + queue + buffer) never see an
// item twice or lose one mid-move.
//
// Durability ordering: the buffer append and the WAL append share one
// read-lock hold, exactly like the old apply+append pair, so a
// checkpoint's write-lock section still observes no half-applied pair.
// Because every acknowledged item is in the WAL before the ack (fsynced
// in sync mode), a crash with a non-empty buffer loses nothing that was
// acknowledged: recovery replays the WAL records. The flush-on-close
// path drains buffers into stores for graceful shutdowns; Crash()
// deliberately skips it.

// maxDrainBatch bounds how many items one drain application takes under
// the shard write lock, bounding the stall it imposes on queries.
const maxDrainBatch = 2048

// DefaultMaxPendingItems is the per-shard insertion-buffer bound when
// Options.MaxPendingItems is zero.
const DefaultMaxPendingItems = 1 << 16

// ingestBuf is one shard's bounded insertion buffer. Its own mutex only
// orders appends against takes and the backpressure waits; visibility
// versus queries and drains is the shard lock's job (see above).
type ingestBuf struct {
	mu        sync.Mutex
	space     *sync.Cond // signaled when a drain frees room
	items     []core.Item
	max       int
	scheduled bool // a drain notification is outstanding
}

func newIngestBuf(max int) *ingestBuf {
	b := &ingestBuf{max: max}
	b.space = sync.NewCond(&b.mu)
	return b
}

// tryAppend adds the batch if it fits under the bound (a batch larger
// than the bound is admitted alone into an empty buffer, so oversized
// batches cannot deadlock). Returns whether the append happened and
// whether the caller must schedule a drain notification.
func (b *ingestBuf) tryAppend(items []core.Item) (appended, schedule bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.items) > 0 && len(b.items)+len(items) > b.max {
		return false, false
	}
	b.items = append(b.items, items...)
	if !b.scheduled {
		b.scheduled = true
		schedule = true
	}
	return true, schedule
}

// waitSpace blocks until a drain frees room or the context is done. The
// caller must not hold any shard lock.
func (b *ingestBuf) waitSpace(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	// Cancellation must wake the cond wait; nothing else watches ctx.
	stop := context.AfterFunc(ctx, func() {
		b.mu.Lock()
		b.space.Broadcast()
		b.mu.Unlock()
	})
	defer stop()
	b.mu.Lock()
	for len(b.items) >= b.max {
		if err := ctx.Err(); err != nil {
			b.mu.Unlock()
			return err
		}
		b.space.Wait()
	}
	b.mu.Unlock()
	return nil
}

// take pops up to max items from the head. When it leaves the buffer
// empty it clears the scheduled flag, so the next append re-notifies.
func (b *ingestBuf) take(max int) []core.Item {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.items)
	if n == 0 {
		b.scheduled = false
		return nil
	}
	if n > max {
		n = max
	}
	batch := b.items[:n:n]
	b.items = b.items[n:]
	if len(b.items) == 0 {
		b.items = nil // let drained batches release their backing array
	}
	b.space.Broadcast()
	return batch
}

// len returns the buffered item count.
func (b *ingestBuf) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items)
}

// query scans the buffered items inside q. The caller holds the shard
// read lock, so no drain can move items concurrently.
func (b *ingestBuf) query(q keys.Rect) core.Aggregate {
	agg := core.NewAggregate()
	b.mu.Lock()
	for i := range b.items {
		if q.ContainsPoint(b.items[i].Coords) {
			agg.AddItem(b.items[i].Measure)
		}
	}
	b.mu.Unlock()
	return agg
}

// scan visits the buffered items inside q. The caller holds the shard
// read lock, so no drain can move items concurrently.
func (b *ingestBuf) scan(q keys.Rect, fn func(core.Item)) {
	b.mu.Lock()
	for i := range b.items {
		if q.ContainsPoint(b.items[i].Coords) {
			fn(b.items[i])
		}
	}
	b.mu.Unlock()
}

// insertBuffered tries the pipeline path: validate, append to the
// buffer, log to the WAL, ack. Returns handled=false when the shard is
// in a state the buffer must not absorb (queue active, forwarded, or
// gone) — the caller falls back to the synchronous path, which is also
// the pipeline-off behavior.
func (w *Worker) insertBuffered(ctx context.Context, st *shardState, id image.ShardID, items []core.Item) (handled bool, err error) {
	// Validate before buffering: the ack promises the whole batch will
	// apply, and the background drain has nobody to report errors to.
	for i := range items {
		if err := w.cfg.Schema.ValidatePoint(items[i].Coords); err != nil {
			return true, err
		}
	}
	for {
		st.mu.RLock()
		if st.queue != nil || st.store == nil {
			st.mu.RUnlock()
			return false, nil
		}
		appended, schedule := st.buf.tryAppend(items)
		if appended {
			// WAL append under the same read-lock hold as the buffer
			// append: the checkpoint write lock cannot interleave, so
			// sealed WAL generations never contain an item the drained
			// snapshot misses.
			err := w.appendInsert(id, items)
			if err == nil {
				// Replicate before the ack, still under the read-lock
				// hold, so demote/split/migrate (write lock) never
				// observe an acked-but-unshipped batch (replica.go).
				w.shipToReplicas(ctx, st, id, items)
			}
			st.mu.RUnlock()
			if err != nil {
				return true, err
			}
			w.ingestItems.Add(float64(len(items)))
			if schedule {
				w.notifyIngest(st)
			}
			return true, nil
		}
		st.mu.RUnlock()
		if err := st.buf.waitSpace(ctx); err != nil {
			return true, err
		}
	}
}

// notifyIngest hands the shard to the drain pool. During shutdown the
// pool is gone; the flush-on-close path picks the items up instead.
func (w *Worker) notifyIngest(st *shardState) {
	select {
	case w.ingestCh <- st:
	case <-w.stopIngest:
	}
}

// ingestLoop is one drain goroutine of the pool.
func (w *Worker) ingestLoop() {
	defer w.ingestWg.Done()
	for {
		select {
		case <-w.stopIngest:
			return
		case st := <-w.ingestCh:
			w.drainBuffer(st)
		}
	}
}

// drainBuffer applies the shard's buffered items batch by batch, each
// batch under the shard write lock so queries see a consistent count.
// BulkLoad pre-sorts each batch by compact Hilbert index, so the
// per-item descents walk neighboring paths instead of random ones.
func (w *Worker) drainBuffer(st *shardState) {
	for {
		st.mu.Lock()
		batch := st.buf.take(maxDrainBatch)
		if len(batch) == 0 {
			st.mu.Unlock()
			return
		}
		target := st.store
		if st.queue != nil {
			target = st.queue
		}
		if target != nil {
			// Items were validated at ack time; BulkLoad re-validates
			// and cannot fail on them.
			_ = target.BulkLoad(batch)
			if st.queue == nil {
				// Rollup tables mirror the store; queued items reach
				// them when the queue drains back or the split/
				// migration rebuild runs.
				st.roll.Add(batch)
			}
		}
		st.mu.Unlock()
		w.ingestItems.Add(-float64(len(batch)))
		w.drainBatch.Record(time.Duration(len(batch)) * time.Microsecond)
	}
}

// drainLocked flushes the whole buffer into the shard's current
// container. The caller holds the shard write lock; every write-lock
// transition (checkpoint serialize, split queue install, migration
// queue install, graceful close) calls this first so the operation
// observes every acknowledged item.
func (w *Worker) drainLocked(st *shardState) {
	if st.buf == nil {
		return
	}
	for {
		batch := st.buf.take(1 << 30)
		if len(batch) == 0 {
			return
		}
		target := st.store
		if st.queue != nil {
			target = st.queue
		}
		if target != nil {
			_ = target.BulkLoad(batch)
			if st.queue == nil {
				st.roll.Add(batch)
			}
		}
		w.ingestItems.Add(-float64(len(batch)))
	}
}

// Flush synchronously drains every shard's insertion buffer into its
// store. Items acknowledged before the call are applied when it
// returns. A no-op when the pipeline is disabled.
func (w *Worker) Flush() {
	w.mu.RLock()
	states := make([]*shardState, 0, len(w.shards))
	for _, st := range w.shards {
		states = append(states, st)
	}
	w.mu.RUnlock()
	for _, st := range states {
		st.mu.Lock()
		w.drainLocked(st)
		st.mu.Unlock()
	}
}
