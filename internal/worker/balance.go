package worker

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/keys"
	"repro/internal/rollup"
	"repro/internal/wire"
)

// This file implements the worker-side load-balancing operations of
// §III-E: SplitQuery, Split (with the mapping-table replacement of one
// shard by two), and shard migration (serialize, transfer, queue drain,
// forwarding). All of them keep the shard fully readable and writable:
// inserts land in an insertion queue and queries consult shard + queue.

// SplitResult reports the outcome of a shard split.
type SplitResult struct {
	LeftID, RightID       image.ShardID
	LeftCount, RightCount uint64
	LeftKey, RightKey     *keys.Key
}

// EncodeSplitRequest builds the payload for worker.splitshard.
func EncodeSplitRequest(shard, newShard image.ShardID) []byte {
	w := wire.NewWriter(16)
	w.Uvarint(uint64(shard))
	w.Uvarint(uint64(newShard))
	return w.Bytes()
}

// DecodeSplitResult parses a worker.splitshard response.
func DecodeSplitResult(b []byte) (*SplitResult, error) {
	r := wire.NewReader(b)
	res := &SplitResult{
		LeftID:     image.ShardID(r.Uvarint()),
		RightID:    image.ShardID(r.Uvarint()),
		LeftCount:  r.Uvarint(),
		RightCount: r.Uvarint(),
	}
	var err error
	if res.LeftKey, err = keys.DecodeKey(r); err != nil {
		return nil, err
	}
	if res.RightKey, err = keys.DecodeKey(r); err != nil {
		return nil, err
	}
	return res, r.Err()
}

func (w *Worker) handleSplitQuery(_ context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := image.ShardID(r.Uvarint())
	if r.Err() != nil {
		return nil, r.Err()
	}
	st := w.shard(id)
	if st == nil {
		return nil, fmt.Errorf("worker %s: unknown shard %d", w.id, id)
	}
	st.mu.RLock()
	store := st.store
	st.mu.RUnlock()
	if store == nil {
		return nil, fmt.Errorf("worker %s: shard %d unavailable", w.id, id)
	}
	h, err := store.SplitQuery()
	if err != nil {
		return nil, err
	}
	out := wire.NewWriter(16)
	out.Varint(int64(h.Dim))
	out.Uvarint(h.Value)
	return out.Bytes(), nil
}

func (w *Worker) handleSplitShard(_ context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := image.ShardID(r.Uvarint())
	newID := image.ShardID(r.Uvarint())
	if r.Err() != nil {
		return nil, r.Err()
	}
	res, err := w.SplitShard(id, newID)
	if err != nil {
		return nil, err
	}
	out := wire.NewWriter(64)
	out.Uvarint(uint64(res.LeftID))
	out.Uvarint(uint64(res.RightID))
	out.Uvarint(res.LeftCount)
	out.Uvarint(res.RightCount)
	res.LeftKey.Encode(out)
	res.RightKey.Encode(out)
	return out.Bytes(), nil
}

// SplitShard splits the shard in place: the original ID keeps the lower
// half and newID receives the upper half (§III-E Split + mapping table).
// Inserts arriving during the split land in the insertion queue and are
// re-routed across the halves by the hyperplane afterwards; queries are
// never blocked.
func (w *Worker) SplitShard(id, newID image.ShardID) (*SplitResult, error) {
	st := w.shard(id)
	if st == nil {
		return nil, fmt.Errorf("worker %s: unknown shard %d", w.id, id)
	}
	if w.shard(newID) != nil {
		return nil, fmt.Errorf("worker %s: shard %d already hosted", w.id, newID)
	}

	// Install the insertion queue.
	queue, err := core.NewStore(w.cfg.StoreConfig())
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	store := st.store
	if store == nil || st.queue != nil {
		st.mu.Unlock()
		return nil, fmt.Errorf("worker %s: shard %d busy or gone", w.id, id)
	}
	// Flush buffered inserts into the store before the queue takes
	// over, so the split plan and both halves observe every
	// acknowledged item; while the queue is installed, inserts bypass
	// the buffer entirely. Replication links are torn down here: a
	// follower's standby would become a stale superset of the halves
	// (promoting it would double-count), so the manager clears the
	// replica set and re-seeds both halves afresh.
	w.drainLocked(st)
	teardownReplLocked(st)
	st.queue = queue
	st.mu.Unlock()

	fail := func(err error) (*SplitResult, error) {
		// Roll back: drain the queue into the store (and the rollup
		// tables, which mirror it) and remove it.
		st.mu.Lock()
		q := st.queue
		st.queue = nil
		st.mu.Unlock()
		if q != nil {
			q.Items(func(it core.Item) bool {
				_ = st.store.Insert(it)
				st.roll.AddItem(it.Coords, it.Measure)
				return true
			})
		}
		return nil, err
	}

	h, err := store.SplitQuery()
	if err != nil {
		return fail(err)
	}
	left, right, err := store.Split(h)
	if err != nil {
		return fail(err)
	}

	// Swap in the halves, draining the queue across them by hyperplane.
	newState := w.newShardState(newID)
	newState.store = right
	st.mu.Lock()
	q := st.queue
	st.queue = nil
	alt := 0
	q.Items(func(it core.Item) bool {
		toLeft := h.Dim >= 0 && it.Coords[h.Dim] <= h.Value
		if h.Dim < 0 {
			toLeft = alt%2 == 0
			alt++
		}
		if toLeft {
			_ = left.Insert(it)
		} else {
			_ = right.Insert(it)
		}
		return true
	})
	st.store = left
	// Rollup tables are not subtractable (Min/Max), so both halves
	// rebuild theirs from the new stores while the write lock excludes
	// readers and writers.
	st.roll = rollup.Rebuild(w.cfg.Schema, w.cfg.Rollups, left.Items)
	newState.roll = rollup.Rebuild(w.cfg.Schema, w.cfg.Rollups, right.Items)

	// Make the flip durable while the write lock still excludes inserts:
	// adopt the right half under its new identity, then seal the original
	// WAL so the left-only snapshot below supersedes pre-split records. A
	// crash before the left snapshot lands replays the full pre-split
	// shard under the original ID while the adopted right half stays an
	// unrouted orphan — results remain correct because the manager only
	// publishes the new mapping after this call returns.
	var leftBlob []byte
	if w.dur != nil {
		durErr := w.dur.AdoptShard(uint64(newID),
			append(right.Serialize(), newState.roll.EncodeTrailer()...))
		if durErr == nil {
			leftBlob = append(left.Serialize(), st.roll.EncodeTrailer()...)
			durErr = w.dur.RotateWAL(uint64(id))
		}
		if durErr != nil {
			// Durable state refused the split: merge the halves back and
			// report failure so the mapping table never flips.
			right.Items(func(it core.Item) bool { _ = left.Insert(it); return true })
			st.roll = rollup.Rebuild(w.cfg.Schema, w.cfg.Rollups, left.Items)
			st.mu.Unlock()
			return nil, durErr
		}
	}
	st.mu.Unlock()

	w.mu.Lock()
	w.shards[newID] = newState
	w.mu.Unlock()

	if w.dur != nil {
		if err := w.dur.WriteSnapshot(uint64(id), leftBlob); err != nil {
			return nil, err
		}
	}

	return &SplitResult{
		LeftID: id, RightID: newID,
		LeftCount: left.Count(), RightCount: right.Count(),
		LeftKey: left.Key(), RightKey: right.Key(),
	}, nil
}

// EncodeSendRequest builds the payload for worker.sendshard.
func EncodeSendRequest(shard image.ShardID, destAddr string) []byte {
	w := wire.NewWriter(32)
	w.Uvarint(uint64(shard))
	w.String(destAddr)
	return w.Bytes()
}

func (w *Worker) handleSendShard(_ context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := image.ShardID(r.Uvarint())
	dest := r.String()
	if r.Err() != nil {
		return nil, r.Err()
	}
	n, err := w.SendShard(id, dest)
	if err != nil {
		return nil, err
	}
	out := wire.NewWriter(8)
	out.Uvarint(n)
	return out.Bytes(), nil
}

// SendShard migrates a shard to the worker at destAddr (§III-E): an
// insertion queue absorbs writes while the shard is serialized and
// transferred, the queue is drained to the destination, and a forwarding
// entry serves stragglers until every server image has caught up. Returns
// the number of items shipped.
func (w *Worker) SendShard(id image.ShardID, destAddr string) (uint64, error) {
	st := w.shard(id)
	if st == nil {
		return 0, fmt.Errorf("worker %s: unknown shard %d", w.id, id)
	}
	queue, err := core.NewStore(w.cfg.StoreConfig())
	if err != nil {
		return 0, err
	}
	st.mu.Lock()
	store := st.store
	if store == nil || st.queue != nil {
		st.mu.Unlock()
		return 0, fmt.Errorf("worker %s: shard %d busy or gone", w.id, id)
	}
	// As in SplitShard: the serialized snapshot below must contain every
	// acknowledged item, and the queue absorbs everything after it.
	// Replication ends here too — the destination owner gets a fresh
	// replica set from the manager's next ensure pass.
	w.drainLocked(st)
	teardownReplLocked(st)
	st.queue = queue
	roll := st.roll
	st.mu.Unlock()

	rollback := func(err error) (uint64, error) {
		st.mu.Lock()
		q := st.queue
		st.queue = nil
		st.mu.Unlock()
		if q != nil {
			q.Items(func(it core.Item) bool {
				_ = store.Insert(it)
				roll.AddItem(it.Coords, it.Measure)
				return true
			})
		}
		return 0, err
	}

	peer, err := w.peer(destAddr)
	if err != nil {
		return rollback(err)
	}

	// Transfer the serialized shard with its rollup trailer, so the
	// destination installs the tables without rescanning the items
	// (inserts are diverted to the queue, so neither moves underneath).
	blob := append(store.Serialize(), roll.EncodeTrailer()...)
	req := wire.NewWriter(len(blob) + 16)
	req.Uvarint(uint64(id))
	req.Bytes1(blob)
	if _, err := peer.Request("worker.receiveshard", req.Bytes()); err != nil {
		return rollback(err)
	}
	shipped := store.Count()

	// Drain the queue in rounds: swap a fresh queue in, ship the old one,
	// and finish under the write lock when a round comes up empty.
	for round := 0; ; round++ {
		st.mu.Lock()
		q := st.queue
		if q.Count() == 0 || round >= 8 {
			// Final round: forward everything still queued while holding
			// the lock, then flip to forwarding mode.
			var leftover []core.Item
			q.Items(func(it core.Item) bool { leftover = append(leftover, it); return true })
			if len(leftover) > 0 {
				if _, err := peer.Request("worker.insert", EncodeInsertRequest(id, w.cfg.Schema.NumDims(), leftover)); err != nil {
					st.mu.Unlock()
					return rollback(err)
				}
				shipped += uint64(len(leftover))
			}
			st.store = nil
			st.queue = nil
			st.roll = nil
			st.rollCells.Set(0)
			st.forward = destAddr
			st.mu.Unlock()
			// The destination has acknowledged the full copy (snapshot +
			// drained queue), so release our durable ownership: a synced
			// WAL record, a manifest tombstone, then file deletion. If the
			// release itself fails the migration still reports failure —
			// the mapping table keeps pointing here and the forwarding
			// entry serves traffic, while recovery may resurrect the shard
			// as a second complete copy (the re-registration CAS converges
			// routing onto one of them).
			if w.dur != nil {
				if err := w.dur.ReleaseShard(uint64(id)); err != nil {
					return shipped, err
				}
			}
			return shipped, nil
		}
		fresh, err := core.NewStore(w.cfg.StoreConfig())
		if err != nil {
			st.mu.Unlock()
			return rollback(err)
		}
		st.queue = fresh
		st.mu.Unlock()

		var batch []core.Item
		q.Items(func(it core.Item) bool { batch = append(batch, it); return true })
		if len(batch) > 0 {
			if _, err := peer.Request("worker.insert", EncodeInsertRequest(id, w.cfg.Schema.NumDims(), batch)); err != nil {
				return rollback(err)
			}
			shipped += uint64(len(batch))
		}
	}
}

func (w *Worker) handleReceiveShard(_ context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := image.ShardID(r.Uvarint())
	blob := r.Bytes1()
	if r.Err() != nil {
		return nil, r.Err()
	}
	store, trailer, err := core.DeserializeStoreTrailer(blob)
	if err != nil {
		return nil, err
	}
	if store.Config().Schema.Fingerprint() != w.cfg.Schema.Fingerprint() {
		return nil, fmt.Errorf("worker %s: received shard with foreign schema", w.id)
	}
	// The sender's rollup trailer rides inside the blob; senders with a
	// different (or no) rollup configuration fall back to a rebuild.
	roll, rerr := rollup.DecodeTrailer(trailer, w.cfg.Schema, w.cfg.Rollups)
	if rerr != nil || roll == nil {
		roll = rollup.Rebuild(w.cfg.Schema, w.cfg.Rollups, store.Items)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if st, ok := w.shards[id]; ok {
		st.mu.RLock()
		occupied := st.store != nil || st.queue != nil
		st.mu.RUnlock()
		if occupied {
			return nil, fmt.Errorf("worker %s: shard %d already hosted", w.id, id)
		}
		// Re-receiving a shard that previously migrated away: replace the
		// forwarding tombstone.
		if err := w.adoptDurable(id, blob); err != nil {
			return nil, err
		}
		st.mu.Lock()
		st.store = store
		st.roll = roll
		st.forward = ""
		st.mu.Unlock()
		return nil, nil
	}
	if err := w.adoptDurable(id, blob); err != nil {
		return nil, err
	}
	st := w.newShardState(id)
	st.store = store
	st.roll = roll
	w.shards[id] = st
	return nil, nil
}

// adoptDurable persists an incoming shard copy before it is installed:
// the sender only releases its own copy once this handler acknowledges,
// so the durable adopt must precede the acknowledgement.
func (w *Worker) adoptDurable(id image.ShardID, blob []byte) error {
	if w.dur == nil {
		return nil
	}
	return w.dur.AdoptShard(uint64(id), blob)
}
