package worker

import (
	"context"
	"errors"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/image"
	"repro/internal/keys"
	"repro/internal/wire"
)

// This file implements worker.groupby: one RPC folds per-value
// aggregates for a (dimension, level) pair across a worker's shards,
// instead of the server issuing one worker.query per level value. A
// shard whose rollup table retains the grouped dimension at or below
// the requested level answers at cell granularity; everything else
// falls back to per-value tree queries. Either way the shard's
// insertion buffer and split/migration queue fold in item by item under
// the same read-lock hold the plain query path uses, so group-by sees
// exactly the acknowledged items.

// EncodeGroupByRequest builds the payload for worker.groupby. defIdx is
// the cluster rollup definition shards may answer from (-1 forces the
// tree).
func EncodeGroupByRequest(base keys.Rect, dim, level int, shards []image.ShardID, defIdx int) []byte {
	w := wire.NewWriter(64)
	base.Encode(w)
	w.Uvarint(uint64(dim))
	w.Uvarint(uint64(level))
	w.Uvarint(uint64(len(shards)))
	for _, id := range shards {
		w.Uvarint(uint64(id))
	}
	w.Uvarint(uint64(defIdx + 1)) // 0 = none
	return w.Bytes()
}

// GroupByReply is the decoded result of worker.groupby. Groups is
// sparse: values with no items on the answering shards are absent.
type GroupByReply struct {
	Groups         map[uint64]core.Aggregate
	ShardsSearched uint32
	RollupShards   uint32
	RollupCells    uint64
}

// DecodeGroupByReply parses a worker.groupby response.
func DecodeGroupByReply(b []byte) (GroupByReply, error) {
	r := wire.NewReader(b)
	rep := GroupByReply{
		ShardsSearched: uint32(r.Uvarint()),
		RollupShards:   uint32(r.Uvarint()),
		RollupCells:    r.Uvarint(),
	}
	n := r.Uvarint()
	if r.Err() != nil {
		return GroupByReply{}, r.Err()
	}
	if n > uint64(r.Remaining()) {
		return GroupByReply{}, errors.New("worker: group-by reply group count exceeds payload")
	}
	rep.Groups = make(map[uint64]core.Aggregate, n)
	for i := uint64(0); i < n; i++ {
		v := r.Uvarint()
		agg, err := core.DecodeAggregate(r)
		if err != nil {
			return GroupByReply{}, err
		}
		rep.Groups[v] = agg
	}
	return rep, r.Err()
}

func encodeGroupByReply(rep GroupByReply) []byte {
	w := wire.NewWriter(48 + len(rep.Groups)*40)
	w.Uvarint(uint64(rep.ShardsSearched))
	w.Uvarint(uint64(rep.RollupShards))
	w.Uvarint(rep.RollupCells)
	w.Uvarint(uint64(len(rep.Groups)))
	for v, agg := range rep.Groups {
		w.Uvarint(v)
		agg.Encode(w)
	}
	return w.Bytes()
}

func (w *Worker) handleGroupBy(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	base, err := keys.DecodeRect(r)
	if err != nil {
		return nil, err
	}
	dim := int(r.Uvarint())
	level := int(r.Uvarint())
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	ids := make([]image.ShardID, 0, n)
	for i := uint64(0); i < n; i++ {
		ids = append(ids, image.ShardID(r.Uvarint()))
	}
	defIdx := int(r.Uvarint()) - 1
	if r.Err() != nil {
		return nil, r.Err()
	}
	w.traceAdd(ctx, "worker.groupby", "")
	rep, err := w.GroupByShards(ctx, base, dim, level, ids, defIdx)
	if err != nil {
		return nil, err
	}
	return encodeGroupByReply(rep), nil
}

// GroupByShards folds one aggregate per value of the dimension's level
// within base, across the given shards. Shards that migrated away are
// chased through their forward address, like QueryShards.
func (w *Worker) GroupByShards(ctx context.Context, base keys.Rect, dim, level int, ids []image.ShardID, defIdx int) (GroupByReply, error) {
	if dim < 0 || dim >= w.cfg.Schema.NumDims() {
		return GroupByReply{}, errors.New("worker: group-by dimension out of range")
	}
	d := w.cfg.Schema.Dim(dim)
	if level < 0 || level >= d.Depth() {
		return GroupByReply{}, errors.New("worker: group-by level out of range")
	}
	groupSpan := d.LeavesUnder(level + 1)
	rep := GroupByReply{Groups: make(map[uint64]core.Aggregate)}
	for _, id := range ids {
		if err := w.groupByOneShard(ctx, id, base, dim, level, groupSpan, defIdx, &rep); err != nil {
			return GroupByReply{}, err
		}
	}
	return rep, nil
}

// groupByOneShard folds one shard's items into rep.Groups.
func (w *Worker) groupByOneShard(ctx context.Context, id image.ShardID, base keys.Rect, dim, level int, groupSpan uint64, defIdx int, rep *GroupByReply) error {
	st := w.shard(id)
	if st == nil {
		return nil
	}
	defer st.queryLat.Time()()
	st.mu.RLock()
	store, queue, forward := st.store, st.queue, st.forward
	if store == nil && forward != "" {
		st.mu.RUnlock()
		peer, err := w.peer(forward)
		if err != nil {
			return errors.New(MovedPrefix + forward)
		}
		w.forwards.Inc()
		w.traceAdd(ctx, "worker.groupby.forward", forward)
		resp, err := peer.RequestCtx(ctx, "worker.groupby",
			EncodeGroupByRequest(base, dim, level, []image.ShardID{id}, defIdx))
		if err != nil {
			return forwardErr(err, forward)
		}
		sub, err := DecodeGroupByReply(resp)
		if err != nil {
			return err
		}
		for v, agg := range sub.Groups {
			mergeGroup(rep.Groups, v, agg)
		}
		rep.ShardsSearched += sub.ShardsSearched
		rep.RollupShards += sub.RollupShards
		rep.RollupCells += sub.RollupCells
		return nil
	}
	if store == nil {
		st.mu.RUnlock()
		return nil
	}
	// Same read-lock discipline as queryOneShard: the store, queue, and
	// insertion buffer cannot change containers underneath us.
	defer st.mu.RUnlock()
	if t := st.roll.Table(defIdx); t != nil && defIdx >= 0 &&
		t.Def().Covers(w.cfg.Schema, base) && t.Def().Depths[dim] >= level+1 {
		cells := t.GroupBy(base, dim, groupSpan, rep.Groups)
		rep.RollupShards++
		rep.RollupCells += uint64(cells)
		w.rollupHits.Inc()
	} else {
		// Tree path: one clipped query per level value inside base.
		baseIv := base.Ivs[dim]
		first := baseIv.Lo / groupSpan
		last := baseIv.Hi / groupSpan
		clip := keys.Rect{Ivs: append([]hierarchy.Interval(nil), base.Ivs...)}
		for v := first; v <= last; v++ {
			iv := hierarchy.Interval{Lo: v * groupSpan, Hi: v*groupSpan + groupSpan - 1}
			if iv.Lo < baseIv.Lo {
				iv.Lo = baseIv.Lo
			}
			if iv.Hi > baseIv.Hi {
				iv.Hi = baseIv.Hi
			}
			clip.Ivs[dim] = iv
			if agg := store.Query(clip); agg.Count > 0 {
				mergeGroup(rep.Groups, v, agg)
			}
		}
	}
	// Queue and buffer items fold in one by one; they are not in the
	// rollup tables (tables mirror the store only).
	fold := func(it core.Item) {
		if !base.ContainsPoint(it.Coords) {
			return
		}
		v := it.Coords[dim] / groupSpan
		agg, ok := rep.Groups[v]
		if !ok {
			agg = core.NewAggregate()
		}
		agg.AddItem(it.Measure)
		rep.Groups[v] = agg
	}
	if queue != nil {
		queue.Items(func(it core.Item) bool {
			fold(it)
			return true
		})
	}
	if st.buf != nil {
		st.buf.scan(base, fold)
	}
	rep.ShardsSearched++
	return nil
}

// mergeGroup folds one value's aggregate into the group map.
func mergeGroup(out map[uint64]core.Aggregate, v uint64, a core.Aggregate) {
	cur, ok := out[v]
	if !ok {
		cur = core.NewAggregate()
	}
	cur.Merge(a)
	out[v] = cur
}
