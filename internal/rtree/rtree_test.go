package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/keys"
)

func testSchema(tb testing.TB) *hierarchy.Schema {
	tb.Helper()
	return hierarchy.MustSchema(
		hierarchy.MustDimension("A",
			hierarchy.Level{Name: "L1", Fanout: 8},
			hierarchy.Level{Name: "L2", Fanout: 8}),
		hierarchy.MustDimension("B",
			hierarchy.Level{Name: "L1", Fanout: 30}),
		hierarchy.MustDimension("C",
			hierarchy.Level{Name: "L1", Fanout: 4},
			hierarchy.Level{Name: "L2", Fanout: 16}),
	)
}

func randItem(rng *rand.Rand, s *hierarchy.Schema) core.Item {
	coords := make([]uint64, s.NumDims())
	for d := range coords {
		coords[d] = uint64(rng.Intn(int(s.Dim(d).LeafCount())))
	}
	return core.Item{Coords: coords, Measure: float64(rng.Intn(100))}
}

func randRect(rng *rand.Rand, s *hierarchy.Schema) keys.Rect {
	ivs := make([]hierarchy.Interval, s.NumDims())
	for d := range ivs {
		dim := s.Dim(d)
		depth := rng.Intn(dim.Depth() + 1)
		prefix := make([]uint32, depth)
		for l := 0; l < depth; l++ {
			prefix[l] = uint32(rng.Intn(int(dim.Level(l).Fanout)))
		}
		iv, err := dim.NodeInterval(depth, prefix)
		if err != nil {
			panic(err)
		}
		ivs[d] = iv
	}
	return keys.Rect{Ivs: ivs}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing schema should fail")
	}
	if _, err := New(Config{Schema: testSchema(t), LeafCapacity: 1, DirCapacity: 8}); err == nil {
		t.Error("tiny capacity should fail")
	}
	if Classic.String() != "rtree" || HilbertRT.String() != "hilbert-rtree" {
		t.Error("Kind.String wrong")
	}
}

// TestQueryMatchesReference checks both baselines against brute force.
func TestQueryMatchesReference(t *testing.T) {
	for _, kind := range []Kind{Classic, HilbertRT} {
		t.Run(kind.String(), func(t *testing.T) {
			s := testSchema(t)
			tree, err := New(Config{Schema: s, Kind: kind, LeafCapacity: 16, DirCapacity: 8})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(17))
			var ref []core.Item
			for i := 0; i < 3000; i++ {
				it := randItem(rng, s)
				ref = append(ref, it)
				if err := tree.Insert(it); err != nil {
					t.Fatal(err)
				}
			}
			if tree.Count() != 3000 {
				t.Fatalf("Count = %d", tree.Count())
			}
			for q := 0; q < 50; q++ {
				rect := randRect(rng, s)
				got := tree.Query(rect)
				want := core.NewAggregate()
				for _, it := range ref {
					if rect.ContainsPoint(it.Coords) {
						want.AddItem(it.Measure)
					}
				}
				if got.Count != want.Count || got.Sum != want.Sum {
					t.Fatalf("query %v: got %v want %v", rect, got, want)
				}
			}
		})
	}
}

func TestInsertValidation(t *testing.T) {
	tree, _ := New(Config{Schema: testSchema(t), Kind: Classic})
	if err := tree.Insert(core.Item{Coords: []uint64{0}}); err == nil {
		t.Error("short point should fail")
	}
}

func TestDuplicatePoints(t *testing.T) {
	// Many identical points force repeated splits of degenerate boxes.
	for _, kind := range []Kind{Classic, HilbertRT} {
		s := testSchema(t)
		tree, _ := New(Config{Schema: s, Kind: kind, LeafCapacity: 4, DirCapacity: 4})
		for i := 0; i < 200; i++ {
			if err := tree.Insert(core.Item{Coords: []uint64{1, 2, 3}, Measure: 1}); err != nil {
				t.Fatal(err)
			}
		}
		agg := tree.Query(keys.AllRect(s))
		if agg.Count != 200 {
			t.Errorf("%s: duplicate-point count = %d", kind, agg.Count)
		}
	}
}
