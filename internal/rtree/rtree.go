// Package rtree implements the two baseline index structures the VOLAP
// paper compares against in Figure 5: a classic R-tree (Guttman, quadratic
// split, least-enlargement insertion) and a Hilbert R-tree (Kamel &
// Faloutsos: insertion ordered by the item's Hilbert value).
//
// Unlike the PDC trees in package core, these baselines are plain spatial
// indices: they use MBR keys only, know nothing about dimension
// hierarchies, and cache no aggregates — answering an aggregate query
// means visiting every overlapping leaf and scanning its items. That is
// precisely why their query latency collapses as the dimension count
// grows (bounding-box overlap explodes), the effect Figure 5 shows.
package rtree

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/hilbert"
	"repro/internal/keys"
)

// Kind selects the baseline variant.
type Kind uint8

const (
	// Classic is Guttman's R-tree.
	Classic Kind = iota
	// HilbertRT is the Hilbert R-tree.
	HilbertRT
)

// String names the variant.
func (k Kind) String() string {
	if k == HilbertRT {
		return "hilbert-rtree"
	}
	return "rtree"
}

// Config parameterizes a baseline tree.
type Config struct {
	Schema       *hierarchy.Schema
	Kind         Kind
	LeafCapacity int // 0 = 64
	DirCapacity  int // 0 = 16
}

type rnode struct {
	key      *keys.Key
	leaf     bool
	children []*rnode
	items    []core.Item
	hilberts []hilbert.Index // leaf, HilbertRT only
	maxH     hilbert.Index   // HilbertRT only
}

// Tree is a baseline R-tree. A single RWMutex guards the whole structure;
// the baselines exist for the single-threaded latency comparison of
// Figure 5, not for the concurrent workloads the PDC trees serve.
type Tree struct {
	cfg   Config
	curve *hilbert.Curve

	mu    sync.RWMutex
	root  *rnode
	count uint64
}

// New builds an empty baseline tree.
func New(cfg Config) (*Tree, error) {
	if cfg.Schema == nil {
		return nil, fmt.Errorf("rtree: Config.Schema is required")
	}
	if cfg.LeafCapacity == 0 {
		cfg.LeafCapacity = 64
	}
	if cfg.DirCapacity == 0 {
		cfg.DirCapacity = 16
	}
	if cfg.LeafCapacity < 2 || cfg.DirCapacity < 3 {
		return nil, fmt.Errorf("rtree: capacities too small")
	}
	t := &Tree{cfg: cfg}
	if cfg.Kind == HilbertRT {
		c, err := hilbert.New(cfg.Schema.ExpandedBits())
		if err != nil {
			return nil, err
		}
		t.curve = c
	}
	t.root = t.newLeaf()
	return t, nil
}

func (t *Tree) newLeaf() *rnode {
	return &rnode{leaf: true, key: keys.NewEmpty(keys.MBR, t.cfg.Schema.NumDims(), 1)}
}

func (t *Tree) newDir() *rnode {
	return &rnode{key: keys.NewEmpty(keys.MBR, t.cfg.Schema.NumDims(), 1)}
}

// Count returns the number of items.
func (t *Tree) Count() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

func (t *Tree) hilbertOf(coords []uint64) hilbert.Index {
	exp := make([]uint64, len(coords))
	for d, c := range coords {
		exp[d] = t.cfg.Schema.ExpandOrdinal(d, c)
	}
	idx, err := t.curve.Index(exp)
	if err != nil {
		panic(fmt.Sprintf("rtree: hilbert index: %v", err))
	}
	return idx
}

// Insert adds one item.
func (t *Tree) Insert(it core.Item) error {
	if err := t.cfg.Schema.ValidatePoint(it.Coords); err != nil {
		return err
	}
	var h hilbert.Index
	if t.cfg.Kind == HilbertRT {
		h = t.hilbertOf(it.Coords)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	root := t.root
	split := t.insert(root, it, h)
	if split != nil {
		nr := t.newDir()
		nr.children = []*rnode{root, split}
		nr.key.ExtendKey(root.key)
		nr.key.ExtendKey(split.key)
		if t.cfg.Kind == HilbertRT {
			nr.maxH = split.maxH
			if split.maxH.Less(root.maxH) {
				nr.maxH = root.maxH
			}
		}
		t.root = nr
	}
	t.count++
	return nil
}

// insert descends recursively; returns a new right sibling if n split.
func (t *Tree) insert(n *rnode, it core.Item, h hilbert.Index) *rnode {
	n.key.ExtendPoint(it.Coords)
	if t.cfg.Kind == HilbertRT && (n.maxH.IsZero() || n.maxH.Less(h)) {
		n.maxH = h
	}
	if n.leaf {
		t.leafAdd(n, it, h)
		if len(n.items) > t.cfg.LeafCapacity {
			return t.splitLeaf(n)
		}
		return nil
	}
	idx := t.chooseChild(n, it.Coords, h)
	if sib := t.insert(n.children[idx], it, h); sib != nil {
		n.children = append(n.children, nil)
		copy(n.children[idx+2:], n.children[idx+1:])
		n.children[idx+1] = sib
		if len(n.children) > t.cfg.DirCapacity {
			return t.splitDir(n)
		}
	}
	return nil
}

func (t *Tree) leafAdd(n *rnode, it core.Item, h hilbert.Index) {
	if t.cfg.Kind != HilbertRT {
		n.items = append(n.items, it)
		return
	}
	pos := 0
	for pos < len(n.hilberts) && !h.Less(n.hilberts[pos]) {
		pos++
	}
	n.items = append(n.items, core.Item{})
	copy(n.items[pos+1:], n.items[pos:])
	n.items[pos] = it
	n.hilberts = append(n.hilberts, hilbert.Index{})
	copy(n.hilberts[pos+1:], n.hilberts[pos:])
	n.hilberts[pos] = h
}

// chooseChild: HilbertRT follows the linear order; Classic picks the child
// needing the least enlargement (ties: smaller volume).
func (t *Tree) chooseChild(n *rnode, coords []uint64, h hilbert.Index) int {
	if t.cfg.Kind == HilbertRT {
		for i, c := range n.children {
			if !c.maxH.Less(h) {
				return i
			}
		}
		return len(n.children) - 1
	}
	best, bestEnl, bestVol := 0, -1.0, 0.0
	for i, c := range n.children {
		enl := c.key.EnlargementPoint(coords)
		vol := c.key.Volume()
		if bestEnl < 0 || enl < bestEnl || (enl == bestEnl && vol < bestVol) {
			best, bestEnl, bestVol = i, enl, vol
		}
	}
	return best
}

// splitLeaf splits an over-full leaf and returns the new sibling.
func (t *Tree) splitLeaf(n *rnode) *rnode {
	sib := t.newLeaf()
	if t.cfg.Kind == HilbertRT {
		// Hilbert R-tree: split the ordered run in the middle.
		mid := len(n.items) / 2
		sib.items = append(sib.items, n.items[mid:]...)
		sib.hilberts = append(sib.hilberts, n.hilberts[mid:]...)
		n.items = n.items[:mid:mid]
		n.hilberts = n.hilberts[:mid:mid]
		t.recomputeLeaf(n)
		t.recomputeLeaf(sib)
		return sib
	}
	// Guttman quadratic split on point keys.
	items := n.items
	seedA, seedB := quadraticSeeds(items, t.cfg.Schema)
	groupA := []core.Item{items[seedA]}
	groupB := []core.Item{items[seedB]}
	keyA := keys.NewPoint(keys.MBR, 1, items[seedA].Coords)
	keyB := keys.NewPoint(keys.MBR, 1, items[seedB].Coords)
	for i, it := range items {
		if i == seedA || i == seedB {
			continue
		}
		da := keyA.EnlargementPoint(it.Coords)
		db := keyB.EnlargementPoint(it.Coords)
		if da < db || (da == db && len(groupA) <= len(groupB)) {
			groupA = append(groupA, it)
			keyA.ExtendPoint(it.Coords)
		} else {
			groupB = append(groupB, it)
			keyB.ExtendPoint(it.Coords)
		}
	}
	n.items = groupA
	n.key = keyA
	sib.items = groupB
	sib.key = keyB
	return sib
}

func (t *Tree) recomputeLeaf(n *rnode) {
	n.key = keys.NewEmpty(keys.MBR, t.cfg.Schema.NumDims(), 1)
	for _, it := range n.items {
		n.key.ExtendPoint(it.Coords)
	}
	if t.cfg.Kind == HilbertRT && len(n.hilberts) > 0 {
		n.maxH = n.hilberts[len(n.hilberts)-1]
	}
}

// quadraticSeeds picks the pair of items wasting the most volume when
// boxed together.
func quadraticSeeds(items []core.Item, s *hierarchy.Schema) (int, int) {
	worstA, worstB, worst := 0, 1, -1.0
	// Quadratic scan capped for very large leaves.
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			waste := 1.0
			for d := range items[i].Coords {
				lo, hi := items[i].Coords[d], items[j].Coords[d]
				if lo > hi {
					lo, hi = hi, lo
				}
				waste *= float64(hi - lo + 1)
			}
			if waste > worst {
				worstA, worstB, worst = i, j, waste
			}
		}
	}
	_ = s
	return worstA, worstB
}

// splitDir splits an over-full directory node.
func (t *Tree) splitDir(n *rnode) *rnode {
	sib := t.newDir()
	mid := len(n.children) / 2
	if t.cfg.Kind != HilbertRT {
		// Order children by midpoint along the widest dimension first.
		d := widestDim(n.key, t.cfg.Schema)
		sortChildrenByMid(n.children, d)
	}
	sib.children = append(sib.children, n.children[mid:]...)
	n.children = n.children[:mid:mid]
	t.recomputeDir(n)
	t.recomputeDir(sib)
	return sib
}

func (t *Tree) recomputeDir(n *rnode) {
	n.key = keys.NewEmpty(keys.MBR, t.cfg.Schema.NumDims(), 1)
	n.maxH = hilbert.Index{}
	for _, c := range n.children {
		n.key.ExtendKey(c.key)
		if t.cfg.Kind == HilbertRT && (n.maxH.IsZero() || n.maxH.Less(c.maxH)) {
			n.maxH = c.maxH
		}
	}
}

func widestDim(k *keys.Key, s *hierarchy.Schema) int {
	best, span := 0, -1.0
	for d := 0; d < k.Dims(); d++ {
		b := k.Bounds(d)
		rel := float64(b.Len()) / float64(s.Dim(d).LeafCount())
		if rel > span {
			best, span = d, rel
		}
	}
	return best
}

func sortChildrenByMid(children []*rnode, d int) {
	for i := 1; i < len(children); i++ {
		for j := i; j > 0; j-- {
			bi, bj := children[j].key.Bounds(d), children[j-1].key.Bounds(d)
			if bi.Lo+bi.Hi < bj.Lo+bj.Hi {
				children[j], children[j-1] = children[j-1], children[j]
			} else {
				break
			}
		}
	}
}

// Query aggregates every item inside q. No aggregates are cached, so the
// traversal always reaches leaves.
func (t *Tree) Query(q keys.Rect) core.Aggregate {
	t.mu.RLock()
	defer t.mu.RUnlock()
	agg := core.NewAggregate()
	t.query(t.root, q, &agg)
	return agg
}

func (t *Tree) query(n *rnode, q keys.Rect, agg *core.Aggregate) {
	if n.key.Empty() || !n.key.OverlapsRect(q) {
		return
	}
	if n.leaf {
		for _, it := range n.items {
			if q.ContainsPoint(it.Coords) {
				agg.AddItem(it.Measure)
			}
		}
		return
	}
	for _, c := range n.children {
		t.query(c, q, agg)
	}
}
