package tpcds

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/keys"
)

func TestSchemaShape(t *testing.T) {
	s := Schema()
	if s.NumDims() != 8 {
		t.Fatalf("TPC-DS schema has %d dims, want 8 (Figure 1)", s.NumDims())
	}
	names := []string{"Store", "Customer", "Birth", "Item", "Date", "Household", "Promotion", "Time"}
	for i, want := range names {
		if got := s.Dim(i).Name(); got != want {
			t.Errorf("dim %d = %s, want %s", i, got, want)
		}
	}
	for _, eb := range s.ExpandedBits() {
		if eb == 0 || eb > 64 {
			t.Errorf("expanded bits out of range: %v", s.ExpandedBits())
		}
	}
}

func TestSyntheticSchema(t *testing.T) {
	s := SyntheticSchema(16, 3, 8)
	if s.NumDims() != 16 {
		t.Fatalf("dims = %d", s.NumDims())
	}
	for i := 0; i < 16; i++ {
		if s.Dim(i).Depth() != 3 || s.Dim(i).LeafCount() != 8*8*8 {
			t.Fatalf("dim %d shape wrong: %s", i, s.Dim(i))
		}
	}
	if s.Dim(0).Name() == s.Dim(1).Name() {
		t.Error("synthetic dims must have distinct names")
	}
	if itoa(0) != "0" || itoa(42) != "42" || itoa(137) != "137" {
		t.Error("itoa wrong")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	s := Schema()
	a := NewGenerator(s, 42, 1.1)
	b := NewGenerator(s, 42, 1.1)
	for i := 0; i < 50; i++ {
		ia, ib := a.Item(), b.Item()
		if ia.Measure != ib.Measure {
			t.Fatal("same seed must give same stream")
		}
		for d := range ia.Coords {
			if ia.Coords[d] != ib.Coords[d] {
				t.Fatal("same seed must give same coords")
			}
		}
	}
	c := NewGenerator(s, 43, 1.1)
	same := true
	for i := 0; i < 10; i++ {
		ia, ic := a.Item(), c.Item()
		for d := range ia.Coords {
			if ia.Coords[d] != ic.Coords[d] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds gave identical streams")
	}
}

func TestItemsValid(t *testing.T) {
	s := Schema()
	g := NewGenerator(s, 7, 1.1)
	for _, it := range g.Items(2000) {
		if err := s.ValidatePoint(it.Coords); err != nil {
			t.Fatal(err)
		}
		if it.Measure < 0 {
			t.Fatalf("negative measure %f", it.Measure)
		}
	}
}

func TestSkew(t *testing.T) {
	// With alpha=1.1 the first country must hold far more than the
	// uniform share of items.
	s := Schema()
	g := NewGenerator(s, 9, 1.1)
	firstCountry := 0
	const n = 5000
	span := s.Dim(0).LeavesUnder(1) // leaves under one country
	for i := 0; i < n; i++ {
		it := g.Item()
		if it.Coords[0] < span {
			firstCountry++
		}
	}
	uniformShare := 1.0 / 18
	if got := float64(firstCountry) / n; got < 2*uniformShare {
		t.Errorf("country 0 share %.3f, want well above uniform %.3f", got, uniformShare)
	}
	// Uniform generator should be close to the uniform share.
	gu := NewGenerator(s, 9, 0)
	firstCountry = 0
	for i := 0; i < n; i++ {
		if gu.Item().Coords[0] < span {
			firstCountry++
		}
	}
	if got := float64(firstCountry) / n; got > 2*uniformShare {
		t.Errorf("alpha=0 country 0 share %.3f, want about %.3f", got, uniformShare)
	}
}

func TestQueryValid(t *testing.T) {
	s := Schema()
	g := NewGenerator(s, 11, 1.1)
	depths := map[int]int{}
	for i := 0; i < 500; i++ {
		q := g.Query()
		if len(q.Ivs) != s.NumDims() {
			t.Fatal("query dims wrong")
		}
		for d, iv := range q.Ivs {
			if iv.Hi >= s.Dim(d).LeafCount() {
				t.Fatalf("query interval out of range: %v", iv)
			}
			depth := s.Dim(d).DepthOfInterval(iv)
			if depth < 0 {
				t.Fatalf("query interval %v is not a hierarchy value", iv)
			}
			depths[depth]++
		}
	}
	if depths[0] == 0 || depths[1] == 0 {
		t.Errorf("query depths not diverse: %v", depths)
	}
}

func TestBandOf(t *testing.T) {
	if BandOf(0.1) != Low || BandOf(0.5) != Medium || BandOf(0.9) != High {
		t.Error("BandOf wrong")
	}
	if BandOf(0.33) != Medium || BandOf(0.66) != Medium {
		t.Error("band boundaries wrong (33%% and 66%% are medium)")
	}
	if Low.String() != "low" || Medium.String() != "medium" || High.String() != "high" {
		t.Error("Band.String wrong")
	}
}

// TestGenerateBinned loads a store with skewed data and checks the binning
// machinery produces queries in every band whose measured coverage matches
// the band.
func TestGenerateBinned(t *testing.T) {
	s := Schema()
	g := NewGenerator(s, 21, 1.1)
	store, err := core.NewStore(core.Config{Schema: s, Store: core.StoreHilbertPDC, Keys: keys.MDS})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.BulkLoad(g.Items(20000)); err != nil {
		t.Fatal(err)
	}
	count := func(q keys.Rect) uint64 { return store.Query(q).Count }
	bins := g.GenerateBinned(count, store.Count(), 5, 4000)
	for b := Low; b <= High; b++ {
		if len(bins.Rects[b]) == 0 {
			t.Fatalf("band %s empty", b)
		}
		for i, q := range bins.Rects[b] {
			frac := float64(count(q)) / float64(store.Count())
			if BandOf(frac) != b && bins.Fracs[b][i] != bins.Fracs[High][0] {
				t.Errorf("band %s query %d has coverage %.3f", b, i, frac)
			}
		}
	}
	rng := rand.New(rand.NewSource(1))
	q := bins.Pick(rng, Medium)
	if len(q.Ivs) != s.NumDims() {
		t.Error("Pick returned malformed query")
	}
}
