// Package tpcds generates the TPC-DS-style workload the VOLAP paper
// evaluates with: items over the eight hierarchical dimensions of the
// paper's Figure 1, and aggregate queries that "specify values at various
// levels in all dimensions" and span a wide range of coverages (§IV).
//
// The official TPC-DS generator produces relational fact tables; VOLAP
// consumes only the dimension hierarchies and a skewed value distribution,
// so this package synthesizes exactly those: per-level child indices are
// drawn from a truncated power-law, which concentrates data the way real
// retail data does and is what lets single hierarchy values reach the
// paper's medium and high coverage bands (a query aggregating "Country 0"
// can cover half the database).
package tpcds

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/keys"
)

// Schema returns the 8-dimension TPC-DS schema of the paper's Figure 1:
// Store, Customer (address), Customer (birth date), Item, Date, Household,
// Promotion, and Time, each with its dimension hierarchy.
func Schema() *hierarchy.Schema {
	return hierarchy.MustSchema(
		hierarchy.MustDimension("Store",
			hierarchy.Level{Name: "Country", Fanout: 18},
			hierarchy.Level{Name: "State", Fanout: 30},
			hierarchy.Level{Name: "City", Fanout: 60}),
		hierarchy.MustDimension("Customer",
			hierarchy.Level{Name: "Country", Fanout: 18},
			hierarchy.Level{Name: "State", Fanout: 30},
			hierarchy.Level{Name: "City", Fanout: 60}),
		hierarchy.MustDimension("Birth",
			hierarchy.Level{Name: "BYear", Fanout: 75},
			hierarchy.Level{Name: "BMonth", Fanout: 12},
			hierarchy.Level{Name: "BDay", Fanout: 31}),
		hierarchy.MustDimension("Item",
			hierarchy.Level{Name: "Category", Fanout: 12},
			hierarchy.Level{Name: "Class", Fanout: 24},
			hierarchy.Level{Name: "Brand", Fanout: 50}),
		hierarchy.MustDimension("Date",
			hierarchy.Level{Name: "Year", Fanout: 12},
			hierarchy.Level{Name: "Month", Fanout: 12},
			hierarchy.Level{Name: "Day", Fanout: 31}),
		hierarchy.MustDimension("Household",
			hierarchy.Level{Name: "IncomeBand", Fanout: 20}),
		hierarchy.MustDimension("Promotion",
			hierarchy.Level{Name: "Promo", Fanout: 64}),
		hierarchy.MustDimension("Time",
			hierarchy.Level{Name: "Hour", Fanout: 24},
			hierarchy.Level{Name: "Minute", Fanout: 60}),
	)
}

// SyntheticSchema builds a uniform d-dimensional schema (depth levels of
// the given fan-out each); Figure 5 sweeps d from 4 to 64 with it.
func SyntheticSchema(dims, depth int, fanout uint32) *hierarchy.Schema {
	ds := make([]*hierarchy.Dimension, dims)
	for i := range ds {
		levels := make([]hierarchy.Level, depth)
		for l := range levels {
			levels[l] = hierarchy.Level{Name: "L" + string(rune('1'+l)), Fanout: fanout}
		}
		ds[i] = hierarchy.MustDimension("D"+itoa(i), levels...)
	}
	return hierarchy.MustSchema(ds...)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// Generator produces a deterministic stream of skewed items.
type Generator struct {
	schema *hierarchy.Schema
	rng    *rand.Rand
	alpha  float64
	// cdf[d][l] is the cumulative distribution over child indices of
	// dimension d, level l.
	cdf [][][]float64
}

// NewGenerator builds a generator over the schema with power-law skew
// exponent alpha (0 = uniform; the paper-scale experiments use 1.1).
func NewGenerator(schema *hierarchy.Schema, seed int64, alpha float64) *Generator {
	g := &Generator{schema: schema, rng: rand.New(rand.NewSource(seed)), alpha: alpha}
	g.cdf = make([][][]float64, schema.NumDims())
	for d := 0; d < schema.NumDims(); d++ {
		dim := schema.Dim(d)
		g.cdf[d] = make([][]float64, dim.Depth())
		for l := 0; l < dim.Depth(); l++ {
			f := int(dim.Level(l).Fanout)
			cdf := make([]float64, f)
			total := 0.0
			for i := 0; i < f; i++ {
				total += 1 / math.Pow(float64(i+1), alpha)
				cdf[i] = total
			}
			for i := range cdf {
				cdf[i] /= total
			}
			g.cdf[d][l] = cdf
		}
	}
	return g
}

// drawChild samples a child index at dimension d, level l.
func (g *Generator) drawChild(d, l int) uint32 {
	cdf := g.cdf[d][l]
	u := g.rng.Float64()
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint32(lo)
}

// Item draws the next item: a skewed point plus a sales-like measure.
func (g *Generator) Item() core.Item {
	coords := make([]uint64, g.schema.NumDims())
	for d := range coords {
		dim := g.schema.Dim(d)
		path := make([]uint32, dim.Depth())
		for l := range path {
			path[l] = g.drawChild(d, l)
		}
		ord, err := dim.Ordinal(path)
		if err != nil {
			panic(err) // drawChild respects fan-outs
		}
		coords[d] = ord
	}
	return core.Item{Coords: coords, Measure: math.Round(g.rng.ExpFloat64()*50*100) / 100}
}

// Items draws n items.
func (g *Generator) Items(n int) []core.Item {
	out := make([]core.Item, n)
	for i := range out {
		out[i] = g.Item()
	}
	return out
}

// Query draws a random aggregate query: in every dimension a hierarchy
// value at a random level (biased shallow so coverage spans the whole
// range), with the value drawn from the same skewed distribution as the
// data.
func (g *Generator) Query() keys.Rect {
	ivs := make([]hierarchy.Interval, g.schema.NumDims())
	for d := range ivs {
		dim := g.schema.Dim(d)
		depth := g.drawDepth(dim.Depth())
		prefix := make([]uint32, depth)
		for l := 0; l < depth; l++ {
			prefix[l] = g.drawChild(d, l)
		}
		iv, err := dim.NodeInterval(depth, prefix)
		if err != nil {
			panic(err)
		}
		ivs[d] = iv
	}
	return keys.Rect{Ivs: ivs}
}

// drawDepth favors shallow query levels: P(0) ≈ 0.55, then halving.
func (g *Generator) drawDepth(maxDepth int) int {
	u := g.rng.Float64()
	p := 0.55
	for depth := 0; depth < maxDepth; depth++ {
		if u < p {
			return depth
		}
		u -= p
		p /= 2
	}
	return maxDepth
}

// Band is a query coverage band as defined in §IV: the percentage of the
// database a query aggregates.
type Band int

const (
	// Low coverage: below 33%.
	Low Band = iota
	// Medium coverage: 33% to 66%.
	Medium
	// High coverage: above 66%.
	High
	numBands
)

// String names the band.
func (b Band) String() string {
	switch b {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	default:
		return "band?"
	}
}

// BandOf classifies a true coverage fraction.
func BandOf(frac float64) Band {
	switch {
	case frac < 0.33:
		return Low
	case frac <= 0.66:
		return Medium
	default:
		return High
	}
}

// BinnedQueries is a per-band pool of queries with known true coverage.
type BinnedQueries struct {
	Rects [3][]keys.Rect
	Fracs [3][]float64
}

// Pick returns a random query from the band's pool.
func (b *BinnedQueries) Pick(rng *rand.Rand, band Band) keys.Rect {
	pool := b.Rects[band]
	return pool[rng.Intn(len(pool))]
}

// GenerateBinned draws candidate queries, measures their true coverage
// with the supplied count function (typically a Store or cluster query),
// and bins them until every band holds perBand queries or the attempt
// budget is exhausted (paper §IV: "queries are tested against the
// database and binned according to their true coverage").
func (g *Generator) GenerateBinned(count func(keys.Rect) uint64, total uint64, perBand, maxAttempts int) BinnedQueries {
	var out BinnedQueries
	need := func() bool {
		for b := 0; b < int(numBands); b++ {
			if len(out.Rects[b]) < perBand {
				return true
			}
		}
		return false
	}
	for attempt := 0; attempt < maxAttempts && need(); attempt++ {
		q := g.Query()
		frac := 0.0
		if total > 0 {
			frac = float64(count(q)) / float64(total)
		}
		b := BandOf(frac)
		if len(out.Rects[b]) < perBand {
			out.Rects[b] = append(out.Rects[b], q)
			out.Fracs[b] = append(out.Fracs[b], frac)
		}
	}
	// Guarantee non-empty bands: the all-space query is high coverage,
	// and a leaf-level query is (almost surely) low coverage.
	if len(out.Rects[High]) == 0 {
		out.Rects[High] = append(out.Rects[High], keys.AllRect(g.schema))
		out.Fracs[High] = append(out.Fracs[High], 1)
	}
	for b := Low; b <= Medium; b++ {
		if len(out.Rects[b]) == 0 {
			out.Rects[b] = append(out.Rects[b], out.Rects[High][0])
			out.Fracs[b] = append(out.Fracs[b], out.Fracs[High][0])
		}
	}
	return out
}
