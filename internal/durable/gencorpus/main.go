// Command gencorpus regenerates the checked-in fuzz seed corpora for the
// durable WAL codec (testdata/fuzz/...). Run it from internal/durable
// after changing the record framing:
//
//	go run ./gencorpus
//
// The seeds pin the crash cases that matter: torn tails, corrupt CRCs and
// implausible length prefixes, alongside healthy single- and multi-record
// logs.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/core"
	"repro/internal/durable"
)

func items(n, seed int) []core.Item {
	out := make([]core.Item, n)
	for i := range out {
		v := uint64(seed*1000 + i)
		out[i] = core.Item{
			Coords:  []uint64{v % 64, (v * 7) % 50, (v * 13) % 16},
			Measure: float64(i),
		}
	}
	return out
}

func writeSeed(dir, name string, values ...any) {
	body := "go test fuzz v1\n"
	for _, v := range values {
		switch v := v.(type) {
		case []byte:
			body += fmt.Sprintf("[]byte(%s)\n", strconv.Quote(string(v)))
		case int:
			body += fmt.Sprintf("int(%d)\n", v)
		default:
			log.Fatalf("unsupported seed value type %T", v)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		log.Fatal(err)
	}
}

func main() {
	one := durable.EncodeRecord(durable.Record{
		Type: durable.RecInsert, Shard: 4, Data: durable.EncodeInsert(3, items(3, 1)),
	})
	release := durable.EncodeRecord(durable.Record{Type: durable.RecRelease, Shard: 4})
	adopt := durable.EncodeRecord(durable.Record{Type: durable.RecAdopt, Shard: 12})
	multi := append(append(append([]byte{}, one...), adopt...), release...)
	torn := append(append([]byte{}, one...), one[:len(one)-5]...)
	badCRC := append([]byte{}, multi...)
	badCRC[len(badCRC)-1] ^= 0x80
	hugeLen := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3}
	tornHeader := one[:5]

	scan := filepath.Join("testdata", "fuzz", "FuzzScanRecords")
	writeSeed(scan, "seed-one-record", one)
	writeSeed(scan, "seed-multi-record", multi)
	writeSeed(scan, "seed-torn-tail", torn)
	writeSeed(scan, "seed-torn-header", tornHeader)
	writeSeed(scan, "seed-bad-crc", badCRC)
	writeSeed(scan, "seed-huge-length", hugeLen)

	ins := filepath.Join("testdata", "fuzz", "FuzzDecodeInsert")
	writeSeed(ins, "seed-valid-3d", durable.EncodeInsert(3, items(5, 2)), 3)
	writeSeed(ins, "seed-valid-1d", durable.EncodeInsert(1, items(1, 0)), 1)
	writeSeed(ins, "seed-huge-count", []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, 3)
	writeSeed(ins, "seed-truncated-item", durable.EncodeInsert(3, items(4, 2))[:9], 3)
}
