package durable

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// Mode selects the durability contract of the insert path.
type Mode uint8

// Durability modes.
const (
	// ModeOff disables persistence entirely: behavior is byte-identical
	// to the in-memory system.
	ModeOff Mode = iota
	// ModeAsync acknowledges inserts after the in-memory apply and
	// buffers WAL appends; a background flusher syncs them on the group
	// commit interval. A crash can lose the last interval's records.
	ModeAsync
	// ModeSync holds the acknowledgement until an fsync covers the
	// insert's record. Group commit amortizes the fsync across every
	// append that arrived while the previous sync was in flight.
	ModeSync
)

// String names the mode as accepted by ParseMode.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeAsync:
		return "async"
	case ModeSync:
		return "sync"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// ParseMode parses the -durability flag vocabulary: off, async, sync.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off":
		return ModeOff, nil
	case "async":
		return ModeAsync, nil
	case "sync":
		return ModeSync, nil
	default:
		return ModeOff, fmt.Errorf("durable: unknown mode %q (want off, async or sync)", s)
	}
}

// ErrWALClosed is returned by appends after Close or Crash.
var ErrWALClosed = errors.New("durable: wal closed")

// wal is one shard generation's append-only log file with group commit.
// Appends serialize under mu into a buffered writer; a single flusher
// goroutine turns pending appends into fsync batches, so N concurrent
// sync-mode appends cost ~1 fsync, not N.
type wal struct {
	path string
	mode Mode

	mu      sync.Mutex
	cond    *sync.Cond
	f       *os.File
	buf     *bufio.Writer
	seq     uint64 // records appended
	synced  uint64 // records covered by a completed fsync
	bytes   int64  // bytes appended (including frame headers)
	err     error  // sticky I/O error; fails all subsequent appends
	closed  bool
	crashed bool

	kick chan struct{} // wakes the flusher; capacity 1
	done chan struct{} // flusher exited

	m *logMetrics // shared with the owning Log; never nil
}

// openWAL opens (creating if needed) the log file for appending.
func openWAL(path string, mode Mode, interval time.Duration, m *logMetrics) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &wal{
		path:  path,
		mode:  mode,
		f:     f,
		buf:   bufio.NewWriterSize(f, 1<<16),
		bytes: st.Size(),
		kick:  make(chan struct{}, 1),
		done:  make(chan struct{}),
		m:     m,
	}
	w.cond = sync.NewCond(&w.mu)
	go w.flusher(interval)
	return w, nil
}

// append frames rec into the log. With waitSync it returns only after an
// fsync covers the record (group-committed with concurrent appends);
// otherwise it returns once the record is buffered. Callers pass the
// mode's choice on the hot path and force waitSync for barriers like the
// release record.
func (w *wal) append(rec Record, waitSync bool) error {
	frame := EncodeRecord(rec)
	start := time.Now()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrWALClosed
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if _, err := w.buf.Write(frame); err != nil {
		w.err = err
		w.cond.Broadcast()
		w.mu.Unlock()
		return err
	}
	w.seq++
	my := w.seq
	w.bytes += int64(len(frame))
	w.mu.Unlock()

	w.m.appendedRecords.Inc()
	w.m.appendedBytes.Add(uint64(len(frame)))

	if !waitSync {
		w.m.appendLat.Record(time.Since(start))
		return nil
	}
	// Group commit: wake the flusher (coalescing with other waiters) and
	// wait until a completed fsync covers our record.
	select {
	case w.kick <- struct{}{}:
	default:
	}
	w.mu.Lock()
	for w.synced < my && w.err == nil && !w.closed {
		w.cond.Wait()
	}
	err := w.err
	if err == nil && w.closed && w.synced < my {
		err = ErrWALClosed
	}
	w.mu.Unlock()
	w.m.appendLat.Record(time.Since(start))
	return err
}

// flushSync flushes the buffer and fsyncs the file, then marks every
// record appended before the flush as synced. The fsync itself runs
// outside the mutex so new appends keep landing in the buffer — they
// form the next batch.
func (w *wal) flushSync() {
	w.mu.Lock()
	if w.closed || w.err != nil || w.synced == w.seq {
		w.mu.Unlock()
		return
	}
	if err := w.buf.Flush(); err != nil {
		w.err = err
		w.cond.Broadcast()
		w.mu.Unlock()
		return
	}
	target := w.seq
	f := w.f
	w.mu.Unlock()

	start := time.Now()
	err := f.Sync()
	w.m.fsyncLat.Record(time.Since(start))

	w.mu.Lock()
	if err != nil && w.err == nil {
		w.err = err
	}
	if err == nil && target > w.synced {
		w.m.fsyncBatches.Inc()
		w.m.fsyncRecords.Add(target - w.synced)
		w.synced = target
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

// flusher is the group-commit loop: kicks from sync-mode appends and a
// periodic tick (the async flush interval) both trigger one flush+fsync
// covering everything pending.
func (w *wal) flusher(interval time.Duration) {
	defer close(w.done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-w.kick:
		case <-tick.C:
		}
		w.mu.Lock()
		closed := w.closed
		w.mu.Unlock()
		if closed {
			return
		}
		w.flushSync()
	}
}

// size returns the bytes appended so far (buffered or not).
func (w *wal) size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}

// records returns the number of records appended so far.
func (w *wal) records() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// close flushes, fsyncs and closes the file, then stops the flusher.
func (w *wal) close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	var flushErr error
	if w.err == nil {
		flushErr = w.buf.Flush()
	}
	w.closed = true
	w.cond.Broadcast()
	f := w.f
	w.mu.Unlock()

	var syncErr error
	if flushErr == nil {
		syncErr = f.Sync()
	}
	closeErr := f.Close()
	select {
	case w.kick <- struct{}{}:
	default:
	}
	<-w.done
	if flushErr != nil {
		return flushErr
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// crash closes the file descriptor without flushing the buffer — the
// closest an in-process test can get to SIGKILL. Buffered-but-unsynced
// records are lost, exactly as they would be from a real crash in async
// mode; sync mode never acknowledged them.
func (w *wal) crash() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.crashed = true
	w.cond.Broadcast()
	f := w.f
	w.mu.Unlock()
	_ = f.Close()
	select {
	case w.kick <- struct{}{}:
	default:
	}
	<-w.done
}
