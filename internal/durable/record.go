// Package durable is the worker's persistence subsystem: a per-shard
// write-ahead log with batched group commit, periodic snapshots built on
// core's shard serialization, and a per-worker on-disk manifest. VOLAP as
// published is purely in-memory — a lost worker loses its shards and the
// cluster degrades to partial results. This package makes a worker
// restart a recoverable event instead: every acknowledged insert is
// framed into the owning shard's WAL (before the ack in sync mode,
// asynchronously in async mode), snapshots bound replay time by
// truncating the log at checkpoint boundaries, and recovery replays the
// surviving WAL tail over the latest snapshot of each owned shard.
//
// Layout under the worker's data directory:
//
//	MANIFEST                 worker identity + shard ownership table
//	shards/<id>/snap-<g>     snapshot covering every WAL generation < g
//	shards/<id>/wal-<g>      records appended after snapshot generation g
//
// Torn or corrupt WAL tails (a crash mid-append) truncate cleanly:
// recovery keeps the valid prefix and discards the rest, never aborting
// the whole shard.
package durable

import (
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/core"
	"repro/internal/wire"
)

// RecordType classifies one WAL record.
type RecordType uint8

// WAL record types.
const (
	// RecInsert carries a batch of inserted items (the hot-path record).
	RecInsert RecordType = 1
	// RecRelease marks the shard as migrated away: recovery must not
	// resurrect it even though its snapshot and log are still on disk.
	RecRelease RecordType = 2
	// RecAdopt marks the shard as received via migration or split; it is
	// informational (the adopting snapshot is the authority) but makes
	// logs self-describing.
	RecAdopt RecordType = 3
)

// Record is one WAL entry. Data is an opaque body whose meaning depends
// on Type; the framing (length prefix + CRC) is independent of it, so the
// codec decodes arbitrary logs without schema knowledge.
type Record struct {
	Type  RecordType
	Shard uint64
	Data  []byte
}

// Framing errors. Both mean "stop replaying here"; ErrCorruptRecord
// additionally indicates bytes were damaged rather than merely missing.
var (
	// ErrTornRecord means the buffer ends mid-record — the classic torn
	// tail of a crash during append.
	ErrTornRecord = errors.New("durable: torn record")
	// ErrCorruptRecord means a complete frame failed its CRC.
	ErrCorruptRecord = errors.New("durable: corrupt record")
)

// maxRecordLen bounds one frame's payload so a corrupt length prefix
// cannot drive allocation; real records are far smaller (an insert batch
// tops out around a few MB).
const maxRecordLen = 1 << 28

// castagnoli is the CRC-32C table (the polynomial used by modern storage
// systems for its hardware support).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameHeaderLen is the fixed prefix of one frame: u32 payload length +
// u32 CRC-32C of the payload.
const frameHeaderLen = 8

// AppendRecord encodes one framed record onto w:
//
//	u32 payloadLen | u32 crc32c(payload) | payload
//	payload = u8 type | uvarint shard | data...
func AppendRecord(w *wire.Writer, rec Record) {
	p := wire.NewWriter(2 + 10 + len(rec.Data))
	p.Uint8(uint8(rec.Type))
	p.Uvarint(rec.Shard)
	payload := append(p.Bytes(), rec.Data...)
	w.Uint32(uint32(len(payload)))
	w.Uint32(crc32.Checksum(payload, castagnoli))
	w.Raw(payload)
}

// EncodeRecord frames one record into a fresh buffer.
func EncodeRecord(rec Record) []byte {
	w := wire.NewWriter(frameHeaderLen + 11 + len(rec.Data))
	AppendRecord(w, rec)
	return w.Bytes()
}

// DecodeRecord decodes the first framed record of b, returning it and
// the number of bytes consumed. A short buffer returns ErrTornRecord; a
// complete frame with a wrong checksum returns ErrCorruptRecord.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < frameHeaderLen {
		return Record{}, 0, ErrTornRecord
	}
	r := wire.NewReader(b)
	n := int(r.Uint32())
	sum := r.Uint32()
	if n > maxRecordLen {
		return Record{}, 0, fmt.Errorf("%w: implausible length %d", ErrCorruptRecord, n)
	}
	if len(b) < frameHeaderLen+n {
		return Record{}, 0, ErrTornRecord
	}
	payload := b[frameHeaderLen : frameHeaderLen+n]
	if crc32.Checksum(payload, castagnoli) != sum {
		return Record{}, 0, ErrCorruptRecord
	}
	pr := wire.NewReader(payload)
	rec := Record{Type: RecordType(pr.Uint8()), Shard: pr.Uvarint()}
	if pr.Err() != nil {
		return Record{}, 0, fmt.Errorf("%w: bad payload header", ErrCorruptRecord)
	}
	rec.Data = payload[len(payload)-pr.Remaining():]
	return rec, frameHeaderLen + n, nil
}

// ScanRecords decodes records from b in order, calling fn for each. It
// returns the offset of the first byte that did not decode — the clean
// truncation point — and the framing error that stopped the scan (nil
// when the buffer ended exactly on a record boundary). An error from fn
// aborts the scan and is returned as-is.
func ScanRecords(b []byte, fn func(Record) error) (int, error) {
	off := 0
	for off < len(b) {
		rec, n, err := DecodeRecord(b[off:])
		if err != nil {
			return off, err
		}
		if err := fn(rec); err != nil {
			return off, err
		}
		off += n
	}
	return off, nil
}

// EncodeInsert builds a RecInsert body: the batch of items, coordinates
// as uvarints and the measure as a fixed float64.
func EncodeInsert(dims int, items []core.Item) []byte {
	w := wire.NewWriter(8 + len(items)*(dims*4+8))
	w.Uvarint(uint64(len(items)))
	for _, it := range items {
		for _, c := range it.Coords {
			w.Uvarint(c)
		}
		w.Float64(it.Measure)
	}
	return w.Bytes()
}

// DecodeInsert parses a RecInsert body written by EncodeInsert.
func DecodeInsert(b []byte, dims int) ([]core.Item, error) {
	r := wire.NewReader(b)
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	// Each item needs at least dims+8 bytes; reject impossible counts
	// before allocating for them.
	if n > uint64(r.Remaining())/uint64(dims+8)+1 {
		return nil, fmt.Errorf("durable: insert record claims %d items, body too small", n)
	}
	items := make([]core.Item, 0, n)
	for i := uint64(0); i < n; i++ {
		coords := make([]uint64, dims)
		for d := range coords {
			coords[d] = r.Uvarint()
		}
		m := r.Float64()
		if r.Err() != nil {
			return nil, fmt.Errorf("durable: insert record truncated at item %d: %w", i, r.Err())
		}
		items = append(items, core.Item{Coords: coords, Measure: m})
	}
	return items, nil
}
