package durable

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/wire"
)

// ShardStatus is one shard's ownership state in the manifest.
type ShardStatus uint8

// Shard ownership states.
const (
	// StatusOwned means the shard's data belongs to this worker and must
	// be recovered after a restart.
	StatusOwned ShardStatus = 1
	// StatusReleased means the shard migrated away; its record is kept
	// as a tombstone so recovery never resurrects it.
	StatusReleased ShardStatus = 2
)

// manifestMagic guards against decoding unrelated files as manifests.
const manifestMagic = "VOLAPMANIFEST1"

// manifestName is the manifest's filename inside the data directory.
const manifestName = "MANIFEST"

// manifest is the worker's on-disk shard ownership table. It is the
// recovery authority: only StatusOwned entries are rebuilt, whatever
// files survive under shards/.
type manifest struct {
	WorkerID string
	Shards   map[uint64]ShardStatus
}

// encode serializes the manifest with a trailing CRC over the body.
func (m *manifest) encode() []byte {
	body := wire.NewWriter(64 + len(m.Shards)*4)
	body.String(manifestMagic)
	body.String(m.WorkerID)
	ids := make([]uint64, 0, len(m.Shards))
	for id := range m.Shards {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	body.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		body.Uvarint(id)
		body.Uint8(uint8(m.Shards[id]))
	}
	out := wire.NewWriter(body.Len() + 4)
	out.Raw(body.Bytes())
	out.Uint32(crc32.Checksum(body.Bytes(), castagnoli))
	return out.Bytes()
}

// decodeManifest parses and checksums a manifest blob.
func decodeManifest(b []byte) (*manifest, error) {
	if len(b) < 4 {
		return nil, errors.New("durable: manifest too short")
	}
	body, sum := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != wire.NewReader(sum).Uint32() {
		return nil, errors.New("durable: manifest checksum mismatch")
	}
	r := wire.NewReader(body)
	if r.String() != manifestMagic {
		return nil, errors.New("durable: not a manifest")
	}
	m := &manifest{WorkerID: r.String(), Shards: make(map[uint64]ShardStatus)}
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > uint64(r.Remaining()) {
		return nil, errors.New("durable: manifest shard count implausible")
	}
	for i := uint64(0); i < n; i++ {
		id := r.Uvarint()
		st := ShardStatus(r.Uint8())
		if r.Err() != nil {
			return nil, r.Err()
		}
		if st != StatusOwned && st != StatusReleased {
			return nil, fmt.Errorf("durable: manifest shard %d has unknown status %d", id, st)
		}
		m.Shards[id] = st
	}
	return m, nil
}

// loadManifest reads dir's manifest; a missing file returns an empty
// manifest stamped with workerID (first boot).
func loadManifest(dir, workerID string) (*manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return &manifest{WorkerID: workerID, Shards: make(map[uint64]ShardStatus)}, nil
	}
	if err != nil {
		return nil, err
	}
	m, err := decodeManifest(b)
	if err != nil {
		return nil, err
	}
	if m.WorkerID != workerID {
		return nil, fmt.Errorf("durable: data dir belongs to worker %q, not %q", m.WorkerID, workerID)
	}
	return m, nil
}

// saveManifest writes the manifest atomically: temp file, fsync, rename,
// fsync the directory. A crash leaves either the old or the new version,
// never a torn one.
func saveManifest(dir string, m *manifest) error {
	return writeFileAtomic(dir, manifestName, m.encode())
}

// writeFileAtomic writes name under dir via a temp file + rename, with
// fsyncs on both the file and the directory.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and creates inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
