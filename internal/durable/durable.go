package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Config tunes group commit and checkpointing.
type Config struct {
	// GroupInterval is the group-commit window: sync-mode appends wait at
	// most this long to share an fsync, and async-mode buffers are
	// flushed+fsynced on this period (default 2ms).
	GroupInterval time.Duration
	// SnapshotBytes checkpoints a shard once its WAL grows past this many
	// bytes (default 4 MiB; <0 disables the size trigger).
	SnapshotBytes int64
	// SnapshotRecords checkpoints a shard once its WAL holds this many
	// records (default 50000; <0 disables the count trigger).
	SnapshotRecords int64
	// Metrics receives the durable_* families; nil uses a private
	// registry.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.GroupInterval <= 0 {
		c.GroupInterval = 2 * time.Millisecond
	}
	if c.SnapshotBytes == 0 {
		c.SnapshotBytes = 4 << 20
	}
	if c.SnapshotRecords == 0 {
		c.SnapshotRecords = 50000
	}
	return c
}

// ErrLogClosed is returned by operations on a closed Log.
var ErrLogClosed = errors.New("durable: log closed")

// logMetrics bundles the durable_* instrument handles.
type logMetrics struct {
	appendLat        *metrics.Histogram
	appendedRecords  *metrics.Counter
	appendedBytes    *metrics.Counter
	fsyncBatches     *metrics.Counter
	fsyncRecords     *metrics.Counter
	fsyncLat         *metrics.Histogram
	snapshots        *metrics.Counter
	snapshotBytes    *metrics.Counter
	snapshotLat      *metrics.Histogram
	truncations      *metrics.Counter
	releases         *metrics.Counter
	recoveryReplayed *metrics.Counter
	recoveredShards  *metrics.Gauge
	recoverySeconds  *metrics.Gauge
}

func newLogMetrics(reg *metrics.Registry) *logMetrics {
	return &logMetrics{
		appendLat:        reg.Histogram("durable_append_seconds").With(),
		appendedRecords:  reg.Counter("durable_appended_records_total").With(),
		appendedBytes:    reg.Counter("durable_appended_bytes_total").With(),
		fsyncBatches:     reg.Counter("durable_fsync_batches_total").With(),
		fsyncRecords:     reg.Counter("durable_fsync_records_total").With(),
		fsyncLat:         reg.Histogram("durable_fsync_seconds").With(),
		snapshots:        reg.Counter("durable_snapshots_total").With(),
		snapshotBytes:    reg.Counter("durable_snapshot_bytes_total").With(),
		snapshotLat:      reg.Histogram("durable_snapshot_seconds").With(),
		truncations:      reg.Counter("durable_wal_truncations_total").With(),
		releases:         reg.Counter("durable_releases_total").With(),
		recoveryReplayed: reg.Counter("durable_recovery_replayed_records").With(),
		recoveredShards:  reg.Gauge("durable_recovered_shards").With(),
		recoverySeconds:  reg.Gauge("durable_recovery_seconds").With(),
	}
}

// shardLog is the live durability state of one owned shard.
type shardLog struct {
	dir string
	gen uint64 // active WAL generation
	w   *wal
}

// Log is one worker's durability subsystem: the manifest, and a WAL (+
// snapshot lineage) per owned shard. All methods are safe for concurrent
// use; per-shard ordering against the in-memory store is the caller's
// responsibility (the worker holds its shard lock across apply+append,
// and its shard write lock across serialize+rotate).
type Log struct {
	dir  string
	mode Mode
	cfg  Config
	m    *logMetrics

	mu        sync.Mutex
	man       *manifest
	shards    map[uint64]*shardLog
	recovered bool
	closed    bool
}

// Open attaches to (creating if needed) a worker data directory. The
// directory is bound to workerID: opening another worker's directory is
// refused, so two workers can never interleave one WAL lineage. Call
// Recover before serving.
func Open(dir, workerID string, mode Mode, cfg Config) (*Log, error) {
	if mode == ModeOff {
		return nil, errors.New("durable: Open with ModeOff (leave the log nil instead)")
	}
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(filepath.Join(dir, "shards"), 0o755); err != nil {
		return nil, err
	}
	man, err := loadManifest(dir, workerID)
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	d := &Log{
		dir:    dir,
		mode:   mode,
		cfg:    cfg,
		m:      newLogMetrics(reg),
		man:    man,
		shards: make(map[uint64]*shardLog),
	}
	if err := saveManifest(dir, man); err != nil {
		return nil, err
	}
	return d, nil
}

// Mode returns the durability mode.
func (d *Log) Mode() Mode { return d.mode }

// shardDir returns the directory of one shard's files.
func (d *Log) shardDir(id uint64) string {
	return filepath.Join(d.dir, "shards", strconv.FormatUint(id, 10))
}

// Recovery reports what a Recover pass rebuilt.
type Recovery struct {
	// Shards maps each recovered shard to its rebuilt store.
	Shards map[uint64]core.Store
	// ReplayedRecords and ReplayedBytes count the WAL tail replayed over
	// the snapshots.
	ReplayedRecords uint64
	ReplayedBytes   uint64
	// TruncatedTails counts shards whose WAL ended in a torn or corrupt
	// record that was cleanly truncated.
	TruncatedTails int
	// Released counts manifest tombstones of migrated-away shards that
	// were honored (not resurrected).
	Released int
	// Duration is the wall-clock cost of the pass.
	Duration time.Duration
}

// RecoverHooks lets the caller ride along on recovery and rebuild
// derived per-shard state (materialized rollup tables) without a second
// pass over the data. Both callbacks are optional and run sequentially
// per shard: SnapshotTrailer first (if the winning snapshot carried
// trailer bytes beyond the serialized store), then Replayed once per
// replayed WAL insert batch, in replay order.
type RecoverHooks struct {
	// SnapshotTrailer receives the bytes the chosen snapshot blob holds
	// after the serialized store. Not called when the snapshot is a
	// plain store blob or the shard recovered without a snapshot.
	SnapshotTrailer func(shard uint64, trailer []byte)
	// Replayed receives every WAL-replayed insert batch, after it was
	// applied to the shard's store.
	Replayed func(shard uint64, items []core.Item)
}

// Recover rebuilds every owned shard: newest valid snapshot, then WAL
// replay in generation order, truncating torn tails. newStore builds an
// empty store for shards that have no snapshot yet; dims is the schema
// dimension count used to decode insert records. Recover must be called
// exactly once, before any append.
func (d *Log) Recover(dims int, newStore func() (core.Store, error)) (*Recovery, error) {
	return d.RecoverWithHooks(dims, newStore, RecoverHooks{})
}

// RecoverWithHooks is Recover with derived-state callbacks.
func (d *Log) RecoverWithHooks(dims int, newStore func() (core.Store, error), hooks RecoverHooks) (*Recovery, error) {
	start := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrLogClosed
	}
	if d.recovered {
		return nil, errors.New("durable: Recover called twice")
	}
	d.recovered = true

	rec := &Recovery{Shards: make(map[uint64]core.Store)}
	for id, status := range d.man.Shards {
		if status == StatusReleased {
			rec.Released++
			continue
		}
		store, released, err := d.recoverShard(id, dims, newStore, rec, hooks)
		if err != nil {
			return nil, fmt.Errorf("durable: recover shard %d: %w", id, err)
		}
		if released {
			// The WAL tail says the shard migrated away but the crash beat
			// the manifest update: honor the log.
			d.man.Shards[id] = StatusReleased
			_ = os.RemoveAll(d.shardDir(id))
			rec.Released++
			continue
		}
		rec.Shards[id] = store
	}
	if err := saveManifest(d.dir, d.man); err != nil {
		return nil, err
	}
	rec.Duration = time.Since(start)
	d.m.recoveryReplayed.Add(rec.ReplayedRecords)
	d.m.recoveredShards.Set(float64(len(rec.Shards)))
	d.m.recoverySeconds.Set(rec.Duration.Seconds())
	d.m.truncations.Add(uint64(rec.TruncatedTails))
	return rec, nil
}

// recoverShard rebuilds one shard and opens its WAL for appending;
// callers hold d.mu. The released return is true when the log ends in an
// ownership-release record.
func (d *Log) recoverShard(id uint64, dims int, newStore func() (core.Store, error), rec *Recovery, hooks RecoverHooks) (core.Store, bool, error) {
	dir := d.shardDir(id)
	snaps, wals, err := shardFiles(dir)
	if err != nil {
		return nil, false, err
	}

	// Newest snapshot that decodes wins; older generations are the
	// fallback when the latest was half-written by a dying checkpoint.
	var store core.Store
	var snapGen uint64
	haveSnap := false
	for i := len(snaps) - 1; i >= 0; i-- {
		g := snaps[i]
		b, err := os.ReadFile(filepath.Join(dir, snapName(g)))
		if err != nil {
			continue
		}
		blob, err := decodeSnapshot(b, id, g)
		if err != nil {
			continue
		}
		s, trailer, err := core.DeserializeStoreTrailer(blob)
		if err != nil {
			continue
		}
		store, snapGen, haveSnap = s, g, true
		if len(trailer) > 0 && hooks.SnapshotTrailer != nil {
			hooks.SnapshotTrailer(id, trailer)
		}
		break
	}
	if !haveSnap {
		s, err := newStore()
		if err != nil {
			return nil, false, err
		}
		store = s
	}

	// Replay every WAL generation the snapshot does not cover, oldest
	// first. A torn or corrupt tail truncates the file and ends that
	// generation's replay.
	released := false
	maxGen := snapGen
	for _, g := range wals {
		if g < snapGen {
			continue
		}
		if g > maxGen {
			maxGen = g
		}
		path := filepath.Join(dir, walName(g))
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, false, err
		}
		valid, scanErr := ScanRecords(b, func(r Record) error {
			if r.Shard != id {
				return fmt.Errorf("record for shard %d in shard %d's log", r.Shard, id)
			}
			switch r.Type {
			case RecInsert:
				items, err := DecodeInsert(r.Data, dims)
				if err != nil {
					return err
				}
				if err := store.BulkLoad(items); err != nil {
					return err
				}
				if hooks.Replayed != nil {
					hooks.Replayed(id, items)
				}
				rec.ReplayedRecords++
			case RecRelease:
				released = true
			case RecAdopt:
				// informational
			default:
				return fmt.Errorf("unknown record type %d", r.Type)
			}
			return nil
		})
		rec.ReplayedBytes += uint64(valid)
		if scanErr != nil {
			if !errors.Is(scanErr, ErrTornRecord) && !errors.Is(scanErr, ErrCorruptRecord) {
				return nil, false, scanErr
			}
			// Torn tail: keep the valid prefix, drop the garbage.
			if err := os.Truncate(path, int64(valid)); err != nil {
				return nil, false, err
			}
			rec.TruncatedTails++
		}
	}
	if released {
		return nil, true, nil
	}

	// Append into the newest generation (creating wal-0 for a shard that
	// lost its files but kept its manifest entry).
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, false, err
	}
	w, err := openWAL(filepath.Join(dir, walName(maxGen)), d.mode, d.cfg.GroupInterval, d.m)
	if err != nil {
		return nil, false, err
	}
	d.shards[id] = &shardLog{dir: dir, gen: maxGen, w: w}
	return store, false, nil
}

// CreateShard registers a brand-new empty shard: manifest entry first
// (a crash before the files exist recovers it as empty), then wal-0.
func (d *Log) CreateShard(id uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrLogClosed
	}
	if st, ok := d.man.Shards[id]; ok && st == StatusOwned {
		return fmt.Errorf("durable: shard %d already owned", id)
	}
	d.man.Shards[id] = StatusOwned
	if err := saveManifest(d.dir, d.man); err != nil {
		return err
	}
	return d.openShardLocked(id, 0)
}

// AdoptShard persists a shard received whole — a migration arrival or
// the new half of a split: snapshot + empty WAL first, manifest entry
// last, so a crash mid-adopt is indistinguishable from never adopting
// (the sender only releases after this returns).
func (d *Log) AdoptShard(id uint64, blob []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrLogClosed
	}
	if st, ok := d.man.Shards[id]; ok && st == StatusOwned {
		return fmt.Errorf("durable: shard %d already owned", id)
	}
	dir := d.shardDir(id)
	// A released tombstone's stale files (or a half-finished previous
	// adopt) must not leak into the new lineage.
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	start := time.Now()
	if err := writeFileAtomic(dir, snapName(0), encodeSnapshot(id, 0, blob)); err != nil {
		return err
	}
	d.m.snapshots.Inc()
	d.m.snapshotBytes.Add(uint64(len(blob)))
	d.m.snapshotLat.Record(time.Since(start))
	if err := d.openShardLocked(id, 0); err != nil {
		return err
	}
	if err := d.shards[id].w.append(Record{Type: RecAdopt, Shard: id}, d.mode == ModeSync); err != nil {
		return err
	}
	d.man.Shards[id] = StatusOwned
	return saveManifest(d.dir, d.man)
}

// openShardLocked opens generation gen's WAL for id; callers hold d.mu.
func (d *Log) openShardLocked(id, gen uint64) error {
	dir := d.shardDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	w, err := openWAL(filepath.Join(dir, walName(gen)), d.mode, d.cfg.GroupInterval, d.m)
	if err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		w.crash()
		return err
	}
	d.shards[id] = &shardLog{dir: dir, gen: gen, w: w}
	return nil
}

// shard returns the live state of an owned shard.
func (d *Log) shard(id uint64) (*shardLog, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrLogClosed
	}
	s, ok := d.shards[id]
	if !ok {
		return nil, fmt.Errorf("durable: shard %d not owned", id)
	}
	return s, nil
}

// AppendInsert logs one applied insert batch. In sync mode it returns
// after the record is fsynced (group-committed with its neighbors); in
// async mode after it is buffered.
func (d *Log) AppendInsert(id uint64, dims int, items []core.Item) error {
	if len(items) == 0 {
		return nil
	}
	s, err := d.shard(id)
	if err != nil {
		return err
	}
	return s.w.append(Record{Type: RecInsert, Shard: id, Data: EncodeInsert(dims, items)}, d.mode == ModeSync)
}

// ReleaseShard marks a shard as migrated away: a release record is
// force-synced into the WAL (so recovery honors the release even if the
// manifest update below never lands), the manifest entry becomes a
// tombstone, and the shard's files are deleted.
func (d *Log) ReleaseShard(id uint64) error {
	s, err := d.shard(id)
	if err != nil {
		return err
	}
	if err := s.w.append(Record{Type: RecRelease, Shard: id}, true); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrLogClosed
	}
	if err := s.w.close(); err != nil {
		return err
	}
	delete(d.shards, id)
	d.man.Shards[id] = StatusReleased
	if err := saveManifest(d.dir, d.man); err != nil {
		return err
	}
	_ = os.RemoveAll(s.dir)
	d.m.releases.Inc()
	return nil
}

// ShouldCheckpoint reports whether a shard's WAL has outgrown the
// snapshot thresholds.
func (d *Log) ShouldCheckpoint(id uint64) bool {
	d.mu.Lock()
	s, ok := d.shards[id]
	d.mu.Unlock()
	if !ok {
		return false
	}
	if d.cfg.SnapshotBytes > 0 && s.w.size() >= d.cfg.SnapshotBytes {
		return true
	}
	return d.cfg.SnapshotRecords > 0 && int64(s.w.records()) >= d.cfg.SnapshotRecords
}

// RotateWAL begins a checkpoint: the current WAL is sealed (flushed,
// fsynced, closed) and appends switch to generation gen+1. The caller
// must hold whatever lock orders appends against the store serialization
// it is about to snapshot — every record in sealed generations must be
// contained in that snapshot. Complete the checkpoint with WriteSnapshot.
func (d *Log) RotateWAL(id uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrLogClosed
	}
	s, ok := d.shards[id]
	if !ok {
		return fmt.Errorf("durable: shard %d not owned", id)
	}
	next, err := openWAL(filepath.Join(s.dir, walName(s.gen+1)), d.mode, d.cfg.GroupInterval, d.m)
	if err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		next.crash()
		return err
	}
	if err := s.w.close(); err != nil {
		next.crash()
		return err
	}
	s.gen++
	s.w = next
	return nil
}

// WriteSnapshot completes a checkpoint begun by RotateWAL: the blob
// (which must cover every generation before the current one) is written
// as the current generation's snapshot and all older files are pruned —
// the WAL truncation at the snapshot boundary.
func (d *Log) WriteSnapshot(id uint64, blob []byte) error {
	d.mu.Lock()
	s, ok := d.shards[id]
	if !ok || d.closed {
		d.mu.Unlock()
		if d.closed {
			return ErrLogClosed
		}
		return fmt.Errorf("durable: shard %d not owned", id)
	}
	gen := s.gen
	dir := s.dir
	d.mu.Unlock()

	start := time.Now()
	if err := writeFileAtomic(dir, snapName(gen), encodeSnapshot(id, gen, blob)); err != nil {
		return err
	}
	d.m.snapshots.Inc()
	d.m.snapshotBytes.Add(uint64(len(blob)))
	d.m.snapshotLat.Record(time.Since(start))
	pruneShardFiles(dir, gen)
	return nil
}

// OwnedShards lists the shards the manifest marks owned, sorted.
func (d *Log) OwnedShards() []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]uint64, 0, len(d.man.Shards))
	for id, st := range d.man.Shards {
		if st == StatusOwned {
			out = append(out, id)
		}
	}
	sortU64(out)
	return out
}

// Close flushes and fsyncs every WAL and closes the log — the graceful
// shutdown path.
func (d *Log) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	shards := make([]*shardLog, 0, len(d.shards))
	for _, s := range d.shards {
		shards = append(shards, s)
	}
	d.mu.Unlock()
	var first error
	for _, s := range shards {
		if err := s.w.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Crash closes every WAL without flushing — the in-process stand-in for
// SIGKILL. Async-mode records still in the buffer are lost, exactly like
// a real crash; sync mode never acknowledged them.
func (d *Log) Crash() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	shards := make([]*shardLog, 0, len(d.shards))
	for _, s := range d.shards {
		shards = append(shards, s)
	}
	d.mu.Unlock()
	for _, s := range shards {
		s.w.crash()
	}
}
