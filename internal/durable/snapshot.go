package durable

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/wire"
)

// snapMagic guards against decoding unrelated files as snapshots.
const snapMagic = "VOLAPSNAP1"

// snapName and walName build per-shard file names. Generation g's
// snapshot covers every record of WAL generations < g; recovery loads
// the newest valid snapshot and replays wal-<g>, wal-<g+1>, ... over it
// (more than one survives only when a crash interrupted a checkpoint
// between WAL rotation and snapshot completion).
func snapName(gen uint64) string { return "snap-" + strconv.FormatUint(gen, 10) }
func walName(gen uint64) string  { return "wal-" + strconv.FormatUint(gen, 10) }

// encodeSnapshot frames a shard snapshot: magic, shard ID, generation,
// CRC and the core.Serialize blob.
func encodeSnapshot(shard, gen uint64, blob []byte) []byte {
	w := wire.NewWriter(32 + len(blob))
	w.String(snapMagic)
	w.Uvarint(shard)
	w.Uvarint(gen)
	w.Uint32(crc32.Checksum(blob, castagnoli))
	w.Bytes1(blob)
	return w.Bytes()
}

// decodeSnapshot validates a snapshot file's framing and returns the
// inner store blob.
func decodeSnapshot(b []byte, shard, gen uint64) ([]byte, error) {
	r := wire.NewReader(b)
	if r.String() != snapMagic {
		return nil, errors.New("durable: not a snapshot")
	}
	if s := r.Uvarint(); s != shard {
		return nil, fmt.Errorf("durable: snapshot is for shard %d, not %d", s, shard)
	}
	if g := r.Uvarint(); g != gen {
		return nil, fmt.Errorf("durable: snapshot generation %d, want %d", g, gen)
	}
	sum := r.Uint32()
	blob := r.Bytes1()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if crc32.Checksum(blob, castagnoli) != sum {
		return nil, errors.New("durable: snapshot checksum mismatch")
	}
	return blob, nil
}

// shardFiles lists the snapshot and WAL generations present in a shard
// directory, each sorted ascending. Unrecognized files are ignored.
func shardFiles(dir string) (snaps, wals []uint64, err error) {
	ents, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	for _, e := range ents {
		name := e.Name()
		if g, ok := parseGen(name, "snap-"); ok {
			snaps = append(snaps, g)
		} else if g, ok := parseGen(name, "wal-"); ok {
			wals = append(wals, g)
		}
	}
	sortU64(snaps)
	sortU64(wals)
	return snaps, wals, nil
}

func parseGen(name, prefix string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, prefix)
	if !ok {
		return 0, false
	}
	g, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return g, true
}

func sortU64(vs []uint64) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// pruneShardFiles deletes every snapshot and WAL of a generation below
// keep — the truncation half of a completed checkpoint.
func pruneShardFiles(dir string, keep uint64) {
	snaps, wals, err := shardFiles(dir)
	if err != nil {
		return
	}
	for _, g := range snaps {
		if g < keep {
			_ = os.Remove(filepath.Join(dir, snapName(g)))
		}
	}
	for _, g := range wals {
		if g < keep {
			_ = os.Remove(filepath.Join(dir, walName(g)))
		}
	}
}
