package durable

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/keys"
)

// testSchema builds a small 3-dimensional hierarchical schema.
func testSchema(tb testing.TB) *hierarchy.Schema {
	tb.Helper()
	return hierarchy.MustSchema(
		hierarchy.MustDimension("Store",
			hierarchy.Level{Name: "Region", Fanout: 8},
			hierarchy.Level{Name: "City", Fanout: 8}),
		hierarchy.MustDimension("Item",
			hierarchy.Level{Name: "Brand", Fanout: 50}),
		hierarchy.MustDimension("Date",
			hierarchy.Level{Name: "Year", Fanout: 4},
			hierarchy.Level{Name: "Month", Fanout: 4}),
	)
}

func testStoreConfig(tb testing.TB) core.Config {
	return core.Config{
		Schema: testSchema(tb), Store: core.StoreHilbertPDC, Keys: keys.MDS,
		LeafCapacity: 16, DirCapacity: 8,
	}
}

func newTestStore(tb testing.TB) core.Store {
	tb.Helper()
	st, err := core.NewStore(testStoreConfig(tb))
	if err != nil {
		tb.Fatalf("NewStore: %v", err)
	}
	return st
}

// testItems builds n deterministic distinct items.
func testItems(n, seed int) []core.Item {
	items := make([]core.Item, n)
	for i := range items {
		v := uint64(seed*1000 + i)
		items[i] = core.Item{
			Coords:  []uint64{v % 64, (v * 7) % 50, (v * 13) % 16},
			Measure: float64(i) + float64(seed)/10,
		}
	}
	return items
}

// storeItems extracts and sorts a store's contents for comparison.
func storeItems(st core.Store) []core.Item {
	var items []core.Item
	st.Items(func(it core.Item) bool {
		c := make([]uint64, len(it.Coords))
		copy(c, it.Coords)
		items = append(items, core.Item{Coords: c, Measure: it.Measure})
		return true
	})
	sort.Slice(items, func(i, j int) bool {
		a, b := items[i], items[j]
		for d := range a.Coords {
			if a.Coords[d] != b.Coords[d] {
				return a.Coords[d] < b.Coords[d]
			}
		}
		return a.Measure < b.Measure
	})
	return items
}

func wantSameItems(t *testing.T, got, want core.Store) {
	t.Helper()
	g, w := storeItems(got), storeItems(want)
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("store contents differ: got %d items, want %d", len(g), len(w))
	}
}

func openTestLog(t *testing.T, dir string, mode Mode) *Log {
	t.Helper()
	d, err := Open(dir, "w0", mode, Config{GroupInterval: time.Millisecond})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return d
}

func recoverAll(t *testing.T, d *Log, dims int) *Recovery {
	t.Helper()
	rec, err := d.Recover(dims, func() (core.Store, error) {
		return core.NewStore(testStoreConfig(t))
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return rec
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Type: RecInsert, Shard: 0, Data: []byte("hello")},
		{Type: RecRelease, Shard: 1 << 40},
		{Type: RecAdopt, Shard: 7, Data: []byte{}},
	}
	for _, rec := range recs {
		b := EncodeRecord(rec)
		got, n, err := DecodeRecord(b)
		if err != nil {
			t.Fatalf("DecodeRecord(%v): %v", rec, err)
		}
		if n != len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if got.Type != rec.Type || got.Shard != rec.Shard || string(got.Data) != string(rec.Data) {
			t.Fatalf("round trip: got %+v, want %+v", got, rec)
		}
	}
}

func TestScanRecordsTornTail(t *testing.T) {
	var buf []byte
	for i := 0; i < 3; i++ {
		buf = append(buf, EncodeRecord(Record{Type: RecInsert, Shard: uint64(i), Data: []byte("abc")})...)
	}
	clean := len(buf)
	// A torn frame: header promising more bytes than exist.
	buf = append(buf, EncodeRecord(Record{Type: RecInsert, Shard: 9, Data: []byte("torn")})[:7]...)

	var seen int
	off, err := ScanRecords(buf, func(Record) error { seen++; return nil })
	if !errors.Is(err, ErrTornRecord) {
		t.Fatalf("err = %v, want ErrTornRecord", err)
	}
	if off != clean || seen != 3 {
		t.Fatalf("off=%d seen=%d, want off=%d seen=3", off, seen, clean)
	}
}

func TestScanRecordsBadCRC(t *testing.T) {
	a := EncodeRecord(Record{Type: RecInsert, Shard: 1, Data: []byte("first")})
	b := EncodeRecord(Record{Type: RecInsert, Shard: 2, Data: []byte("second")})
	b[len(b)-1] ^= 0xff // damage the second record's payload
	buf := append(append([]byte{}, a...), b...)

	var seen int
	off, err := ScanRecords(buf, func(Record) error { seen++; return nil })
	if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("err = %v, want ErrCorruptRecord", err)
	}
	if off != len(a) || seen != 1 {
		t.Fatalf("off=%d seen=%d, want off=%d seen=1", off, seen, len(a))
	}
}

func TestInsertCodecRoundTrip(t *testing.T) {
	items := testItems(37, 1)
	got, err := DecodeInsert(EncodeInsert(3, items), 3)
	if err != nil {
		t.Fatalf("DecodeInsert: %v", err)
	}
	if !reflect.DeepEqual(got, items) {
		t.Fatalf("insert codec round trip mismatch")
	}
}

func TestRecoverEmptyDir(t *testing.T) {
	d := openTestLog(t, t.TempDir(), ModeSync)
	rec := recoverAll(t, d, 3)
	if len(rec.Shards) != 0 || rec.ReplayedRecords != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestAppendCloseRecover is the basic durability contract: everything
// appended before a clean Close comes back.
func TestAppendCloseRecover(t *testing.T) {
	for _, mode := range []Mode{ModeAsync, ModeSync} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			want := newTestStore(t)

			d := openTestLog(t, dir, mode)
			recoverAll(t, d, 3)
			if err := d.CreateShard(4); err != nil {
				t.Fatalf("CreateShard: %v", err)
			}
			for i := 0; i < 5; i++ {
				items := testItems(20, i)
				if err := want.BulkLoad(items); err != nil {
					t.Fatalf("BulkLoad: %v", err)
				}
				if err := d.AppendInsert(4, 3, items); err != nil {
					t.Fatalf("AppendInsert: %v", err)
				}
			}
			if err := d.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			d2 := openTestLog(t, dir, mode)
			rec := recoverAll(t, d2, 3)
			if rec.ReplayedRecords != 5 {
				t.Fatalf("replayed %d records, want 5", rec.ReplayedRecords)
			}
			got, ok := rec.Shards[4]
			if !ok {
				t.Fatalf("shard 4 not recovered (got %v)", rec.Shards)
			}
			wantSameItems(t, got, want)
			d2.Close()
		})
	}
}

// TestCrashRecoverSync: in sync mode every acknowledged append survives a
// crash (fds closed without flushing).
func TestCrashRecoverSync(t *testing.T) {
	dir := t.TempDir()
	want := newTestStore(t)

	d := openTestLog(t, dir, ModeSync)
	recoverAll(t, d, 3)
	if err := d.CreateShard(1); err != nil {
		t.Fatalf("CreateShard: %v", err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				items := testItems(5, g*100+i)
				if err := d.AppendInsert(1, 3, items); err != nil {
					t.Errorf("AppendInsert: %v", err)
					return
				}
				mu.Lock()
				want.BulkLoad(items)
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	d.Crash()

	d2 := openTestLog(t, dir, ModeSync)
	rec := recoverAll(t, d2, 3)
	got, ok := rec.Shards[1]
	if !ok {
		t.Fatalf("shard 1 not recovered")
	}
	wantSameItems(t, got, want)
	d2.Close()
}

// TestCheckpoint exercises the rotate → snapshot → prune cycle and
// recovery across generations.
func TestCheckpoint(t *testing.T) {
	dir := t.TempDir()
	want := newTestStore(t)

	d := openTestLog(t, dir, ModeSync)
	recoverAll(t, d, 3)
	if err := d.CreateShard(2); err != nil {
		t.Fatalf("CreateShard: %v", err)
	}
	load := func(seed int) {
		items := testItems(30, seed)
		want.BulkLoad(items)
		if err := d.AppendInsert(2, 3, items); err != nil {
			t.Fatalf("AppendInsert: %v", err)
		}
	}
	load(1)
	load(2)

	// Checkpoint: as the worker would, serialize then rotate then snapshot.
	blob := want.Serialize()
	if err := d.RotateWAL(2); err != nil {
		t.Fatalf("RotateWAL: %v", err)
	}
	if err := d.WriteSnapshot(2, blob); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}

	// Old generation files must be pruned.
	shardDir := filepath.Join(dir, "shards", "2")
	if _, err := os.Stat(filepath.Join(shardDir, "wal-0")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("wal-0 not pruned after checkpoint: %v", err)
	}

	load(3) // records after the checkpoint land in wal-1
	d.Crash()

	d2 := openTestLog(t, dir, ModeSync)
	rec := recoverAll(t, d2, 3)
	if rec.ReplayedRecords != 1 {
		t.Fatalf("replayed %d records, want 1 (snapshot should cover the rest)", rec.ReplayedRecords)
	}
	got, ok := rec.Shards[2]
	if !ok {
		t.Fatalf("shard 2 not recovered")
	}
	wantSameItems(t, got, want)
	d2.Close()
}

// TestTornTailTruncated: garbage appended to a WAL (a torn final record)
// is cleanly truncated at recovery and the shard keeps working.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	want := newTestStore(t)

	d := openTestLog(t, dir, ModeSync)
	recoverAll(t, d, 3)
	if err := d.CreateShard(3); err != nil {
		t.Fatalf("CreateShard: %v", err)
	}
	items := testItems(10, 1)
	want.BulkLoad(items)
	if err := d.AppendInsert(3, 3, items); err != nil {
		t.Fatalf("AppendInsert: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate a crash mid-append: a half-written frame at the tail.
	walPath := filepath.Join(dir, "shards", "3", "wal-0")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	torn := EncodeRecord(Record{Type: RecInsert, Shard: 3, Data: EncodeInsert(3, testItems(5, 9))})
	if _, err := f.Write(torn[:len(torn)-3]); err != nil {
		t.Fatalf("write torn tail: %v", err)
	}
	f.Close()

	d2 := openTestLog(t, dir, ModeSync)
	rec := recoverAll(t, d2, 3)
	if rec.TruncatedTails != 1 {
		t.Fatalf("TruncatedTails = %d, want 1", rec.TruncatedTails)
	}
	got := rec.Shards[3]
	wantSameItems(t, got, want)

	// The shard must accept appends after truncation and recover again.
	more := testItems(4, 2)
	want.BulkLoad(more)
	if err := d2.AppendInsert(3, 3, more); err != nil {
		t.Fatalf("AppendInsert after truncation: %v", err)
	}
	if err := d2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d3 := openTestLog(t, dir, ModeSync)
	rec3 := recoverAll(t, d3, 3)
	wantSameItems(t, rec3.Shards[3], want)
	d3.Close()
}

// TestReleaseShard: a released shard is never resurrected, even when the
// crash happens between the WAL release record and the manifest update.
func TestReleaseShard(t *testing.T) {
	dir := t.TempDir()
	d := openTestLog(t, dir, ModeSync)
	recoverAll(t, d, 3)
	if err := d.CreateShard(5); err != nil {
		t.Fatalf("CreateShard: %v", err)
	}
	if err := d.AppendInsert(5, 3, testItems(10, 1)); err != nil {
		t.Fatalf("AppendInsert: %v", err)
	}
	if err := d.ReleaseShard(5); err != nil {
		t.Fatalf("ReleaseShard: %v", err)
	}
	if err := d.AppendInsert(5, 3, testItems(1, 2)); err == nil {
		t.Fatalf("AppendInsert after release succeeded")
	}
	if _, err := os.Stat(filepath.Join(dir, "shards", "5")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("released shard's files not deleted: %v", err)
	}
	d.Close()

	d2 := openTestLog(t, dir, ModeSync)
	rec := recoverAll(t, d2, 3)
	if _, ok := rec.Shards[5]; ok {
		t.Fatalf("released shard resurrected")
	}
	if rec.Released != 1 {
		t.Fatalf("Released = %d, want 1", rec.Released)
	}
	d2.Close()
}

// TestReleaseRecordBeatsManifest: only the WAL release record lands (the
// crash preempts the manifest update and file deletion) — recovery must
// still honor it.
func TestReleaseRecordBeatsManifest(t *testing.T) {
	dir := t.TempDir()
	d := openTestLog(t, dir, ModeSync)
	recoverAll(t, d, 3)
	if err := d.CreateShard(6); err != nil {
		t.Fatalf("CreateShard: %v", err)
	}
	if err := d.AppendInsert(6, 3, testItems(3, 1)); err != nil {
		t.Fatalf("AppendInsert: %v", err)
	}
	d.Close()

	// Hand-append the release record, leaving manifest + files in place.
	walPath := filepath.Join(dir, "shards", "6", "wal-0")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	if _, err := f.Write(EncodeRecord(Record{Type: RecRelease, Shard: 6})); err != nil {
		t.Fatalf("append release: %v", err)
	}
	f.Close()

	d2 := openTestLog(t, dir, ModeSync)
	rec := recoverAll(t, d2, 3)
	if _, ok := rec.Shards[6]; ok {
		t.Fatalf("shard with WAL release record resurrected")
	}
	if _, err := os.Stat(filepath.Join(dir, "shards", "6")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("released shard's files not cleaned up at recovery: %v", err)
	}
	d2.Close()

	// The tombstone persists across another cycle.
	d3 := openTestLog(t, dir, ModeSync)
	rec3 := recoverAll(t, d3, 3)
	if _, ok := rec3.Shards[6]; ok {
		t.Fatalf("tombstone lost")
	}
	d3.Close()
}

// TestAdoptShard: a migrated-in shard persists via its adopting snapshot,
// including re-adoption over a release tombstone.
func TestAdoptShard(t *testing.T) {
	dir := t.TempDir()
	want := newTestStore(t)
	want.BulkLoad(testItems(25, 3))
	blob := want.Serialize()

	d := openTestLog(t, dir, ModeSync)
	recoverAll(t, d, 3)
	if err := d.AdoptShard(8, blob); err != nil {
		t.Fatalf("AdoptShard: %v", err)
	}
	extra := testItems(5, 4)
	want.BulkLoad(extra)
	if err := d.AppendInsert(8, 3, extra); err != nil {
		t.Fatalf("AppendInsert: %v", err)
	}
	if err := d.ReleaseShard(8); err != nil {
		t.Fatalf("ReleaseShard: %v", err)
	}
	// The shard comes back (re-adoption after a round trip elsewhere).
	blob2 := want.Serialize()
	if err := d.AdoptShard(8, blob2); err != nil {
		t.Fatalf("re-AdoptShard: %v", err)
	}
	d.Crash()

	d2 := openTestLog(t, dir, ModeSync)
	rec := recoverAll(t, d2, 3)
	got, ok := rec.Shards[8]
	if !ok {
		t.Fatalf("adopted shard not recovered")
	}
	wantSameItems(t, got, want)
	d2.Close()
}

// TestCrashMidCheckpoint: a crash between WAL rotation and snapshot write
// leaves two WAL generations; recovery replays both.
func TestCrashMidCheckpoint(t *testing.T) {
	dir := t.TempDir()
	want := newTestStore(t)

	d := openTestLog(t, dir, ModeSync)
	recoverAll(t, d, 3)
	if err := d.CreateShard(9); err != nil {
		t.Fatalf("CreateShard: %v", err)
	}
	items1 := testItems(10, 1)
	want.BulkLoad(items1)
	d.AppendInsert(9, 3, items1)
	if err := d.RotateWAL(9); err != nil {
		t.Fatalf("RotateWAL: %v", err)
	}
	// ... crash before WriteSnapshot: wal-0 and wal-1 both live.
	items2 := testItems(10, 2)
	want.BulkLoad(items2)
	d.AppendInsert(9, 3, items2)
	d.Crash()

	d2 := openTestLog(t, dir, ModeSync)
	rec := recoverAll(t, d2, 3)
	if rec.ReplayedRecords != 2 {
		t.Fatalf("replayed %d records, want 2 (both generations)", rec.ReplayedRecords)
	}
	wantSameItems(t, rec.Shards[9], want)
	d2.Close()
}

func TestManifestWorkerIDMismatch(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, "w0", ModeSync, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	d.Close()
	if _, err := Open(dir, "w1", ModeSync, Config{}); err == nil {
		t.Fatalf("Open with wrong worker ID succeeded")
	}
}

func TestShouldCheckpoint(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, "w0", ModeAsync, Config{SnapshotRecords: 3, SnapshotBytes: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer d.Close()
	recoverAll(t, d, 3)
	if err := d.CreateShard(1); err != nil {
		t.Fatalf("CreateShard: %v", err)
	}
	for i := 0; i < 2; i++ {
		d.AppendInsert(1, 3, testItems(1, i))
	}
	if d.ShouldCheckpoint(1) {
		t.Fatalf("ShouldCheckpoint true at 2 records (threshold 3)")
	}
	d.AppendInsert(1, 3, testItems(1, 9))
	if !d.ShouldCheckpoint(1) {
		t.Fatalf("ShouldCheckpoint false at 3 records (threshold 3)")
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{"off": ModeOff, "async": ModeAsync, "sync": ModeSync} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("Mode(%q).String() = %q", s, got.String())
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatalf("ParseMode(bogus) succeeded")
	}
}
