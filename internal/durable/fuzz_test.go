package durable

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzScanRecords pins the WAL codec's crash-safety contract on arbitrary
// bytes: scanning never panics, the reported truncation offset is a clean
// record boundary (rescanning the prefix succeeds exactly), and framing
// failures are always one of the two sentinel errors.
func FuzzScanRecords(f *testing.F) {
	// Seeds: empty, one record, two records, a torn tail, a corrupt CRC,
	// and an implausible length prefix.
	one := EncodeRecord(Record{Type: RecInsert, Shard: 4, Data: EncodeInsert(3, testItems(3, 1))})
	two := append(append([]byte{}, one...), EncodeRecord(Record{Type: RecRelease, Shard: 4})...)
	torn := append(append([]byte{}, one...), one[:len(one)-5]...)
	bad := append([]byte{}, two...)
	bad[len(bad)-1] ^= 0x80
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3}
	f.Add([]byte{})
	f.Add(one)
	f.Add(two)
	f.Add(torn)
	f.Add(bad)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, b []byte) {
		var recs []Record
		off, err := ScanRecords(b, func(r Record) error {
			recs = append(recs, Record{Type: r.Type, Shard: r.Shard, Data: append([]byte{}, r.Data...)})
			return nil
		})
		if off < 0 || off > len(b) {
			t.Fatalf("offset %d outside buffer of %d bytes", off, len(b))
		}
		if err != nil && !errors.Is(err, ErrTornRecord) && !errors.Is(err, ErrCorruptRecord) {
			t.Fatalf("non-framing error from framing scan: %v", err)
		}
		if err == nil && off != len(b) {
			t.Fatalf("clean scan stopped at %d of %d", off, len(b))
		}
		// The truncation contract: the prefix before off is exactly the
		// valid records, so a truncated file replays identically.
		n := 0
		off2, err2 := ScanRecords(b[:off], func(r Record) error {
			if n >= len(recs) {
				return errors.New("extra record after truncation")
			}
			got := recs[n]
			n++
			if got.Type != r.Type || got.Shard != r.Shard || !bytes.Equal(got.Data, r.Data) {
				return errors.New("record changed after truncation")
			}
			return nil
		})
		if err2 != nil || off2 != off || n != len(recs) {
			t.Fatalf("truncated prefix rescan: off=%d err=%v records=%d/%d", off2, err2, n, len(recs))
		}
		// Every decoded record re-encodes to a frame that decodes back.
		for _, r := range recs {
			rt, _, err := DecodeRecord(EncodeRecord(r))
			if err != nil || rt.Type != r.Type || rt.Shard != r.Shard || !bytes.Equal(rt.Data, r.Data) {
				t.Fatalf("re-encode round trip failed: %v", err)
			}
		}
	})
}

// FuzzDecodeInsert pins the insert-body decoder: arbitrary bytes never
// panic or over-allocate, and valid bodies round trip.
func FuzzDecodeInsert(f *testing.F) {
	f.Add(EncodeInsert(3, testItems(5, 2)), 3)
	f.Add(EncodeInsert(1, testItems(1, 0)), 1)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, 3) // huge count, tiny body
	f.Add([]byte{}, 2)

	f.Fuzz(func(t *testing.T, b []byte, dims int) {
		if dims < 1 || dims > 16 {
			return
		}
		items, err := DecodeInsert(b, dims)
		if err != nil {
			return
		}
		back, err := DecodeInsert(EncodeInsert(dims, items), dims)
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if len(back) != len(items) {
			t.Fatalf("round trip changed count: %d -> %d", len(items), len(back))
		}
	})
}
