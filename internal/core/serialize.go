package core

import (
	"errors"
	"fmt"

	"repro/internal/hierarchy"
	"repro/internal/keys"
	"repro/internal/wire"
)

// shardMagic guards against decoding unrelated blobs as shards.
const shardMagic = "VOLAPSHARD1"

// Serialize flattens the tree store into a binary blob (§III-E
// SerializeShard): configuration, schema, and all items.
func (t *tree) Serialize() []byte { return serializeStore(t) }

// serializeStore implements Serialize for any store by streaming items.
func serializeStore(s Store) []byte {
	cfg := s.Config()
	items := make([]Item, 0, s.Count())
	s.Items(func(it Item) bool {
		items = append(items, it)
		return true
	})

	w := wire.NewWriter(64 + len(items)*(cfg.Schema.NumDims()*4+8))
	w.String(shardMagic)
	w.Uint8(uint8(cfg.Store))
	w.Uint8(uint8(cfg.Keys))
	w.Uvarint(uint64(cfg.MDSCap))
	w.Uvarint(uint64(cfg.LeafCapacity))
	w.Uvarint(uint64(cfg.DirCapacity))
	w.Uint8(uint8(cfg.SplitPolicy))
	cfg.Schema.Encode(w)
	w.Uint64(cfg.Schema.Fingerprint())
	w.Uvarint(uint64(len(items)))
	for _, it := range items {
		for _, c := range it.Coords {
			w.Uvarint(c)
		}
		w.Float64(it.Measure)
	}
	return w.Bytes()
}

// DeserializeStore rebuilds a store from a Serialize blob (§III-E
// DeserializeShard). The data is bulk-loaded, so a deserialized Hilbert
// PDC tree comes back packed. Bytes beyond the store's own fields are
// ignored, so composite blobs (store + rollup trailer) decode too.
func DeserializeStore(b []byte) (Store, error) {
	s, _, err := DeserializeStoreTrailer(b)
	return s, err
}

// DeserializeStoreTrailer is DeserializeStore returning any bytes the
// blob carries beyond the serialized store — the rollup trailer of a
// composite shard image, empty for a plain store blob.
func DeserializeStoreTrailer(b []byte) (Store, []byte, error) {
	r := wire.NewReader(b)
	if r.String() != shardMagic {
		return nil, nil, errors.New("core: not a serialized shard")
	}
	cfg := Config{
		Store:        StoreKind(r.Uint8()),
		Keys:         keys.Kind(r.Uint8()),
		MDSCap:       int(r.Uvarint()),
		LeafCapacity: int(r.Uvarint()),
		DirCapacity:  int(r.Uvarint()),
		SplitPolicy:  SplitPolicy(r.Uint8()),
	}
	schema, err := hierarchy.DecodeSchema(r)
	if err != nil {
		return nil, nil, fmt.Errorf("core: shard schema: %w", err)
	}
	cfg.Schema = schema
	if fp := r.Uint64(); fp != schema.Fingerprint() {
		return nil, nil, errors.New("core: shard schema fingerprint mismatch")
	}
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, nil, r.Err()
	}
	dims := schema.NumDims()
	// Each item needs at least dims+8 bytes; reject counts the buffer
	// cannot possibly hold before allocating for them.
	if n > uint64(r.Remaining())/uint64(dims+8)+1 {
		return nil, nil, fmt.Errorf("core: shard claims %d items, buffer too small", n)
	}
	if cfg.LeafCapacity > 1<<20 || cfg.DirCapacity > 1<<20 || cfg.MDSCap > 1<<20 {
		return nil, nil, errors.New("core: implausible shard configuration")
	}
	items := make([]Item, 0, n)
	for i := uint64(0); i < n; i++ {
		coords := make([]uint64, dims)
		for d := range coords {
			coords[d] = r.Uvarint()
		}
		m := r.Float64()
		if r.Err() != nil {
			return nil, nil, fmt.Errorf("core: shard truncated at item %d: %w", i, r.Err())
		}
		items = append(items, Item{Coords: coords, Measure: m})
	}
	s, err := NewStore(cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := s.BulkLoad(items); err != nil {
		return nil, nil, err
	}
	return s, b[len(b)-r.Remaining():], nil
}
