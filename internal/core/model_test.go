package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hierarchy"
	"repro/internal/keys"
)

// TestModelRandomOps is a model-based property test: a random sequence of
// operations (point inserts, bulk loads, splits, serialization round
// trips) is applied to every store variant, with a plain item slice as
// the model. After every step a random aggregate query on the store must
// match brute force over the model.
func TestModelRandomOps(t *testing.T) {
	for name, cfg := range allConfigs(t) {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				st, err := NewStore(cfg)
				if err != nil {
					t.Log(err)
					return false
				}
				var model []Item
				for step := 0; step < 30; step++ {
					switch op := rng.Intn(10); {
					case op < 5: // point inserts
						for i := 0; i < rng.Intn(40)+1; i++ {
							it := randItem(rng, cfg.Schema)
							model = append(model, it)
							if err := st.Insert(it); err != nil {
								t.Log(err)
								return false
							}
						}
					case op < 7: // bulk load
						batch := make([]Item, rng.Intn(200))
						for i := range batch {
							batch[i] = randItem(rng, cfg.Schema)
						}
						model = append(model, batch...)
						if err := st.BulkLoad(batch); err != nil {
							t.Log(err)
							return false
						}
					case op < 8: // split and continue on the left half +
						// re-insert the right half (exercises §III-E ops)
						if st.Count() < 4 {
							continue
						}
						h, err := st.SplitQuery()
						if err != nil {
							t.Log(err)
							return false
						}
						left, right, err := st.Split(h)
						if err != nil {
							t.Log(err)
							return false
						}
						var rightItems []Item
						right.Items(func(it Item) bool {
							rightItems = append(rightItems, it)
							return true
						})
						if err := left.BulkLoad(rightItems); err != nil {
							t.Log(err)
							return false
						}
						st = left
					case op < 9: // serialize / deserialize round trip
						blob := st.Serialize()
						st2, err := DeserializeStore(blob)
						if err != nil {
							t.Log(err)
							return false
						}
						st = st2
					default: // invariant check
						if err := CheckInvariants(st); err != nil {
							t.Log(err)
							return false
						}
					}
					// Query check after every step.
					q := randRect(rng, cfg.Schema)
					if err := aggEqual(st.Query(q), refAggregate(model, q)); err != nil {
						t.Logf("step %d: %v", step, err)
						return false
					}
					if st.Count() != uint64(len(model)) {
						t.Logf("step %d: count %d != model %d", step, st.Count(), len(model))
						return false
					}
				}
				return CheckInvariants(st) == nil
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQueryNeverOvercounts property-checks that no query can report more
// items than exist, and that disjoint hierarchy-value queries over one
// dimension partition the total exactly.
func TestQueryNeverOvercounts(t *testing.T) {
	cfg := allConfigs(t)["hilbert-mds"]
	rng := rand.New(rand.NewSource(99))
	st, _ := NewStore(cfg)
	for i := 0; i < 3000; i++ {
		if err := st.Insert(randItem(rng, cfg.Schema)); err != nil {
			t.Fatal(err)
		}
	}
	total := st.Count()
	// Partition by level-1 values of dimension 0: counts must sum to the
	// total (each item has exactly one level-1 ancestor).
	d0 := cfg.Schema.Dim(0)
	var sum uint64
	all := keys.AllRect(cfg.Schema)
	for v := uint32(0); v < d0.Level(0).Fanout; v++ {
		iv, err := d0.NodeInterval(1, []uint32{v})
		if err != nil {
			t.Fatal(err)
		}
		q := keys.Rect{Ivs: append([]hierarchy.Interval(nil), all.Ivs...)}
		q.Ivs[0] = iv
		agg := st.Query(q)
		if agg.Count > total {
			t.Fatalf("overcount: %d > %d", agg.Count, total)
		}
		sum += agg.Count
	}
	if sum != total {
		t.Fatalf("partition sums to %d, want %d", sum, total)
	}
}
