// Package core implements VOLAP's shard data structures (paper §III-D):
// the PDC tree, the novel Hilbert PDC tree (each in MDS- and MBR-keyed
// variants), and a simple array store for benchmarking — five stores in
// total, all behind one Store interface and sharing one multi-threaded
// tree implementation.
//
// The trees are multi-dimensional indices in the R-tree family: every
// directory node carries a bounding key enclosing its children and a
// cached aggregate of its subtree, so queries that fully cover a node stop
// there instead of descending — the mechanism behind the paper's "coverage
// resilience". The Hilbert variants insert by the item's compact Hilbert
// index (computed from ID-expanded hierarchy ordinals, Figure 3) like a
// B+-tree, avoiding geometric computations on the insert path entirely,
// and split nodes at the position that minimizes the overlap of the two
// resulting keys (§III-D).
//
// Concurrency: insertions descend with lock coupling and split full nodes
// preemptively on the way down, so they hold at most two node locks at any
// time; queries hold read locks on a small frontier (a node is released
// once its relevant children are read-locked). All lock acquisition is
// top-down, which rules out deadlock.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/hierarchy"
	"repro/internal/hilbert"
	"repro/internal/keys"
	"repro/internal/wire"
)

// Item is one data record: a leaf ordinal per dimension plus a measure.
// Stores take ownership of the Coords slice on insert.
type Item struct {
	Coords  []uint64
	Measure float64
}

// Aggregate is the result of an aggregate query and the cached per-node
// subtree summary: COUNT, SUM, MIN, MAX over measures.
type Aggregate struct {
	Count uint64
	Sum   float64
	Min   float64
	Max   float64
}

// NewAggregate returns the identity aggregate (Count 0, Min +Inf, Max -Inf).
func NewAggregate() Aggregate {
	return Aggregate{Min: math.Inf(1), Max: math.Inf(-1)}
}

// AddItem folds one measure into the aggregate.
func (a *Aggregate) AddItem(m float64) {
	a.Count++
	a.Sum += m
	if m < a.Min {
		a.Min = m
	}
	if m > a.Max {
		a.Max = m
	}
}

// Merge folds another aggregate into this one.
func (a *Aggregate) Merge(b Aggregate) {
	a.Count += b.Count
	a.Sum += b.Sum
	if b.Min < a.Min {
		a.Min = b.Min
	}
	if b.Max > a.Max {
		a.Max = b.Max
	}
}

// Avg returns Sum/Count, or 0 for an empty aggregate.
func (a Aggregate) Avg() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// Encode serializes the aggregate.
func (a Aggregate) Encode(w *wire.Writer) {
	w.Uvarint(a.Count)
	w.Float64(a.Sum)
	w.Float64(a.Min)
	w.Float64(a.Max)
}

// DecodeAggregate reads an aggregate serialized by Encode.
func DecodeAggregate(r *wire.Reader) (Aggregate, error) {
	a := Aggregate{Count: r.Uvarint(), Sum: r.Float64(), Min: r.Float64(), Max: r.Float64()}
	return a, r.Err()
}

// String renders the aggregate compactly.
func (a Aggregate) String() string {
	return fmt.Sprintf("{n=%d sum=%.3f min=%.3f max=%.3f}", a.Count, a.Sum, a.Min, a.Max)
}

// StoreKind selects one of the shard store families.
type StoreKind uint8

const (
	// StoreHilbertPDC is the Hilbert PDC tree: Hilbert-ordered insertion.
	// It is the zero value because it is the store the paper recommends
	// for essentially every workload (§III-D).
	StoreHilbertPDC StoreKind = iota
	// StorePDC is the PDC tree: geometric least-overlap insertion.
	StorePDC
	// StoreArray is a flat slice with linear-scan queries (benchmark baseline).
	StoreArray
)

// String names the store kind.
func (k StoreKind) String() string {
	switch k {
	case StoreArray:
		return "array"
	case StorePDC:
		return "pdc"
	case StoreHilbertPDC:
		return "hilbert-pdc"
	default:
		return fmt.Sprintf("store(%d)", uint8(k))
	}
}

// SplitPolicy selects how tree nodes choose the split position.
type SplitPolicy uint8

const (
	// SplitLeastOverlap scans all positions and picks the one whose two
	// resulting keys overlap least (the paper's algorithm).
	SplitLeastOverlap SplitPolicy = iota
	// SplitMedian always splits in the middle (ablation baseline).
	SplitMedian
)

// Config parameterizes a shard store.
type Config struct {
	Schema       *hierarchy.Schema
	Store        StoreKind
	Keys         keys.Kind
	MDSCap       int         // intervals per dimension for MDS keys (0 = default)
	LeafCapacity int         // items per leaf (0 = 64)
	DirCapacity  int         // children per directory node (0 = 16)
	SplitPolicy  SplitPolicy // node split position policy
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.LeafCapacity == 0 {
		c.LeafCapacity = 64
	}
	if c.DirCapacity == 0 {
		c.DirCapacity = 16
	}
	if c.MDSCap == 0 {
		c.MDSCap = keys.DefaultMDSCap
	}
	return c
}

// validate checks the configuration.
func (c Config) validate() error {
	if c.Schema == nil {
		return errors.New("core: Config.Schema is required")
	}
	if c.LeafCapacity < 2 {
		return fmt.Errorf("core: LeafCapacity %d < 2", c.LeafCapacity)
	}
	if c.DirCapacity < 3 {
		// A root split produces a directory with two children; it must
		// not itself be full, so three is the minimum capacity.
		return fmt.Errorf("core: DirCapacity %d < 3", c.DirCapacity)
	}
	return nil
}

// ErrSplitTooSmall is returned by SplitQuery on stores with fewer than
// two items.
var ErrSplitTooSmall = errors.New("core: store too small to split")

// errSplitTooSmall aliases the exported error for internal use.
var errSplitTooSmall = ErrSplitTooSmall

// QueryStats describes the work a single query performed.
type QueryStats struct {
	NodesVisited  int // nodes whose key was examined
	CoveredNodes  int // nodes answered from the cached aggregate
	LeavesScanned int // leaves whose items were scanned
	ItemsScanned  int // items individually tested
}

// Hyperplane is a shard split plan (§III-E): items with
// Coords[Dim] <= Value fall on the first side. Dim == -1 is the
// degenerate fallback used when no coordinate separates the data; the
// split then alternates items between the sides (bounding keys may
// overlap, which VOLAP permits).
type Hyperplane struct {
	Dim   int
	Value uint64
}

// Store is a shard data structure (paper §III-D and §III-E). All methods
// are safe for concurrent use.
type Store interface {
	// Insert adds one item.
	Insert(it Item) error
	// BulkLoad adds many items at once; on an empty tree store this packs
	// the structure bottom-up, the fast path behind the paper's 400k/s
	// bulk ingestion figure.
	BulkLoad(items []Item) error
	// Query aggregates all items inside the rectangle.
	Query(q keys.Rect) Aggregate
	// QueryWithStats is Query with traversal statistics.
	QueryWithStats(q keys.Rect) (Aggregate, QueryStats)
	// Count returns the number of items.
	Count() uint64
	// Key returns a snapshot of the store's bounding key.
	Key() *keys.Key
	// Items streams every item; the callback returns false to stop.
	// Items inserted concurrently with the iteration may or may not be
	// observed.
	Items(fn func(Item) bool)
	// SplitQuery plans a hyperplane partitioning the store into halves of
	// approximately equal size.
	SplitQuery() (Hyperplane, error)
	// Split partitions the store's current contents into two new stores
	// separated by the hyperplane. The receiver is unchanged.
	Split(h Hyperplane) (Store, Store, error)
	// Serialize flattens the store (configuration, schema and data) into
	// a binary blob suitable for network transmission.
	Serialize() []byte
	// MemoryBytes estimates the store's memory footprint.
	MemoryBytes() uint64
	// Config returns the store's configuration.
	Config() Config
}

// NewStore builds an empty store from the configuration.
func NewStore(cfg Config) (Store, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	switch cfg.Store {
	case StoreArray:
		return newArrayStore(cfg), nil
	case StorePDC, StoreHilbertPDC:
		return newTree(cfg)
	default:
		return nil, fmt.Errorf("core: unknown store kind %d", cfg.Store)
	}
}

// curveFor builds the compact Hilbert curve over the schema's ID-expanded
// coordinates (paper Figure 3 + §III-D).
func curveFor(s *hierarchy.Schema) (*hilbert.Curve, error) {
	return hilbert.New(s.ExpandedBits())
}
