package core

import (
	"sync"

	"repro/internal/keys"
)

// arrayStore is the simple array shard store (§III-D): a flat slice with
// linear-scan queries, kept as a correctness and performance baseline.
type arrayStore struct {
	cfg Config

	mu    sync.RWMutex
	items []Item
	key   *keys.Key
	agg   Aggregate
}

var _ Store = (*arrayStore)(nil)

func newArrayStore(cfg Config) *arrayStore {
	return &arrayStore{
		cfg: cfg,
		key: keys.NewEmpty(cfg.Keys, cfg.Schema.NumDims(), cfg.MDSCap),
		agg: NewAggregate(),
	}
}

func (a *arrayStore) Config() Config { return a.cfg }

func (a *arrayStore) Insert(it Item) error {
	if err := a.cfg.Schema.ValidatePoint(it.Coords); err != nil {
		return err
	}
	a.mu.Lock()
	a.items = append(a.items, it)
	a.key.ExtendPoint(it.Coords)
	a.agg.AddItem(it.Measure)
	a.mu.Unlock()
	return nil
}

func (a *arrayStore) BulkLoad(items []Item) error {
	for i := range items {
		if err := a.cfg.Schema.ValidatePoint(items[i].Coords); err != nil {
			return err
		}
	}
	a.mu.Lock()
	for _, it := range items {
		a.items = append(a.items, it)
		a.key.ExtendPoint(it.Coords)
		a.agg.AddItem(it.Measure)
	}
	a.mu.Unlock()
	return nil
}

func (a *arrayStore) Query(q keys.Rect) Aggregate {
	agg, _ := a.QueryWithStats(q)
	return agg
}

func (a *arrayStore) QueryWithStats(q keys.Rect) (Aggregate, QueryStats) {
	agg := NewAggregate()
	a.mu.RLock()
	defer a.mu.RUnlock()
	st := QueryStats{NodesVisited: 1, LeavesScanned: 1, ItemsScanned: len(a.items)}
	if a.key.CoveredByRect(q) {
		st.CoveredNodes = 1
		st.ItemsScanned = 0
		agg.Merge(a.agg)
		return agg, st
	}
	for _, it := range a.items {
		if q.ContainsPoint(it.Coords) {
			agg.AddItem(it.Measure)
		}
	}
	return agg, st
}

func (a *arrayStore) Count() uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return uint64(len(a.items))
}

func (a *arrayStore) Key() *keys.Key {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.key.Clone()
}

func (a *arrayStore) Items(fn func(Item) bool) {
	a.mu.RLock()
	snapshot := make([]Item, len(a.items))
	copy(snapshot, a.items)
	a.mu.RUnlock()
	for _, it := range snapshot {
		if !fn(it) {
			return
		}
	}
}

func (a *arrayStore) SplitQuery() (Hyperplane, error) {
	a.mu.RLock()
	n := len(a.items)
	if n < 2 {
		a.mu.RUnlock()
		return Hyperplane{}, errSplitTooSmall
	}
	const sampleCap = 4096
	stride := n/sampleCap + 1
	sample := make([][]uint64, 0, sampleCap)
	for i := 0; i < n; i += stride {
		sample = append(sample, a.items[i].Coords)
	}
	k := a.key.Clone()
	a.mu.RUnlock()
	return planHyperplane(k, sample, a.cfg), nil
}

func (a *arrayStore) Split(h Hyperplane) (Store, Store, error) {
	return splitStore(a, h)
}

func (a *arrayStore) Serialize() []byte { return serializeStore(a) }

func (a *arrayStore) MemoryBytes() uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	dims := uint64(a.cfg.Schema.NumDims())
	return uint64(len(a.items)) * (dims*8 + 32)
}
