package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/keys"
)

// testSchema builds a small 3-dimensional hierarchical schema.
func testSchema(tb testing.TB) *hierarchy.Schema {
	tb.Helper()
	return hierarchy.MustSchema(
		hierarchy.MustDimension("Store",
			hierarchy.Level{Name: "Region", Fanout: 8},
			hierarchy.Level{Name: "City", Fanout: 8}),
		hierarchy.MustDimension("Item",
			hierarchy.Level{Name: "Brand", Fanout: 50}),
		hierarchy.MustDimension("Date",
			hierarchy.Level{Name: "Year", Fanout: 4},
			hierarchy.Level{Name: "Month", Fanout: 4},
			hierarchy.Level{Name: "Day", Fanout: 4}),
	)
}

// allConfigs enumerates the five shard store variants of §III-D.
func allConfigs(tb testing.TB) map[string]Config {
	s := testSchema(tb)
	return map[string]Config{
		"array":       {Schema: s, Store: StoreArray, Keys: keys.MBR},
		"pdc-mbr":     {Schema: s, Store: StorePDC, Keys: keys.MBR, LeafCapacity: 16, DirCapacity: 8},
		"pdc-mds":     {Schema: s, Store: StorePDC, Keys: keys.MDS, LeafCapacity: 16, DirCapacity: 8},
		"hilbert-mbr": {Schema: s, Store: StoreHilbertPDC, Keys: keys.MBR, LeafCapacity: 16, DirCapacity: 8},
		"hilbert-mds": {Schema: s, Store: StoreHilbertPDC, Keys: keys.MDS, LeafCapacity: 16, DirCapacity: 8},
	}
}

// randItem draws a random point with mild skew (quadratic bias toward low
// ordinals) so trees develop uneven regions like real data.
func randItem(rng *rand.Rand, s *hierarchy.Schema) Item {
	coords := make([]uint64, s.NumDims())
	for d := range coords {
		n := s.Dim(d).LeafCount()
		f := rng.Float64()
		coords[d] = uint64(f * f * float64(n))
		if coords[d] >= n {
			coords[d] = n - 1
		}
	}
	return Item{Coords: coords, Measure: float64(rng.Intn(1000)) / 10}
}

// randRect draws a query rectangle by picking a hierarchy value at a
// random depth in every dimension (§IV query model).
func randRect(rng *rand.Rand, s *hierarchy.Schema) keys.Rect {
	ivs := make([]hierarchy.Interval, s.NumDims())
	for d := range ivs {
		dim := s.Dim(d)
		depth := rng.Intn(dim.Depth() + 1)
		prefix := make([]uint32, depth)
		for l := 0; l < depth; l++ {
			prefix[l] = uint32(rng.Intn(int(dim.Level(l).Fanout)))
		}
		iv, err := dim.NodeInterval(depth, prefix)
		if err != nil {
			panic(err)
		}
		ivs[d] = iv
	}
	return keys.Rect{Ivs: ivs}
}

// refAggregate recomputes an aggregate by brute force.
func refAggregate(items []Item, q keys.Rect) Aggregate {
	agg := NewAggregate()
	for _, it := range items {
		if q.ContainsPoint(it.Coords) {
			agg.AddItem(it.Measure)
		}
	}
	return agg
}

func TestAggregate(t *testing.T) {
	a := NewAggregate()
	if a.Count != 0 || !math.IsInf(a.Min, 1) || !math.IsInf(a.Max, -1) {
		t.Fatal("identity aggregate wrong")
	}
	if a.Avg() != 0 {
		t.Error("empty Avg should be 0")
	}
	a.AddItem(2)
	a.AddItem(6)
	if a.Count != 2 || a.Sum != 8 || a.Min != 2 || a.Max != 6 || a.Avg() != 4 {
		t.Errorf("aggregate = %v", a)
	}
	b := NewAggregate()
	b.AddItem(-1)
	a.Merge(b)
	if a.Count != 3 || a.Sum != 7 || a.Min != -1 || a.Max != 6 {
		t.Errorf("merged = %v", a)
	}
	// Merging the identity is a no-op.
	before := a
	a.Merge(NewAggregate())
	if a != before {
		t.Error("merge with identity changed aggregate")
	}
	if a.String() == "" {
		t.Error("String empty")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewStore(Config{}); err == nil {
		t.Error("missing schema should fail")
	}
	s := testSchema(t)
	if _, err := NewStore(Config{Schema: s, LeafCapacity: 1}); err == nil {
		t.Error("tiny leaf capacity should fail")
	}
	if _, err := NewStore(Config{Schema: s, DirCapacity: 2, Store: StorePDC}); err == nil {
		t.Error("DirCapacity 2 should fail")
	}
	if _, err := NewStore(Config{Schema: s, Store: StoreKind(99)}); err == nil {
		t.Error("unknown store kind should fail")
	}
	if StoreArray.String() != "array" || StorePDC.String() != "pdc" ||
		StoreHilbertPDC.String() != "hilbert-pdc" || StoreKind(9).String() == "" {
		t.Error("StoreKind.String wrong")
	}
}

func TestInsertValidation(t *testing.T) {
	for name, cfg := range allConfigs(t) {
		s, err := NewStore(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Insert(Item{Coords: []uint64{0}}); err == nil {
			t.Errorf("%s: short point should fail", name)
		}
		if err := s.BulkLoad([]Item{{Coords: []uint64{1 << 40, 0, 0}}}); err == nil {
			t.Errorf("%s: out-of-range bulk point should fail", name)
		}
	}
}

// TestQueryMatchesReference inserts random items into every store variant
// and checks dozens of random aggregate queries against brute force.
func TestQueryMatchesReference(t *testing.T) {
	for name, cfg := range allConfigs(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			s, err := NewStore(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var ref []Item
			for i := 0; i < 3000; i++ {
				it := randItem(rng, cfg.Schema)
				ref = append(ref, it)
				if err := s.Insert(it); err != nil {
					t.Fatal(err)
				}
			}
			if s.Count() != 3000 {
				t.Fatalf("Count = %d", s.Count())
			}
			for q := 0; q < 60; q++ {
				rect := randRect(rng, cfg.Schema)
				got := s.Query(rect)
				want := refAggregate(ref, rect)
				if err := aggEqual(got, want); err != nil {
					t.Fatalf("query %v: %v", rect, err)
				}
			}
			if err := CheckInvariants(s); err != nil {
				t.Fatalf("invariants: %v", err)
			}
		})
	}
}

// TestFullCoverageUsesCache checks that a query covering the whole space
// is answered from cached aggregates without scanning items.
func TestFullCoverageUsesCache(t *testing.T) {
	for name, cfg := range allConfigs(t) {
		rng := rand.New(rand.NewSource(3))
		s, _ := NewStore(cfg)
		for i := 0; i < 2000; i++ {
			if err := s.Insert(randItem(rng, cfg.Schema)); err != nil {
				t.Fatal(err)
			}
		}
		agg, st := s.QueryWithStats(keys.AllRect(cfg.Schema))
		if agg.Count != 2000 {
			t.Errorf("%s: full query count = %d", name, agg.Count)
		}
		if st.CoveredNodes == 0 {
			t.Errorf("%s: full-coverage query should use cached aggregates", name)
		}
		if st.ItemsScanned != 0 {
			t.Errorf("%s: full-coverage query scanned %d items", name, st.ItemsScanned)
		}
	}
}

func TestKeySnapshot(t *testing.T) {
	for name, cfg := range allConfigs(t) {
		s, _ := NewStore(cfg)
		if !s.Key().Empty() {
			t.Errorf("%s: empty store key should be empty", name)
		}
		it := Item{Coords: []uint64{5, 6, 7}, Measure: 1}
		if err := s.Insert(it); err != nil {
			t.Fatal(err)
		}
		k := s.Key()
		if !k.ContainsPoint(it.Coords) {
			t.Errorf("%s: key misses inserted point", name)
		}
	}
}

// TestBulkLoadEquivalence checks that bulk loading and point insertion
// produce stores with identical query results, and that the packed
// Hilbert build keeps all invariants.
func TestBulkLoadEquivalence(t *testing.T) {
	for name, cfg := range allConfigs(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			items := make([]Item, 2500)
			for i := range items {
				items[i] = randItem(rng, cfg.Schema)
			}
			bulk, _ := NewStore(cfg)
			if err := bulk.BulkLoad(items); err != nil {
				t.Fatal(err)
			}
			point, _ := NewStore(cfg)
			for _, it := range items {
				if err := point.Insert(it); err != nil {
					t.Fatal(err)
				}
			}
			if bulk.Count() != point.Count() {
				t.Fatalf("counts differ: %d vs %d", bulk.Count(), point.Count())
			}
			for q := 0; q < 40; q++ {
				rect := randRect(rng, cfg.Schema)
				if err := aggEqual(bulk.Query(rect), point.Query(rect)); err != nil {
					t.Fatalf("bulk vs point on %v: %v", rect, err)
				}
			}
			if err := CheckInvariants(bulk); err != nil {
				t.Fatalf("bulk invariants: %v", err)
			}
			// Bulk loading into a non-empty store must also work.
			if err := bulk.BulkLoad(items[:100]); err != nil {
				t.Fatal(err)
			}
			if bulk.Count() != 2600 {
				t.Fatalf("count after second bulk = %d", bulk.Count())
			}
			if err := CheckInvariants(bulk); err != nil {
				t.Fatalf("invariants after second bulk: %v", err)
			}
		})
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	for _, cfg := range allConfigs(t) {
		s, _ := NewStore(cfg)
		if err := s.BulkLoad(nil); err != nil {
			t.Fatal(err)
		}
		if s.Count() != 0 {
			t.Error("empty bulk load changed count")
		}
	}
}

// TestSplit checks SplitQuery/Split: the halves partition the store and
// are roughly balanced.
func TestSplit(t *testing.T) {
	for name, cfg := range allConfigs(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(9))
			s, _ := NewStore(cfg)
			var ref []Item
			for i := 0; i < 4000; i++ {
				it := randItem(rng, cfg.Schema)
				ref = append(ref, it)
				if err := s.Insert(it); err != nil {
					t.Fatal(err)
				}
			}
			h, err := s.SplitQuery()
			if err != nil {
				t.Fatal(err)
			}
			if h.Dim < 0 {
				t.Fatalf("random data should split spatially, got fallback")
			}
			left, right, err := s.Split(h)
			if err != nil {
				t.Fatal(err)
			}
			lc, rc := left.Count(), right.Count()
			if lc+rc != 4000 {
				t.Fatalf("split lost items: %d + %d", lc, rc)
			}
			if lc == 0 || rc == 0 {
				t.Fatalf("degenerate split: %d/%d", lc, rc)
			}
			if ratio := float64(lc) / 4000; ratio < 0.2 || ratio > 0.8 {
				t.Errorf("unbalanced split: %d/%d", lc, rc)
			}
			// Union of halves answers queries identically to the original.
			for q := 0; q < 30; q++ {
				rect := randRect(rng, cfg.Schema)
				got := left.Query(rect)
				got.Merge(right.Query(rect))
				if err := aggEqual(got, refAggregate(ref, rect)); err != nil {
					t.Fatalf("halves vs reference: %v", err)
				}
			}
			// The original store is unchanged.
			if s.Count() != 4000 {
				t.Error("Split mutated the source store")
			}
			for _, half := range []Store{left, right} {
				if err := CheckInvariants(half); err != nil {
					t.Fatalf("half invariants: %v", err)
				}
			}
		})
	}
}

func TestSplitDegenerate(t *testing.T) {
	for name, cfg := range allConfigs(t) {
		s, _ := NewStore(cfg)
		if _, err := s.SplitQuery(); err == nil {
			t.Errorf("%s: SplitQuery on empty store should fail", name)
		}
		// All items identical: only the alternating fallback can split.
		for i := 0; i < 100; i++ {
			if err := s.Insert(Item{Coords: []uint64{3, 3, 3}, Measure: 1}); err != nil {
				t.Fatal(err)
			}
		}
		h, err := s.SplitQuery()
		if err != nil {
			t.Fatal(err)
		}
		if h.Dim != -1 {
			t.Errorf("%s: identical items should fall back, got dim %d", name, h.Dim)
		}
		left, right, err := s.Split(h)
		if err != nil {
			t.Fatal(err)
		}
		if left.Count()+right.Count() != 100 || left.Count() == 0 || right.Count() == 0 {
			t.Errorf("%s: fallback split %d/%d", name, left.Count(), right.Count())
		}
	}
}

func TestSplitBadHyperplane(t *testing.T) {
	cfg := allConfigs(t)["hilbert-mds"]
	s, _ := NewStore(cfg)
	if _, _, err := s.Split(Hyperplane{Dim: 99}); err == nil {
		t.Error("out-of-range hyperplane dim should fail")
	}
}

// TestSerializeRoundTrip checks Serialize/DeserializeStore preserve
// contents and configuration for every variant.
func TestSerializeRoundTrip(t *testing.T) {
	for name, cfg := range allConfigs(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(13))
			s, _ := NewStore(cfg)
			var ref []Item
			for i := 0; i < 1500; i++ {
				it := randItem(rng, cfg.Schema)
				ref = append(ref, it)
				if err := s.Insert(it); err != nil {
					t.Fatal(err)
				}
			}
			blob := s.Serialize()
			got, err := DeserializeStore(blob)
			if err != nil {
				t.Fatal(err)
			}
			if got.Count() != s.Count() {
				t.Fatalf("count %d != %d", got.Count(), s.Count())
			}
			if got.Config().Store != cfg.Store || got.Config().Keys != cfg.Keys {
				t.Error("config changed across serialization")
			}
			for q := 0; q < 25; q++ {
				rect := randRect(rng, cfg.Schema)
				if err := aggEqual(got.Query(rect), refAggregate(ref, rect)); err != nil {
					t.Fatalf("deserialized query: %v", err)
				}
			}
			if err := CheckInvariants(got); err != nil {
				t.Fatalf("deserialized invariants: %v", err)
			}
		})
	}
}

func TestDeserializeErrors(t *testing.T) {
	if _, err := DeserializeStore([]byte("garbage")); err == nil {
		t.Error("garbage should fail")
	}
	cfg := allConfigs(t)["array"]
	s, _ := NewStore(cfg)
	_ = s.Insert(Item{Coords: []uint64{1, 2, 3}, Measure: 1})
	blob := s.Serialize()
	if _, err := DeserializeStore(blob[:len(blob)-3]); err == nil {
		t.Error("truncated blob should fail")
	}
}

func TestItemsEarlyStop(t *testing.T) {
	for name, cfg := range allConfigs(t) {
		rng := rand.New(rand.NewSource(2))
		s, _ := NewStore(cfg)
		for i := 0; i < 500; i++ {
			if err := s.Insert(randItem(rng, cfg.Schema)); err != nil {
				t.Fatal(err)
			}
		}
		seen := 0
		s.Items(func(Item) bool {
			seen++
			return seen < 10
		})
		if seen != 10 {
			t.Errorf("%s: early stop saw %d items", name, seen)
		}
	}
}

func TestStatsAndMemory(t *testing.T) {
	for name, cfg := range allConfigs(t) {
		rng := rand.New(rand.NewSource(4))
		s, _ := NewStore(cfg)
		for i := 0; i < 1000; i++ {
			if err := s.Insert(randItem(rng, cfg.Schema)); err != nil {
				t.Fatal(err)
			}
		}
		st := Stats(s)
		if st.Items != 1000 {
			t.Errorf("%s: stats items = %d", name, st.Items)
		}
		if cfg.Store != StoreArray {
			if st.Leaves < 2 || st.Height < 2 {
				t.Errorf("%s: implausible structure %+v", name, st)
			}
		}
		if s.MemoryBytes() == 0 {
			t.Errorf("%s: MemoryBytes = 0", name)
		}
	}
}

// TestMedianSplitAblation checks the SplitMedian policy still yields a
// correct tree (the ablation baseline of DESIGN.md decision 3).
func TestMedianSplitAblation(t *testing.T) {
	cfg := allConfigs(t)["hilbert-mds"]
	cfg.SplitPolicy = SplitMedian
	rng := rand.New(rand.NewSource(21))
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ref []Item
	for i := 0; i < 2000; i++ {
		it := randItem(rng, cfg.Schema)
		ref = append(ref, it)
		if err := s.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	for q := 0; q < 30; q++ {
		rect := randRect(rng, cfg.Schema)
		if err := aggEqual(s.Query(rect), refAggregate(ref, rect)); err != nil {
			t.Fatalf("median-split query: %v", err)
		}
	}
	if err := CheckInvariants(s); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyQuery checks queries on empty stores return the identity.
func TestEmptyQuery(t *testing.T) {
	for name, cfg := range allConfigs(t) {
		s, _ := NewStore(cfg)
		agg := s.Query(keys.AllRect(cfg.Schema))
		if agg.Count != 0 || agg.Sum != 0 {
			t.Errorf("%s: empty query = %v", name, agg)
		}
	}
}
