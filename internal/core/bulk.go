package core

import (
	"sort"

	"repro/internal/hilbert"
)

// BulkLoad adds many items at once. On an empty Hilbert PDC tree the
// items are sorted by Hilbert index and the tree is packed bottom-up
// without any per-item descent — the fast path behind the paper's
// 400-thousand-items-per-second bulk ingestion figure (§IV-C). In every
// other case it degrades to per-item insertion.
//
// The packed build swaps the root wholesale, so BulkLoad must not race
// with other mutators on the same (empty) store; VOLAP only bulk-loads
// shards at creation and deserialization time, where the worker guarantees
// exclusivity.
func (t *tree) BulkLoad(items []Item) error {
	for i := range items {
		if err := t.cfg.Schema.ValidatePoint(items[i].Coords); err != nil {
			return err
		}
	}
	if len(items) == 0 {
		return nil
	}
	if !t.hilbertMode() {
		return t.bulkInsert(items)
	}

	t.anchor.Lock()
	r := t.root
	r.mu.Lock()
	empty := r.leaf && len(r.items) == 0
	r.mu.Unlock()
	if !empty {
		t.anchor.Unlock()
		return t.bulkInsert(items)
	}

	// Compute and sort by Hilbert index.
	idx := make([]hilbert.Index, len(items))
	for i := range items {
		idx[i] = t.hilbertOf(items[i].Coords)
	}
	perm := make([]int, len(items))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return idx[perm[a]].Less(idx[perm[b]]) })

	// Pack leaves at ~3/4 fill so subsequent point inserts do not split
	// immediately.
	leafFill := t.cfg.LeafCapacity * 3 / 4
	if leafFill < 2 {
		leafFill = 2
	}
	var level []*node
	for off := 0; off < len(perm); off += leafFill {
		end := off + leafFill
		if end > len(perm) {
			end = len(perm)
		}
		leaf := t.newLeaf()
		for _, p := range perm[off:end] {
			leaf.items = append(leaf.items, items[p])
			leaf.hilberts = append(leaf.hilberts, idx[p])
		}
		t.recomputeLeaf(leaf)
		level = append(level, leaf)
	}

	dirFill := t.cfg.DirCapacity * 3 / 4
	if dirFill < 2 {
		dirFill = 2
	}
	for len(level) > 1 {
		var next []*node
		for off := 0; off < len(level); off += dirFill {
			end := off + dirFill
			if end > len(level) {
				end = len(level)
			}
			dir := t.newDir()
			for _, c := range level[off:end] {
				dir.children = append(dir.children, c)
				dir.key.ExtendKey(c.key)
				dir.agg.Merge(c.agg)
				dir.maxH = c.maxH // children are in ascending order
			}
			next = append(next, dir)
		}
		level = next
	}
	t.root = level[0]
	t.count.Add(uint64(len(items)))
	t.anchor.Unlock()
	return nil
}

// bulkInsert is the fallback per-item path for already-populated
// stores; BulkLoad validated the items. In Hilbert mode the batch is
// pre-sorted by compact Hilbert index first, so consecutive descents
// walk neighboring root-to-leaf paths and leaf insertions cluster
// instead of scattering (§III-E's sorted drain batches).
func (t *tree) bulkInsert(items []Item) error {
	if !t.hilbertMode() {
		for _, it := range items {
			t.insert(it, hilbert.Index{})
		}
		return nil
	}
	idx := make([]hilbert.Index, len(items))
	for i := range items {
		idx[i] = t.hilbertOf(items[i].Coords)
	}
	perm := make([]int, len(items))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return idx[perm[a]].Less(idx[perm[b]]) })
	for _, p := range perm {
		t.insert(items[p], idx[p])
	}
	return nil
}
