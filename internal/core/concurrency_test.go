package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/keys"
)

// TestConcurrentInsertQuery runs writers and readers against every tree
// variant simultaneously and then verifies conservation: the quiescent
// tree contains exactly the inserted items and all structural invariants
// hold. Run with -race to exercise the locking protocol.
func TestConcurrentInsertQuery(t *testing.T) {
	for name, cfg := range allConfigs(t) {
		if cfg.Store == StoreArray {
			continue // trivially coarse-locked; covered implicitly below
		}
		t.Run(name, func(t *testing.T) {
			s, err := NewStore(cfg)
			if err != nil {
				t.Fatal(err)
			}
			const (
				writers   = 4
				readers   = 3
				perWriter = 2000
			)
			var wWg, rWg sync.WaitGroup
			var sum atomic.Uint64 // fixed-point sum of inserted measures
			stop := make(chan struct{})

			for w := 0; w < writers; w++ {
				wWg.Add(1)
				go func(seed int64) {
					defer wWg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < perWriter; i++ {
						it := randItem(rng, cfg.Schema)
						it.Measure = float64(rng.Intn(100)) // integral: exact float sums
						sum.Add(uint64(it.Measure))
						if err := s.Insert(it); err != nil {
							t.Error(err)
							return
						}
					}
				}(int64(100 + w))
			}

			for r := 0; r < readers; r++ {
				rWg.Add(1)
				go func(seed int64) {
					defer rWg.Done()
					rng := rand.New(rand.NewSource(seed))
					var prev uint64
					for {
						select {
						case <-stop:
							return
						default:
						}
						// Full-coverage queries must observe a
						// monotonically non-decreasing count.
						agg := s.Query(keys.AllRect(cfg.Schema))
						if agg.Count < prev {
							t.Errorf("count went backwards: %d < %d", agg.Count, prev)
							return
						}
						prev = agg.Count
						// And random partial queries must not panic or
						// exceed the total.
						pa := s.Query(randRect(rng, cfg.Schema))
						if pa.Count > uint64(writers*perWriter) {
							t.Errorf("partial query count %d exceeds max", pa.Count)
							return
						}
					}
				}(int64(200 + r))
			}

			// Wait for writers, then stop readers.
			wWg.Wait()
			close(stop)
			rWg.Wait()

			total := uint64(writers * perWriter)
			if t.Failed() {
				return
			}
			if got := s.Count(); got != total {
				t.Fatalf("Count = %d, want %d", got, total)
			}
			agg := s.Query(keys.AllRect(cfg.Schema))
			if agg.Count != total {
				t.Fatalf("full query count = %d, want %d", agg.Count, total)
			}
			if agg.Sum != float64(sum.Load()) {
				t.Fatalf("full query sum = %f, want %d (lost or duplicated items)", agg.Sum, sum.Load())
			}
			if err := CheckInvariants(s); err != nil {
				t.Fatalf("invariants after concurrency: %v", err)
			}
		})
	}
}

// TestConcurrentSplitDuringQueries runs Split/Items traversals against a
// tree while writers keep inserting, mimicking the worker's behaviour
// during load balancing (§III-E: queries are never interrupted).
func TestConcurrentSplitDuringQueries(t *testing.T) {
	cfg := allConfigs(t)["hilbert-mds"]
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 3000; i++ {
		if err := s.Insert(randItem(rng, cfg.Schema)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(32))
		for {
			select {
			case <-stop:
				return
			default:
			}
			it := randItem(r, cfg.Schema)
			if err := s.Insert(it); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Run several full Split passes concurrently with the writer; each
	// must produce halves that sum to at least the pre-split count.
	for pass := 0; pass < 3; pass++ {
		before := s.Count()
		h, err := s.SplitQuery()
		if err != nil {
			t.Fatal(err)
		}
		left, right, err := s.Split(h)
		if err != nil {
			t.Fatal(err)
		}
		if got := left.Count() + right.Count(); got < before {
			t.Fatalf("split lost items: halves %d < pre-split %d", got, before)
		}
	}
	close(stop)
	wg.Wait()
	if err := CheckInvariants(s); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentBulkAndPoint interleaves point inserts on top of a
// bulk-loaded tree from several goroutines.
func TestConcurrentBulkAndPoint(t *testing.T) {
	cfg := allConfigs(t)["hilbert-mbr"]
	s, _ := NewStore(cfg)
	rng := rand.New(rand.NewSource(77))
	base := make([]Item, 4000)
	for i := range base {
		base[i] = randItem(rng, cfg.Schema)
		base[i].Measure = 1
	}
	if err := s.BulkLoad(base); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				it := randItem(r, cfg.Schema)
				it.Measure = 1
				if err := s.Insert(it); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	want := uint64(4000 + 4*500)
	agg := s.Query(keys.AllRect(cfg.Schema))
	if agg.Count != want || agg.Sum != float64(want) {
		t.Fatalf("count=%d sum=%f want %d", agg.Count, agg.Sum, want)
	}
	if err := CheckInvariants(s); err != nil {
		t.Fatal(err)
	}
}
