package core

import (
	"sync"

	"repro/internal/keys"
)

// ParallelQuerier is implemented by stores that can answer one query
// with intra-store parallelism. The worker uses it when a request
// touches few shards but spare query parallelism is available, fanning
// the tree's root children across goroutines instead of shards.
type ParallelQuerier interface {
	// QueryParallel aggregates all items inside the rectangle using up
	// to parallelism goroutines. parallelism <= 1 behaves like Query.
	QueryParallel(q keys.Rect, parallelism int) Aggregate
}

var _ ParallelQuerier = (*tree)(nil)

// QueryParallel fans the root's children across up to parallelism
// goroutines. The children are read-locked before the root is released
// — the same lock coupling queryNode relies on — then partitioned into
// contiguous chunks, each traversed sequentially by one goroutine.
// Partials merge in child order, so the float summation order is
// deterministic for a given tree shape and chunk count.
func (t *tree) QueryParallel(q keys.Rect, parallelism int) Aggregate {
	t.anchor.RLock()
	r := t.root
	r.mu.RLock()
	t.anchor.RUnlock()

	// Root-level checks mirror queryNode's, so the sequential and
	// parallel paths answer identically.
	if r.key.Empty() || !r.key.OverlapsRect(q) {
		r.mu.RUnlock()
		return NewAggregate()
	}
	if r.key.CoveredByRect(q) {
		agg := NewAggregate()
		agg.Merge(r.agg)
		r.mu.RUnlock()
		return agg
	}
	if r.leaf || parallelism <= 1 || len(r.children) < 2 {
		agg := NewAggregate()
		var st QueryStats
		t.queryNode(r, q, &agg, &st)
		return agg
	}

	children := make([]*node, len(r.children))
	for i, c := range r.children {
		c.mu.RLock()
		children[i] = c
	}
	r.mu.RUnlock()

	par := parallelism
	if par > len(children) {
		par = len(children)
	}
	parts := make([]Aggregate, par)
	var wg sync.WaitGroup
	for g := 0; g < par; g++ {
		lo := g * len(children) / par
		hi := (g + 1) * len(children) / par
		wg.Add(1)
		go func(g, lo, hi int) {
			defer wg.Done()
			agg := NewAggregate()
			var st QueryStats
			for _, c := range children[lo:hi] {
				t.queryNode(c, q, &agg, &st)
			}
			parts[g] = agg
		}(g, lo, hi)
	}
	wg.Wait()

	agg := NewAggregate()
	for i := range parts {
		agg.Merge(parts[i])
	}
	return agg
}
