package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/hilbert"
	"repro/internal/keys"
)

// node is a tree node. Leaves hold items; directory nodes hold children.
// A node's key always describes (at least) everything below it, and its
// agg is always the exact aggregate of the items below it once the tree is
// quiescent; during an insertion the path from the root to the inserter's
// current position already includes the new item (keys and aggregates are
// updated top-down under the node's write lock).
type node struct {
	mu  sync.RWMutex
	key *keys.Key
	agg Aggregate

	leaf     bool
	children []*node // directory nodes
	items    []Item  // leaves

	// Hilbert mode only: per-item indices (parallel to items, kept in
	// ascending order) and the max index of the subtree.
	hilberts []hilbert.Index
	maxH     hilbert.Index
}

// tree is the shared implementation of the PDC tree and Hilbert PDC tree.
type tree struct {
	cfg   Config
	curve *hilbert.Curve // non-nil in Hilbert mode
	count atomic.Uint64

	// anchor guards the root pointer: ops take anchor (writers: Lock,
	// readers: RLock), lock the root node, then release anchor. The root
	// pointer only changes under anchor.Lock.
	anchor sync.RWMutex
	root   *node
}

var _ Store = (*tree)(nil)

// newTree builds an empty tree store.
func newTree(cfg Config) (*tree, error) {
	t := &tree{cfg: cfg}
	if cfg.Store == StoreHilbertPDC {
		c, err := curveFor(cfg.Schema)
		if err != nil {
			return nil, err
		}
		t.curve = c
	}
	t.root = t.newLeaf()
	return t, nil
}

func (t *tree) hilbertMode() bool { return t.curve != nil }

func (t *tree) newLeaf() *node {
	return &node{
		leaf: true,
		key:  keys.NewEmpty(t.cfg.Keys, t.cfg.Schema.NumDims(), t.cfg.MDSCap),
		agg:  NewAggregate(),
	}
}

func (t *tree) newDir() *node {
	return &node{
		key: keys.NewEmpty(t.cfg.Keys, t.cfg.Schema.NumDims(), t.cfg.MDSCap),
		agg: NewAggregate(),
	}
}

// full reports whether the node is at capacity (must be split before
// accepting more).
func (t *tree) full(n *node) bool {
	if n.leaf {
		return len(n.items) >= t.cfg.LeafCapacity
	}
	return len(n.children) >= t.cfg.DirCapacity
}

// hilbertOf computes the item's compact Hilbert index over ID-expanded
// coordinates.
func (t *tree) hilbertOf(coords []uint64) hilbert.Index {
	exp := make([]uint64, len(coords))
	for d, c := range coords {
		exp[d] = t.cfg.Schema.ExpandOrdinal(d, c)
	}
	idx, err := t.curve.Index(exp)
	if err != nil {
		// Coordinates were validated against the schema; expansion cannot
		// exceed the curve's bit widths.
		panic(fmt.Sprintf("core: hilbert index: %v", err))
	}
	return idx
}

// Config returns the store's configuration.
func (t *tree) Config() Config { return t.cfg }

// Count returns the number of items in the tree.
func (t *tree) Count() uint64 { return t.count.Load() }

// Key returns a snapshot of the root's bounding key.
func (t *tree) Key() *keys.Key {
	t.anchor.RLock()
	r := t.root
	r.mu.RLock()
	t.anchor.RUnlock()
	k := r.key.Clone()
	r.mu.RUnlock()
	return k
}

// Insert adds one item, descending with lock coupling and splitting full
// nodes preemptively so at most two node locks are held at a time.
func (t *tree) Insert(it Item) error {
	if err := t.cfg.Schema.ValidatePoint(it.Coords); err != nil {
		return err
	}
	var h hilbert.Index
	if t.hilbertMode() {
		h = t.hilbertOf(it.Coords)
	}
	t.insert(it, h)
	return nil
}

// insert places one validated item whose Hilbert index (zero outside
// Hilbert mode) the caller already computed — the shared descent behind
// Insert and the sorted batches of bulkInsert.
func (t *tree) insert(it Item, h hilbert.Index) {
	// Admission: lock the root via the anchor, splitting a full root
	// first (the only place the tree grows in height).
	t.anchor.Lock()
	cur := t.root
	cur.mu.Lock()
	if t.full(cur) {
		left := cur
		right := t.splitNode(cur)
		newRoot := t.newDir()
		newRoot.children = []*node{left, right}
		newRoot.key.ExtendKey(left.key)
		newRoot.key.ExtendKey(right.key)
		newRoot.agg = left.agg
		newRoot.agg.Merge(right.agg)
		if t.hilbertMode() {
			newRoot.maxH = right.maxH
		}
		t.root = newRoot
		// cur is the old root, now the left child; swap the lock we hold
		// to the new root. No other goroutine can observe newRoot yet
		// because we still hold the anchor.
		newRoot.mu.Lock()
		cur.mu.Unlock()
		cur = newRoot
	}
	t.anchor.Unlock()

	// Descent: cur is write-locked and not full.
	for {
		cur.key.ExtendPoint(it.Coords)
		cur.agg.AddItem(it.Measure)
		if t.hilbertMode() && (cur.maxH.IsZero() || cur.maxH.Less(h)) {
			cur.maxH = h
		}
		if cur.leaf {
			t.leafInsert(cur, it, h)
			cur.mu.Unlock()
			break
		}
		idx := t.chooseChild(cur, it.Coords, h)
		child := cur.children[idx]
		child.mu.Lock()
		if t.full(child) {
			// splitNode mutates child into the left half and returns a
			// fresh right half; insert the right sibling after it.
			right := t.splitNode(child)
			cur.children = append(cur.children, nil)
			copy(cur.children[idx+2:], cur.children[idx+1:])
			cur.children[idx+1] = right
			// Re-route between the halves.
			target := child
			if t.betterHalf(child, right, it.Coords, h) {
				target = right
				right.mu.Lock()
				child.mu.Unlock()
			}
			cur.mu.Unlock()
			cur = target
			continue
		}
		cur.mu.Unlock()
		cur = child
	}
	t.count.Add(1)
}

// leafInsert places the item inside a non-full, write-locked leaf.
func (t *tree) leafInsert(n *node, it Item, h hilbert.Index) {
	if !t.hilbertMode() {
		n.items = append(n.items, it)
		return
	}
	// Keep leaf items sorted by Hilbert index (B+-tree style).
	pos := sort.Search(len(n.hilberts), func(i int) bool { return h.Less(n.hilberts[i]) })
	n.items = append(n.items, Item{})
	copy(n.items[pos+1:], n.items[pos:])
	n.items[pos] = it
	n.hilberts = append(n.hilberts, hilbert.Index{})
	copy(n.hilberts[pos+1:], n.hilberts[pos:])
	n.hilberts[pos] = h
}

// chooseChild picks the insertion subtree of a write-locked directory
// node. Hilbert mode follows the linear order (first child whose max
// Hilbert index is >= h); geometric mode picks the child whose extension
// by the point adds the least overlap with its siblings (§III-C), with
// enlargement and size as tie-breakers.
func (t *tree) chooseChild(n *node, coords []uint64, h hilbert.Index) int {
	if t.hilbertMode() {
		for i, c := range n.children {
			c.mu.RLock()
			last := !c.maxH.Less(h) // maxH >= h
			c.mu.RUnlock()
			if last {
				return i
			}
		}
		return len(n.children) - 1
	}

	// Geometric: score every child by the total sibling overlap its
	// extension would cause. Child keys are read under their own read
	// locks (a descending inserter may be mutating them).
	snaps := make([]*keys.Key, len(n.children))
	for i, c := range n.children {
		c.mu.RLock()
		snaps[i] = c.key.Clone()
		c.mu.RUnlock()
	}
	best, bestOverlap, bestEnlarge, bestVol := -1, 0.0, 0.0, 0.0
	for i := range n.children {
		ext := snaps[i].Clone()
		ext.ExtendPoint(coords)
		overlap := 0.0
		for j := range n.children {
			if j != i {
				overlap += ext.OverlapVolume(snaps[j])
			}
		}
		enlarge := snaps[i].EnlargementPoint(coords)
		vol := snaps[i].Volume()
		if best == -1 || overlap < bestOverlap ||
			(overlap == bestOverlap && enlarge < bestEnlarge) ||
			(overlap == bestOverlap && enlarge == bestEnlarge && vol < bestVol) {
			best, bestOverlap, bestEnlarge, bestVol = i, overlap, enlarge, vol
		}
	}
	return best
}

// betterHalf reports whether the right half should receive the item after
// a preemptive split of a child.
func (t *tree) betterHalf(left, right *node, coords []uint64, h hilbert.Index) bool {
	if t.hilbertMode() {
		// Follow the linear order: go right iff h > left.maxH.
		return left.maxH.Less(h)
	}
	lo := left.key.EnlargementPoint(coords)
	ro := right.key.EnlargementPoint(coords)
	return ro < lo
}

// Query aggregates every item inside q.
func (t *tree) Query(q keys.Rect) Aggregate {
	agg, _ := t.QueryWithStats(q)
	return agg
}

// QueryWithStats aggregates every item inside q and reports traversal
// statistics.
func (t *tree) QueryWithStats(q keys.Rect) (Aggregate, QueryStats) {
	agg := NewAggregate()
	var st QueryStats
	t.anchor.RLock()
	r := t.root
	r.mu.RLock()
	t.anchor.RUnlock()
	t.queryNode(r, q, &agg, &st)
	return agg, st
}

// queryNode aggregates the read-locked node n into agg and releases it.
// Children are read-locked before n is released (lock coupling), so a
// concurrent split cannot move items out from under the traversal.
func (t *tree) queryNode(n *node, q keys.Rect, agg *Aggregate, st *QueryStats) {
	st.NodesVisited++
	if n.key.Empty() || !n.key.OverlapsRect(q) {
		n.mu.RUnlock()
		return
	}
	if n.key.CoveredByRect(q) {
		st.CoveredNodes++
		agg.Merge(n.agg)
		n.mu.RUnlock()
		return
	}
	if n.leaf {
		st.LeavesScanned++
		st.ItemsScanned += len(n.items)
		for _, it := range n.items {
			if q.ContainsPoint(it.Coords) {
				agg.AddItem(it.Measure)
			}
		}
		n.mu.RUnlock()
		return
	}
	// Lock the relevant children before releasing n.
	rel := make([]*node, 0, len(n.children))
	for _, c := range n.children {
		c.mu.RLock()
		rel = append(rel, c)
	}
	n.mu.RUnlock()
	for _, c := range rel {
		t.queryNode(c, q, agg, st)
	}
}

// Items streams the tree's items using the same read-coupled traversal as
// queries.
func (t *tree) Items(fn func(Item) bool) {
	t.anchor.RLock()
	r := t.root
	r.mu.RLock()
	t.anchor.RUnlock()
	t.itemsNode(r, fn)
}

// itemsNode visits the read-locked node n and releases it. Returns false
// to stop the iteration.
func (t *tree) itemsNode(n *node, fn func(Item) bool) bool {
	if n.leaf {
		// Copy out so the callback runs without the lock held.
		batch := make([]Item, len(n.items))
		copy(batch, n.items)
		n.mu.RUnlock()
		for _, it := range batch {
			if !fn(it) {
				return false
			}
		}
		return true
	}
	children := make([]*node, len(n.children))
	for i, c := range n.children {
		c.mu.RLock()
		children[i] = c
	}
	n.mu.RUnlock()
	stopped := false
	for _, c := range children {
		if stopped {
			// Still must release the locks we acquired.
			c.mu.RUnlock()
			continue
		}
		if !t.itemsNode(c, fn) {
			stopped = true
		}
	}
	return !stopped
}

// MemoryBytes estimates the tree's footprint: items plus directory
// overhead.
func (t *tree) MemoryBytes() uint64 {
	dims := uint64(t.cfg.Schema.NumDims())
	per := dims*8 + 24 + 8 // coords + slice header + measure
	if t.hilbertMode() {
		per += uint64(t.curve.Words())*8 + 24
	}
	n := t.count.Load()
	// Directory overhead: roughly one node per LeafCapacity items, times
	// a small fan-in factor for internal levels.
	nodes := n/uint64(t.cfg.LeafCapacity) + 1
	return n*per + nodes*(uint64(t.cfg.Schema.NumDims())*32+128)*3/2
}
