package core

import (
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/keys"
	"repro/internal/wire"
)

// Fuzz targets for the byte-level decode paths that consume data from the
// network: deserializing shards and keys must never panic or loop,
// whatever bytes arrive.

func FuzzDeserializeStore(f *testing.F) {
	// Seed with a valid small shard and mutations of it.
	cfg := Config{Schema: fuzzSchema(), Store: StoreHilbertPDC, Keys: keys.MDS}
	st, err := NewStore(cfg)
	if err != nil {
		f.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		if err := st.Insert(Item{Coords: []uint64{i % 16, i % 8}, Measure: float64(i)}); err != nil {
			f.Fatal(err)
		}
	}
	blob := st.Serialize()
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte("VOLAPSHARD1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DeserializeStore(data)
		if err != nil {
			return
		}
		// A successfully decoded store must be internally consistent.
		if cerr := CheckInvariants(s); cerr != nil {
			t.Fatalf("decoded store violates invariants: %v", cerr)
		}
		_ = s.Query(keys.AllRect(s.Config().Schema))
	})
}

func FuzzDecodeAggregate(f *testing.F) {
	w := wire.NewWriter(64)
	a := NewAggregate()
	a.AddItem(3.5)
	a.Encode(w)
	f.Add(w.Bytes())
	f.Add([]byte{0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeAggregate(wire.NewReader(data))
	})
}

// testFuzzSchema is built once; fuzzing runs many iterations.
var testFuzzSchema = hierarchy.MustSchema(
	hierarchy.MustDimension("A",
		hierarchy.Level{Name: "L1", Fanout: 4},
		hierarchy.Level{Name: "L2", Fanout: 4}),
	hierarchy.MustDimension("B",
		hierarchy.Level{Name: "L1", Fanout: 8}),
)

func fuzzSchema() *hierarchy.Schema { return testFuzzSchema }
