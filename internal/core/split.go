package core

import (
	"errors"
	"math"
	"sort"

	"repro/internal/hilbert"
	"repro/internal/keys"
)

// splitNode splits the full, write-locked node n in place: n keeps the
// lower part and a fresh right sibling (not yet linked anywhere, and not
// locked) receives the rest. The caller links the sibling into the parent
// while still holding the parent's lock. Keys and aggregates of both
// halves are recomputed exactly.
//
// The split position is chosen by the configured policy; the paper's
// Hilbert PDC tree scans every position and takes the one with the least
// overlap between the two resulting keys (§III-D). In geometric mode the
// elements are first ordered along the dimension with the widest relative
// spread, which generalizes the same position scan to the PDC tree.
func (t *tree) splitNode(n *node) *node {
	if n.leaf {
		return t.splitLeaf(n)
	}
	return t.splitDir(n)
}

func (t *tree) splitLeaf(n *node) *node {
	if !t.hilbertMode() {
		d := t.widestDim(n.key)
		sort.SliceStable(n.items, func(i, j int) bool { return n.items[i].Coords[d] < n.items[j].Coords[d] })
	}
	elem := make([]*keys.Key, len(n.items))
	for i, it := range n.items {
		elem[i] = keys.NewPoint(t.cfg.Keys, t.cfg.MDSCap, it.Coords)
	}
	pos := t.splitPos(elem)

	right := t.newLeaf()
	right.items = append([]Item(nil), n.items[pos:]...)
	n.items = n.items[:pos:pos]
	if t.hilbertMode() {
		right.hilberts = append([]hilbert.Index(nil), n.hilberts[pos:]...)
		n.hilberts = n.hilberts[:pos:pos]
	}
	t.recomputeLeaf(n)
	t.recomputeLeaf(right)
	return right
}

// recomputeLeaf rebuilds a leaf's key, aggregate and max Hilbert index
// from its items.
func (t *tree) recomputeLeaf(n *node) {
	n.key = keys.NewEmpty(t.cfg.Keys, t.cfg.Schema.NumDims(), t.cfg.MDSCap)
	n.agg = NewAggregate()
	for _, it := range n.items {
		n.key.ExtendPoint(it.Coords)
		n.agg.AddItem(it.Measure)
	}
	if t.hilbertMode() && len(n.hilberts) > 0 {
		n.maxH = n.hilberts[len(n.hilberts)-1]
	}
}

// childSnap is a consistent snapshot of a child node's summary, taken
// under the child's read lock.
type childSnap struct {
	c    *node
	key  *keys.Key
	agg  Aggregate
	maxH hilbert.Index
}

func (t *tree) snapshotChildren(n *node) []childSnap {
	snaps := make([]childSnap, len(n.children))
	for i, c := range n.children {
		c.mu.RLock()
		snaps[i] = childSnap{c: c, key: c.key.Clone(), agg: c.agg, maxH: c.maxH}
		c.mu.RUnlock()
	}
	return snaps
}

func (t *tree) splitDir(n *node) *node {
	snaps := t.snapshotChildren(n)
	if !t.hilbertMode() {
		d := t.widestDim(n.key)
		sort.SliceStable(snaps, func(i, j int) bool {
			bi, bj := snaps[i].key.Bounds(d), snaps[j].key.Bounds(d)
			return bi.Lo+bi.Hi < bj.Lo+bj.Hi // order by interval midpoint
		})
	}
	elem := make([]*keys.Key, len(snaps))
	for i, s := range snaps {
		elem[i] = s.key
	}
	pos := t.splitPos(elem)

	right := t.newDir()
	n.children = n.children[:0]
	n.key = keys.NewEmpty(t.cfg.Keys, t.cfg.Schema.NumDims(), t.cfg.MDSCap)
	n.agg = NewAggregate()
	n.maxH = hilbert.Index{}
	for i, s := range snaps {
		dst := n
		if i >= pos {
			dst = right
		}
		dst.children = append(dst.children, s.c)
		dst.key.ExtendKey(s.key)
		dst.agg.Merge(s.agg)
		if t.hilbertMode() && (dst.maxH.IsZero() || dst.maxH.Less(s.maxH)) {
			dst.maxH = s.maxH
		}
	}
	return right
}

// widestDim returns the dimension with the largest relative bound span of
// the key.
func (t *tree) widestDim(k *keys.Key) int {
	best, bestSpan := 0, -1.0
	for d := 0; d < k.Dims(); d++ {
		b := k.Bounds(d)
		span := float64(b.Len()) / float64(t.cfg.Schema.Dim(d).LeafCount())
		if span > bestSpan {
			best, bestSpan = d, span
		}
	}
	return best
}

// splitPos returns the split position in [1, len-1] for elements in their
// final order: SplitLeastOverlap scans every position in linear passes and
// minimizes the overlap volume of the two resulting keys, breaking ties
// toward the most balanced split; SplitMedian returns the middle.
func (t *tree) splitPos(elem []*keys.Key) int {
	n := len(elem)
	if n < 2 {
		return 1
	}
	if t.cfg.SplitPolicy == SplitMedian {
		return n / 2
	}
	suffix := make([]*keys.Key, n+1)
	suffix[n] = keys.NewEmpty(t.cfg.Keys, t.cfg.Schema.NumDims(), t.cfg.MDSCap)
	for i := n - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1].Clone()
		suffix[i].ExtendKey(elem[i])
	}
	prefix := keys.NewEmpty(t.cfg.Keys, t.cfg.Schema.NumDims(), t.cfg.MDSCap)
	best, bestOv, bestBal := 1, math.Inf(1), n
	for i := 1; i < n; i++ {
		prefix.ExtendKey(elem[i-1])
		ov := prefix.OverlapVolume(suffix[i])
		bal := i - n/2
		if bal < 0 {
			bal = -bal
		}
		if ov < bestOv || (ov == bestOv && bal < bestBal) {
			best, bestOv, bestBal = i, ov, bal
		}
	}
	return best
}

// SplitQuery plans a hyperplane that partitions the store into halves of
// approximately equal size (§III-E). It samples the store's items, orders
// candidate dimensions by bound spread, and picks a median coordinate that
// leaves both sides non-empty; if no coordinate separates the data it
// falls back to the alternating hyperplane (Dim == -1).
func (t *tree) SplitQuery() (Hyperplane, error) {
	if t.Count() < 2 {
		return Hyperplane{}, errSplitTooSmall
	}
	const sampleCap = 4096
	stride := int(t.Count()/sampleCap) + 1
	sample := make([][]uint64, 0, sampleCap)
	i := 0
	t.Items(func(it Item) bool {
		if i%stride == 0 {
			sample = append(sample, it.Coords)
		}
		i++
		return len(sample) < sampleCap
	})
	if len(sample) < 2 {
		return Hyperplane{Dim: -1}, nil
	}
	return planHyperplane(t.Key(), sample, t.cfg), nil
}

// planHyperplane chooses a split hyperplane from a coordinate sample.
func planHyperplane(k *keys.Key, sample [][]uint64, cfg Config) Hyperplane {
	dims := cfg.Schema.NumDims()
	type cand struct {
		d    int
		span float64
	}
	cands := make([]cand, 0, dims)
	for d := 0; d < dims; d++ {
		b := k.Bounds(d)
		cands = append(cands, cand{d, float64(b.Len()) / float64(cfg.Schema.Dim(d).LeafCount())})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].span > cands[j].span })

	vals := make([]uint64, len(sample))
	for _, c := range cands {
		for i, s := range sample {
			vals[i] = s[c.d]
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		if vals[0] == vals[len(vals)-1] {
			continue // degenerate in this dimension
		}
		med := vals[(len(vals)-1)/2]
		if med == vals[len(vals)-1] {
			// Everything <= med would swallow the max; step down to the
			// previous distinct value so the right side is non-empty.
			j := sort.Search(len(vals), func(i int) bool { return vals[i] >= med })
			med = vals[j-1]
		}
		return Hyperplane{Dim: c.d, Value: med}
	}
	return Hyperplane{Dim: -1}
}

// Split partitions the store's current contents into two new stores
// separated by the hyperplane (§III-E). The receiver keeps serving reads
// during the pass; items inserted concurrently may be missed, which is why
// the worker diverts inserts to an insertion queue for the duration.
func (t *tree) Split(h Hyperplane) (Store, Store, error) {
	return splitStore(t, h)
}

// splitStore implements Split for any store by streaming its items.
func splitStore(s Store, h Hyperplane) (Store, Store, error) {
	cfg := s.Config()
	if h.Dim >= cfg.Schema.NumDims() {
		return nil, nil, errors.New("core: hyperplane dimension out of range")
	}
	var left, right []Item
	i := 0
	s.Items(func(it Item) bool {
		toLeft := h.Dim >= 0 && it.Coords[h.Dim] <= h.Value
		if h.Dim < 0 {
			toLeft = i%2 == 0
		}
		if toLeft {
			left = append(left, it)
		} else {
			right = append(right, it)
		}
		i++
		return true
	})
	ls, err := NewStore(cfg)
	if err != nil {
		return nil, nil, err
	}
	rs, err := NewStore(cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := ls.BulkLoad(left); err != nil {
		return nil, nil, err
	}
	if err := rs.BulkLoad(right); err != nil {
		return nil, nil, err
	}
	return ls, rs, nil
}
