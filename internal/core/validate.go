package core

import (
	"fmt"
	"math"

	"repro/internal/keys"
)

// TreeStats summarizes a tree store's structure.
type TreeStats struct {
	Items  uint64
	Nodes  int
	Leaves int
	Height int
}

// Stats walks the tree and returns structural statistics. Array stores
// report a single-leaf structure.
func Stats(s Store) TreeStats {
	t, ok := s.(*tree)
	if !ok {
		return TreeStats{Items: s.Count(), Nodes: 1, Leaves: 1, Height: 1}
	}
	t.anchor.RLock()
	r := t.root
	t.anchor.RUnlock()
	st := TreeStats{Items: t.Count()}
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		n.mu.RLock()
		defer n.mu.RUnlock()
		st.Nodes++
		if depth > st.Height {
			st.Height = depth
		}
		if n.leaf {
			st.Leaves++
			return
		}
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(r, 1)
	return st
}

// CheckInvariants exhaustively verifies a quiescent store's structural
// invariants; it is used by tests (including after concurrent workloads)
// and returns a descriptive error on the first violation:
//
//   - leaf and directory occupancy within capacity,
//   - every node's key contains every item below it (the invariant
//     queries rely on); for MBR keys additionally strict child-in-parent
//     key enclosure (capped MDS keys may legitimately coarsen child and
//     parent differently, so only item coverage is guaranteed there),
//   - every node's aggregate equals the recomputed aggregate of its
//     subtree,
//   - Hilbert mode: leaf items sorted by index, children ordered by max
//     index, and node max index correct,
//   - the store's count matches the walked item total.
func CheckInvariants(s Store) error {
	t, ok := s.(*tree)
	if !ok {
		return checkFlatStore(s)
	}
	cfg := t.cfg
	t.anchor.RLock()
	r := t.root
	t.anchor.RUnlock()

	var walk func(n *node, depth int) (Aggregate, [][]uint64, error)
	walk = func(n *node, depth int) (Aggregate, [][]uint64, error) {
		n.mu.RLock()
		defer n.mu.RUnlock()
		sub := NewAggregate()
		var pts [][]uint64
		if n.leaf {
			if len(n.items) > cfg.LeafCapacity {
				return sub, nil, fmt.Errorf("leaf at depth %d has %d items > capacity %d", depth, len(n.items), cfg.LeafCapacity)
			}
			for i, it := range n.items {
				if t.hilbertMode() {
					if len(n.hilberts) != len(n.items) {
						return sub, nil, fmt.Errorf("leaf hilberts length %d != items %d", len(n.hilberts), len(n.items))
					}
					if i > 0 && n.hilberts[i].Less(n.hilberts[i-1]) {
						return sub, nil, fmt.Errorf("leaf items out of hilbert order at %d", i)
					}
					if got := t.hilbertOf(it.Coords); got.Compare(n.hilberts[i]) != 0 {
						return sub, nil, fmt.Errorf("stored hilbert index stale at %d", i)
					}
				}
				sub.AddItem(it.Measure)
				pts = append(pts, it.Coords)
			}
			if t.hilbertMode() && len(n.hilberts) > 0 && n.maxH.Compare(n.hilberts[len(n.hilberts)-1]) != 0 {
				return sub, nil, fmt.Errorf("leaf maxH mismatch")
			}
		} else {
			if len(n.children) == 0 || len(n.children) > cfg.DirCapacity {
				return sub, nil, fmt.Errorf("dir at depth %d has %d children (capacity %d)", depth, len(n.children), cfg.DirCapacity)
			}
			for i, c := range n.children {
				ca, cpts, err := walk(c, depth+1)
				if err != nil {
					return sub, nil, err
				}
				c.mu.RLock()
				if cfg.Keys == keys.MBR && !c.key.CoveredByKey(n.key) {
					c.mu.RUnlock()
					return sub, nil, fmt.Errorf("child key %v not covered by parent key %v", c.key, n.key)
				}
				if t.hilbertMode() {
					if i > 0 {
						prev := n.children[i-1]
						prev.mu.RLock()
						bad := c.maxH.Less(prev.maxH)
						prev.mu.RUnlock()
						if bad {
							c.mu.RUnlock()
							return sub, nil, fmt.Errorf("children maxH out of order at %d", i)
						}
					}
					if n.maxH.Less(c.maxH) {
						c.mu.RUnlock()
						return sub, nil, fmt.Errorf("node maxH below child maxH")
					}
				}
				c.mu.RUnlock()
				sub.Merge(ca)
				pts = append(pts, cpts...)
			}
		}
		// The invariant queries rely on: the node's key contains every
		// item anywhere below it.
		for _, p := range pts {
			if !n.key.ContainsPoint(p) {
				return sub, nil, fmt.Errorf("key %v at depth %d misses item %v", n.key, depth, p)
			}
		}
		if err := aggEqual(n.agg, sub); err != nil {
			return sub, nil, fmt.Errorf("node at depth %d: %w", depth, err)
		}
		return sub, pts, nil
	}
	total, _, err := walk(r, 1)
	if err != nil {
		return err
	}
	if total.Count != t.Count() {
		return fmt.Errorf("walked %d items, Count() = %d", total.Count, t.Count())
	}
	return nil
}

// checkFlatStore verifies the array store's key and aggregate.
func checkFlatStore(s Store) error {
	agg := NewAggregate()
	k := s.Key()
	var n uint64
	var bad error
	s.Items(func(it Item) bool {
		if !k.ContainsPoint(it.Coords) {
			bad = fmt.Errorf("key does not contain item %v", it.Coords)
			return false
		}
		agg.AddItem(it.Measure)
		n++
		return true
	})
	if bad != nil {
		return bad
	}
	if n != s.Count() {
		return fmt.Errorf("walked %d items, Count() = %d", n, s.Count())
	}
	full := s.Query(keys.AllRect(s.Config().Schema))
	return aggEqual(full, agg)
}

// aggEqual compares two aggregates with a relative tolerance on the float
// fields (summation order differs between cached and recomputed values).
func aggEqual(a, b Aggregate) error {
	if a.Count != b.Count {
		return fmt.Errorf("count %d != %d", a.Count, b.Count)
	}
	if a.Count == 0 {
		return nil
	}
	if !floatClose(a.Sum, b.Sum) {
		return fmt.Errorf("sum %g != %g", a.Sum, b.Sum)
	}
	if a.Min != b.Min {
		return fmt.Errorf("min %g != %g", a.Min, b.Min)
	}
	if a.Max != b.Max {
		return fmt.Errorf("max %g != %g", a.Max, b.Max)
	}
	return nil
}

func floatClose(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}
