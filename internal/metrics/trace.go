package metrics

import (
	"sync"
	"time"
)

// TraceEvent is one hop of a traced operation: which component saw which
// op under which trace ID. A single client operation produces one event
// per process it crosses (client's server, every worker contacted, and
// any peer a worker forwarded to), all sharing the trace ID minted at
// the client.
type TraceEvent struct {
	Time      time.Time `json:"time"`
	TraceID   uint64    `json:"trace_id"`
	Component string    `json:"component"` // e.g. "server/s0", "worker/w1"
	Op        string    `json:"op"`        // e.g. "server.query"
	Detail    string    `json:"detail,omitempty"`
}

// TraceLog is a bounded ring of recent trace events, one per process
// component. It is safe for concurrent use; when full, the oldest events
// are overwritten.
type TraceLog struct {
	mu   sync.Mutex
	buf  []TraceEvent
	next int  // write position
	full bool // buf has wrapped
}

// DefaultTraceCap is the default ring capacity.
const DefaultTraceCap = 256

// NewTraceLog returns a ring holding up to capacity events
// (DefaultTraceCap when capacity <= 0).
func NewTraceLog(capacity int) *TraceLog {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &TraceLog{buf: make([]TraceEvent, capacity)}
}

// Add appends one event. A zero trace ID is recorded as-is (untraced
// internal activity).
func (l *TraceLog) Add(traceID uint64, component, op, detail string) {
	ev := TraceEvent{Time: time.Now(), TraceID: traceID, Component: component, Op: op, Detail: detail}
	l.mu.Lock()
	l.buf[l.next] = ev
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
	l.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (l *TraceLog) Events() []TraceEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		return append([]TraceEvent(nil), l.buf[:l.next]...)
	}
	out := make([]TraceEvent, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	return append(out, l.buf[:l.next]...)
}

// For returns the retained events carrying the given trace ID, oldest
// first.
func (l *TraceLog) For(traceID uint64) []TraceEvent {
	var out []TraceEvent
	for _, ev := range l.Events() {
		if ev.TraceID == traceID {
			out = append(out, ev)
		}
	}
	return out
}

// Has reports whether any retained event carries the trace ID.
func (l *TraceLog) Has(traceID uint64) bool {
	for _, ev := range l.Events() {
		if ev.TraceID == traceID {
			return true
		}
	}
	return false
}
