package metrics

import (
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func testCounter() *Counter {
	return NewRegistry().Counter("test_total").With()
}

func testHistogram() *Histogram {
	return NewRegistry().Histogram("test_seconds").With()
}

func TestCounter(t *testing.T) {
	c := testCounter()
	c.Add(5)
	c.Add(3)
	if c.Count() != 8 {
		t.Fatalf("Count = %d", c.Count())
	}
	if c.Rate() <= 0 {
		t.Error("Rate should be positive")
	}
	c.Reset()
	if c.Count() != 0 {
		t.Error("Reset failed")
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := testCounter()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Count() != 8000 {
		t.Fatalf("Count = %d", c.Count())
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2}, // upper-bound semantics: 3µs <= 4µs
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},
		{time.Second, 20},
		{time.Hour, 30}, // clamped
	}
	for _, tc := range cases {
		if got := bucketOf(tc.d); got != tc.want {
			t.Errorf("bucketOf(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := testHistogram()
	if h.Mean() != 0 || h.Percentile(0.5) != 0 || h.Min() != 0 {
		t.Error("empty histogram should be zero-valued")
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	mean := h.Mean()
	if mean < 40*time.Millisecond || mean > 60*time.Millisecond {
		t.Errorf("mean = %v", mean)
	}
	p50 := h.Percentile(0.5)
	// Bucket resolution is a factor of two: p50 of 1..100ms is ~50ms, so
	// the bucket upper bound is 64ms.
	if p50 < 32*time.Millisecond || p50 > 128*time.Millisecond {
		t.Errorf("p50 = %v", p50)
	}
	if h.Percentile(1) < h.Percentile(0) {
		t.Error("percentiles not monotone")
	}
	if h.Percentile(-1) != h.Percentile(0) || h.Percentile(2) != h.Percentile(1) {
		t.Error("percentile clamping wrong")
	}
	if h.Summary() == "" {
		t.Error("Summary empty")
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("Reset failed")
	}
}

// TestHistogramEmptyPercentile pins the empty-histogram contract: every
// percentile of zero observations is zero, not a bucket bound.
func TestHistogramEmptyPercentile(t *testing.T) {
	h := testHistogram()
	for _, p := range []float64{-1, 0, 0.5, 0.999, 1, 2} {
		if got := h.Percentile(p); got != 0 {
			t.Errorf("empty Percentile(%v) = %v, want 0", p, got)
		}
	}
	var d HistData
	if d.Percentile(0.5) != 0 || d.Mean() != 0 {
		t.Error("empty HistData should be zero-valued")
	}
}

// TestHistogramClamp pins the overflow bucket: observations beyond 2^30µs
// (~17.9 min) land in the last bucket, percentiles report at most that
// bucket's bound, and Min/Max keep the true extremes.
func TestHistogramClamp(t *testing.T) {
	h := testHistogram()
	h.Record(2 * time.Hour)
	h.Record(3 * time.Hour)
	if h.Max() != 3*time.Hour {
		t.Errorf("Max = %v, want 3h", h.Max())
	}
	bound := BucketUpperBound(histBuckets - 1)
	if p := h.Percentile(0.5); p != bound {
		t.Errorf("Percentile(0.5) = %v, want clamp bound %v", p, bound)
	}
	d := h.Data()
	if d.Buckets[histBuckets-1] != 2 {
		t.Errorf("clamp bucket holds %d, want 2", d.Buckets[histBuckets-1])
	}
	if d.Min != 2*time.Hour {
		t.Errorf("Min = %v, want 2h", d.Min)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := testHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Record(time.Duration(j+1) * time.Microsecond)
				_ = h.Percentile(0.5) // concurrent reads race-check the lock
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestTimer(t *testing.T) {
	h := testHistogram()
	done := h.Time()
	time.Sleep(2 * time.Millisecond)
	done()
	if h.Count() != 1 || h.Max() < 2*time.Millisecond {
		t.Errorf("timer recorded %v", h.Max())
	}
}

func TestHistDataMerge(t *testing.T) {
	r := NewRegistry()
	v := r.Histogram("op_seconds", "shard")
	v.Observe(time.Millisecond, "1")
	v.Observe(4*time.Millisecond, "2")
	v.Observe(16*time.Millisecond, "2")
	m := v.Merged()
	if m.Count != 3 {
		t.Fatalf("merged count = %d", m.Count)
	}
	if m.Min != time.Millisecond || m.Max != 16*time.Millisecond {
		t.Errorf("merged min/max = %v/%v", m.Min, m.Max)
	}
	if m.Sum != 21*time.Millisecond {
		t.Errorf("merged sum = %v", m.Sum)
	}
}

func TestRegistryVectors(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "op")
	c.Inc("insert")
	c.Add(2, "query")
	c.Inc("query")
	if got := c.With("query").Count(); got != 3 {
		t.Errorf("query counter = %d", got)
	}
	if r.Counter("requests_total", "op") != c {
		t.Error("re-registration should return the same vector")
	}
	g := r.Gauge("depth")
	g.Set(5)
	g.Add(-2)
	if got := g.With().Value(); got != 3 {
		t.Errorf("gauge = %v", got)
	}
	r.CounterFunc("derived_total", func() uint64 { return 42 })
	r.GaugeFunc("derived_gauge", func() float64 { return 1.5 })

	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot families = %d", len(snap))
	}
	if snap[0].Name != "requests_total" || snap[0].Type != TypeCounter || len(snap[0].Series) != 2 {
		t.Errorf("family 0: %+v", snap[0])
	}
	if snap[2].Series[0].Value != 42 {
		t.Errorf("CounterFunc exported %v", snap[2].Series[0].Value)
	}
}

func TestRegistryMisuse(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	expectPanic(t, "type mismatch", func() { r.Gauge("x_total") })
	expectPanic(t, "label mismatch", func() { r.Counter("x_total", "op") })
	expectPanic(t, "value arity", func() { r.Counter("y_total", "op").Inc() })
}

func expectPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? ([-+0-9.eE]+|\+Inf|NaN)$`)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total", "op").Add(7, "insert")
	r.Gauge("shard_items", "shard").Set(123, "4")
	r.Histogram("op_seconds", "op").Observe(3*time.Millisecond, "query")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE ops_total counter",
		`ops_total{op="insert"} 7`,
		`shard_items{shard="4"} 123`,
		"# TYPE op_seconds histogram",
		`op_seconds_bucket{op="query",le="+Inf"} 1`,
		`op_seconds_count{op="query"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// Every non-comment line must be a well-formed sample.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestTraceLog(t *testing.T) {
	l := NewTraceLog(4)
	if l.Has(1) {
		t.Error("empty log Has(1)")
	}
	for i := uint64(1); i <= 6; i++ {
		l.Add(i, "server/s0", "op", "")
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	if evs[0].TraceID != 3 || evs[3].TraceID != 6 {
		t.Errorf("ring order wrong: %v..%v", evs[0].TraceID, evs[3].TraceID)
	}
	if l.Has(1) || !l.Has(5) {
		t.Error("Has after wrap wrong")
	}
	if got := l.For(5); len(got) != 1 || got[0].Component != "server/s0" {
		t.Errorf("For(5) = %v", got)
	}
}
