package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add(5)
	c.Add(3)
	if c.Count() != 8 {
		t.Fatalf("Count = %d", c.Count())
	}
	if c.Rate() <= 0 {
		t.Error("Rate should be positive")
	}
	c.Reset()
	if c.Count() != 0 {
		t.Error("Reset failed")
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Count() != 8000 {
		t.Fatalf("Count = %d", c.Count())
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2}, // upper-bound semantics: 3µs <= 4µs
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},
		{time.Second, 20},
		{time.Hour, 30}, // clamped
	}
	for _, tc := range cases {
		if got := bucketOf(tc.d); got != tc.want {
			t.Errorf("bucketOf(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Percentile(0.5) != 0 || h.Min() != 0 {
		t.Error("empty histogram should be zero-valued")
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	mean := h.Mean()
	if mean < 40*time.Millisecond || mean > 60*time.Millisecond {
		t.Errorf("mean = %v", mean)
	}
	p50 := h.Percentile(0.5)
	// Bucket resolution is a factor of two: p50 of 1..100ms is ~50ms, so
	// the bucket upper bound is 64ms.
	if p50 < 32*time.Millisecond || p50 > 128*time.Millisecond {
		t.Errorf("p50 = %v", p50)
	}
	if h.Percentile(1) < h.Percentile(0) {
		t.Error("percentiles not monotone")
	}
	if h.Percentile(-1) != h.Percentile(0) || h.Percentile(2) != h.Percentile(1) {
		t.Error("percentile clamping wrong")
	}
	if h.Snapshot() == "" {
		t.Error("Snapshot empty")
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("Reset failed")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Record(time.Duration(j+1) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 2000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestTimer(t *testing.T) {
	h := NewHistogram()
	done := h.Time()
	time.Sleep(2 * time.Millisecond)
	done()
	if h.Count() != 1 || h.Max() < 2*time.Millisecond {
		t.Errorf("timer recorded %v", h.Max())
	}
}
