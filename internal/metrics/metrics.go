// Package metrics is VOLAP's instrumentation layer: a process-local
// Registry of named, label-supporting counters, gauges and latency
// histograms, a structured Snapshot export consumed by both the
// Prometheus text encoder and the bench harness, and a bounded trace
// event log used to correlate one client operation across processes.
//
// Metrics are created through a Registry (see registry.go):
//
//	reg := metrics.NewRegistry()
//	retries := reg.Counter("server_retries_total", "op")
//	retries.Inc("insert")
//	lat := reg.Histogram("server_op_seconds", "op")
//	lat.Observe(time.Since(start), "query")
//
// The underlying Counter/Gauge/Histogram series types in this file are
// lock-free (counters/gauges) or mutex-guarded (histograms) and safe for
// concurrent use.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter with rate
// computation. Counters are obtained from a Registry via
// Registry.Counter(name, labels...).With(values...).
type Counter struct {
	n     atomic.Uint64
	start atomic.Int64 // unix nanos of first Reset/creation
}

// newCounter returns a running counter.
func newCounter() *Counter {
	c := &Counter{}
	c.start.Store(time.Now().UnixNano())
	return c
}

// Add increments by n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Inc increments by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Count returns the total.
func (c *Counter) Count() uint64 { return c.n.Load() }

// Rate returns events per second since the last Reset.
func (c *Counter) Rate() float64 {
	elapsed := time.Since(time.Unix(0, c.start.Load())).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(c.n.Load()) / elapsed
}

// Reset zeroes the counter and restarts the clock.
func (c *Counter) Reset() {
	c.n.Store(0)
	c.start.Store(time.Now().UnixNano())
}

// Gauge is an instantaneous float value (queue depth, item count).
// Gauges are obtained from a Registry via Registry.Gauge.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the gauge value.
func (g *Gauge) Set(x float64) { g.bits.Store(math.Float64bits(x)) }

// Add adjusts the gauge by delta (positive or negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the bucket count: logarithmic buckets from 1µs to
// 2^30µs (~17.9 min), everything larger clamped into the last bucket.
const histBuckets = 31

// Histogram records durations in logarithmic buckets from 1µs to ~17min
// (2^30 µs), supporting concurrent recording and percentile queries.
// Histograms are obtained from a Registry via Registry.Histogram.
type Histogram struct {
	mu      sync.Mutex
	buckets [histBuckets]uint64
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// newHistogram returns an empty histogram.
func newHistogram() *Histogram {
	return &Histogram{min: time.Duration(math.MaxInt64)}
}

// bucketOf maps a duration to its bucket index: the smallest b with
// duration <= 2^b microseconds (so 2^b is the bucket's upper bound).
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us <= 1 {
		return 0
	}
	b := bits.Len64(uint64(us - 1)) // ceil(log2(us))
	if b > histBuckets-1 {
		return histBuckets - 1
	}
	return b
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average duration.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min and Max return the extreme observations (0 when empty).
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile returns an upper bound on the p-th percentile (p in [0,1]),
// at bucket resolution (a factor of 2).
func (h *Histogram) Percentile(p float64) time.Duration {
	return h.Data().Percentile(p)
}

// Data snapshots the histogram's raw state for export and merging.
func (h *Histogram) Data() HistData {
	h.mu.Lock()
	defer h.mu.Unlock()
	d := HistData{Count: h.count, Sum: h.sum, Max: h.max, Buckets: h.buckets}
	if h.count > 0 {
		d.Min = h.min
	}
	return d
}

// Summary renders a one-line text digest.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(0.5), h.Percentile(0.99), h.Max())
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets = [histBuckets]uint64{}
	h.count = 0
	h.sum = 0
	h.min = time.Duration(math.MaxInt64)
	h.max = 0
}

// Timer measures one operation: defer h.Time()().
func (h *Histogram) Time() func() {
	start := time.Now()
	return func() { h.Record(time.Since(start)) }
}

// HistData is an immutable histogram snapshot: the exchange format
// between histograms, the Prometheus encoder, and cross-process latency
// summaries.
type HistData struct {
	Count   uint64
	Sum     time.Duration
	Min     time.Duration
	Max     time.Duration
	Buckets [histBuckets]uint64
}

// Merge folds another snapshot into this one.
func (d *HistData) Merge(o HistData) {
	if o.Count == 0 {
		return
	}
	if d.Count == 0 || o.Min < d.Min {
		d.Min = o.Min
	}
	if o.Max > d.Max {
		d.Max = o.Max
	}
	d.Count += o.Count
	d.Sum += o.Sum
	for i := range d.Buckets {
		d.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the average duration of the snapshot.
func (d HistData) Mean() time.Duration {
	if d.Count == 0 {
		return 0
	}
	return d.Sum / time.Duration(d.Count)
}

// Percentile returns an upper bound on the p-th percentile (p in [0,1])
// at bucket resolution.
func (d HistData) Percentile(p float64) time.Duration {
	if d.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := uint64(math.Ceil(p * float64(d.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b, n := range d.Buckets {
		cum += n
		if cum >= target {
			return time.Duration(1<<uint(b)) * time.Microsecond
		}
	}
	return d.Max
}
