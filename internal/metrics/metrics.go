// Package metrics provides the lightweight instrumentation used by
// VOLAP's benchmark harness and examples: lock-free throughput counters
// and logarithmic latency histograms with percentile extraction.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter with rate
// computation.
type Counter struct {
	n     atomic.Uint64
	start atomic.Int64 // unix nanos of first Reset/creation
}

// NewCounter returns a running counter.
func NewCounter() *Counter {
	c := &Counter{}
	c.start.Store(time.Now().UnixNano())
	return c
}

// Add increments by n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Count returns the total.
func (c *Counter) Count() uint64 { return c.n.Load() }

// Rate returns events per second since the last Reset.
func (c *Counter) Rate() float64 {
	elapsed := time.Since(time.Unix(0, c.start.Load())).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(c.n.Load()) / elapsed
}

// Reset zeroes the counter and restarts the clock.
func (c *Counter) Reset() {
	c.n.Store(0)
	c.start.Store(time.Now().UnixNano())
}

// Histogram records durations in logarithmic buckets from 1µs to ~17min
// (2^30 µs), supporting concurrent recording and percentile queries.
type Histogram struct {
	mu      sync.Mutex
	buckets [31]uint64
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: time.Duration(math.MaxInt64)}
}

// bucketOf maps a duration to its bucket index: the smallest b with
// duration <= 2^b microseconds (so 2^b is the bucket's upper bound).
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us <= 1 {
		return 0
	}
	b := bits.Len64(uint64(us - 1)) // ceil(log2(us))
	if b > 30 {
		return 30
	}
	return b
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average duration.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min and Max return the extreme observations (0 when empty).
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile returns an upper bound on the p-th percentile (p in [0,1]),
// at bucket resolution (a factor of 2).
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := uint64(math.Ceil(p * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b, n := range h.buckets {
		cum += n
		if cum >= target {
			return time.Duration(1<<uint(b)) * time.Microsecond
		}
	}
	return h.max
}

// Snapshot renders a one-line summary.
func (h *Histogram) Snapshot() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(0.5), h.Percentile(0.99), h.Max())
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets = [31]uint64{}
	h.count = 0
	h.sum = 0
	h.min = time.Duration(math.MaxInt64)
	h.max = 0
}

// Timer measures one operation: defer NewHistogram-style usage via
// h.Time()().
func (h *Histogram) Time() func() {
	start := time.Now()
	return func() { h.Record(time.Since(start)) }
}
