package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Histograms are exported with cumulative
// le-buckets in seconds plus _sum and _count, so any Prometheus scraper
// or promtool can consume a VOLAP /metrics endpoint directly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		for _, s := range f.Series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f Family, s Series) error {
	if f.Type != TypeHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n",
			f.Name, labelString(f.Labels, s.LabelValues, "", ""), formatFloat(s.Value))
		return err
	}
	d := s.Hist
	var cum uint64
	for b, n := range d.Buckets {
		cum += n
		if n == 0 && b != len(d.Buckets)-1 {
			continue // sparse export: skip interior empty buckets
		}
		le := formatFloat(float64(uint64(1)<<uint(b)) * 1e-6)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.Name, labelString(f.Labels, s.LabelValues, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		f.Name, labelString(f.Labels, s.LabelValues, "le", "+Inf"), d.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		f.Name, labelString(f.Labels, s.LabelValues, "", ""), formatFloat(d.Sum.Seconds())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n",
		f.Name, labelString(f.Labels, s.LabelValues, "", ""), d.Count)
	return err
}

// labelString renders {k="v",...}, optionally appending one extra pair
// (the histogram le label). Empty label sets render as "".
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}

// BucketUpperBound returns the duration upper bound of histogram bucket
// b, mirroring the le values of the Prometheus export.
func BucketUpperBound(b int) time.Duration {
	if b < 0 {
		b = 0
	}
	if b > histBuckets-1 {
		b = histBuckets - 1
	}
	return time.Duration(uint64(1)<<uint(b)) * time.Microsecond
}
