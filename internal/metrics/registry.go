package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// MetricType classifies a metric family for export.
type MetricType uint8

// Metric family types.
const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

// String names the type in Prometheus vocabulary.
func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Registry is a process-local metric namespace. Constructors are
// get-or-create: calling Counter("x", "op") twice returns the same
// vector, so independent components can share one registry without
// coordinating. All methods are safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	order []string
	colls map[string]collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{colls: make(map[string]collector)}
}

// collector is one named metric family that can snapshot itself.
type collector interface {
	snapshot() Family
}

// Family is one named metric family in a Snapshot.
type Family struct {
	Name   string
	Type   MetricType
	Labels []string // label names, in declaration order
	Series []Series
}

// Series is one labeled time series of a family.
type Series struct {
	LabelValues []string
	Value       float64   // counters and gauges
	Hist        *HistData // histograms only
}

// register installs a family under name, or returns the existing one.
func (r *Registry) register(name string, labels []string, mk func() collector) collector {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.colls[name]; ok {
		return c
	}
	c := mk()
	r.colls[name] = c
	r.order = append(r.order, name)
	return c
}

// Counter returns the counter vector registered under name, creating it
// with the given label names if absent.
func (r *Registry) Counter(name string, labels ...string) *CounterVec {
	c := r.register(name, labels, func() collector {
		return &CounterVec{vec: newVec(name, TypeCounter, labels)}
	})
	v, ok := c.(*CounterVec)
	if !ok {
		panic(fmt.Sprintf("metrics: %q already registered as %s", name, c.snapshot().Type))
	}
	v.vec.checkLabels(labels)
	return v
}

// Gauge returns the gauge vector registered under name, creating it with
// the given label names if absent.
func (r *Registry) Gauge(name string, labels ...string) *GaugeVec {
	c := r.register(name, labels, func() collector {
		return &GaugeVec{vec: newVec(name, TypeGauge, labels)}
	})
	v, ok := c.(*GaugeVec)
	if !ok {
		panic(fmt.Sprintf("metrics: %q already registered as %s", name, c.snapshot().Type))
	}
	v.vec.checkLabels(labels)
	return v
}

// Histogram returns the histogram vector registered under name, creating
// it with the given label names if absent.
func (r *Registry) Histogram(name string, labels ...string) *HistogramVec {
	c := r.register(name, labels, func() collector {
		return &HistogramVec{vec: newVec(name, TypeHistogram, labels)}
	})
	v, ok := c.(*HistogramVec)
	if !ok {
		panic(fmt.Sprintf("metrics: %q already registered as %s", name, c.snapshot().Type))
	}
	v.vec.checkLabels(labels)
	return v
}

// CounterFunc registers a counter whose value is read from fn at
// snapshot time — for exporting counters a component already maintains.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	r.register(name, nil, func() collector {
		return funcFamily{name: name, typ: TypeCounter, fn: func() float64 { return float64(fn()) }}
	})
}

// GaugeFunc registers a gauge whose value is read from fn at snapshot
// time.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.register(name, nil, func() collector {
		return funcFamily{name: name, typ: TypeGauge, fn: fn}
	})
}

// Snapshot exports every family in registration order. It is the single
// source for the Prometheus encoder, the JSON debug endpoint, and the
// bench harness.
func (r *Registry) Snapshot() []Family {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	colls := make([]collector, len(names))
	for i, n := range names {
		colls[i] = r.colls[n]
	}
	r.mu.Unlock()
	out := make([]Family, 0, len(colls))
	for _, c := range colls {
		out = append(out, c.snapshot())
	}
	return out
}

// funcFamily exports one unlabeled callback-backed series.
type funcFamily struct {
	name string
	typ  MetricType
	fn   func() float64
}

func (f funcFamily) snapshot() Family {
	return Family{Name: f.name, Type: f.typ, Series: []Series{{Value: f.fn()}}}
}

// vec is the shared series table behind every vector type.
type vec struct {
	name   string
	typ    MetricType
	labels []string

	mu     sync.Mutex
	series map[string]any
	keys   []string   // series keys in creation order
	vals   [][]string // label values per key, same order
}

func newVec(name string, typ MetricType, labels []string) *vec {
	return &vec{name: name, typ: typ, labels: labels, series: make(map[string]any)}
}

// checkLabels guards against re-registering a family with different
// label names — a programming error that would corrupt the export.
func (v *vec) checkLabels(labels []string) {
	if len(labels) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %q re-registered with %d labels, had %d", v.name, len(labels), len(v.labels)))
	}
	for i := range labels {
		if labels[i] != v.labels[i] {
			panic(fmt.Sprintf("metrics: %q re-registered with label %q, had %q", v.name, labels[i], v.labels[i]))
		}
	}
}

// with returns the series for the label values, creating via mk.
func (v *vec) with(values []string, mk func() any) any {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %q takes %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	if s, ok := v.series[key]; ok {
		return s
	}
	s := mk()
	v.series[key] = s
	v.keys = append(v.keys, key)
	v.vals = append(v.vals, append([]string(nil), values...))
	return s
}

// each visits every series in a stable (sorted-by-label) order.
func (v *vec) each(fn func(values []string, s any)) {
	v.mu.Lock()
	keys := append([]string(nil), v.keys...)
	vals := append([][]string(nil), v.vals...)
	series := make([]any, len(keys))
	for i, k := range keys {
		series[i] = v.series[k]
	}
	v.mu.Unlock()
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	for _, i := range idx {
		fn(vals[i], series[i])
	}
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ vec *vec }

// With returns the counter for the given label values, creating it on
// first use.
func (c *CounterVec) With(values ...string) *Counter {
	return c.vec.with(values, func() any { return newCounter() }).(*Counter)
}

// Add increments the labeled counter by n.
func (c *CounterVec) Add(n uint64, values ...string) { c.With(values...).Add(n) }

// Inc increments the labeled counter by one.
func (c *CounterVec) Inc(values ...string) { c.With(values...).Inc() }

func (c *CounterVec) snapshot() Family {
	f := Family{Name: c.vec.name, Type: TypeCounter, Labels: c.vec.labels}
	c.vec.each(func(values []string, s any) {
		f.Series = append(f.Series, Series{LabelValues: values, Value: float64(s.(*Counter).Count())})
	})
	return f
}

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct{ vec *vec }

// With returns the gauge for the given label values, creating it on
// first use.
func (g *GaugeVec) With(values ...string) *Gauge {
	return g.vec.with(values, func() any { return &Gauge{} }).(*Gauge)
}

// Set sets the labeled gauge.
func (g *GaugeVec) Set(x float64, values ...string) { g.With(values...).Set(x) }

// Add adjusts the labeled gauge by delta.
func (g *GaugeVec) Add(delta float64, values ...string) { g.With(values...).Add(delta) }

func (g *GaugeVec) snapshot() Family {
	f := Family{Name: g.vec.name, Type: TypeGauge, Labels: g.vec.labels}
	g.vec.each(func(values []string, s any) {
		f.Series = append(f.Series, Series{LabelValues: values, Value: s.(*Gauge).Value()})
	})
	return f
}

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct{ vec *vec }

// With returns the histogram for the given label values, creating it on
// first use.
func (h *HistogramVec) With(values ...string) *Histogram {
	return h.vec.with(values, func() any { return newHistogram() }).(*Histogram)
}

// Observe records one duration in the labeled histogram.
func (h *HistogramVec) Observe(d time.Duration, values ...string) { h.With(values...).Record(d) }

// Merged folds every series of the family into one snapshot — the
// cross-label latency summary (e.g. all shards of a worker).
func (h *HistogramVec) Merged() HistData {
	var out HistData
	h.vec.each(func(_ []string, s any) {
		out.Merge(s.(*Histogram).Data())
	})
	return out
}

func (h *HistogramVec) snapshot() Family {
	f := Family{Name: h.vec.name, Type: TypeHistogram, Labels: h.vec.labels}
	h.vec.each(func(values []string, s any) {
		d := s.(*Histogram).Data()
		f.Series = append(f.Series, Series{LabelValues: values, Hist: &d})
	})
	return f
}
