package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/keys"
	"repro/internal/manager"
	"repro/internal/netmsg"
	"repro/internal/worker"
)

// fakeWorkerAt registers a bare netmsg server in the coordination store
// as worker id, with the given op handlers — a stand-in worker whose
// behavior the test controls completely.
func (h *harness) fakeWorkerAt(id string, handlers map[string]netmsg.Handler) string {
	h.t.Helper()
	srv := netmsg.NewServer()
	for op, fn := range handlers {
		srv.Handle(op, fn)
	}
	seq++
	addr, err := srv.Listen(fmt.Sprintf("inproc://srvtest%d-%s", seq, id))
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(srv.Close)
	meta := &image.WorkerMeta{ID: id, Addr: addr, UpdatedMs: time.Now().UnixMilli()}
	if _, err := h.store.CreateOrSet(image.WorkerPath(id), meta.EncodeBytes()); err != nil {
		h.t.Fatal(err)
	}
	return addr
}

// setOwner force-points a shard at a worker in the server's local image
// only — simulating a stale image whose global record has moved on.
func setOwner(s *Server, id image.ShardID, workerID string) {
	s.mu.Lock()
	s.owners[id] = workerID
	s.mu.Unlock()
}

// waitOwner polls until the server's local image maps shard id to want
// (the watcher applies coordination events asynchronously).
func waitOwner(t *testing.T, s *Server, id image.ShardID, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.RLock()
		got := s.owners[id]
		s.mu.RUnlock()
		if got == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("shard %d never owned by %s in local image", id, want)
}

// TestQueryWedgedWorkerTimeout: acceptance (a) — a query against a
// worker that accepts the request but never replies returns ErrTimeout
// within the configured deadline instead of hanging.
func TestQueryWedgedWorkerTimeout(t *testing.T) {
	h := newHarness(t, 1, 1)
	block := make(chan struct{})
	h.fakeWorkerAt("wedged", map[string]netmsg.Handler{
		"worker.query": func(_ context.Context, p []byte) ([]byte, error) { <-block; return nil, nil },
	})
	// Registered after fakeWorkerAt so it runs before the netmsg server's
	// Close, which waits for in-flight handlers.
	t.Cleanup(func() { close(block) })

	s, err := New(Options{ID: "s0", Coord: h.store, SyncInterval: time.Hour,
		RequestTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	// Give shard 0 a box so AllRect routes to it, then wedge its route.
	if err := s.Insert(context.Background(), core.Item{Coords: []uint64{5, 5}, Measure: 1}); err != nil {
		t.Fatal(err)
	}
	setOwner(s, 0, "wedged")

	start := time.Now()
	_, _, err = s.Query(context.Background(), keys.AllRect(h.cfg.Schema))
	elapsed := time.Since(start)
	if !errors.Is(err, netmsg.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed > time.Second {
		t.Fatalf("query took %v, deadline was 150ms", elapsed)
	}
}

// TestStaleImageInsertAfterMigration: acceptance (b) — after shards
// migrate away from a worker that then dies, inserts and queries routed
// through a stale image succeed transparently: the server refreshes its
// image from the coordinator and retries, and the caller never sees
// "worker: shard moved" or a transport error.
func TestStaleImageInsertAfterMigration(t *testing.T) {
	h := newHarness(t, 2, 2) // w0: shards 0,1 — w1: shards 2,3
	s := h.server("s0", time.Hour)
	rng := rand.New(rand.NewSource(7))
	const n = 200
	for i := 0; i < n; i++ {
		if err := s.Insert(context.Background(), randItem(rng)); err != nil {
			t.Fatal(err)
		}
	}
	s.SyncNow() // publish grown boxes so the migrated records keep them

	mgr, err := manager.New(manager.Options{Coord: h.store, Interval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	if _, err := mgr.DrainWorker("w0"); err != nil {
		t.Fatal(err)
	}
	for _, id := range []image.ShardID{0, 1} {
		waitOwner(t, s, id, "w1")
	}
	// The donor dies: stale routes can no longer be saved by the worker-
	// side forwarding tombstones — only the server-side refresh can.
	h.workers[0].Close()
	for id := image.ShardID(0); id < 4; id++ {
		setOwner(s, id, "w0")
	}

	if err := s.Insert(context.Background(), randItem(rng)); err != nil {
		t.Fatalf("insert through stale image: %v", err)
	}
	if got := s.RetryStats(); got == 0 {
		t.Fatal("insert succeeded without any forced image refresh")
	}

	// Re-stale every shard and check the query path heals the same way.
	for id := image.ShardID(0); id < 4; id++ {
		setOwner(s, id, "w0")
	}
	agg, _, err := s.Query(context.Background(), keys.AllRect(h.cfg.Schema))
	if err != nil {
		t.Fatalf("query through stale image: %v", err)
	}
	if agg.Count != n+1 {
		t.Fatalf("count = %d, want %d", agg.Count, n+1)
	}
}

// TestStaleRouteRefreshOnMovedReply exercises the classStale path: a
// worker replying "shard moved" triggers an image refresh and a retry
// against the owner the coordinator knows, invisibly to the caller.
func TestStaleRouteRefreshOnMovedReply(t *testing.T) {
	h := newHarness(t, 1, 1)
	moved := func(_ context.Context, p []byte) ([]byte, error) {
		return nil, errors.New(worker.MovedPrefix + "elsewhere")
	}
	h.fakeWorkerAt("ghost", map[string]netmsg.Handler{
		"worker.insert": moved, "worker.query": moved,
	})

	s := h.server("s0", time.Hour)
	if err := s.Insert(context.Background(), core.Item{Coords: []uint64{3, 3}, Measure: 2}); err != nil {
		t.Fatal(err)
	}
	setOwner(s, 0, "ghost")
	if err := s.Insert(context.Background(), core.Item{Coords: []uint64{4, 4}, Measure: 3}); err != nil {
		t.Fatalf("insert via moved reply: %v", err)
	}
	if got := s.RetryStats(); got == 0 {
		t.Fatal("no image refresh recorded")
	}
	setOwner(s, 0, "ghost")
	agg, _, err := s.Query(context.Background(), keys.AllRect(h.cfg.Schema))
	if err != nil {
		t.Fatalf("query via moved reply: %v", err)
	}
	if agg.Count != 2 {
		t.Fatalf("count = %d, want 2", agg.Count)
	}
}

// TestRetryExhaustionUnavailable checks the bounded end of the pipeline:
// when every retry round keeps failing, the caller gets a typed
// ErrUnavailable rather than an internal routing error.
func TestRetryExhaustionUnavailable(t *testing.T) {
	h := newHarness(t, 1, 1)
	s, err := New(Options{ID: "s0", Coord: h.store, SyncInterval: time.Hour, MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if err := s.Insert(context.Background(), core.Item{Coords: []uint64{1, 1}, Measure: 1}); err != nil {
		t.Fatal(err)
	}
	// Kill the only worker: refreshes keep resolving to the same dead
	// owner, so the budget runs out.
	h.workers[0].Close()
	err = s.Insert(context.Background(), core.Item{Coords: []uint64{2, 2}, Measure: 1})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if strings.Contains(fmt.Sprint(err), worker.MovedPrefix) {
		t.Fatalf("internal moved error leaked to caller: %v", err)
	}
	_, _, err = s.Query(context.Background(), keys.AllRect(h.cfg.Schema))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("query err = %v, want ErrUnavailable", err)
	}
}

// TestInsertBatchParallelFanOut: acceptance — a batch spanning N workers
// issues its worker RPCs concurrently, like the Query scatter path. Three
// stand-in workers each sleep in worker.insert and record the peak number
// of in-flight requests; a serial fan-out would never overlap them.
func TestInsertBatchParallelFanOut(t *testing.T) {
	h := newHarness(t, 0, 0)
	const sleep = 150 * time.Millisecond
	var inflight, peak atomic.Int32
	slowInsert := func(_ context.Context, p []byte) ([]byte, error) {
		n := inflight.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		time.Sleep(sleep)
		inflight.Add(-1)
		return nil, nil
	}
	// Three workers with one shard each, boxes spread across dimension A
	// so one item per box routes each group to a different worker.
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("f%d", i)
		h.fakeWorkerAt(id, map[string]netmsg.Handler{"worker.insert": slowInsert})
		k := keys.NewEmpty(h.cfg.Keys, 2, h.cfg.MDSCap)
		k.ExtendPoint([]uint64{uint64(i * 30), uint64(i * 10)})
		sm := &image.ShardMeta{ID: image.ShardID(i), Worker: id, Key: k}
		if _, err := h.store.CreateOrSet(image.ShardPath(image.ShardID(i)), sm.EncodeBytes()); err != nil {
			t.Fatal(err)
		}
	}
	s := h.server("s0", time.Hour)

	batch := []core.Item{
		{Coords: []uint64{0, 0}, Measure: 1},
		{Coords: []uint64{30, 10}, Measure: 1},
		{Coords: []uint64{60, 20}, Measure: 1},
	}
	start := time.Now()
	if err := s.InsertBatch(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if got := peak.Load(); got < 2 {
		t.Fatalf("peak in-flight worker RPCs = %d, want >= 2 (parallel fan-out)", got)
	}
	if elapsed >= 3*sleep {
		t.Fatalf("batch took %v — serial fan-out (3 workers x %v)", elapsed, sleep)
	}
}
