package server

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/keys"
	"repro/internal/wire"
	"repro/internal/worker"
)

// This file adds replica-aware reads to the query pipeline. Shard metas
// in the global image carry a replica set (the followers a primary ships
// its WAL to); the server folds those into a routing table next to the
// owner map and, when a query opts into ReadPreferReplica, runs a
// single-round pre-pass that spreads shard groups across all copies
// (followers and leader alike, round-robin) before the usual leader
// retry loop picks up whatever the pre-pass could not serve.
//
// The pre-pass never retries: a follower that is lagging past the bound,
// unreachable, or no longer hosting the standby simply leaves its shards
// unserved, and the leader loop — with its refresh/retry/backoff
// machinery — remains the single place that fights for completeness.
// Replica reads therefore never make a query less available than
// leader-only reads, only cheaper when the copies are healthy.

// ReadPreference selects which copies of a shard a query may read.
type ReadPreference uint8

const (
	// ReadLeader routes every shard group to the shard's current owner.
	// Always consistent with the acked write stream.
	ReadLeader ReadPreference = 0
	// ReadPreferReplica spreads shard reads round-robin across the
	// shard's replica set plus its leader, falling back to the leader
	// for any shard whose chosen copy is unreachable or lagging beyond
	// the query's staleness bound.
	ReadPreferReplica ReadPreference = 1
)

// DefaultMaxReplicaLag is the staleness bound, in acked-but-unapplied
// WAL records, a ReadPreferReplica query tolerates when it does not set
// its own (QueryOptions.MaxReplicaLag == 0).
const DefaultMaxReplicaLag = 1024

// QueryOptions tunes one query's read path.
type QueryOptions struct {
	Read ReadPreference
	// MaxReplicaLag bounds how many shipped-but-unapplied records a
	// follower may be behind and still serve the read. Zero means
	// DefaultMaxReplicaLag. Ignored under ReadLeader.
	MaxReplicaLag uint64
	// NoRollup forces the raw tree path even when a materialized rollup
	// covers the query (exact-path benchmarking, debugging).
	NoRollup bool
}

// QueryOpts is Query with an explicit read preference.
func (s *Server) QueryOpts(ctx context.Context, q keys.Rect, opts QueryOptions) (core.Aggregate, QueryInfo, error) {
	return s.query(ctx, q, opts)
}

// replicaCandidates returns the shard's candidate readers: live
// followers first, then the live leader, so RF=N rotates reads over N
// copies.
func (s *Server) replicaCandidates(id image.ShardID) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	owner := s.owners[id]
	cands := make([]string, 0, len(s.replicas[id])+1)
	for _, rid := range s.replicas[id] {
		if rid == owner {
			continue
		}
		if _, down := s.down[rid]; down {
			continue
		}
		if s.workers[rid] == nil {
			continue
		}
		cands = append(cands, rid)
	}
	if _, down := s.down[owner]; !down && s.workers[owner] != nil {
		cands = append(cands, owner)
	}
	return cands
}

// replicaPrePass tries to serve shard groups from replica copies in one
// parallel round. Successful groups are merged into agg; the returned
// slice holds the shards the leader loop must still cover. No retries
// here by design (see the file comment).
func (s *Server) replicaPrePass(ctx context.Context, q keys.Rect, shards []image.ShardID, maxLag uint64, agg *core.Aggregate, info *QueryInfo, contacted map[string]struct{}) []image.ShardID {
	rr := s.rrSeq.Add(1)
	byWorker := make(map[string][]image.ShardID)
	skipped := make([]image.ShardID, 0, len(shards))
	for _, id := range shards {
		cands := s.replicaCandidates(id)
		if len(cands) == 0 {
			skipped = append(skipped, id)
			continue
		}
		pick := cands[int(rr%uint64(len(cands)))]
		byWorker[pick] = append(byWorker[pick], id)
	}
	if len(byWorker) == 0 {
		return shards
	}
	for wid := range byWorker {
		contacted[wid] = struct{}{}
	}
	type rpart struct {
		ids []image.ShardID
		rep worker.ReplicaQueryReply
		err error
	}
	results := make(chan rpart, len(byWorker))
	for wid, ids := range byWorker {
		go func(wid string, ids []image.ShardID) {
			c, err := s.workerClient(wid)
			if err != nil {
				results <- rpart{ids: ids, err: err}
				return
			}
			resp, err := c.RequestCtx(ctx, "worker.queryreplica",
				worker.EncodeReplicaQueryRequest(q, ids, maxLag))
			if err != nil {
				results <- rpart{ids: ids, err: err}
				return
			}
			rep, err := worker.DecodeReplicaQueryReply(resp)
			results <- rpart{ids: ids, rep: rep, err: err}
		}(wid, ids)
	}
	served := make(map[image.ShardID]struct{})
	for range byWorker {
		p := <-results
		if p.err != nil {
			continue // its shards fall through to the leader loop
		}
		agg.Merge(p.rep.Agg)
		for _, id := range p.rep.Served {
			served[id] = struct{}{}
		}
		if p.rep.MaxLag > info.MaxReplicaLag {
			info.MaxReplicaLag = p.rep.MaxLag
		}
	}
	if len(served) == 0 {
		return shards
	}
	remaining := skipped
	for _, ids := range byWorker {
		for _, id := range ids {
			if _, ok := served[id]; !ok {
				remaining = append(remaining, id)
			}
		}
	}
	info.ReplicaShards = make([]image.ShardID, 0, len(served))
	for id := range served {
		info.ReplicaShards = append(info.ReplicaShards, id)
	}
	sort.Slice(info.ReplicaShards, func(i, j int) bool { return info.ReplicaShards[i] < info.ReplicaShards[j] })
	info.ShardsSearched += len(served)
	s.replicaReads.Add(uint64(len(served)))
	s.traceAdd(ctx, "query.replica", fmt.Sprintf("%d/%d shards from replicas", len(served), len(shards)))
	return remaining
}

// EncodeQueryRequest builds the payload for server.query. A bare rect
// (no trailing preference bytes) is still accepted by the handler and
// means ReadLeader — the pre-replication client format.
func EncodeQueryRequest(q keys.Rect, opts QueryOptions) []byte {
	w := wire.NewWriter(64)
	q.Encode(w)
	if opts.Read != ReadLeader || opts.MaxReplicaLag != 0 || opts.NoRollup {
		w.Uint8(uint8(opts.Read))
		w.Uvarint(opts.MaxReplicaLag)
	}
	if opts.NoRollup {
		w.Uint8(1)
	}
	return w.Bytes()
}
