// Package server implements VOLAP's server nodes (§III-A/§III-B/§III-C):
// the client-facing tier. Each server keeps a local image — a modified PDC
// tree over shard bounding boxes plus worker address tables — routes
// every insertion and aggregate query to the right workers, scatter-
// gathers partial aggregates, and synchronizes its local image with the
// global image in the coordination service at a configurable rate
// (default 3 s in the paper's experiments).
package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/image"
	"repro/internal/keys"
	"repro/internal/metrics"
	"repro/internal/netmsg"
	"repro/internal/wire"
	"repro/internal/worker"
)

// Typed errors of the request pipeline. They cross the RPC boundary as
// message text, so keep the strings stable: the client maps them back to
// the same sentinels (see volap's error mapping).
var (
	// ErrUnavailable means the operation exhausted its retry budget:
	// some shard stayed unreachable across image refreshes. Retry later.
	ErrUnavailable = errors.New("volap: unavailable")
	// ErrStaleRoute classifies one failed attempt: the contacted worker
	// no longer owns the shard. The pipeline refreshes the image and
	// retries; callers only see it wrapped inside ErrUnavailable.
	ErrStaleRoute = errors.New("volap: stale route")
	// ErrWorkerDown fails an insert fast when the target shard's owner
	// has been declared dead (its coord session expired and its
	// registration vanished). Unlike ErrUnavailable it is returned
	// without burning the retry budget: the image has already told us
	// nobody is home.
	ErrWorkerDown = errors.New("volap: worker down")
)

// Options configures a server.
type Options struct {
	ID           string
	Coord        coord.Coordinator
	SyncInterval time.Duration // local-image push rate; paper default 3 s

	// RequestTimeout bounds each client-facing operation end to end,
	// including all worker RPCs and retries (default 10 s). Operations
	// whose context already carries a deadline keep it.
	RequestTimeout time.Duration
	// MaxRetries is how many times a shard group is re-sent after an
	// image refresh before the operation fails with ErrUnavailable
	// (default 3).
	MaxRetries int

	// Metrics receives the server's instrumentation. When nil the server
	// creates a private registry (reachable via Metrics()).
	Metrics *metrics.Registry

	// Fault, when non-nil, intercepts every worker-bound dial and frame
	// for chaos testing (see netmsg.FaultInjector). Production deploys
	// leave it nil.
	Fault *netmsg.FaultInjector
}

// Server is one server node.
type Server struct {
	id         string
	co         coord.Coordinator
	cfg        *image.ClusterConfig
	idx        *image.Index
	sync       time.Duration
	reqTimeout time.Duration
	maxRetries int

	srv  *netmsg.Server
	addr string

	mu       sync.RWMutex
	owners   map[image.ShardID]string     // shard -> worker ID
	replicas map[image.ShardID][]string   // shard -> follower worker IDs
	workers  map[string]*image.WorkerMeta // worker ID -> meta
	down     map[string]struct{}          // workers whose registration vanished
	conns    map[string]*netmsg.Client    // worker addr -> client
	dirty    map[image.ShardID]struct{}   // locally grown shards awaiting push

	rrSeq atomic.Uint64 // round-robin cursor for replica reads

	fault *netmsg.FaultInjector

	watcher   *coord.Watcher
	stopSync  chan struct{}
	syncWg    sync.WaitGroup
	closeOnce sync.Once

	// Staleness instrumentation for the freshness study (Figure 10) and
	// for the retry pipeline.
	statMu       sync.Mutex
	syncPushes   uint64
	watchEvents  uint64
	staleRetries uint64 // forced image refreshes after stale/transport errors

	// observability
	reg      *metrics.Registry
	trace    *metrics.TraceLog
	opLat    *metrics.HistogramVec // server_op_seconds{op}
	retries  *metrics.CounterVec   // server_retries_total{op}
	routes   *metrics.CounterVec   // server_routes_total{op}
	unavail  *metrics.Counter      // server_unavailable_total
	inflight *metrics.Gauge        // server_inflight_ops
	partials *metrics.Counter      // server_partial_queries_total
	downErrs *metrics.Counter      // server_worker_down_total

	replicaReads *metrics.Counter // server_replica_reads_total
	rollupRouted *metrics.Counter // server_rollup_routed_total
}

// New builds a server, loads the global image, and starts watching for
// remote changes. Call Listen to expose the client RPC surface.
func New(opts Options) (*Server, error) {
	if opts.Coord == nil {
		return nil, errors.New("server: coordinator required")
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = 3 * time.Second
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 10 * time.Second
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 3
	}
	raw, _, err := opts.Coord.Get(image.PathConfig)
	if err != nil {
		return nil, fmt.Errorf("server: cluster config: %w", err)
	}
	cfg, err := image.DecodeClusterConfigBytes(raw)
	if err != nil {
		return nil, err
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		id:         opts.ID,
		co:         opts.Coord,
		cfg:        cfg,
		sync:       opts.SyncInterval,
		reqTimeout: opts.RequestTimeout,
		maxRetries: opts.MaxRetries,
		idx:        image.NewIndex(cfg.Schema, cfg.Keys, cfg.MDSCap, 8),
		owners:     make(map[image.ShardID]string),
		replicas:   make(map[image.ShardID][]string),
		workers:    make(map[string]*image.WorkerMeta),
		down:       make(map[string]struct{}),
		conns:      make(map[string]*netmsg.Client),
		dirty:      make(map[image.ShardID]struct{}),
		fault:      opts.Fault,
		reg:        reg,
		trace:      metrics.NewTraceLog(0),
		opLat:      reg.Histogram("server_op_seconds", "op"),
		retries:    reg.Counter("server_retries_total", "op"),
		routes:     reg.Counter("server_routes_total", "op"),
		unavail:    reg.Counter("server_unavailable_total").With(),
		inflight:   reg.Gauge("server_inflight_ops").With(),
		partials:   reg.Counter("server_partial_queries_total").With(),
		downErrs:   reg.Counter("server_worker_down_total").With(),
	}
	s.replicaReads = reg.Counter("server_replica_reads_total").With()
	s.rollupRouted = reg.Counter("server_rollup_routed_total").With()
	reg.GaugeFunc("server_down_workers", func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return float64(len(s.down))
	})
	reg.CounterFunc("server_sync_pushes_total", func() uint64 { p, _ := s.SyncStats(); return p })
	reg.CounterFunc("server_watch_events_total", func() uint64 { _, e := s.SyncStats(); return e })
	reg.CounterFunc("server_refreshes_total", func() uint64 { return s.RetryStats() })

	// Bootstrap the local image from a consistent snapshot, then follow
	// the event stream from the snapshot's cursor (no gap, no replay).
	snap, cursor := s.co.Snapshot(image.PathRoot)
	for path, data := range snap {
		s.applyNode(path, data)
	}
	s.watcher = coord.NewWatcher(s.co, image.PathRoot, cursor, s.onEvent, s.onReset)

	s.stopSync = make(chan struct{})
	s.syncWg.Add(1)
	go s.syncLoop()
	return s, nil
}

// Config returns the cluster configuration.
func (s *Server) Config() *image.ClusterConfig { return s.cfg }

// ID returns the server's identifier.
func (s *Server) ID() string { return s.id }

// Addr returns the bound client-facing address.
func (s *Server) Addr() string { return s.addr }

// NumShards returns the number of shards in the local image.
func (s *Server) NumShards() int { return s.idx.NumShards() }

// Metrics returns the server's metric registry (for the /metrics
// endpoint and tests).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Trace returns the server's recent trace events.
func (s *Server) Trace() *metrics.TraceLog { return s.trace }

// traceAdd records one trace event if the context carries a trace ID.
func (s *Server) traceAdd(ctx context.Context, op, detail string) {
	if id := netmsg.TraceIDFrom(ctx); id != 0 {
		s.trace.Add(id, "server/"+s.id, op, detail)
	}
}

// instrument wraps one client-facing op with latency, in-flight, route
// counters, and a trace event.
func (s *Server) instrument(ctx context.Context, op string) func() {
	s.traceAdd(ctx, op, "")
	s.routes.Inc(op)
	s.inflight.Add(1)
	stop := s.opLat.With(op).Time()
	return func() {
		stop()
		s.inflight.Add(-1)
	}
}

// applyNode folds one global-image node into the local image.
func (s *Server) applyNode(path string, data []byte) {
	if id, ok := image.ParseShardPath(path); ok {
		if data == nil {
			return
		}
		meta, err := image.DecodeShardMetaBytes(data)
		if err != nil {
			return
		}
		if s.idx.Has(id) {
			// §III-C: a remote expansion is applied bottom-up through the
			// leaf map rather than by searching the tree.
			s.idx.ExpandLeaf(id, meta.Key, meta.Count)
		} else {
			_ = s.idx.AddShard(id, meta.Key)
		}
		s.mu.Lock()
		s.owners[id] = meta.Worker
		if len(meta.Replicas) > 0 {
			s.replicas[id] = append([]string(nil), meta.Replicas...)
		} else {
			delete(s.replicas, id)
		}
		s.mu.Unlock()
		return
	}
	if len(path) > len(image.PathWorkers)+1 && path[:len(image.PathWorkers)+1] == image.PathWorkers+"/" {
		if data == nil {
			return
		}
		meta, err := image.DecodeWorkerMetaBytes(data)
		if err != nil {
			return
		}
		s.mu.Lock()
		s.workers[meta.ID] = meta
		delete(s.down, meta.ID) // a (re)registration revives the worker
		s.mu.Unlock()
	}
}

// onEvent handles one watch notification.
func (s *Server) onEvent(ev coord.Event) {
	s.statMu.Lock()
	s.watchEvents++
	s.statMu.Unlock()
	if ev.Type == coord.EventDeleted {
		// Shards are never deleted from the image, but worker
		// registrations are ephemeral: a deletion is a session expiry
		// (crash) or a graceful deregistration. Either way the worker is
		// gone until it re-registers.
		if id, ok := image.ParseWorkerPath(ev.Path); ok {
			s.markWorkerDown(id)
		}
		return
	}
	s.applyNode(ev.Path, ev.Data)
}

// markWorkerDown records a dead worker and drops its cached connection
// so in-flight requests fail immediately instead of waiting out their
// deadlines.
func (s *Server) markWorkerDown(id string) {
	s.mu.Lock()
	if _, already := s.down[id]; already {
		s.mu.Unlock()
		return
	}
	s.down[id] = struct{}{}
	var conn *netmsg.Client
	if meta := s.workers[id]; meta != nil {
		if c, ok := s.conns[meta.Addr]; ok {
			conn = c
			delete(s.conns, meta.Addr)
		}
	}
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// isWorkerDown reports whether the worker's registration is gone.
func (s *Server) isWorkerDown(id string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, down := s.down[id]
	return down
}

// onReset rebuilds from a fresh snapshot after event-log compaction.
// Workers we knew that are absent from the snapshot died while the
// event log was compacted away; mark them down so routing degrades
// instead of timing out.
func (s *Server) onReset(snap map[string][]byte) {
	for path, data := range snap {
		s.applyNode(path, data)
	}
	s.mu.RLock()
	var lost []string
	for id := range s.workers {
		if _, ok := snap[image.WorkerPath(id)]; !ok {
			lost = append(lost, id)
		}
	}
	s.mu.RUnlock()
	for _, id := range lost {
		s.markWorkerDown(id)
	}
}

// workerClient returns (dialing if needed) a connection to a worker.
func (s *Server) workerClient(workerID string) (*netmsg.Client, error) {
	s.mu.RLock()
	meta := s.workers[workerID]
	var c *netmsg.Client
	if meta != nil {
		c = s.conns[meta.Addr]
	}
	s.mu.RUnlock()
	if meta == nil {
		return nil, fmt.Errorf("server %s: unknown worker %q", s.id, workerID)
	}
	if c != nil {
		return c, nil
	}
	c, err := netmsg.DialOptions(meta.Addr, netmsg.DialOpts{
		DefaultTimeout: s.reqTimeout, Metrics: s.reg,
		Fault: s.fault, Party: "server/" + s.id,
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if prev, ok := s.conns[meta.Addr]; ok {
		s.mu.Unlock()
		c.Close()
		return prev, nil
	}
	s.conns[meta.Addr] = c
	s.mu.Unlock()
	return c, nil
}

// opCtx applies the server's RequestTimeout to operations whose context
// carries no deadline of its own.
func (s *Server) opCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, s.reqTimeout)
}

// errClass buckets a worker RPC failure for the retry pipeline.
type errClass int

const (
	classFatal     errClass = iota // handler bug, validation, timeout: do not retry
	classStale                     // shard not where the image says: refresh and retry
	classTransport                 // connection-level failure: refresh and retry
)

// classifyWorkerErr decides whether a failed worker RPC is worth an
// image refresh + retry. Deadline expiry and cancellation are terminal —
// the whole point of the pipeline is to stay inside the caller's bound.
func classifyWorkerErr(err error) errClass {
	switch {
	case err == nil:
		return classFatal
	case errors.Is(err, netmsg.ErrTimeout), errors.Is(err, context.Canceled):
		return classFatal
	}
	var re *netmsg.RemoteError
	if errors.As(err, &re) {
		if worker.IsStaleRouteMsg(re.Msg) {
			return classStale
		}
		return classFatal
	}
	// Everything else is connection-level: dial failures, ErrConnLost,
	// ErrClosed, or an unknown-worker route from a pre-refresh image.
	return classTransport
}

// refreshShard force-reloads one shard's global record (and its owner's
// worker record) from the coordination service — the server-side half of
// §III-E's "servers refresh their image and retry". The watcher would
// deliver the same update eventually; a failed RPC is evidence we cannot
// afford to wait.
func (s *Server) refreshShard(id image.ShardID) {
	s.statMu.Lock()
	s.staleRetries++
	s.statMu.Unlock()
	raw, _, err := s.co.Get(image.ShardPath(id))
	if err != nil {
		return
	}
	s.applyNode(image.ShardPath(id), raw)
	meta, err := image.DecodeShardMetaBytes(raw)
	if err != nil {
		return
	}
	if wraw, _, err := s.co.Get(image.WorkerPath(meta.Worker)); err == nil {
		s.applyNode(image.WorkerPath(meta.Worker), wraw)
	}
}

// RetryStats returns how many forced image refreshes the retry pipeline
// performed.
func (s *Server) RetryStats() (staleRetries uint64) {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return s.staleRetries
}

// retryBackoff sleeps a capped, jittered exponential backoff, honoring
// the context. It returns the doubled delay for the next round.
func retryBackoff(ctx context.Context, delay time.Duration) (time.Duration, error) {
	sleep := delay/2 + time.Duration(rand.Int63n(int64(delay)))
	select {
	case <-ctx.Done():
		return delay, ctxErr(ctx.Err())
	case <-time.After(sleep):
	}
	if delay *= 2; delay > 100*time.Millisecond {
		delay = 100 * time.Millisecond
	}
	return delay, nil
}

// ctxErr maps context termination onto the pipeline's error set.
func ctxErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return netmsg.ErrTimeout
	}
	return err
}

// Insert routes one item to its shard's worker (§III-B: the local image
// finds the relevant shard and worker address).
func (s *Server) Insert(ctx context.Context, it core.Item) error {
	return s.InsertBatch(ctx, []core.Item{it})
}

// InsertBatch routes a batch, grouping items per shard.
func (s *Server) InsertBatch(ctx context.Context, items []core.Item) error {
	return s.routeAndSend(ctx, items, false)
}

// BulkLoad routes a large batch using the workers' bulk path.
func (s *Server) BulkLoad(ctx context.Context, items []core.Item) error {
	return s.routeAndSend(ctx, items, true)
}

// routeAndSend groups items per shard through the local image, then fans
// the groups out to their workers in parallel — the mirror image of the
// scatter-gather Query path, so a batch spanning N workers costs one
// round trip, not N (§IV-C).
func (s *Server) routeAndSend(ctx context.Context, items []core.Item, bulk bool) error {
	ctx, cancel := s.opCtx(ctx)
	defer cancel()
	op := "insert"
	if bulk {
		op = "bulkload"
	}
	defer s.instrument(ctx, op)()
	groups := make(map[image.ShardID][]core.Item)
	for _, it := range items {
		if err := s.cfg.Schema.ValidatePoint(it.Coords); err != nil {
			return err
		}
		id, grew, err := s.idx.RouteInsert(it.Coords)
		if err != nil {
			return err
		}
		if grew {
			s.mu.Lock()
			s.dirty[id] = struct{}{}
			s.mu.Unlock()
		}
		groups[id] = append(groups[id], it)
	}
	errs := make(chan error, len(groups))
	var wg sync.WaitGroup
	for id, group := range groups {
		wg.Add(1)
		go func(id image.ShardID, group []core.Item) {
			defer wg.Done()
			if err := s.sendShardGroup(ctx, id, group, bulk); err != nil {
				errs <- err
				return
			}
			s.mu.Lock()
			s.dirty[id] = struct{}{} // counts changed; sync will refresh size
			s.mu.Unlock()
		}(id, group)
	}
	wg.Wait()
	close(errs)
	return <-errs // nil when the channel is empty
}

// sendShardGroup delivers one shard's items, refreshing the image and
// retrying with capped backoff when the route turns out to be stale or
// the worker's connection fails. Bounded attempts; then ErrUnavailable.
func (s *Server) sendShardGroup(ctx context.Context, id image.ShardID, items []core.Item, bulk bool) error {
	op := "worker.insert"
	if bulk {
		op = "worker.bulkload"
	}
	payload := worker.EncodeInsertRequest(id, s.cfg.Schema.NumDims(), items)
	var lastErr error
	delay := 5 * time.Millisecond
	for attempt := 0; attempt <= s.maxRetries; attempt++ {
		if attempt > 0 {
			s.retries.Inc(op)
			s.traceAdd(ctx, op+".retry", fmt.Sprintf("shard %d attempt %d", id, attempt))
			s.refreshShard(id)
			var err error
			if delay, err = retryBackoff(ctx, delay); err != nil {
				return err
			}
		}
		s.mu.RLock()
		owner := s.owners[id]
		s.mu.RUnlock()
		if s.isWorkerDown(owner) {
			// Fail fast instead of burning the retry budget on a worker
			// the image already declared dead. One forced refresh covers
			// the race where the shard just migrated off the corpse.
			s.refreshShard(id)
			s.mu.RLock()
			owner = s.owners[id]
			s.mu.RUnlock()
			if s.isWorkerDown(owner) {
				s.downErrs.Inc()
				s.traceAdd(ctx, op+".down", fmt.Sprintf("shard %d worker %s", id, owner))
				return fmt.Errorf("%w: shard %d (worker %s)", ErrWorkerDown, id, owner)
			}
		}
		c, err := s.workerClient(owner)
		if err != nil {
			lastErr = err
			continue // a refresh may reveal the new owner or address
		}
		_, err = c.RequestCtx(ctx, op, payload)
		if err == nil {
			return nil
		}
		switch classifyWorkerErr(err) {
		case classStale:
			lastErr = fmt.Errorf("%w: shard %d: %v", ErrStaleRoute, id, err)
		case classTransport:
			lastErr = err
		default:
			return ctxErr(err)
		}
	}
	s.unavail.Inc()
	return fmt.Errorf("%w: shard %d after %d attempts: %v", ErrUnavailable, id, s.maxRetries+1, lastErr)
}

// QueryInfo describes the work a distributed query performed.
type QueryInfo struct {
	ShardsConsidered int // shards whose box touched the query
	ShardsSearched   int // shards that actually contributed
	WorkersContacted int
	// MissingShards lists shards whose data could not be reached (dead
	// or unreachable workers) and is therefore absent from the
	// aggregate. Empty on a complete answer. A query with missing
	// shards but at least one live contribution returns the partial
	// aggregate with a nil error; callers decide whether partial is
	// acceptable by checking Partial().
	MissingShards []image.ShardID
	// ReplicaShards lists shards whose contribution came from a replica
	// copy instead of the leader (only under ReadPreferReplica).
	ReplicaShards []image.ShardID
	// MaxReplicaLag is the largest lag, in shipped-but-unapplied WAL
	// records, among the replica copies that served this query. Zero
	// for leader-only reads.
	MaxReplicaLag uint64
	// RollupShards counts the searched shards answered from a
	// materialized rollup table instead of their tree; RollupCells the
	// rollup cells those answers merged.
	RollupShards int
	RollupCells  uint64
}

// Partial reports whether the aggregate is missing any shard's data.
func (qi QueryInfo) Partial() bool { return len(qi.MissingShards) > 0 }

// Answer sources reported by QueryInfo.Source.
const (
	SourceTree   = "tree"
	SourceRollup = "rollup"
	SourceMixed  = "mixed"
)

// Source names the data path that produced the answer: SourceRollup
// when every searched shard answered from a materialized rollup table,
// SourceTree when none did, SourceMixed otherwise.
func (qi QueryInfo) Source() string {
	switch {
	case qi.RollupShards == 0:
		return SourceTree
	case qi.RollupShards >= qi.ShardsSearched:
		return SourceRollup
	default:
		return SourceMixed
	}
}

// Query scatter-gathers an aggregate query across the workers owning the
// overlapping shards (§III-B) and merges the partial aggregates. Shard
// groups that fail on a stale route or a dropped connection are re-sent
// after an image refresh (bounded attempts, capped backoff); only
// successful partials are merged, so a failed worker can never leak a
// zero-value reply into the result.
//
// Degradation: shards owned by workers the image has declared dead are
// skipped (one forced refresh covers a just-finished migration) and
// reported in QueryInfo.MissingShards. If at least one shard
// contributed, the partial aggregate is returned with a nil error; if
// nothing could be reached the query fails with ErrUnavailable as
// before — an empty "result" would be indistinguishable from real data.
func (s *Server) Query(ctx context.Context, q keys.Rect) (core.Aggregate, QueryInfo, error) {
	return s.query(ctx, q, QueryOptions{})
}

// query is the shared implementation behind Query and QueryOpts. Under
// ReadPreferReplica a single replica pre-pass runs first (see
// replica.go); the leader retry loop then covers whatever it left.
func (s *Server) query(ctx context.Context, q keys.Rect, opts QueryOptions) (core.Aggregate, QueryInfo, error) {
	ctx, cancel := s.opCtx(ctx)
	defer cancel()
	defer s.instrument(ctx, "query")()
	shards := s.idx.RouteQuery(q)
	info := QueryInfo{ShardsConsidered: len(shards)}
	agg := core.NewAggregate()
	if len(shards) == 0 {
		return agg, info, nil
	}
	defIdx := -1
	if !opts.NoRollup {
		defIdx = s.pickRollup(q, -1, 0)
	}
	contacted := make(map[string]struct{})
	missing := make(map[image.ShardID]struct{})
	succeeded := 0
	remaining := shards
	if opts.Read == ReadPreferReplica {
		maxLag := opts.MaxReplicaLag
		if maxLag == 0 {
			maxLag = DefaultMaxReplicaLag
		}
		remaining = s.replicaPrePass(ctx, q, shards, maxLag, &agg, &info, contacted)
		succeeded += len(info.ReplicaShards)
	}
	var lastErr error
	delay := 5 * time.Millisecond
	for attempt := 0; attempt <= s.maxRetries; attempt++ {
		if attempt > 0 {
			s.retries.Inc("worker.query")
			s.traceAdd(ctx, "worker.query.retry", fmt.Sprintf("%d shards attempt %d", len(remaining), attempt))
			for _, id := range remaining {
				s.refreshShard(id)
			}
			var err error
			if delay, err = retryBackoff(ctx, delay); err != nil {
				info.WorkersContacted = len(contacted)
				return core.NewAggregate(), info, err
			}
		}
		// Shards owned by dead workers go straight to the missing set
		// (after one refresh at first sight) instead of timing out.
		live := make([]image.ShardID, 0, len(remaining))
		for _, id := range remaining {
			s.mu.RLock()
			owner := s.owners[id]
			s.mu.RUnlock()
			if s.isWorkerDown(owner) {
				if attempt == 0 {
					s.refreshShard(id)
					s.mu.RLock()
					owner = s.owners[id]
					s.mu.RUnlock()
				}
				if s.isWorkerDown(owner) {
					missing[id] = struct{}{}
					continue
				}
			}
			live = append(live, id)
		}
		remaining = live
		if len(remaining) == 0 {
			break
		}
		byWorker := make(map[string][]image.ShardID)
		s.mu.RLock()
		for _, id := range remaining {
			byWorker[s.owners[id]] = append(byWorker[s.owners[id]], id)
		}
		s.mu.RUnlock()
		for w := range byWorker {
			contacted[w] = struct{}{}
		}

		type partial struct {
			ids []image.ShardID
			rep worker.QueryReply
			err error
		}
		results := make(chan partial, len(byWorker))
		for workerID, ids := range byWorker {
			go func(workerID string, ids []image.ShardID) {
				c, err := s.workerClient(workerID)
				if err != nil {
					results <- partial{ids: ids, err: err}
					return
				}
				resp, err := c.RequestCtx(ctx, "worker.query", worker.EncodeQueryRequestRollup(q, ids, defIdx))
				if err != nil {
					results <- partial{ids: ids, err: err}
					return
				}
				rep, err := worker.DecodeQueryReply(resp)
				results <- partial{ids: ids, rep: rep, err: err}
			}(workerID, ids)
		}
		var failed []image.ShardID
		var fatal error
		for range byWorker {
			p := <-results
			if p.err != nil {
				// Never merge an errored partial — its reply is garbage.
				switch classifyWorkerErr(p.err) {
				case classStale, classTransport:
					lastErr = p.err
					failed = append(failed, p.ids...)
				default:
					if fatal == nil {
						fatal = ctxErr(p.err)
					}
				}
				continue
			}
			agg.Merge(p.rep.Agg)
			info.ShardsSearched += int(p.rep.ShardsSearched)
			info.RollupShards += int(p.rep.RollupShards)
			info.RollupCells += p.rep.RollupCells
			succeeded += len(p.ids)
		}
		info.WorkersContacted = len(contacted)
		if fatal != nil {
			return core.NewAggregate(), info, fatal
		}
		if len(failed) == 0 {
			remaining = nil
			break
		}
		remaining = failed
	}
	info.WorkersContacted = len(contacted)
	if info.RollupShards > 0 {
		s.rollupRouted.Inc()
	}
	// Shards still unreachable after the retry budget join the dead
	// workers' shards in the missing set.
	for _, id := range remaining {
		missing[id] = struct{}{}
	}
	if len(missing) == 0 {
		return agg, info, nil
	}
	if succeeded == 0 {
		// Nothing answered: an empty aggregate would be garbage, so this
		// stays a hard failure.
		s.unavail.Inc()
		if lastErr == nil {
			lastErr = ErrWorkerDown
		}
		return core.NewAggregate(), info, fmt.Errorf("%w: %d shards unreachable: %v",
			ErrUnavailable, len(missing), lastErr)
	}
	info.MissingShards = make([]image.ShardID, 0, len(missing))
	for id := range missing {
		info.MissingShards = append(info.MissingShards, id)
	}
	sort.Slice(info.MissingShards, func(i, j int) bool { return info.MissingShards[i] < info.MissingShards[j] })
	s.partials.Inc()
	s.traceAdd(ctx, "query.partial", fmt.Sprintf("%d/%d shards missing", len(missing), len(shards)))
	return agg, info, nil
}

// pickRollup returns the index of the cheapest configured rollup
// definition (fewest cells inside q) whose grid covers q, or -1 when
// none does. When groupDim >= 0 the definition must additionally retain
// that dimension at depth groupDepth or deeper, so rollup cells fall
// entirely inside one group.
func (s *Server) pickRollup(q keys.Rect, groupDim, groupDepth int) int {
	best, bestCells := -1, uint64(0)
	for i, def := range s.cfg.Rollups {
		if groupDim >= 0 && def.Depths[groupDim] < groupDepth {
			continue
		}
		if !def.Covers(s.cfg.Schema, q) {
			continue
		}
		c := def.CellsIn(s.cfg.Schema, q)
		if best < 0 || c < bestCells {
			best, bestCells = i, c
		}
	}
	return best
}

// GroupBy runs one aggregate per child value of the given dimension and
// level within the base region: the OLAP roll-up/drill-down primitive.
// Level l must be a valid level index of the dimension (0-based); the
// base rectangle's interval in that dimension must cover the grouped
// values' parent region (typically the All interval).
func (s *Server) GroupBy(ctx context.Context, base keys.Rect, dim, level int) ([]GroupResult, error) {
	out, _, err := s.GroupByOpts(ctx, base, dim, level, QueryOptions{})
	return out, err
}

// GroupByOpts is GroupBy with query options and a work report. One
// worker.groupby RPC per owning worker folds all its shards' groups —
// from a covering rollup table where the configuration has one,
// otherwise from the trees — instead of one full query per level value.
// Read preference is ignored: group-by always reads leader copies.
// Degradation matches Query: shards that stay unreachable are reported
// in QueryInfo.MissingShards, and the call fails only when nothing
// answered.
func (s *Server) GroupByOpts(ctx context.Context, base keys.Rect, dim, level int, opts QueryOptions) ([]GroupResult, QueryInfo, error) {
	ctx, cancel := s.opCtx(ctx)
	defer cancel()
	defer s.instrument(ctx, "groupby")()
	if dim < 0 || dim >= s.cfg.Schema.NumDims() {
		return nil, QueryInfo{}, fmt.Errorf("server: group-by dimension %d out of range", dim)
	}
	d := s.cfg.Schema.Dim(dim)
	if level < 0 || level >= d.Depth() {
		return nil, QueryInfo{}, fmt.Errorf("server: group-by level %d out of range for %s", level, d.Name())
	}
	defIdx := -1
	if !opts.NoRollup {
		defIdx = s.pickRollup(base, dim, level+1)
	}
	shards := s.idx.RouteQuery(base)
	info := QueryInfo{ShardsConsidered: len(shards)}
	groups := make(map[uint64]core.Aggregate)
	contacted := make(map[string]struct{})
	missing := make(map[image.ShardID]struct{})
	succeeded := 0
	remaining := shards
	var lastErr error
	delay := 5 * time.Millisecond
	for attempt := 0; attempt <= s.maxRetries && len(remaining) > 0; attempt++ {
		if attempt > 0 {
			s.retries.Inc("worker.groupby")
			s.traceAdd(ctx, "worker.groupby.retry", fmt.Sprintf("%d shards attempt %d", len(remaining), attempt))
			for _, id := range remaining {
				s.refreshShard(id)
			}
			var err error
			if delay, err = retryBackoff(ctx, delay); err != nil {
				info.WorkersContacted = len(contacted)
				return nil, info, err
			}
		}
		live := make([]image.ShardID, 0, len(remaining))
		for _, id := range remaining {
			s.mu.RLock()
			owner := s.owners[id]
			s.mu.RUnlock()
			if s.isWorkerDown(owner) {
				if attempt == 0 {
					s.refreshShard(id)
					s.mu.RLock()
					owner = s.owners[id]
					s.mu.RUnlock()
				}
				if s.isWorkerDown(owner) {
					missing[id] = struct{}{}
					continue
				}
			}
			live = append(live, id)
		}
		remaining = live
		if len(remaining) == 0 {
			break
		}
		byWorker := make(map[string][]image.ShardID)
		s.mu.RLock()
		for _, id := range remaining {
			byWorker[s.owners[id]] = append(byWorker[s.owners[id]], id)
		}
		s.mu.RUnlock()
		for w := range byWorker {
			contacted[w] = struct{}{}
		}

		type partial struct {
			ids []image.ShardID
			rep worker.GroupByReply
			err error
		}
		results := make(chan partial, len(byWorker))
		for workerID, ids := range byWorker {
			go func(workerID string, ids []image.ShardID) {
				c, err := s.workerClient(workerID)
				if err != nil {
					results <- partial{ids: ids, err: err}
					return
				}
				resp, err := c.RequestCtx(ctx, "worker.groupby",
					worker.EncodeGroupByRequest(base, dim, level, ids, defIdx))
				if err != nil {
					results <- partial{ids: ids, err: err}
					return
				}
				rep, err := worker.DecodeGroupByReply(resp)
				results <- partial{ids: ids, rep: rep, err: err}
			}(workerID, ids)
		}
		var failed []image.ShardID
		var fatal error
		for range byWorker {
			p := <-results
			if p.err != nil {
				switch classifyWorkerErr(p.err) {
				case classStale, classTransport:
					lastErr = p.err
					failed = append(failed, p.ids...)
				default:
					if fatal == nil {
						fatal = ctxErr(p.err)
					}
				}
				continue
			}
			for v, agg := range p.rep.Groups {
				cur, ok := groups[v]
				if !ok {
					cur = core.NewAggregate()
				}
				cur.Merge(agg)
				groups[v] = cur
			}
			info.ShardsSearched += int(p.rep.ShardsSearched)
			info.RollupShards += int(p.rep.RollupShards)
			info.RollupCells += p.rep.RollupCells
			succeeded += len(p.ids)
		}
		info.WorkersContacted = len(contacted)
		if fatal != nil {
			return nil, info, fatal
		}
		remaining = failed
	}
	info.WorkersContacted = len(contacted)
	if info.RollupShards > 0 {
		s.rollupRouted.Inc()
	}
	for _, id := range remaining {
		missing[id] = struct{}{}
	}
	if len(missing) > 0 {
		if succeeded == 0 && len(shards) > 0 {
			s.unavail.Inc()
			if lastErr == nil {
				lastErr = ErrWorkerDown
			}
			return nil, info, fmt.Errorf("%w: %d shards unreachable: %v",
				ErrUnavailable, len(missing), lastErr)
		}
		info.MissingShards = make([]image.ShardID, 0, len(missing))
		for id := range missing {
			info.MissingShards = append(info.MissingShards, id)
		}
		sort.Slice(info.MissingShards, func(i, j int) bool { return info.MissingShards[i] < info.MissingShards[j] })
		s.partials.Inc()
	}
	// Workers return sparse groups; materialize every level value inside
	// the base interval, empty aggregates included, matching the
	// per-value query semantics this API always had.
	span := d.LeavesUnder(level + 1)
	first := base.Ivs[dim].Lo / span
	last := base.Ivs[dim].Hi / span
	out := make([]GroupResult, 0, last-first+1)
	for v := first; v <= last; v++ {
		agg, ok := groups[v]
		if !ok {
			agg = core.NewAggregate()
		}
		out = append(out, GroupResult{Value: v, Agg: agg})
	}
	return out, info, nil
}

// GroupResult is one group of a GroupBy: the level-value ordinal (its
// index among all values of that level, left to right) and its aggregate.
type GroupResult struct {
	Value uint64
	Agg   core.Aggregate
}

func hierarchyInterval(lo, hi uint64) hierarchy.Interval {
	return hierarchy.Interval{Lo: lo, Hi: hi}
}

// syncLoop pushes local bounding-box expansions and shard sizes to the
// global image every SyncInterval (§III-B: "servers update Zookeeper
// every 3 seconds as necessary").
func (s *Server) syncLoop() {
	defer s.syncWg.Done()
	tick := time.NewTicker(s.sync)
	defer tick.Stop()
	for {
		select {
		case <-s.stopSync:
			return
		case <-tick.C:
			s.SyncNow()
		}
	}
}

// SyncNow pushes all dirty shards immediately (exposed for tests and for
// the freshness benchmarks, which sweep the effective sync interval).
func (s *Server) SyncNow() {
	s.mu.Lock()
	dirty := make([]image.ShardID, 0, len(s.dirty))
	for id := range s.dirty {
		dirty = append(dirty, id)
	}
	s.dirty = make(map[image.ShardID]struct{})
	s.mu.Unlock()

	for _, id := range dirty {
		k, count, ok := s.idx.LeafSnapshot(id)
		if !ok {
			continue
		}
		// Merge into the global record with optimistic concurrency so
		// concurrent servers never lose each other's expansions.
		for attempt := 0; attempt < 8; attempt++ {
			raw, version, err := s.co.Get(image.ShardPath(id))
			if err != nil {
				break
			}
			meta, err := image.DecodeShardMetaBytes(raw)
			if err != nil {
				break
			}
			merged := meta.Key.Clone()
			merged.ExtendKey(k)
			if merged.Equal(meta.Key) && meta.Count >= count {
				break // nothing new to publish
			}
			meta.Key = merged
			if count > meta.Count {
				meta.Count = count
			}
			if _, err := s.co.Set(image.ShardPath(id), meta.EncodeBytes(), version); err == nil {
				s.statMu.Lock()
				s.syncPushes++
				s.statMu.Unlock()
				break
			} else if !errors.Is(err, coord.ErrBadVersion) {
				break
			}
		}
	}
}

// SyncStats returns instrumentation counters.
func (s *Server) SyncStats() (pushes, events uint64) {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return s.syncPushes, s.watchEvents
}

// Listen exposes the client RPC surface and registers the server in the
// global image.
func (s *Server) Listen(addr string) (string, error) {
	srv := netmsg.NewServer()
	srv.SetFaults(s.fault, "server/"+s.id)
	srv.Handle("server.hello", s.handleHello)
	srv.Handle("server.insert", s.handleInsert)
	srv.Handle("server.bulkload", s.handleBulkLoad)
	srv.Handle("server.query", s.handleQuery)
	srv.Handle("server.groupby", s.handleGroupBy)
	srv.Handle("server.stats", s.handleStats)
	srv.Handle("server.clusterstats", s.handleClusterStats)
	srv.Handle("server.sync", func(context.Context, []byte) ([]byte, error) { s.SyncNow(); return nil, nil })
	srv.Handle("server.ping", func(context.Context, []byte) ([]byte, error) { return []byte("pong"), nil })
	bound, err := srv.Listen(addr)
	if err != nil {
		return "", err
	}
	s.srv = srv
	s.addr = bound
	meta := &image.ServerMeta{ID: s.id, Addr: bound}
	if _, err := s.co.CreateOrSet(image.ServerPath(s.id), meta.EncodeBytes()); err != nil {
		srv.Close()
		return "", err
	}
	return bound, nil
}

// Close stops the server. It is idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.stopSync)
		s.syncWg.Wait()
		s.watcher.Stop()
		if s.srv != nil {
			s.srv.Close()
		}
		s.mu.Lock()
		for _, c := range s.conns {
			c.Close()
		}
		s.conns = map[string]*netmsg.Client{}
		s.mu.Unlock()
	})
}

// --- RPC handlers ----------------------------------------------------------

// Hello is the connection handshake reply: enough schema metadata for a
// client to encode items without being told the dimension count out of
// band, plus a config fingerprint to detect schema mismatches.
type Hello struct {
	ServerID   string
	Dims       int
	ConfigHash uint64
}

// handleHello serves the server.hello handshake.
func (s *Server) handleHello(_ context.Context, p []byte) ([]byte, error) {
	w := wire.NewWriter(32)
	w.String(s.id)
	w.Uvarint(uint64(s.cfg.Schema.NumDims()))
	w.Uint64(s.cfg.Schema.Fingerprint())
	return w.Bytes(), nil
}

// DecodeHello parses a server.hello reply.
func DecodeHello(b []byte) (Hello, error) {
	r := wire.NewReader(b)
	h := Hello{ServerID: r.String(), Dims: int(r.Uvarint()), ConfigHash: r.Uint64()}
	if r.Err() != nil {
		return Hello{}, r.Err()
	}
	return h, nil
}

func (s *Server) handleInsert(ctx context.Context, p []byte) ([]byte, error) {
	items, err := decodeItems(p, s.cfg.Schema.NumDims())
	if err != nil {
		return nil, err
	}
	return nil, s.InsertBatch(ctx, items)
}

func (s *Server) handleBulkLoad(ctx context.Context, p []byte) ([]byte, error) {
	items, err := decodeItems(p, s.cfg.Schema.NumDims())
	if err != nil {
		return nil, err
	}
	return nil, s.BulkLoad(ctx, items)
}

func (s *Server) handleQuery(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	q, err := keys.DecodeRect(r)
	if err != nil {
		return nil, err
	}
	// A bare rect is the pre-replication request format and means
	// ReadLeader; newer clients append a preference byte + lag bound.
	var opts QueryOptions
	if r.Remaining() > 0 {
		opts.Read = ReadPreference(r.Uint8())
		opts.MaxReplicaLag = r.Uvarint()
		if r.Err() != nil {
			return nil, r.Err()
		}
	}
	// NoRollup is a further trailing extension on top of the replica
	// preference fields.
	if r.Remaining() > 0 {
		opts.NoRollup = r.Uint8() != 0
		if r.Err() != nil {
			return nil, r.Err()
		}
	}
	agg, info, err := s.query(ctx, q, opts)
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter(48)
	agg.Encode(w)
	encodeQueryInfo(w, info)
	return w.Bytes(), nil
}

// encodeQueryInfo appends a QueryInfo to a reply. Fields are strictly
// append-only: old clients stop reading after the fields they know.
func encodeQueryInfo(w *wire.Writer, info QueryInfo) {
	w.Uvarint(uint64(info.ShardsConsidered))
	w.Uvarint(uint64(info.ShardsSearched))
	w.Uvarint(uint64(info.WorkersContacted))
	w.Uvarint(uint64(len(info.MissingShards)))
	for _, id := range info.MissingShards {
		w.Uvarint(uint64(id))
	}
	w.Uvarint(uint64(len(info.ReplicaShards)))
	for _, id := range info.ReplicaShards {
		w.Uvarint(uint64(id))
	}
	w.Uvarint(info.MaxReplicaLag)
	w.Uvarint(uint64(info.RollupShards))
	w.Uvarint(info.RollupCells)
}

// decodeQueryInfo reads a QueryInfo, tolerating replies from servers
// predating the replica or rollup fields.
func decodeQueryInfo(r *wire.Reader) QueryInfo {
	info := QueryInfo{
		ShardsConsidered: int(r.Uvarint()),
		ShardsSearched:   int(r.Uvarint()),
		WorkersContacted: int(r.Uvarint()),
	}
	if n := r.Uvarint(); n > 0 && r.Err() == nil {
		info.MissingShards = make([]image.ShardID, 0, n)
		for i := uint64(0); i < n; i++ {
			info.MissingShards = append(info.MissingShards, image.ShardID(r.Uvarint()))
		}
	}
	if r.Err() == nil && r.Remaining() > 0 {
		if n := r.Uvarint(); n > 0 && r.Err() == nil {
			info.ReplicaShards = make([]image.ShardID, 0, n)
			for i := uint64(0); i < n; i++ {
				info.ReplicaShards = append(info.ReplicaShards, image.ShardID(r.Uvarint()))
			}
		}
		info.MaxReplicaLag = r.Uvarint()
	}
	if r.Err() == nil && r.Remaining() > 0 {
		info.RollupShards = int(r.Uvarint())
		info.RollupCells = r.Uvarint()
	}
	return info
}

func (s *Server) handleGroupBy(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	q, err := keys.DecodeRect(r)
	if err != nil {
		return nil, err
	}
	dim := int(r.Uvarint())
	level := int(r.Uvarint())
	if r.Err() != nil {
		return nil, r.Err()
	}
	// Optional trailing options (same extension shape as server.query).
	var opts QueryOptions
	if r.Remaining() > 0 {
		opts.Read = ReadPreference(r.Uint8())
		opts.MaxReplicaLag = r.Uvarint()
		if r.Err() != nil {
			return nil, r.Err()
		}
	}
	if r.Remaining() > 0 {
		opts.NoRollup = r.Uint8() != 0
		if r.Err() != nil {
			return nil, r.Err()
		}
	}
	groups, info, err := s.GroupByOpts(ctx, q, dim, level, opts)
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter(48 + len(groups)*40)
	w.Uvarint(uint64(len(groups)))
	for _, g := range groups {
		w.Uvarint(g.Value)
		g.Agg.Encode(w)
	}
	encodeQueryInfo(w, info)
	return w.Bytes(), nil
}

// EncodeGroupByRequest builds the payload for server.groupby.
func EncodeGroupByRequest(q keys.Rect, dim, level int) []byte {
	return EncodeGroupByRequestOpts(q, dim, level, QueryOptions{})
}

// EncodeGroupByRequestOpts is EncodeGroupByRequest with query options,
// appended as optional trailing fields like server.query's.
func EncodeGroupByRequestOpts(q keys.Rect, dim, level int, opts QueryOptions) []byte {
	w := wire.NewWriter(64)
	q.Encode(w)
	w.Uvarint(uint64(dim))
	w.Uvarint(uint64(level))
	if opts.Read != ReadLeader || opts.MaxReplicaLag != 0 || opts.NoRollup {
		w.Uint8(uint8(opts.Read))
		w.Uvarint(opts.MaxReplicaLag)
	}
	if opts.NoRollup {
		w.Uint8(1)
	}
	return w.Bytes()
}

// DecodeGroupByResponse parses a server.groupby reply. The QueryInfo is
// zero-valued for replies from servers predating it.
func DecodeGroupByResponse(b []byte) ([]GroupResult, QueryInfo, error) {
	r := wire.NewReader(b)
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, QueryInfo{}, r.Err()
	}
	out := make([]GroupResult, 0, n)
	for i := uint64(0); i < n; i++ {
		v := r.Uvarint()
		agg, err := core.DecodeAggregate(r)
		if err != nil {
			return nil, QueryInfo{}, err
		}
		out = append(out, GroupResult{Value: v, Agg: agg})
	}
	var info QueryInfo
	if r.Err() == nil && r.Remaining() > 0 {
		info = decodeQueryInfo(r)
	}
	return out, info, r.Err()
}

func (s *Server) handleStats(_ context.Context, p []byte) ([]byte, error) {
	w := wire.NewWriter(16)
	w.Uvarint(uint64(s.idx.NumShards()))
	pushes, events := s.SyncStats()
	w.Uvarint(pushes)
	w.Uvarint(events)
	return w.Bytes(), nil
}

// WorkerStats is one worker's contribution to a ClusterStats reply.
type WorkerStats struct {
	ID          string
	Addr        string
	Shards      int
	Items       uint64
	MemBytes    uint64
	ShardCounts map[image.ShardID]uint64
	OpLatency   map[string]worker.OpLatency
	// Replicas are the standby shard copies this worker hosts as a
	// replication follower; ShipLinks are the follower links this
	// worker feeds as a primary.
	Replicas  []worker.ReplicaInfo
	ShipLinks []worker.ShipLink
}

// ClusterStats is the cluster-wide view assembled by server.clusterstats.
type ClusterStats struct {
	ServerID string
	Shards   int // shards in the server's local image
	Workers  []WorkerStats
}

// ClusterStats fans out to every known worker and assembles per-worker
// shard counts, item totals, and op-latency summaries.
func (s *Server) ClusterStats(ctx context.Context) (*ClusterStats, error) {
	ctx, cancel := s.opCtx(ctx)
	defer cancel()
	s.traceAdd(ctx, "clusterstats", "")
	s.mu.RLock()
	ids := make([]string, 0, len(s.workers))
	for id := range s.workers {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	out := &ClusterStats{ServerID: s.id, Shards: s.idx.NumShards()}
	for _, workerID := range ids {
		c, err := s.workerClient(workerID)
		if err != nil {
			continue // a worker that just left the image is not fatal
		}
		raw, err := c.RequestCtx(ctx, "worker.stats", nil)
		if err != nil {
			continue
		}
		meta, err := image.DecodeWorkerMetaBytes(raw)
		if err != nil {
			continue
		}
		ws := WorkerStats{
			ID: meta.ID, Addr: meta.Addr,
			Shards: int(meta.Shards), Items: meta.Items, MemBytes: meta.MemBytes,
		}
		if raw, err := c.RequestCtx(ctx, "worker.shardcounts", nil); err == nil {
			ws.ShardCounts, _ = worker.DecodeShardCounts(raw)
		}
		if raw, err := c.RequestCtx(ctx, "worker.opstats", nil); err == nil {
			ws.OpLatency, _ = worker.DecodeOpStats(raw)
		}
		if raw, err := c.RequestCtx(ctx, "worker.replicastatus", nil); err == nil {
			if rs, err := worker.DecodeReplStatus(raw); err == nil {
				ws.Replicas, ws.ShipLinks = rs.Standbys, rs.Links
			}
		}
		out.Workers = append(out.Workers, ws)
	}
	return out, nil
}

func (s *Server) handleClusterStats(ctx context.Context, _ []byte) ([]byte, error) {
	cs, err := s.ClusterStats(ctx)
	if err != nil {
		return nil, err
	}
	return EncodeClusterStats(cs), nil
}

// EncodeClusterStats serializes a server.clusterstats reply.
func EncodeClusterStats(cs *ClusterStats) []byte {
	w := wire.NewWriter(64 + len(cs.Workers)*96)
	w.String(cs.ServerID)
	w.Uvarint(uint64(cs.Shards))
	w.Uvarint(uint64(len(cs.Workers)))
	for _, ws := range cs.Workers {
		w.String(ws.ID)
		w.String(ws.Addr)
		w.Uvarint(uint64(ws.Shards))
		w.Uvarint(ws.Items)
		w.Uvarint(ws.MemBytes)
		w.Uvarint(uint64(len(ws.ShardCounts)))
		for id, n := range ws.ShardCounts {
			w.Uvarint(uint64(id))
			w.Uvarint(n)
		}
		w.Uvarint(uint64(len(ws.OpLatency)))
		for op, l := range ws.OpLatency {
			w.String(op)
			w.Uvarint(l.Count)
			w.Uvarint(uint64(l.Mean.Microseconds()))
			w.Uvarint(uint64(l.P50.Microseconds()))
			w.Uvarint(uint64(l.P99.Microseconds()))
			w.Uvarint(uint64(l.Max.Microseconds()))
		}
		w.Uvarint(uint64(len(ws.Replicas)))
		for _, ri := range ws.Replicas {
			w.Uvarint(uint64(ri.Shard))
			w.String(ri.Primary)
			w.Uvarint(ri.Applied)
			w.Uvarint(ri.Head)
		}
		w.Uvarint(uint64(len(ws.ShipLinks)))
		for _, l := range ws.ShipLinks {
			w.Uvarint(uint64(l.Shard))
			w.String(l.Follower)
			w.Uvarint(l.Acked)
			w.Uvarint(l.Seq)
		}
	}
	return w.Bytes()
}

// DecodeClusterStats parses a server.clusterstats reply.
func DecodeClusterStats(b []byte) (*ClusterStats, error) {
	r := wire.NewReader(b)
	cs := &ClusterStats{ServerID: r.String(), Shards: int(r.Uvarint())}
	nw := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	for i := uint64(0); i < nw; i++ {
		ws := WorkerStats{
			ID: r.String(), Addr: r.String(),
			Shards: int(r.Uvarint()), Items: r.Uvarint(), MemBytes: r.Uvarint(),
		}
		if nc := r.Uvarint(); nc > 0 {
			ws.ShardCounts = make(map[image.ShardID]uint64, nc)
			for j := uint64(0); j < nc; j++ {
				id := image.ShardID(r.Uvarint())
				ws.ShardCounts[id] = r.Uvarint()
			}
		}
		if no := r.Uvarint(); no > 0 {
			ws.OpLatency = make(map[string]worker.OpLatency, no)
			for j := uint64(0); j < no; j++ {
				op := r.String()
				ws.OpLatency[op] = worker.OpLatency{
					Count: r.Uvarint(),
					Mean:  time.Duration(r.Uvarint()) * time.Microsecond,
					P50:   time.Duration(r.Uvarint()) * time.Microsecond,
					P99:   time.Duration(r.Uvarint()) * time.Microsecond,
					Max:   time.Duration(r.Uvarint()) * time.Microsecond,
				}
			}
		}
		if nr := r.Uvarint(); nr > 0 && r.Err() == nil {
			ws.Replicas = make([]worker.ReplicaInfo, 0, nr)
			for j := uint64(0); j < nr; j++ {
				ws.Replicas = append(ws.Replicas, worker.ReplicaInfo{
					Shard: image.ShardID(r.Uvarint()), Primary: r.String(),
					Applied: r.Uvarint(), Head: r.Uvarint(),
				})
			}
		}
		if nl := r.Uvarint(); nl > 0 && r.Err() == nil {
			ws.ShipLinks = make([]worker.ShipLink, 0, nl)
			for j := uint64(0); j < nl; j++ {
				ws.ShipLinks = append(ws.ShipLinks, worker.ShipLink{
					Shard: image.ShardID(r.Uvarint()), Follower: r.String(),
					Acked: r.Uvarint(), Seq: r.Uvarint(),
				})
			}
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
		cs.Workers = append(cs.Workers, ws)
	}
	return cs, nil
}

// decodeItems parses a bare item batch (no shard prefix).
func decodeItems(p []byte, dims int) ([]core.Item, error) {
	r := wire.NewReader(p)
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	items := make([]core.Item, 0, n)
	for i := uint64(0); i < n; i++ {
		coords := make([]uint64, dims)
		for d := range coords {
			coords[d] = r.Uvarint()
		}
		m := r.Float64()
		if r.Err() != nil {
			return nil, r.Err()
		}
		items = append(items, core.Item{Coords: coords, Measure: m})
	}
	return items, nil
}

// EncodeItems builds the payload for server.insert / server.bulkload.
func EncodeItems(dims int, items []core.Item) []byte {
	w := wire.NewWriter(8 + len(items)*(dims*4+8))
	w.Uvarint(uint64(len(items)))
	for _, it := range items {
		for _, c := range it.Coords {
			w.Uvarint(c)
		}
		w.Float64(it.Measure)
	}
	return w.Bytes()
}

// DecodeQueryResponse parses a server.query reply.
func DecodeQueryResponse(b []byte) (core.Aggregate, QueryInfo, error) {
	r := wire.NewReader(b)
	agg, err := core.DecodeAggregate(r)
	if err != nil {
		return agg, QueryInfo{}, err
	}
	info := decodeQueryInfo(r)
	return agg, info, r.Err()
}
