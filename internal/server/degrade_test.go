package server

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/image"
	"repro/internal/keys"
)

// waitWorkerDown polls until the server's down set reflects want (the
// watcher applies deletion events asynchronously).
func waitWorkerDown(t *testing.T, s *Server, id string, want bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.isWorkerDown(id) == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("worker %s down-state never became %v", id, want)
}

// seedBothWorkers inserts items until both workers hold data, so a full
// query genuinely needs both. The seed is fixed; the distribution is
// deterministic.
func seedBothWorkers(t *testing.T, h *harness, s *Server) (rng *rand.Rand, total uint64) {
	t.Helper()
	rng = rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		if err := s.Insert(context.Background(), randItem(rng)); err != nil {
			t.Fatal(err)
		}
	}
	w0, w1 := h.workers[0].ShardCount(0), h.workers[1].ShardCount(1)
	if w0 == 0 || w1 == 0 {
		t.Fatalf("seed routed everything to one worker: w0=%d w1=%d", w0, w1)
	}
	return rng, w0 + w1
}

// TestWorkerDeletionMarksDown checks the liveness pipeline end to end on
// the coordination side: deleting a worker's registration (what a
// session expiry does) marks it down via the watch, and a
// re-registration revives it.
func TestWorkerDeletionMarksDown(t *testing.T) {
	h := newHarness(t, 2, 1)
	s := h.server("s0", time.Hour)
	if s.isWorkerDown("w1") {
		t.Fatal("fresh worker already down")
	}
	if err := h.store.Delete(image.WorkerPath("w1"), coord.AnyVersion); err != nil {
		t.Fatal(err)
	}
	waitWorkerDown(t, s, "w1", true)

	meta := &image.WorkerMeta{ID: "w1", Addr: h.workers[1].Addr(), UpdatedMs: time.Now().UnixMilli()}
	if _, err := h.store.CreateOrSet(image.WorkerPath("w1"), meta.EncodeBytes()); err != nil {
		t.Fatal(err)
	}
	waitWorkerDown(t, s, "w1", false)
}

// TestQueryPartialOnDeadWorker checks graceful degradation: with one
// worker dead, a spanning query returns the live shards' aggregate plus
// an explicit report of what is missing — never a silently wrong total.
func TestQueryPartialOnDeadWorker(t *testing.T) {
	h := newHarness(t, 2, 1) // w0 owns shard 0, w1 owns shard 1
	s := h.server("s0", time.Hour)
	_, total := seedBothWorkers(t, h, s)
	liveCount := h.workers[0].ShardCount(0)

	agg, info, err := s.Query(context.Background(), keys.AllRect(h.cfg.Schema))
	if err != nil {
		t.Fatal(err)
	}
	if info.Partial() || agg.Count != total {
		t.Fatalf("healthy query: count=%d partial=%v, want %d full", agg.Count, info.Partial(), total)
	}

	h.workers[1].Close()
	if err := h.store.Delete(image.WorkerPath("w1"), coord.AnyVersion); err != nil {
		t.Fatal(err)
	}
	waitWorkerDown(t, s, "w1", true)

	start := time.Now()
	agg, info, err = s.Query(context.Background(), keys.AllRect(h.cfg.Schema))
	if err != nil {
		t.Fatalf("degraded query should return partial results, got %v", err)
	}
	if !info.Partial() {
		t.Fatal("degraded query not marked partial")
	}
	if len(info.MissingShards) != 1 || info.MissingShards[0] != 1 {
		t.Fatalf("missing shards = %v, want [1]", info.MissingShards)
	}
	if agg.Count != liveCount {
		t.Fatalf("partial count = %d, want live worker's %d", agg.Count, liveCount)
	}
	// Down-shard exclusion must not burn the retry/timeout budget.
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("degraded query took %v", took)
	}

	var b bytes.Buffer
	if err := s.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"server_partial_queries_total 1", "server_down_workers 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestQueryRecoversAfterReregistration checks the revival path: the
// registration reappears (worker was partitioned, not dead) and full
// results resume.
func TestQueryRecoversAfterReregistration(t *testing.T) {
	h := newHarness(t, 2, 1)
	s := h.server("s0", time.Hour)
	_, total := seedBothWorkers(t, h, s)

	if err := h.store.Delete(image.WorkerPath("w1"), coord.AnyVersion); err != nil {
		t.Fatal(err)
	}
	waitWorkerDown(t, s, "w1", true)
	_, info, err := s.Query(context.Background(), keys.AllRect(h.cfg.Schema))
	if err != nil || !info.Partial() {
		t.Fatalf("query while deregistered: err=%v partial=%v, want partial", err, info.Partial())
	}

	// The worker never died — its registration comes back (in production
	// the session keeper republishes it).
	meta := &image.WorkerMeta{ID: "w1", Addr: h.workers[1].Addr(), UpdatedMs: time.Now().UnixMilli()}
	if _, err := h.store.CreateOrSet(image.WorkerPath("w1"), meta.EncodeBytes()); err != nil {
		t.Fatal(err)
	}
	waitWorkerDown(t, s, "w1", false)
	agg, info, err := s.Query(context.Background(), keys.AllRect(h.cfg.Schema))
	if err != nil {
		t.Fatal(err)
	}
	if info.Partial() || agg.Count != total {
		t.Fatalf("recovered query: count=%d partial=%v, want %d full", agg.Count, info.Partial(), total)
	}
}

// TestInsertFastFailWorkerDown checks inserts routed to a dead worker's
// shard fail typed and fast — no retry budget burned against a corpse —
// while inserts routed to live shards keep succeeding.
func TestInsertFastFailWorkerDown(t *testing.T) {
	h := newHarness(t, 2, 1)
	s := h.server("s0", time.Hour)
	rng, _ := seedBothWorkers(t, h, s)

	h.workers[1].Close()
	if err := h.store.Delete(image.WorkerPath("w1"), coord.AnyVersion); err != nil {
		t.Fatal(err)
	}
	waitWorkerDown(t, s, "w1", true)

	var downErrs, ok int
	for i := 0; i < 400; i++ {
		start := time.Now()
		err := s.Insert(context.Background(), randItem(rng))
		took := time.Since(start)
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrWorkerDown):
			downErrs++
			if took > 2*time.Second {
				t.Fatalf("ErrWorkerDown took %v — not a fast fail", took)
			}
		default:
			t.Fatalf("insert error = %v, want nil or ErrWorkerDown", err)
		}
	}
	if downErrs == 0 {
		t.Fatal("no insert ever routed to the dead worker's shard")
	}
	if ok == 0 {
		t.Fatal("no insert succeeded on the live worker")
	}
}
