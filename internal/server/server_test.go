package server

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/image"
	"repro/internal/keys"
	"repro/internal/manager"
	"repro/internal/netmsg"
	"repro/internal/wire"
	"repro/internal/worker"
)

var seq int

// harness is a miniature cluster: a coordination store, two workers with
// registered shards, and helpers to boot servers against them.
type harness struct {
	t       *testing.T
	store   *coord.Store
	cfg     *image.ClusterConfig
	workers []*worker.Worker
}

func newHarness(t *testing.T, workers, shardsPerWorker int) *harness {
	t.Helper()
	seq++
	schema := hierarchy.MustSchema(
		hierarchy.MustDimension("A",
			hierarchy.Level{Name: "L1", Fanout: 10},
			hierarchy.Level{Name: "L2", Fanout: 10}),
		hierarchy.MustDimension("B",
			hierarchy.Level{Name: "L1", Fanout: 40}),
	)
	h := &harness{
		t:     t,
		store: coord.NewStore(),
		cfg: &image.ClusterConfig{
			Schema: schema, Store: core.StoreHilbertPDC, Keys: keys.MDS,
			MDSCap: 4, LeafCapacity: 32, DirCapacity: 8,
		},
	}
	if _, err := h.store.Create(image.PathConfig, h.cfg.EncodeBytes()); err != nil {
		t.Fatal(err)
	}
	next := image.ShardID(0)
	for wi := 0; wi < workers; wi++ {
		id := fmt.Sprintf("w%d", wi)
		w := worker.New(id, h.cfg)
		addr, err := w.Listen(fmt.Sprintf("inproc://srvtest%d-%s", seq, id))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
		meta := &image.WorkerMeta{ID: id, Addr: addr, UpdatedMs: time.Now().UnixMilli()}
		if _, err := h.store.CreateOrSet(image.WorkerPath(id), meta.EncodeBytes()); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < shardsPerWorker; s++ {
			if err := w.CreateShard(next); err != nil {
				t.Fatal(err)
			}
			sm := &image.ShardMeta{ID: next, Worker: id, Key: keys.NewEmpty(keys.MDS, 2, 4)}
			if _, err := h.store.CreateOrSet(image.ShardPath(next), sm.EncodeBytes()); err != nil {
				t.Fatal(err)
			}
			next++
		}
		h.workers = append(h.workers, w)
	}
	t.Cleanup(h.store.Close)
	return h
}

func (h *harness) server(id string, sync time.Duration) *Server {
	h.t.Helper()
	s, err := New(Options{ID: id, Coord: h.store, SyncInterval: sync})
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(s.Close)
	return s
}

func randItem(rng *rand.Rand) core.Item {
	return core.Item{Coords: []uint64{uint64(rng.Intn(100)), uint64(rng.Intn(40))}, Measure: 1}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("missing coordinator should fail")
	}
	st := coord.NewStore()
	defer st.Close()
	if _, err := New(Options{ID: "s", Coord: st}); err == nil {
		t.Error("missing cluster config should fail")
	}
}

func TestInsertAndQueryDirect(t *testing.T) {
	h := newHarness(t, 2, 2)
	s := h.server("s0", time.Hour)
	if s.NumShards() != 4 {
		t.Fatalf("image has %d shards", s.NumShards())
	}
	rng := rand.New(rand.NewSource(1))
	var ref []core.Item
	for i := 0; i < 1500; i++ {
		it := randItem(rng)
		ref = append(ref, it)
		if err := s.Insert(context.Background(), it); err != nil {
			t.Fatal(err)
		}
	}
	agg, info, err := s.Query(context.Background(), keys.AllRect(h.cfg.Schema))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 1500 {
		t.Fatalf("count = %d", agg.Count)
	}
	if info.ShardsConsidered == 0 || info.WorkersContacted == 0 {
		t.Errorf("info = %+v", info)
	}
	// Partial query against brute force.
	q := keys.NewRect(hierarchy.Interval{Lo: 0, Hi: 49}, hierarchy.Interval{Lo: 0, Hi: 19})
	agg, _, err = s.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, it := range ref {
		if q.ContainsPoint(it.Coords) {
			want++
		}
	}
	if agg.Count != want {
		t.Fatalf("partial = %d, want %d", agg.Count, want)
	}
	// Invalid point is rejected before routing.
	if err := s.Insert(context.Background(), core.Item{Coords: []uint64{1}}); err == nil {
		t.Error("short point should fail")
	}
}

// TestSyncPropagation checks that one server's local expansions reach
// another server through the coordination service (the §III-B cycle:
// local image -> global image -> watch -> remote local image).
func TestSyncPropagation(t *testing.T) {
	h := newHarness(t, 2, 2)
	a := h.server("sa", time.Hour) // manual sync only
	b := h.server("sb", time.Hour)

	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		if err := a.Insert(context.Background(), randItem(rng)); err != nil {
			t.Fatal(err)
		}
	}
	// Before sync, b's image has empty boxes: queries find nothing.
	agg, _, err := b.Query(context.Background(), keys.AllRect(h.cfg.Schema))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 0 {
		t.Logf("b saw %d items before sync (possible but unexpected)", agg.Count)
	}
	a.SyncNow()
	deadline := time.Now().Add(3 * time.Second)
	for {
		agg, _, err := b.Query(context.Background(), keys.AllRect(h.cfg.Schema))
		if err != nil {
			t.Fatal(err)
		}
		if agg.Count == 300 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("b stuck at %d", agg.Count)
		}
		time.Sleep(10 * time.Millisecond)
	}
	pushes, events := a.SyncStats()
	if pushes == 0 {
		t.Error("a pushed nothing")
	}
	_, bEvents := b.SyncStats()
	if bEvents == 0 {
		t.Error("b saw no watch events")
	}
	_ = events
}

// TestConcurrentSyncMerge has two servers expand the same shard
// concurrently; the CAS merge loop must preserve both expansions.
func TestConcurrentSyncMerge(t *testing.T) {
	h := newHarness(t, 1, 1)
	a := h.server("sa", time.Hour)
	b := h.server("sb", time.Hour)

	// Server a inserts in one corner, server b in the opposite corner.
	if err := a.Insert(context.Background(), core.Item{Coords: []uint64{0, 0}, Measure: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(context.Background(), core.Item{Coords: []uint64{99, 39}, Measure: 1}); err != nil {
		t.Fatal(err)
	}
	a.SyncNow()
	b.SyncNow()
	raw, _, err := h.store.Get(image.ShardPath(0))
	if err != nil {
		t.Fatal(err)
	}
	meta, err := image.DecodeShardMetaBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Key.ContainsPoint([]uint64{0, 0}) || !meta.Key.ContainsPoint([]uint64{99, 39}) {
		t.Fatalf("global key lost an expansion: %v", meta.Key)
	}
}

// TestNewShardViaWatch verifies a server picks up shards created after it
// started (the manager's split path).
func TestNewShardViaWatch(t *testing.T) {
	h := newHarness(t, 1, 1)
	s := h.server("s0", time.Hour)
	if s.NumShards() != 1 {
		t.Fatal("expected 1 shard at start")
	}
	// Register a second shard on the same worker directly.
	if err := h.workers[0].CreateShard(7); err != nil {
		t.Fatal(err)
	}
	sm := &image.ShardMeta{ID: 7, Worker: "w0", Key: keys.NewEmpty(keys.MDS, 2, 4)}
	if _, err := h.store.CreateOrSet(image.ShardPath(7), sm.EncodeBytes()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for s.NumShards() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("server never saw new shard (has %d)", s.NumShards())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRPCSurface exercises the netmsg handlers.
func TestRPCSurface(t *testing.T) {
	h := newHarness(t, 1, 2)
	s := h.server("s0", time.Hour)
	addr, err := s.Listen(fmt.Sprintf("inproc://srvtest-rpc-%d", seq))
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() != addr || s.ID() != "s0" {
		t.Error("accessors wrong")
	}
	// The server registered itself in the global image.
	raw, _, err := h.store.Get(image.ServerPath("s0"))
	if err != nil {
		t.Fatal(err)
	}
	if sm, err := image.DecodeServerMetaBytes(raw); err != nil || sm.Addr != addr {
		t.Fatalf("server meta = %+v %v", sm, err)
	}

	c, err := netmsg.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(3))
	items := make([]core.Item, 200)
	for i := range items {
		items[i] = randItem(rng)
	}
	if _, err := c.Request("server.insert", EncodeItems(2, items[:100])); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Request("server.bulkload", EncodeItems(2, items[100:])); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Request("server.query", newTestRectPayload(keys.AllRect(h.cfg.Schema)))
	if err != nil {
		t.Fatal(err)
	}
	agg, info, err := DecodeQueryResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 200 || info.ShardsSearched == 0 {
		t.Fatalf("rpc query = %v %+v", agg, info)
	}
	if _, err := c.Request("server.sync", nil); err != nil {
		t.Fatal(err)
	}
	if resp, err := c.Request("server.ping", nil); err != nil || string(resp) != "pong" {
		t.Fatalf("ping = %q %v", resp, err)
	}
	if _, err := c.Request("server.stats", nil); err != nil {
		t.Fatal(err)
	}
	// Malformed payloads return errors, not panics.
	if _, err := c.Request("server.query", []byte{0xFF}); err == nil {
		t.Error("malformed query should fail")
	}
}

func newTestRectPayload(q keys.Rect) []byte {
	w := wire.NewWriter(64)
	q.Encode(w)
	return w.Bytes()
}

// TestWorkerFailure checks the server surfaces clean errors (not hangs or
// panics) when a worker disappears, and keeps serving what remains.
func TestWorkerFailure(t *testing.T) {
	h := newHarness(t, 2, 1)
	s := h.server("s0", time.Hour)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		if err := s.Insert(context.Background(), randItem(rng)); err != nil {
			t.Fatal(err)
		}
	}
	// Kill worker 0.
	h.workers[0].Close()
	// Queries that need the dead worker fail with an error.
	failed := false
	for i := 0; i < 20; i++ {
		if _, _, err := s.Query(context.Background(), keys.AllRect(h.cfg.Schema)); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Skip("all data happened to land on the surviving worker")
	}
	// Inserts routed to the dead worker also fail cleanly.
	sawErr := false
	for i := 0; i < 50; i++ {
		if err := s.Insert(context.Background(), randItem(rng)); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Log("all inserts routed to the surviving worker")
	}
}

// TestGroupByDirect checks the server-side GroupBy math.
func TestGroupByDirect(t *testing.T) {
	h := newHarness(t, 1, 2)
	s := h.server("s0", time.Hour)
	// Insert one item per level-0 value of dimension 0 (fanout 10,
	// 10 leaves each).
	for v := uint64(0); v < 10; v++ {
		if err := s.Insert(context.Background(), core.Item{Coords: []uint64{v * 10, 0}, Measure: float64(v)}); err != nil {
			t.Fatal(err)
		}
	}
	groups, err := s.GroupBy(context.Background(), keys.AllRect(h.cfg.Schema), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 10 {
		t.Fatalf("groups = %d", len(groups))
	}
	for i, g := range groups {
		if g.Value != uint64(i) || g.Agg.Count != 1 || g.Agg.Sum != float64(i) {
			t.Fatalf("group %d = %+v", i, g)
		}
	}
	// Restricted base region clips groups.
	base := keys.AllRect(h.cfg.Schema)
	base.Ivs[0] = hierarchy.Interval{Lo: 25, Hi: 74} // values 2..7 (clipped)
	groups, err = s.GroupBy(context.Background(), base, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 6 {
		t.Fatalf("clipped groups = %d", len(groups))
	}
	if _, err := s.GroupBy(context.Background(), base, -1, 0); err == nil {
		t.Error("negative dim should fail")
	}
	if _, err := s.GroupBy(context.Background(), base, 0, 5); err == nil {
		t.Error("deep level should fail")
	}
}

// TestManagerDrivenSplitVisibleToServer wires manager + server: a split
// on the worker must propagate into the server image.
func TestManagerDrivenSplitVisibleToServer(t *testing.T) {
	h := newHarness(t, 2, 1)
	s := h.server("s0", time.Hour)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		if err := s.Insert(context.Background(), randItem(rng)); err != nil {
			t.Fatal(err)
		}
	}
	s.SyncNow()
	m, err := manager.New(manager.Options{Coord: h.store, Ratio: 1.1, MinMoveItems: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for pass := 0; pass < 10; pass++ {
		if _, err := m.RunPass(); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Splits+st.Migrations == 0 {
		t.Fatal("manager did nothing")
	}
	// The query still returns everything once the image converges.
	deadline := time.Now().Add(5 * time.Second)
	for {
		agg, _, err := s.Query(context.Background(), keys.AllRect(h.cfg.Schema))
		if err == nil && agg.Count == 2000 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query after balancing: %v %v", agg, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
