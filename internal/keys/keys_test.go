package keys

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hierarchy"
	"repro/internal/wire"
)

func iv(lo, hi uint64) hierarchy.Interval { return hierarchy.Interval{Lo: lo, Hi: hi} }

func testSchema(t *testing.T) *hierarchy.Schema {
	t.Helper()
	return hierarchy.MustSchema(
		hierarchy.MustDimension("A", hierarchy.Level{Name: "L1", Fanout: 10}, hierarchy.Level{Name: "L2", Fanout: 10}),
		hierarchy.MustDimension("B", hierarchy.Level{Name: "L1", Fanout: 50}),
	)
}

func TestKindString(t *testing.T) {
	if MBR.String() != "MBR" || MDS.String() != "MDS" {
		t.Error("Kind.String wrong")
	}
}

func TestRectBasics(t *testing.T) {
	s := testSchema(t)
	all := AllRect(s)
	if all.Ivs[0] != iv(0, 99) || all.Ivs[1] != iv(0, 49) {
		t.Errorf("AllRect = %v", all)
	}
	if got := all.CoverageFraction(s); got != 1.0 {
		t.Errorf("full coverage = %f", got)
	}
	r := NewRect(iv(0, 49), iv(0, 49))
	if got := r.CoverageFraction(s); got != 0.5 {
		t.Errorf("half coverage = %f", got)
	}
	if !r.ContainsPoint([]uint64{0, 0}) || r.ContainsPoint([]uint64{50, 0}) {
		t.Error("Rect.ContainsPoint wrong")
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestRectEncodeDecode(t *testing.T) {
	r := NewRect(iv(3, 17), iv(0, 49))
	w := wire.NewWriter(16)
	r.Encode(w)
	got, err := DecodeRect(wire.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Ivs[0] != r.Ivs[0] || got.Ivs[1] != r.Ivs[1] {
		t.Errorf("roundtrip %v -> %v", r, got)
	}
	if _, err := DecodeRect(wire.NewReader(w.Bytes()[:2])); err == nil {
		t.Error("truncated rect should fail")
	}
}

func TestEmptyKey(t *testing.T) {
	for _, kind := range []Kind{MBR, MDS} {
		k := NewEmpty(kind, 2, 0)
		if !k.Empty() || k.Dims() != 2 || k.Kind() != kind {
			t.Error("empty key basics wrong")
		}
		if k.ContainsPoint([]uint64{0, 0}) {
			t.Error("empty key contains nothing")
		}
		if k.OverlapsRect(NewRect(iv(0, 10), iv(0, 10))) {
			t.Error("empty key overlaps nothing")
		}
		if k.CoveredByRect(NewRect(iv(0, 10), iv(0, 10))) {
			t.Error("empty key is covered by nothing")
		}
		if k.Volume() != 0 {
			t.Error("empty volume should be 0")
		}
		if k.String() == "" {
			t.Error("String empty")
		}
	}
}

func TestPointKeyAndExtend(t *testing.T) {
	k := NewPoint(MBR, 0, []uint64{5, 7})
	if k.Empty() || !k.ContainsPoint([]uint64{5, 7}) {
		t.Fatal("point key wrong")
	}
	if k.Volume() != 1 {
		t.Errorf("point volume = %f", k.Volume())
	}
	k.ExtendPoint([]uint64{9, 7})
	// MBR: A spans [5,9], B spans [7,7].
	if !k.ContainsPoint([]uint64{7, 7}) {
		t.Error("MBR should cover the gap")
	}
	if k.Volume() != 5 {
		t.Errorf("MBR volume = %f", k.Volume())
	}

	m := NewPoint(MDS, 4, []uint64{5, 7})
	m.ExtendPoint([]uint64{9, 7})
	// MDS keeps the two A-values as separate intervals.
	if m.ContainsPoint([]uint64{7, 7}) {
		t.Error("MDS should not cover the gap")
	}
	if m.Volume() != 2 {
		t.Errorf("MDS volume = %f", m.Volume())
	}
	if !m.ContainsPoint([]uint64{5, 7}) || !m.ContainsPoint([]uint64{9, 7}) {
		t.Error("MDS lost a point")
	}
}

func TestMDSAdjacentMerge(t *testing.T) {
	k := NewPoint(MDS, 4, []uint64{5, 0})
	k.ExtendPoint([]uint64{6, 0})
	k.ExtendPoint([]uint64{4, 0})
	if got := len(k.Set(0)); got != 1 {
		t.Fatalf("adjacent ordinals should merge into one interval, got %d", got)
	}
	if k.Bounds(0) != iv(4, 6) {
		t.Errorf("Bounds = %v", k.Bounds(0))
	}
	// Fill a gap between two intervals.
	k.ExtendPoint([]uint64{9, 0})
	k.ExtendPoint([]uint64{8, 0})
	k.ExtendPoint([]uint64{7, 0})
	if got := len(k.Set(0)); got != 1 {
		t.Fatalf("gap fill should merge, got %d intervals: %v", got, k.Set(0))
	}
}

func TestMDSCapCoarsening(t *testing.T) {
	k := NewPoint(MDS, 3, []uint64{0, 0})
	for _, v := range []uint64{10, 20, 30, 40} {
		k.ExtendPoint([]uint64{v, 0})
	}
	if got := len(k.Set(0)); got > 3 {
		t.Fatalf("cap exceeded: %d intervals", got)
	}
	// Coverage must be preserved (superset).
	for _, v := range []uint64{0, 10, 20, 30, 40} {
		if !k.ContainsPoint([]uint64{v, 0}) {
			t.Errorf("lost coverage of %d after coarsening", v)
		}
	}
}

func TestExtendKeyAndUnion(t *testing.T) {
	a := NewPoint(MDS, 4, []uint64{1, 1})
	a.ExtendPoint([]uint64{3, 1})
	b := NewPoint(MDS, 4, []uint64{2, 5})
	a.ExtendKey(b)
	for _, p := range [][]uint64{{1, 1}, {3, 1}, {2, 5}} {
		if !a.ContainsPoint(p) {
			t.Errorf("union lost %v", p)
		}
	}
	// Extending with empty is a no-op; extending empty copies.
	e := NewEmpty(MDS, 2, 4)
	a2 := a.Clone()
	a.ExtendKey(e)
	if !a.Equal(a2) {
		t.Error("extend by empty changed key")
	}
	e.ExtendKey(a)
	if !e.Equal(a) {
		t.Error("extend of empty should copy")
	}
}

func TestOverlapsAndCoverage(t *testing.T) {
	k := NewPoint(MBR, 0, []uint64{10, 10})
	k.ExtendPoint([]uint64{20, 20})
	if !k.OverlapsRect(NewRect(iv(15, 30), iv(0, 15))) {
		t.Error("should overlap")
	}
	if k.OverlapsRect(NewRect(iv(21, 30), iv(0, 50))) {
		t.Error("should not overlap")
	}
	if !k.CoveredByRect(NewRect(iv(0, 30), iv(0, 30))) {
		t.Error("should be covered")
	}
	if k.CoveredByRect(NewRect(iv(0, 15), iv(0, 30))) {
		t.Error("should not be covered")
	}
}

func TestOverlapsKeyAndVolume(t *testing.T) {
	a := NewPoint(MBR, 0, []uint64{0, 0})
	a.ExtendPoint([]uint64{9, 9})
	b := NewPoint(MBR, 0, []uint64{5, 5})
	b.ExtendPoint([]uint64{14, 14})
	if !a.OverlapsKey(b) || !b.OverlapsKey(a) {
		t.Error("keys should overlap")
	}
	if got := a.OverlapVolume(b); got != 25 {
		t.Errorf("overlap volume = %f, want 25", got)
	}
	c := NewPoint(MBR, 0, []uint64{11, 0})
	if a.OverlapsKey(c) || a.OverlapVolume(c) != 0 {
		t.Error("disjoint keys should not overlap")
	}
	var empty = NewEmpty(MBR, 2, 0)
	if a.OverlapsKey(empty) || empty.OverlapVolume(a) != 0 {
		t.Error("empty overlap wrong")
	}
}

func TestEnlargementPoint(t *testing.T) {
	k := NewPoint(MBR, 0, []uint64{0, 0})
	k.ExtendPoint([]uint64{9, 9}) // 10x10 = 100
	if got := k.EnlargementPoint([]uint64{5, 5}); got != 0 {
		t.Errorf("inside point enlargement = %f", got)
	}
	// MBR semantics here are per-ordinal-set, so a new column adds one
	// cell in that dimension: 11*10 - 100 = 10.
	if got := k.EnlargementPoint([]uint64{10, 5}); got != 10 {
		t.Errorf("edge point enlargement = %f", got)
	}
	e := NewEmpty(MBR, 2, 0)
	if got := e.EnlargementPoint([]uint64{1, 1}); got != 1 {
		t.Errorf("empty enlargement = %f", got)
	}
}

func TestKeyEncodeDecode(t *testing.T) {
	k := NewPoint(MDS, 4, []uint64{1, 40})
	k.ExtendPoint([]uint64{17, 3})
	k.ExtendPoint([]uint64{90, 22})
	w := wire.NewWriter(64)
	k.Encode(w)
	got, err := DecodeKey(wire.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(k) {
		t.Errorf("roundtrip %v -> %v", k, got)
	}
	e := NewEmpty(MBR, 3, 0)
	w.Reset()
	e.Encode(w)
	got, err = DecodeKey(wire.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Empty() || got.Dims() != 3 {
		t.Error("empty key roundtrip wrong")
	}
	if _, err := DecodeKey(wire.NewReader([]byte{1})); err == nil {
		t.Error("truncated key should fail")
	}
}

func TestCopyFrom(t *testing.T) {
	a := NewPoint(MDS, 4, []uint64{1, 2})
	a.ExtendPoint([]uint64{7, 9})
	b := NewEmpty(MBR, 2, 0)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Error("CopyFrom not equal")
	}
	// Mutating b must not affect a.
	b.ExtendPoint([]uint64{50, 50})
	if a.ContainsPoint([]uint64{50, 50}) {
		t.Error("CopyFrom aliased storage")
	}
}

// TestKeyInvariants property-tests the central key invariants under random
// point extension: (1) every extended point stays contained, (2) volume
// never decreases, (3) MDS region ⊆ MBR region over the same points, and
// (4) interval sets stay sorted, disjoint, and within cap.
func TestKeyInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mbr := NewEmpty(MBR, 2, 0)
		mds := NewEmpty(MDS, 2, 4)
		pts := make([][]uint64, 0, 40)
		prevVol := 0.0
		for i := 0; i < 40; i++ {
			p := []uint64{uint64(rng.Intn(1000)), uint64(rng.Intn(1000))}
			pts = append(pts, p)
			mbr.ExtendPoint(p)
			mds.ExtendPoint(p)
			if v := mds.Volume(); v < prevVol {
				return false
			} else {
				prevVol = v
			}
			for _, q := range pts {
				if !mbr.ContainsPoint(q) || !mds.ContainsPoint(q) {
					return false
				}
			}
			for d := 0; d < 2; d++ {
				set := mds.Set(d)
				if len(set) > 4 {
					return false
				}
				for j := 0; j+1 < len(set); j++ {
					if set[j].Hi+1 >= set[j+1].Lo {
						return false // overlapping or adjacent
					}
				}
			}
			// MDS is a subset of MBR: MBR covers MDS's bounds.
			for d := 0; d < 2; d++ {
				if !mds.Bounds(d).CoveredBy(mbr.Bounds(d)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSetPrimitives covers the low-level interval set helpers directly.
func TestSetPrimitives(t *testing.T) {
	set := []hierarchy.Interval{iv(2, 4), iv(8, 10), iv(20, 20)}
	for _, tc := range []struct {
		ord  uint64
		want bool
	}{{2, true}, {4, true}, {5, false}, {10, true}, {19, false}, {20, true}, {21, false}} {
		if got := setContains(set, tc.ord); got != tc.want {
			t.Errorf("setContains(%d) = %v", tc.ord, got)
		}
	}
	if !setOverlapsInterval(set, iv(5, 8)) || setOverlapsInterval(set, iv(5, 7)) {
		t.Error("setOverlapsInterval wrong")
	}
	if setLen(set) != 3+3+1 {
		t.Errorf("setLen = %d", setLen(set))
	}
	other := []hierarchy.Interval{iv(0, 2), iv(9, 25)}
	if got := setIntersectLen(set, other); got != 1+2+1 {
		t.Errorf("setIntersectLen = %d", got)
	}
	if got := setIntersectLen(set, nil); got != 0 {
		t.Errorf("setIntersectLen(nil) = %d", got)
	}
	u := setUnion(set, other, 10)
	if setLen(u) != 23 { // [0,4] ∪ [8,25] = 5 + 18 = 23
		t.Errorf("setUnion covers %d: %v", setLen(u), u)
	}
}

func BenchmarkExtendPointMDS(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([][]uint64, 1024)
	for i := range pts {
		pts[i] = []uint64{uint64(rng.Intn(100000)), uint64(rng.Intn(100000)), uint64(rng.Intn(100000)), uint64(rng.Intn(100000))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := NewEmpty(MDS, 4, 4)
		for _, p := range pts {
			k.ExtendPoint(p)
		}
	}
}

func BenchmarkOverlapVolume(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := NewEmpty(MDS, 8, 4)
	c := NewEmpty(MDS, 8, 4)
	for i := 0; i < 100; i++ {
		p := make([]uint64, 8)
		q := make([]uint64, 8)
		for d := range p {
			p[d] = uint64(rng.Intn(100000))
			q[d] = uint64(rng.Intn(100000))
		}
		a.ExtendPoint(p)
		c.ExtendPoint(q)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.OverlapVolume(c)
	}
}
