package keys

import (
	"testing"

	"repro/internal/wire"
)

// FuzzDecodeKey feeds arbitrary bytes to the key decoder: it must reject
// or produce a structurally usable key, never panic.
func FuzzDecodeKey(f *testing.F) {
	k := NewPoint(MDS, 4, []uint64{3, 7, 11})
	k.ExtendPoint([]uint64{90, 2, 5})
	w := wire.NewWriter(64)
	k.Encode(w)
	f.Add(w.Bytes())
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		dk, err := DecodeKey(wire.NewReader(data))
		if err != nil {
			return
		}
		// Basic operations on any successfully decoded key must not
		// panic.
		_ = dk.Volume()
		_ = dk.Clone().Equal(dk)
		if !dk.Empty() && dk.Dims() > 0 {
			_ = dk.Bounds(0)
			pt := make([]uint64, dk.Dims())
			_ = dk.ContainsPoint(pt)
		}
	})
}

// FuzzDecodeRect does the same for query rectangles.
func FuzzDecodeRect(f *testing.F) {
	r := NewRect()
	w := wire.NewWriter(16)
	r.Encode(w)
	f.Add(w.Bytes())
	w2 := wire.NewWriter(32)
	NewRect().Encode(w2)
	f.Add([]byte{2, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		rect, err := DecodeRect(wire.NewReader(data))
		if err != nil {
			return
		}
		pt := make([]uint64, len(rect.Ivs))
		_ = rect.ContainsPoint(pt)
		_ = rect.String()
	})
}
