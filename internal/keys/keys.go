// Package keys implements the spatial keys used by VOLAP's tree
// structures: Minimum Bounding Rectangles (MBR, one box) and Minimum
// Describing Subsets (MDS, multiple boxes), per §III-A/§III-D of the
// paper.
//
// Both key kinds are expressed in leaf-ordinal space (see package
// hierarchy): because every hierarchy value is a contiguous interval of
// leaf ordinals, an MBR is one interval per dimension and an MDS is a
// small set of disjoint intervals per dimension. An MDS region is the
// cartesian product of its per-dimension unions, so containment, overlap
// and volume all decompose per dimension.
//
// MDS minimality is realized by merging adjacent intervals eagerly and, on
// overflow of the per-dimension cap, merging the pair of intervals with
// the smallest gap — a superset-preserving coarsening, so keys always
// describe at least the data below them (the invariant queries rely on).
package keys

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/hierarchy"
	"repro/internal/wire"
)

// Kind selects the key representation.
type Kind uint8

const (
	// MDS keys keep up to a configurable number of intervals per
	// dimension. MDS is the zero value: it is what the paper's preferred
	// store variants use.
	MDS Kind = iota
	// MBR keys keep a single interval per dimension.
	MBR
)

// String returns "MBR" or "MDS".
func (k Kind) String() string {
	if k == MBR {
		return "MBR"
	}
	return "MDS"
}

// DefaultMDSCap is the default per-dimension interval cap for MDS keys.
const DefaultMDSCap = 4

// Rect is a query region: one hierarchy-value interval per dimension
// (possibly the All interval). Queries in VOLAP specify a value at some
// level in every dimension (§IV), which is exactly one ordinal interval
// per dimension.
type Rect struct {
	Ivs []hierarchy.Interval
}

// NewRect returns a Rect over the given intervals.
func NewRect(ivs ...hierarchy.Interval) Rect {
	return Rect{Ivs: ivs}
}

// AllRect returns the rectangle covering the entire space of the schema.
func AllRect(s *hierarchy.Schema) Rect {
	ivs := make([]hierarchy.Interval, s.NumDims())
	for i := range ivs {
		ivs[i] = hierarchy.Interval{Lo: 0, Hi: s.Dim(i).LeafCount() - 1}
	}
	return Rect{Ivs: ivs}
}

// ContainsPoint reports whether the point lies inside the rectangle.
func (r Rect) ContainsPoint(coords []uint64) bool {
	for d, iv := range r.Ivs {
		if !iv.Contains(coords[d]) {
			return false
		}
	}
	return true
}

// CoverageFraction returns the fraction of the schema's full space the
// rectangle covers — the paper's "query coverage".
func (r Rect) CoverageFraction(s *hierarchy.Schema) float64 {
	frac := 1.0
	for d, iv := range r.Ivs {
		frac *= float64(iv.Len()) / float64(s.Dim(d).LeafCount())
	}
	return frac
}

// Encode serializes the rectangle.
func (r Rect) Encode(w *wire.Writer) {
	w.Uvarint(uint64(len(r.Ivs)))
	for _, iv := range r.Ivs {
		w.Uvarint(iv.Lo)
		w.Uvarint(iv.Hi - iv.Lo)
	}
}

// DecodeRect reads a rectangle serialized by Encode.
func DecodeRect(rd *wire.Reader) (Rect, error) {
	n := rd.Uvarint()
	if rd.Err() != nil || n > 64 {
		return Rect{}, fmt.Errorf("keys: bad rect dimension count %d", n)
	}
	ivs := make([]hierarchy.Interval, n)
	for i := range ivs {
		lo := rd.Uvarint()
		span := rd.Uvarint()
		ivs[i] = hierarchy.Interval{Lo: lo, Hi: lo + span}
	}
	if rd.Err() != nil {
		return Rect{}, rd.Err()
	}
	return Rect{Ivs: ivs}, nil
}

// String renders the rectangle.
func (r Rect) String() string {
	parts := make([]string, len(r.Ivs))
	for i, iv := range r.Ivs {
		parts[i] = fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
	}
	return strings.Join(parts, "×")
}

// Key is a spatial key: the bounding description of a set of points. A Key
// is either empty (describes nothing) or covers the cartesian product of
// its per-dimension interval unions. Keys are not safe for concurrent
// mutation; tree nodes guard them with their own locks.
type Key struct {
	kind  Kind
	cap   int
	empty bool
	sets  [][]hierarchy.Interval // per dim, sorted, disjoint, non-adjacent
}

// NewEmpty returns an empty key for the given kind and dimension count.
// For MDS keys, capPerDim bounds the number of intervals kept per
// dimension (0 selects DefaultMDSCap); MBR keys always keep one.
func NewEmpty(kind Kind, dims, capPerDim int) *Key {
	if kind == MBR {
		capPerDim = 1
	} else if capPerDim <= 0 {
		capPerDim = DefaultMDSCap
	}
	return &Key{kind: kind, cap: capPerDim, empty: true, sets: make([][]hierarchy.Interval, dims)}
}

// NewPoint returns a key describing exactly one point.
func NewPoint(kind Kind, capPerDim int, coords []uint64) *Key {
	k := NewEmpty(kind, len(coords), capPerDim)
	k.ExtendPoint(coords)
	return k
}

// Kind returns the key's representation kind.
func (k *Key) Kind() Kind { return k.kind }

// Dims returns the number of dimensions.
func (k *Key) Dims() int { return len(k.sets) }

// Empty reports whether the key describes no points.
func (k *Key) Empty() bool { return k.empty }

// Clone returns a deep copy.
func (k *Key) Clone() *Key {
	c := &Key{kind: k.kind, cap: k.cap, empty: k.empty, sets: make([][]hierarchy.Interval, len(k.sets))}
	for d, set := range k.sets {
		c.sets[d] = append([]hierarchy.Interval(nil), set...)
	}
	return c
}

// CopyFrom overwrites k with o's contents, reusing k's storage.
func (k *Key) CopyFrom(o *Key) {
	k.kind, k.cap, k.empty = o.kind, o.cap, o.empty
	if len(k.sets) != len(o.sets) {
		k.sets = make([][]hierarchy.Interval, len(o.sets))
	}
	for d, set := range o.sets {
		k.sets[d] = append(k.sets[d][:0], set...)
	}
}

// Set returns the interval set of dimension d (aliased, do not mutate).
func (k *Key) Set(d int) []hierarchy.Interval { return k.sets[d] }

// Bounds returns the overall [min,max] interval of dimension d. The key
// must not be empty.
func (k *Key) Bounds(d int) hierarchy.Interval {
	set := k.sets[d]
	return hierarchy.Interval{Lo: set[0].Lo, Hi: set[len(set)-1].Hi}
}

// ContainsPoint reports whether the point lies inside the key's region.
func (k *Key) ContainsPoint(coords []uint64) bool {
	if k.empty {
		return false
	}
	for d, set := range k.sets {
		if !setContains(set, coords[d]) {
			return false
		}
	}
	return true
}

// OverlapsRect reports whether the key's region intersects the rectangle.
func (k *Key) OverlapsRect(r Rect) bool {
	if k.empty {
		return false
	}
	for d, set := range k.sets {
		if !setOverlapsInterval(set, r.Ivs[d]) {
			return false
		}
	}
	return true
}

// CoveredByRect reports whether the key's region lies entirely inside the
// rectangle; when true, a node's cached aggregate can answer the query
// without descending (§III-D).
func (k *Key) CoveredByRect(r Rect) bool {
	if k.empty {
		return false
	}
	for d, set := range k.sets {
		if set[0].Lo < r.Ivs[d].Lo || set[len(set)-1].Hi > r.Ivs[d].Hi {
			return false
		}
	}
	return true
}

// CoveredByKey reports whether k's region lies entirely inside o's
// region. Regions are cartesian products, so this holds exactly when
// every per-dimension set of k is a subset of o's.
func (k *Key) CoveredByKey(o *Key) bool {
	if k.empty {
		return true
	}
	if o.empty {
		return false
	}
	for d := range k.sets {
		if setIntersectLen(k.sets[d], o.sets[d]) != setLen(k.sets[d]) {
			return false
		}
	}
	return true
}

// OverlapsKey reports whether two key regions intersect.
func (k *Key) OverlapsKey(o *Key) bool {
	if k.empty || o.empty {
		return false
	}
	for d := range k.sets {
		if setIntersectLen(k.sets[d], o.sets[d]) == 0 {
			return false
		}
	}
	return true
}

// ExtendPoint grows the key minimally to include the point.
func (k *Key) ExtendPoint(coords []uint64) {
	if k.empty {
		for d, c := range coords {
			k.sets[d] = append(k.sets[d][:0], hierarchy.Interval{Lo: c, Hi: c})
		}
		k.empty = false
		return
	}
	for d, c := range coords {
		k.sets[d] = setAddOrdinal(k.sets[d], c, k.cap)
	}
}

// ExtendKey grows the key minimally to include o's region.
func (k *Key) ExtendKey(o *Key) {
	if o.empty {
		return
	}
	if k.empty {
		k.CopyFrom(o)
		return
	}
	for d := range k.sets {
		k.sets[d] = setUnion(k.sets[d], o.sets[d], k.cap)
	}
}

// Volume returns the number of grid cells covered by the key's region, as
// a float64 (regions are cartesian products, so this is the product of
// per-dimension covered lengths).
func (k *Key) Volume() float64 {
	if k.empty {
		return 0
	}
	v := 1.0
	for _, set := range k.sets {
		v *= float64(setLen(set))
	}
	return v
}

// OverlapVolume returns the volume of the intersection of two key regions.
func (k *Key) OverlapVolume(o *Key) float64 {
	if k.empty || o.empty {
		return 0
	}
	v := 1.0
	for d := range k.sets {
		l := setIntersectLen(k.sets[d], o.sets[d])
		if l == 0 {
			return 0
		}
		v *= float64(l)
	}
	return v
}

// EnlargementPoint returns the volume increase caused by extending the key
// to include the point, without mutating the key.
func (k *Key) EnlargementPoint(coords []uint64) float64 {
	if k.empty {
		return 1
	}
	before, after := 1.0, 1.0
	for d, set := range k.sets {
		l := setLen(set)
		before *= float64(l)
		if setContains(set, coords[d]) {
			after *= float64(l)
		} else {
			after *= float64(l + 1) // one new cell in this dimension
		}
	}
	return after - before
}

// Equal reports whether two keys describe the same region.
func (k *Key) Equal(o *Key) bool {
	if k.empty != o.empty || len(k.sets) != len(o.sets) {
		return false
	}
	if k.empty {
		return true
	}
	for d := range k.sets {
		if len(k.sets[d]) != len(o.sets[d]) {
			return false
		}
		for i := range k.sets[d] {
			if k.sets[d][i] != o.sets[d][i] {
				return false
			}
		}
	}
	return true
}

// String renders the key.
func (k *Key) String() string {
	if k.empty {
		return k.kind.String() + "{empty}"
	}
	var sb strings.Builder
	sb.WriteString(k.kind.String())
	sb.WriteByte('{')
	for d, set := range k.sets {
		if d > 0 {
			sb.WriteString(" × ")
		}
		for i, iv := range set {
			if i > 0 {
				sb.WriteRune('∪')
			}
			fmt.Fprintf(&sb, "[%d,%d]", iv.Lo, iv.Hi)
		}
	}
	sb.WriteByte('}')
	return sb.String()
}

// Encode serializes the key.
func (k *Key) Encode(w *wire.Writer) {
	w.Uint8(uint8(k.kind))
	w.Uvarint(uint64(k.cap))
	w.Bool(k.empty)
	w.Uvarint(uint64(len(k.sets)))
	for _, set := range k.sets {
		w.Uvarint(uint64(len(set)))
		prev := uint64(0)
		for _, iv := range set {
			w.Uvarint(iv.Lo - prev)
			w.Uvarint(iv.Hi - iv.Lo)
			prev = iv.Hi
		}
	}
}

// DecodeKey reads a key serialized by Encode, validating the structural
// invariants the rest of the package relies on: a non-empty key has at
// least one interval in every dimension, and each dimension's intervals
// are sorted, disjoint, and non-adjacent.
func DecodeKey(rd *wire.Reader) (*Key, error) {
	kind := Kind(rd.Uint8())
	cp := rd.Uvarint()
	empty := rd.Bool()
	dims := rd.Uvarint()
	if rd.Err() != nil || dims > 64 || kind > MBR {
		return nil, fmt.Errorf("keys: bad key header (dims=%d)", dims)
	}
	k := &Key{kind: kind, cap: int(cp), empty: empty, sets: make([][]hierarchy.Interval, dims)}
	for d := range k.sets {
		n := rd.Uvarint()
		if rd.Err() != nil || n > 1<<20 || uint64(rd.Remaining()) < n {
			return nil, fmt.Errorf("keys: bad interval count %d", n)
		}
		if empty && n != 0 {
			return nil, fmt.Errorf("keys: empty key with %d intervals", n)
		}
		if !empty && n == 0 {
			return nil, fmt.Errorf("keys: non-empty key with empty dimension %d", d)
		}
		set := make([]hierarchy.Interval, n)
		prev := uint64(0)
		for i := range set {
			gap := rd.Uvarint()
			if i > 0 && gap < 2 {
				// Adjacent or overlapping intervals are never produced by
				// the encoder (they would have been merged).
				return nil, fmt.Errorf("keys: intervals not disjoint in dimension %d", d)
			}
			lo := prev + gap
			if lo < prev {
				return nil, fmt.Errorf("keys: interval overflow in dimension %d", d)
			}
			span := rd.Uvarint()
			hi := lo + span
			if hi < lo {
				return nil, fmt.Errorf("keys: interval overflow in dimension %d", d)
			}
			set[i] = hierarchy.Interval{Lo: lo, Hi: hi}
			prev = hi
		}
		k.sets[d] = set
	}
	if rd.Err() != nil {
		return nil, rd.Err()
	}
	return k, nil
}

// --- interval set primitives -------------------------------------------
//
// Sets are sorted by Lo, pairwise disjoint, and never adjacent (adjacent
// runs are merged eagerly), so binary search applies.

// setContains reports whether ord falls inside any interval of the set.
func setContains(set []hierarchy.Interval, ord uint64) bool {
	i := sort.Search(len(set), func(i int) bool { return set[i].Hi >= ord })
	return i < len(set) && set[i].Lo <= ord
}

// setOverlapsInterval reports whether any interval of the set intersects iv.
func setOverlapsInterval(set []hierarchy.Interval, iv hierarchy.Interval) bool {
	i := sort.Search(len(set), func(i int) bool { return set[i].Hi >= iv.Lo })
	return i < len(set) && set[i].Lo <= iv.Hi
}

// setLen returns the total number of ordinals covered by the set.
func setLen(set []hierarchy.Interval) uint64 {
	var n uint64
	for _, iv := range set {
		n += iv.Len()
	}
	return n
}

// setIntersectLen returns the number of ordinals covered by both sets.
func setIntersectLen(a, b []hierarchy.Interval) uint64 {
	var n uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := max64(a[i].Lo, b[j].Lo)
		hi := min64(a[i].Hi, b[j].Hi)
		if lo <= hi {
			n += hi - lo + 1
		}
		if a[i].Hi < b[j].Hi {
			i++
		} else {
			j++
		}
	}
	return n
}

// setAddOrdinal inserts a single ordinal, merging with neighbors and
// coarsening to the cap.
func setAddOrdinal(set []hierarchy.Interval, ord uint64, cap int) []hierarchy.Interval {
	i := sort.Search(len(set), func(i int) bool { return set[i].Hi >= ord })
	if i < len(set) && set[i].Lo <= ord {
		return set // already covered
	}
	// Try to attach to the interval ending just before or starting just
	// after ord.
	if i > 0 && set[i-1].Hi+1 == ord {
		set[i-1].Hi = ord
		// May now touch set[i].
		if i < len(set) && set[i].Lo == ord+1 {
			set[i-1].Hi = set[i].Hi
			set = append(set[:i], set[i+1:]...)
		}
		return set
	}
	if i < len(set) && set[i].Lo == ord+1 {
		set[i].Lo = ord
		return set
	}
	set = append(set, hierarchy.Interval{})
	copy(set[i+1:], set[i:])
	set[i] = hierarchy.Interval{Lo: ord, Hi: ord}
	return coarsen(set, cap)
}

// setUnion merges two sets, coalescing overlaps/adjacency and coarsening
// to the cap.
func setUnion(a, b []hierarchy.Interval, cap int) []hierarchy.Interval {
	out := make([]hierarchy.Interval, 0, len(a)+len(b))
	i, j := 0, 0
	push := func(iv hierarchy.Interval) {
		if n := len(out); n > 0 && iv.Lo <= out[n-1].Hi+1 {
			if iv.Hi > out[n-1].Hi {
				out[n-1].Hi = iv.Hi
			}
			return
		}
		out = append(out, iv)
	}
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i].Lo <= b[j].Lo):
			push(a[i])
			i++
		default:
			push(b[j])
			j++
		}
	}
	return coarsen(out, cap)
}

// coarsen merges the closest-gap interval pairs until the set fits the
// cap. The result is a superset of the input's coverage.
func coarsen(set []hierarchy.Interval, cap int) []hierarchy.Interval {
	for len(set) > cap {
		best, bestGap := 0, uint64(1)<<63
		for i := 0; i+1 < len(set); i++ {
			gap := set[i+1].Lo - set[i].Hi
			if gap < bestGap {
				best, bestGap = i, gap
			}
		}
		set[best].Hi = set[best+1].Hi
		set = append(set[:best+1], set[best+2:]...)
	}
	return set
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
