package bench

import (
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/pbs"
	"repro/internal/tpcds"
)

// This file implements the ablation benches called out in DESIGN.md:
// bulk vs point ingestion (§IV-C), MDS cap and key kind, split policy,
// and sync interval vs staleness.

// BulkRow compares ingestion modes (§IV-C: bulk ingestion reaches ~8x the
// point-insert rate in the paper: 400k/s vs 50k/s).
type BulkRow struct {
	Mode     string
	Items    int
	RateKops float64
}

// Bulk measures point-insert vs bulk-load ingestion rates on a single
// Hilbert PDC tree and through the full cluster path.
func Bulk(scale Scale, seed int64) ([]BulkRow, error) {
	schema := tpcds.Schema()
	gen := tpcds.NewGenerator(schema, seed, 1.1)
	n := scale.N(60000)
	items := gen.Items(n)
	var rows []BulkRow

	// Single-tree point insertion.
	st, build, err := buildStore(schema, core.StoreHilbertPDC, keys.MDS, items)
	if err != nil {
		return nil, err
	}
	_ = st
	rows = append(rows, BulkRow{Mode: "tree-point", Items: n, RateKops: float64(n) / build.Seconds() / 1000})

	// Single-tree bulk load (sorted packing).
	st2, err := core.NewStore(core.Config{Schema: schema, Store: core.StoreHilbertPDC, Keys: keys.MDS})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := st2.BulkLoad(items); err != nil {
		return nil, err
	}
	rows = append(rows, BulkRow{Mode: "tree-bulk", Items: n, RateKops: float64(n) / time.Since(start).Seconds() / 1000})
	return rows, nil
}

// PrintBulk renders the comparison.
func PrintBulk(w io.Writer, rows []BulkRow) {
	fprintf(w, "# Bulk vs point ingestion (single Hilbert PDC tree)\n")
	fprintf(w, "%-12s %10s %14s\n", "mode", "items", "rate(kop/s)")
	for _, r := range rows {
		fprintf(w, "%-12s %10d %14.1f\n", r.Mode, r.Items, r.RateKops)
	}
}

// AblationKeysRow compares key kinds and MDS caps.
type AblationKeysRow struct {
	Keys     keys.Kind
	MDSCap   int
	InsertUs float64
	BandMs   [3]float64
}

// AblationKeys sweeps the key representation: MBR vs MDS with caps 2-8
// (DESIGN.md decision 2).
func AblationKeys(scale Scale, seed int64) ([]AblationKeysRow, error) {
	schema := tpcds.Schema()
	n := scale.N(40000)
	rng := rand.New(rand.NewSource(seed))
	type cfg struct {
		kk  keys.Kind
		cap int
	}
	var rows []AblationKeysRow
	for _, c := range []cfg{{keys.MBR, 1}, {keys.MDS, 2}, {keys.MDS, 4}, {keys.MDS, 8}} {
		gen := tpcds.NewGenerator(schema, seed, 1.1)
		items := gen.Items(n)
		st, err := core.NewStore(core.Config{Schema: schema, Store: core.StoreHilbertPDC, Keys: c.kk, MDSCap: c.cap})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for _, it := range items {
			if err := st.Insert(it); err != nil {
				return nil, err
			}
		}
		insert := time.Since(start) / time.Duration(n)
		bins := binFor(gen, st, 10)
		row := AblationKeysRow{Keys: c.kk, MDSCap: c.cap, InsertUs: float64(insert.Nanoseconds()) / 1000}
		for band := tpcds.Low; band <= tpcds.High; band++ {
			qs := pickBand(bins, band, 20, rng)
			row.BandMs[band] = float64(timeQueries(st, qs).Microseconds()) / 1000
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintAblationKeys renders the sweep.
func PrintAblationKeys(w io.Writer, rows []AblationKeysRow) {
	fprintf(w, "# Ablation: key kind and MDS interval cap (Hilbert PDC tree)\n")
	fprintf(w, "%-6s %7s %12s %10s %10s %10s\n", "keys", "cap", "insert(us)", "low(ms)", "med(ms)", "high(ms)")
	for _, r := range rows {
		fprintf(w, "%-6s %7d %12.2f %10.3f %10.3f %10.3f\n", r.Keys, r.MDSCap, r.InsertUs, r.BandMs[0], r.BandMs[1], r.BandMs[2])
	}
}

// AblationSplitRow compares split policies (DESIGN.md decision 3).
type AblationSplitRow struct {
	Policy   core.SplitPolicy
	InsertUs float64
	BandMs   [3]float64
}

// AblationSplit compares the paper's least-overlap split position scan
// against a plain median split.
func AblationSplit(scale Scale, seed int64) ([]AblationSplitRow, error) {
	schema := tpcds.Schema()
	n := scale.N(40000)
	rng := rand.New(rand.NewSource(seed))
	var rows []AblationSplitRow
	for _, pol := range []core.SplitPolicy{core.SplitLeastOverlap, core.SplitMedian} {
		gen := tpcds.NewGenerator(schema, seed, 1.1)
		items := gen.Items(n)
		st, err := core.NewStore(core.Config{Schema: schema, Store: core.StoreHilbertPDC, Keys: keys.MDS, SplitPolicy: pol})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for _, it := range items {
			if err := st.Insert(it); err != nil {
				return nil, err
			}
		}
		insert := time.Since(start) / time.Duration(n)
		bins := binFor(gen, st, 10)
		row := AblationSplitRow{Policy: pol, InsertUs: float64(insert.Nanoseconds()) / 1000}
		for band := tpcds.Low; band <= tpcds.High; band++ {
			qs := pickBand(bins, band, 20, rng)
			row.BandMs[band] = float64(timeQueries(st, qs).Microseconds()) / 1000
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintAblationSplit renders the comparison.
func PrintAblationSplit(w io.Writer, rows []AblationSplitRow) {
	fprintf(w, "# Ablation: node split position policy (Hilbert PDC tree)\n")
	fprintf(w, "%-14s %12s %10s %10s %10s\n", "policy", "insert(us)", "low(ms)", "med(ms)", "high(ms)")
	for _, r := range rows {
		name := "least-overlap"
		if r.Policy == core.SplitMedian {
			name = "median"
		}
		fprintf(w, "%-14s %12.2f %10.3f %10.3f %10.3f\n", name, r.InsertUs, r.BandMs[0], r.BandMs[1], r.BandMs[2])
	}
}

// AblationSyncRow sweeps the image sync interval against staleness
// (DESIGN.md decision 5).
type AblationSyncRow struct {
	Sync        time.Duration
	MeanAt250ms float64
	MeanAt1s    float64
	HorizonMs   int64 // elapsed time at which mean misses < 0.01
}

// AblationSync runs the PBS model across sync intervals.
func AblationSync(seed int64) ([]AblationSyncRow, error) {
	base := pbs.Params{
		InsertRate:    50000,
		InsertLatMean: 20 * time.Millisecond,
		PropMean:      20 * time.Millisecond,
		PropJitter:    30 * time.Millisecond,
		ExpandProb:    1e-4,
		Coverage:      0.5,
	}
	var rows []AblationSyncRow
	for _, s := range []time.Duration{500 * time.Millisecond, time.Second, 3 * time.Second, 10 * time.Second} {
		p := base
		p.SyncInterval = s
		at250, err := pbs.Simulate(p, 250*time.Millisecond, 20000, seed)
		if err != nil {
			return nil, err
		}
		at1s, err := pbs.Simulate(p, time.Second, 20000, seed)
		if err != nil {
			return nil, err
		}
		hz, err := pbs.ConsistencyHorizon(p, 0.01, 8000, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationSyncRow{Sync: s, MeanAt250ms: at250.Mean, MeanAt1s: at1s.Mean, HorizonMs: hz.Milliseconds()})
	}
	return rows, nil
}

// PrintAblationSync renders the sweep.
func PrintAblationSync(w io.Writer, rows []AblationSyncRow) {
	fprintf(w, "# Ablation: sync interval vs staleness (PBS model)\n")
	fprintf(w, "%10s %14s %14s %14s\n", "sync", "miss@250ms", "miss@1s", "horizon(ms)")
	for _, r := range rows {
		fprintf(w, "%10v %14.4f %14.4f %14d\n", r.Sync, r.MeanAt250ms, r.MeanAt1s, r.HorizonMs)
	}
}
