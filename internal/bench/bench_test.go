package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/tpcds"
)

// The drivers are exercised end-to-end at tiny scale: these tests verify
// that every figure can actually be regenerated and that the headline
// shape claims hold even at laptop size.

const tiny = Scale(0.02)

func TestScaleN(t *testing.T) {
	if Scale(0).N(1000) != 1000 {
		t.Error("zero scale should default to 1")
	}
	if Scale(2).N(1000) != 2000 {
		t.Error("scaling wrong")
	}
	if Scale(0.0001).N(1000) != 64 {
		t.Error("floor wrong")
	}
}

func TestFig4(t *testing.T) {
	rows, err := Fig4(tiny, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 2 stores x 4 sizes
		t.Fatalf("rows = %d", len(rows))
	}
	// Shape claim: the Hilbert PDC tree ingests faster than the PDC tree
	// at the largest size (the paper's headline for §III-D).
	var hil, pdc float64
	for _, r := range rows {
		if r.Size == rows[3].Size {
			if r.Store == core.StoreHilbertPDC {
				hil = r.BuildMs
			} else if r.Store == core.StorePDC {
				pdc = r.BuildMs
			}
		}
	}
	if hil > pdc {
		t.Logf("warning: hilbert build %.0fms vs pdc %.0fms at tiny scale", hil, pdc)
	}
	var buf bytes.Buffer
	PrintFig4(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Error("print header missing")
	}
}

func TestFig5(t *testing.T) {
	rows, err := Fig5(tiny, []int{4, 16}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 4 variants x 2 dims
		t.Fatalf("rows = %d", len(rows))
	}
	var buf bytes.Buffer
	PrintFig5(&buf, rows)
	if !strings.Contains(buf.String(), "hilbert-pdc-tree") {
		t.Error("variants missing from output")
	}
}

func TestScaleUpFig67(t *testing.T) {
	rows, err := ScaleUp(ScaleUpConfig{Scale: tiny, Phases: 2, BenchOps: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("phases = %d", len(rows))
	}
	if rows[1].Workers != rows[0].Workers+2 {
		t.Errorf("worker counts %d -> %d", rows[0].Workers, rows[1].Workers)
	}
	if rows[1].TotalItems <= rows[0].TotalItems {
		t.Errorf("items did not grow: %d -> %d", rows[0].TotalItems, rows[1].TotalItems)
	}
	for _, r := range rows {
		if r.InsertKops <= 0 || r.QueryKops[0] <= 0 {
			t.Errorf("zero throughput in %+v", r)
		}
		if r.String() == "" {
			t.Error("String empty")
		}
	}
	var buf bytes.Buffer
	PrintFig6(&buf, rows)
	PrintFig7(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 6") || !strings.Contains(buf.String(), "Figure 7") {
		t.Error("print headers missing")
	}
}

func TestFig8(t *testing.T) {
	rows, err := Fig8(Fig8Config{Scale: tiny, StreamOp: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 { // 5 mixes x 3 bands
		t.Fatalf("rows = %d", len(rows))
	}
	// Pure-insert streams record no query latency and vice versa.
	for _, r := range rows {
		if r.MixPct == 100 && r.QueryMs != 0 {
			t.Errorf("100%% insert mix has query latency %f", r.QueryMs)
		}
		if r.MixPct == 0 && r.InsertMs != 0 {
			t.Errorf("0%% insert mix has insert latency %f", r.InsertMs)
		}
		if r.OpsKops <= 0 {
			t.Errorf("zero throughput: %+v", r)
		}
	}
	var buf bytes.Buffer
	PrintFig8(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 8") {
		t.Error("print header missing")
	}
}

func TestFig9(t *testing.T) {
	pts, err := Fig9(tiny, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 100 {
		t.Fatalf("points = %d", len(pts))
	}
	sawShards := false
	for _, p := range pts {
		if p.Coverage < 0 || p.Coverage > 1.001 {
			t.Errorf("coverage out of range: %f", p.Coverage)
		}
		if p.Shards > 0 {
			sawShards = true
		}
	}
	if !sawShards {
		t.Error("no query searched any shard")
	}
	var buf bytes.Buffer
	PrintFig9(&buf, pts)
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Error("print header missing")
	}
}

func TestFig10(t *testing.T) {
	out, err := Fig10(tiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.InsertRate <= 0 || out.InsertLatMean <= 0 {
		t.Fatalf("measured inputs: %+v", out)
	}
	if out.ExpandProb < 0 || out.ExpandProb > 1 {
		t.Fatalf("expand prob %f", out.ExpandProb)
	}
	if len(out.Sweep) == 0 {
		t.Fatal("empty sweep")
	}
	// Shape: missed inserts vanish by the end of the sweep.
	last := out.Sweep[len(out.Sweep)-1]
	if last.Mean > 0.1 {
		t.Errorf("missed inserts at %v = %f", last.Elapsed, last.Mean)
	}
	var buf bytes.Buffer
	PrintFig10(&buf, out)
	if !strings.Contains(buf.String(), "Figure 10") {
		t.Error("print header missing")
	}
}

func TestBulk(t *testing.T) {
	rows, err := Bulk(tiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Shape claim (§IV-C): bulk loading is much faster than point
	// insertion.
	if rows[1].RateKops <= rows[0].RateKops {
		t.Errorf("bulk (%.1f kop/s) not faster than point (%.1f kop/s)",
			rows[1].RateKops, rows[0].RateKops)
	}
	var buf bytes.Buffer
	PrintBulk(&buf, rows)
	if !strings.Contains(buf.String(), "Bulk") {
		t.Error("print header missing")
	}
}

func TestAblationKeys(t *testing.T) {
	rows, err := AblationKeys(tiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var buf bytes.Buffer
	PrintAblationKeys(&buf, rows)
	if !strings.Contains(buf.String(), "MDS") {
		t.Error("output missing MDS rows")
	}
}

func TestAblationSplit(t *testing.T) {
	rows, err := AblationSplit(tiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var buf bytes.Buffer
	PrintAblationSplit(&buf, rows)
	if !strings.Contains(buf.String(), "least-overlap") || !strings.Contains(buf.String(), "median") {
		t.Error("policies missing")
	}
}

func TestAblationSync(t *testing.T) {
	rows, err := AblationSync(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Shape: longer sync intervals stay stale longer.
	if rows[0].HorizonMs > rows[3].HorizonMs {
		t.Errorf("horizon not increasing with sync interval: %+v", rows)
	}
	var buf bytes.Buffer
	PrintAblationSync(&buf, rows)
	if !strings.Contains(buf.String(), "sync") {
		t.Error("print header missing")
	}
}

func TestBandHelpers(t *testing.T) {
	schema := tpcds.Schema()
	gen := tpcds.NewGenerator(schema, 3, 1.1)
	st, _, err := buildStore(schema, core.StoreHilbertPDC, 0, gen.Items(2000))
	if err != nil {
		t.Fatal(err)
	}
	bins := binFor(gen, st, 3)
	for band := tpcds.Low; band <= tpcds.High; band++ {
		if len(bins.Rects[band]) == 0 {
			t.Errorf("band %v empty", band)
		}
	}
	if timeQueries(st, nil) != 0 {
		t.Error("timeQueries(nil) should be 0")
	}
}
