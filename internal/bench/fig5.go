package bench

import (
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/keys"
	"repro/internal/rtree"
	"repro/internal/tpcds"
)

// Fig5Variant names one of the four tree variants of Figure 5.
type Fig5Variant string

// The four variants compared in Figure 5.
const (
	VariantRTree      Fig5Variant = "r-tree"
	VariantHilbertRT  Fig5Variant = "hilbert-r-tree"
	VariantPDC        Fig5Variant = "pdc-tree"
	VariantHilbertPDC Fig5Variant = "hilbert-pdc-tree"
)

// Fig5Row is one point of Figure 5: insert and query latency at a given
// dimension count.
type Fig5Row struct {
	Variant  Fig5Variant
	Dims     int
	InsertUs float64 // mean insert latency (µs)
	QueryMs  float64 // mean query latency (ms)
}

// Fig5 reproduces Figure 5: "Performance of tree variants as the number
// of dimensions is increased" — R-tree, Hilbert R-tree, PDC tree and
// Hilbert PDC tree, d = 4…64, synthetic uniform hierarchies.
func Fig5(scale Scale, dims []int, seed int64) ([]Fig5Row, error) {
	if len(dims) == 0 {
		dims = []int{4, 8, 16, 32, 48, 64}
	}
	n := scale.N(10000)
	queries := 20
	var rows []Fig5Row
	for _, d := range dims {
		schema := tpcds.SyntheticSchema(d, 2, 8)
		gen := tpcds.NewGenerator(schema, seed, 1.0)
		items := gen.Items(n)
		qs := makeFig5Queries(schema, gen, queries)

		for _, variant := range []Fig5Variant{VariantRTree, VariantHilbertRT, VariantPDC, VariantHilbertPDC} {
			insert, query, err := runFig5Variant(variant, schema, items, qs)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig5Row{
				Variant:  variant,
				Dims:     d,
				InsertUs: float64(insert.Nanoseconds()) / 1000,
				QueryMs:  float64(query.Microseconds()) / 1000,
			})
		}
	}
	return rows, nil
}

// makeFig5Queries draws mid-level queries that exercise pruning.
func makeFig5Queries(schema *hierarchy.Schema, gen *tpcds.Generator, n int) []keys.Rect {
	out := make([]keys.Rect, 0, n)
	for len(out) < n {
		out = append(out, gen.Query())
	}
	return out
}

func runFig5Variant(v Fig5Variant, schema *hierarchy.Schema, items []core.Item, qs []keys.Rect) (insertMean, queryMean time.Duration, err error) {
	switch v {
	case VariantRTree, VariantHilbertRT:
		kind := rtree.Classic
		if v == VariantHilbertRT {
			kind = rtree.HilbertRT
		}
		t, err := rtree.New(rtree.Config{Schema: schema, Kind: kind})
		if err != nil {
			return 0, 0, err
		}
		start := time.Now()
		for _, it := range items {
			if err := t.Insert(it); err != nil {
				return 0, 0, err
			}
		}
		insertMean = time.Since(start) / time.Duration(len(items))
		start = time.Now()
		for _, q := range qs {
			t.Query(q)
		}
		queryMean = time.Since(start) / time.Duration(len(qs))
		return insertMean, queryMean, nil
	default:
		kind := core.StorePDC
		if v == VariantHilbertPDC {
			kind = core.StoreHilbertPDC
		}
		st, build, err := buildStore(schema, kind, keys.MDS, items)
		if err != nil {
			return 0, 0, err
		}
		insertMean = build / time.Duration(len(items))
		start := time.Now()
		for _, q := range qs {
			st.Query(q)
		}
		queryMean = time.Since(start) / time.Duration(len(qs))
		return insertMean, queryMean, nil
	}
}

// PrintFig5 renders the rows as the paper's two panels.
func PrintFig5(w io.Writer, rows []Fig5Row) {
	fprintf(w, "# Figure 5: tree variants vs dimension count\n")
	fprintf(w, "%-18s %6s %14s %14s\n", "variant", "dims", "insert(us)", "query(ms)")
	for _, r := range rows {
		fprintf(w, "%-18s %6d %14.2f %14.3f\n", r.Variant, r.Dims, r.InsertUs, r.QueryMs)
	}
}
