package bench

import (
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/tpcds"
)

// Fig4Row is one point of Figure 4: query time of a single tree at a
// given size, per coverage band, for the Hilbert PDC tree vs the PDC
// tree.
type Fig4Row struct {
	Store   core.StoreKind
	Size    int
	BandMs  [3]float64 // low, medium, high mean query latency (ms)
	BuildMs float64
}

// Fig4 reproduces Figure 4: "Query performance of Hilbert PDC tree vs.
// PDC tree for various query coverages" over growing tree sizes, TPC-DS
// data, one tree (single worker in the paper). Paper sizes are 1M–10M;
// base sizes here are 25k–150k × scale.
func Fig4(scale Scale, queriesPerBand int, seed int64) ([]Fig4Row, error) {
	schema := tpcds.Schema()
	sizes := []int{scale.N(25000), scale.N(50000), scale.N(100000), scale.N(150000)}
	rng := rand.New(rand.NewSource(seed))
	var rows []Fig4Row
	for _, kind := range []core.StoreKind{core.StoreHilbertPDC, core.StorePDC} {
		for _, n := range sizes {
			gen := tpcds.NewGenerator(schema, seed, 1.1)
			items := gen.Items(n)
			st, build, err := buildStore(schema, kind, keys.MDS, items)
			if err != nil {
				return nil, err
			}
			bins := binFor(gen, st, queriesPerBand)
			row := Fig4Row{Store: kind, Size: n, BuildMs: float64(build.Milliseconds())}
			for band := tpcds.Low; band <= tpcds.High; band++ {
				qs := pickBand(bins, band, queriesPerBand, rng)
				row.BandMs[band] = float64(timeQueries(st, qs).Microseconds()) / 1000
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PrintFig4 renders the rows as the paper's series.
func PrintFig4(w io.Writer, rows []Fig4Row) {
	fprintf(w, "# Figure 4: query time vs tree size (TPC-DS, single tree)\n")
	fprintf(w, "%-12s %10s %12s %12s %12s %10s\n", "store", "size", "low(ms)", "medium(ms)", "high(ms)", "build(ms)")
	for _, r := range rows {
		fprintf(w, "%-12s %10d %12.3f %12.3f %12.3f %10.0f\n",
			r.Store, r.Size, r.BandMs[0], r.BandMs[1], r.BandMs[2], r.BuildMs)
	}
}
