package bench

import (
	"io"
	"time"

	volap "repro"

	"repro/internal/image"
	"repro/internal/keys"
	"repro/internal/pbs"
	"repro/internal/tpcds"
)

// Fig10Out carries both panels of Figure 10 plus the measured inputs that
// seeded the simulation (the paper seeds its simulation with "the query
// and insert latency distributions observed for VOLAP").
type Fig10Out struct {
	// Measured from the live system:
	ExpandProb    float64
	InsertLatMean time.Duration
	InsertRate    float64

	// Panel (a): mean missed inserts vs elapsed time.
	Sweep []pbs.Result
	// Panel (b): P(k missed) for k=1..4 at fixed elapsed times, per
	// coverage.
	Elapsed   []time.Duration
	Coverages []float64
	PMiss     map[float64]map[time.Duration]pbs.Result
}

// Fig10 reproduces Figure 10: serialization between user sessions on
// different servers. It first measures the box-expansion probability and
// insert latency from a live embedded cluster, then runs the PBS
// simulation with the observed values (§IV-F).
func Fig10(scale Scale, seed int64) (*Fig10Out, error) {
	out := &Fig10Out{}
	schema := tpcds.Schema()

	// --- measurement phase -------------------------------------------
	// Expansion probability: route a skewed TPC-DS stream through a local
	// image and count how often an insert grows a bounding box. The
	// probability collapses as the database grows, which is what confines
	// misses to the most recent seconds of data.
	idx := image.NewIndex(schema, keys.MDS, 4, 8)
	for i := 0; i < 16; i++ {
		if err := idx.AddShard(image.ShardID(i), nil); err != nil {
			return nil, err
		}
	}
	gen := tpcds.NewGenerator(schema, seed, 1.1)
	n := scale.N(60000)
	warm := n / 2
	var expansions, inserts uint64
	for i := 0; i < n; i++ {
		it := gen.Item()
		_, grew, err := idx.RouteInsert(it.Coords)
		if err != nil {
			return nil, err
		}
		if i >= warm { // measure in the steady state, not during warm-up
			inserts++
			if grew {
				expansions++
			}
		}
	}
	out.ExpandProb = pbs.MeasuredExpandProb(expansions, inserts)

	// Insert latency and rate from a live cluster.
	opts := volap.DefaultOptions(schema)
	opts.Workers = 2
	opts.Servers = 2
	opts.SyncInterval = 3 * time.Second // the paper's default rate
	opts.BalanceInterval = -1
	cluster, err := volap.Start(opts)
	if err != nil {
		return nil, err
	}
	defer cluster.Stop()
	cl, err := cluster.Client()
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	h := benchHist("bench_fig10_insert_seconds")
	bench := scale.N(4000)
	start := time.Now()
	for i := 0; i < bench; i++ {
		it := gen.Item()
		t0 := time.Now()
		if err := cl.InsertNoCtx(it); err != nil {
			return nil, err
		}
		h.Record(time.Since(t0))
	}
	out.InsertLatMean = h.Mean()
	out.InsertRate = float64(bench) / time.Since(start).Seconds()

	// --- simulation phase --------------------------------------------
	params := pbs.Params{
		InsertRate:    out.InsertRate,
		InsertLatMean: out.InsertLatMean,
		SyncInterval:  3 * time.Second,
		PropMean:      20 * time.Millisecond,
		PropJitter:    30 * time.Millisecond,
		ExpandProb:    out.ExpandProb,
		Coverage:      0.5,
	}
	var sweepTimes []time.Duration
	for ms := 0; ms <= 3200; ms += 100 {
		sweepTimes = append(sweepTimes, time.Duration(ms)*time.Millisecond)
	}
	sweep, err := pbs.Sweep(params, sweepTimes, 20000, seed)
	if err != nil {
		return nil, err
	}
	out.Sweep = sweep

	out.Elapsed = []time.Duration{250 * time.Millisecond, time.Second, 2 * time.Second}
	out.Coverages = []float64{0.25, 0.50, 0.75, 1.00}
	out.PMiss = make(map[float64]map[time.Duration]pbs.Result)
	for _, cov := range out.Coverages {
		p := params
		p.Coverage = cov
		out.PMiss[cov] = make(map[time.Duration]pbs.Result)
		for _, e := range out.Elapsed {
			r, err := pbs.Simulate(p, e, 40000, seed+int64(e))
			if err != nil {
				return nil, err
			}
			out.PMiss[cov][e] = r
		}
	}
	return out, nil
}

// PrintFig10 renders both panels.
func PrintFig10(w io.Writer, out *Fig10Out) {
	fprintf(w, "# Figure 10: freshness between sessions on different servers\n")
	fprintf(w, "measured: expand-prob=%.6f insert-lat-mean=%v insert-rate=%.0f/s sync=3s\n",
		out.ExpandProb, out.InsertLatMean, out.InsertRate)
	fprintf(w, "\n## (a) avg missed inserts vs elapsed time\n")
	fprintf(w, "%12s %14s\n", "elapsed(ms)", "missed(avg)")
	for _, r := range out.Sweep {
		fprintf(w, "%12d %14.4f\n", r.Elapsed.Milliseconds(), r.Mean)
	}
	fprintf(w, "\n## (b) probability of k missed inserts\n")
	fprintf(w, "%9s %12s %10s %10s %10s %10s\n", "coverage", "elapsed", "P(1)", "P(2)", "P(3)", "P(4)")
	for _, cov := range out.Coverages {
		for _, e := range out.Elapsed {
			r := out.PMiss[cov][e]
			fprintf(w, "%8.0f%% %12v %10.4f %10.4f %10.4f %10.4f\n",
				cov*100, e, r.PMiss[1], r.PMiss[2], r.PMiss[3], r.PMiss[4])
		}
	}
}
