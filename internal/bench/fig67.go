package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	volap "repro"

	"repro/internal/tpcds"
)

// ScaleUpPhase is one phase of the horizontal scale-up experiment behind
// Figures 6 and 7: two workers are added, the load balancer redistributes
// shards, a batch of new data is loaded, and insert/query performance is
// measured at the new size.
type ScaleUpPhase struct {
	Phase      int
	Workers    int
	TotalItems uint64
	// PreMin/PreMax: per-worker band right after new empty workers join
	// (the paper's "minimum goes to zero" dip in Figure 6).
	PreMin, PreMax uint64
	// MinWorker/MaxWorker: the band after the balancer has converged.
	MinWorker  uint64
	MaxWorker  uint64
	Splits     uint64 // cumulative
	Migrations uint64 // cumulative
	ElapsedS   float64

	InsertKops float64
	InsertMs   float64
	QueryKops  [3]float64
	QueryMs    [3]float64
}

// ScaleUpConfig tunes the experiment.
type ScaleUpConfig struct {
	Scale       Scale
	Phases      int // default 5
	StartWorker int // default 2
	AddPerPhase int // default 2
	Servers     int // default 2 (the paper's m = 2)
	Seed        int64
	BenchOps    int // ops per measurement (default 2000)
}

func (c *ScaleUpConfig) defaults() {
	if c.Phases <= 0 {
		c.Phases = 5
	}
	if c.StartWorker <= 0 {
		c.StartWorker = 2
	}
	if c.AddPerPhase <= 0 {
		c.AddPerPhase = 2
	}
	if c.Servers <= 0 {
		c.Servers = 2
	}
	if c.BenchOps <= 0 {
		c.BenchOps = 2000
	}
}

// ScaleUp reproduces the experiment of Figures 6 and 7: load phases
// interleaved with insert and query benchmarking phases, two workers
// added per phase (paper: N ≈ p × 50M, p = 4…20, m = 2; here the phase
// size defaults to 10k × scale).
func ScaleUp(cfg ScaleUpConfig) ([]ScaleUpPhase, error) {
	cfg.defaults()
	schema := tpcds.Schema()
	opts := volap.DefaultOptions(schema)
	opts.Workers = cfg.StartWorker
	opts.Servers = cfg.Servers
	opts.ShardsPerWorker = 4
	opts.SyncInterval = 100 * time.Millisecond
	opts.StatsInterval = 50 * time.Millisecond
	opts.BalanceInterval = -1 // phases drive balancing explicitly
	opts.MinMoveItems = 256
	cluster, err := volap.Start(opts)
	if err != nil {
		return nil, err
	}
	defer cluster.Stop()

	cl, err := cluster.Client()
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	gen := tpcds.NewGenerator(schema, cfg.Seed, 1.1)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	phaseItems := cfg.Scale.N(10000)
	start := time.Now()

	var phases []ScaleUpPhase
	for phase := 0; phase < cfg.Phases; phase++ {
		var preMin, preMax uint64
		if phase > 0 {
			for a := 0; a < cfg.AddPerPhase; a++ {
				if _, err := cluster.AddWorker(); err != nil {
					return nil, err
				}
			}
		}
		// Let worker stats land, record the post-expansion dip, then
		// balance to quiescence.
		time.Sleep(120 * time.Millisecond)
		if _, loads, err := cluster.WorkerLoads(); err == nil {
			preMin, preMax = minMax(loads)
		}
		for i := 0; i < 40; i++ {
			ops, err := cluster.RunBalancePass()
			if err != nil {
				return nil, err
			}
			if ops == 0 && i > 0 {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}

		// Load phase: bulk ingest this phase's data.
		items := gen.Items(phaseItems)
		for off := 0; off < len(items); off += 2000 {
			end := off + 2000
			if end > len(items) {
				end = len(items)
			}
			if err := cl.BulkLoadNoCtx(items[off:end]); err != nil {
				return nil, err
			}
		}
		cluster.SyncAll()

		// Benchmark phase (Figure 7): point inserts, then per-band queries.
		row := ScaleUpPhase{
			Phase: phase, Workers: cluster.NumWorkers(),
			PreMin: preMin, PreMax: preMax,
			ElapsedS: time.Since(start).Seconds(),
		}
		insH := benchHist("bench_scaleup_insert_seconds")
		insStart := time.Now()
		for i := 0; i < cfg.BenchOps; i++ {
			it := gen.Item()
			t0 := time.Now()
			if err := cl.InsertNoCtx(it); err != nil {
				return nil, err
			}
			insH.Record(time.Since(t0))
		}
		insWall := time.Since(insStart).Seconds()
		row.InsertKops = float64(cfg.BenchOps) / insWall / 1000
		row.InsertMs = float64(insH.Mean().Microseconds()) / 1000

		count := func(q volap.Rect) uint64 {
			res, err := cl.QueryNoCtx(q)
			if err != nil {
				return 0
			}
			return res.Agg.Count
		}
		total, _ := cl.QueryNoCtx(volap.AllRect(schema))
		bins := gen.GenerateBinned(count, total.Agg.Count, 10, 3000)
		qOps := cfg.BenchOps / 4
		for band := tpcds.Low; band <= tpcds.High; band++ {
			qH := benchHist("bench_scaleup_query_seconds")
			qStart := time.Now()
			for i := 0; i < qOps; i++ {
				q := bins.Pick(rng, band)
				t0 := time.Now()
				if _, err := cl.QueryNoCtx(q); err != nil {
					return nil, err
				}
				qH.Record(time.Since(t0))
			}
			wall := time.Since(qStart).Seconds()
			row.QueryKops[band] = float64(qOps) / wall / 1000
			row.QueryMs[band] = float64(qH.Mean().Microseconds()) / 1000
		}

		// Figure 6 bookkeeping: worker min/max and balancer counters.
		_, loads, err := cluster.WorkerLoads()
		if err != nil {
			return nil, err
		}
		row.MinWorker, row.MaxWorker = minMax(loads)
		for _, n := range loads {
			row.TotalItems += n
		}
		st := cluster.BalanceStats()
		row.Splits, row.Migrations = st.Splits, st.Migrations
		phases = append(phases, row)
	}
	return phases, nil
}

func minMax(ns []uint64) (lo, hi uint64) {
	if len(ns) == 0 {
		return 0, 0
	}
	lo = ns[0]
	for _, n := range ns {
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	return lo, hi
}

// PrintFig6 renders the load-balancing view of the scale-up run.
func PrintFig6(w io.Writer, phases []ScaleUpPhase) {
	fprintf(w, "# Figure 6: load balancing during horizontal scale-up (m=2)\n")
	fprintf(w, "# pre-min/pre-max: right after empty workers join (the paper's min->0 dip);\n")
	fprintf(w, "# min/max: after the balancer converges.\n")
	fprintf(w, "%5s %8s %10s %9s %9s %9s %9s %8s %11s %9s\n",
		"phase", "workers", "items", "pre-min", "pre-max", "min", "max", "splits", "migrations", "time(s)")
	for _, p := range phases {
		fprintf(w, "%5d %8d %10d %9d %9d %9d %9d %8d %11d %9.1f\n",
			p.Phase, p.Workers, p.TotalItems, p.PreMin, p.PreMax, p.MinWorker, p.MaxWorker, p.Splits, p.Migrations, p.ElapsedS)
	}
}

// PrintFig7 renders the throughput/latency view of the scale-up run.
func PrintFig7(w io.Writer, phases []ScaleUpPhase) {
	fprintf(w, "# Figure 7: insert/query performance with increasing system size\n")
	fprintf(w, "%10s %8s | %9s %9s | %9s %9s %9s | %9s %9s %9s\n",
		"items", "workers", "ins kop/s", "ins ms", "qlow k/s", "qmed k/s", "qhigh k/s", "qlow ms", "qmed ms", "qhigh ms")
	for _, p := range phases {
		fprintf(w, "%10d %8d | %9.2f %9.3f | %9.2f %9.2f %9.2f | %9.3f %9.3f %9.3f\n",
			p.TotalItems, p.Workers, p.InsertKops, p.InsertMs,
			p.QueryKops[0], p.QueryKops[1], p.QueryKops[2],
			p.QueryMs[0], p.QueryMs[1], p.QueryMs[2])
	}
}

// String summarizes one phase (used by examples).
func (p ScaleUpPhase) String() string {
	return fmt.Sprintf("phase %d: p=%d N=%d min=%d max=%d splits=%d migs=%d",
		p.Phase, p.Workers, p.TotalItems, p.MinWorker, p.MaxWorker, p.Splits, p.Migrations)
}
