// Package bench implements the experiment drivers that regenerate every
// figure of the VOLAP paper's evaluation (§IV). Each driver returns typed
// rows and can render the same table/series the paper plots; the
// cmd/volap-bench binary exposes one subcommand per figure and the
// repository-root benchmarks wrap scaled-down versions.
//
// Scaling: the paper ran on 20 EC2 workers with up to a billion items;
// these drivers default to laptop sizes (see DESIGN.md's scaling note) and
// accept a multiplier to grow toward paper scale on bigger machines. The
// claims under reproduction are the *shapes* — which structure wins, by
// what factor, where the crossovers are — not EC2 absolute numbers.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/keys"
	"repro/internal/metrics"
	"repro/internal/tpcds"
)

// reg collects every driver's latency histograms in one place so
// cmd/volap-bench can serve them live over -metrics-addr while an
// experiment runs.
var reg = metrics.NewRegistry()

// Metrics returns the bench package's registry.
func Metrics() *metrics.Registry { return reg }

// benchHist returns the named bench histogram, reset for a fresh
// measurement leg. The registry is get-or-create, so successive legs
// reuse (and clear) the same series instead of leaking one per leg.
func benchHist(name string) *metrics.Histogram {
	h := reg.Histogram(name).With()
	h.Reset()
	return h
}

// Scale multiplies the default workload sizes of every driver.
type Scale float64

// N applies the scale to a base count, with a floor.
func (s Scale) N(base int) int {
	if s <= 0 {
		s = 1
	}
	n := int(float64(base) * float64(s))
	if n < 64 {
		n = 64
	}
	return n
}

// buildStore constructs and fills a shard store by point insertion.
func buildStore(schema *hierarchy.Schema, kind core.StoreKind, kk keys.Kind, items []core.Item) (core.Store, time.Duration, error) {
	st, err := core.NewStore(core.Config{Schema: schema, Store: kind, Keys: kk})
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	for _, it := range items {
		if err := st.Insert(it); err != nil {
			return nil, 0, err
		}
	}
	return st, time.Since(start), nil
}

// timeQueries returns the mean latency of the given queries against the
// store.
func timeQueries(st core.Store, qs []keys.Rect) time.Duration {
	if len(qs) == 0 {
		return 0
	}
	h := benchHist("bench_store_query_seconds")
	for _, q := range qs {
		start := time.Now()
		st.Query(q)
		h.Record(time.Since(start))
	}
	return h.Mean()
}

// binFor builds per-band query pools against a loaded store.
func binFor(gen *tpcds.Generator, st core.Store, perBand int) tpcds.BinnedQueries {
	count := func(q keys.Rect) uint64 { return st.Query(q).Count }
	return gen.GenerateBinned(count, st.Count(), perBand, perBand*400)
}

// pickBand selects n queries from a band pool (cycling if needed).
func pickBand(b tpcds.BinnedQueries, band tpcds.Band, n int, rng *rand.Rand) []keys.Rect {
	out := make([]keys.Rect, n)
	for i := range out {
		out[i] = b.Pick(rng, band)
	}
	return out
}

// fprintf writes a formatted row, ignoring I/O errors (drivers write to
// stdout or a buffer).
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
