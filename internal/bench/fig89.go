package bench

import (
	"io"
	"math/rand"
	"sort"
	"time"

	volap "repro"

	"repro/internal/tpcds"
)

// Fig8Row is one point of Figure 8: performance at a fixed database size
// for one workload mix (insert percentage) and one coverage band.
type Fig8Row struct {
	MixPct   int // percentage of inserts in the operation stream
	Band     tpcds.Band
	OpsKops  float64 // overall operations/second (thousands)
	QueryMs  float64 // mean query latency
	InsertMs float64 // mean insert latency
}

// Fig8Config tunes the workload-mix experiment.
type Fig8Config struct {
	Scale    Scale
	Workers  int // default 4
	Servers  int // default 2
	Preload  int // items before measuring (default 40000 x scale)
	StreamOp int // operations per (mix, band) stream (default 2000)
	Seed     int64
}

// Fig8 reproduces Figure 8: "Performance for various workload mixes and
// query coverages", fixed database size (paper: N = 1 billion, p = 20,
// m = 2; defaults here: 40k x scale, p = 4, m = 2).
func Fig8(cfg Fig8Config) ([]Fig8Row, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Servers <= 0 {
		cfg.Servers = 2
	}
	if cfg.Preload <= 0 {
		cfg.Preload = cfg.Scale.N(40000)
	}
	if cfg.StreamOp <= 0 {
		cfg.StreamOp = 2000
	}
	schema := tpcds.Schema()
	opts := volap.DefaultOptions(schema)
	opts.Workers = cfg.Workers
	opts.Servers = cfg.Servers
	opts.SyncInterval = 100 * time.Millisecond
	opts.BalanceInterval = 200 * time.Millisecond
	cluster, err := volap.Start(opts)
	if err != nil {
		return nil, err
	}
	defer cluster.Stop()
	cl, err := cluster.Client()
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	gen := tpcds.NewGenerator(schema, cfg.Seed, 1.1)
	for off := 0; off < cfg.Preload; off += 2000 {
		end := off + 2000
		if end > cfg.Preload {
			end = cfg.Preload
		}
		if err := cl.BulkLoadNoCtx(gen.Items(end - off)); err != nil {
			return nil, err
		}
	}
	cluster.SyncAll()

	count := func(q volap.Rect) uint64 {
		res, err := cl.QueryNoCtx(q)
		if err != nil {
			return 0
		}
		return res.Agg.Count
	}
	total, _ := cl.QueryNoCtx(volap.AllRect(schema))
	bins := gen.GenerateBinned(count, total.Agg.Count, 10, 3000)

	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	var rows []Fig8Row
	for _, mix := range []int{0, 25, 50, 75, 100} {
		for band := tpcds.Low; band <= tpcds.High; band++ {
			insH, qryH := benchHist("bench_fig8_insert_seconds"), benchHist("bench_fig8_query_seconds")
			start := time.Now()
			for op := 0; op < cfg.StreamOp; op++ {
				if rng.Intn(100) < mix {
					it := gen.Item()
					t0 := time.Now()
					if err := cl.InsertNoCtx(it); err != nil {
						return nil, err
					}
					insH.Record(time.Since(t0))
				} else {
					q := bins.Pick(rng, band)
					t0 := time.Now()
					if _, err := cl.QueryNoCtx(q); err != nil {
						return nil, err
					}
					qryH.Record(time.Since(t0))
				}
			}
			wall := time.Since(start).Seconds()
			rows = append(rows, Fig8Row{
				MixPct:   mix,
				Band:     band,
				OpsKops:  float64(cfg.StreamOp) / wall / 1000,
				QueryMs:  float64(qryH.Mean().Microseconds()) / 1000,
				InsertMs: float64(insH.Mean().Microseconds()) / 1000,
			})
		}
	}
	return rows, nil
}

// PrintFig8 renders the rows as the paper's two panels.
func PrintFig8(w io.Writer, rows []Fig8Row) {
	fprintf(w, "# Figure 8: workload mix x coverage at fixed database size\n")
	fprintf(w, "%6s %-8s %12s %12s %12s\n", "mix%", "band", "ops(kop/s)", "query(ms)", "insert(ms)")
	for _, r := range rows {
		fprintf(w, "%6d %-8s %12.2f %12.3f %12.3f\n", r.MixPct, r.Band, r.OpsKops, r.QueryMs, r.InsertMs)
	}
}

// Fig9Point is one query observation of Figure 9's heat maps.
type Fig9Point struct {
	Coverage float64
	MS       float64
	Shards   int
}

// Fig9 reproduces Figure 9: per-query time and shards searched as a
// function of true coverage (paper: N = 1 billion, p = 20).
func Fig9(scale Scale, queries int, seed int64) ([]Fig9Point, error) {
	if queries <= 0 {
		queries = 800
	}
	schema := tpcds.Schema()
	opts := volap.DefaultOptions(schema)
	opts.Workers = 4
	opts.Servers = 1
	opts.SyncInterval = 100 * time.Millisecond
	opts.BalanceInterval = 200 * time.Millisecond
	cluster, err := volap.Start(opts)
	if err != nil {
		return nil, err
	}
	defer cluster.Stop()
	cl, err := cluster.Client()
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	gen := tpcds.NewGenerator(schema, seed, 1.1)
	n := scale.N(40000)
	for off := 0; off < n; off += 2000 {
		end := off + 2000
		if end > n {
			end = n
		}
		if err := cl.BulkLoadNoCtx(gen.Items(end - off)); err != nil {
			return nil, err
		}
	}
	// Give the balancer a moment so shards are spread, then measure.
	time.Sleep(300 * time.Millisecond)
	cluster.SyncAll()

	total, err := cl.QueryNoCtx(volap.AllRect(schema))
	if err != nil {
		return nil, err
	}
	var pts []Fig9Point
	for i := 0; i < queries; i++ {
		q := gen.Query()
		t0 := time.Now()
		res, err := cl.QueryNoCtx(q)
		if err != nil {
			return nil, err
		}
		lat := time.Since(t0)
		cov := 0.0
		if total.Agg.Count > 0 {
			cov = float64(res.Agg.Count) / float64(total.Agg.Count)
		}
		pts = append(pts, Fig9Point{Coverage: cov, MS: float64(lat.Microseconds()) / 1000, Shards: res.Info.ShardsSearched})
	}
	return pts, nil
}

// PrintFig9 renders per-coverage-decile summaries of both heat maps.
func PrintFig9(w io.Writer, pts []Fig9Point) {
	fprintf(w, "# Figure 9: effect of coverage on query time and shards searched\n")
	fprintf(w, "%12s %8s %10s %10s %10s %12s\n", "coverage", "queries", "p50(ms)", "p95(ms)", "max(ms)", "avg shards")
	for decile := 0; decile < 10; decile++ {
		lo, hi := float64(decile)/10, float64(decile+1)/10
		var lats []float64
		var shards, count int
		for _, p := range pts {
			if p.Coverage >= lo && (p.Coverage < hi || (decile == 9 && p.Coverage <= 1.0)) {
				lats = append(lats, p.MS)
				shards += p.Shards
				count++
			}
		}
		if count == 0 {
			continue
		}
		sort.Float64s(lats)
		fprintf(w, "%5.0f%%-%3.0f%% %8d %10.3f %10.3f %10.3f %12.1f\n",
			lo*100, hi*100, count,
			lats[len(lats)/2], lats[int(float64(len(lats))*0.95)], lats[len(lats)-1],
			float64(shards)/float64(count))
	}
}
