// Package pbs implements the Probabilistically Bounded Staleness analysis
// of VOLAP's query freshness (§IV-F, Figure 10), following Bailis et al.
//
// The model mirrors how VOLAP can actually miss data. All items live on
// workers and are visible to every server that routes a query to their
// shard; a query on server B misses an insert issued on server A only
// when (1) the insert expanded its shard's bounding box, (2) the
// expansion has not yet reached B (server A pushes its local image every
// SyncInterval, and the watch delivery adds propagation delay), and (3)
// the query's region covers the new item without touching the shard's
// pre-expansion box (otherwise B queries the shard anyway and sees the
// item). This is why the paper observes near-zero missed inserts after
// 0.25 s even with a 3-second sync interval, and why "only the most
// recent three seconds of inserted data contain items that are ever
// missed".
//
// As in the paper, the simulation is driven by distributions observed
// from the running system: the insert rate, the per-insert box-expansion
// probability, and latency samples.
package pbs

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Params drives the freshness simulation. There are two ways a remote
// query misses an insert, with very different time scales:
//
//  1. In-flight inserts: an insert is invisible everywhere until it lands
//     in its shard (the insert pipeline latency, tens to hundreds of
//     milliseconds under load). This dominates the average and is why
//     Figure 10(a) falls to near zero by 0.25 s.
//  2. Unsynced box expansions: the rare insert that grew a bounding box
//     stays invisible to *other* servers' routing until the next image
//     sync (up to SyncInterval plus watch propagation) — the "always
//     under 3 seconds" worst case.
type Params struct {
	// InsertRate is the cluster-wide insert throughput (inserts/second).
	InsertRate float64
	// InsertLatMean is the mean insert pipeline latency; per-insert
	// latency is drawn exponential with this mean, truncated at 5x (use
	// the distribution observed from the live system, as the paper did).
	InsertLatMean time.Duration
	// SyncInterval is the servers' image push period (paper: 3 s).
	SyncInterval time.Duration
	// PropMean and PropJitter model the coordination-service watch
	// propagation delay: delay = PropMean + U(0, PropJitter).
	PropMean, PropJitter time.Duration
	// ExpandProb is the probability that an insert expands its shard's
	// bounding box (measured from the live system; decays rapidly with
	// database size — the paper notes the same behaviour for any
	// n >= 500,000).
	ExpandProb float64
	// Coverage is the query's coverage fraction; an in-flight item is in
	// the query's result region with this probability, and
	// HitProbForCoverage governs the expansion-miss case.
	Coverage float64
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.InsertRate <= 0 {
		return fmt.Errorf("pbs: InsertRate %f <= 0", p.InsertRate)
	}
	if p.SyncInterval <= 0 {
		return fmt.Errorf("pbs: SyncInterval %v <= 0", p.SyncInterval)
	}
	if p.InsertLatMean <= 0 {
		return fmt.Errorf("pbs: InsertLatMean %v <= 0", p.InsertLatMean)
	}
	if p.ExpandProb < 0 || p.ExpandProb > 1 || p.Coverage < 0 || p.Coverage > 1 {
		return fmt.Errorf("pbs: probabilities out of range")
	}
	return nil
}

// latMax is the truncation point of the insert latency distribution.
func (p Params) latMax() float64 { return 5 * p.InsertLatMean.Seconds() }

// drawLatency samples the insert pipeline latency.
func (p Params) drawLatency(rng *rand.Rand) float64 {
	l := rng.ExpFloat64() * p.InsertLatMean.Seconds()
	if m := p.latMax(); l > m {
		l = m
	}
	return l
}

// flightMissProb returns the probability that an in-flight candidate
// insert (age uniform over the latency window) is still invisible at
// elapsed time e: P(lat > age + e) with lat ~ Exp(m) truncated at 5m,
// integrated analytically over age.
func (p Params) flightMissProb(e float64) float64 {
	m := p.InsertLatMean.Seconds()
	w := p.latMax() // window = truncation point
	if e >= w {
		return 0
	}
	// ∫_0^{w-e} exp(-(a+e)/m) da / w  (beyond w-e the latency cannot
	// exceed age+e because it is truncated at w).
	return m * (math.Exp(-e/m) - math.Exp(-w/m)) / w
}

// syncWindow returns how far back an *expanding* insert can still be
// invisible: the sync period plus worst-case propagation.
func (p Params) syncWindow() float64 {
	return p.SyncInterval.Seconds() + (p.PropMean + p.PropJitter).Seconds()
}

// syncVisibleBy reports whether an expansion that happened `age` seconds
// before the reference insert has reached the querying server `elapsed`
// seconds after it: the expansion waits for the next sync push (uniform
// phase) plus watch propagation.
func (p Params) syncVisibleBy(rng *rand.Rand, age, elapsed float64) bool {
	syncWait := rng.Float64() * p.SyncInterval.Seconds()
	prop := p.PropMean.Seconds() + rng.Float64()*p.PropJitter.Seconds()
	return syncWait+prop <= age+elapsed
}

// Result summarizes a simulation at one elapsed time.
type Result struct {
	Elapsed time.Duration
	// Mean is the expected number of missed inserts.
	Mean float64
	// PMiss[k] is the probability of missing exactly k inserts, for
	// k = 0..len(PMiss)-1 (Figure 10(b) reports k = 1..4).
	PMiss []float64
	// Trials is the Monte Carlo sample count.
	Trials int
}

// Simulate estimates missed inserts for a query issued `elapsed` after a
// reference insert on another server, Monte Carlo style.
func Simulate(p Params, elapsed time.Duration, trials int, seed int64) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if trials <= 0 {
		trials = 10000
	}
	rng := rand.New(rand.NewSource(seed))
	e := elapsed.Seconds()

	// Source 1: in-flight inserts. Candidates are inserts issued within
	// latMax before the reference insert that land inside the query's
	// region; one is missed if its remaining pipeline latency exceeds its
	// age plus the elapsed time.
	flightWindow := p.latMax()
	flightLambda := p.InsertRate * p.Coverage * flightWindow

	// Source 2: unsynced box expansions.
	syncWindow := p.syncWindow()
	expandLambda := p.InsertRate * p.ExpandProb * HitProbForCoverage(p.Coverage) * syncWindow

	const maxK = 16
	counts := make([]int, maxK+1)
	var sum float64
	flightMiss := flightLambda * p.flightMissProb(e) // Poisson thinning
	for t := 0; t < trials; t++ {
		missed := poisson(rng, flightMiss)
		for i, n := 0, poisson(rng, expandLambda); i < n; i++ {
			age := rng.Float64() * syncWindow
			if !p.syncVisibleBy(rng, age, e) {
				missed++
			}
		}
		// The reference insert itself (age 0) may be in flight or, with
		// small probability, hidden behind an unsynced expansion.
		if rng.Float64() < p.Coverage && p.drawLatency(rng) > e {
			missed++
		} else if rng.Float64() < p.ExpandProb*HitProbForCoverage(p.Coverage) && !p.syncVisibleBy(rng, 0, e) {
			missed++
		}
		sum += float64(missed)
		if missed > maxK {
			missed = maxK
		}
		counts[missed]++
	}
	res := Result{Elapsed: elapsed, Mean: sum / float64(trials), Trials: trials}
	res.PMiss = make([]float64, maxK+1)
	for k, c := range counts {
		res.PMiss[k] = float64(c) / float64(trials)
	}
	return res, nil
}

// Sweep runs Simulate over a range of elapsed times (Figure 10(a)).
func Sweep(p Params, elapsed []time.Duration, trials int, seed int64) ([]Result, error) {
	out := make([]Result, 0, len(elapsed))
	for i, e := range elapsed {
		r, err := Simulate(p, e, trials, seed+int64(i))
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ConsistencyHorizon returns the smallest elapsed time (searched on a
// grid) at which the mean missed inserts falls below eps — the paper's
// "consistency ... was always observed in under 3 seconds".
func ConsistencyHorizon(p Params, eps float64, trials int, seed int64) (time.Duration, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	maxE := p.syncWindow()
	step := maxE / 64
	for e := 0.0; e <= maxE+step; e += step {
		r, err := Simulate(p, time.Duration(e*float64(time.Second)), trials, seed)
		if err != nil {
			return 0, err
		}
		if r.Mean < eps {
			return r.Elapsed, nil
		}
	}
	return time.Duration(maxE * float64(time.Second)), nil
}

// poisson draws from Poisson(lambda) (Knuth for small lambda, normal
// approximation for large).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// HitProbForCoverage maps a query coverage fraction to the probability
// that a brand-new expansion region is covered by the query while the
// pre-expansion box is not. Wide queries almost always overlap the old
// box already (a 100% query overlaps every non-empty shard and therefore
// sees everything on the workers, leaving only edge cases), so the model
// decays quadratically with coverage; this reproduces the ordering of the
// paper's Figure 10 coverage series (25% > 50% > 75% > 100%).
func HitProbForCoverage(coverage float64) float64 {
	if coverage < 0 {
		coverage = 0
	}
	if coverage > 1 {
		coverage = 1
	}
	return 0.02 + 0.6*(1-coverage)*(1-coverage)
}

// MeasuredExpandProb estimates the expansion probability from a routing
// trace: expansions divided by inserts (exposed so benches can feed real
// measurements from image.Index.RouteInsert into the simulation, the way
// the paper seeded its simulation with observed distributions).
func MeasuredExpandProb(expansions, inserts uint64) float64 {
	if inserts == 0 {
		return 0
	}
	return float64(expansions) / float64(inserts)
}
