package pbs

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func testParams() Params {
	return Params{
		InsertRate:    50000,
		InsertLatMean: 50 * time.Millisecond, // latency truncates at 0.25 s, the paper's drop-off
		SyncInterval:  3 * time.Second,
		PropMean:      20 * time.Millisecond,
		PropJitter:    30 * time.Millisecond,
		ExpandProb:    1e-5,
		Coverage:      0.5,
	}
}

func TestValidate(t *testing.T) {
	p := testParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.InsertRate = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero rate should fail")
	}
	bad = p
	bad.SyncInterval = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero sync should fail")
	}
	bad = p
	bad.ExpandProb = 2
	if err := bad.Validate(); err == nil {
		t.Error("bad probability should fail")
	}
	bad = p
	bad.InsertLatMean = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero latency should fail")
	}
	if _, err := Simulate(bad, 0, 10, 1); err == nil {
		t.Error("Simulate must validate")
	}
}

// TestMeanDecreasesWithElapsed reproduces the qualitative shape of
// Figure 10(a): the average missed-insert count decreases monotonically
// (modulo noise) with elapsed time and approaches zero.
func TestMeanDecreasesWithElapsed(t *testing.T) {
	p := testParams()
	elapsed := []time.Duration{0, 250 * time.Millisecond, time.Second, 2 * time.Second, 3200 * time.Millisecond}
	results, err := Sweep(p, elapsed, 20000, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Mean > results[i-1].Mean+0.5 {
			t.Errorf("mean increased: %v -> %v", results[i-1], results[i])
		}
	}
	if results[0].Mean <= 1 {
		t.Errorf("missed inserts at elapsed 0 = %f, should be substantial", results[0].Mean)
	}
	// The paper's shape: near zero by 0.25 s (the in-flight horizon) ...
	if at025 := results[1].Mean; at025 > results[0].Mean/20 {
		t.Errorf("mean at 0.25s = %f did not collapse (t=0: %f)", at025, results[0].Mean)
	}
	// ... and fully zero once the sync window passes.
	last := results[len(results)-1]
	if last.Mean > 0.05 {
		t.Errorf("mean at %v = %f, want ~0", last.Elapsed, last.Mean)
	}
}

// TestPMissDistribution checks the histogram output sums to 1 and puts
// most mass on small counts at the paper's operating point.
func TestPMissDistribution(t *testing.T) {
	p := testParams()
	r, err := Simulate(p, time.Second, 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range r.PMiss {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("PMiss sums to %f", total)
	}
	if r.PMiss[0] < 0.3 {
		t.Errorf("P(0 missed at 1s) = %f, implausibly low", r.PMiss[0])
	}
	// Mean from the histogram roughly agrees with the reported mean.
	var hMean float64
	for k, v := range r.PMiss {
		hMean += float64(k) * v
	}
	if math.Abs(hMean-r.Mean) > 0.5+0.1*r.Mean {
		t.Errorf("histogram mean %f vs mean %f", hMean, r.Mean)
	}
}

// TestCoverageOrderingTail reproduces the Figure 10(b) series ordering in
// the sync-dominated tail (elapsed past the in-flight horizon): lower
// coverage queries miss more, because wide queries overlap stale boxes
// anyway.
func TestCoverageOrderingTail(t *testing.T) {
	coverages := []float64{0.25, 0.50, 0.75, 1.0}
	var prev = math.Inf(1)
	for _, cov := range coverages {
		p := testParams()
		p.ExpandProb = 0.001 // amplify the tail so ordering is measurable
		p.Coverage = cov
		r, err := Simulate(p, 500*time.Millisecond, 20000, 11)
		if err != nil {
			t.Fatal(err)
		}
		if r.Mean > prev+0.2 {
			t.Errorf("coverage %.0f%% missed more (%f) than lower coverage (%f)", cov*100, r.Mean, prev)
		}
		prev = r.Mean
	}
	if HitProbForCoverage(-1) != HitProbForCoverage(0) || HitProbForCoverage(2) != HitProbForCoverage(1) {
		t.Error("HitProbForCoverage clamping wrong")
	}
}

func TestConsistencyHorizon(t *testing.T) {
	p := testParams()
	h, err := ConsistencyHorizon(p, 0.01, 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The paper observes consistency always within 3 seconds (+ jitter).
	if h > p.SyncInterval+p.PropMean+p.PropJitter {
		t.Errorf("horizon %v exceeds sync window", h)
	}
	if h <= 0 {
		t.Errorf("horizon = %v", h)
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, lambda := range []float64{0, 0.5, 4, 100, 5000} {
		var sum float64
		const n = 3000
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, lambda))
		}
		mean := sum / n
		tol := 0.15*lambda + 0.1
		if math.Abs(mean-lambda) > tol {
			t.Errorf("poisson(%f) mean = %f", lambda, mean)
		}
	}
}

func TestMeasuredExpandProb(t *testing.T) {
	if MeasuredExpandProb(0, 0) != 0 {
		t.Error("zero inserts should give 0")
	}
	if got := MeasuredExpandProb(5, 100); got != 0.05 {
		t.Errorf("got %f", got)
	}
}
