// Package obs exposes a process's observability surface over HTTP: a
// Prometheus-text /metrics endpoint fed by a metrics.Registry, plus a
// /debug/volap JSON endpoint with component-specific state (shard tables,
// in-flight operations, recent trace events). Every VOLAP binary opts in
// with -metrics-addr; the endpoint is off by default so the data path
// never pays for serving scrapes it doesn't want.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"repro/internal/metrics"
)

// Server is one process's observability HTTP listener.
type Server struct {
	ln   net.Listener
	http *http.Server
}

// Serve starts the endpoint on addr (e.g. "127.0.0.1:9100"; port 0 picks
// a free one — see Addr). reg backs /metrics; debug, when non-nil, is
// called per /debug/volap request and its result rendered as JSON.
// Returns immediately; the listener runs until Close.
func Serve(addr string, reg *metrics.Registry, debug func() any) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/volap", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var payload any
		if debug != nil {
			payload = debug()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(payload)
	})
	// pprof rides on the same opt-in endpoint, so mutex/block profiles of
	// the worker's ingest and query pools are one curl away. Sampling
	// rates are modest: profiling overhead stays off the data path until
	// a profile is actually requested, and contention sampling at these
	// rates is noise-level.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	runtime.SetMutexProfileFraction(16)
	runtime.SetBlockProfileRate(int(time.Millisecond)) // sample blocking >= ~1ms-scale
	s := &Server{ln: ln, http: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.http.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (resolves port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *Server) Close() { _ = s.http.Close() }
