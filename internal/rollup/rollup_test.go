package rollup

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/keys"
)

// testSchema: A has 2 levels (fanout 2, 3 → 6 leaves), B has 1 level
// (fanout 4 → 4 leaves).
func testSchema(t *testing.T) *hierarchy.Schema {
	t.Helper()
	return hierarchy.MustSchema(
		hierarchy.MustDimension("A",
			hierarchy.Level{Name: "A1", Fanout: 2},
			hierarchy.Level{Name: "A2", Fanout: 3}),
		hierarchy.MustDimension("B",
			hierarchy.Level{Name: "B1", Fanout: 4}),
	)
}

func randItems(rng *rand.Rand, s *hierarchy.Schema, n int) []core.Item {
	items := make([]core.Item, n)
	for i := range items {
		coords := make([]uint64, s.NumDims())
		for d := range coords {
			coords[d] = rng.Uint64() % s.Dim(d).LeafCount()
		}
		items[i] = core.Item{Coords: coords, Measure: float64(rng.Intn(1000))}
	}
	return items
}

// alignedRect builds a random rect whose every interval starts and ends
// on the definition's cell-span boundaries.
func alignedRect(rng *rand.Rand, s *hierarchy.Schema, def Def) keys.Rect {
	ivs := make([]hierarchy.Interval, s.NumDims())
	for d := range ivs {
		span := s.Dim(d).LeavesUnder(def.Depths[d])
		groups := s.Dim(d).LeafCount() / span
		lo := rng.Uint64() % groups
		hi := lo + rng.Uint64()%(groups-lo)
		ivs[d] = hierarchy.Interval{Lo: lo * span, Hi: (hi+1)*span - 1}
	}
	return keys.NewRect(ivs...)
}

func bruteForce(items []core.Item, q keys.Rect) core.Aggregate {
	agg := core.NewAggregate()
	for _, it := range items {
		if q.ContainsPoint(it.Coords) {
			agg.AddItem(it.Measure)
		}
	}
	return agg
}

func sameAgg(a, b core.Aggregate) bool {
	if a.Count == 0 && b.Count == 0 {
		return true
	}
	return a.Count == b.Count && a.Sum == b.Sum && a.Min == b.Min && a.Max == b.Max
}

func TestDefValidate(t *testing.T) {
	s := testSchema(t)
	for _, tc := range []struct {
		depths []int
		ok     bool
	}{
		{[]int{0, 0}, true},
		{[]int{2, 1}, true},
		{[]int{1, 0}, true},
		{[]int{3, 0}, false}, // deeper than dimension A
		{[]int{-1, 0}, false},
		{[]int{1}, false}, // arity mismatch
		{[]int{1, 1, 1}, false},
	} {
		err := Def{Depths: tc.depths}.Validate(s)
		if (err == nil) != tc.ok {
			t.Errorf("Validate(%v) err = %v, want ok=%v", tc.depths, err, tc.ok)
		}
	}
}

func TestParseDefString(t *testing.T) {
	s := testSchema(t)
	def, err := ParseDef(s, "A:1,B:1")
	if err != nil {
		t.Fatal(err)
	}
	if !def.Equal(Def{Depths: []int{1, 1}}) {
		t.Fatalf("ParseDef(A:1,B:1) = %v", def)
	}
	// By index, and round-trip through String.
	def2, err := ParseDef(s, def.String())
	if err != nil || !def2.Equal(def) {
		t.Fatalf("round-trip %q = %v, %v", def.String(), def2, err)
	}
	if all, err := ParseDef(s, "all"); err != nil || !all.Equal(Def{Depths: []int{0, 0}}) {
		t.Fatalf("ParseDef(all) = %v, %v", all, err)
	}
	for _, bad := range []string{"", "A", "A:9", "C:1", "A:x"} {
		if _, err := ParseDef(s, bad); err == nil {
			t.Errorf("ParseDef(%q) succeeded, want error", bad)
		}
	}
}

func TestCovers(t *testing.T) {
	s := testSchema(t)
	def := Def{Depths: []int{1, 0}} // A cells span 3 leaves, B spans all 4
	all := keys.AllRect(s)
	if !def.Covers(s, all) {
		t.Fatal("full rect not covered")
	}
	aligned := keys.NewRect(hierarchy.Interval{Lo: 3, Hi: 5}, hierarchy.Interval{Lo: 0, Hi: 3})
	if !def.Covers(s, aligned) {
		t.Fatalf("aligned rect %v not covered", aligned)
	}
	for _, bad := range []keys.Rect{
		keys.NewRect(hierarchy.Interval{Lo: 1, Hi: 5}, hierarchy.Interval{Lo: 0, Hi: 3}), // A misaligned lo
		keys.NewRect(hierarchy.Interval{Lo: 0, Hi: 4}, hierarchy.Interval{Lo: 0, Hi: 3}), // A misaligned hi
		keys.NewRect(hierarchy.Interval{Lo: 0, Hi: 5}, hierarchy.Interval{Lo: 0, Hi: 1}), // B not whole
	} {
		if def.Covers(s, bad) {
			t.Errorf("misaligned rect %v covered", bad)
		}
	}
	// CellsIn counts grid positions: the whole space is 2 A-cells.
	if n := def.CellsIn(s, all); n != 2 {
		t.Fatalf("CellsIn(all) = %d, want 2", n)
	}
}

func TestTableQueryMatchesBruteForce(t *testing.T) {
	s := testSchema(t)
	rng := rand.New(rand.NewSource(1))
	items := randItems(rng, s, 500)
	for _, def := range []Def{
		{Depths: []int{0, 0}},
		{Depths: []int{1, 0}},
		{Depths: []int{2, 1}},
		{Depths: []int{1, 1}},
	} {
		tab := NewTable(s, def)
		tab.Add(items)
		for i := 0; i < 50; i++ {
			q := alignedRect(rng, s, def)
			if !def.Covers(s, q) {
				t.Fatalf("test bug: %v does not cover %v", def, q)
			}
			got, _ := tab.Query(q)
			want := bruteForce(items, q)
			if !sameAgg(got, want) {
				t.Fatalf("def %v query %v = %+v, want %+v", def, q, got, want)
			}
		}
	}
}

func TestTableGroupByMatchesBruteForce(t *testing.T) {
	s := testSchema(t)
	rng := rand.New(rand.NewSource(2))
	items := randItems(rng, s, 400)
	def := Def{Depths: []int{2, 1}} // leaf-level cells on both dims
	tab := NewTable(s, def)
	tab.Add(items)

	// Group dimension A at level 0 (two level-1 values spanning 3 leaves).
	groupSpan := s.Dim(0).LeavesUnder(1)
	for i := 0; i < 30; i++ {
		q := alignedRect(rng, s, Def{Depths: []int{1, 1}}) // align to group span too
		got := make(map[uint64]core.Aggregate)
		tab.GroupBy(q, 0, groupSpan, got)
		want := make(map[uint64]core.Aggregate)
		for _, it := range items {
			if !q.ContainsPoint(it.Coords) {
				continue
			}
			v := it.Coords[0] / groupSpan
			agg, ok := want[v]
			if !ok {
				agg = core.NewAggregate()
			}
			agg.AddItem(it.Measure)
			want[v] = agg
		}
		if len(got) != len(want) {
			t.Fatalf("groupby %v: %d groups, want %d", q, len(got), len(want))
		}
		for v, agg := range want {
			if !sameAgg(got[v], agg) {
				t.Fatalf("groupby %v group %d = %+v, want %+v", q, v, got[v], agg)
			}
		}
	}
}

func TestRebuildMatchesIncremental(t *testing.T) {
	s := testSchema(t)
	rng := rand.New(rand.NewSource(3))
	items := randItems(rng, s, 300)
	defs := []Def{{Depths: []int{1, 0}}, {Depths: []int{2, 1}}}

	inc := NewSet(s, defs)
	inc.Add(items)
	reb := Rebuild(s, defs, func(fn func(core.Item) bool) {
		for _, it := range items {
			if !fn(it) {
				return
			}
		}
	})
	q := keys.AllRect(s)
	for i := range defs {
		a, _ := inc.Table(i).Query(q)
		b, _ := reb.Table(i).Query(q)
		if !sameAgg(a, b) {
			t.Fatalf("table %d: incremental %+v != rebuilt %+v", i, a, b)
		}
		if inc.Table(i).Cells() != reb.Table(i).Cells() {
			t.Fatalf("table %d cell counts differ", i)
		}
	}
}

func TestTrailerRoundTrip(t *testing.T) {
	s := testSchema(t)
	rng := rand.New(rand.NewSource(4))
	items := randItems(rng, s, 200)
	defs := []Def{{Depths: []int{1, 0}}, {Depths: []int{2, 1}}}
	set := NewSet(s, defs)
	set.Add(items)

	blob := set.EncodeTrailer()
	got, err := DecodeTrailer(blob, s, defs)
	if err != nil || got == nil {
		t.Fatalf("DecodeTrailer: %v %v", got, err)
	}
	q := keys.AllRect(s)
	for i := range defs {
		a, _ := set.Table(i).Query(q)
		b, _ := got.Table(i).Query(q)
		if !sameAgg(a, b) {
			t.Fatalf("table %d: %+v != %+v after round trip", i, a, b)
		}
	}

	// Nil set encodes to nil; empty or foreign bytes decode to (nil, nil).
	var nilSet *Set
	if nilSet.EncodeTrailer() != nil {
		t.Fatal("nil set produced a trailer")
	}
	if set, err := DecodeTrailer(nil, s, defs); set != nil || err != nil {
		t.Fatalf("DecodeTrailer(nil) = %v, %v", set, err)
	}
	if set, err := DecodeTrailer([]byte("not a rollup trailer"), s, defs); set != nil || err != nil {
		t.Fatalf("DecodeTrailer(garbage) = %v, %v", set, err)
	}

	// A magic-bearing but truncated trailer is an error, not a nil.
	if _, err := DecodeTrailer(blob[:len(blob)-3], s, defs); err == nil {
		t.Fatal("truncated trailer decoded without error")
	}
	// Definition drift is an error too: the caller must rebuild.
	if _, err := DecodeTrailer(blob, s, []Def{{Depths: []int{0, 0}}, {Depths: []int{2, 1}}}); err == nil {
		t.Fatal("mismatched definitions decoded without error")
	}
	if _, err := DecodeTrailer(blob, s, defs[:1]); err == nil {
		t.Fatal("wrong table count decoded without error")
	}
}

func TestSetNilSafety(t *testing.T) {
	var set *Set
	set.Add([]core.Item{{Coords: []uint64{0, 0}, Measure: 1}})
	set.AddItem([]uint64{0, 0}, 1)
	if set.Table(0) != nil {
		t.Fatal("nil set returned a table")
	}
	if set.Cells() != 0 {
		t.Fatal("nil set has cells")
	}
	if NewSet(testSchema(t), nil) != nil {
		t.Fatal("NewSet with no defs should be nil")
	}
}
