// Package rollup implements materialized rollup tables: per-shard
// pre-aggregated cubes keyed by a hierarchy depth per dimension. A
// rollup definition names one grid over the schema — depth 0 aggregates
// a dimension away entirely, depth k keys cells by the dimension's
// depth-k value — and a table holds one Aggregate cell per occupied
// grid position. A query whose rectangle is aligned to the grid is
// answered by merging the covering cells instead of scanning the tree,
// and a group-by at a level at or above a keyed dimension's depth
// becomes a fold over cells.
//
// Tables mirror the shard *store* exactly: the worker folds every batch
// it applies to the store (sync inserts, pipeline drains) into the
// tables under the same shard-lock hold, and rollup reads merge the
// insertion buffer and split/migration queue on top — so a rollup
// answer equals a raw scan at every instant the shard read lock can
// observe.
package rollup

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/keys"
	"repro/internal/wire"
)

// MaxCells bounds the *potential* grid size of one definition (the
// product of per-dimension group counts). Cells are stored sparsely, so
// this only guards against definitions whose cell keys could not be
// packed into a uint64 or whose dense enumeration could overflow.
const MaxCells = uint64(1) << 62

// Def is one rollup definition: a hierarchy depth per schema dimension.
// Depths[d] == 0 keys no cell on dimension d (it is aggregated away);
// Depths[d] == k keys cells by the dimension's depth-k value.
type Def struct {
	Depths []int
}

// Validate checks the definition against a schema.
func (def Def) Validate(s *hierarchy.Schema) error {
	if len(def.Depths) != s.NumDims() {
		return fmt.Errorf("rollup: definition has %d depths, schema has %d dimensions", len(def.Depths), s.NumDims())
	}
	cells := uint64(1)
	for d, depth := range def.Depths {
		dim := s.Dim(d)
		if depth < 0 || depth > dim.Depth() {
			return fmt.Errorf("rollup: depth %d out of range [0,%d] for dimension %s", depth, dim.Depth(), dim.Name())
		}
		groups := dim.LeafCount() / dim.LeavesUnder(depth)
		if cells > MaxCells/groups {
			return fmt.Errorf("rollup: definition exceeds %d potential cells", MaxCells)
		}
		cells *= groups
	}
	return nil
}

// Equal reports whether two definitions are identical.
func (def Def) Equal(o Def) bool {
	if len(def.Depths) != len(o.Depths) {
		return false
	}
	for i, d := range def.Depths {
		if d != o.Depths[i] {
			return false
		}
	}
	return true
}

// Covers reports whether every cell of the definition's grid lies
// entirely inside or outside q: each dimension's interval must start
// and end on a cell-span boundary (a depth-0 dimension's single group
// spans the whole dimension, so the interval must cover it all). Only
// then can the cells alone answer q exactly.
func (def Def) Covers(s *hierarchy.Schema, q keys.Rect) bool {
	if len(def.Depths) != s.NumDims() || len(q.Ivs) != s.NumDims() {
		return false
	}
	for d, iv := range q.Ivs {
		span := s.Dim(d).LeavesUnder(def.Depths[d])
		if iv.Lo%span != 0 || (iv.Hi+1)%span != 0 {
			return false
		}
	}
	return true
}

// CellsIn estimates the cost of answering q from this definition's
// grid: the number of grid positions q covers (occupied or not).
func (def Def) CellsIn(s *hierarchy.Schema, q keys.Rect) uint64 {
	n := uint64(1)
	for d, iv := range q.Ivs {
		span := s.Dim(d).LeavesUnder(def.Depths[d])
		groups := iv.Hi/span - iv.Lo/span + 1
		if n > MaxCells/groups {
			return MaxCells
		}
		n *= groups
	}
	return n
}

// Encode serializes the definition.
func (def Def) Encode(w *wire.Writer) {
	w.Uvarint(uint64(len(def.Depths)))
	for _, d := range def.Depths {
		w.Uvarint(uint64(d))
	}
}

// DecodeDef reads a definition serialized by Encode.
func DecodeDef(r *wire.Reader) (Def, error) {
	n := r.Uvarint()
	if r.Err() != nil {
		return Def{}, r.Err()
	}
	if n > uint64(r.Remaining()) {
		return Def{}, fmt.Errorf("rollup: definition dimension count %d exceeds payload", n)
	}
	def := Def{Depths: make([]int, n)}
	for i := range def.Depths {
		def.Depths[i] = int(r.Uvarint())
	}
	return def, r.Err()
}

// String renders the definition as "name:depth,..." over its keyed
// dimensions (schema-free form: "dim0:2,dim3:1" by index).
func (def Def) String() string {
	var b strings.Builder
	for d, depth := range def.Depths {
		if depth == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(d))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(depth))
	}
	if b.Len() == 0 {
		return "all"
	}
	return b.String()
}

// ParseDef parses a "dim:depth[,dim:depth...]" specification against a
// schema; dim is a dimension index or name, depth a hierarchy depth
// (1-based levels; the dimension's full depth keys individual leaves).
// Unmentioned dimensions get depth 0 (aggregated away). The literal
// "all" yields the everything-aggregated definition.
func ParseDef(s *hierarchy.Schema, spec string) (Def, error) {
	def := Def{Depths: make([]int, s.NumDims())}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Def{}, fmt.Errorf("rollup: empty definition spec")
	}
	if spec == "all" {
		return def, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			return Def{}, fmt.Errorf("rollup: bad spec element %q (want dim:depth)", part)
		}
		d := -1
		if idx, err := strconv.Atoi(kv[0]); err == nil {
			d = idx
		} else {
			for i := 0; i < s.NumDims(); i++ {
				if s.Dim(i).Name() == kv[0] {
					d = i
					break
				}
			}
		}
		if d < 0 || d >= s.NumDims() {
			return Def{}, fmt.Errorf("rollup: unknown dimension %q", kv[0])
		}
		depth, err := strconv.Atoi(kv[1])
		if err != nil {
			return Def{}, fmt.Errorf("rollup: bad depth %q for dimension %q", kv[1], kv[0])
		}
		def.Depths[d] = depth
	}
	if err := def.Validate(s); err != nil {
		return Def{}, err
	}
	return def, nil
}

// Table is one shard's materialized cells for one definition. Cell
// mutation and reads are serialized by the table's own mutex; the
// caller's shard-lock discipline decides *when* cells may change
// relative to the store (see the package comment).
type Table struct {
	def     Def
	spans   []uint64 // leaves per cell in each dimension
	counts  []uint64 // grid positions per dimension
	strides []uint64 // mixed-radix strides packing grid coords into a key

	mu    sync.Mutex
	cells map[uint64]core.Aggregate
}

// NewTable builds an empty table for a validated definition.
func NewTable(s *hierarchy.Schema, def Def) *Table {
	n := s.NumDims()
	t := &Table{
		def:     def,
		spans:   make([]uint64, n),
		counts:  make([]uint64, n),
		strides: make([]uint64, n),
		cells:   make(map[uint64]core.Aggregate),
	}
	for d := 0; d < n; d++ {
		t.spans[d] = s.Dim(d).LeavesUnder(def.Depths[d])
		t.counts[d] = s.Dim(d).LeafCount() / t.spans[d]
	}
	stride := uint64(1)
	for d := n - 1; d >= 0; d-- {
		t.strides[d] = stride
		stride *= t.counts[d]
	}
	return t
}

// Def returns the table's definition.
func (t *Table) Def() Def { return t.def }

// key packs an item's grid position into the cell key.
func (t *Table) key(coords []uint64) uint64 {
	k := uint64(0)
	for d, c := range coords {
		k += (c / t.spans[d]) * t.strides[d]
	}
	return k
}

// Add folds a batch of items into the cells.
func (t *Table) Add(items []core.Item) {
	t.mu.Lock()
	for i := range items {
		k := t.key(items[i].Coords)
		agg, ok := t.cells[k]
		if !ok {
			agg = core.NewAggregate()
		}
		agg.AddItem(items[i].Measure)
		t.cells[k] = agg
	}
	t.mu.Unlock()
}

// AddItem folds one item into the cells.
func (t *Table) AddItem(coords []uint64, measure float64) {
	t.mu.Lock()
	k := t.key(coords)
	agg, ok := t.cells[k]
	if !ok {
		agg = core.NewAggregate()
	}
	agg.AddItem(measure)
	t.cells[k] = agg
	t.mu.Unlock()
}

// Cells returns the number of occupied cells.
func (t *Table) Cells() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.cells)
}

// scan visits every occupied cell inside q (which must satisfy
// def.Covers) with its per-dimension grid coordinates. It picks the
// cheaper of enumerating q's grid positions and filtering the occupied
// map. The caller holds t.mu.
func (t *Table) scan(q keys.Rect, fn func(grid []uint64, agg core.Aggregate)) {
	n := len(t.spans)
	lo := make([]uint64, n)
	hi := make([]uint64, n)
	enum := uint64(1)
	for d, iv := range q.Ivs {
		lo[d] = iv.Lo / t.spans[d]
		hi[d] = iv.Hi / t.spans[d]
		w := hi[d] - lo[d] + 1
		if enum > MaxCells/w {
			enum = MaxCells
		} else {
			enum *= w
		}
	}
	grid := make([]uint64, n)
	if enum <= uint64(len(t.cells)) {
		// Odometer over q's grid positions; direct map lookups.
		copy(grid, lo)
		for {
			k := uint64(0)
			for d := range grid {
				k += grid[d] * t.strides[d]
			}
			if agg, ok := t.cells[k]; ok {
				fn(grid, agg)
			}
			d := n - 1
			for ; d >= 0; d-- {
				if grid[d] < hi[d] {
					grid[d]++
					break
				}
				grid[d] = lo[d]
			}
			if d < 0 {
				return
			}
		}
	}
	// Sparser to walk the occupied cells and filter against q.
	for k, agg := range t.cells {
		inside := true
		for d := range grid {
			g := k / t.strides[d] % t.counts[d]
			if g < lo[d] || g > hi[d] {
				inside = false
				break
			}
			grid[d] = g
		}
		if inside {
			fn(grid, agg)
		}
	}
}

// Query merges the cells covering q (which must satisfy def.Covers) and
// reports how many occupied cells contributed.
func (t *Table) Query(q keys.Rect) (core.Aggregate, int) {
	agg := core.NewAggregate()
	n := 0
	t.mu.Lock()
	t.scan(q, func(_ []uint64, cell core.Aggregate) {
		agg.Merge(cell)
		n++
	})
	t.mu.Unlock()
	return agg, n
}

// GroupBy folds the cells covering q into one aggregate per value of
// dimension dim at the hierarchy level spanning groupSpan leaves
// (def.Depths[dim] must be at least that level's depth, so every cell
// falls entirely inside one group). Keys of the result are absolute
// level-value ordinals. Returns the groups and the cells merged.
func (t *Table) GroupBy(q keys.Rect, dim int, groupSpan uint64, out map[uint64]core.Aggregate) int {
	n := 0
	t.mu.Lock()
	t.scan(q, func(grid []uint64, cell core.Aggregate) {
		v := grid[dim] * t.spans[dim] / groupSpan
		agg, ok := out[v]
		if !ok {
			agg = core.NewAggregate()
		}
		agg.Merge(cell)
		out[v] = agg
		n++
	})
	t.mu.Unlock()
	return n
}

// Encode serializes the table (definition + occupied cells).
func (t *Table) Encode(w *wire.Writer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.def.Encode(w)
	w.Uvarint(uint64(len(t.cells)))
	for k, agg := range t.cells {
		w.Uvarint(k)
		agg.Encode(w)
	}
}

// DecodeTable reads a table serialized by Encode.
func DecodeTable(r *wire.Reader, s *hierarchy.Schema) (*Table, error) {
	def, err := DecodeDef(r)
	if err != nil {
		return nil, err
	}
	if err := def.Validate(s); err != nil {
		return nil, err
	}
	t := NewTable(s, def)
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	// A cell takes at least 1 key byte + 26 aggregate bytes.
	if n > uint64(r.Remaining())/27+1 {
		return nil, fmt.Errorf("rollup: table claims %d cells, buffer too small", n)
	}
	for i := uint64(0); i < n; i++ {
		k := r.Uvarint()
		agg, err := core.DecodeAggregate(r)
		if err != nil {
			return nil, err
		}
		t.cells[k] = agg
	}
	return t, r.Err()
}

// Set is all of one shard's rollup tables, one per configured
// definition, in configuration order. A nil *Set is a valid empty set:
// every method treats it as "no rollups configured".
type Set struct {
	tables []*Table
}

// NewSet builds empty tables for the given definitions; nil when there
// are none.
func NewSet(s *hierarchy.Schema, defs []Def) *Set {
	if len(defs) == 0 {
		return nil
	}
	set := &Set{tables: make([]*Table, len(defs))}
	for i, def := range defs {
		set.tables[i] = NewTable(s, def)
	}
	return set
}

// Rebuild builds a set and folds in every item the iterator yields —
// the O(n) fallback when incremental state is unavailable (promotion of
// a standby, recovery from a pre-rollup snapshot).
func Rebuild(s *hierarchy.Schema, defs []Def, items func(func(core.Item) bool)) *Set {
	set := NewSet(s, defs)
	if set == nil {
		return nil
	}
	items(func(it core.Item) bool {
		for _, t := range set.tables {
			t.AddItem(it.Coords, it.Measure)
		}
		return true
	})
	return set
}

// Add folds a batch into every table.
func (set *Set) Add(items []core.Item) {
	if set == nil {
		return
	}
	for _, t := range set.tables {
		t.Add(items)
	}
}

// AddItem folds one item into every table.
func (set *Set) AddItem(coords []uint64, measure float64) {
	if set == nil {
		return
	}
	for _, t := range set.tables {
		t.AddItem(coords, measure)
	}
}

// Table returns table i, or nil when the set or index does not have it.
func (set *Set) Table(i int) *Table {
	if set == nil || i < 0 || i >= len(set.tables) {
		return nil
	}
	return set.tables[i]
}

// Cells returns the total occupied cells across all tables.
func (set *Set) Cells() int {
	if set == nil {
		return 0
	}
	n := 0
	for _, t := range set.tables {
		n += t.Cells()
	}
	return n
}

// trailerMagic guards rollup trailers appended to serialized shards.
const trailerMagic = "VOLAPROLL1"

// EncodeTrailer serializes the set as a trailer suitable for appending
// after a core store blob (core.DeserializeStore ignores trailing
// bytes, so composite blobs remain readable by rollup-unaware code).
// A nil set encodes to nil.
func (set *Set) EncodeTrailer() []byte {
	if set == nil {
		return nil
	}
	w := wire.NewWriter(64)
	w.String(trailerMagic)
	w.Uvarint(uint64(len(set.tables)))
	for _, t := range set.tables {
		t.Encode(w)
	}
	return w.Bytes()
}

// DecodeTrailer reads a trailer written by EncodeTrailer and checks it
// against the configured definitions. It returns (nil, nil) when the
// bytes are empty or carry no rollup magic, and an error when a trailer
// is present but unusable (corrupt, or its definitions no longer match
// the configuration) — callers rebuild from raw items in every nil
// case.
func DecodeTrailer(b []byte, s *hierarchy.Schema, defs []Def) (*Set, error) {
	if len(b) == 0 || len(defs) == 0 {
		return nil, nil
	}
	r := wire.NewReader(b)
	if r.String() != trailerMagic || r.Err() != nil {
		return nil, nil
	}
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n != uint64(len(defs)) {
		return nil, fmt.Errorf("rollup: trailer has %d tables, configuration has %d definitions", n, len(defs))
	}
	set := &Set{tables: make([]*Table, 0, n)}
	for i := uint64(0); i < n; i++ {
		t, err := DecodeTable(r, s)
		if err != nil {
			return nil, err
		}
		if !t.def.Equal(defs[i]) {
			return nil, fmt.Errorf("rollup: trailer table %d definition %v no longer matches configuration %v", i, t.def, defs[i])
		}
		set.tables = append(set.tables, t)
	}
	return set, nil
}
