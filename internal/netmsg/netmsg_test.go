package netmsg

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// startEcho starts a server with echo and error handlers on the given
// address and returns its bound address.
func startEcho(t *testing.T, addr string) (*Server, string) {
	t.Helper()
	s := NewServer()
	s.Handle("echo", func(_ context.Context, p []byte) ([]byte, error) { return p, nil })
	s.Handle("fail", func(_ context.Context, p []byte) ([]byte, error) { return nil, errors.New("boom") })
	s.Handle("slow", func(_ context.Context, p []byte) ([]byte, error) {
		time.Sleep(200 * time.Millisecond)
		return p, nil
	})
	bound, err := s.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, bound
}

func TestRequestReplyTCP(t *testing.T) {
	_, addr := startEcho(t, "127.0.0.1:0")
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Request("echo", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte("hello")) {
		t.Fatalf("resp = %q", resp)
	}
}

func TestRequestReplyInproc(t *testing.T) {
	_, addr := startEcho(t, "inproc://echo-test")
	if addr != "inproc://echo-test" {
		t.Fatalf("bound addr = %q", addr)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Request("echo", []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "ping" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestRemoteError(t *testing.T) {
	_, addr := startEcho(t, "inproc://err-test")
	c, _ := Dial(addr)
	defer c.Close()
	_, err := c.Request("fail", nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.Msg != "boom" || re.Error() == "" {
		t.Errorf("remote error = %+v", re)
	}
}

func TestUnknownOp(t *testing.T) {
	_, addr := startEcho(t, "inproc://unknown-test")
	c, _ := Dial(addr)
	defer c.Close()
	if _, err := c.Request("nope", nil); err == nil {
		t.Fatal("unknown op should fail")
	}
}

func TestTimeout(t *testing.T) {
	_, addr := startEcho(t, "inproc://timeout-test")
	c, _ := Dial(addr)
	defer c.Close()
	_, err := c.RequestTimeout("slow", nil, 20*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// A later request on the same client still works (late response to
	// the abandoned call is discarded).
	resp, err := c.RequestTimeout("echo", []byte("next"), time.Second)
	if err != nil || string(resp) != "next" {
		t.Fatalf("follow-up request: %q, %v", resp, err)
	}
}

// TestConcurrentRequests multiplexes many concurrent requests over one
// client and checks responses are correlated correctly.
func TestConcurrentRequests(t *testing.T) {
	for _, addr := range []string{"127.0.0.1:0", "inproc://conc-test"} {
		_, bound := startEcho(t, addr)
		c, err := Dial(bound)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 50; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				msg := []byte(fmt.Sprintf("msg-%d", i))
				resp, err := c.Request("echo", msg)
				if err != nil {
					t.Errorf("request %d: %v", i, err)
					return
				}
				if !bytes.Equal(resp, msg) {
					t.Errorf("request %d: got %q", i, resp)
				}
			}(i)
		}
		wg.Wait()
		c.Close()
	}
}

func TestMultipleClients(t *testing.T) {
	_, addr := startEcho(t, "inproc://multi-test")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				msg := []byte(fmt.Sprintf("c%d-%d", i, j))
				resp, err := c.Request("echo", msg)
				if err != nil || !bytes.Equal(resp, msg) {
					t.Errorf("client %d: %q %v", i, resp, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("inproc://nonexistent"); err == nil {
		t.Error("dialing unknown inproc name should fail")
	}
}

func TestDuplicateInprocName(t *testing.T) {
	startEcho(t, "inproc://dup-test")
	s2 := NewServer()
	if _, err := s2.Listen("inproc://dup-test"); err == nil {
		t.Error("duplicate inproc bind should fail")
	}
	s2.Close()
}

func TestClientCloseFailsPending(t *testing.T) {
	_, addr := startEcho(t, "inproc://close-test")
	c, _ := Dial(addr)
	done := make(chan error, 1)
	go func() {
		_, err := c.Request("slow", nil)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	c.Close()
	if err := <-done; err == nil {
		t.Error("pending request should fail on close")
	}
	if _, err := c.Request("echo", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("request after close = %v, want ErrClosed", err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	s, addr := startEcho(t, "inproc://sclose-test")
	c, _ := Dial(addr)
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Request("slow", nil)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("request should fail when server closes")
		}
	case <-time.After(2 * time.Second):
		t.Error("request did not unblock on server close")
	}
}

func TestLargePayload(t *testing.T) {
	_, addr := startEcho(t, "inproc://large-test")
	c, _ := Dial(addr)
	defer c.Close()
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	resp, err := c.Request("echo", big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, big) {
		t.Fatal("large payload corrupted")
	}
}

func TestFrameTooLarge(t *testing.T) {
	_, addr := startEcho(t, "inproc://frame-test")
	c, _ := Dial(addr)
	defer c.Close()
	if _, err := c.Request("echo", make([]byte, MaxFrame)); err == nil {
		t.Error("oversized frame should fail")
	}
}

func BenchmarkRequestInproc(b *testing.B) {
	s := NewServer()
	s.Handle("echo", func(_ context.Context, p []byte) ([]byte, error) { return p, nil })
	if _, err := s.Listen("inproc://bench"); err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := Dial("inproc://bench")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Request("echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRequestCtxCancel checks an in-flight request unblocks as soon as
// its context is canceled, and the client survives for later requests.
func TestRequestCtxCancel(t *testing.T) {
	_, addr := startEcho(t, "inproc://ctx-cancel-test")
	c, _ := Dial(addr)
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.RequestCtx(ctx, "slow", nil)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("RequestCtx did not unblock on cancel")
	}
	// The client is still usable; the late reply is discarded.
	resp, err := c.RequestTimeout("echo", []byte("after"), time.Second)
	if err != nil || string(resp) != "after" {
		t.Fatalf("follow-up request: %q, %v", resp, err)
	}
}

// TestRequestCtxDeadline checks a context deadline maps to ErrTimeout.
func TestRequestCtxDeadline(t *testing.T) {
	_, addr := startEcho(t, "inproc://ctx-deadline-test")
	c, _ := Dial(addr)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.RequestCtx(ctx, "slow", nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

// TestReconnectAfterServerRestart checks the client transparently
// re-dials after its server goes away and comes back on the same
// address: pending requests fail with ErrConnLost, later requests
// succeed against the restarted server.
func TestReconnectAfterServerRestart(t *testing.T) {
	s1, addr := startEcho(t, "inproc://reconnect-test")
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Request("echo", []byte("one")); err != nil {
		t.Fatal(err)
	}

	s1.Close()
	// With the server gone, a request fails: the dead connection is
	// detected and bounded re-dial attempts find nobody listening.
	if _, err := c.RequestTimeout("echo", nil, 300*time.Millisecond); err == nil {
		t.Fatal("request against closed server should fail")
	}

	// Restart on the same name; the next request re-dials and succeeds.
	_, addr2 := startEcho(t, "inproc://reconnect-test")
	if addr2 != addr {
		t.Fatalf("restart bound %q, want %q", addr2, addr)
	}
	resp, err := c.RequestTimeout("echo", []byte("two"), time.Second)
	if err != nil {
		t.Fatalf("request after restart: %v", err)
	}
	if string(resp) != "two" {
		t.Fatalf("resp = %q", resp)
	}
}

// TestDefaultTimeout checks DialOpts.DefaultTimeout bounds requests
// whose context carries no deadline.
func TestDefaultTimeout(t *testing.T) {
	_, addr := startEcho(t, "inproc://default-timeout-test")
	c, err := DialOptions(addr, DialOpts{DefaultTimeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.RequestCtx(context.Background(), "slow", nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if d := time.Since(start); d > 150*time.Millisecond {
		t.Fatalf("default timeout took %v", d)
	}
}
