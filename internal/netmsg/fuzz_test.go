package netmsg

import (
	"bytes"
	"testing"
)

// FuzzFrameRoundTrip checks every encodable frame decodes back to
// itself. This target caught the u16 op-length truncation: an op longer
// than 65535 bytes used to encode a wrong length and desynchronize the
// stream; writeFrame now rejects it.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(0), byte(frameRequest), "echo", []byte("payload"))
	f.Add(uint64(0), uint64(42), byte(frameResponse), "", []byte{})
	f.Add(uint64(1<<63), uint64(1), byte(frameError), "server.query", []byte("boom"))
	f.Add(uint64(7), uint64(7), byte(250), "op\x00with\xffbytes", []byte{0, 1, 2})
	f.Fuzz(func(t *testing.T, corrID, traceID uint64, ftype byte, op string, payload []byte) {
		var buf bytes.Buffer
		if err := writeFrame(&buf, corrID, traceID, ftype, op, payload); err != nil {
			if len(op) <= 1<<16-1 && 19+len(op)+len(payload) <= MaxFrame {
				t.Fatalf("writeFrame rejected an encodable frame: %v", err)
			}
			return // correctly rejected: op or body over the header limits
		}
		gotCorr, gotTrace, gotType, gotOp, gotPayload, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame(writeFrame(...)): %v", err)
		}
		if gotCorr != corrID || gotTrace != traceID || gotType != ftype || gotOp != op {
			t.Fatalf("header round-trip: got (%d,%d,%d,%q) want (%d,%d,%d,%q)",
				gotCorr, gotTrace, gotType, gotOp, corrID, traceID, ftype, op)
		}
		if !bytes.Equal(gotPayload, payload) {
			t.Fatalf("payload round-trip: got %q want %q", gotPayload, payload)
		}
		if buf.Len() != 0 {
			t.Fatalf("%d bytes left after one frame", buf.Len())
		}
	})
}

// FuzzFrameDecode throws arbitrary bytes at the frame reader: it must
// reject or parse them without panicking or over-allocating, and
// anything it parses must re-encode to a decodable frame.
func FuzzFrameDecode(f *testing.F) {
	// A valid frame, a truncated header, an undersized body length, and
	// an op length pointing past the body.
	var valid bytes.Buffer
	_ = writeFrame(&valid, 3, 9, frameRequest, "echo", []byte("hi"))
	f.Add(valid.Bytes())
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{5, 0, 0, 0, 1, 2, 3, 4, 5})
	f.Add([]byte{19, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		corrID, traceID, ftype, op, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, corrID, traceID, ftype, op, payload); err != nil {
			t.Fatalf("re-encoding a decoded frame failed: %v", err)
		}
		if _, _, _, op2, _, err := readFrame(&buf); err != nil || op2 != op {
			t.Fatalf("second decode: op %q err %v", op2, err)
		}
	})
}
