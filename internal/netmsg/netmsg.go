// Package netmsg is VOLAP's messaging layer, standing in for ZeroMQ
// (§III-A): asynchronous request/reply with correlation IDs, multiplexed
// over a single connection per peer pair, with concurrent handler
// execution on the server side so one socket feeds many worker threads.
//
// Two transports share the code path: "tcp" for real multi-process
// deployments and "inproc" (net.Pipe behind a process-local registry) for
// tests and embedded clusters — mirroring ZeroMQ's tcp:// and inproc://
// endpoints.
package netmsg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// MaxFrame bounds a single message (64 MiB) to catch corrupt length
// prefixes before they allocate unbounded memory.
const MaxFrame = 64 << 20

// frame types.
const (
	frameRequest  = 0
	frameResponse = 1
	frameError    = 2
)

// ErrClosed is returned for operations on a closed client or server.
var ErrClosed = errors.New("netmsg: closed")

// ErrTimeout is returned when a request deadline expires.
var ErrTimeout = errors.New("netmsg: request timeout")

// RemoteError wraps an error string returned by a remote handler.
type RemoteError struct {
	Op  string
	Msg string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("netmsg: remote %s: %s", e.Op, e.Msg)
}

// Handler processes one request payload and returns the response payload.
// Handlers run concurrently.
type Handler func(payload []byte) ([]byte, error)

// --- inproc registry -----------------------------------------------------

var inproc = struct {
	sync.Mutex
	listeners map[string]*inprocListener
}{listeners: make(map[string]*inprocListener)}

type inprocListener struct {
	name   string
	conns  chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func (l *inprocListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		inproc.Lock()
		if inproc.listeners[l.name] == l {
			delete(inproc.listeners, l.name)
		}
		inproc.Unlock()
	})
	return nil
}

type inprocAddr string

func (a inprocAddr) Network() string { return "inproc" }
func (a inprocAddr) String() string  { return string(a) }

func (l *inprocListener) Addr() net.Addr { return inprocAddr("inproc://" + l.name) }

// --- server --------------------------------------------------------------

// Server accepts connections and dispatches requests to handlers.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	ln       net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool
	conns    map[net.Conn]struct{}
}

// NewServer returns a server with no handlers registered.
func NewServer() *Server {
	return &Server{handlers: make(map[string]Handler), conns: make(map[net.Conn]struct{})}
}

// Handle registers the handler for an operation name. It must be called
// before Listen.
func (s *Server) Handle(op string, h Handler) {
	s.mu.Lock()
	s.handlers[op] = h
	s.mu.Unlock()
}

// Listen binds the server and starts serving in the background. The
// address is either "inproc://name" or a TCP address like
// "127.0.0.1:0"; the bound address is returned (useful with port 0).
func (s *Server) Listen(addr string) (string, error) {
	if s.closed.Load() {
		return "", ErrClosed
	}
	if name, ok := strings.CutPrefix(addr, "inproc://"); ok {
		l := &inprocListener{name: name, conns: make(chan net.Conn, 16), closed: make(chan struct{})}
		inproc.Lock()
		if _, dup := inproc.listeners[name]; dup {
			inproc.Unlock()
			return "", fmt.Errorf("netmsg: inproc name %q already bound", name)
		}
		inproc.listeners[name] = l
		inproc.Unlock()
		s.ln = l
	} else {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return "", err
		}
		s.ln = ln
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s.Addr(), nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var writeMu sync.Mutex
	for {
		corrID, ftype, op, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		if ftype != frameRequest {
			continue // servers only consume requests
		}
		s.mu.RLock()
		h := s.handlers[op]
		s.mu.RUnlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			var resp []byte
			var herr error
			if h == nil {
				herr = fmt.Errorf("unknown operation %q", op)
			} else {
				resp, herr = h(payload)
			}
			writeMu.Lock()
			defer writeMu.Unlock()
			if herr != nil {
				_ = writeFrame(conn, corrID, frameError, op, []byte(herr.Error()))
				return
			}
			_ = writeFrame(conn, corrID, frameResponse, "", resp)
		}()
	}
}

// Close stops the server and closes all connections.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// --- client --------------------------------------------------------------

// pendingCall tracks one in-flight request.
type pendingCall struct {
	ch chan callResult
}

type callResult struct {
	payload []byte
	err     error
}

// Client is a connection to a Server. It is safe for concurrent use;
// requests are multiplexed by correlation ID.
type Client struct {
	conn    net.Conn
	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]*pendingCall
	nextID  uint64
	closed  bool

	readerDone chan struct{}
}

// Dial connects to addr ("inproc://name" or a TCP address).
func Dial(addr string) (*Client, error) {
	var conn net.Conn
	if name, ok := strings.CutPrefix(addr, "inproc://"); ok {
		inproc.Lock()
		l := inproc.listeners[name]
		inproc.Unlock()
		if l == nil {
			return nil, fmt.Errorf("netmsg: no inproc listener %q", name)
		}
		c1, c2 := net.Pipe()
		select {
		case l.conns <- c2:
		case <-l.closed:
			return nil, ErrClosed
		}
		conn = c1
	} else {
		c, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			return nil, err
		}
		conn = c
	}
	cl := &Client{conn: conn, pending: make(map[uint64]*pendingCall), readerDone: make(chan struct{})}
	go cl.readLoop()
	return cl, nil
}

func (c *Client) readLoop() {
	defer close(c.readerDone)
	for {
		corrID, ftype, op, payload, err := readFrame(c.conn)
		if err != nil {
			c.failAll(io.ErrUnexpectedEOF)
			return
		}
		c.mu.Lock()
		call := c.pending[corrID]
		delete(c.pending, corrID)
		c.mu.Unlock()
		if call == nil {
			continue
		}
		switch ftype {
		case frameResponse:
			call.ch <- callResult{payload: payload}
		case frameError:
			call.ch <- callResult{err: &RemoteError{Op: op, Msg: string(payload)}}
		}
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	for id, call := range c.pending {
		delete(c.pending, id)
		call.ch <- callResult{err: err}
	}
	c.closed = true
	c.mu.Unlock()
}

// Request sends op with payload and waits for the response.
func (c *Client) Request(op string, payload []byte) ([]byte, error) {
	return c.RequestTimeout(op, payload, 0)
}

// RequestTimeout is Request with a deadline (0 means no deadline).
func (c *Client) RequestTimeout(op string, payload []byte, timeout time.Duration) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.nextID++
	id := c.nextID
	call := &pendingCall{ch: make(chan callResult, 1)}
	c.pending[id] = call
	c.mu.Unlock()

	c.writeMu.Lock()
	err := writeFrame(c.conn, id, frameRequest, op, payload)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}

	var timer <-chan time.Time
	if timeout > 0 {
		tm := time.NewTimer(timeout)
		defer tm.Stop()
		timer = tm.C
	}
	select {
	case res := <-call.ch:
		return res.payload, res.err
	case <-timer:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, ErrTimeout
	}
}

// Close tears down the connection; in-flight requests fail.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.conn.Close()
	<-c.readerDone
}

// --- framing -------------------------------------------------------------

// writeFrame emits one frame: u32 body length, then u64 corrID, u8 type,
// u16 op length, op bytes, payload bytes.
func writeFrame(conn net.Conn, corrID uint64, ftype byte, op string, payload []byte) error {
	body := 8 + 1 + 2 + len(op) + len(payload)
	if body > MaxFrame {
		return fmt.Errorf("netmsg: frame of %d bytes exceeds limit", body)
	}
	buf := make([]byte, 4+body)
	binary.LittleEndian.PutUint32(buf, uint32(body))
	binary.LittleEndian.PutUint64(buf[4:], corrID)
	buf[12] = ftype
	binary.LittleEndian.PutUint16(buf[13:], uint16(len(op)))
	copy(buf[15:], op)
	copy(buf[15+len(op):], payload)
	_, err := conn.Write(buf)
	return err
}

// readFrame reads one frame written by writeFrame.
func readFrame(conn net.Conn) (corrID uint64, ftype byte, op string, payload []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(conn, hdr[:]); err != nil {
		return
	}
	body := binary.LittleEndian.Uint32(hdr[:])
	if body < 11 || body > MaxFrame {
		err = fmt.Errorf("netmsg: invalid frame length %d", body)
		return
	}
	buf := make([]byte, body)
	if _, err = io.ReadFull(conn, buf); err != nil {
		return
	}
	corrID = binary.LittleEndian.Uint64(buf)
	ftype = buf[8]
	opLen := int(binary.LittleEndian.Uint16(buf[9:]))
	if 11+opLen > int(body) {
		err = fmt.Errorf("netmsg: invalid op length %d", opLen)
		return
	}
	op = string(buf[11 : 11+opLen])
	payload = buf[11+opLen:]
	return
}
