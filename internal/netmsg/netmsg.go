// Package netmsg is VOLAP's messaging layer, standing in for ZeroMQ
// (§III-A): asynchronous request/reply with correlation IDs, multiplexed
// over a single connection per peer pair, with concurrent handler
// execution on the server side so one socket feeds many worker threads.
//
// Two transports share the code path: "tcp" for real multi-process
// deployments and "inproc" (net.Pipe behind a process-local registry) for
// tests and embedded clusters — mirroring ZeroMQ's tcp:// and inproc://
// endpoints.
package netmsg

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// MaxFrame bounds a single message (64 MiB) to catch corrupt length
// prefixes before they allocate unbounded memory.
const MaxFrame = 64 << 20

// frame types.
const (
	frameRequest  = 0
	frameResponse = 1
	frameError    = 2
)

// ErrClosed is returned for operations on a closed client or server.
var ErrClosed = errors.New("netmsg: closed")

// ErrTimeout is returned when a request deadline expires.
var ErrTimeout = errors.New("netmsg: request timeout")

// ErrConnLost fails requests that were in flight when the connection
// dropped. The client reconnects automatically on its next request, so
// callers that can safely re-issue the operation should retry.
var ErrConnLost = errors.New("netmsg: connection lost")

// RemoteError wraps an error string returned by a remote handler.
type RemoteError struct {
	Op  string
	Msg string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("netmsg: remote %s: %s", e.Op, e.Msg)
}

// Handler processes one request payload and returns the response payload.
// Handlers run concurrently. The context carries the request's trace ID
// (TraceIDFrom) and should be propagated into any downstream RPCs so one
// client operation stays correlatable across hops.
type Handler func(ctx context.Context, payload []byte) ([]byte, error)

// --- trace IDs -----------------------------------------------------------

// traceKey is the context key for the request-scoped trace ID.
type traceKey struct{}

// NewTraceID mints a random nonzero 64-bit trace ID.
func NewTraceID() uint64 {
	var b [8]byte
	for {
		if _, err := crand.Read(b[:]); err != nil {
			// crypto/rand never fails on supported platforms; fall back to
			// the time-seeded source rather than panic in a hot path.
			return uint64(rand.Int63()) | 1
		}
		if id := binary.LittleEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
}

// WithTraceID returns ctx carrying the trace ID. A zero ID clears it.
func WithTraceID(ctx context.Context, id uint64) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceIDFrom extracts the trace ID from ctx (0 when untraced).
func TraceIDFrom(ctx context.Context) uint64 {
	id, _ := ctx.Value(traceKey{}).(uint64)
	return id
}

// EnsureTraceID returns ctx guaranteed to carry a nonzero trace ID,
// minting one if absent, along with the ID.
func EnsureTraceID(ctx context.Context) (context.Context, uint64) {
	if id := TraceIDFrom(ctx); id != 0 {
		return ctx, id
	}
	id := NewTraceID()
	return WithTraceID(ctx, id), id
}

// --- inproc registry -----------------------------------------------------

var inproc = struct {
	sync.Mutex
	listeners map[string]*inprocListener
}{listeners: make(map[string]*inprocListener)}

type inprocListener struct {
	name   string
	conns  chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func (l *inprocListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		inproc.Lock()
		if inproc.listeners[l.name] == l {
			delete(inproc.listeners, l.name)
		}
		inproc.Unlock()
	})
	return nil
}

type inprocAddr string

func (a inprocAddr) Network() string { return "inproc" }
func (a inprocAddr) String() string  { return string(a) }

func (l *inprocListener) Addr() net.Addr { return inprocAddr("inproc://" + l.name) }

// --- server --------------------------------------------------------------

// Server accepts connections and dispatches requests to handlers.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	ln       net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool
	conns    map[net.Conn]struct{}

	fault *FaultInjector
	party string
}

// NewServer returns a server with no handlers registered.
func NewServer() *Server {
	return &Server{handlers: make(map[string]Handler), conns: make(map[net.Conn]struct{})}
}

// Handle registers the handler for an operation name. It must be called
// before Listen.
func (s *Server) Handle(op string, h Handler) {
	s.mu.Lock()
	s.handlers[op] = h
	s.mu.Unlock()
}

// SetFaults attaches a fault injector to the serving side under the
// given party label. Incoming requests and outgoing responses pass
// through the injector. Call before Listen; a nil injector disables
// injection.
func (s *Server) SetFaults(f *FaultInjector, party string) {
	s.mu.Lock()
	s.fault, s.party = f, party
	s.mu.Unlock()
}

// Listen binds the server and starts serving in the background. The
// address is either "inproc://name" or a TCP address like
// "127.0.0.1:0"; the bound address is returned (useful with port 0).
func (s *Server) Listen(addr string) (string, error) {
	if s.closed.Load() {
		return "", ErrClosed
	}
	if name, ok := strings.CutPrefix(addr, "inproc://"); ok {
		l := &inprocListener{name: name, conns: make(chan net.Conn, 16), closed: make(chan struct{})}
		inproc.Lock()
		if _, dup := inproc.listeners[name]; dup {
			inproc.Unlock()
			return "", fmt.Errorf("netmsg: inproc name %q already bound", name)
		}
		inproc.listeners[name] = l
		inproc.Unlock()
		s.ln = l
	} else {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return "", err
		}
		s.ln = ln
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s.Addr(), nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var writeMu sync.Mutex
	s.mu.RLock()
	fault, party := s.fault, s.party
	s.mu.RUnlock()
	peer := conn.RemoteAddr().String()
	for {
		corrID, traceID, ftype, op, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		if ftype != frameRequest {
			continue // servers only consume requests
		}
		dispatch := 1
		if fault != nil {
			action, delay := fault.act(FaultPoint{Party: party, Peer: peer, Op: op, Kind: KindRequest})
			switch action {
			case FaultDrop:
				continue // swallow the request; the client times out
			case FaultSever:
				return // defer closes the connection
			case FaultDelay:
				time.Sleep(delay)
			case FaultDuplicate:
				dispatch = 2
			}
		}
		s.mu.RLock()
		h := s.handlers[op]
		s.mu.RUnlock()
		for i := 0; i < dispatch; i++ {
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				ctx := context.Background()
				if traceID != 0 {
					ctx = WithTraceID(ctx, traceID)
				}
				var resp []byte
				var herr error
				if h == nil {
					herr = fmt.Errorf("unknown operation %q", op)
				} else {
					resp, herr = h(ctx, payload)
				}
				if fault != nil {
					action, delay := fault.act(FaultPoint{Party: party, Peer: peer, Op: op, Kind: KindResponse})
					switch action {
					case FaultDrop:
						return // response vanishes; the client times out
					case FaultSever:
						conn.Close()
						return
					case FaultDelay:
						time.Sleep(delay)
					}
				}
				writeMu.Lock()
				defer writeMu.Unlock()
				if herr != nil {
					_ = writeFrame(conn, corrID, traceID, frameError, op, []byte(herr.Error()))
					return
				}
				_ = writeFrame(conn, corrID, traceID, frameResponse, "", resp)
			}()
		}
	}
}

// Close stops the server and closes all connections.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// --- client --------------------------------------------------------------

// pendingCall tracks one in-flight request. conn is the connection the
// request was written to, so a dead connection fails only its own calls.
type pendingCall struct {
	ch   chan callResult
	conn net.Conn
}

type callResult struct {
	payload []byte
	err     error
}

// DialOpts tunes a client connection's deadline and reconnection policy.
// The zero value means: no default deadline, 5 s per connection attempt,
// reconnect backoff capped at 250 ms.
type DialOpts struct {
	// DefaultTimeout bounds any request whose context carries no deadline
	// of its own (0 = unbounded, the historical behavior).
	DefaultTimeout time.Duration
	// DialTimeout bounds one TCP connection attempt (default 5 s).
	DialTimeout time.Duration
	// MaxReconnectDelay caps the exponential backoff between reconnect
	// attempts (default 250 ms). The first retry starts at 5 ms and each
	// delay is jittered by ±50% so peers reconnecting together don't
	// stampede the listener.
	MaxReconnectDelay time.Duration
	// MaxDialAttempts bounds how many connection attempts one request
	// makes before giving up (default 3). Failing fast lets the caller's
	// routing layer refresh and try a different peer instead of burning
	// the whole deadline on one dead address.
	MaxDialAttempts int
	// Metrics, when non-nil, receives per-op request latency
	// (netmsg_request_seconds{op}), reconnect counts
	// (netmsg_reconnects_total) and dial failures
	// (netmsg_dial_failures_total) for this client.
	Metrics *metrics.Registry
	// Fault, when non-nil, intercepts this client's dials and frames for
	// chaos testing; Party labels the endpoint in fault points (defaults
	// to "client").
	Fault *FaultInjector
	Party string
}

func (o *DialOpts) fill() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.MaxReconnectDelay <= 0 {
		o.MaxReconnectDelay = 250 * time.Millisecond
	}
	if o.MaxDialAttempts <= 0 {
		o.MaxDialAttempts = 3
	}
	if o.Party == "" {
		o.Party = "client"
	}
}

// Client is a connection to a Server. It is safe for concurrent use;
// requests are multiplexed by correlation ID. After a connection failure
// the next request transparently re-dials with exponential backoff;
// requests that were in flight when the connection dropped fail with
// ErrConnLost (the layer above decides whether re-issuing is safe).
type Client struct {
	addr    string
	opts    DialOpts
	writeMu sync.Mutex

	mu      sync.Mutex
	conn    net.Conn // nil when disconnected
	pending map[uint64]*pendingCall
	nextID  uint64
	closed  bool

	dialMu sync.Mutex // serializes reconnection attempts

	// instrumentation (nil when opts.Metrics is nil)
	reqLatency   *metrics.HistogramVec
	reconnects   *metrics.Counter
	dialFailures *metrics.Counter
}

// Dial connects to addr ("inproc://name" or a TCP address) with default
// options.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, DialOpts{})
}

// DialOptions connects to addr with an explicit deadline/reconnect policy.
func DialOptions(addr string, opts DialOpts) (*Client, error) {
	opts.fill()
	cl := &Client{addr: addr, opts: opts, pending: make(map[uint64]*pendingCall)}
	if reg := opts.Metrics; reg != nil {
		cl.reqLatency = reg.Histogram("netmsg_request_seconds", "op")
		cl.reconnects = reg.Counter("netmsg_reconnects_total").With()
		cl.dialFailures = reg.Counter("netmsg_dial_failures_total").With()
	}
	conn, err := cl.dialConn()
	if err != nil {
		if cl.dialFailures != nil {
			cl.dialFailures.Inc()
		}
		return nil, err
	}
	cl.mu.Lock()
	cl.conn = conn
	cl.mu.Unlock()
	go cl.readLoop(conn)
	return cl, nil
}

// dialConn establishes one raw connection, consulting the client's
// fault injector first so partitioned or dial-blocked pairs fail without
// touching the transport.
func (c *Client) dialConn() (net.Conn, error) {
	if f := c.opts.Fault; f != nil {
		if err := f.dial(c.opts.Party, c.addr); err != nil {
			return nil, err
		}
	}
	return dialConn(c.addr, c.opts.DialTimeout)
}

// dialConn establishes one raw connection.
func dialConn(addr string, timeout time.Duration) (net.Conn, error) {
	if name, ok := strings.CutPrefix(addr, "inproc://"); ok {
		inproc.Lock()
		l := inproc.listeners[name]
		inproc.Unlock()
		if l == nil {
			return nil, fmt.Errorf("netmsg: no inproc listener %q", name)
		}
		c1, c2 := net.Pipe()
		select {
		case l.conns <- c2:
		case <-l.closed:
			return nil, ErrClosed
		}
		return c1, nil
	}
	return net.DialTimeout("tcp", addr, timeout)
}

// ensureConn returns a live connection, re-dialing with exponential
// backoff + jitter until ctx expires. Only one goroutine dials at a time;
// the rest wait on dialMu and reuse the fresh connection.
func (c *Client) ensureConn(ctx context.Context) (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if conn := c.conn; conn != nil {
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()

	c.dialMu.Lock()
	defer c.dialMu.Unlock()
	// A concurrent request may have reconnected while we waited.
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if conn := c.conn; conn != nil {
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()

	delay := 5 * time.Millisecond
	for attempt := 1; ; attempt++ {
		conn, err := c.dialConn()
		if err == nil {
			c.mu.Lock()
			if c.closed {
				c.mu.Unlock()
				conn.Close()
				return nil, ErrClosed
			}
			c.conn = conn
			c.mu.Unlock()
			if c.reconnects != nil {
				c.reconnects.Inc()
			}
			go c.readLoop(conn)
			return conn, nil
		}
		if c.dialFailures != nil {
			c.dialFailures.Inc()
		}
		if attempt >= c.opts.MaxDialAttempts {
			return nil, fmt.Errorf("netmsg: dial %s: %w", c.addr, err)
		}
		// Jittered exponential backoff, never sleeping past the deadline.
		sleep := delay/2 + time.Duration(rand.Int63n(int64(delay)))
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < sleep {
			return nil, fmt.Errorf("%w: %s unreachable: %v", ErrTimeout, c.addr, err)
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("netmsg: dial %s: %w (last error: %v)", c.addr, ctx.Err(), err)
		case <-time.After(sleep):
		}
		if delay *= 2; delay > c.opts.MaxReconnectDelay {
			delay = c.opts.MaxReconnectDelay
		}
	}
}

// dropConn discards a connection observed to be broken so the next
// request reconnects. In-flight requests on it are failed by its
// readLoop.
func (c *Client) dropConn(conn net.Conn) {
	conn.Close()
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
	}
	c.mu.Unlock()
}

func (c *Client) readLoop(conn net.Conn) {
	for {
		corrID, _, ftype, op, payload, err := readFrame(conn)
		if err != nil {
			c.failConn(conn)
			return
		}
		if f := c.opts.Fault; f != nil {
			action, delay := f.act(FaultPoint{Party: c.opts.Party, Peer: c.addr, Op: op, Kind: KindResponse})
			switch action {
			case FaultDrop:
				continue // discard the response; the caller times out
			case FaultSever:
				c.failConn(conn)
				return
			case FaultDelay:
				time.Sleep(delay)
			}
		}
		c.mu.Lock()
		call := c.pending[corrID]
		delete(c.pending, corrID)
		c.mu.Unlock()
		if call == nil {
			continue
		}
		switch ftype {
		case frameResponse:
			call.ch <- callResult{payload: payload}
		case frameError:
			call.ch <- callResult{err: &RemoteError{Op: op, Msg: string(payload)}}
		}
	}
}

// failConn fails every request in flight on the broken connection and
// clears it so the next request reconnects.
func (c *Client) failConn(conn net.Conn) {
	conn.Close()
	c.mu.Lock()
	for id, call := range c.pending {
		if call.conn == conn {
			delete(c.pending, id)
			call.ch <- callResult{err: ErrConnLost}
		}
	}
	if c.conn == conn {
		c.conn = nil
	}
	c.mu.Unlock()
}

// Request sends op with payload and waits for the response, bounded by
// the client's default deadline (if configured).
func (c *Client) Request(op string, payload []byte) ([]byte, error) {
	return c.RequestCtx(context.Background(), op, payload)
}

// RequestTimeout is Request with an explicit deadline (0 falls back to
// the client default).
func (c *Client) RequestTimeout(op string, payload []byte, timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		return c.RequestCtx(context.Background(), op, payload)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return c.RequestCtx(ctx, op, payload)
}

// RequestCtx sends op with payload and waits for the response until ctx
// is done. A context with no deadline inherits the client's
// DefaultTimeout. Deadline expiry returns ErrTimeout; cancellation
// returns ctx.Err(). Either way the pending call is abandoned
// immediately — a late response is discarded by the read loop. A trace
// ID on ctx (WithTraceID) travels in the frame header and surfaces in
// the remote handler's context.
func (c *Client) RequestCtx(ctx context.Context, op string, payload []byte) ([]byte, error) {
	if c.reqLatency != nil {
		defer c.reqLatency.With(op).Time()()
	}
	if _, ok := ctx.Deadline(); !ok && c.opts.DefaultTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.DefaultTimeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return nil, ctxErr(err)
	}
	conn, err := c.ensureConn(ctx)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.nextID++
	id := c.nextID
	call := &pendingCall{ch: make(chan callResult, 1), conn: conn}
	c.pending[id] = call
	c.mu.Unlock()

	writes := 1
	if f := c.opts.Fault; f != nil {
		action, delay := f.act(FaultPoint{Party: c.opts.Party, Peer: c.addr, Op: op, Kind: KindRequest})
		switch action {
		case FaultDrop:
			writes = 0 // pretend it was sent; the deadline fires below
		case FaultDuplicate:
			writes = 2
		case FaultSever:
			c.mu.Lock()
			delete(c.pending, id)
			c.mu.Unlock()
			c.dropConn(conn)
			return nil, fmt.Errorf("%w (%w)", ErrConnLost, ErrInjected)
		case FaultDelay:
			select {
			case <-ctx.Done():
				c.mu.Lock()
				delete(c.pending, id)
				c.mu.Unlock()
				return nil, ctxErr(ctx.Err())
			case <-time.After(delay):
			}
		}
	}
	for i := 0; i < writes; i++ {
		c.writeMu.Lock()
		err = writeFrame(conn, id, TraceIDFrom(ctx), frameRequest, op, payload)
		c.writeMu.Unlock()
		if err != nil {
			c.mu.Lock()
			delete(c.pending, id)
			c.mu.Unlock()
			c.dropConn(conn)
			return nil, err
		}
	}

	select {
	case res := <-call.ch:
		return res.payload, res.err
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, ctxErr(ctx.Err())
	}
}

// ctxErr maps context termination onto the package's error set.
func ctxErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrTimeout
	}
	return err
}

// Close tears down the connection; in-flight requests fail and future
// requests return ErrClosed (no reconnection).
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	for id, call := range c.pending {
		delete(c.pending, id)
		call.ch <- callResult{err: ErrClosed}
	}
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// --- framing -------------------------------------------------------------

// writeFrame emits one frame: u32 body length, then u64 corrID,
// u64 traceID, u8 type, u16 op length, op bytes, payload bytes. The
// trace ID rides every frame so one client operation is correlatable
// across every process it touches; zero means untraced. It takes an
// io.Writer (not net.Conn) so the encoder is fuzzable in isolation.
func writeFrame(w io.Writer, corrID, traceID uint64, ftype byte, op string, payload []byte) error {
	if len(op) > 1<<16-1 {
		// The header stores the op length in 16 bits; anything longer
		// would silently truncate and desynchronize the stream (found by
		// FuzzFrameRoundTrip).
		return fmt.Errorf("netmsg: op of %d bytes exceeds header field", len(op))
	}
	body := 8 + 8 + 1 + 2 + len(op) + len(payload)
	if body > MaxFrame {
		return fmt.Errorf("netmsg: frame of %d bytes exceeds limit", body)
	}
	buf := make([]byte, 4+body)
	binary.LittleEndian.PutUint32(buf, uint32(body))
	binary.LittleEndian.PutUint64(buf[4:], corrID)
	binary.LittleEndian.PutUint64(buf[12:], traceID)
	buf[20] = ftype
	binary.LittleEndian.PutUint16(buf[21:], uint16(len(op)))
	copy(buf[23:], op)
	copy(buf[23+len(op):], payload)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame written by writeFrame.
func readFrame(r io.Reader) (corrID, traceID uint64, ftype byte, op string, payload []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	body := binary.LittleEndian.Uint32(hdr[:])
	if body < 19 || body > MaxFrame {
		err = fmt.Errorf("netmsg: invalid frame length %d", body)
		return
	}
	buf := make([]byte, body)
	if _, err = io.ReadFull(r, buf); err != nil {
		return
	}
	corrID = binary.LittleEndian.Uint64(buf)
	traceID = binary.LittleEndian.Uint64(buf[8:])
	ftype = buf[16]
	opLen := int(binary.LittleEndian.Uint16(buf[17:]))
	if 19+opLen > int(body) {
		err = fmt.Errorf("netmsg: invalid op length %d", opLen)
		return
	}
	op = string(buf[19 : 19+opLen])
	payload = buf[19+opLen:]
	return
}
