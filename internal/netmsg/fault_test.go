package netmsg

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// dialFaulty connects to addr with the injector under the given party
// label and a short default deadline so drop-induced timeouts are quick.
func dialFaulty(t *testing.T, addr string, f *FaultInjector, party string) *Client {
	t.Helper()
	c, err := DialOptions(addr, DialOpts{
		DefaultTimeout: 500 * time.Millisecond,
		Fault:          f,
		Party:          party,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestFaultDropRequest checks a dropped request surfaces as a deadline
// expiry, the drop is counted, and — the rule being Count-limited — the
// next request goes through untouched.
func TestFaultDropRequest(t *testing.T) {
	_, addr := startEcho(t, "127.0.0.1:0")
	f := NewFaultInjector(1)
	f.Add(FaultRule{Op: "echo", Kind: KindRequest, Action: FaultDrop, Count: 1})
	c := dialFaulty(t, addr, f, "client")

	if _, err := c.Request("echo", []byte("x")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("dropped request err = %v, want ErrTimeout", err)
	}
	if got := f.InjectedTotal(); got != 1 {
		t.Fatalf("injected total = %d, want 1", got)
	}
	resp, err := c.Request("echo", []byte("again"))
	if err != nil {
		t.Fatalf("post-exhaustion request: %v", err)
	}
	if !bytes.Equal(resp, []byte("again")) {
		t.Fatalf("resp = %q", resp)
	}
}

// TestFaultSeverThenReconnect checks the reconnect contract: a severed
// request fails with ErrConnLost (marked ErrInjected), and the very next
// request re-dials and succeeds without any explicit recovery step.
func TestFaultSeverThenReconnect(t *testing.T) {
	_, addr := startEcho(t, "127.0.0.1:0")
	f := NewFaultInjector(1)
	f.Add(FaultRule{Kind: KindRequest, Action: FaultSever, Count: 1})
	c := dialFaulty(t, addr, f, "client")

	_, err := c.Request("echo", []byte("x"))
	if !errors.Is(err, ErrConnLost) {
		t.Fatalf("severed request err = %v, want ErrConnLost", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("severed request err = %v, want ErrInjected marker", err)
	}
	resp, err := c.Request("echo", []byte("back"))
	if err != nil {
		t.Fatalf("reconnect request: %v", err)
	}
	if !bytes.Equal(resp, []byte("back")) {
		t.Fatalf("resp = %q", resp)
	}
}

// TestFaultDuplicateRequest checks a duplicated request reaches the
// handler twice while the caller still sees exactly one reply.
func TestFaultDuplicateRequest(t *testing.T) {
	var calls atomic.Int64
	s := NewServer()
	s.Handle("count", func(_ context.Context, p []byte) ([]byte, error) {
		calls.Add(1)
		return p, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	f := NewFaultInjector(1)
	f.Add(FaultRule{Op: "count", Kind: KindRequest, Action: FaultDuplicate, Count: 1})
	c := dialFaulty(t, addr, f, "client")

	if _, err := c.Request("count", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// The duplicate dispatch is concurrent with the reply; wait for it.
	deadline := time.Now().Add(2 * time.Second)
	for calls.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("handler calls = %d, want 2", got)
	}
}

// TestFaultDelayRequest checks a delayed frame arrives late but intact.
func TestFaultDelayRequest(t *testing.T) {
	_, addr := startEcho(t, "127.0.0.1:0")
	f := NewFaultInjector(1)
	const hold = 50 * time.Millisecond
	f.Add(FaultRule{Op: "echo", Kind: KindRequest, Action: FaultDelay, Delay: hold, Count: 1})
	c := dialFaulty(t, addr, f, "client")

	start := time.Now()
	resp, err := c.Request("echo", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte("x")) {
		t.Fatalf("resp = %q", resp)
	}
	if took := time.Since(start); took < hold {
		t.Fatalf("delayed request took %v, want >= %v", took, hold)
	}
}

// TestFaultServerSide checks injection on the serving side: a server
// that drops one incoming request makes the client time out, then
// service resumes.
func TestFaultServerSide(t *testing.T) {
	f := NewFaultInjector(1)
	s := NewServer()
	s.SetFaults(f, "server")
	s.Handle("echo", func(_ context.Context, p []byte) ([]byte, error) { return p, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	f.Add(FaultRule{Party: "server", Op: "echo", Kind: KindRequest, Action: FaultDrop, Count: 1})

	c := dialFaulty(t, addr, nil, "")
	if _, err := c.Request("echo", []byte("x")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("server-dropped request err = %v, want ErrTimeout", err)
	}
	if _, err := c.Request("echo", []byte("y")); err != nil {
		t.Fatalf("after exhaustion: %v", err)
	}
}

// TestPartitionAndHeal checks Partition cuts both the live connection and
// re-dials until Heal restores the pair.
func TestPartitionAndHeal(t *testing.T) {
	_, addr := startEcho(t, "127.0.0.1:0")
	f := NewFaultInjector(1)
	c := dialFaulty(t, addr, f, "client")

	if _, err := c.Request("echo", []byte("pre")); err != nil {
		t.Fatalf("before partition: %v", err)
	}
	f.Partition("client", addr)
	_, err := c.Request("echo", []byte("cut"))
	if err == nil {
		t.Fatal("request across partition succeeded")
	}
	// The first attempt severs the live connection; a retry must fail at
	// dial time without reaching the server.
	if _, err := c.Request("echo", []byte("cut2")); err == nil {
		t.Fatal("re-dial across partition succeeded")
	}
	f.Heal("client", addr)
	resp, err := c.Request("echo", []byte("post"))
	if err != nil {
		t.Fatalf("after heal: %v", err)
	}
	if !bytes.Equal(resp, []byte("post")) {
		t.Fatalf("resp = %q", resp)
	}
}

// TestFaultRuleCancel checks a removed rule stops firing.
func TestFaultRuleCancel(t *testing.T) {
	_, addr := startEcho(t, "127.0.0.1:0")
	f := NewFaultInjector(1)
	cancel := f.Add(FaultRule{Op: "echo", Kind: KindRequest, Action: FaultDrop})
	cancel()
	c := dialFaulty(t, addr, f, "client")
	if _, err := c.Request("echo", []byte("x")); err != nil {
		t.Fatalf("request after rule cancel: %v", err)
	}
	if got := f.InjectedTotal(); got != 0 {
		t.Fatalf("injected total = %d, want 0", got)
	}
}

// TestFaultHookAndMetrics checks the hook fires per decision and the
// counters land in the Prometheus export.
func TestFaultHookAndMetrics(t *testing.T) {
	_, addr := startEcho(t, "127.0.0.1:0")
	f := NewFaultInjector(1)
	fired := make(chan FaultPoint, 4)
	f.SetHook(func(p FaultPoint, a FaultAction) {
		if a != FaultDrop {
			t.Errorf("hook action = %v, want drop", a)
		}
		fired <- p
	})
	reg := metrics.NewRegistry()
	f.RegisterMetrics(reg)
	f.Add(FaultRule{Op: "echo", Kind: KindRequest, Action: FaultDrop, Count: 1})
	c := dialFaulty(t, addr, f, "client")

	if _, err := c.Request("echo", []byte("x")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	select {
	case p := <-fired:
		if p.Op != "echo" || p.Kind != KindRequest || p.Party != "client" {
			t.Fatalf("hook point = %+v", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hook never fired")
	}
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"netmsg_faults_injected_total 1",
		"netmsg_faults_dropped_total 1",
		"netmsg_faults_severed_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus export missing %q:\n%s", want, out)
		}
	}
}

// TestFaultDialBlocked checks Drop rules on the dial point fail
// connection attempts without touching the network.
func TestFaultDialBlocked(t *testing.T) {
	_, addr := startEcho(t, "127.0.0.1:0")
	f := NewFaultInjector(1)
	f.Add(FaultRule{Kind: KindDial, Action: FaultDrop})
	if _, err := DialOptions(addr, DialOpts{Fault: f, Party: "client"}); !errors.Is(err, ErrInjected) {
		t.Fatalf("blocked dial err = %v, want ErrInjected", err)
	}
}

// TestFaultRuleMatching exercises the rule matcher's field semantics.
func TestFaultRuleMatching(t *testing.T) {
	cases := []struct {
		name  string
		rule  FaultRule
		point FaultPoint
		want  bool
	}{
		{"zero rule matches all", FaultRule{}, FaultPoint{Party: "a", Peer: "b", Op: "c", Kind: KindRequest}, true},
		{"party mismatch", FaultRule{Party: "x"}, FaultPoint{Party: "a"}, false},
		{"op match", FaultRule{Op: "c"}, FaultPoint{Op: "c", Kind: KindResponse}, true},
		{"kind mismatch", FaultRule{Kind: KindDial}, FaultPoint{Kind: KindRequest}, false},
		{"peer match", FaultRule{Peer: "b"}, FaultPoint{Peer: "b"}, true},
	}
	for _, tc := range cases {
		if got := tc.rule.matches(tc.point); got != tc.want {
			t.Errorf("%s: matches = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestNilInjectorPasses checks the nil receiver contract every call site
// relies on.
func TestNilInjectorPasses(t *testing.T) {
	var f *FaultInjector
	if a, _ := f.act(FaultPoint{Op: "x"}); a != FaultPass {
		t.Fatalf("nil injector action = %v, want pass", a)
	}
}
