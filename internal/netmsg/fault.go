package netmsg

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// ErrInjected marks an error produced by a FaultInjector rather than a
// real transport failure. Tests can assert on it; production code never
// sees it because injectors are only wired up explicitly.
var ErrInjected = errors.New("netmsg: injected fault")

// FaultAction is what an injector decides to do with one frame or dial.
type FaultAction uint8

const (
	// FaultPass lets the frame through untouched.
	FaultPass FaultAction = iota
	// FaultDrop silently discards the frame. A dropped request or
	// response surfaces to the caller as a deadline expiry; a dropped
	// dial reports a connection failure.
	FaultDrop
	// FaultDelay holds the frame for the rule's Delay before passing it.
	FaultDelay
	// FaultDuplicate delivers the frame twice (dials and responses are
	// passed through once; duplication is meaningful for requests).
	FaultDuplicate
	// FaultSever closes the underlying connection. The client's next
	// request reconnects; in-flight requests fail with ErrConnLost.
	FaultSever
)

func (a FaultAction) String() string {
	switch a {
	case FaultPass:
		return "pass"
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultDuplicate:
		return "duplicate"
	case FaultSever:
		return "sever"
	}
	return fmt.Sprintf("action(%d)", a)
}

// FaultKind says where in the message path a fault point sits.
type FaultKind uint8

const (
	// KindAny matches every kind (the zero value, for rules).
	KindAny FaultKind = iota
	// KindDial is a client connection attempt.
	KindDial
	// KindRequest is a request frame (client write, or server read
	// dispatch on the serving side).
	KindRequest
	// KindResponse is a response or error frame.
	KindResponse
)

func (k FaultKind) String() string {
	switch k {
	case KindAny:
		return "any"
	case KindDial:
		return "dial"
	case KindRequest:
		return "request"
	case KindResponse:
		return "response"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// FaultPoint identifies one interception site: which labeled endpoint
// (Party) is talking to which peer address, on which operation, at which
// stage. Response frames on the client side carry the op "" (the frame
// header only repeats the op on errors), so rules that must match
// responses should match by Party/Peer.
type FaultPoint struct {
	Party string
	Peer  string
	Op    string
	Kind  FaultKind
}

// FaultRule matches fault points and prescribes an action. Empty string
// fields and KindAny match everything, so the zero rule plus an Action
// applies to all traffic of the endpoint it is installed on.
type FaultRule struct {
	Party string // "" = any party label
	Peer  string // "" = any peer address
	Op    string // "" = any operation
	Kind  FaultKind

	Action FaultAction
	Delay  time.Duration // used by FaultDelay
	// Prob applies the rule with this probability (seeded RNG); 0 means
	// always. Use Count, not Prob, when a test needs determinism.
	Prob float64
	// Count limits how many times the rule fires before exhausting
	// itself; 0 means unlimited. Exhausted rules stop matching, which
	// gives tests "sever exactly the first request" style determinism.
	Count int
}

func (r *FaultRule) matches(p FaultPoint) bool {
	if r.Party != "" && r.Party != p.Party {
		return false
	}
	if r.Peer != "" && r.Peer != p.Peer {
		return false
	}
	if r.Op != "" && r.Op != p.Op {
		return false
	}
	if r.Kind != KindAny && r.Kind != p.Kind {
		return false
	}
	return true
}

type activeRule struct {
	FaultRule
	remaining int // applications left; <0 = unlimited
}

// FaultInjector decides, per frame and per dial, whether to drop, delay,
// duplicate, or sever. One injector is typically shared by every
// endpoint under test (clients via DialOpts.Fault, servers via
// Server.SetFaults) so a single Partition call cuts both directions.
//
// All methods are safe for concurrent use. Decisions draw from a seeded
// RNG, so a fixed seed plus Count-limited rules gives fully
// deterministic fault schedules.
type FaultInjector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*activeRule
	parts map[[2]string]struct{}
	hook  func(FaultPoint, FaultAction)

	drops      atomic.Uint64
	delays     atomic.Uint64
	duplicates atomic.Uint64
	severs     atomic.Uint64
}

// NewFaultInjector returns an injector whose probabilistic decisions are
// driven by the given seed.
func NewFaultInjector(seed int64) *FaultInjector {
	return &FaultInjector{
		rng:   rand.New(rand.NewSource(seed)),
		parts: make(map[[2]string]struct{}),
	}
}

// Add installs a rule and returns a function that removes it again.
func (f *FaultInjector) Add(r FaultRule) (cancel func()) {
	ar := &activeRule{FaultRule: r, remaining: -1}
	if r.Count > 0 {
		ar.remaining = r.Count
	}
	f.mu.Lock()
	f.rules = append(f.rules, ar)
	f.mu.Unlock()
	return func() {
		f.mu.Lock()
		for i, got := range f.rules {
			if got == ar {
				f.rules = append(f.rules[:i], f.rules[i+1:]...)
				break
			}
		}
		f.mu.Unlock()
	}
}

// Partition severs the pair (a, b): every dial and frame between a party
// labeled a and peer address b (or vice versa) is cut until Heal. Either
// side may be a party label or a peer address; matching is symmetric.
func (f *FaultInjector) Partition(a, b string) {
	f.mu.Lock()
	f.parts[[2]string{a, b}] = struct{}{}
	f.mu.Unlock()
}

// Heal removes a partition installed by Partition.
func (f *FaultInjector) Heal(a, b string) {
	f.mu.Lock()
	delete(f.parts, [2]string{a, b})
	delete(f.parts, [2]string{b, a})
	f.mu.Unlock()
}

// SetHook installs a callback invoked (outside the injector's lock) for
// every non-pass decision. Tests use it to synchronize on "the fault has
// actually fired" instead of sleeping.
func (f *FaultInjector) SetHook(fn func(FaultPoint, FaultAction)) {
	f.mu.Lock()
	f.hook = fn
	f.mu.Unlock()
}

// RegisterMetrics exposes the injector's counters on reg:
// netmsg_faults_injected_total plus per-action
// netmsg_faults_{dropped,delayed,duplicated,severed}_total.
func (f *FaultInjector) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("netmsg_faults_injected_total", f.InjectedTotal)
	reg.CounterFunc("netmsg_faults_dropped_total", f.drops.Load)
	reg.CounterFunc("netmsg_faults_delayed_total", f.delays.Load)
	reg.CounterFunc("netmsg_faults_duplicated_total", f.duplicates.Load)
	reg.CounterFunc("netmsg_faults_severed_total", f.severs.Load)
}

// InjectedTotal reports how many faults (all actions) have fired.
func (f *FaultInjector) InjectedTotal() uint64 {
	return f.drops.Load() + f.delays.Load() + f.duplicates.Load() + f.severs.Load()
}

// partitionedLocked reports whether the (party, peer) pair is cut.
func (f *FaultInjector) partitionedLocked(party, peer string) bool {
	if _, ok := f.parts[[2]string{party, peer}]; ok {
		return true
	}
	_, ok := f.parts[[2]string{peer, party}]
	return ok
}

// act decides what happens at one fault point. It records the decision
// in the counters and fires the hook for anything but FaultPass.
func (f *FaultInjector) act(p FaultPoint) (FaultAction, time.Duration) {
	if f == nil {
		return FaultPass, 0
	}
	f.mu.Lock()
	action, delay := FaultPass, time.Duration(0)
	if f.partitionedLocked(p.Party, p.Peer) {
		action = FaultSever
	} else {
		for _, r := range f.rules {
			if r.remaining == 0 || !r.matches(p) {
				continue
			}
			if r.Prob > 0 && f.rng.Float64() >= r.Prob {
				continue
			}
			if r.remaining > 0 {
				r.remaining--
			}
			action, delay = r.Action, r.Delay
			break
		}
	}
	hook := f.hook
	f.mu.Unlock()

	switch action {
	case FaultPass:
		return FaultPass, 0
	case FaultDrop:
		f.drops.Add(1)
	case FaultDelay:
		f.delays.Add(1)
	case FaultDuplicate:
		f.duplicates.Add(1)
	case FaultSever:
		f.severs.Add(1)
	}
	if hook != nil {
		hook(p, action)
	}
	return action, delay
}

// dial applies the injector to a connection attempt; a non-nil error
// means the dial must fail without touching the network.
func (f *FaultInjector) dial(party, addr string) error {
	action, delay := f.act(FaultPoint{Party: party, Peer: addr, Kind: KindDial})
	switch action {
	case FaultDelay:
		time.Sleep(delay)
	case FaultDrop, FaultSever:
		return fmt.Errorf("%w: dial %s blocked for %q", ErrInjected, addr, party)
	}
	return nil
}
