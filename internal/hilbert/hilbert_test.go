package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// order2D is the expected visiting order of the classic first-order 2-D
// Hilbert curve produced by this implementation; the exact orientation is
// implementation-defined, so the test below checks curve properties rather
// than one fixed layout.

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("New(nil) should fail")
	}
	if _, err := New(make([]uint, 65)); err == nil {
		t.Error("New with 65 dims should fail")
	}
	if _, err := New([]uint{65}); err == nil {
		t.Error("New with 65-bit dim should fail")
	}
	c, err := New([]uint{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalBits() != 8 {
		t.Errorf("TotalBits = %d, want 8", c.TotalBits())
	}
	if c.Words() != 1 {
		t.Errorf("Words = %d, want 1", c.Words())
	}
}

func TestIndexValidation(t *testing.T) {
	c := MustNew([]uint{2, 2})
	if _, err := c.Index([]uint64{1}); err == nil {
		t.Error("short point should fail")
	}
	if _, err := c.Index([]uint64{4, 0}); err == nil {
		t.Error("out-of-range coordinate should fail")
	}
}

// TestBijective2D exhaustively checks that the 2-D curve of order 5 is a
// bijection onto [0, 2^10).
func TestBijective2D(t *testing.T) {
	c := MustNew([]uint{5, 5})
	seen := make(map[string][]uint64)
	for x := uint64(0); x < 32; x++ {
		for y := uint64(0); y < 32; y++ {
			idx, err := c.Index([]uint64{x, y})
			if err != nil {
				t.Fatal(err)
			}
			key := idx.String()
			if prev, dup := seen[key]; dup {
				t.Fatalf("index collision: (%d,%d) and %v -> %s", x, y, prev, key)
			}
			seen[key] = []uint64{x, y}
		}
	}
	if len(seen) != 1024 {
		t.Fatalf("got %d distinct indices, want 1024", len(seen))
	}
}

// TestAdjacency checks the defining locality property of a Hilbert curve
// with equal side lengths: consecutive index values map to points that
// differ by exactly 1 in exactly one coordinate.
func TestAdjacency(t *testing.T) {
	cases := []struct {
		name string
		m    []uint
	}{
		{"2d-order4", []uint{4, 4}},
		{"3d-order3", []uint{3, 3, 3}},
		{"4d-order2", []uint{2, 2, 2, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := MustNew(tc.m)
			total := uint64(1) << c.TotalBits()
			var prev []uint64
			for h := uint64(0); h < total; h++ {
				idx := Index{w: []uint64{h}}
				p, err := c.Coords(idx)
				if err != nil {
					t.Fatal(err)
				}
				if prev != nil {
					diffDims, manhattan := 0, uint64(0)
					for j := range p {
						if p[j] != prev[j] {
							diffDims++
							d := p[j] - prev[j]
							if prev[j] > p[j] {
								d = prev[j] - p[j]
							}
							manhattan += d
						}
					}
					if diffDims != 1 || manhattan != 1 {
						t.Fatalf("h=%d: %v -> %v not adjacent", h, prev, p)
					}
				}
				prev = p
			}
		})
	}
}

// TestRoundTrip checks Index/Coords are inverse on random points for a
// variety of unequal bit widths, including multi-word indices.
func TestRoundTrip(t *testing.T) {
	cases := [][]uint{
		{1},
		{7},
		{1, 1},
		{3, 5},
		{0, 4},
		{4, 0, 2},
		{5, 5, 5, 5},
		{1, 2, 3, 4, 5, 6, 7, 8},
		{19, 19, 16, 9, 17, 5, 7, 11}, // TPC-DS-like widths
		{12, 12, 12, 12, 12, 12, 12, 12, 12, 12, 12, 12, 12, 12, 12, 12}, // 16 dims, 192 bits
	}
	rng := rand.New(rand.NewSource(42))
	for _, m := range cases {
		c := MustNew(m)
		for trial := 0; trial < 200; trial++ {
			p := make([]uint64, len(m))
			for j := range p {
				if m[j] > 0 {
					p[j] = rng.Uint64() & mask(m[j])
				}
			}
			idx, err := c.Index(p)
			if err != nil {
				t.Fatal(err)
			}
			q, err := c.Coords(idx)
			if err != nil {
				t.Fatal(err)
			}
			for j := range p {
				if p[j] != q[j] {
					t.Fatalf("m=%v p=%v roundtrip=%v", m, p, q)
				}
			}
		}
	}
}

// TestCompactMatchesPaddedOrder checks the central theorem of compact
// Hilbert indices: the compact index orders points exactly as the standard
// Hilbert curve of order max(m_j) does when narrow coordinates are
// zero-padded.
func TestCompactMatchesPaddedOrder(t *testing.T) {
	m := []uint{2, 5, 3}
	compact := MustNew(m)
	padded := MustNew([]uint{5, 5, 5})
	rng := rand.New(rand.NewSource(7))
	type pair struct{ c, p Index }
	pts := make([]pair, 0, 300)
	for i := 0; i < 300; i++ {
		p := []uint64{rng.Uint64() & mask(m[0]), rng.Uint64() & mask(m[1]), rng.Uint64() & mask(m[2])}
		ci, err := compact.Index(p)
		if err != nil {
			t.Fatal(err)
		}
		pi, err := padded.Index(p)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, pair{ci, pi})
	}
	for i := range pts {
		for j := range pts {
			co := pts[i].c.Compare(pts[j].c)
			po := pts[i].p.Compare(pts[j].p)
			if co != po {
				t.Fatalf("order mismatch: compact %d vs padded %d for points %d,%d", co, po, i, j)
			}
		}
	}
}

// TestBijectiveCompact exhaustively checks bijectivity for a small
// unequal-width curve: every point maps to a distinct index, indices are
// dense in [0, 2^total), and decode inverts encode.
func TestBijectiveCompact(t *testing.T) {
	m := []uint{2, 3, 1}
	c := MustNew(m)
	total := 1 << c.TotalBits()
	hits := make([]bool, total)
	for x := uint64(0); x < 4; x++ {
		for y := uint64(0); y < 8; y++ {
			for z := uint64(0); z < 2; z++ {
				idx, err := c.Index([]uint64{x, y, z})
				if err != nil {
					t.Fatal(err)
				}
				v := idx.w[0]
				if v >= uint64(total) {
					t.Fatalf("index %d out of range", v)
				}
				if hits[v] {
					t.Fatalf("index %d hit twice", v)
				}
				hits[v] = true
				q, err := c.Coords(idx)
				if err != nil {
					t.Fatal(err)
				}
				if q[0] != x || q[1] != y || q[2] != z {
					t.Fatalf("roundtrip (%d,%d,%d) -> %v", x, y, z, q)
				}
			}
		}
	}
	for v, ok := range hits {
		if !ok {
			t.Fatalf("index %d never produced", v)
		}
	}
}

// TestRoundTripQuick property-tests the encode/decode inverse with
// testing/quick over a fixed high-dimensional curve.
func TestRoundTripQuick(t *testing.T) {
	m := []uint{9, 3, 14, 1, 6, 22, 4, 8, 10, 2}
	c := MustNew(m)
	f := func(raw [10]uint64) bool {
		p := make([]uint64, len(m))
		for j := range p {
			p[j] = raw[j] & mask(m[j])
		}
		idx, err := c.Index(p)
		if err != nil {
			return false
		}
		q, err := c.Coords(idx)
		if err != nil {
			return false
		}
		for j := range p {
			if p[j] != q[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexCompare(t *testing.T) {
	a := Index{w: []uint64{0, 5}}
	b := Index{w: []uint64{0, 9}}
	c := Index{w: []uint64{1, 0}}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("single-word compare wrong")
	}
	if b.Compare(c) != -1 {
		t.Error("multi-word compare wrong")
	}
	if !a.Less(b) || b.Less(a) {
		t.Error("Less wrong")
	}
}

func TestIndexWordsRoundTrip(t *testing.T) {
	a := Index{w: []uint64{3, 14, 15}}
	b := IndexFromWords(a.Words())
	if a.Compare(b) != 0 {
		t.Error("IndexFromWords(Words()) != original")
	}
	var zero Index
	if !zero.IsZero() || a.IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestHelpers(t *testing.T) {
	if mask(64) != ^uint64(0) || mask(3) != 7 || mask(0) != 0 {
		t.Error("mask wrong")
	}
	if rotr(0b001, 1, 3) != 0b100 {
		t.Errorf("rotr wrong: %b", rotr(0b001, 1, 3))
	}
	if rotl(0b100, 1, 3) != 0b001 {
		t.Errorf("rotl wrong: %b", rotl(0b100, 1, 3))
	}
	for i := uint64(0); i < 64; i++ {
		if gcInverse(gc(i), 6) != i {
			t.Fatalf("gcInverse(gc(%d)) = %d", i, gcInverse(gc(i), 6))
		}
	}
	if tsb(0b0111) != 3 || tsb(0b0110) != 0 {
		t.Error("tsb wrong")
	}
}

func TestShlOr(t *testing.T) {
	h := []uint64{0, 0}
	shlOr(h, 4, 0xF)
	if h[0] != 0 || h[1] != 0xF {
		t.Fatalf("after first shlOr: %x", h)
	}
	shlOr(h, 64, 0xABCD)
	if h[0] != 0xF || h[1] != 0xABCD {
		t.Fatalf("after 64-bit shlOr: %x", h)
	}
	shlOr(h, 8, 0x11)
	if h[0] != 0xF00 || h[1] != 0xABCD11 {
		t.Fatalf("after 8-bit shlOr: %x", h)
	}
}

func TestReadBits(t *testing.T) {
	// Index of 12 bits spread over one word: value 0xABC.
	h := []uint64{0xABC}
	if got := readBits(h, 12, 0, 4); got != 0xA {
		t.Fatalf("readBits(0,4) = %x", got)
	}
	if got := readBits(h, 12, 4, 8); got != 0xBC {
		t.Fatalf("readBits(4,8) = %x", got)
	}
	if got := readBits(h, 12, 0, 0); got != 0 {
		t.Fatalf("readBits count=0 = %x", got)
	}
}

func BenchmarkIndex8Dim(b *testing.B) {
	c := MustNew([]uint{19, 19, 16, 9, 17, 5, 7, 11})
	p := []uint64{123456, 654321, 40000, 300, 99999, 17, 80, 1000}
	buf := make([]uint64, c.Words())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.IndexInto(p, buf)
	}
}

func BenchmarkIndex64Dim(b *testing.B) {
	m := make([]uint, 64)
	p := make([]uint64, 64)
	for i := range m {
		m[i] = 8
		p[i] = uint64(i * 3)
	}
	c := MustNew(m)
	buf := make([]uint64, c.Words())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.IndexInto(p, buf)
	}
}
