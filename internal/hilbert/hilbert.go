// Package hilbert implements compact Hilbert indices for domains with
// unequal side lengths, following Hamilton and Rau-Chaplin ("Compact
// Hilbert indices: Space-filling curves for domains with unequal side
// lengths", IPL 105(5), 2008) — the construction cited by the VOLAP paper
// for the Hilbert PDC tree.
//
// A Curve is parameterized by the number of dimensions n (up to 64) and a
// bit width m_j per dimension. The compact Hilbert index of a point is its
// rank along the standard Hilbert curve of order max(m_j) restricted to
// the valid sub-grid, and therefore uses exactly sum(m_j) bits: no space
// is wasted on narrow dimensions, which is what makes storing an index per
// tree node affordable (paper §III-D). Indices may exceed 64 bits, so they
// are stored as big-endian multi-word integers.
package hilbert

import (
	"fmt"
	"math/bits"
)

// Curve maps points of a fixed-width multi-dimensional grid to compact
// Hilbert indices and back. A Curve is immutable and safe for concurrent
// use.
type Curve struct {
	n     int    // number of dimensions, 1..64
	m     []uint // bits per dimension
	maxM  uint   // max over m
	total uint   // sum over m = index width in bits
	words int    // words per Index
}

// New builds a curve for the given per-dimension bit widths.
func New(bitsPerDim []uint) (*Curve, error) {
	if len(bitsPerDim) == 0 || len(bitsPerDim) > 64 {
		return nil, fmt.Errorf("hilbert: %d dimensions, want 1..64", len(bitsPerDim))
	}
	c := &Curve{n: len(bitsPerDim), m: append([]uint(nil), bitsPerDim...)}
	for j, mj := range c.m {
		if mj > 64 {
			return nil, fmt.Errorf("hilbert: dimension %d has %d bits, max 64", j, mj)
		}
		if mj > c.maxM {
			c.maxM = mj
		}
		c.total += mj
	}
	c.words = int((c.total + 63) / 64)
	if c.words == 0 {
		c.words = 1
	}
	return c, nil
}

// MustNew is New that panics on error.
func MustNew(bitsPerDim []uint) *Curve {
	c, err := New(bitsPerDim)
	if err != nil {
		panic(err)
	}
	return c
}

// Dims returns the number of dimensions.
func (c *Curve) Dims() int { return c.n }

// TotalBits returns the width of an index in bits.
func (c *Curve) TotalBits() uint { return c.total }

// Words returns the number of 64-bit words per index.
func (c *Curve) Words() int { return c.words }

// Index is a compact Hilbert index: an unsigned integer of Curve.TotalBits
// bits stored as big-endian 64-bit words. Indices from the same Curve have
// equal word counts and compare lexicographically.
type Index struct {
	w []uint64
}

// Compare returns -1, 0, or +1 ordering a before/equal/after b. Indices
// must come from the same curve.
func (a Index) Compare(b Index) int {
	for i := range a.w {
		switch {
		case a.w[i] < b.w[i]:
			return -1
		case a.w[i] > b.w[i]:
			return 1
		}
	}
	return 0
}

// Less reports whether a orders strictly before b.
func (a Index) Less(b Index) bool { return a.Compare(b) < 0 }

// IsZero reports whether the index has no words (the zero value, distinct
// from a curve's index 0).
func (a Index) IsZero() bool { return a.w == nil }

// Words returns a copy of the index words (big-endian).
func (a Index) Words() []uint64 { return append([]uint64(nil), a.w...) }

// IndexFromWords rebuilds an Index from Words output.
func IndexFromWords(w []uint64) Index { return Index{w: append([]uint64(nil), w...)} }

// String renders the index as fixed-width hex.
func (a Index) String() string {
	s := ""
	for _, w := range a.w {
		s += fmt.Sprintf("%016x", w)
	}
	return s
}

// mask returns an n-bit mask (n in 1..64).
func mask(n uint) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

// rotr rotates the low n bits of x right by k.
func rotr(x uint64, k, n uint) uint64 {
	k %= n
	if k == 0 {
		return x & mask(n)
	}
	return ((x >> k) | (x << (n - k))) & mask(n)
}

// rotl rotates the low n bits of x left by k.
func rotl(x uint64, k, n uint) uint64 {
	k %= n
	if k == 0 {
		return x & mask(n)
	}
	return ((x << k) | (x >> (n - k))) & mask(n)
}

// gc returns the Gray code of i.
func gc(i uint64) uint64 { return i ^ (i >> 1) }

// gcInverse returns i such that gc(i) == g, for n-bit values.
func gcInverse(g uint64, n uint) uint64 {
	i := g
	for shift := uint(1); shift < n; shift <<= 1 {
		i ^= i >> shift
	}
	return i & mask(n)
}

// tsb returns the number of trailing set bits of i.
func tsb(i uint64) uint { return uint(bits.TrailingZeros64(^i)) }

// entryPoint returns e(w), the entry point of the w-th sub-hypercube.
func entryPoint(w uint64) uint64 {
	if w == 0 {
		return 0
	}
	return gc(2 * ((w - 1) / 2))
}

// direction returns d(w), the intra sub-hypercube direction, in [0, n).
func direction(w uint64, n uint) uint {
	switch {
	case w == 0:
		return 0
	case w%2 == 0:
		return tsb(w-1) % n
	default:
		return tsb(w) % n
	}
}

// grayCodeRank extracts the bits of w at the free positions indicated by
// mu, most significant first.
func grayCodeRank(mu, w uint64, n uint) uint64 {
	var r uint64
	for k := int(n) - 1; k >= 0; k-- {
		if mu>>uint(k)&1 == 1 {
			r = r<<1 | (w>>uint(k))&1
		}
	}
	return r
}

// grayCodeRankInverse reconstructs w from its rank r given the free-bit
// mask mu and the forced Gray-code bit pattern pi (both in the rotated
// frame). freeBits is popcount(mu).
func grayCodeRankInverse(mu, pi, r uint64, n uint, freeBits int) uint64 {
	var w uint64
	var prev uint64 // bit k+1 of w
	j := freeBits - 1
	for k := int(n) - 1; k >= 0; k-- {
		var wk uint64
		if mu>>uint(k)&1 == 1 {
			wk = (r >> uint(j)) & 1
			j--
		} else {
			// Constrained position: the Gray-code bit l_k is forced to
			// pi_k, and l_k = w_k xor w_{k+1}.
			wk = ((pi >> uint(k)) & 1) ^ prev
		}
		w |= wk << uint(k)
		prev = wk
	}
	return w
}

// shlOr shifts the big-endian multi-word integer h left by k bits
// (0 <= k <= 64) and ors v into the vacated low bits.
func shlOr(h []uint64, k uint, v uint64) {
	if k == 0 {
		return
	}
	if k == 64 {
		copy(h, h[1:])
		h[len(h)-1] = v
		return
	}
	for i := 0; i < len(h)-1; i++ {
		h[i] = h[i]<<k | h[i+1]>>(64-k)
	}
	h[len(h)-1] = h[len(h)-1]<<k | v
}

// readBits reads count bits (0 <= count <= 64) starting at bit offset pos
// from the END of the used portion of h: the index occupies the low
// `total` bits of the big-endian words, and pos counts from the most
// significant used bit.
func readBits(h []uint64, total, pos, count uint) uint64 {
	if count == 0 {
		return 0
	}
	// Bit positions counted from the least significant bit of the whole
	// word array.
	width := uint(len(h)) * 64
	hi := width - (total - pos) // offset from MSB of array to first bit
	var out uint64
	for i := uint(0); i < count; i++ {
		bitFromMSB := hi + i
		word := bitFromMSB / 64
		bit := 63 - bitFromMSB%64
		out = out<<1 | (h[word]>>bit)&1
	}
	return out
}

// Index computes the compact Hilbert index of the point p (one coordinate
// per dimension; coordinate j must fit in m_j bits). The result is written
// into a freshly allocated Index.
func (c *Curve) Index(p []uint64) (Index, error) {
	if len(p) != c.n {
		return Index{}, fmt.Errorf("hilbert: point has %d coords, curve has %d dims", len(p), c.n)
	}
	for j, v := range p {
		if c.m[j] < 64 && v >= uint64(1)<<c.m[j] {
			return Index{}, fmt.Errorf("hilbert: coord %d = %d exceeds %d bits", j, v, c.m[j])
		}
	}
	h := make([]uint64, c.words)
	c.indexInto(p, h)
	return Index{w: h}, nil
}

// IndexInto is Index writing into a caller-provided word buffer of length
// Words(), avoiding the per-call allocation on hot paths.
func (c *Curve) IndexInto(p []uint64, buf []uint64) Index {
	for i := range buf {
		buf[i] = 0
	}
	c.indexInto(p, buf)
	return Index{w: buf}
}

func (c *Curve) indexInto(p []uint64, h []uint64) {
	n := uint(c.n)
	var e uint64
	var d uint
	for i := int(c.maxM) - 1; i >= 0; i-- {
		// Active dimensions at this bit position and the bit-vector l of
		// the point's i-th bits (inactive dimensions contribute 0).
		var mu, l uint64
		for j := 0; j < c.n; j++ {
			if c.m[j] > uint(i) {
				mu |= 1 << uint(j)
				l |= ((p[j] >> uint(i)) & 1) << uint(j)
			}
		}
		muR := rotr(mu, d+1, n)
		lT := rotr(l^e, d+1, n) // T_{e,d}(l)
		w := gcInverse(lT, n)
		r := grayCodeRank(muR, w, n)
		shlOr(h, uint(bits.OnesCount64(mu)), r)
		e ^= rotl(entryPoint(w), d+1, n)
		d = (d + direction(w, n) + 1) % n
	}
}

// Coords decodes an index produced by this curve back into point
// coordinates. It is the inverse of Index and exists chiefly so that the
// encoder can be property-tested for bijectivity.
func (c *Curve) Coords(idx Index) ([]uint64, error) {
	if len(idx.w) != c.words {
		return nil, fmt.Errorf("hilbert: index has %d words, curve has %d", len(idx.w), c.words)
	}
	p := make([]uint64, c.n)
	n := uint(c.n)
	var e uint64
	var d uint
	pos := uint(0)
	for i := int(c.maxM) - 1; i >= 0; i-- {
		var mu uint64
		for j := 0; j < c.n; j++ {
			if c.m[j] > uint(i) {
				mu |= 1 << uint(j)
			}
		}
		free := bits.OnesCount64(mu)
		muR := rotr(mu, d+1, n)
		pi := rotr(e, d+1, n) &^ muR
		r := readBits(idx.w, c.total, pos, uint(free))
		pos += uint(free)
		w := grayCodeRankInverse(muR, pi, r, n, free)
		l := gc(w)
		l = rotl(l, d+1, n) ^ e // T^{-1}_{e,d}
		for j := 0; j < c.n; j++ {
			if c.m[j] > uint(i) {
				p[j] |= ((l >> uint(j)) & 1) << uint(i)
			}
		}
		e ^= rotl(entryPoint(w), d+1, n)
		d = (d + direction(w, n) + 1) % n
	}
	return p, nil
}
