// Package wire provides small binary encoding helpers shared by the
// messaging layer, the coordination service, and the shard/key
// serialization code. All integers are encoded little-endian; variable
// length integers use the unsigned LEB128-style encoding from
// encoding/binary.
package wire

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrShortBuffer is returned by Reader methods when the underlying buffer
// does not contain enough bytes for the requested value.
var ErrShortBuffer = errors.New("wire: short buffer")

// Writer accumulates a binary message. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the given initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded message. The returned slice aliases the
// writer's internal buffer and is valid until the next mutation.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset truncates the writer, retaining its buffer.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Uint8 appends a single byte.
func (w *Writer) Uint8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.Uint8(1)
	} else {
		w.Uint8(0)
	}
}

// Uint16 appends a fixed-width 16-bit integer.
func (w *Writer) Uint16(v uint16) {
	w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
}

// Uint32 appends a fixed-width 32-bit integer.
func (w *Writer) Uint32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// Uint64 appends a fixed-width 64-bit integer.
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// Uvarint appends a variable-width unsigned integer.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Varint appends a variable-width signed integer.
func (w *Writer) Varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Float64 appends an IEEE-754 double.
func (w *Writer) Float64(v float64) {
	w.Uint64(math.Float64bits(v))
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Bytes1 appends a length-prefixed byte slice.
func (w *Writer) Bytes1(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Raw appends b verbatim, with no length prefix. Callers own the
// framing (the WAL record codec length-prefixes and checksums whole
// payloads itself).
func (w *Writer) Raw(b []byte) {
	w.buf = append(w.buf, b...)
}

// Uint64s appends a length-prefixed slice of 64-bit integers using
// varint encoding for the elements.
func (w *Writer) Uint64s(vs []uint64) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.Uvarint(v)
	}
}

// Reader decodes a binary message produced by Writer.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over buf. The reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrShortBuffer
	}
}

// Uint8 reads a single byte.
func (r *Reader) Uint8() uint8 {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// Bool reads a boolean encoded as one byte.
func (r *Reader) Bool() bool { return r.Uint8() != 0 }

// Uint16 reads a fixed-width 16-bit integer.
func (r *Reader) Uint16() uint16 {
	if r.err != nil || r.off+2 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

// Uint32 reads a fixed-width 32-bit integer.
func (r *Reader) Uint32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// Uint64 reads a fixed-width 64-bit integer.
func (r *Reader) Uint64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// Uvarint reads a variable-width unsigned integer.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Varint reads a variable-width signed integer.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Float64 reads an IEEE-754 double.
func (r *Reader) Float64() float64 {
	return math.Float64frombits(r.Uint64())
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil || r.off+int(n) > len(r.buf) || n > uint64(len(r.buf)) {
		r.fail()
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// Bytes1 reads a length-prefixed byte slice. The returned slice is a copy.
func (r *Reader) Bytes1() []byte {
	n := r.Uvarint()
	if r.err != nil || n > uint64(len(r.buf)) || r.off+int(n) > len(r.buf) {
		r.fail()
		return nil
	}
	b := make([]byte, n)
	copy(b, r.buf[r.off:r.off+int(n)])
	r.off += int(n)
	return b
}

// Uint64s reads a length-prefixed slice of varint-encoded integers.
func (r *Reader) Uint64s() []uint64 {
	n := r.Uvarint()
	if r.err != nil || n > uint64(len(r.buf)) {
		r.fail()
		return nil
	}
	vs := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		vs = append(vs, r.Uvarint())
		if r.err != nil {
			return nil
		}
	}
	return vs
}
