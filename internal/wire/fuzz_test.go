package wire

import (
	"bytes"
	"math"
	"testing"
)

// FuzzRoundTrip writes one value of every scalar and composite kind and
// checks the reader returns them bit-for-bit with no bytes left over.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(0), false, uint16(0), uint32(0), uint64(0), uint64(0), int64(0), 0.0, "", []byte{})
	f.Add(uint8(255), true, uint16(65535), uint32(1<<31), uint64(1)<<63, uint64(300), int64(-1), math.Inf(-1), "héllo", []byte{0xff, 0x00})
	f.Add(uint8(7), true, uint16(1), uint32(2), uint64(3), uint64(1<<62), int64(math.MinInt64), math.NaN(), "a\x00b", bytes.Repeat([]byte{9}, 40))
	f.Fuzz(func(t *testing.T, u8 uint8, b bool, u16 uint16, u32 uint32, u64, uv uint64, v int64, fl float64, s string, bs []byte) {
		w := NewWriter(64)
		w.Uint8(u8)
		w.Bool(b)
		w.Uint16(u16)
		w.Uint32(u32)
		w.Uint64(u64)
		w.Uvarint(uv)
		w.Varint(v)
		w.Float64(fl)
		w.String(s)
		w.Bytes1(bs)
		w.Uint64s([]uint64{uv, u64})

		r := NewReader(w.Bytes())
		if got := r.Uint8(); got != u8 {
			t.Fatalf("Uint8 = %d, want %d", got, u8)
		}
		if got := r.Bool(); got != b {
			t.Fatalf("Bool = %v, want %v", got, b)
		}
		if got := r.Uint16(); got != u16 {
			t.Fatalf("Uint16 = %d, want %d", got, u16)
		}
		if got := r.Uint32(); got != u32 {
			t.Fatalf("Uint32 = %d, want %d", got, u32)
		}
		if got := r.Uint64(); got != u64 {
			t.Fatalf("Uint64 = %d, want %d", got, u64)
		}
		if got := r.Uvarint(); got != uv {
			t.Fatalf("Uvarint = %d, want %d", got, uv)
		}
		if got := r.Varint(); got != v {
			t.Fatalf("Varint = %d, want %d", got, v)
		}
		if got := r.Float64(); math.Float64bits(got) != math.Float64bits(fl) {
			t.Fatalf("Float64 = %v, want %v", got, fl)
		}
		if got := r.String(); got != s {
			t.Fatalf("String = %q, want %q", got, s)
		}
		if got := r.Bytes1(); !bytes.Equal(got, bs) {
			t.Fatalf("Bytes1 = %q, want %q", got, bs)
		}
		if got := r.Uint64s(); len(got) != 2 || got[0] != uv || got[1] != u64 {
			t.Fatalf("Uint64s = %v, want [%d %d]", got, uv, u64)
		}
		if r.Err() != nil {
			t.Fatalf("reader error after full round trip: %v", r.Err())
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d bytes left over", r.Remaining())
		}
	})
}

// FuzzReaderArbitrary feeds arbitrary bytes through every decoder: the
// reader must fail cleanly (sticky Err) rather than panic or
// over-allocate, whatever the input.
func FuzzReaderArbitrary(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02})
	f.Add([]byte{200, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		_ = r.Uvarint()
		_ = r.String()
		_ = r.Bytes1()
		_ = r.Uint64s()
		_ = r.Varint()
		_ = r.Float64()
		_ = r.Uint8()
		if r.Err() == nil && r.Remaining() < 0 {
			t.Fatal("negative remaining without error")
		}
	})
}
