package wire

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripAllTypes(t *testing.T) {
	w := NewWriter(64)
	w.Uint8(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.Uint16(0xBEEF)
	w.Uint32(0xDEADBEEF)
	w.Uint64(0x0123456789ABCDEF)
	w.Uvarint(300)
	w.Varint(-77)
	w.Float64(math.Pi)
	w.String("héllo")
	w.Bytes1([]byte{1, 2, 3})
	w.Uint64s([]uint64{9, 8, 7})

	r := NewReader(w.Bytes())
	if r.Uint8() != 0xAB || !r.Bool() || r.Bool() {
		t.Fatal("uint8/bool wrong")
	}
	if r.Uint16() != 0xBEEF || r.Uint32() != 0xDEADBEEF || r.Uint64() != 0x0123456789ABCDEF {
		t.Fatal("fixed ints wrong")
	}
	if r.Uvarint() != 300 || r.Varint() != -77 {
		t.Fatal("varints wrong")
	}
	if r.Float64() != math.Pi {
		t.Fatal("float wrong")
	}
	if r.String() != "héllo" {
		t.Fatal("string wrong")
	}
	b := r.Bytes1()
	if len(b) != 3 || b[2] != 3 {
		t.Fatal("bytes wrong")
	}
	vs := r.Uint64s()
	if len(vs) != 3 || vs[0] != 9 {
		t.Fatal("uint64s wrong")
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.Uint64(1)
	if w.Len() != 8 {
		t.Fatalf("Len = %d", w.Len())
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("Reset failed")
	}
}

// TestShortBuffer checks every reader method fails cleanly on truncated
// input and that the error sticks.
func TestShortBuffer(t *testing.T) {
	checks := []func(r *Reader){
		func(r *Reader) { r.Uint8() },
		func(r *Reader) { r.Uint16() },
		func(r *Reader) { r.Uint32() },
		func(r *Reader) { r.Uint64() },
		func(r *Reader) { r.Uvarint() },
		func(r *Reader) { r.Varint() },
		func(r *Reader) { r.Float64() },
		func(r *Reader) { _ = r.String() },
		func(r *Reader) { r.Bytes1() },
		func(r *Reader) { r.Uint64s() },
	}
	for i, check := range checks {
		r := NewReader(nil)
		check(r)
		if r.Err() != ErrShortBuffer {
			t.Errorf("check %d: err = %v", i, r.Err())
		}
		// The error is sticky: further reads return zero values.
		if r.Uint64() != 0 || r.String() != "" {
			t.Errorf("check %d: reads after error not zero", i)
		}
	}
	// Length prefix larger than the buffer.
	w := NewWriter(8)
	w.Uvarint(1000)
	r := NewReader(w.Bytes())
	if r.Bytes1() != nil || r.Err() == nil {
		t.Error("oversized length prefix should fail")
	}
	w.Reset()
	w.Uvarint(1 << 40)
	r = NewReader(w.Bytes())
	if r.Uint64s() != nil || r.Err() == nil {
		t.Error("oversized slice count should fail")
	}
}

// TestVarintQuick property-tests varint round trips.
func TestVarintQuick(t *testing.T) {
	f := func(u uint64, v int64) bool {
		w := NewWriter(24)
		w.Uvarint(u)
		w.Varint(v)
		r := NewReader(w.Bytes())
		return r.Uvarint() == u && r.Varint() == v && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
