package coord

import (
	"context"
	"errors"
	"strings"
	"sync"
	"time"

	"repro/internal/netmsg"
	"repro/internal/wire"
)

// Coordinator is the API shared by the embedded Store and the remote
// Client, so every VOLAP component runs identically in-process and
// distributed.
type Coordinator interface {
	Create(path string, data []byte) (int64, error)
	Set(path string, data []byte, expected int64) (int64, error)
	CreateOrSet(path string, data []byte) (int64, error)
	Get(path string) ([]byte, int64, error)
	Exists(path string) bool
	Children(path string) ([]string, error)
	Delete(path string, expected int64) error
	Snapshot(prefix string) (map[string][]byte, uint64)
	EventsSince(since uint64, prefix string, limit int, timeout time.Duration) ([]Event, uint64, error)

	// Liveness sessions (§III-B): ephemeral nodes vanish when their
	// session misses heartbeats for a TTL, firing deletion watches.
	CreateSession(ttl time.Duration) (SessionID, error)
	Heartbeat(id SessionID) error
	CloseSession(id SessionID) error
	CreateEphemeral(path string, data []byte, owner SessionID) (int64, error)
}

var (
	_ Coordinator = (*Store)(nil)
	_ Coordinator = (*Client)(nil)
)

// Serve exposes the store over netmsg at addr and returns the server and
// its bound address.
func Serve(s *Store, addr string) (*netmsg.Server, string, error) {
	srv := netmsg.NewServer()
	srv.Handle("coord.create", func(_ context.Context, p []byte) ([]byte, error) {
		r := wire.NewReader(p)
		path, data := r.String(), r.Bytes1()
		if r.Err() != nil {
			return nil, r.Err()
		}
		v, err := s.Create(path, data)
		return versionReply(v), err
	})
	srv.Handle("coord.set", func(_ context.Context, p []byte) ([]byte, error) {
		r := wire.NewReader(p)
		path, data, expected := r.String(), r.Bytes1(), r.Varint()
		if r.Err() != nil {
			return nil, r.Err()
		}
		v, err := s.Set(path, data, expected)
		return versionReply(v), err
	})
	srv.Handle("coord.createorset", func(_ context.Context, p []byte) ([]byte, error) {
		r := wire.NewReader(p)
		path, data := r.String(), r.Bytes1()
		if r.Err() != nil {
			return nil, r.Err()
		}
		v, err := s.CreateOrSet(path, data)
		return versionReply(v), err
	})
	srv.Handle("coord.get", func(_ context.Context, p []byte) ([]byte, error) {
		r := wire.NewReader(p)
		path := r.String()
		if r.Err() != nil {
			return nil, r.Err()
		}
		data, v, err := s.Get(path)
		if err != nil {
			return nil, err
		}
		w := wire.NewWriter(len(data) + 12)
		w.Varint(v)
		w.Bytes1(data)
		return w.Bytes(), nil
	})
	srv.Handle("coord.exists", func(_ context.Context, p []byte) ([]byte, error) {
		r := wire.NewReader(p)
		path := r.String()
		if r.Err() != nil {
			return nil, r.Err()
		}
		w := wire.NewWriter(1)
		w.Bool(s.Exists(path))
		return w.Bytes(), nil
	})
	srv.Handle("coord.children", func(_ context.Context, p []byte) ([]byte, error) {
		r := wire.NewReader(p)
		path := r.String()
		if r.Err() != nil {
			return nil, r.Err()
		}
		names, err := s.Children(path)
		if err != nil {
			return nil, err
		}
		w := wire.NewWriter(64)
		w.Uvarint(uint64(len(names)))
		for _, n := range names {
			w.String(n)
		}
		return w.Bytes(), nil
	})
	srv.Handle("coord.delete", func(_ context.Context, p []byte) ([]byte, error) {
		r := wire.NewReader(p)
		path, expected := r.String(), r.Varint()
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, s.Delete(path, expected)
	})
	srv.Handle("coord.snapshot", func(_ context.Context, p []byte) ([]byte, error) {
		r := wire.NewReader(p)
		prefix := r.String()
		if r.Err() != nil {
			return nil, r.Err()
		}
		snap, seq := s.Snapshot(prefix)
		w := wire.NewWriter(256)
		w.Uint64(seq)
		w.Uvarint(uint64(len(snap)))
		for path, data := range snap {
			w.String(path)
			w.Bytes1(data)
		}
		return w.Bytes(), nil
	})
	srv.Handle("coord.events", func(_ context.Context, p []byte) ([]byte, error) {
		r := wire.NewReader(p)
		since := r.Uint64()
		prefix := r.String()
		limit := int(r.Uvarint())
		timeout := time.Duration(r.Uvarint()) * time.Millisecond
		if r.Err() != nil {
			return nil, r.Err()
		}
		evs, cursor, err := s.EventsSince(since, prefix, limit, timeout)
		if err != nil {
			return nil, err
		}
		w := wire.NewWriter(256)
		w.Uint64(cursor)
		w.Uvarint(uint64(len(evs)))
		for _, ev := range evs {
			w.Uint64(ev.Seq)
			w.Uint8(uint8(ev.Type))
			w.String(ev.Path)
			w.Bytes1(ev.Data)
			w.Varint(ev.Version)
		}
		return w.Bytes(), nil
	})
	srv.Handle("coord.mksession", func(_ context.Context, p []byte) ([]byte, error) {
		r := wire.NewReader(p)
		ttl := time.Duration(r.Uvarint()) * time.Millisecond
		if r.Err() != nil {
			return nil, r.Err()
		}
		id, err := s.CreateSession(ttl)
		if err != nil {
			return nil, err
		}
		w := wire.NewWriter(8)
		w.Uint64(uint64(id))
		return w.Bytes(), nil
	})
	srv.Handle("coord.heartbeat", func(_ context.Context, p []byte) ([]byte, error) {
		r := wire.NewReader(p)
		id := SessionID(r.Uint64())
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, s.Heartbeat(id)
	})
	srv.Handle("coord.rmsession", func(_ context.Context, p []byte) ([]byte, error) {
		r := wire.NewReader(p)
		id := SessionID(r.Uint64())
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, s.CloseSession(id)
	})
	srv.Handle("coord.mkephemeral", func(_ context.Context, p []byte) ([]byte, error) {
		r := wire.NewReader(p)
		path, data, owner := r.String(), r.Bytes1(), SessionID(r.Uint64())
		if r.Err() != nil {
			return nil, r.Err()
		}
		v, err := s.CreateEphemeral(path, data, owner)
		return versionReply(v), err
	})
	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, "", err
	}
	return srv, bound, nil
}

func versionReply(v int64) []byte {
	w := wire.NewWriter(10)
	w.Varint(v)
	return w.Bytes()
}

// Client is a remote Coordinator over netmsg.
type Client struct {
	c *netmsg.Client
}

// DialClient connects to a served store.
func DialClient(addr string) (*Client, error) {
	return DialClientOptions(addr, netmsg.DialOpts{})
}

// DialClientOptions connects with explicit netmsg options (deadlines,
// fault injection for chaos tests).
func DialClientOptions(addr string, opts netmsg.DialOpts) (*Client, error) {
	c, err := netmsg.DialOptions(addr, opts)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// Close closes the connection.
func (c *Client) Close() { c.c.Close() }

// mapRemoteError rehydrates the store's sentinel errors so errors.Is
// works across the wire.
func mapRemoteError(err error) error {
	if err == nil {
		return nil
	}
	var re *netmsg.RemoteError
	if !errors.As(err, &re) {
		return err
	}
	for _, sentinel := range []error{ErrNoNode, ErrNodeExists, ErrBadVersion, ErrCompacted, ErrBadPath, ErrStoreClosed, ErrNoSession, ErrEphemeral} {
		if strings.HasPrefix(re.Msg, sentinel.Error()) {
			return sentinel
		}
	}
	return err
}

// Create implements Coordinator.
func (c *Client) Create(path string, data []byte) (int64, error) {
	w := wire.NewWriter(len(path) + len(data) + 8)
	w.String(path)
	w.Bytes1(data)
	resp, err := c.c.Request("coord.create", w.Bytes())
	if err != nil {
		return 0, mapRemoteError(err)
	}
	return wire.NewReader(resp).Varint(), nil
}

// Set implements Coordinator.
func (c *Client) Set(path string, data []byte, expected int64) (int64, error) {
	w := wire.NewWriter(len(path) + len(data) + 16)
	w.String(path)
	w.Bytes1(data)
	w.Varint(expected)
	resp, err := c.c.Request("coord.set", w.Bytes())
	if err != nil {
		return 0, mapRemoteError(err)
	}
	return wire.NewReader(resp).Varint(), nil
}

// CreateOrSet implements Coordinator.
func (c *Client) CreateOrSet(path string, data []byte) (int64, error) {
	w := wire.NewWriter(len(path) + len(data) + 8)
	w.String(path)
	w.Bytes1(data)
	resp, err := c.c.Request("coord.createorset", w.Bytes())
	if err != nil {
		return 0, mapRemoteError(err)
	}
	return wire.NewReader(resp).Varint(), nil
}

// Get implements Coordinator.
func (c *Client) Get(path string) ([]byte, int64, error) {
	w := wire.NewWriter(len(path) + 4)
	w.String(path)
	resp, err := c.c.Request("coord.get", w.Bytes())
	if err != nil {
		return nil, 0, mapRemoteError(err)
	}
	r := wire.NewReader(resp)
	v := r.Varint()
	data := r.Bytes1()
	return data, v, r.Err()
}

// Exists implements Coordinator.
func (c *Client) Exists(path string) bool {
	w := wire.NewWriter(len(path) + 4)
	w.String(path)
	resp, err := c.c.Request("coord.exists", w.Bytes())
	if err != nil {
		return false
	}
	return wire.NewReader(resp).Bool()
}

// Children implements Coordinator.
func (c *Client) Children(path string) ([]string, error) {
	w := wire.NewWriter(len(path) + 4)
	w.String(path)
	resp, err := c.c.Request("coord.children", w.Bytes())
	if err != nil {
		return nil, mapRemoteError(err)
	}
	r := wire.NewReader(resp)
	n := r.Uvarint()
	names := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		names = append(names, r.String())
	}
	return names, r.Err()
}

// Delete implements Coordinator.
func (c *Client) Delete(path string, expected int64) error {
	w := wire.NewWriter(len(path) + 12)
	w.String(path)
	w.Varint(expected)
	_, err := c.c.Request("coord.delete", w.Bytes())
	return mapRemoteError(err)
}

// Snapshot implements Coordinator. A transport failure yields an empty
// snapshot at cursor 0, which a watcher treats as "retry".
func (c *Client) Snapshot(prefix string) (map[string][]byte, uint64) {
	w := wire.NewWriter(len(prefix) + 4)
	w.String(prefix)
	resp, err := c.c.Request("coord.snapshot", w.Bytes())
	if err != nil {
		return nil, 0
	}
	r := wire.NewReader(resp)
	seq := r.Uint64()
	n := r.Uvarint()
	out := make(map[string][]byte, n)
	for i := uint64(0); i < n; i++ {
		path := r.String()
		out[path] = r.Bytes1()
	}
	if r.Err() != nil {
		return nil, 0
	}
	return out, seq
}

// CreateSession implements Coordinator.
func (c *Client) CreateSession(ttl time.Duration) (SessionID, error) {
	w := wire.NewWriter(12)
	w.Uvarint(uint64(ttl / time.Millisecond))
	resp, err := c.c.Request("coord.mksession", w.Bytes())
	if err != nil {
		return 0, mapRemoteError(err)
	}
	return SessionID(wire.NewReader(resp).Uint64()), nil
}

// Heartbeat implements Coordinator.
func (c *Client) Heartbeat(id SessionID) error {
	w := wire.NewWriter(8)
	w.Uint64(uint64(id))
	_, err := c.c.Request("coord.heartbeat", w.Bytes())
	return mapRemoteError(err)
}

// CloseSession implements Coordinator.
func (c *Client) CloseSession(id SessionID) error {
	w := wire.NewWriter(8)
	w.Uint64(uint64(id))
	_, err := c.c.Request("coord.rmsession", w.Bytes())
	return mapRemoteError(err)
}

// CreateEphemeral implements Coordinator.
func (c *Client) CreateEphemeral(path string, data []byte, owner SessionID) (int64, error) {
	w := wire.NewWriter(len(path) + len(data) + 16)
	w.String(path)
	w.Bytes1(data)
	w.Uint64(uint64(owner))
	resp, err := c.c.Request("coord.mkephemeral", w.Bytes())
	if err != nil {
		return 0, mapRemoteError(err)
	}
	return wire.NewReader(resp).Varint(), nil
}

// EventsSince implements Coordinator via long-polling.
func (c *Client) EventsSince(since uint64, prefix string, limit int, timeout time.Duration) ([]Event, uint64, error) {
	w := wire.NewWriter(len(prefix) + 24)
	w.Uint64(since)
	w.String(prefix)
	w.Uvarint(uint64(limit))
	w.Uvarint(uint64(timeout / time.Millisecond))
	// Give the transport twice the poll window before declaring failure.
	netTimeout := 2*timeout + 5*time.Second
	resp, err := c.c.RequestTimeout("coord.events", w.Bytes(), netTimeout)
	if err != nil {
		return nil, since, mapRemoteError(err)
	}
	r := wire.NewReader(resp)
	cursor := r.Uint64()
	n := r.Uvarint()
	evs := make([]Event, 0, n)
	for i := uint64(0); i < n; i++ {
		evs = append(evs, Event{
			Seq:     r.Uint64(),
			Type:    EventType(r.Uint8()),
			Path:    r.String(),
			Data:    r.Bytes1(),
			Version: r.Varint(),
		})
	}
	return evs, cursor, r.Err()
}

// Watcher streams events under a prefix to a callback, in order, from a
// background goroutine. On log compaction (a watcher that fell too far
// behind) OnReset is invoked so the owner can resync from Snapshot.
type Watcher struct {
	OnEvent func(Event)
	OnReset func(snapshot map[string][]byte)

	stop chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// NewWatcher starts watching prefix from the given cursor.
func NewWatcher(c Coordinator, prefix string, since uint64, onEvent func(Event), onReset func(map[string][]byte)) *Watcher {
	w := &Watcher{OnEvent: onEvent, OnReset: onReset, stop: make(chan struct{}), done: make(chan struct{})}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		defer close(w.done)
		cursor := since
		for {
			select {
			case <-w.stop:
				return
			default:
			}
			evs, next, err := c.EventsSince(cursor, prefix, 1024, 500*time.Millisecond)
			switch {
			case err == nil:
				cursor = next
				for _, ev := range evs {
					w.OnEvent(ev)
				}
			case errors.Is(err, ErrCompacted):
				snap, seq := c.Snapshot(prefix)
				cursor = seq
				if w.OnReset != nil {
					w.OnReset(snap)
				}
			case errors.Is(err, ErrStoreClosed):
				return
			default:
				// Transient transport failure: back off briefly.
				select {
				case <-w.stop:
					return
				case <-time.After(100 * time.Millisecond):
				}
			}
		}
	}()
	return w
}

// Stop terminates the watch loop and waits for it to exit.
func (w *Watcher) Stop() {
	close(w.stop)
	w.wg.Wait()
}
