package coord

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestPathValidation(t *testing.T) {
	s := NewStore()
	for _, bad := range []string{"", "no-slash", "/trailing/", "//double", "/"} {
		if _, err := s.Create(bad, nil); err == nil {
			t.Errorf("Create(%q) should fail", bad)
		}
	}
}

func TestCreateGetSetDelete(t *testing.T) {
	s := NewStore()
	if _, err := s.Create("/a/b/c", []byte("v0")); err != nil {
		t.Fatal(err)
	}
	// Implicit parents exist.
	if !s.Exists("/a") || !s.Exists("/a/b") {
		t.Error("implicit parents missing")
	}
	if _, err := s.Create("/a/b/c", nil); !errors.Is(err, ErrNodeExists) {
		t.Errorf("duplicate create = %v", err)
	}
	data, v, err := s.Get("/a/b/c")
	if err != nil || string(data) != "v0" || v != 0 {
		t.Fatalf("get = %q v%d %v", data, v, err)
	}
	if _, err := s.Set("/a/b/c", []byte("v1"), 5); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad-version set = %v", err)
	}
	v, err = s.Set("/a/b/c", []byte("v1"), 0)
	if err != nil || v != 1 {
		t.Fatalf("set = v%d %v", v, err)
	}
	if _, _, err := s.Get("/nope"); !errors.Is(err, ErrNoNode) {
		t.Errorf("get missing = %v", err)
	}
	if err := s.Delete("/a/b", AnyVersion); err == nil {
		t.Error("delete with children should fail")
	}
	if err := s.Delete("/a/b/c", 0); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad-version delete = %v", err)
	}
	if err := s.Delete("/a/b/c", 1); err != nil {
		t.Fatal(err)
	}
	if s.Exists("/a/b/c") {
		t.Error("node survived delete")
	}
}

func TestCreateOrSet(t *testing.T) {
	s := NewStore()
	if _, err := s.CreateOrSet("/x", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if v, err := s.CreateOrSet("/x", []byte("b")); err != nil || v != 1 {
		t.Fatalf("upsert = v%d %v", v, err)
	}
	data, _, _ := s.Get("/x")
	if string(data) != "b" {
		t.Errorf("data = %q", data)
	}
}

func TestChildren(t *testing.T) {
	s := NewStore()
	for _, p := range []string{"/w/2", "/w/1", "/w/10", "/w/1/sub"} {
		if _, err := s.CreateOrSet(p, nil); err != nil {
			t.Fatal(err)
		}
	}
	names, err := s.Children("/w")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1", "10", "2"}
	if len(names) != len(want) {
		t.Fatalf("children = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("children = %v, want %v", names, want)
		}
	}
	if names, _ := s.Children("/empty"); len(names) != 0 {
		t.Error("children of missing node should be empty")
	}
}

func TestEventsSinceOrdering(t *testing.T) {
	s := NewStore()
	s.Create("/a", []byte("1"))
	s.Set("/a", []byte("2"), AnyVersion)
	s.Create("/b/x", nil)
	s.Delete("/a", AnyVersion)

	evs, cursor, err := s.EventsSince(0, "/a", 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	types := []EventType{EventCreated, EventUpdated, EventDeleted}
	if len(evs) != 3 {
		t.Fatalf("events = %d: %v", len(evs), evs)
	}
	for i, ev := range evs {
		if ev.Type != types[i] || ev.Path != "/a" {
			t.Errorf("event %d = %v %s", i, ev.Type, ev.Path)
		}
		if i > 0 && ev.Seq <= evs[i-1].Seq {
			t.Error("events out of order")
		}
	}
	// Cursor advances past everything seen; next call times out empty.
	evs, _, err = s.EventsSince(cursor, "/a", 100, 20*time.Millisecond)
	if err != nil || len(evs) != 0 {
		t.Fatalf("drained cursor returned %v %v", evs, err)
	}
}

func TestEventsBlockingWakeup(t *testing.T) {
	s := NewStore()
	got := make(chan Event, 1)
	go func() {
		evs, _, err := s.EventsSince(0, "/k", 10, 5*time.Second)
		if err == nil && len(evs) > 0 {
			got <- evs[0]
		}
	}()
	time.Sleep(30 * time.Millisecond)
	s.Create("/k", []byte("v"))
	select {
	case ev := <-got:
		if ev.Path != "/k" || ev.Type != EventCreated {
			t.Errorf("event = %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watcher never woke")
	}
}

func TestSnapshot(t *testing.T) {
	s := NewStore()
	s.Create("/shards/1", []byte("a"))
	s.Create("/shards/2", []byte("b"))
	s.Create("/other", []byte("c"))
	snap, seq := s.Snapshot("/shards")
	if len(snap) != 3 { // /shards (implicit parent), /shards/1, /shards/2
		t.Fatalf("snapshot = %v", snap)
	}
	if string(snap["/shards/1"]) != "a" {
		t.Error("snapshot data wrong")
	}
	if seq == 0 {
		t.Error("snapshot cursor should be positive")
	}
}

func TestCompaction(t *testing.T) {
	s := NewStore()
	for i := 0; i < maxEventLog+100; i++ {
		if _, err := s.CreateOrSet("/spam", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := s.EventsSince(0, "/spam", 10, 0)
	if !errors.Is(err, ErrCompacted) {
		t.Fatalf("expected ErrCompacted, got %v", err)
	}
}

func TestStoreClose(t *testing.T) {
	s := NewStore()
	done := make(chan error, 1)
	go func() {
		_, _, err := s.EventsSince(0, "/x", 10, time.Minute)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	s.Close()
	if err := <-done; !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Create("/y", nil); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("create after close = %v", err)
	}
}

// TestRemoteClient exercises the full RPC surface over both transports.
func TestRemoteClient(t *testing.T) {
	for i, addr := range []string{"127.0.0.1:0", "inproc://coord-test"} {
		store := NewStore()
		srv, bound, err := Serve(store, addr)
		if err != nil {
			t.Fatal(err)
		}
		c, err := DialClient(bound)
		if err != nil {
			t.Fatal(err)
		}

		if _, err := c.Create("/r/1", []byte("one")); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Create("/r/1", nil); !errors.Is(err, ErrNodeExists) {
			t.Errorf("remote duplicate create = %v", err)
		}
		data, v, err := c.Get("/r/1")
		if err != nil || string(data) != "one" || v != 0 {
			t.Fatalf("remote get = %q v%d %v", data, v, err)
		}
		if _, err := c.Set("/r/1", []byte("two"), 9); !errors.Is(err, ErrBadVersion) {
			t.Errorf("remote bad-version = %v", err)
		}
		if _, err := c.Set("/r/1", []byte("two"), 0); err != nil {
			t.Fatal(err)
		}
		if _, err := c.CreateOrSet("/r/2", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if !c.Exists("/r/2") || c.Exists("/r/404") {
			t.Error("remote Exists wrong")
		}
		names, err := c.Children("/r")
		if err != nil || len(names) != 2 {
			t.Fatalf("remote children = %v %v", names, err)
		}
		snap, seq := c.Snapshot("/r")
		if len(snap) != 3 || seq == 0 {
			t.Fatalf("remote snapshot = %d nodes seq %d", len(snap), seq)
		}
		evs, cursor, err := c.EventsSince(0, "/r", 100, 0)
		if err != nil || len(evs) == 0 {
			t.Fatalf("remote events = %v %v", evs, err)
		}
		if cursor == 0 {
			t.Error("remote cursor = 0")
		}
		if err := c.Delete("/r/2", AnyVersion); err != nil {
			t.Fatal(err)
		}
		if err := c.Delete("/r/2", AnyVersion); !errors.Is(err, ErrNoNode) {
			t.Errorf("remote delete missing = %v", err)
		}
		c.Close()
		srv.Close()
		store.Close()
		_ = i
	}
}

// TestWatcher checks ordered delivery and reset-on-compaction.
func TestWatcher(t *testing.T) {
	store := NewStore()
	_, bound, err := Serve(store, "inproc://coord-watch")
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialClient(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var mu sync.Mutex
	var seen []string
	w := NewWatcher(c, "/watched", 0, func(ev Event) {
		mu.Lock()
		seen = append(seen, fmt.Sprintf("%s:%s", ev.Type, ev.Path))
		mu.Unlock()
	}, nil)
	defer w.Stop()

	store.Create("/watched/a", []byte("1"))
	store.Create("/elsewhere", nil)
	store.Set("/watched/a", []byte("2"), AnyVersion)

	deadline := time.After(3 * time.Second)
	for {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n >= 3 { // /watched (implicit), created, updated
			break
		}
		select {
		case <-deadline:
			mu.Lock()
			t.Fatalf("watcher saw only %v", seen)
			mu.Unlock()
		case <-time.After(10 * time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for _, s := range seen {
		if s == "created:/elsewhere" {
			t.Error("watcher leaked out-of-prefix event")
		}
	}
	last := seen[len(seen)-1]
	if last != "updated:/watched/a" {
		t.Errorf("events out of order: %v", seen)
	}
}

// TestEventsPagination checks the limit parameter: a reader can drain a
// large backlog in pages without losing or duplicating events.
func TestEventsPagination(t *testing.T) {
	s := NewStore()
	const total = 250
	for i := 0; i < total; i++ {
		if _, err := s.CreateOrSet("/page/n", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var seen int
	cursor := uint64(0)
	for {
		evs, next, err := s.EventsSince(cursor, "/page", 64, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(evs) == 0 {
			break
		}
		for _, ev := range evs {
			if ev.Seq <= cursor && seen > 0 {
				t.Fatal("event replayed")
			}
		}
		seen += len(evs)
		cursor = next
		if len(evs) < 64 {
			break
		}
	}
	// +1 for the implicit parent creation of /page.
	if seen != total+1 {
		t.Fatalf("paged through %d events, want %d", seen, total+1)
	}
}

// TestWatcherResetOnCompaction forces log compaction under a slow watcher
// and checks OnReset delivers a full snapshot.
func TestWatcherResetOnCompaction(t *testing.T) {
	s := NewStore()
	s.Create("/base", []byte("keep"))

	resetCh := make(chan map[string][]byte, 1)
	// Start the watcher at cursor 0, then blow the log past its position.
	for i := 0; i < maxEventLog+50; i++ {
		if _, err := s.CreateOrSet("/churn", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	w := NewWatcher(s, "/base", 0, func(Event) {}, func(snap map[string][]byte) {
		select {
		case resetCh <- snap:
		default:
		}
	})
	defer w.Stop()
	select {
	case snap := <-resetCh:
		if string(snap["/base"]) != "keep" {
			t.Fatalf("snapshot missing base node: %v", snap)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("watcher never reset")
	}
}

// TestConcurrentStoreAccess hammers the store from many goroutines.
func TestConcurrentStoreAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				path := fmt.Sprintf("/c/%d/%d", g, i%10)
				if _, err := s.CreateOrSet(path, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := s.Get(path); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Children(fmt.Sprintf("/c/%d", g)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	names, _ := s.Children("/c")
	if len(names) != 8 {
		t.Errorf("children = %v", names)
	}
}
