package coord

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Session errors.
var (
	// ErrNoSession is returned for operations on an unknown or expired
	// session.
	ErrNoSession = errors.New("coord: no such session")
	// ErrEphemeral rejects children under an ephemeral node: ephemerals
	// are leaves, exactly as in Zookeeper.
	ErrEphemeral = errors.New("coord: ephemeral nodes cannot have children")
)

// SessionID names one liveness session on the store. IDs are never
// reused, so a stale holder cannot touch a successor's ephemerals.
type SessionID uint64

// session is the store-side record of one client's liveness lease.
type session struct {
	ttl      time.Duration
	deadline time.Time
	eph      map[string]struct{} // paths of ephemerals owned by this session
}

// janitorInterval is how often the background sweeper looks for expired
// sessions. Lazy expiry on every store operation keeps embedded
// clusters precise; the janitor exists so an idle store still reaps
// sessions (and fires their watches) in real time.
const janitorInterval = 50 * time.Millisecond

// CreateSession opens a session that must be renewed via Heartbeat
// within ttl or its ephemeral nodes are deleted (firing watches, exactly
// like a Zookeeper session expiry).
func (s *Store) CreateSession(ttl time.Duration) (SessionID, error) {
	if ttl <= 0 {
		return 0, fmt.Errorf("coord: session ttl %v must be positive", ttl)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrStoreClosed
	}
	s.expireLocked()
	s.sessSeq++
	id := SessionID(s.sessSeq)
	s.sessions[id] = &session{ttl: ttl, deadline: s.now().Add(ttl), eph: make(map[string]struct{})}
	s.janitorOnce.Do(func() { go s.janitor() })
	return id, nil
}

// Heartbeat renews a session's lease. An expired or unknown session
// returns ErrNoSession; the holder must open a new session and re-create
// its ephemerals.
func (s *Store) Heartbeat(id SessionID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	s.expireLocked()
	sess, ok := s.sessions[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSession, id)
	}
	sess.deadline = s.now().Add(sess.ttl)
	return nil
}

// CloseSession ends a session gracefully, deleting its ephemerals (and
// firing their watches) immediately rather than after the TTL.
func (s *Store) CloseSession(id SessionID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	sess, ok := s.sessions[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSession, id)
	}
	s.reapLocked(id, sess)
	return nil
}

// CreateEphemeral adds a node tied to a session: it disappears (firing
// deletion watches) when the session expires or closes. Ephemerals
// cannot have children.
func (s *Store) CreateEphemeral(path string, data []byte, owner SessionID) (int64, error) {
	if !validPath(path) || path == "/" {
		return 0, ErrBadPath
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrStoreClosed
	}
	s.expireLocked()
	sess, ok := s.sessions[owner]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoSession, owner)
	}
	v, err := s.createLocked(path, data)
	if err != nil {
		return v, err
	}
	s.nodes[path].owner = owner
	sess.eph[path] = struct{}{}
	return v, nil
}

// ExpireSessions reaps every session past its deadline right now and
// returns how many were expired. Chaos tests drive this directly (with
// SetClock) for deterministic expiry; production relies on the janitor
// and on lazy expiry during normal operations.
func (s *Store) ExpireSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0
	}
	return s.expireLocked()
}

// SetClock replaces the store's time source (default time.Now) so tests
// can advance session deadlines without sleeping.
func (s *Store) SetClock(now func() time.Time) {
	s.mu.Lock()
	s.now = now
	s.mu.Unlock()
}

// SessionStats reports live session count and total expiries.
func (s *Store) SessionStats() (live int, expired uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions), s.sessExpired
}

// expireLocked reaps sessions whose deadline has passed; callers hold
// s.mu. Returns the number of sessions expired.
func (s *Store) expireLocked() int {
	if len(s.sessions) == 0 {
		return 0
	}
	now := s.now()
	var dead []SessionID
	for id, sess := range s.sessions {
		if sess.deadline.Before(now) {
			dead = append(dead, id)
		}
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
	for _, id := range dead {
		s.reapLocked(id, s.sessions[id])
		s.sessExpired++
	}
	return len(dead)
}

// reapLocked deletes a session and its ephemerals, firing deletion
// events; callers hold s.mu.
func (s *Store) reapLocked(id SessionID, sess *session) {
	paths := make([]string, 0, len(sess.eph))
	for p := range sess.eph {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if n, ok := s.nodes[p]; ok && n.owner == id {
			delete(s.nodes, p)
			s.appendEvent(EventDeleted, p, nil, n.version)
		}
	}
	delete(s.sessions, id)
}

// janitor sweeps expired sessions in the background so watches fire
// within a TTL even on an otherwise idle store. Started lazily by the
// first CreateSession; stopped by Close.
func (s *Store) janitor() {
	t := time.NewTicker(janitorInterval)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			s.ExpireSessions()
		}
	}
}

// --- client-side session keeper ------------------------------------------

// Session maintains a liveness session against any Coordinator: a
// background loop heartbeats at TTL/3 and, if the session expires anyway
// (e.g. heartbeats were partitioned away past the TTL), transparently
// opens a replacement so the next Publish re-creates the ephemerals.
type Session struct {
	co  Coordinator
	ttl time.Duration

	mu      sync.Mutex
	id      SessionID
	expired uint64

	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup
}

// OpenSession creates a session with the given TTL and starts its
// heartbeat loop.
func OpenSession(co Coordinator, ttl time.Duration) (*Session, error) {
	id, err := co.CreateSession(ttl)
	if err != nil {
		return nil, err
	}
	s := &Session{co: co, ttl: ttl, id: id, stop: make(chan struct{})}
	s.wg.Add(1)
	go s.heartbeatLoop()
	return s, nil
}

// ID returns the current session ID (it changes after a re-establish).
func (s *Session) ID() SessionID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.id
}

// Expirations counts how many times the session was lost and re-opened.
func (s *Session) Expirations() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expired
}

// Publish upserts an ephemeral node under the current session: the
// worker's periodic stats call lands here, so a node lost to an expiry
// reappears on the next tick — exactly the Zookeeper re-register dance.
func (s *Session) Publish(path string, data []byte) error {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if _, err := s.co.Set(path, data, AnyVersion); err == nil {
			return nil
		} else if !errors.Is(err, ErrNoNode) {
			return err
		}
		id := s.ID()
		_, err := s.co.CreateEphemeral(path, data, id)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, ErrNodeExists):
			lastErr = err // raced with another creator; Set wins next round
		case errors.Is(err, ErrNoSession):
			lastErr = err
			if rerr := s.reestablish(id); rerr != nil {
				return rerr
			}
		default:
			return err
		}
	}
	return fmt.Errorf("coord: publish %s: %w", path, lastErr)
}

// Close stops heartbeating and closes the session on the coordinator,
// deleting its ephemerals immediately (graceful deregistration).
func (s *Session) Close() error {
	s.Abandon()
	return s.co.CloseSession(s.ID())
}

// Abandon stops the heartbeat loop without closing the session on the
// coordinator: the session then expires after its TTL, exactly as if
// the owning process had crashed. Chaos tests use this to simulate
// worker death deterministically.
func (s *Session) Abandon() {
	s.stopped.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// reestablish swaps in a fresh session if the given one is still
// current; concurrent callers agree on the winner.
func (s *Session) reestablish(old SessionID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.id != old {
		return nil // someone else already re-opened it
	}
	id, err := s.co.CreateSession(s.ttl)
	if err != nil {
		return err
	}
	s.id = id
	s.expired++
	return nil
}

// heartbeatLoop renews the lease at TTL/3 until Abandon/Close.
func (s *Session) heartbeatLoop() {
	defer s.wg.Done()
	interval := s.ttl / 3
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			id := s.ID()
			switch err := s.co.Heartbeat(id); {
			case err == nil:
			case errors.Is(err, ErrNoSession):
				// Expired underneath us (dropped heartbeats, partition):
				// open a replacement so the next Publish can re-register.
				_ = s.reestablish(id)
			case errors.Is(err, ErrStoreClosed):
				return
			default:
				// Transient transport failure; try again next tick.
			}
		}
	}
}
