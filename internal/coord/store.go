// Package coord is VOLAP's coordination service, standing in for
// Zookeeper (§III-B): a fault-isolated process holding the global system
// image as a tree of small versioned nodes, with change notification so
// servers and the manager learn about updates "without wasteful polling".
//
// The store supports optimistic concurrency (compare-and-set on node
// versions) and an ordered event log; clients watch a path prefix and
// receive every event under it exactly once, in order, via long-polling
// (the moral equivalent of Zookeeper watches re-armed automatically).
package coord

import (
	"errors"
	"fmt"
	"repro/internal/metrics"
	"sort"
	"strings"
	"sync"
	"time"
)

// Errors mirroring the Zookeeper client error set VOLAP relies on.
var (
	ErrNoNode      = errors.New("coord: no such node")
	ErrNodeExists  = errors.New("coord: node already exists")
	ErrBadVersion  = errors.New("coord: version mismatch")
	ErrCompacted   = errors.New("coord: event log compacted; resync required")
	ErrBadPath     = errors.New("coord: bad path")
	ErrStoreClosed = errors.New("coord: store closed")
)

// AnyVersion disables the version check in Set and Delete.
const AnyVersion = -1

// EventType classifies a change.
type EventType uint8

const (
	// EventCreated fires when a node is created.
	EventCreated EventType = iota
	// EventUpdated fires when a node's data changes.
	EventUpdated
	// EventDeleted fires when a node is deleted.
	EventDeleted
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case EventCreated:
		return "created"
	case EventUpdated:
		return "updated"
	case EventDeleted:
		return "deleted"
	default:
		return "event?"
	}
}

// Event is one change in the store's ordered log. Data is the node's
// content after the change (nil for deletions).
type Event struct {
	Seq     uint64
	Type    EventType
	Path    string
	Data    []byte
	Version int64
}

// maxEventLog bounds the in-memory event log; watchers that fall further
// behind than this must resync from a full snapshot.
const maxEventLog = 1 << 16

type znode struct {
	data    []byte
	version int64
	owner   SessionID // nonzero = ephemeral, deleted with its session
}

// Store is the in-memory coordination tree. It is safe for concurrent
// use and may be used directly (embedded) or served over netmsg.
type Store struct {
	mu     sync.Mutex
	nodes  map[string]*znode
	events []Event
	seq    uint64 // last assigned event sequence number
	first  uint64 // sequence number of events[0]
	closed bool
	change *sync.Cond

	// liveness sessions (under mu)
	sessions    map[SessionID]*session
	sessSeq     uint64
	sessExpired uint64
	now         func() time.Time // injectable clock for deterministic tests
	janitorOnce sync.Once
	janitorStop chan struct{}
	stopOnce    sync.Once

	// observability counters (under mu)
	watchFires      uint64 // EventsSince calls that delivered events
	eventsDelivered uint64 // total events handed to watchers
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{
		nodes:       make(map[string]*znode),
		sessions:    make(map[SessionID]*session),
		now:         time.Now,
		janitorStop: make(chan struct{}),
	}
	s.change = sync.NewCond(&s.mu)
	return s
}

// Close wakes all blocked watchers with ErrStoreClosed and stops the
// session janitor.
func (s *Store) Close() {
	s.stopOnce.Do(func() { close(s.janitorStop) })
	s.mu.Lock()
	s.closed = true
	s.change.Broadcast()
	s.mu.Unlock()
}

// validPath requires absolute slash-separated paths without empty
// segments, e.g. "/volap/shards/12".
func validPath(path string) bool {
	if path == "/" {
		return true
	}
	if !strings.HasPrefix(path, "/") || strings.HasSuffix(path, "/") {
		return false
	}
	for _, seg := range strings.Split(path[1:], "/") {
		if seg == "" {
			return false
		}
	}
	return true
}

// appendEvent records a change; callers hold s.mu.
func (s *Store) appendEvent(t EventType, path string, data []byte, version int64) {
	s.seq++
	if len(s.events) == 0 {
		s.first = s.seq
	}
	s.events = append(s.events, Event{Seq: s.seq, Type: t, Path: path, Data: data, Version: version})
	if len(s.events) > maxEventLog {
		drop := len(s.events) - maxEventLog
		s.events = append(s.events[:0:0], s.events[drop:]...)
		s.first = s.events[0].Seq
	}
	s.change.Broadcast()
}

// Create adds a node. Parents are created implicitly as empty nodes
// (VOLAP's layout is fixed, so the Zookeeper-style explicit-parent dance
// adds nothing). Returns the node's initial version (0).
func (s *Store) Create(path string, data []byte) (int64, error) {
	if !validPath(path) || path == "/" {
		return 0, ErrBadPath
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrStoreClosed
	}
	s.expireLocked()
	return s.createLocked(path, data)
}

// createLocked is Create's core; callers hold s.mu and have validated
// the path.
func (s *Store) createLocked(path string, data []byte) (int64, error) {
	if _, ok := s.nodes[path]; ok {
		return 0, fmt.Errorf("%w: %s", ErrNodeExists, path)
	}
	// Implicit parents; an ephemeral ancestor makes the path invalid.
	for p := parentOf(path); p != "/" && p != ""; p = parentOf(p) {
		if n, ok := s.nodes[p]; ok {
			if n.owner != 0 {
				return 0, fmt.Errorf("%w: %s under %s", ErrEphemeral, path, p)
			}
			break
		}
	}
	for p := parentOf(path); p != "/" && p != ""; p = parentOf(p) {
		if _, ok := s.nodes[p]; ok {
			break
		}
		s.nodes[p] = &znode{}
		s.appendEvent(EventCreated, p, nil, 0)
	}
	s.nodes[path] = &znode{data: cloneBytes(data)}
	s.appendEvent(EventCreated, path, cloneBytes(data), 0)
	return 0, nil
}

// Set replaces a node's data if the expected version matches (or
// AnyVersion). Returns the new version.
func (s *Store) Set(path string, data []byte, expected int64) (int64, error) {
	if !validPath(path) {
		return 0, ErrBadPath
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrStoreClosed
	}
	s.expireLocked()
	n, ok := s.nodes[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	if expected != AnyVersion && n.version != expected {
		return 0, fmt.Errorf("%w: %s at %d, expected %d", ErrBadVersion, path, n.version, expected)
	}
	n.data = cloneBytes(data)
	n.version++
	s.appendEvent(EventUpdated, path, cloneBytes(data), n.version)
	return n.version, nil
}

// CreateOrSet upserts a node regardless of existence and returns the new
// version; a convenience VOLAP uses for periodic stat publication.
func (s *Store) CreateOrSet(path string, data []byte) (int64, error) {
	if _, err := s.Create(path, data); err == nil {
		return 0, nil
	} else if !errors.Is(err, ErrNodeExists) {
		return 0, err
	}
	return s.Set(path, data, AnyVersion)
}

// Get returns a node's data and version.
func (s *Store) Get(path string) ([]byte, int64, error) {
	if !validPath(path) {
		return nil, 0, ErrBadPath
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.expireLocked()
	}
	n, ok := s.nodes[path]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	return cloneBytes(n.data), n.version, nil
}

// Exists reports whether the node is present.
func (s *Store) Exists(path string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.expireLocked()
	}
	_, ok := s.nodes[path]
	return ok
}

// Children lists the immediate child names of a path, sorted.
func (s *Store) Children(path string) ([]string, error) {
	if !validPath(path) {
		return nil, ErrBadPath
	}
	prefix := path
	if prefix != "/" {
		prefix += "/"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.expireLocked()
	}
	var names []string
	for p := range s.nodes {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		rest := p[len(prefix):]
		if !strings.Contains(rest, "/") {
			names = append(names, rest)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Delete removes a node (children must be gone first) if the version
// matches.
func (s *Store) Delete(path string, expected int64) error {
	if !validPath(path) || path == "/" {
		return ErrBadPath
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	s.expireLocked()
	n, ok := s.nodes[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	if expected != AnyVersion && n.version != expected {
		return fmt.Errorf("%w: %s at %d, expected %d", ErrBadVersion, path, n.version, expected)
	}
	prefix := path + "/"
	for p := range s.nodes {
		if strings.HasPrefix(p, prefix) {
			return fmt.Errorf("coord: %s has children", path)
		}
	}
	if n.owner != 0 {
		if sess, ok := s.sessions[n.owner]; ok {
			delete(sess.eph, path)
		}
	}
	delete(s.nodes, path)
	s.appendEvent(EventDeleted, path, nil, n.version)
	return nil
}

// Snapshot returns every node under the prefix (inclusive) plus the
// current event sequence number, for watcher bootstrap.
func (s *Store) Snapshot(prefix string) (map[string][]byte, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.expireLocked()
	}
	out := make(map[string][]byte)
	for p, n := range s.nodes {
		if matchesPrefix(p, prefix) {
			out[p] = cloneBytes(n.data)
		}
	}
	return out, s.seq
}

// EventsSince blocks until at least one event with Seq > since matching
// the prefix exists (or the timeout expires), then returns matching
// events in order and the new cursor. A cursor older than the log start
// yields ErrCompacted.
func (s *Store) EventsSince(since uint64, prefix string, limit int, timeout time.Duration) ([]Event, uint64, error) {
	if limit <= 0 {
		limit = 1 << 10
	}
	deadline := time.Now().Add(timeout)
	timerDone := make(chan struct{})
	if timeout > 0 {
		// Cond has no timed wait; poke the condition at the deadline.
		t := time.AfterFunc(timeout, func() {
			s.mu.Lock()
			s.change.Broadcast()
			s.mu.Unlock()
			close(timerDone)
		})
		defer t.Stop()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil, since, ErrStoreClosed
		}
		s.expireLocked()
		if len(s.events) > 0 && since+1 < s.first {
			return nil, s.seq, ErrCompacted
		}
		var out []Event
		cursor := since
		for _, ev := range s.events {
			if ev.Seq <= since {
				continue
			}
			cursor = ev.Seq
			if matchesPrefix(ev.Path, prefix) {
				out = append(out, ev)
				if len(out) >= limit {
					break
				}
			}
		}
		if len(out) > 0 {
			s.watchFires++
			s.eventsDelivered += uint64(len(out))
			return out, cursor, nil
		}
		since = cursor // skip non-matching events permanently
		if timeout > 0 && !time.Now().Before(deadline) {
			return nil, since, nil
		}
		s.change.Wait()
	}
}

// WatchStats returns observability counters: watch deliveries (fires),
// events delivered, total events logged, and live node count.
func (s *Store) WatchStats() (fires, delivered, logged, nodes uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.watchFires, s.eventsDelivered, s.seq, uint64(len(s.nodes))
}

// RegisterMetrics exports the store's counters into a registry.
func (s *Store) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("coord_watch_fires_total", func() uint64 {
		f, _, _, _ := s.WatchStats()
		return f
	})
	reg.CounterFunc("coord_events_delivered_total", func() uint64 {
		_, d, _, _ := s.WatchStats()
		return d
	})
	reg.CounterFunc("coord_events_logged_total", func() uint64 {
		_, _, l, _ := s.WatchStats()
		return l
	})
	reg.GaugeFunc("coord_nodes", func() float64 {
		_, _, _, n := s.WatchStats()
		return float64(n)
	})
	reg.GaugeFunc("coord_sessions", func() float64 {
		live, _ := s.SessionStats()
		return float64(live)
	})
	reg.CounterFunc("coord_sessions_expired_total", func() uint64 {
		_, expired := s.SessionStats()
		return expired
	})
}

// matchesPrefix reports whether path is prefix itself or below it.
func matchesPrefix(path, prefix string) bool {
	if prefix == "" || prefix == "/" {
		return true
	}
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

func parentOf(path string) string {
	i := strings.LastIndexByte(path, '/')
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
