package coord

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an adjustable time source for deterministic expiry tests.
type fakeClock struct {
	base   time.Time
	offset atomic.Int64 // nanoseconds added to base
}

func newFakeClock() *fakeClock {
	return &fakeClock{base: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time { return c.base.Add(time.Duration(c.offset.Load())) }

func (c *fakeClock) advance(d time.Duration) { c.offset.Add(int64(d)) }

// TestSessionExpiryReapsEphemerals checks the core TTL contract: an
// ephemeral outlives heartbeats but not a missed TTL, and its deletion
// fires through the ordinary watch machinery.
func TestSessionExpiryReapsEphemerals(t *testing.T) {
	s := NewStore()
	defer s.Close()
	clk := newFakeClock()
	s.SetClock(clk.now)

	id, err := s.CreateSession(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateEphemeral("/volap/workers/w9", []byte("meta"), id); err != nil {
		t.Fatal(err)
	}

	// Heartbeats hold the node across several TTL windows.
	for i := 0; i < 3; i++ {
		clk.advance(800 * time.Millisecond)
		if err := s.Heartbeat(id); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}
	if !s.Exists("/volap/workers/w9") {
		t.Fatal("ephemeral vanished while heartbeating")
	}

	// One missed TTL reaps it.
	clk.advance(1100 * time.Millisecond)
	if n := s.ExpireSessions(); n != 1 {
		t.Fatalf("ExpireSessions = %d, want 1", n)
	}
	if s.Exists("/volap/workers/w9") {
		t.Fatal("ephemeral survived session expiry")
	}
	if err := s.Heartbeat(id); !errors.Is(err, ErrNoSession) {
		t.Fatalf("heartbeat after expiry = %v, want ErrNoSession", err)
	}

	// The deletion is an ordinary event, visible to watchers.
	evs, _, err := s.EventsSince(0, "/volap/workers", 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	var deleted bool
	for _, ev := range evs {
		if ev.Type == EventDeleted && ev.Path == "/volap/workers/w9" {
			deleted = true
		}
	}
	if !deleted {
		t.Fatalf("no EventDeleted for the reaped ephemeral in %+v", evs)
	}

	if live, expired := s.SessionStats(); live != 0 || expired != 1 {
		t.Fatalf("session stats = (%d, %d), want (0, 1)", live, expired)
	}
}

// TestSessionLazyExpiry checks any ordinary store operation reaps
// overdue sessions — no janitor tick needed.
func TestSessionLazyExpiry(t *testing.T) {
	s := NewStore()
	defer s.Close()
	clk := newFakeClock()
	s.SetClock(clk.now)

	id, err := s.CreateSession(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateEphemeral("/lazy", nil, id); err != nil {
		t.Fatal(err)
	}
	clk.advance(200 * time.Millisecond)
	// Exists itself triggers lazy expiry.
	if s.Exists("/lazy") {
		t.Fatal("expired ephemeral still visible")
	}
}

// TestCloseSessionImmediate checks graceful close deletes ephemerals now
// rather than after the TTL.
func TestCloseSessionImmediate(t *testing.T) {
	s := NewStore()
	defer s.Close()
	id, err := s.CreateSession(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateEphemeral("/bye", nil, id); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseSession(id); err != nil {
		t.Fatal(err)
	}
	if s.Exists("/bye") {
		t.Fatal("ephemeral survived CloseSession")
	}
	if err := s.CloseSession(id); !errors.Is(err, ErrNoSession) {
		t.Fatalf("second close = %v, want ErrNoSession", err)
	}
}

// TestEphemeralsAreLeaves checks the Zookeeper rule: no children under
// an ephemeral node.
func TestEphemeralsAreLeaves(t *testing.T) {
	s := NewStore()
	defer s.Close()
	id, err := s.CreateSession(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateEphemeral("/eph", nil, id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("/eph/child", nil); !errors.Is(err, ErrEphemeral) {
		t.Fatalf("create under ephemeral = %v, want ErrEphemeral", err)
	}
}

// TestEphemeralDeleteDetaches checks an explicitly deleted ephemeral is
// detached from its session: recreating the path as a normal node must
// survive the session's later expiry.
func TestEphemeralDeleteDetaches(t *testing.T) {
	s := NewStore()
	defer s.Close()
	clk := newFakeClock()
	s.SetClock(clk.now)
	id, err := s.CreateSession(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateEphemeral("/detach", nil, id); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("/detach", AnyVersion); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("/detach", []byte("persistent")); err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Second)
	s.ExpireSessions()
	if !s.Exists("/detach") {
		t.Fatal("persistent node reaped by a stale session claim")
	}
}

// TestCreateEphemeralRequiresSession checks unknown sessions are
// rejected up front.
func TestCreateEphemeralRequiresSession(t *testing.T) {
	s := NewStore()
	defer s.Close()
	if _, err := s.CreateEphemeral("/x", nil, SessionID(999)); !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v, want ErrNoSession", err)
	}
}

// TestSessionIDsNeverReused checks a successor session gets a fresh ID
// so a stale holder cannot touch its ephemerals.
func TestSessionIDsNeverReused(t *testing.T) {
	s := NewStore()
	defer s.Close()
	a, _ := s.CreateSession(time.Hour)
	if err := s.CloseSession(a); err != nil {
		t.Fatal(err)
	}
	b, _ := s.CreateSession(time.Hour)
	if a == b {
		t.Fatalf("session ID %d reused", a)
	}
}

// TestSessionHelperPublishAndReestablish checks the client-side keeper:
// Publish upserts, and after a forced expiry the next Publish opens a
// replacement session and re-creates the node.
func TestSessionHelperPublishAndReestablish(t *testing.T) {
	s := NewStore()
	defer s.Close()
	clk := newFakeClock()
	s.SetClock(clk.now)

	sess, err := OpenSession(s, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sess.Close() }()

	if err := sess.Publish("/volap/workers/w0", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := sess.Publish("/volap/workers/w0", []byte("v2")); err != nil {
		t.Fatalf("second publish (upsert): %v", err)
	}
	raw, _, err := s.Get("/volap/workers/w0")
	if err != nil || string(raw) != "v2" {
		t.Fatalf("node = %q, %v; want v2", raw, err)
	}

	// Force an expiry: the node vanishes, the next Publish re-registers
	// under a fresh session.
	old := sess.ID()
	clk.advance(2 * time.Hour)
	if n := s.ExpireSessions(); n != 1 {
		t.Fatalf("ExpireSessions = %d, want 1", n)
	}
	if s.Exists("/volap/workers/w0") {
		t.Fatal("node survived expiry")
	}
	if err := sess.Publish("/volap/workers/w0", []byte("v3")); err != nil {
		t.Fatalf("publish after expiry: %v", err)
	}
	if sess.ID() == old {
		t.Fatal("session ID unchanged after re-establish")
	}
	if sess.Expirations() == 0 {
		t.Fatal("expirations counter not bumped")
	}
	raw, _, _ = s.Get("/volap/workers/w0")
	if string(raw) != "v3" {
		t.Fatalf("node = %q, want v3", raw)
	}
}

// TestSessionAbandonLeavesLease checks Abandon stops heartbeating
// without closing the session: the ephemeral lingers until the TTL, the
// crash-like half of the kill-worker chaos tests.
func TestSessionAbandonLeavesLease(t *testing.T) {
	s := NewStore()
	defer s.Close()
	clk := newFakeClock()
	s.SetClock(clk.now)

	sess, err := OpenSession(s, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Publish("/crash", nil); err != nil {
		t.Fatal(err)
	}
	sess.Abandon()
	if !s.Exists("/crash") {
		t.Fatal("ephemeral gone immediately after Abandon")
	}
	clk.advance(2 * time.Hour)
	s.ExpireSessions()
	if s.Exists("/crash") {
		t.Fatal("ephemeral survived TTL after Abandon")
	}
}

// TestSessionJanitor checks an idle store still reaps expired sessions
// in real time (no lazy-expiry trigger needed).
func TestSessionJanitor(t *testing.T) {
	s := NewStore()
	defer s.Close()
	id, err := s.CreateSession(30 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateEphemeral("/idle", nil, id); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Exists("/idle") {
		if time.Now().After(deadline) {
			t.Fatal("janitor never reaped the expired session")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSessionRPC drives the session API through the coord RPC client:
// the sentinel errors must survive the wire.
func TestSessionRPC(t *testing.T) {
	s := NewStore()
	defer s.Close()
	srv, _, err := Serve(s, "inproc://session-rpc-test")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialClient("inproc://session-rpc-test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	id, err := c.CreateSession(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateEphemeral("/rpc-eph", []byte("x"), id); err != nil {
		t.Fatal(err)
	}
	if err := c.Heartbeat(id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("/rpc-eph/kid", nil); !errors.Is(err, ErrEphemeral) {
		t.Fatalf("create under ephemeral via RPC = %v, want ErrEphemeral", err)
	}
	if err := c.CloseSession(id); err != nil {
		t.Fatal(err)
	}
	if err := c.Heartbeat(id); !errors.Is(err, ErrNoSession) {
		t.Fatalf("heartbeat closed session via RPC = %v, want ErrNoSession", err)
	}
	if s.Exists("/rpc-eph") {
		t.Fatal("ephemeral survived RPC CloseSession")
	}
}
