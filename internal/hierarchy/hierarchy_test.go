package hierarchy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/wire"
)

func testDim(t *testing.T) *Dimension {
	t.Helper()
	d, err := NewDimension("Date",
		Level{Name: "Year", Fanout: 10},
		Level{Name: "Month", Fanout: 12},
		Level{Name: "Day", Fanout: 31},
	)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDimensionValidation(t *testing.T) {
	if _, err := NewDimension(""); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewDimension("X"); err == nil {
		t.Error("no levels should fail")
	}
	if _, err := NewDimension("X", Level{Name: "A", Fanout: 0}); err == nil {
		t.Error("zero fanout should fail")
	}
	if _, err := NewDimension("X",
		Level{Name: "A", Fanout: 1 << 16},
		Level{Name: "B", Fanout: 1 << 16},
	); err == nil {
		t.Error("overflowing MaxLeafCount should fail")
	}
}

func TestDimensionBasics(t *testing.T) {
	d := testDim(t)
	if d.Name() != "Date" || d.Depth() != 3 {
		t.Errorf("basics wrong: %s depth %d", d.Name(), d.Depth())
	}
	if d.LeafCount() != 10*12*31 {
		t.Errorf("LeafCount = %d", d.LeafCount())
	}
	// bits: 10 -> 4, 12 -> 4, 31 -> 5
	if d.LevelBits(0) != 4 || d.LevelBits(1) != 4 || d.LevelBits(2) != 5 {
		t.Errorf("LevelBits = %d,%d,%d", d.LevelBits(0), d.LevelBits(1), d.LevelBits(2))
	}
	if d.Bits() != 13 {
		t.Errorf("Bits = %d", d.Bits())
	}
	if d.LeavesUnder(0) != 10*12*31 || d.LeavesUnder(1) != 12*31 || d.LeavesUnder(3) != 1 {
		t.Error("LeavesUnder wrong")
	}
	if d.Level(1).Name != "Month" {
		t.Error("Level accessor wrong")
	}
	want := "Date(Year:10/Month:12/Day:31)"
	if d.String() != want {
		t.Errorf("String = %q, want %q", d.String(), want)
	}
}

func TestOrdinalPathRoundTrip(t *testing.T) {
	d := testDim(t)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		path := []uint32{uint32(rng.Intn(10)), uint32(rng.Intn(12)), uint32(rng.Intn(31))}
		ord, err := d.Ordinal(path)
		if err != nil {
			t.Fatal(err)
		}
		back, err := d.Path(ord)
		if err != nil {
			t.Fatal(err)
		}
		for j := range path {
			if path[j] != back[j] {
				t.Fatalf("path %v -> ord %d -> %v", path, ord, back)
			}
		}
	}
	if _, err := d.Ordinal([]uint32{1, 2}); err == nil {
		t.Error("short path should fail")
	}
	if _, err := d.Ordinal([]uint32{10, 0, 0}); err == nil {
		t.Error("out-of-range value should fail")
	}
	if _, err := d.Path(d.LeafCount()); err == nil {
		t.Error("out-of-range ordinal should fail")
	}
}

func TestOrdinalIsLeafOrder(t *testing.T) {
	// Ordinals must follow lexicographic path order: that is what makes a
	// hierarchy value a contiguous ordinal interval.
	d := MustDimension("D", Level{Name: "A", Fanout: 3}, Level{Name: "B", Fanout: 4})
	prev := int64(-1)
	for a := uint32(0); a < 3; a++ {
		for b := uint32(0); b < 4; b++ {
			ord, err := d.Ordinal([]uint32{a, b})
			if err != nil {
				t.Fatal(err)
			}
			if int64(ord) != prev+1 {
				t.Fatalf("ordinal %d after %d", ord, prev)
			}
			prev = int64(ord)
		}
	}
}

func TestNodeInterval(t *testing.T) {
	d := testDim(t)
	all, err := d.NodeInterval(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if all.Lo != 0 || all.Hi != d.LeafCount()-1 {
		t.Errorf("All interval = %+v", all)
	}
	// Year 3 covers ordinals [3*372, 4*372).
	y3, err := d.NodeInterval(1, []uint32{3})
	if err != nil {
		t.Fatal(err)
	}
	if y3.Lo != 3*372 || y3.Hi != 4*372-1 {
		t.Errorf("Year3 interval = %+v", y3)
	}
	// Year 3 / Month 11 covers the last 31 ordinals of year 3.
	m11, err := d.NodeInterval(2, []uint32{3, 11})
	if err != nil {
		t.Fatal(err)
	}
	if m11.Lo != 3*372+11*31 || m11.Len() != 31 {
		t.Errorf("Month interval = %+v", m11)
	}
	// Leaf interval is a single ordinal.
	leaf, err := d.NodeInterval(3, []uint32{3, 11, 30})
	if err != nil {
		t.Fatal(err)
	}
	if leaf.Lo != leaf.Hi {
		t.Errorf("leaf interval = %+v", leaf)
	}
	if _, err := d.NodeInterval(4, []uint32{0, 0, 0, 0}); err == nil {
		t.Error("too-deep interval should fail")
	}
	if _, err := d.NodeInterval(2, []uint32{0}); err == nil {
		t.Error("short prefix should fail")
	}
	if _, err := d.NodeInterval(1, []uint32{10}); err == nil {
		t.Error("out-of-range prefix should fail")
	}
}

func TestIntervalOps(t *testing.T) {
	a := Interval{Lo: 10, Hi: 20}
	if a.Len() != 11 {
		t.Error("Len wrong")
	}
	if !a.Contains(10) || !a.Contains(20) || a.Contains(9) || a.Contains(21) {
		t.Error("Contains wrong")
	}
	if !a.Overlaps(Interval{Lo: 20, Hi: 30}) || a.Overlaps(Interval{Lo: 21, Hi: 30}) {
		t.Error("Overlaps wrong")
	}
	if !a.CoveredBy(Interval{Lo: 0, Hi: 20}) || a.CoveredBy(Interval{Lo: 11, Hi: 30}) {
		t.Error("CoveredBy wrong")
	}
}

func TestParentInterval(t *testing.T) {
	d := testDim(t)
	m11, _ := d.NodeInterval(2, []uint32{3, 11})
	parent := d.ParentInterval(m11, 2)
	y3, _ := d.NodeInterval(1, []uint32{3})
	if parent != y3 {
		t.Errorf("ParentInterval = %+v, want %+v", parent, y3)
	}
	if d.ParentInterval(y3, 0) != y3 {
		t.Error("depth-0 parent should be identity")
	}
}

func TestDepthOfInterval(t *testing.T) {
	d := testDim(t)
	y3, _ := d.NodeInterval(1, []uint32{3})
	if got := d.DepthOfInterval(y3); got != 1 {
		t.Errorf("DepthOfInterval(year) = %d", got)
	}
	leaf, _ := d.NodeInterval(3, []uint32{0, 0, 5})
	if got := d.DepthOfInterval(leaf); got != 3 {
		t.Errorf("DepthOfInterval(leaf) = %d", got)
	}
	if got := d.DepthOfInterval(Interval{Lo: 1, Hi: 372}); got != -1 {
		t.Errorf("unaligned interval should give -1, got %d", got)
	}
}

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		testDim(t),
		MustDimension("Item", Level{Name: "Category", Fanout: 15}, Level{Name: "Brand", Fanout: 40}),
		MustDimension("Time", Level{Name: "Hour", Fanout: 24}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema should fail")
	}
	dims := make([]*Dimension, 65)
	for i := range dims {
		dims[i] = MustDimension("D", Level{Name: "A", Fanout: 2})
	}
	if _, err := NewSchema(dims...); err == nil {
		t.Error("65-dim schema should fail")
	}
}

func TestSchemaExpandedBits(t *testing.T) {
	s := testSchema(t)
	// Level max bits: L0 = max(4, 4, 5) = 5; L1 = max(4, 6) = 6; L2 = 5.
	eb := s.ExpandedBits()
	if eb[0] != 5+6+5 {
		t.Errorf("Date expanded bits = %d, want 16", eb[0])
	}
	if eb[1] != 5+6 {
		t.Errorf("Item expanded bits = %d, want 11", eb[1])
	}
	if eb[2] != 5 {
		t.Errorf("Time expanded bits = %d, want 5", eb[2])
	}
}

// TestExpandOrdinalOrderPreserving checks the key property of the
// Figure 3 transform: it preserves per-dimension ordinal order (it is a
// strictly monotonic function of the ordinal).
func TestExpandOrdinalOrderPreserving(t *testing.T) {
	s := testSchema(t)
	for dim := 0; dim < s.NumDims(); dim++ {
		d := s.Dim(dim)
		step := d.LeafCount()/2000 + 1
		var prevOrd, prevExp uint64
		first := true
		for ord := uint64(0); ord < d.LeafCount(); ord += step {
			exp := s.ExpandOrdinal(dim, ord)
			if !first && exp <= prevExp {
				t.Fatalf("dim %d: expand(%d)=%d <= expand(%d)=%d", dim, ord, exp, prevOrd, prevExp)
			}
			prevOrd, prevExp, first = ord, exp, false
		}
	}
}

// TestExpandOrdinalLevelAlignment verifies the example structure of
// Figure 3: each level occupies the schema-wide maximum width for that
// level, with narrow dimensions shifted left within their slot.
func TestExpandOrdinalLevelAlignment(t *testing.T) {
	a := MustDimension("A", Level{Name: "L1", Fanout: 4}, Level{Name: "L2", Fanout: 16})
	b := MustDimension("B", Level{Name: "L1", Fanout: 16}, Level{Name: "L2", Fanout: 4})
	s := MustSchema(a, b)
	// Level widths: L1 = 4 bits, L2 = 4 bits; both dims expand to 8 bits.
	eb := s.ExpandedBits()
	if eb[0] != 8 || eb[1] != 8 {
		t.Fatalf("expanded bits = %v", eb)
	}
	// A: path (3, 15) -> L1 index 3 shifted left 2 (4->2 bits used), L2
	// index 15 unshifted: 0b11_00_1111.
	ordA, _ := a.Ordinal([]uint32{3, 15})
	if got := s.ExpandOrdinal(0, ordA); got != 0b11001111 {
		t.Errorf("expand A = %08b", got)
	}
	// B: path (15, 3) -> L1 index 15 unshifted, L2 index 3 shifted left 2.
	ordB, _ := b.Ordinal([]uint32{15, 3})
	if got := s.ExpandOrdinal(1, ordB); got != 0b11111100 {
		t.Errorf("expand B = %08b", got)
	}
}

func TestValidatePoint(t *testing.T) {
	s := testSchema(t)
	if err := s.ValidatePoint([]uint64{0, 0, 0}); err != nil {
		t.Error(err)
	}
	if err := s.ValidatePoint([]uint64{0, 0}); err == nil {
		t.Error("short point should fail")
	}
	if err := s.ValidatePoint([]uint64{s.Dim(0).LeafCount(), 0, 0}); err == nil {
		t.Error("out-of-range point should fail")
	}
}

func TestSchemaEncodeDecode(t *testing.T) {
	s := testSchema(t)
	w := wire.NewWriter(64)
	s.Encode(w)
	got, err := DecodeSchema(wire.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != s.Fingerprint() {
		t.Error("fingerprint changed across encode/decode")
	}
	if got.NumDims() != s.NumDims() {
		t.Error("dims changed")
	}
	for i := 0; i < s.NumDims(); i++ {
		if got.Dim(i).String() != s.Dim(i).String() {
			t.Errorf("dim %d: %s != %s", i, got.Dim(i), s.Dim(i))
		}
	}
	// Truncated input must fail, not panic.
	if _, err := DecodeSchema(wire.NewReader(w.Bytes()[:3])); err == nil {
		t.Error("truncated schema should fail")
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	a := MustSchema(MustDimension("A", Level{Name: "L", Fanout: 4}))
	b := MustSchema(MustDimension("A", Level{Name: "L", Fanout: 5}))
	c := MustSchema(MustDimension("B", Level{Name: "L", Fanout: 4}))
	if a.Fingerprint() == b.Fingerprint() || a.Fingerprint() == c.Fingerprint() {
		t.Error("fingerprints should differ for different schemas")
	}
}

// TestNodeIntervalPartition property-checks that the children of any
// hierarchy value partition the parent's interval.
func TestNodeIntervalPartition(t *testing.T) {
	d := testDim(t)
	f := func(yRaw, mRaw uint32) bool {
		y := yRaw % 10
		parent, err := d.NodeInterval(1, []uint32{y})
		if err != nil {
			return false
		}
		var total uint64
		var prevHi uint64
		for m := uint32(0); m < 12; m++ {
			iv, err := d.NodeInterval(2, []uint32{y, m})
			if err != nil {
				return false
			}
			if !iv.CoveredBy(parent) {
				return false
			}
			if m > 0 && iv.Lo != prevHi+1 {
				return false
			}
			prevHi = iv.Hi
			total += iv.Len()
		}
		return total == parent.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
