// Package hierarchy models OLAP dimension hierarchies.
//
// A dimension is a rooted tree of values: an implicit "All" root, then one
// or more named levels with a fixed fan-out per level (every value at level
// l-1 has exactly Fanout(l) children at level l). The leaves of a dimension
// are its finest-grained values; every leaf is identified by its path from
// the root, or equivalently by its ordinal position in the left-to-right
// leaf order. Because the hierarchy is fixed-fanout, any hierarchy value at
// any level corresponds to a contiguous interval of leaf ordinals, which is
// the property VOLAP's keys, queries, and Hilbert mapping are built on.
package hierarchy

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/wire"
)

// MaxLeafCount bounds the number of leaves in a single dimension so that
// leaf ordinals and interval arithmetic stay comfortably inside uint64 (and
// per-dimension Hilbert coordinates inside 64 bits after ID expansion).
const MaxLeafCount = 1 << 31

// Level describes one level of a dimension hierarchy.
type Level struct {
	Name   string
	Fanout uint32 // children per parent value; must be >= 1
}

// Dimension is a named hierarchy of levels below an implicit "All" root.
type Dimension struct {
	name   string
	levels []Level

	bits      []uint   // bits[l] = bits needed for a level-l child index
	suffix    []uint64 // suffix[l] = leaves under one value at depth l (suffix[depth]=1)
	leafCount uint64
	totalBits uint
}

// NewDimension builds a dimension from its levels, validating fan-outs.
func NewDimension(name string, levels ...Level) (*Dimension, error) {
	if name == "" {
		return nil, errors.New("hierarchy: dimension name must not be empty")
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("hierarchy: dimension %q has no levels", name)
	}
	d := &Dimension{
		name:   name,
		levels: append([]Level(nil), levels...),
		bits:   make([]uint, len(levels)),
		suffix: make([]uint64, len(levels)+1),
	}
	leaves := uint64(1)
	for i, lv := range levels {
		if lv.Fanout < 1 {
			return nil, fmt.Errorf("hierarchy: dimension %q level %q has fanout %d", name, lv.Name, lv.Fanout)
		}
		leaves *= uint64(lv.Fanout)
		if leaves > MaxLeafCount {
			return nil, fmt.Errorf("hierarchy: dimension %q exceeds %d leaves", name, uint64(MaxLeafCount))
		}
		d.bits[i] = bitsFor(uint64(lv.Fanout))
		d.totalBits += d.bits[i]
	}
	d.leafCount = leaves
	d.suffix[len(levels)] = 1
	for l := len(levels) - 1; l >= 0; l-- {
		d.suffix[l] = d.suffix[l+1] * uint64(levels[l].Fanout)
	}
	return d, nil
}

// MustDimension is NewDimension that panics on error; for fixed schemas.
func MustDimension(name string, levels ...Level) *Dimension {
	d, err := NewDimension(name, levels...)
	if err != nil {
		panic(err)
	}
	return d
}

// bitsFor returns the number of bits needed to represent values 0..n-1.
func bitsFor(n uint64) uint {
	if n <= 1 {
		return 0
	}
	return uint(bits.Len64(n - 1))
}

// Name returns the dimension's name.
func (d *Dimension) Name() string { return d.name }

// Depth returns the number of levels below the All root.
func (d *Dimension) Depth() int { return len(d.levels) }

// Level returns the level definition at depth l (1-based depth l means
// index l-1 here; callers pass 0-based level indices).
func (d *Dimension) Level(i int) Level { return d.levels[i] }

// LeafCount returns the number of leaf values.
func (d *Dimension) LeafCount() uint64 { return d.leafCount }

// Bits returns the total number of bits of a packed leaf path.
func (d *Dimension) Bits() uint { return d.totalBits }

// LevelBits returns the number of bits used by the child index at level i.
func (d *Dimension) LevelBits(i int) uint { return d.bits[i] }

// LeavesUnder returns the number of leaves below a single value at the
// given depth (depth 0 = All, depth Depth() = a leaf).
func (d *Dimension) LeavesUnder(depth int) uint64 { return d.suffix[depth] }

// Ordinal converts a full leaf path (one child index per level) to the
// leaf's ordinal position.
func (d *Dimension) Ordinal(path []uint32) (uint64, error) {
	if len(path) != len(d.levels) {
		return 0, fmt.Errorf("hierarchy: %s: path depth %d, want %d", d.name, len(path), len(d.levels))
	}
	var ord uint64
	for i, v := range path {
		if v >= d.levels[i].Fanout {
			return 0, fmt.Errorf("hierarchy: %s: level %d value %d out of range [0,%d)", d.name, i, v, d.levels[i].Fanout)
		}
		ord = ord*uint64(d.levels[i].Fanout) + uint64(v)
	}
	return ord, nil
}

// Path converts a leaf ordinal back to its per-level path. It is the
// inverse of Ordinal.
func (d *Dimension) Path(ord uint64) ([]uint32, error) {
	if ord >= d.leafCount {
		return nil, fmt.Errorf("hierarchy: %s: ordinal %d out of range [0,%d)", d.name, ord, d.leafCount)
	}
	path := make([]uint32, len(d.levels))
	for i := len(d.levels) - 1; i >= 0; i-- {
		f := uint64(d.levels[i].Fanout)
		path[i] = uint32(ord % f)
		ord /= f
	}
	return path, nil
}

// Interval is an inclusive range [Lo, Hi] of leaf ordinals.
type Interval struct {
	Lo, Hi uint64
}

// Len returns the number of leaves covered by the interval.
func (iv Interval) Len() uint64 { return iv.Hi - iv.Lo + 1 }

// Contains reports whether the ordinal lies inside the interval.
func (iv Interval) Contains(ord uint64) bool { return ord >= iv.Lo && ord <= iv.Hi }

// Overlaps reports whether the two intervals share any leaf.
func (iv Interval) Overlaps(o Interval) bool { return iv.Lo <= o.Hi && o.Lo <= iv.Hi }

// CoveredBy reports whether iv lies entirely within o.
func (iv Interval) CoveredBy(o Interval) bool { return o.Lo <= iv.Lo && iv.Hi <= o.Hi }

// NodeInterval returns the leaf-ordinal interval covered by the hierarchy
// value identified by the given depth and path prefix. Depth 0 with an
// empty prefix denotes the All value and covers every leaf.
func (d *Dimension) NodeInterval(depth int, prefix []uint32) (Interval, error) {
	if depth < 0 || depth > len(d.levels) {
		return Interval{}, fmt.Errorf("hierarchy: %s: depth %d out of range [0,%d]", d.name, depth, len(d.levels))
	}
	if len(prefix) < depth {
		return Interval{}, fmt.Errorf("hierarchy: %s: prefix of length %d shorter than depth %d", d.name, len(prefix), depth)
	}
	var base uint64
	for i := 0; i < depth; i++ {
		if prefix[i] >= d.levels[i].Fanout {
			return Interval{}, fmt.Errorf("hierarchy: %s: level %d value %d out of range [0,%d)", d.name, i, prefix[i], d.levels[i].Fanout)
		}
		base = base*uint64(d.levels[i].Fanout) + uint64(prefix[i])
	}
	lo := base * d.suffix[depth]
	return Interval{Lo: lo, Hi: lo + d.suffix[depth] - 1}, nil
}

// ParentInterval returns the interval of the hierarchy value one level
// above the value whose interval is iv, assuming iv is exactly the
// interval of a depth-d value. Passing depth 0 returns iv unchanged.
func (d *Dimension) ParentInterval(iv Interval, depth int) Interval {
	if depth <= 0 {
		return iv
	}
	span := d.suffix[depth-1]
	lo := (iv.Lo / span) * span
	return Interval{Lo: lo, Hi: lo + span - 1}
}

// DepthOfInterval returns the depth whose value-intervals have exactly the
// size of iv, or -1 if iv is not aligned to any single hierarchy value.
func (d *Dimension) DepthOfInterval(iv Interval) int {
	size := iv.Len()
	for depth := 0; depth <= len(d.levels); depth++ {
		if d.suffix[depth] == size {
			if iv.Lo%size == 0 {
				return depth
			}
			return -1
		}
	}
	return -1
}

// String renders the dimension as "Name(L1:f1/L2:f2/...)".
func (d *Dimension) String() string {
	var sb strings.Builder
	sb.WriteString(d.name)
	sb.WriteByte('(')
	for i, lv := range d.levels {
		if i > 0 {
			sb.WriteByte('/')
		}
		fmt.Fprintf(&sb, "%s:%d", lv.Name, lv.Fanout)
	}
	sb.WriteByte(')')
	return sb.String()
}

// Schema is an ordered set of dimensions shared by points, keys, queries,
// and trees.
type Schema struct {
	dims []*Dimension

	maxDepth     int
	levelMaxBits []uint // levelMaxBits[l] = max over dims (with depth>l) of LevelBits(l)
	expandedBits []uint // per-dim total bits after ID expansion (Figure 3)
}

// NewSchema builds a schema from dimensions, precomputing the ID-expansion
// bit layout used by the Hilbert mapping (paper Figure 3): for each level,
// every dimension's child index is left-shifted so that the level spans the
// same numeric range in all dimensions.
func NewSchema(dims ...*Dimension) (*Schema, error) {
	if len(dims) == 0 {
		return nil, errors.New("hierarchy: schema needs at least one dimension")
	}
	if len(dims) > 64 {
		return nil, fmt.Errorf("hierarchy: schema has %d dimensions, max 64", len(dims))
	}
	s := &Schema{dims: append([]*Dimension(nil), dims...)}
	for _, d := range dims {
		if d.Depth() > s.maxDepth {
			s.maxDepth = d.Depth()
		}
	}
	s.levelMaxBits = make([]uint, s.maxDepth)
	for l := 0; l < s.maxDepth; l++ {
		for _, d := range dims {
			if d.Depth() > l && d.LevelBits(l) > s.levelMaxBits[l] {
				s.levelMaxBits[l] = d.LevelBits(l)
			}
		}
	}
	s.expandedBits = make([]uint, len(dims))
	for i, d := range dims {
		var total uint
		for l := 0; l < d.Depth(); l++ {
			total += s.levelMaxBits[l]
		}
		if total > 64 {
			return nil, fmt.Errorf("hierarchy: dimension %q needs %d expanded bits, max 64", d.Name(), total)
		}
		s.expandedBits[i] = total
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for fixed schemas.
func MustSchema(dims ...*Dimension) *Schema {
	s, err := NewSchema(dims...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumDims returns the number of dimensions.
func (s *Schema) NumDims() int { return len(s.dims) }

// Dim returns the i-th dimension.
func (s *Schema) Dim(i int) *Dimension { return s.dims[i] }

// ExpandedBits returns the per-dimension coordinate widths after ID
// expansion; these are the bit widths fed to the compact Hilbert curve.
func (s *Schema) ExpandedBits() []uint {
	return append([]uint(nil), s.expandedBits...)
}

// ExpandOrdinal applies the Figure 3 ID expansion to a leaf ordinal of
// dimension dim: the ordinal is decomposed into per-level child indices and
// each index is left-shifted so its level occupies the schema-wide maximum
// bit width for that level. The result is the dimension's Hilbert
// coordinate. Note that the expansion is order-preserving per dimension.
func (s *Schema) ExpandOrdinal(dim int, ord uint64) uint64 {
	d := s.dims[dim]
	var out uint64
	// Walk levels from coarsest to finest, peeling child indices from the
	// most significant position of the mixed-radix ordinal.
	rem := ord
	for l := 0; l < d.Depth(); l++ {
		span := d.suffix[l+1]
		idx := rem / span
		rem %= span
		shift := s.levelMaxBits[l] - d.bits[l]
		out = (out << s.levelMaxBits[l]) | (idx << shift)
	}
	return out
}

// ValidatePoint checks that coords has one in-range leaf ordinal per
// dimension.
func (s *Schema) ValidatePoint(coords []uint64) error {
	if len(coords) != len(s.dims) {
		return fmt.Errorf("hierarchy: point has %d coords, schema has %d dims", len(coords), len(s.dims))
	}
	for i, c := range coords {
		if c >= s.dims[i].leafCount {
			return fmt.Errorf("hierarchy: dim %q ordinal %d out of range [0,%d)", s.dims[i].name, c, s.dims[i].leafCount)
		}
	}
	return nil
}

// Fingerprint returns a cheap structural hash of the schema, used to catch
// mismatched schemas when deserializing shards received over the network.
func (s *Schema) Fingerprint() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	mix(uint64(len(s.dims)))
	for _, d := range s.dims {
		for _, b := range []byte(d.name) {
			mix(uint64(b))
		}
		mix(uint64(d.Depth()))
		for _, lv := range d.levels {
			mix(uint64(lv.Fanout))
			for _, b := range []byte(lv.Name) {
				mix(uint64(b))
			}
		}
	}
	return h
}

// Encode serializes the schema structure (names, levels, fan-outs).
func (s *Schema) Encode(w *wire.Writer) {
	w.Uvarint(uint64(len(s.dims)))
	for _, d := range s.dims {
		w.String(d.name)
		w.Uvarint(uint64(len(d.levels)))
		for _, lv := range d.levels {
			w.String(lv.Name)
			w.Uvarint(uint64(lv.Fanout))
		}
	}
}

// DecodeSchema reads a schema serialized by Encode.
func DecodeSchema(r *wire.Reader) (*Schema, error) {
	n := r.Uvarint()
	if n == 0 || n > 64 {
		return nil, fmt.Errorf("hierarchy: decoded schema with %d dims", n)
	}
	dims := make([]*Dimension, 0, n)
	for i := uint64(0); i < n; i++ {
		name := r.String()
		nl := r.Uvarint()
		if r.Err() != nil {
			return nil, r.Err()
		}
		levels := make([]Level, 0, nl)
		for j := uint64(0); j < nl; j++ {
			lname := r.String()
			fanout := r.Uvarint()
			if r.Err() != nil {
				return nil, r.Err()
			}
			levels = append(levels, Level{Name: lname, Fanout: uint32(fanout)})
		}
		d, err := NewDimension(name, levels...)
		if err != nil {
			return nil, err
		}
		dims = append(dims, d)
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	return NewSchema(dims...)
}
