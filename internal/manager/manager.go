// Package manager implements VOLAP's manager background process (§III-A,
// §III-E): it periodically analyzes the system state stored in the
// coordination service, decides on load-balancing operations, and
// coordinates the necessary splits and migrations between workers. The
// manager sits outside the insert/query data path entirely — it is "not a
// bottleneck for insertion or query performance, and can reside anywhere
// in the system".
package manager

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/coord"
	"repro/internal/image"
	"repro/internal/metrics"
	"repro/internal/netmsg"
	"repro/internal/wire"
	"repro/internal/worker"
)

// Options configures the manager.
type Options struct {
	Coord coord.Coordinator
	// Interval between balancing passes of the background loop.
	Interval time.Duration
	// Ratio is the max/min worker-load imbalance that triggers action
	// (default 1.25).
	Ratio float64
	// MinMoveItems suppresses balancing when the absolute gap is noise
	// (default 512 items).
	MinMoveItems uint64
	// MaxOpsPerPass caps splits+migrations per pass (default 4).
	MaxOpsPerPass int
	// MaxShardItems splits any shard that grows beyond this many items,
	// regardless of balance (0 disables; memory-pressure guard).
	MaxShardItems uint64
	// ReplicationFactor is the total number of copies (primary included)
	// the manager maintains per shard. <=1 disables replica-set
	// maintenance; promotion of already-listed replicas runs regardless.
	ReplicationFactor int
	// Metrics receives the manager's instrumentation. When nil the
	// manager creates a private registry (reachable via Metrics()).
	Metrics *metrics.Registry
	// Fault, when non-nil, intercepts the manager's worker RPCs for
	// chaos testing.
	Fault *netmsg.FaultInjector
}

// Stats counts the manager's balancing activity (Figure 6 reports these
// over time).
type Stats struct {
	Passes     uint64
	Splits     uint64
	Migrations uint64
	MovedItems uint64
	Promotions uint64
}

// EventKind classifies one load-balancing action.
type EventKind string

// Load-balancing event kinds.
const (
	EventSplit     EventKind = "split"
	EventMigration EventKind = "migration"
	// EventReadopt records a worker that was observed dead and then
	// answered again — a durable worker restarting over its data
	// directory and re-adopting its shards, not a fresh empty worker.
	EventReadopt EventKind = "readopt"
	// EventPromotion records a follower taking over a shard whose
	// primary's session expired (or an operator-requested promotion).
	EventPromotion EventKind = "promotion"
)

// Event is one recorded split or migration, kept in a bounded log so the
// /debug/volap endpoint can show recent balancing activity.
type Event struct {
	Time     time.Time     `json:"time"`
	Kind     EventKind     `json:"kind"`
	Shard    image.ShardID `json:"shard"`
	NewShard image.ShardID `json:"new_shard,omitempty"` // splits only
	From     string        `json:"from,omitempty"`
	To       string        `json:"to,omitempty"` // migrations only
	Items    uint64        `json:"items"`
}

// maxEvents bounds the in-memory balancing event log.
const maxEvents = 128

// Manager is the load-balancing process.
type Manager struct {
	opts Options

	mu          sync.Mutex
	conns       map[string]*netmsg.Client
	stats       Stats
	events      []Event         // ring, newest last
	dead        map[string]bool // workers registered but unreachable last observe
	skips       uint64          // balancing decisions that excluded a dead worker
	readoptions uint64          // workers seen returning from the dead
	orphans     int             // hosted shards with no record in the image

	reg *metrics.Registry

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New builds a manager.
func New(opts Options) (*Manager, error) {
	if opts.Coord == nil {
		return nil, errors.New("manager: coordinator required")
	}
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if opts.Ratio <= 1 {
		opts.Ratio = 1.25
	}
	if opts.MinMoveItems == 0 {
		opts.MinMoveItems = 512
	}
	if opts.MaxOpsPerPass <= 0 {
		opts.MaxOpsPerPass = 4
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	m := &Manager{
		opts:  opts,
		conns: make(map[string]*netmsg.Client),
		dead:  make(map[string]bool),
		stop:  make(chan struct{}),
		reg:   reg,
	}
	reg.CounterFunc("manager_passes_total", func() uint64 { return m.Stats().Passes })
	reg.CounterFunc("manager_splits_total", func() uint64 { return m.Stats().Splits })
	reg.CounterFunc("manager_migrations_total", func() uint64 { return m.Stats().Migrations })
	reg.CounterFunc("manager_moved_items_total", func() uint64 { return m.Stats().MovedItems })
	reg.CounterFunc("manager_promotions_total", func() uint64 { return m.Stats().Promotions })
	reg.GaugeFunc("manager_dead_workers", func() float64 { return float64(len(m.DeadWorkers())) })
	reg.CounterFunc("manager_dead_worker_skips_total", func() uint64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.skips
	})
	reg.CounterFunc("manager_readoptions_total", func() uint64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.readoptions
	})
	reg.GaugeFunc("manager_orphan_shards", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(m.orphans)
	})
	return m, nil
}

// DeadWorkers lists workers that were registered in the image but did
// not answer the last observation (sorted). They are excluded from
// every balancing plan until they answer again.
func (m *Manager) DeadWorkers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.dead))
	for id, d := range m.dead {
		if d {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Metrics returns the manager's registry (opts.Metrics or a private one).
func (m *Manager) Metrics() *metrics.Registry { return m.reg }

// Events returns the recent balancing events, oldest first.
func (m *Manager) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// recordEvent appends to the bounded event log; callers hold m.mu.
func (m *Manager) recordEvent(ev Event) {
	ev.Time = time.Now()
	m.events = append(m.events, ev)
	if len(m.events) > maxEvents {
		m.events = append(m.events[:0:0], m.events[len(m.events)-maxEvents:]...)
	}
}

// Start launches the background balancing loop.
func (m *Manager) Start() {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		tick := time.NewTicker(m.opts.Interval)
		defer tick.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-tick.C:
				_, _ = m.RunPass()
			}
		}
	}()
}

// Close stops the loop and drops worker connections.
func (m *Manager) Close() {
	m.closeOnce.Do(func() {
		close(m.stop)
		m.wg.Wait()
		m.mu.Lock()
		for _, c := range m.conns {
			c.Close()
		}
		m.conns = map[string]*netmsg.Client{}
		m.mu.Unlock()
	})
}

// Stats snapshots the activity counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

func (m *Manager) client(addr string) (*netmsg.Client, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.conns[addr]; ok {
		return c, nil
	}
	c, err := netmsg.DialOptions(addr, netmsg.DialOpts{
		// Bound observation RPCs so one wedged worker cannot stall a
		// whole balancing pass.
		DefaultTimeout: 5 * time.Second,
		Fault:          m.opts.Fault,
		Party:          "manager",
	})
	if err != nil {
		return nil, err
	}
	m.conns[addr] = c
	return c, nil
}

// workerView is the manager's per-pass picture of one worker.
type workerView struct {
	meta   *image.WorkerMeta
	shards map[image.ShardID]uint64 // live per-shard counts
	load   uint64
	alive  bool // the worker answered this pass's shardcounts probe
}

// observe builds the cluster picture: worker metadata from the global
// image plus live per-shard counts straight from the workers. A worker
// that is registered but does not answer is kept in the view with
// alive=false: without the flag its empty count map would read as load
// zero and make the corpse the preferred migration recipient.
func (m *Manager) observe() (map[string]*workerView, map[image.ShardID]*image.ShardMeta, error) {
	co := m.opts.Coord
	names, err := co.Children(image.PathWorkers)
	if err != nil {
		return nil, nil, err
	}
	views := make(map[string]*workerView)
	for _, name := range names {
		raw, _, err := co.Get(image.WorkerPath(name))
		if err != nil {
			continue
		}
		meta, err := image.DecodeWorkerMetaBytes(raw)
		if err != nil {
			continue
		}
		v := &workerView{meta: meta, shards: map[image.ShardID]uint64{}}
		if c, err := m.client(meta.Addr); err == nil {
			if resp, err := c.Request("worker.shardcounts", nil); err == nil {
				if counts, err := worker.DecodeShardCounts(resp); err == nil {
					v.shards = counts
					v.alive = true
				}
			}
		}
		for _, n := range v.shards {
			v.load += n
		}
		views[meta.ID] = v
	}
	m.mu.Lock()
	for id, v := range views {
		// A worker that was dead last pass and answers now has restarted
		// and re-adopted its shards — record the recovery.
		if m.dead[id] && v.alive {
			m.readoptions++
			m.recordEvent(Event{Kind: EventReadopt, From: id, Items: v.load})
		}
	}
	m.dead = make(map[string]bool, len(views))
	for id, v := range views {
		if !v.alive {
			m.dead[id] = true
		}
	}
	m.mu.Unlock()

	shardNames, err := co.Children(image.PathShards)
	if err != nil {
		return nil, nil, err
	}
	shards := make(map[image.ShardID]*image.ShardMeta)
	for _, name := range shardNames {
		raw, _, err := co.Get(image.PathShards + "/" + name)
		if err != nil {
			continue
		}
		meta, err := image.DecodeShardMetaBytes(raw)
		if err != nil {
			continue
		}
		shards[meta.ID] = meta
	}
	// Orphans: shards a worker hosts (and reports) that no global record
	// routes to — the leftover of a crash mid-split. Data is intact but
	// unreachable; operators watch manager_orphan_shards.
	orphans := 0
	for _, v := range views {
		for id := range v.shards {
			if _, ok := shards[id]; !ok {
				orphans++
			}
		}
	}
	m.mu.Lock()
	m.orphans = orphans
	m.mu.Unlock()
	return views, shards, nil
}

// RunPass analyzes the system and performs at most MaxOpsPerPass
// balancing operations. Replication maintenance — promoting followers of
// expired primaries, repairing replica sets — runs first and is not
// capped: failover must not queue behind load balancing. It returns the
// number of operations performed.
func (m *Manager) RunPass() (int, error) {
	m.mu.Lock()
	m.stats.Passes++
	m.mu.Unlock()

	ops, err := m.replicationPass()
	if err != nil {
		return ops, err
	}
	for ops < m.opts.MaxOpsPerPass {
		views, shards, err := m.observe()
		if err != nil {
			return ops, err
		}
		if len(views) < 2 {
			return ops, nil
		}
		acted, err := m.balanceOnce(views, shards)
		if err != nil {
			return ops, err
		}
		if !acted {
			return ops, nil
		}
		ops++
	}
	return ops, nil
}

// balanceOnce performs one split or migration if the system needs it.
func (m *Manager) balanceOnce(views map[string]*workerView, shards map[image.ShardID]*image.ShardMeta) (bool, error) {
	// Oversized-shard guard first (memory pressure, §III-E example).
	if m.opts.MaxShardItems > 0 {
		for id, meta := range shards {
			v := views[meta.Worker]
			if v == nil || !v.alive {
				continue
			}
			if n := v.shards[id]; n > m.opts.MaxShardItems {
				return true, m.splitShard(v, id)
			}
		}
	}

	// Identify donor (max load) and recipient (min load). Dead workers
	// can be neither: a donor cannot ship shards and a recipient would
	// swallow them.
	var donor, recipient *workerView
	skipped := 0
	for _, v := range views {
		if !v.alive {
			skipped++
			continue
		}
		if donor == nil || v.load > donor.load {
			donor = v
		}
		if recipient == nil || v.load < recipient.load {
			recipient = v
		}
	}
	if skipped > 0 {
		m.mu.Lock()
		m.skips += uint64(skipped)
		m.mu.Unlock()
	}
	if donor == nil || recipient == nil || donor == recipient {
		return false, nil
	}
	gap := donor.load - recipient.load
	if gap < m.opts.MinMoveItems {
		return false, nil
	}
	if recipient.load > 0 && float64(donor.load)/float64(recipient.load) <= m.opts.Ratio {
		return false, nil
	}

	// Choose the donor shard whose size is closest to half the gap.
	target := gap / 2
	var bestID image.ShardID
	var bestN uint64
	found := false
	for id, n := range donor.shards {
		if n == 0 {
			continue
		}
		if !found || absDiff(n, target) < absDiff(bestN, target) {
			bestID, bestN, found = id, n, true
		}
	}
	if !found {
		return false, nil
	}
	// If even the best choice overshoots badly, split it first so the
	// next round has a right-sized piece ("the load balancer requires
	// smaller shards for migration", §III-E).
	if bestN > target+target/2 && bestN >= 2*m.opts.MinMoveItems {
		return true, m.splitShard(donor, bestID)
	}
	return true, m.migrateShard(donor, recipient, bestID)
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// splitShard allocates a new shard ID and splits on the owning worker,
// then records both halves in the global image.
func (m *Manager) splitShard(v *workerView, id image.ShardID) error {
	newID, err := AllocShardIDs(m.opts.Coord, 1)
	if err != nil {
		return err
	}
	c, err := m.client(v.meta.Addr)
	if err != nil {
		return err
	}
	resp, err := c.Request("worker.splitshard", worker.EncodeSplitRequest(id, newID))
	if err != nil {
		return err
	}
	res, err := worker.DecodeSplitResult(resp)
	if err != nil {
		return err
	}
	// Update the global image: shrink the old record, add the new one.
	// Both halves start with no replicas: the split tore the shipping
	// links down (a pre-split standby would be a stale superset of either
	// half), and the next replication pass re-seeds them.
	if err := m.updateShardMeta(id, func(meta *image.ShardMeta) {
		meta.Key = res.LeftKey
		meta.Count = res.LeftCount
		meta.Replicas = nil
	}); err != nil {
		return err
	}
	newMeta := &image.ShardMeta{ID: newID, Worker: v.meta.ID, Key: res.RightKey, Count: res.RightCount}
	if _, err := m.opts.Coord.CreateOrSet(image.ShardPath(newID), newMeta.EncodeBytes()); err != nil {
		return err
	}
	m.mu.Lock()
	m.stats.Splits++
	m.recordEvent(Event{Kind: EventSplit, Shard: id, NewShard: newID, From: v.meta.ID, Items: res.RightCount})
	m.mu.Unlock()
	return nil
}

// migrateShard ships a shard from donor to recipient and flips ownership
// in the global image.
func (m *Manager) migrateShard(donor, recipient *workerView, id image.ShardID) error {
	c, err := m.client(donor.meta.Addr)
	if err != nil {
		return err
	}
	resp, err := c.Request("worker.sendshard", worker.EncodeSendRequest(id, recipient.meta.Addr))
	if err != nil {
		return err
	}
	moved := wire.NewReader(resp).Uvarint()
	if err := m.updateShardMeta(id, func(meta *image.ShardMeta) {
		meta.Worker = recipient.meta.ID
		if moved > meta.Count {
			meta.Count = moved
		}
		// Migration severed the shipping links; the new owner gets a
		// fresh replica set from the next replication pass.
		meta.Replicas = nil
	}); err != nil {
		return err
	}
	m.mu.Lock()
	m.stats.Migrations++
	m.stats.MovedItems += moved
	m.recordEvent(Event{Kind: EventMigration, Shard: id, From: donor.meta.ID, To: recipient.meta.ID, Items: moved})
	m.mu.Unlock()
	return nil
}

// updateShardMeta applies a mutation to a shard's global record with a
// compare-and-set retry loop, preserving concurrent server-side
// bounding-box merges.
func (m *Manager) updateShardMeta(id image.ShardID, mutate func(*image.ShardMeta)) error {
	co := m.opts.Coord
	for attempt := 0; attempt < 16; attempt++ {
		raw, version, err := co.Get(image.ShardPath(id))
		if err != nil {
			return err
		}
		meta, err := image.DecodeShardMetaBytes(raw)
		if err != nil {
			return err
		}
		mutate(meta)
		_, err = co.Set(image.ShardPath(id), meta.EncodeBytes(), version)
		if err == nil {
			return nil
		}
		if !errors.Is(err, coord.ErrBadVersion) {
			return err
		}
	}
	return fmt.Errorf("manager: shard %d meta update contended", id)
}

// AllocShardIDs reserves n consecutive shard IDs from the global counter
// and returns the first. The counter is seeded above any shard already
// registered in the image, so clusters bootstrapped without the counter
// still allocate fresh IDs.
func AllocShardIDs(co coord.Coordinator, n uint64) (image.ShardID, error) {
	const path = image.PathRoot + "/nextshard"
	for attempt := 0; attempt < 64; attempt++ {
		raw, version, err := co.Get(path)
		if errors.Is(err, coord.ErrNoNode) {
			var first uint64
			if names, err := co.Children(image.PathShards); err == nil {
				for _, name := range names {
					if id, ok := image.ParseShardPath(image.PathShards + "/" + name); ok && uint64(id) >= first {
						first = uint64(id) + 1
					}
				}
			}
			w := wire.NewWriter(8)
			w.Uvarint(first + n)
			if _, cerr := co.Create(path, w.Bytes()); cerr == nil {
				return image.ShardID(first), nil
			}
			continue
		}
		if err != nil {
			return 0, err
		}
		next := wire.NewReader(raw).Uvarint()
		w := wire.NewWriter(8)
		w.Uvarint(next + n)
		if _, err := co.Set(path, w.Bytes(), version); err == nil {
			return image.ShardID(next), nil
		} else if !errors.Is(err, coord.ErrBadVersion) {
			return 0, err
		}
	}
	return 0, errors.New("manager: shard ID allocation contended")
}

// DrainWorker migrates every shard off the given worker, distributing
// them across the least-loaded remaining workers — the "workers ... can
// be removed as necessary" half of VOLAP's elasticity (§I, §III-E). The
// worker keeps forwarding for stragglers afterwards; decommission it only
// after servers have caught up (a few sync intervals).
func (m *Manager) DrainWorker(workerID string) (int, error) {
	moved := 0
	for {
		views, _, err := m.observe()
		if err != nil {
			return moved, err
		}
		src := views[workerID]
		if src == nil {
			return moved, fmt.Errorf("manager: unknown worker %q", workerID)
		}
		if !src.alive {
			return moved, fmt.Errorf("manager: worker %q is down, cannot drain", workerID)
		}
		if len(src.shards) == 0 {
			return moved, nil
		}
		// Pick the largest remaining shard and the least-loaded live peer.
		var shard image.ShardID
		var shardN uint64
		first := true
		for id, n := range src.shards {
			if first || n > shardN {
				shard, shardN, first = id, n, false
			}
		}
		var dst *workerView
		for id, v := range views {
			if id == workerID || !v.alive {
				continue
			}
			if dst == nil || v.load < dst.load {
				dst = v
			}
		}
		if dst == nil {
			return moved, errors.New("manager: no live worker to drain to")
		}
		if err := m.migrateShard(src, dst, shard); err != nil {
			return moved, err
		}
		moved++
	}
}

// Loads summarizes current per-worker item counts (exposed for the
// Figure 6 bench and examples).
func (m *Manager) Loads() (map[string]uint64, error) {
	views, _, err := m.observe()
	if err != nil {
		return nil, err
	}
	out := make(map[string]uint64, len(views))
	for id, v := range views {
		out[id] = v.load
	}
	return out, nil
}

// SortedLoads returns loads as (workerID, items) pairs ordered by ID.
func (m *Manager) SortedLoads() ([]string, []uint64, error) {
	loads, err := m.Loads()
	if err != nil {
		return nil, nil, err
	}
	ids := make([]string, 0, len(loads))
	for id := range loads {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	ns := make([]uint64, len(ids))
	for i, id := range ids {
		ns[i] = loads[id]
	}
	return ids, ns, nil
}
