package manager

import (
	"fmt"
	"sort"

	"repro/internal/image"
	"repro/internal/wire"
	"repro/internal/worker"
)

// This file is the manager half of per-shard replication: it decides
// which workers follow which shards (ensureReplication), promotes the
// freshest follower when a primary's session expires
// (promoteDeadPrimaries), and garbage-collects standbys that no shard
// record references anymore. Workers only execute; the replica placement
// policy lives entirely here, next to the balancing policy.

// replicationPass runs promotion, then — when a replication factor is
// configured — replica-set maintenance. Returns the number of
// promotions + seed operations performed.
func (m *Manager) replicationPass() (int, error) {
	views, shards, err := m.observe()
	if err != nil {
		return 0, err
	}
	ops := m.promoteDeadPrimaries(views, shards)
	if m.opts.ReplicationFactor > 1 {
		if ops > 0 {
			// Promotions rewrote ownership; rebuild the picture before
			// deciding where new replicas belong.
			if views, shards, err = m.observe(); err != nil {
				return ops, err
			}
		}
		ops += m.ensureReplication(views, shards)
	}
	return ops, nil
}

// RunReplicationPass runs one replication maintenance round on demand:
// promote shards whose primary's session expired, then bring every
// shard's replica set up to ReplicationFactor-1 live followers. The
// background loop does the same at the start of every balancing pass.
func (m *Manager) RunReplicationPass() (int, error) {
	return m.replicationPass()
}

// replStatus fetches one worker's replication snapshot.
func (m *Manager) replStatus(addr string) (worker.ReplStatus, error) {
	c, err := m.client(addr)
	if err != nil {
		return worker.ReplStatus{}, err
	}
	resp, err := c.Request("worker.replicastatus", nil)
	if err != nil {
		return worker.ReplStatus{}, err
	}
	return worker.DecodeReplStatus(resp)
}

// statusCache memoizes per-pass worker.replicastatus probes.
type statusCache struct {
	m     *Manager
	views map[string]*workerView
	got   map[string]*worker.ReplStatus
}

func (sc *statusCache) get(workerID string) *worker.ReplStatus {
	if st, ok := sc.got[workerID]; ok {
		return st
	}
	v := sc.views[workerID]
	if v == nil || !v.alive {
		sc.got[workerID] = nil
		return nil
	}
	st, err := sc.m.replStatus(v.meta.Addr)
	if err != nil {
		sc.got[workerID] = nil
		return nil
	}
	sc.got[workerID] = &st
	return &st
}

// sortedShardIDs gives passes a deterministic iteration order.
func sortedShardIDs(shards map[image.ShardID]*image.ShardMeta) []image.ShardID {
	ids := make([]image.ShardID, 0, len(shards))
	for id := range shards {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// promoteDeadPrimaries promotes the freshest live follower of every
// shard whose primary is no longer registered (its ephemeral session
// expired — mere unreachability is not enough, since a partitioned
// primary may still be serving servers on the other side). One image
// refresh later every server routes to the promoted worker.
func (m *Manager) promoteDeadPrimaries(views map[string]*workerView, shards map[image.ShardID]*image.ShardMeta) int {
	sc := &statusCache{m: m, views: views, got: map[string]*worker.ReplStatus{}}
	ops := 0
	for _, id := range sortedShardIDs(shards) {
		meta := shards[id]
		if views[meta.Worker] != nil || len(meta.Replicas) == 0 {
			continue
		}
		// Rank the listed followers by applied watermark; the semi-sync
		// ship means every follower holds every acknowledged record, so
		// the ranking only breaks ties among unacknowledged tails.
		best := ""
		var bestApplied uint64
		for _, rid := range meta.Replicas {
			st := sc.get(rid)
			if st == nil {
				continue
			}
			for _, s := range st.Standbys {
				if s.Shard != id {
					continue
				}
				if best == "" || s.Applied > bestApplied {
					best, bestApplied = rid, s.Applied
				}
			}
		}
		if best == "" {
			continue
		}
		count, err := m.promoteOn(views[best].meta.Addr, id)
		if err != nil {
			continue
		}
		oldOwner := meta.Worker
		if err := m.updateShardMeta(id, func(mm *image.ShardMeta) {
			mm.Worker = best
			mm.Replicas = removeString(mm.Replicas, best)
			if count > mm.Count {
				mm.Count = count
			}
		}); err != nil {
			continue
		}
		meta.Worker = best
		meta.Replicas = removeString(meta.Replicas, best)
		m.mu.Lock()
		m.stats.Promotions++
		m.recordEvent(Event{Kind: EventPromotion, Shard: id, From: oldOwner, To: best, Items: count})
		m.mu.Unlock()
		ops++
	}
	return ops
}

// promoteOn asks the worker at addr to promote its standby of shard id.
func (m *Manager) promoteOn(addr string, id image.ShardID) (uint64, error) {
	c, err := m.client(addr)
	if err != nil {
		return 0, err
	}
	req := wire.NewWriter(8)
	req.Uvarint(uint64(id))
	resp, err := c.Request("worker.promote", req.Bytes())
	if err != nil {
		return 0, err
	}
	return wire.NewReader(resp).Uvarint(), nil
}

// addReplica asks a primary to seed and stream to a new follower.
func (m *Manager) addReplica(primaryAddr string, id image.ShardID, followerID, followerAddr string) error {
	c, err := m.client(primaryAddr)
	if err != nil {
		return err
	}
	req := wire.NewWriter(32)
	req.Uvarint(uint64(id))
	req.String(followerID)
	req.String(followerAddr)
	_, err = c.Request("worker.addreplica", req.Bytes())
	return err
}

// dropReplicaOn asks a follower to discard a standby copy.
func (m *Manager) dropReplicaOn(addr string, id image.ShardID) {
	c, err := m.client(addr)
	if err != nil {
		return
	}
	req := wire.NewWriter(8)
	req.Uvarint(uint64(id))
	_, _ = c.Request("worker.dropreplica", req.Bytes())
}

func removeString(ss []string, s string) []string {
	out := ss[:0]
	for _, v := range ss {
		if v != s {
			out = append(out, v)
		}
	}
	return out
}

// ensureReplication brings every live shard's replica set up to
// ReplicationFactor-1 followers: dead followers are pruned from the
// record, followers the primary is no longer shipping to are re-seeded
// (snapshot + live tail — the DynaHash principle of moving bytes once,
// not items forever), and missing slots are filled on the workers
// hosting the fewest standbys. A final sweep drops standbys that no
// shard record references (left over from splits, migrations, or
// replica-set changes). Returns the number of seed operations.
func (m *Manager) ensureReplication(views map[string]*workerView, shards map[image.ShardID]*image.ShardMeta) int {
	desired := m.opts.ReplicationFactor - 1
	sc := &statusCache{m: m, views: views, got: map[string]*worker.ReplStatus{}}

	// Standby placement load, for spreading replicas evenly.
	standbyLoad := make(map[string]int, len(views))
	aliveIDs := make([]string, 0, len(views))
	for wid, v := range views {
		if !v.alive {
			continue
		}
		aliveIDs = append(aliveIDs, wid)
		if st := sc.get(wid); st != nil {
			standbyLoad[wid] = len(st.Standbys)
		}
	}
	sort.Strings(aliveIDs)

	ops := 0
	wanted := make(map[image.ShardID]map[string]bool, len(shards))
	for _, id := range sortedShardIDs(shards) {
		meta := shards[id]
		owner := views[meta.Worker]
		if owner == nil || !owner.alive {
			// Primary down: leave the record alone so a later promotion
			// still has followers to choose from.
			w := map[string]bool{}
			for _, r := range meta.Replicas {
				w[r] = true
			}
			wanted[id] = w
			continue
		}
		shipping := map[string]bool{}
		if st := sc.get(meta.Worker); st != nil {
			for _, l := range st.Links {
				if l.Shard == id {
					shipping[l.Follower] = true
				}
			}
		}
		live := make([]string, 0, len(meta.Replicas))
		changed := false
		for _, r := range meta.Replicas {
			v := views[r]
			if v == nil || !v.alive || r == meta.Worker {
				changed = true
				continue
			}
			if !shipping[r] {
				// The primary lost this stream (ship failure, or the
				// primary itself is a fresh promotion): re-seed.
				if err := m.addReplica(owner.meta.Addr, id, r, v.meta.Addr); err != nil {
					changed = true
					continue
				}
				ops++
			}
			live = append(live, r)
		}
		for len(live) < desired {
			cand := ""
			for _, wid := range aliveIDs {
				if wid == meta.Worker || contains(live, wid) {
					continue
				}
				if cand == "" || standbyLoad[wid] < standbyLoad[cand] {
					cand = wid
				}
			}
			if cand == "" {
				break // not enough live workers; try again next pass
			}
			if err := m.addReplica(owner.meta.Addr, id, cand, views[cand].meta.Addr); err != nil {
				break
			}
			standbyLoad[cand]++
			live = append(live, cand)
			changed = true
			ops++
		}
		if changed {
			if err := m.updateShardMeta(id, func(mm *image.ShardMeta) {
				mm.Replicas = append([]string(nil), live...)
			}); err == nil {
				meta.Replicas = live
			}
		}
		w := make(map[string]bool, len(live))
		for _, r := range live {
			w[r] = true
		}
		wanted[id] = w
	}

	// Garbage-collect unreferenced standbys.
	for _, wid := range aliveIDs {
		st := sc.got[wid]
		if st == nil {
			continue
		}
		for _, s := range st.Standbys {
			if w, ok := wanted[s.Shard]; ok && w[wid] {
				continue
			}
			m.dropReplicaOn(views[wid].meta.Addr, s.Shard)
		}
	}
	return ops
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// PromoteShard promotes the freshest live follower of a shard on
// demand — a failover drill, or read-placement surgery. When the old
// primary is still alive it is demoted afterwards: promote-then-demote
// means every insert acknowledged in the window is either shipped to the
// promoted follower (semi-sync, applied into its now-owned store) or
// forwarded to it by the demotion tombstone, so nothing acknowledged is
// lost. The shard record flips last, which is what servers refresh from.
func (m *Manager) PromoteShard(id image.ShardID) (string, error) {
	views, shards, err := m.observe()
	if err != nil {
		return "", err
	}
	meta := shards[id]
	if meta == nil {
		return "", fmt.Errorf("manager: unknown shard %d", id)
	}
	sc := &statusCache{m: m, views: views, got: map[string]*worker.ReplStatus{}}
	best := ""
	var bestApplied uint64
	for _, rid := range meta.Replicas {
		st := sc.get(rid)
		if st == nil {
			continue
		}
		for _, s := range st.Standbys {
			if s.Shard != id {
				continue
			}
			if best == "" || s.Applied > bestApplied {
				best, bestApplied = rid, s.Applied
			}
		}
	}
	if best == "" {
		return "", fmt.Errorf("manager: shard %d has no live replica", id)
	}
	count, err := m.promoteOn(views[best].meta.Addr, id)
	if err != nil {
		return "", err
	}
	oldOwner := meta.Worker
	if ov := views[oldOwner]; ov != nil && ov.alive && oldOwner != best {
		c, err := m.client(ov.meta.Addr)
		if err == nil {
			req := wire.NewWriter(32)
			req.Uvarint(uint64(id))
			req.String(views[best].meta.Addr)
			// Best effort: a failed demotion leaves a second live copy
			// that the record no longer routes to; inserts shipped to the
			// promoted follower keep it consistent until an operator (or
			// the old primary's restart path) cleans up.
			_, _ = c.Request("worker.demote", req.Bytes())
		}
	}
	if err := m.updateShardMeta(id, func(mm *image.ShardMeta) {
		mm.Worker = best
		mm.Replicas = removeString(mm.Replicas, best)
		if count > mm.Count {
			mm.Count = count
		}
	}); err != nil {
		return "", err
	}
	m.mu.Lock()
	m.stats.Promotions++
	m.recordEvent(Event{Kind: EventPromotion, Shard: id, From: oldOwner, To: best, Items: count})
	m.mu.Unlock()
	return best, nil
}
