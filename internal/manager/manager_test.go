package manager

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/image"
	"repro/internal/keys"
	"repro/internal/worker"
)

var seq int

type harness struct {
	t       *testing.T
	store   *coord.Store
	cfg     *image.ClusterConfig
	workers map[string]*worker.Worker
	nextID  image.ShardID
}

func newHarness(t *testing.T, workers int) *harness {
	t.Helper()
	seq++
	schema := hierarchy.MustSchema(
		hierarchy.MustDimension("A",
			hierarchy.Level{Name: "L1", Fanout: 10},
			hierarchy.Level{Name: "L2", Fanout: 10}),
		hierarchy.MustDimension("B",
			hierarchy.Level{Name: "L1", Fanout: 40}),
	)
	h := &harness{
		t:     t,
		store: coord.NewStore(),
		cfg: &image.ClusterConfig{
			Schema: schema, Store: core.StoreHilbertPDC, Keys: keys.MDS,
			MDSCap: 4, LeafCapacity: 32, DirCapacity: 8,
		},
		workers: make(map[string]*worker.Worker),
	}
	if _, err := h.store.Create(image.PathConfig, h.cfg.EncodeBytes()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < workers; i++ {
		h.addWorker()
	}
	t.Cleanup(h.store.Close)
	return h
}

func (h *harness) addWorker() string {
	h.t.Helper()
	id := fmt.Sprintf("w%d", len(h.workers))
	w := worker.New(id, h.cfg)
	addr, err := w.Listen(fmt.Sprintf("inproc://mgrtest%d-%s", seq, id))
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(w.Close)
	meta := &image.WorkerMeta{ID: id, Addr: addr, UpdatedMs: time.Now().UnixMilli()}
	if _, err := h.store.CreateOrSet(image.WorkerPath(id), meta.EncodeBytes()); err != nil {
		h.t.Fatal(err)
	}
	h.workers[id] = w
	return id
}

// addShard creates a shard with n skewed items on the given worker and
// registers it globally.
func (h *harness) addShard(workerID string, n int, rng *rand.Rand) image.ShardID {
	h.t.Helper()
	id := h.nextID
	h.nextID++
	w := h.workers[workerID]
	if err := w.CreateShard(id); err != nil {
		h.t.Fatal(err)
	}
	items := make([]core.Item, n)
	for i := range items {
		items[i] = core.Item{Coords: []uint64{uint64(rng.Intn(100)), uint64(rng.Intn(40))}, Measure: 1}
	}
	if n > 0 {
		if err := w.Insert(context.Background(), id, items); err != nil {
			h.t.Fatal(err)
		}
	}
	k := keys.NewEmpty(keys.MDS, 2, 4)
	for _, it := range items {
		k.ExtendPoint(it.Coords)
	}
	sm := &image.ShardMeta{ID: id, Worker: workerID, Key: k, Count: uint64(n)}
	if _, err := h.store.CreateOrSet(image.ShardPath(id), sm.EncodeBytes()); err != nil {
		h.t.Fatal(err)
	}
	return id
}

func (h *harness) totalItems() uint64 {
	var total uint64
	for _, w := range h.workers {
		total += w.Meta().Items
	}
	return total
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("missing coordinator should fail")
	}
	st := coord.NewStore()
	defer st.Close()
	m, err := New(Options{Coord: st})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.opts.Ratio != 1.25 || m.opts.MinMoveItems != 512 || m.opts.MaxOpsPerPass != 4 {
		t.Errorf("defaults = %+v", m.opts)
	}
}

func TestNoWorkersNoAction(t *testing.T) {
	h := newHarness(t, 1)
	m, _ := New(Options{Coord: h.store})
	defer m.Close()
	ops, err := m.RunPass()
	if err != nil || ops != 0 {
		t.Fatalf("single-worker pass = %d %v", ops, err)
	}
}

// TestMigrationBalances puts all data on one worker and checks the
// manager evens things out without losing items.
func TestMigrationBalances(t *testing.T) {
	h := newHarness(t, 2)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4; i++ {
		h.addShard("w0", 1000, rng)
	}
	m, _ := New(Options{Coord: h.store, Ratio: 1.2, MinMoveItems: 100})
	defer m.Close()

	for pass := 0; pass < 10; pass++ {
		ops, err := m.RunPass()
		if err != nil {
			t.Fatal(err)
		}
		if ops == 0 {
			break
		}
	}
	st := m.Stats()
	if st.Migrations == 0 {
		t.Fatalf("no migrations: %+v", st)
	}
	if h.totalItems() != 4000 {
		t.Fatalf("items = %d, want 4000", h.totalItems())
	}
	loads, err := m.Loads()
	if err != nil {
		t.Fatal(err)
	}
	if loads["w1"] == 0 {
		t.Fatalf("w1 still empty: %v", loads)
	}
	ratio := float64(max64(loads["w0"], loads["w1"])) / float64(min64nz(loads["w0"], loads["w1"]))
	if ratio > 2.5 {
		t.Errorf("still badly imbalanced: %v", loads)
	}
	// Ownership flipped in the global image for migrated shards.
	flipped := 0
	for id := image.ShardID(0); id < 4; id++ {
		raw, _, err := h.store.Get(image.ShardPath(id))
		if err != nil {
			t.Fatal(err)
		}
		meta, _ := image.DecodeShardMetaBytes(raw)
		if meta.Worker == "w1" {
			flipped++
		}
	}
	if flipped == 0 {
		t.Error("no shard ownership changed in the image")
	}
}

// TestSplitWhenShardTooBig: one giant shard must be split before moving.
func TestSplitWhenShardTooBig(t *testing.T) {
	h := newHarness(t, 2)
	rng := rand.New(rand.NewSource(2))
	h.addShard("w0", 4000, rng)
	m, _ := New(Options{Coord: h.store, Ratio: 1.2, MinMoveItems: 100})
	defer m.Close()
	for pass := 0; pass < 10; pass++ {
		ops, err := m.RunPass()
		if err != nil {
			t.Fatal(err)
		}
		if ops == 0 {
			break
		}
	}
	st := m.Stats()
	if st.Splits == 0 {
		t.Fatalf("expected a split first: %+v", st)
	}
	if st.Migrations == 0 {
		t.Fatalf("expected a migration after the split: %+v", st)
	}
	if h.totalItems() != 4000 {
		t.Fatalf("items = %d", h.totalItems())
	}
	// The split's new shard is registered globally.
	names, _ := h.store.Children(image.PathShards)
	if len(names) < 2 {
		t.Fatalf("shards registered = %v", names)
	}
}

// TestMaxShardItemsGuard splits oversized shards even when balanced.
func TestMaxShardItemsGuard(t *testing.T) {
	h := newHarness(t, 2)
	rng := rand.New(rand.NewSource(3))
	h.addShard("w0", 3000, rng)
	h.addShard("w1", 3000, rng)
	m, _ := New(Options{Coord: h.store, Ratio: 10, MinMoveItems: 100000, MaxShardItems: 2000})
	defer m.Close()
	if _, err := m.RunPass(); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Splits == 0 {
		t.Fatalf("oversized shards not split: %+v", st)
	}
}

func TestAllocShardIDs(t *testing.T) {
	st := coord.NewStore()
	defer st.Close()
	first, err := AllocShardIDs(st, 4)
	if err != nil || first != 0 {
		t.Fatalf("first alloc = %d %v", first, err)
	}
	second, err := AllocShardIDs(st, 2)
	if err != nil || second != 4 {
		t.Fatalf("second alloc = %d %v", second, err)
	}
	// Concurrent allocations never collide.
	var mu sync.Mutex
	got := map[image.ShardID]bool{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id, err := AllocShardIDs(st, 1)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if got[id] {
					t.Errorf("duplicate id %d", id)
				}
				got[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestSortedLoads(t *testing.T) {
	h := newHarness(t, 3)
	rng := rand.New(rand.NewSource(4))
	h.addShard("w0", 100, rng)
	h.addShard("w1", 200, rng)
	m, _ := New(Options{Coord: h.store})
	defer m.Close()
	ids, loads, err := m.SortedLoads()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != "w0" || ids[1] != "w1" || ids[2] != "w2" {
		t.Fatalf("ids = %v", ids)
	}
	if loads[0] != 100 || loads[1] != 200 || loads[2] != 0 {
		t.Fatalf("loads = %v", loads)
	}
}

// TestBackgroundLoop smoke-tests Start/Close.
func TestBackgroundLoop(t *testing.T) {
	h := newHarness(t, 2)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3; i++ {
		h.addShard("w0", 500, rng)
	}
	m, _ := New(Options{Coord: h.store, Interval: 10 * time.Millisecond, Ratio: 1.2, MinMoveItems: 100})
	m.Start()
	deadline := time.Now().Add(3 * time.Second)
	for m.Stats().Migrations == 0 {
		if time.Now().After(deadline) {
			m.Close()
			t.Fatal("background loop never balanced")
		}
		time.Sleep(10 * time.Millisecond)
	}
	m.Close()
	m.Close() // idempotent
	if h.totalItems() != 1500 {
		t.Fatalf("items = %d", h.totalItems())
	}
}

// TestDrainWorker empties a worker completely and checks the data
// survives on the peers.
func TestDrainWorker(t *testing.T) {
	h := newHarness(t, 3)
	rng := rand.New(rand.NewSource(6))
	h.addShard("w0", 800, rng)
	h.addShard("w0", 600, rng)
	h.addShard("w1", 500, rng)
	m, _ := New(Options{Coord: h.store})
	defer m.Close()

	moved, err := m.DrainWorker("w0")
	if err != nil {
		t.Fatal(err)
	}
	if moved != 2 {
		t.Fatalf("moved %d shards, want 2", moved)
	}
	loads, err := m.Loads()
	if err != nil {
		t.Fatal(err)
	}
	if loads["w0"] != 0 {
		t.Fatalf("w0 still has %d items", loads["w0"])
	}
	if loads["w1"]+loads["w2"] != 1900 {
		t.Fatalf("peers hold %d+%d items, want 1900", loads["w1"], loads["w2"])
	}
	// Ownership flipped for both drained shards.
	for id := image.ShardID(0); id < 2; id++ {
		raw, _, err := h.store.Get(image.ShardPath(id))
		if err != nil {
			t.Fatal(err)
		}
		meta, _ := image.DecodeShardMetaBytes(raw)
		if meta.Worker == "w0" {
			t.Errorf("shard %d still owned by w0", id)
		}
	}
	// Draining again is a no-op; draining an unknown worker fails.
	if moved, err := m.DrainWorker("w0"); err != nil || moved != 0 {
		t.Errorf("second drain = %d %v", moved, err)
	}
	if _, err := m.DrainWorker("nope"); err == nil {
		t.Error("draining unknown worker should fail")
	}
}

// TestDrainWorkerNoPeers fails cleanly with a single worker.
func TestDrainWorkerNoPeers(t *testing.T) {
	h := newHarness(t, 1)
	rng := rand.New(rand.NewSource(7))
	h.addShard("w0", 100, rng)
	m, _ := New(Options{Coord: h.store})
	defer m.Close()
	if _, err := m.DrainWorker("w0"); err == nil {
		t.Error("drain with no peers should fail")
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64nz(a, b uint64) uint64 {
	m := a
	if b < m {
		m = b
	}
	if m == 0 {
		return 1
	}
	return m
}
