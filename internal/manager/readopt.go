package manager

import (
	"errors"

	"repro/internal/coord"
	"repro/internal/image"
)

// This file implements the re-adoption half of worker recovery. Shard
// records in the coordination service are persistent (only worker
// registrations are ephemeral), so when a durable worker restarts and
// rebuilds its shards, the global image usually still names it as the
// owner — the restart is a re-adoption of existing records, not the
// arrival of a fresh empty worker.

// ReadoptResult summarizes one re-adoption pass.
type ReadoptResult struct {
	// Readopted counts recovered shards whose global record names this
	// worker again (confirmed or re-pointed).
	Readopted int
	// Conflicts counts recovered shards whose record meanwhile names a
	// different worker — the cluster moved on while this one was down, so
	// its copy must stay unrouted (the current owner has newer data).
	Conflicts int
	// Orphans counts recovered shards with no global record at all: the
	// crash interrupted an operation (typically a split) between the
	// durable flip and the image update. Their data is intact on disk but
	// unroutable; the manager surfaces them via manager_orphan_shards.
	Orphans int
}

// ReadoptShards reconciles a recovered worker's shards with the global
// image: a record that still names the worker is confirmed (the common
// case — shard records are persistent, so nothing moved while the worker
// was down), a record naming another worker is a conflict (that owner has
// newer data; it is never stolen), and a missing record is an orphan. The
// pass is read-only: routing state needs no repair precisely because
// re-registration under the same ID re-animates the existing records.
func ReadoptShards(co coord.Coordinator, workerID string, shards []image.ShardID) (ReadoptResult, error) {
	var res ReadoptResult
	for _, id := range shards {
		raw, _, err := co.Get(image.ShardPath(id))
		if errors.Is(err, coord.ErrNoNode) {
			res.Orphans++
			continue
		}
		if err != nil {
			return res, err
		}
		meta, err := image.DecodeShardMetaBytes(raw)
		if err != nil {
			return res, err
		}
		if meta.Worker != workerID {
			res.Conflicts++
			continue
		}
		res.Readopted++
	}
	return res, nil
}
