// Package image implements VOLAP's system image (§III-B): the global
// cluster state stored in the coordination service, and the server-side
// local image — a modified PDC tree over shard bounding boxes used to
// route every insertion and query (§III-C).
package image

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/keys"
	"repro/internal/rollup"
	"repro/internal/wire"
)

// Coordination-tree layout. All VOLAP state lives under /volap.
const (
	PathRoot    = "/volap"
	PathConfig  = "/volap/config"
	PathWorkers = "/volap/workers"
	PathServers = "/volap/servers"
	PathShards  = "/volap/shards"
)

// WorkerPath returns the coordination path of a worker's metadata node.
func WorkerPath(id string) string { return PathWorkers + "/" + id }

// ServerPath returns the coordination path of a server's metadata node.
func ServerPath(id string) string { return PathServers + "/" + id }

// ShardPath returns the coordination path of a shard's metadata node.
func ShardPath(id ShardID) string {
	return PathShards + "/" + strconv.FormatUint(uint64(id), 10)
}

// ParseShardPath extracts the shard ID from a shard metadata path.
func ParseShardPath(path string) (ShardID, bool) {
	if len(path) <= len(PathShards)+1 || path[:len(PathShards)+1] != PathShards+"/" {
		return 0, false
	}
	v, err := strconv.ParseUint(path[len(PathShards)+1:], 10, 64)
	if err != nil {
		return 0, false
	}
	return ShardID(v), true
}

// ParseWorkerPath extracts the worker ID from a worker metadata path.
func ParseWorkerPath(path string) (string, bool) {
	if len(path) <= len(PathWorkers)+1 || path[:len(PathWorkers)+1] != PathWorkers+"/" {
		return "", false
	}
	return path[len(PathWorkers)+1:], true
}

// ShardID identifies a shard globally.
type ShardID uint64

// String renders the ID.
func (id ShardID) String() string { return strconv.FormatUint(uint64(id), 10) }

// ShardMeta is the global record of one shard: where it lives, what space
// it covers, and how big it is (§III-B: "for each shard its size,
// bounding box, and the address of the worker where it is located").
type ShardMeta struct {
	ID     ShardID
	Worker string // owning worker ID
	Key    *keys.Key
	Count  uint64
	// Replicas lists the worker IDs holding a standby copy of the shard
	// (fed by the primary's WAL-record shipping). On primary loss the
	// manager promotes the freshest of these and rewrites Worker.
	Replicas []string
}

// Encode serializes the record.
func (m *ShardMeta) Encode(w *wire.Writer) {
	w.Uvarint(uint64(m.ID))
	w.String(m.Worker)
	m.Key.Encode(w)
	w.Uvarint(m.Count)
	w.Uvarint(uint64(len(m.Replicas)))
	for _, r := range m.Replicas {
		w.String(r)
	}
}

// EncodeBytes serializes the record to a fresh buffer.
func (m *ShardMeta) EncodeBytes() []byte {
	w := wire.NewWriter(64)
	m.Encode(w)
	return w.Bytes()
}

// DecodeShardMeta reads a record serialized by Encode.
func DecodeShardMeta(r *wire.Reader) (*ShardMeta, error) {
	m := &ShardMeta{ID: ShardID(r.Uvarint()), Worker: r.String()}
	k, err := keys.DecodeKey(r)
	if err != nil {
		return nil, fmt.Errorf("image: shard key: %w", err)
	}
	m.Key = k
	m.Count = r.Uvarint()
	if n := r.Uvarint(); n > 0 && r.Err() == nil {
		if n > uint64(r.Remaining()) {
			return nil, fmt.Errorf("image: shard replica count %d exceeds payload", n)
		}
		m.Replicas = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			m.Replicas = append(m.Replicas, r.String())
		}
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	return m, nil
}

// HasReplica reports whether worker id is listed as a replica.
func (m *ShardMeta) HasReplica(id string) bool {
	for _, r := range m.Replicas {
		if r == id {
			return true
		}
	}
	return false
}

// DecodeShardMetaBytes decodes from a buffer.
func DecodeShardMetaBytes(b []byte) (*ShardMeta, error) {
	return DecodeShardMeta(wire.NewReader(b))
}

// WorkerMeta is the global record of one worker node.
type WorkerMeta struct {
	ID        string
	Addr      string // netmsg address
	Shards    uint32
	Items     uint64
	MemBytes  uint64
	UpdatedMs int64 // wall-clock of last stats push, unix milliseconds
}

// EncodeBytes serializes the record.
func (m *WorkerMeta) EncodeBytes() []byte {
	w := wire.NewWriter(64)
	w.String(m.ID)
	w.String(m.Addr)
	w.Uvarint(uint64(m.Shards))
	w.Uvarint(m.Items)
	w.Uvarint(m.MemBytes)
	w.Varint(m.UpdatedMs)
	return w.Bytes()
}

// DecodeWorkerMetaBytes decodes from a buffer.
func DecodeWorkerMetaBytes(b []byte) (*WorkerMeta, error) {
	r := wire.NewReader(b)
	m := &WorkerMeta{
		ID:     r.String(),
		Addr:   r.String(),
		Shards: uint32(r.Uvarint()),
		Items:  r.Uvarint(),
	}
	m.MemBytes = r.Uvarint()
	m.UpdatedMs = r.Varint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	return m, nil
}

// ServerMeta is the global record of one server node.
type ServerMeta struct {
	ID   string
	Addr string
}

// EncodeBytes serializes the record.
func (m *ServerMeta) EncodeBytes() []byte {
	w := wire.NewWriter(32)
	w.String(m.ID)
	w.String(m.Addr)
	return w.Bytes()
}

// DecodeServerMetaBytes decodes from a buffer.
func DecodeServerMetaBytes(b []byte) (*ServerMeta, error) {
	r := wire.NewReader(b)
	m := &ServerMeta{ID: r.String(), Addr: r.String()}
	if r.Err() != nil {
		return nil, r.Err()
	}
	return m, nil
}

// ClusterConfig is the global, immutable configuration every component
// reads at startup: the schema and the shard store parameters.
type ClusterConfig struct {
	Schema       *hierarchy.Schema
	Store        core.StoreKind
	Keys         keys.Kind
	MDSCap       int
	LeafCapacity int
	DirCapacity  int
	// Rollups lists the materialized rollup definitions every worker
	// maintains per shard and servers route covering queries to. Order
	// matters: workers and servers refer to definitions by index.
	Rollups []rollup.Def
}

// StoreConfig converts to a shard store configuration.
func (c *ClusterConfig) StoreConfig() core.Config {
	return core.Config{
		Schema:       c.Schema,
		Store:        c.Store,
		Keys:         c.Keys,
		MDSCap:       c.MDSCap,
		LeafCapacity: c.LeafCapacity,
		DirCapacity:  c.DirCapacity,
	}
}

// EncodeBytes serializes the configuration.
func (c *ClusterConfig) EncodeBytes() []byte {
	w := wire.NewWriter(128)
	w.Uint8(uint8(c.Store))
	w.Uint8(uint8(c.Keys))
	w.Uvarint(uint64(c.MDSCap))
	w.Uvarint(uint64(c.LeafCapacity))
	w.Uvarint(uint64(c.DirCapacity))
	c.Schema.Encode(w)
	w.Uint64(c.Schema.Fingerprint())
	w.Uvarint(uint64(len(c.Rollups)))
	for _, def := range c.Rollups {
		def.Encode(w)
	}
	return w.Bytes()
}

// DecodeClusterConfigBytes decodes from a buffer.
func DecodeClusterConfigBytes(b []byte) (*ClusterConfig, error) {
	r := wire.NewReader(b)
	c := &ClusterConfig{
		Store:        core.StoreKind(r.Uint8()),
		Keys:         keys.Kind(r.Uint8()),
		MDSCap:       int(r.Uvarint()),
		LeafCapacity: int(r.Uvarint()),
		DirCapacity:  int(r.Uvarint()),
	}
	schema, err := hierarchy.DecodeSchema(r)
	if err != nil {
		return nil, fmt.Errorf("image: cluster schema: %w", err)
	}
	c.Schema = schema
	if fp := r.Uint64(); fp != schema.Fingerprint() || r.Err() != nil {
		return nil, fmt.Errorf("image: cluster config corrupt")
	}
	// Rollup definitions are absent from pre-rollup configurations.
	if r.Remaining() > 0 {
		n := r.Uvarint()
		if r.Err() != nil {
			return nil, fmt.Errorf("image: cluster rollup count: %w", r.Err())
		}
		if n > uint64(r.Remaining()) {
			return nil, fmt.Errorf("image: cluster rollup count %d exceeds payload", n)
		}
		for i := uint64(0); i < n; i++ {
			def, err := rollup.DecodeDef(r)
			if err != nil {
				return nil, fmt.Errorf("image: cluster rollup %d: %w", i, err)
			}
			if err := def.Validate(schema); err != nil {
				return nil, fmt.Errorf("image: cluster rollup %d: %w", i, err)
			}
			c.Rollups = append(c.Rollups, def)
		}
	}
	return c, nil
}
