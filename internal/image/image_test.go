package image

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/keys"
	"repro/internal/wire"
)

func testSchema(tb testing.TB) *hierarchy.Schema {
	tb.Helper()
	return hierarchy.MustSchema(
		hierarchy.MustDimension("A",
			hierarchy.Level{Name: "L1", Fanout: 10},
			hierarchy.Level{Name: "L2", Fanout: 10}),
		hierarchy.MustDimension("B",
			hierarchy.Level{Name: "L1", Fanout: 40}),
	)
}

func TestShardPathRoundTrip(t *testing.T) {
	p := ShardPath(42)
	if p != "/volap/shards/42" {
		t.Fatalf("ShardPath = %q", p)
	}
	id, ok := ParseShardPath(p)
	if !ok || id != 42 {
		t.Fatalf("ParseShardPath = %d %v", id, ok)
	}
	for _, bad := range []string{"/volap/shards", "/volap/shards/", "/volap/shards/abc", "/volap/workers/1"} {
		if _, ok := ParseShardPath(bad); ok {
			t.Errorf("ParseShardPath(%q) should fail", bad)
		}
	}
	if ShardID(7).String() != "7" {
		t.Error("ShardID.String wrong")
	}
	if WorkerPath("w1") != "/volap/workers/w1" || ServerPath("s1") != "/volap/servers/s1" {
		t.Error("paths wrong")
	}
}

func TestShardMetaRoundTrip(t *testing.T) {
	k := keys.NewPoint(keys.MDS, 4, []uint64{3, 7})
	k.ExtendPoint([]uint64{9, 1})
	m := &ShardMeta{ID: 5, Worker: "w2", Key: k, Count: 123}
	got, err := DecodeShardMetaBytes(m.EncodeBytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 5 || got.Worker != "w2" || got.Count != 123 || !got.Key.Equal(k) {
		t.Fatalf("roundtrip = %+v", got)
	}
	if _, err := DecodeShardMetaBytes([]byte{1}); err == nil {
		t.Error("truncated meta should fail")
	}
}

func TestWorkerServerMetaRoundTrip(t *testing.T) {
	w := &WorkerMeta{ID: "w1", Addr: "inproc://w1", Shards: 3, Items: 1000, MemBytes: 1 << 20, UpdatedMs: 1234567}
	got, err := DecodeWorkerMetaBytes(w.EncodeBytes())
	if err != nil || *got != *w {
		t.Fatalf("worker roundtrip = %+v, %v", got, err)
	}
	s := &ServerMeta{ID: "s1", Addr: "inproc://s1"}
	gs, err := DecodeServerMetaBytes(s.EncodeBytes())
	if err != nil || *gs != *s {
		t.Fatalf("server roundtrip = %+v, %v", gs, err)
	}
	if _, err := DecodeWorkerMetaBytes(nil); err == nil {
		t.Error("empty worker meta should fail")
	}
}

func TestClusterConfigRoundTrip(t *testing.T) {
	c := &ClusterConfig{
		Schema: testSchema(t),
		Store:  core.StoreHilbertPDC,
		Keys:   keys.MDS,
		MDSCap: 4, LeafCapacity: 32, DirCapacity: 8,
	}
	got, err := DecodeClusterConfigBytes(c.EncodeBytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Store != c.Store || got.Keys != c.Keys || got.LeafCapacity != 32 {
		t.Fatalf("roundtrip = %+v", got)
	}
	if got.Schema.Fingerprint() != c.Schema.Fingerprint() {
		t.Error("schema changed")
	}
	sc := got.StoreConfig()
	if sc.Store != c.Store || sc.Schema == nil {
		t.Error("StoreConfig wrong")
	}
	if _, err := DecodeClusterConfigBytes([]byte{1, 2}); err == nil {
		t.Error("truncated config should fail")
	}
	// Corrupt the fingerprint.
	b := c.EncodeBytes()
	b[len(b)-1] ^= 0xFF
	if _, err := DecodeClusterConfigBytes(b); err == nil {
		t.Error("corrupt fingerprint should fail")
	}
}

func newTestIndex(tb testing.TB, shards int) *Index {
	tb.Helper()
	s := testSchema(tb)
	idx := NewIndex(s, keys.MDS, 4, 4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < shards; i++ {
		k := keys.NewPoint(keys.MDS, 4, []uint64{uint64(rng.Intn(100)), uint64(rng.Intn(40))})
		k.ExtendPoint([]uint64{uint64(rng.Intn(100)), uint64(rng.Intn(40))})
		if err := idx.AddShard(ShardID(i), k); err != nil {
			tb.Fatal(err)
		}
	}
	return idx
}

func TestIndexAddShard(t *testing.T) {
	idx := newTestIndex(t, 20)
	if idx.NumShards() != 20 {
		t.Fatalf("NumShards = %d", idx.NumShards())
	}
	if err := idx.AddShard(3, nil); err == nil {
		t.Error("duplicate shard should fail")
	}
	if !idx.Has(7) || idx.Has(99) {
		t.Error("Has wrong")
	}
	if got := len(idx.Shards()); got != 20 {
		t.Errorf("Shards() = %d", got)
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRouteInsertEmpty(t *testing.T) {
	idx := NewIndex(testSchema(t), keys.MDS, 4, 4)
	if _, _, err := idx.RouteInsert([]uint64{1, 2}); err != ErrNoShards {
		t.Fatalf("err = %v", err)
	}
}

// TestRouteInsertAndQuery routes random inserts and checks every inserted
// point is found by a query covering it.
func TestRouteInsertAndQuery(t *testing.T) {
	idx := newTestIndex(t, 12)
	rng := rand.New(rand.NewSource(3))
	type placed struct {
		coords []uint64
		shard  ShardID
	}
	var pts []placed
	for i := 0; i < 2000; i++ {
		coords := []uint64{uint64(rng.Intn(100)), uint64(rng.Intn(40))}
		id, _, err := idx.RouteInsert(coords)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, placed{coords, id})
	}
	// A point query covering a placed coordinate must route to (at least)
	// the shard that received it.
	for _, p := range pts[:200] {
		q := keys.NewRect(
			hierarchy.Interval{Lo: p.coords[0], Hi: p.coords[0]},
			hierarchy.Interval{Lo: p.coords[1], Hi: p.coords[1]},
		)
		got := idx.RouteQuery(q)
		found := false
		for _, id := range got {
			if id == p.shard {
				found = true
			}
		}
		if !found {
			t.Fatalf("query for %v missed shard %d (got %v)", p.coords, p.shard, got)
		}
	}
	// The all-query touches every shard that received an insert.
	all := idx.RouteQuery(keys.AllRect(testSchema(t)))
	if len(all) == 0 {
		t.Fatal("all-query found nothing")
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestExpandLeaf applies a remote expansion and checks queries route to
// the expanded shard afterwards.
func TestExpandLeaf(t *testing.T) {
	s := testSchema(t)
	idx := NewIndex(s, keys.MDS, 4, 4)
	for i := 0; i < 8; i++ {
		k := keys.NewPoint(keys.MDS, 4, []uint64{uint64(i * 10), 5})
		if err := idx.AddShard(ShardID(i), k); err != nil {
			t.Fatal(err)
		}
	}
	// Remote insert grew shard 3 to cover (99, 39).
	grown := keys.NewPoint(keys.MDS, 4, []uint64{30, 5})
	grown.ExtendPoint([]uint64{99, 39})
	if !idx.ExpandLeaf(3, grown, 555) {
		t.Fatal("ExpandLeaf failed")
	}
	if idx.ExpandLeaf(99, grown, 1) {
		t.Error("ExpandLeaf of unknown shard should report false")
	}
	q := keys.NewRect(hierarchy.Interval{Lo: 99, Hi: 99}, hierarchy.Interval{Lo: 39, Hi: 39})
	got := idx.RouteQuery(q)
	found := false
	for _, id := range got {
		if id == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("query after expansion missed shard 3: %v", got)
	}
	k, count, ok := idx.LeafSnapshot(3)
	if !ok || count != 555 || !k.ContainsPoint([]uint64{99, 39}) {
		t.Fatalf("LeafSnapshot = %v %d %v", k, count, ok)
	}
	if _, _, ok := idx.LeafSnapshot(99); ok {
		t.Error("snapshot of unknown shard should fail")
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestIndexConcurrency mixes routing inserts, routing queries, shard
// additions, and expansions under -race.
func TestIndexConcurrency(t *testing.T) {
	s := testSchema(t)
	idx := NewIndex(s, keys.MDS, 4, 4)
	for i := 0; i < 4; i++ {
		if err := idx.AddShard(ShardID(i), keys.NewPoint(keys.MDS, 4, []uint64{uint64(25 * i), 20})); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 3000; i++ {
				if _, _, err := idx.RouteInsert([]uint64{uint64(rng.Intn(100)), uint64(rng.Intn(40))}); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(g))
	}
	var qwg sync.WaitGroup
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			lo := uint64(rng.Intn(100))
			q := keys.NewRect(hierarchy.Interval{Lo: 0, Hi: lo}, hierarchy.Interval{Lo: 0, Hi: 39})
			idx.RouteQuery(q)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 4; i < 20; i++ {
			if err := idx.AddShard(ShardID(i), keys.NewPoint(keys.MDS, 4, []uint64{uint64(i * 5), 10})); err != nil {
				t.Error(err)
				return
			}
			k := keys.NewPoint(keys.MDS, 4, []uint64{uint64(i * 5), 30})
			idx.ExpandLeaf(ShardID(i), k, uint64(i))
		}
	}()

	wg.Wait()
	close(stop)
	qwg.Wait()
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if idx.NumShards() != 20 {
		t.Fatalf("NumShards = %d", idx.NumShards())
	}
}

func TestWireHelpers(t *testing.T) {
	// Cover the wire.Uint64s helper used by several packages.
	w := wire.NewWriter(16)
	w.Uint64s([]uint64{1, 500, 1 << 40})
	got := wire.NewReader(w.Bytes()).Uint64s()
	if len(got) != 3 || got[2] != 1<<40 {
		t.Fatalf("Uint64s roundtrip = %v", got)
	}
}
