package image

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/hierarchy"
	"repro/internal/keys"
)

// Index is a server's local image (§III-C): a modified PDC tree whose
// leaves are shards. The leaf set is fixed by the global image — an
// insertion expands a leaf's bounding box but never splits it — and a
// separate map from shard ID to leaf supports the bottom-up expansion
// used during synchronization.
//
// Concurrency: routing operations use the same lock-coupling discipline
// as the shard trees (insert routing holds at most two node write locks;
// query routing read-locks a frontier). Structural operations (AddShard)
// and bottom-up expansions additionally serialize on structMu so that
// parent pointers never change under an upward walker; the upward walk
// itself holds only one node lock at a time, which — exactly as the paper
// notes — lets the enclosure invariant be violated transiently without
// ever hiding data from queries.
type Index struct {
	schema *hierarchy.Schema
	kind   keys.Kind
	mdsCap int
	dirCap int

	structMu sync.Mutex // serializes AddShard and ExpandLeaf

	anchor sync.RWMutex
	root   *inode

	leafMu sync.RWMutex
	leaves map[ShardID]*inode
}

type inode struct {
	mu       sync.RWMutex
	key      *keys.Key
	parent   *inode
	children []*inode

	leaf  bool
	shard ShardID
	count uint64
}

// ErrNoShards is returned by RouteInsert on an empty index.
var ErrNoShards = errors.New("image: no shards in local image")

// NewIndex builds an empty local image. dirCap bounds directory fan-out
// (0 = 8).
func NewIndex(schema *hierarchy.Schema, kind keys.Kind, mdsCap, dirCap int) *Index {
	if dirCap < 3 {
		dirCap = 8
	}
	idx := &Index{
		schema: schema,
		kind:   kind,
		mdsCap: mdsCap,
		dirCap: dirCap,
		leaves: make(map[ShardID]*inode),
	}
	idx.root = idx.newDir()
	return idx
}

func (x *Index) newDir() *inode {
	return &inode{key: keys.NewEmpty(x.kind, x.schema.NumDims(), x.mdsCap)}
}

// NumShards returns the number of leaves.
func (x *Index) NumShards() int {
	x.leafMu.RLock()
	defer x.leafMu.RUnlock()
	return len(x.leaves)
}

// Has reports whether the shard is present.
func (x *Index) Has(id ShardID) bool {
	x.leafMu.RLock()
	defer x.leafMu.RUnlock()
	_, ok := x.leaves[id]
	return ok
}

// Shards lists all shard IDs.
func (x *Index) Shards() []ShardID {
	x.leafMu.RLock()
	defer x.leafMu.RUnlock()
	out := make([]ShardID, 0, len(x.leaves))
	for id := range x.leaves {
		out = append(out, id)
	}
	return out
}

// LeafSnapshot returns a clone of the shard's current bounding key and
// its locally tracked count.
func (x *Index) LeafSnapshot(id ShardID) (*keys.Key, uint64, bool) {
	x.leafMu.RLock()
	n := x.leaves[id]
	x.leafMu.RUnlock()
	if n == nil {
		return nil, 0, false
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.key.Clone(), n.count, true
}

// AddShard inserts a new leaf for the shard (empty key if k is nil).
// Directory nodes split preemptively on the way down, keeping all leaves
// at uniform depth.
func (x *Index) AddShard(id ShardID, k *keys.Key) error {
	x.leafMu.Lock()
	if _, dup := x.leaves[id]; dup {
		x.leafMu.Unlock()
		return fmt.Errorf("image: shard %d already present", id)
	}
	x.leafMu.Unlock()

	leaf := &inode{leaf: true, shard: id, key: keys.NewEmpty(x.kind, x.schema.NumDims(), x.mdsCap)}
	if k != nil {
		leaf.key.ExtendKey(k)
	}

	x.structMu.Lock()
	defer x.structMu.Unlock()

	x.anchor.Lock()
	cur := x.root
	cur.mu.Lock()
	if len(cur.children) >= x.dirCap {
		right := x.splitDir(cur)
		newRoot := x.newDir()
		newRoot.children = []*inode{cur, right}
		cur.parent, right.parent = newRoot, newRoot
		newRoot.key.ExtendKey(cur.key)
		newRoot.key.ExtendKey(right.key)
		x.root = newRoot
		newRoot.mu.Lock()
		cur.mu.Unlock()
		cur = newRoot
	}
	x.anchor.Unlock()

	for {
		cur.key.ExtendKey(leaf.key)
		if len(cur.children) == 0 || cur.children[0].leaf {
			leaf.parent = cur
			cur.children = append(cur.children, leaf)
			cur.mu.Unlock()
			break
		}
		i := x.chooseChild(cur, leaf.key, nil)
		child := cur.children[i]
		child.mu.Lock()
		if len(child.children) >= x.dirCap {
			right := x.splitDir(child)
			right.parent = cur
			cur.children = append(cur.children, nil)
			copy(cur.children[i+2:], cur.children[i+1:])
			cur.children[i+1] = right
			// Route into the better half. child is write-locked by us and
			// right is not yet reachable by others (cur is write-locked),
			// so the keys are read directly.
			if keyEnlargement(right.key, leaf.key) < keyEnlargement(child.key, leaf.key) {
				right.mu.Lock()
				child.mu.Unlock()
				child = right
			}
		}
		cur.mu.Unlock()
		cur = child
	}

	x.leafMu.Lock()
	x.leaves[id] = leaf
	x.leafMu.Unlock()
	return nil
}

// splitDir splits a full, write-locked directory node in place and
// returns the new right sibling (unlocked, parent unset). Children are
// ordered along the widest dimension; parent pointers of moved children
// are fixed under their own locks.
func (x *Index) splitDir(n *inode) *inode {
	// Order children by midpoint along the widest dimension of n's key.
	d := 0
	bestSpan := -1.0
	for dim := 0; dim < x.schema.NumDims(); dim++ {
		if n.key.Empty() {
			break
		}
		b := n.key.Bounds(dim)
		span := float64(b.Len()) / float64(x.schema.Dim(dim).LeafCount())
		if span > bestSpan {
			d, bestSpan = dim, span
		}
	}
	mids := func(c *inode) uint64 {
		c.mu.RLock()
		defer c.mu.RUnlock()
		if c.key.Empty() {
			return 0
		}
		b := c.key.Bounds(d)
		return b.Lo + b.Hi
	}
	// Insertion sort (fan-outs are small).
	for i := 1; i < len(n.children); i++ {
		for j := i; j > 0 && mids(n.children[j]) < mids(n.children[j-1]); j-- {
			n.children[j], n.children[j-1] = n.children[j-1], n.children[j]
		}
	}
	mid := len(n.children) / 2
	right := x.newDir()
	right.children = append(right.children, n.children[mid:]...)
	n.children = n.children[:mid:mid]

	recompute := func(dir *inode) {
		dir.key = keys.NewEmpty(x.kind, x.schema.NumDims(), x.mdsCap)
		for _, c := range dir.children {
			c.mu.Lock()
			c.parent = dir
			dir.key.ExtendKey(c.key)
			c.mu.Unlock()
		}
	}
	recompute(n)
	recompute(right)
	return right
}

// keyEnlargement measures how much extending base by k grows it. The
// caller must have exclusive or read access to base.
func keyEnlargement(base, k *keys.Key) float64 {
	if base.Empty() {
		return k.Volume()
	}
	ext := base.Clone()
	ext.ExtendKey(k)
	return ext.Volume() - base.Volume()
}

// chooseChild picks the subtree that minimizes the overlap its extension
// (by key k or point coords) would cause with its siblings — the paper's
// least-overlap rule ("the high global cost of overlap dominates the cost
// of performing overlap calculations in the index", §III-C). The caller
// holds n's write lock.
func (x *Index) chooseChild(n *inode, k *keys.Key, coords []uint64) int {
	snaps := make([]*keys.Key, len(n.children))
	for i, c := range n.children {
		c.mu.RLock()
		snaps[i] = c.key.Clone()
		c.mu.RUnlock()
	}
	best, bestOv, bestEnl := -1, 0.0, 0.0
	for i := range n.children {
		ext := snaps[i].Clone()
		if coords != nil {
			ext.ExtendPoint(coords)
		} else {
			ext.ExtendKey(k)
		}
		ov := 0.0
		for j := range snaps {
			if j != i {
				ov += ext.OverlapVolume(snaps[j])
			}
		}
		enl := ext.Volume() - snaps[i].Volume()
		if best == -1 || ov < bestOv || (ov == bestOv && enl < bestEnl) {
			best, bestOv, bestEnl = i, ov, enl
		}
	}
	return best
}

// RouteInsert picks the shard for a new item, expanding bounding boxes
// along the path (the local image is "changed by an insertion", §III-B).
// It reports whether the chosen leaf's box actually grew, which is what
// the server must eventually synchronize.
func (x *Index) RouteInsert(coords []uint64) (ShardID, bool, error) {
	x.anchor.RLock()
	cur := x.root
	cur.mu.Lock()
	x.anchor.RUnlock()
	if len(cur.children) == 0 {
		cur.mu.Unlock()
		return 0, false, ErrNoShards
	}
	for {
		if cur.leaf {
			grew := !cur.key.ContainsPoint(coords)
			cur.key.ExtendPoint(coords)
			cur.count++
			id := cur.shard
			cur.mu.Unlock()
			return id, grew, nil
		}
		cur.key.ExtendPoint(coords)
		i := x.chooseChild(cur, nil, coords)
		child := cur.children[i]
		child.mu.Lock()
		cur.mu.Unlock()
		cur = child
	}
}

// RouteQuery returns the shards whose bounding boxes touch the query
// rectangle (§III-C search).
func (x *Index) RouteQuery(q keys.Rect) []ShardID {
	x.anchor.RLock()
	cur := x.root
	cur.mu.RLock()
	x.anchor.RUnlock()
	var out []ShardID
	x.routeQuery(cur, q, &out)
	return out
}

// routeQuery visits the read-locked node n and releases it.
func (x *Index) routeQuery(n *inode, q keys.Rect, out *[]ShardID) {
	if n.leaf {
		if n.key.OverlapsRect(q) {
			*out = append(*out, n.shard)
		}
		n.mu.RUnlock()
		return
	}
	children := make([]*inode, len(n.children))
	for i, c := range n.children {
		c.mu.RLock()
		children[i] = c
	}
	n.mu.RUnlock()
	for _, c := range children {
		x.routeQuery(c, q, out)
	}
}

// ExpandLeaf applies a remote bounding-box expansion (and count) to the
// shard's leaf and propagates the expansion bottom-up toward the root,
// holding one node lock at a time (§III-C: the expansion "is propagated
// up the tree towards the root as necessary", transiently violating the
// enclosure invariant without hiding previously covered data).
func (x *Index) ExpandLeaf(id ShardID, k *keys.Key, count uint64) bool {
	x.leafMu.RLock()
	leaf := x.leaves[id]
	x.leafMu.RUnlock()
	if leaf == nil {
		return false
	}
	x.structMu.Lock()
	defer x.structMu.Unlock()

	leaf.mu.Lock()
	leaf.key.ExtendKey(k)
	if count > leaf.count {
		leaf.count = count
	}
	p := leaf.parent
	leaf.mu.Unlock()
	for p != nil {
		p.mu.Lock()
		p.key.ExtendKey(k)
		next := p.parent
		p.mu.Unlock()
		p = next
	}
	return true
}

// CheckInvariants verifies (on a quiescent index) that every leaf key is
// covered by the union of its ancestors' coverage for routing purposes:
// specifically that a query overlapping a leaf's key also overlaps every
// ancestor's key, which is the property RouteQuery relies on. It also
// checks the leaf map and uniform leaf depth.
func (x *Index) CheckInvariants() error {
	x.anchor.RLock()
	root := x.root
	x.anchor.RUnlock()
	leafDepth := -1
	seen := 0
	var walk func(n *inode, depth int, anc []*keys.Key) error
	walk = func(n *inode, depth int, anc []*keys.Key) error {
		n.mu.RLock()
		defer n.mu.RUnlock()
		if n.leaf {
			seen++
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("image: leaves at depths %d and %d", leafDepth, depth)
			}
			x.leafMu.RLock()
			mapped := x.leaves[n.shard]
			x.leafMu.RUnlock()
			if mapped != n {
				return fmt.Errorf("image: leaf map stale for shard %d", n.shard)
			}
			if !n.key.Empty() {
				for _, a := range anc {
					if !n.key.OverlapsKey(a) {
						return fmt.Errorf("image: ancestor key misses leaf %d", n.shard)
					}
				}
			}
			return nil
		}
		anc = append(anc, n.key)
		for _, c := range n.children {
			if err := walk(c, depth+1, anc); err != nil {
				return err
			}
			c.mu.RLock()
			if c.parent != n {
				c.mu.RUnlock()
				return fmt.Errorf("image: broken parent pointer")
			}
			c.mu.RUnlock()
		}
		return nil
	}
	if err := walk(root, 0, nil); err != nil {
		return err
	}
	if seen != x.NumShards() {
		return fmt.Errorf("image: walked %d leaves, map has %d", seen, x.NumShards())
	}
	return nil
}
