package volap

// Observability integration tests: trace-ID propagation across the
// client → server → worker chain, and the /metrics endpoint over live
// component registries.

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestTraceIDPropagation drives one traced query through a server and
// two workers and checks the same trace ID lands in all three
// components' trace-event buffers.
func TestTraceIDPropagation(t *testing.T) {
	opts := testOptions(t)
	opts.Servers = 1
	cluster, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	cl, err := cluster.ClientTo(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Spread data over both workers' shards so the query fans out.
	rng := rand.New(rand.NewSource(7))
	items := make([]Item, 2000)
	for i := range items {
		items[i] = randItem(rng, cluster.Schema())
	}
	if err := cl.InsertBatchNoCtx(items); err != nil {
		t.Fatal(err)
	}
	cluster.SyncAll()

	ctx, traceID := WithTrace(context.Background())
	if traceID == 0 {
		t.Fatal("WithTrace minted trace ID 0")
	}
	if got := TraceID(ctx); got != traceID {
		t.Fatalf("TraceID(ctx) = %d, want %d", got, traceID)
	}
	// WithTrace keeps an existing ID instead of re-minting.
	if ctx2, id2 := WithTrace(ctx); id2 != traceID || TraceID(ctx2) != traceID {
		t.Fatalf("WithTrace re-minted: %d, want %d", id2, traceID)
	}

	res, err := cl.Query(ctx, AllRect(cluster.Schema()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.Count != uint64(len(items)) {
		t.Fatalf("count = %d, want %d", res.Agg.Count, len(items))
	}
	if res.Info.WorkersContacted != 2 {
		t.Fatalf("workers contacted = %d, want 2", res.Info.WorkersContacted)
	}

	if !cluster.servers[0].Trace().Has(traceID) {
		t.Errorf("server trace buffer is missing trace %d: %+v",
			traceID, cluster.servers[0].Trace().Events())
	}
	for i, w := range cluster.workers {
		if !w.Trace().Has(traceID) {
			t.Errorf("worker %d trace buffer is missing trace %d: %+v",
				i, traceID, w.Trace().Events())
		}
	}

	// The server's buffer names the op; the workers' buffers name theirs.
	foundOp := false
	for _, ev := range cluster.servers[0].Trace().For(traceID) {
		if ev.Op == "query" {
			foundOp = true
		}
	}
	if !foundOp {
		t.Errorf("server trace for %d has no query op: %+v",
			traceID, cluster.servers[0].Trace().For(traceID))
	}
}

// promLine matches one Prometheus exposition sample line.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? ([-+0-9.eE]+|\+Inf|NaN)$`)

// scrape fetches and parses a /metrics endpoint, returning the summed
// value per metric name.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain", ct)
	}
	sums := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable metrics line from %s: %q", url, line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue // +Inf / NaN never appear on counters we assert on
		}
		sums[m[1]] += v
	}
	return sums
}

// TestMetricsEndpoint serves each embedded component's registry over
// HTTP after live traffic and checks the scrape parses with nonzero op
// counters on every process.
func TestMetricsEndpoint(t *testing.T) {
	opts := testOptions(t)
	opts.Servers = 1
	cluster, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	cl, err := cluster.ClientTo(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(8))
	items := make([]Item, 1000)
	for i := range items {
		items[i] = randItem(rng, cluster.Schema())
	}
	if err := cl.InsertBatchNoCtx(items); err != nil {
		t.Fatal(err)
	}
	cluster.SyncAll()
	if _, err := cl.QueryNoCtx(AllRect(cluster.Schema())); err != nil {
		t.Fatal(err)
	}

	check := func(name string, reg *Registry, counter string) {
		o, err := obs.Serve("127.0.0.1:0", reg, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer o.Close()
		sums := scrape(t, "http://"+o.Addr()+"/metrics")
		if sums[counter] == 0 {
			t.Errorf("%s: %s = 0, want nonzero (scraped %d families)", name, counter, len(sums))
		}
	}
	check("server", cluster.servers[0].Metrics(), "server_routes_total")
	for _, w := range cluster.workers {
		check("worker "+w.ID(), w.Metrics(), "worker_insert_seconds_count")
	}
	check("client", cl.Metrics(), "netmsg_request_seconds_count")
}
