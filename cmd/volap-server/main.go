// Command volap-server runs one VOLAP server node (§III-A): the
// client-facing tier that routes insertions and aggregate queries through
// its local image and synchronizes with the global image at a
// configurable rate (the paper's default is 3 seconds).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/coord"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	coordAddr := flag.String("coord", "127.0.0.1:5550", "coordination service address")
	id := flag.String("id", "", "server ID (required, e.g. s0)")
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	sync := flag.Duration("sync", 3*time.Second, "local image synchronization interval")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/volap on this address (off when empty)")
	flag.Parse()
	if *id == "" {
		fmt.Fprintln(os.Stderr, "volap-server: -id is required")
		os.Exit(2)
	}

	co, err := coord.DialClient(*coordAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "volap-server: coord:", err)
		os.Exit(1)
	}
	defer co.Close()

	s, err := server.New(server.Options{ID: *id, Coord: co, SyncInterval: *sync})
	if err != nil {
		fmt.Fprintln(os.Stderr, "volap-server:", err)
		os.Exit(1)
	}
	bound, err := s.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "volap-server:", err)
		os.Exit(1)
	}
	fmt.Printf("volap-server %s: serving clients on %s (sync every %v, %d shards in image)\n",
		*id, bound, *sync, s.NumShards())

	if *metricsAddr != "" {
		o, err := obs.Serve(*metricsAddr, s.Metrics(), func() any {
			return map[string]any{
				"id":     s.ID(),
				"addr":   s.Addr(),
				"shards": s.NumShards(),
				"trace":  s.Trace().Events(),
			}
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "volap-server:", err)
			os.Exit(1)
		}
		defer o.Close()
		fmt.Printf("volap-server %s: observability on http://%s/metrics\n", *id, o.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	s.Close()
}
