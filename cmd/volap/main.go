// Command volap is the VOLAP command-line client: it inspects a running
// cluster and drives insert/query streams against it.
//
// Usage:
//
//	volap status -coord 127.0.0.1:5550
//	volap insert -coord ... [-server addr] -n 10000 [-bulk]
//	volap query  -coord ... [-server addr] [-n 20]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	volap "repro"

	"repro/internal/coord"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/tpcds"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	coordAddr := fs.String("coord", "127.0.0.1:5550", "coordination service address")
	serverAddr := fs.String("server", "", "server address (default: first registered server)")
	n := fs.Int("n", 1000, "operation count")
	seed := fs.Int64("seed", time.Now().UnixNano(), "workload seed")
	bulk := fs.Bool("bulk", false, "use the bulk ingestion path")
	readPref := fs.String("read-pref", "leader", "query read path: leader or replica")
	maxLag := fs.Uint64("max-replica-lag", 0, "staleness bound for replica reads in WAL records (0 = server default)")
	metricsAddr := fs.String("metrics-addr", "", "serve the session's /metrics on this address (off when empty)")
	_ = fs.Parse(args)

	var qopts volap.QueryOptions
	switch *readPref {
	case "leader":
	case "replica":
		qopts = volap.QueryOptions{Read: volap.ReadPreferReplica, MaxReplicaLag: *maxLag}
	default:
		fatal(fmt.Errorf("unknown -read-pref %q (want leader or replica)", *readPref), "flags")
	}

	co, err := coord.DialClient(*coordAddr)
	fatal(err, "coord")
	defer co.Close()

	switch cmd {
	case "status":
		status(co)
	case "insert":
		cl, schema := connect(co, *serverAddr)
		defer cl.Close()
		defer serveObs(*metricsAddr, cl)()
		gen := tpcds.NewGenerator(schema, *seed, 1.1)
		start := time.Now()
		batch := 500
		for off := 0; off < *n; off += batch {
			m := batch
			if off+m > *n {
				m = *n - off
			}
			items := gen.Items(m)
			if *bulk {
				fatal(cl.BulkLoadNoCtx(items), "bulk load")
			} else {
				fatal(cl.InsertBatchNoCtx(items), "insert")
			}
		}
		dur := time.Since(start)
		fmt.Printf("inserted %d items in %v (%.0f items/s)\n", *n, dur, float64(*n)/dur.Seconds())
	case "query":
		cl, schema := connect(co, *serverAddr)
		defer cl.Close()
		defer serveObs(*metricsAddr, cl)()
		agg, info, err := cl.QueryWithNoCtx(volap.AllRect(schema), qopts)
		fatal(err, "query")
		fmt.Printf("database: count=%d sum=%.2f avg=%.2f (searched %d shards on %d workers)%s%s\n",
			agg.Count, agg.Sum, agg.Avg(), info.ShardsSearched, info.WorkersContacted, replicaNote(info), partialNote(info))
		gen := tpcds.NewGenerator(schema, *seed, 1.1)
		for i := 0; i < *n; i++ {
			q := gen.Query()
			start := time.Now()
			agg, info, err := cl.QueryWithNoCtx(q, qopts)
			fatal(err, "query")
			cov := 0.0
			if total, _, err := cl.QueryNoCtx(volap.AllRect(schema)); err == nil && total.Count > 0 {
				cov = float64(agg.Count) / float64(total.Count)
			}
			fmt.Printf("q%-3d coverage=%5.1f%% count=%-10d sum=%-14.2f shards=%-3d latency=%v%s%s\n",
				i, cov*100, agg.Count, agg.Sum, info.ShardsSearched, time.Since(start).Round(time.Microsecond), replicaNote(info), partialNote(info))
		}
	default:
		usage()
	}
}

// partialNote flags a degraded result so a lower-than-expected count is
// never mistaken for the true total.
func partialNote(info volap.QueryInfo) string {
	if !info.Partial() {
		return ""
	}
	return fmt.Sprintf(" PARTIAL: missing shards %v", info.MissingShards)
}

// replicaNote reports how much of the answer came from replica copies.
func replicaNote(info volap.QueryInfo) string {
	if len(info.ReplicaShards) == 0 {
		return ""
	}
	return fmt.Sprintf(" [%d shards from replicas, lag<=%d]", len(info.ReplicaShards), info.MaxReplicaLag)
}

// connect picks a server (explicitly or from the image) and attaches a
// client session.
func connect(co *coord.Client, serverAddr string) (*volap.Client, *volap.Schema) {
	raw, _, err := co.Get(image.PathConfig)
	fatal(err, "cluster config")
	cfg, err := image.DecodeClusterConfigBytes(raw)
	fatal(err, "cluster config")
	addr := serverAddr
	if addr == "" {
		names, err := co.Children(image.PathServers)
		fatal(err, "servers")
		if len(names) == 0 {
			fatal(fmt.Errorf("no servers registered"), "servers")
		}
		raw, _, err := co.Get(image.ServerPath(names[0]))
		fatal(err, "server meta")
		meta, err := image.DecodeServerMetaBytes(raw)
		fatal(err, "server meta")
		addr = meta.Addr
	}
	cl, err := volap.Connect(addr)
	fatal(err, "connect")
	return cl, cfg.Schema
}

// status prints the global system image.
func status(co *coord.Client) {
	fmt.Println("== servers ==")
	names, _ := co.Children(image.PathServers)
	for _, name := range names {
		if raw, _, err := co.Get(image.ServerPath(name)); err == nil {
			if m, err := image.DecodeServerMetaBytes(raw); err == nil {
				fmt.Printf("  %-6s %s\n", m.ID, m.Addr)
			}
		}
	}
	fmt.Println("== workers ==")
	names, _ = co.Children(image.PathWorkers)
	for _, name := range names {
		if raw, _, err := co.Get(image.WorkerPath(name)); err == nil {
			if m, err := image.DecodeWorkerMetaBytes(raw); err == nil {
				age := time.Since(time.UnixMilli(m.UpdatedMs)).Round(time.Millisecond)
				fmt.Printf("  %-6s %-22s shards=%-4d items=%-10d mem=%-10d updated %v ago\n",
					m.ID, m.Addr, m.Shards, m.Items, m.MemBytes, age)
			}
		}
	}
	fmt.Println("== shards ==")
	names, _ = co.Children(image.PathShards)
	ids := make([]int, 0, len(names))
	for _, name := range names {
		if id, ok := image.ParseShardPath(image.PathShards + "/" + name); ok {
			ids = append(ids, int(id))
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		raw, _, err := co.Get(image.ShardPath(image.ShardID(id)))
		if err != nil {
			continue
		}
		if m, err := image.DecodeShardMetaBytes(raw); err == nil {
			repl := ""
			if len(m.Replicas) > 0 {
				repl = fmt.Sprintf(" replicas=%v", m.Replicas)
			}
			fmt.Printf("  shard %-5d worker=%-6s count=%-10d box=%v%s\n", m.ID, m.Worker, m.Count, m.Key, repl)
		}
	}
}

// serveObs exposes the client session's transport metrics over HTTP when
// -metrics-addr is set; the returned func stops the listener.
func serveObs(addr string, cl *volap.Client) func() {
	if addr == "" {
		return func() {}
	}
	o, err := obs.Serve(addr, cl.Metrics(), nil)
	fatal(err, "metrics")
	fmt.Printf("observability on http://%s/metrics\n", o.Addr())
	return o.Close
}

func fatal(err error, what string) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "volap: %s: %v\n", what, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: volap <status|insert|query> [flags]")
	os.Exit(2)
}
