// Command volap is the VOLAP command-line client: it inspects a running
// cluster and drives insert/query streams against it.
//
// Usage:
//
//	volap status -coord 127.0.0.1:5550
//	volap insert -coord ... [-server addr] -n 10000 [-bulk]
//	volap query  -coord ... [-server addr] [-n 20]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	volap "repro"

	"repro/internal/coord"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/tpcds"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	coordAddr := fs.String("coord", "127.0.0.1:5550", "coordination service address")
	serverAddr := fs.String("server", "", "server address (default: first registered server)")
	n := fs.Int("n", 1000, "operation count")
	seed := fs.Int64("seed", time.Now().UnixNano(), "workload seed")
	bulk := fs.Bool("bulk", false, "use the bulk ingestion path")
	readPref := fs.String("read-pref", "leader", "query read path: leader or replica")
	maxLag := fs.Uint64("max-replica-lag", 0, "staleness bound for replica reads in WAL records (0 = server default)")
	groupBy := fs.String("group-by", "", "grouped query: dim:level (dimension by name or index, level 0-based)")
	noRollup := fs.Bool("no-rollup", false, "force the raw tree path even when a rollup covers the query")
	metricsAddr := fs.String("metrics-addr", "", "serve the session's /metrics on this address (off when empty)")
	_ = fs.Parse(args)

	var qopt []volap.QueryOption
	switch *readPref {
	case "leader":
	case "replica":
		qopt = append(qopt, volap.WithReadPref(volap.ReadPreferReplica), volap.WithMaxLag(*maxLag))
	default:
		fatal(fmt.Errorf("unknown -read-pref %q (want leader or replica)", *readPref), "flags")
	}
	if *noRollup {
		qopt = append(qopt, volap.WithNoRollup())
	}

	co, err := coord.DialClient(*coordAddr)
	fatal(err, "coord")
	defer co.Close()

	switch cmd {
	case "status":
		status(co)
	case "insert":
		cl, schema := connect(co, *serverAddr)
		defer cl.Close()
		defer serveObs(*metricsAddr, cl)()
		gen := tpcds.NewGenerator(schema, *seed, 1.1)
		start := time.Now()
		batch := 500
		for off := 0; off < *n; off += batch {
			m := batch
			if off+m > *n {
				m = *n - off
			}
			items := gen.Items(m)
			if *bulk {
				fatal(cl.BulkLoadNoCtx(items), "bulk load")
			} else {
				fatal(cl.InsertBatchNoCtx(items), "insert")
			}
		}
		dur := time.Since(start)
		fmt.Printf("inserted %d items in %v (%.0f items/s)\n", *n, dur, float64(*n)/dur.Seconds())
	case "query":
		cl, schema := connect(co, *serverAddr)
		defer cl.Close()
		defer serveObs(*metricsAddr, cl)()
		if *groupBy != "" {
			dim, level := parseGroupBy(schema, *groupBy)
			start := time.Now()
			res, err := cl.QueryNoCtx(volap.AllRect(schema), append(qopt, volap.WithGroupBy(dim, level))...)
			fatal(err, "group-by")
			fmt.Printf("group-by %s:%d source=%s shards=%d latency=%v%s%s\n",
				schema.Dim(dim).Name(), level, res.Info.Source(), res.Info.ShardsSearched,
				time.Since(start).Round(time.Microsecond), replicaNote(res.Info), partialNote(res.Info))
			for _, g := range res.Groups {
				fmt.Printf("  value=%-6d count=%-10d sum=%-14.2f\n", g.Value, g.Agg.Count, g.Agg.Sum)
			}
			return
		}
		res, err := cl.QueryNoCtx(volap.AllRect(schema), qopt...)
		fatal(err, "query")
		fmt.Printf("database: count=%d sum=%.2f avg=%.2f source=%s (searched %d shards on %d workers)%s%s\n",
			res.Agg.Count, res.Agg.Sum, res.Agg.Avg(), res.Info.Source(), res.Info.ShardsSearched,
			res.Info.WorkersContacted, replicaNote(res.Info), partialNote(res.Info))
		total := res.Agg.Count
		gen := tpcds.NewGenerator(schema, *seed, 1.1)
		for i := 0; i < *n; i++ {
			q := gen.Query()
			start := time.Now()
			res, err := cl.QueryNoCtx(q, qopt...)
			fatal(err, "query")
			cov := 0.0
			if total > 0 {
				cov = float64(res.Agg.Count) / float64(total)
			}
			fmt.Printf("q%-3d coverage=%5.1f%% count=%-10d sum=%-14.2f shards=%-3d source=%-6s latency=%v%s%s\n",
				i, cov*100, res.Agg.Count, res.Agg.Sum, res.Info.ShardsSearched, res.Info.Source(),
				time.Since(start).Round(time.Microsecond), replicaNote(res.Info), partialNote(res.Info))
		}
	default:
		usage()
	}
}

// parseGroupBy resolves a "dim:level" spec against the schema; the
// dimension may be named or given as an index, the level is 0-based.
func parseGroupBy(schema *volap.Schema, spec string) (dim, level int) {
	var dimPart, lvlPart string
	for i := len(spec) - 1; i >= 0; i-- {
		if spec[i] == ':' {
			dimPart, lvlPart = spec[:i], spec[i+1:]
			break
		}
	}
	if dimPart == "" || lvlPart == "" {
		fatal(fmt.Errorf("want dim:level, got %q", spec), "group-by")
	}
	dim = -1
	for i := 0; i < schema.NumDims(); i++ {
		if schema.Dim(i).Name() == dimPart {
			dim = i
			break
		}
	}
	if dim < 0 {
		if v, err := strconv.Atoi(dimPart); err == nil && v >= 0 && v < schema.NumDims() {
			dim = v
		} else {
			fatal(fmt.Errorf("unknown dimension %q", dimPart), "group-by")
		}
	}
	v, err := strconv.Atoi(lvlPart)
	if err != nil || v < 0 || v >= schema.Dim(dim).Depth() {
		fatal(fmt.Errorf("level %q out of range for dimension %s (depth %d)",
			lvlPart, schema.Dim(dim).Name(), schema.Dim(dim).Depth()), "group-by")
	}
	return dim, v
}

// partialNote flags a degraded result so a lower-than-expected count is
// never mistaken for the true total.
func partialNote(info volap.QueryInfo) string {
	if !info.Partial() {
		return ""
	}
	return fmt.Sprintf(" PARTIAL: missing shards %v", info.MissingShards)
}

// replicaNote reports how much of the answer came from replica copies.
func replicaNote(info volap.QueryInfo) string {
	if len(info.ReplicaShards) == 0 {
		return ""
	}
	return fmt.Sprintf(" [%d shards from replicas, lag<=%d]", len(info.ReplicaShards), info.MaxReplicaLag)
}

// connect picks a server (explicitly or from the image) and attaches a
// client session.
func connect(co *coord.Client, serverAddr string) (*volap.Client, *volap.Schema) {
	raw, _, err := co.Get(image.PathConfig)
	fatal(err, "cluster config")
	cfg, err := image.DecodeClusterConfigBytes(raw)
	fatal(err, "cluster config")
	addr := serverAddr
	if addr == "" {
		names, err := co.Children(image.PathServers)
		fatal(err, "servers")
		if len(names) == 0 {
			fatal(fmt.Errorf("no servers registered"), "servers")
		}
		raw, _, err := co.Get(image.ServerPath(names[0]))
		fatal(err, "server meta")
		meta, err := image.DecodeServerMetaBytes(raw)
		fatal(err, "server meta")
		addr = meta.Addr
	}
	cl, err := volap.Connect(addr)
	fatal(err, "connect")
	return cl, cfg.Schema
}

// status prints the global system image.
func status(co *coord.Client) {
	fmt.Println("== servers ==")
	names, _ := co.Children(image.PathServers)
	for _, name := range names {
		if raw, _, err := co.Get(image.ServerPath(name)); err == nil {
			if m, err := image.DecodeServerMetaBytes(raw); err == nil {
				fmt.Printf("  %-6s %s\n", m.ID, m.Addr)
			}
		}
	}
	fmt.Println("== workers ==")
	names, _ = co.Children(image.PathWorkers)
	for _, name := range names {
		if raw, _, err := co.Get(image.WorkerPath(name)); err == nil {
			if m, err := image.DecodeWorkerMetaBytes(raw); err == nil {
				age := time.Since(time.UnixMilli(m.UpdatedMs)).Round(time.Millisecond)
				fmt.Printf("  %-6s %-22s shards=%-4d items=%-10d mem=%-10d updated %v ago\n",
					m.ID, m.Addr, m.Shards, m.Items, m.MemBytes, age)
			}
		}
	}
	fmt.Println("== shards ==")
	names, _ = co.Children(image.PathShards)
	ids := make([]int, 0, len(names))
	for _, name := range names {
		if id, ok := image.ParseShardPath(image.PathShards + "/" + name); ok {
			ids = append(ids, int(id))
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		raw, _, err := co.Get(image.ShardPath(image.ShardID(id)))
		if err != nil {
			continue
		}
		if m, err := image.DecodeShardMetaBytes(raw); err == nil {
			repl := ""
			if len(m.Replicas) > 0 {
				repl = fmt.Sprintf(" replicas=%v", m.Replicas)
			}
			fmt.Printf("  shard %-5d worker=%-6s count=%-10d box=%v%s\n", m.ID, m.Worker, m.Count, m.Key, repl)
		}
	}
}

// serveObs exposes the client session's transport metrics over HTTP when
// -metrics-addr is set; the returned func stops the listener.
func serveObs(addr string, cl *volap.Client) func() {
	if addr == "" {
		return func() {}
	}
	o, err := obs.Serve(addr, cl.Metrics(), nil)
	fatal(err, "metrics")
	fmt.Printf("observability on http://%s/metrics\n", o.Addr())
	return o.Close
}

func fatal(err error, what string) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "volap: %s: %v\n", what, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: volap <status|insert|query> [flags]")
	os.Exit(2)
}
