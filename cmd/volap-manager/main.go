// Command volap-manager runs VOLAP's load-balancing manager (§III-E): a
// background process that periodically analyzes the global system image
// and coordinates shard splits and migrations between workers.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/coord"
	"repro/internal/manager"
	"repro/internal/obs"
)

func main() {
	coordAddr := flag.String("coord", "127.0.0.1:5550", "coordination service address")
	interval := flag.Duration("interval", time.Second, "balancing pass interval")
	ratio := flag.Float64("ratio", 1.25, "max/min load imbalance threshold")
	minMove := flag.Uint64("min-move", 512, "minimum item gap before balancing")
	maxShard := flag.Uint64("max-shard", 0, "split shards above this many items (0 = off)")
	replFactor := flag.Int("replication-factor", 1, "total copies per shard incl. primary (1 = off; requires durable workers)")
	verbose := flag.Bool("v", false, "log every pass")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/volap on this address (off when empty)")
	flag.Parse()

	co, err := coord.DialClient(*coordAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "volap-manager: coord:", err)
		os.Exit(1)
	}
	defer co.Close()

	m, err := manager.New(manager.Options{
		Coord:             co,
		Interval:          *interval,
		Ratio:             *ratio,
		MinMoveItems:      *minMove,
		MaxShardItems:     *maxShard,
		ReplicationFactor: *replFactor,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "volap-manager:", err)
		os.Exit(1)
	}
	m.Start()
	fmt.Printf("volap-manager: balancing every %v (ratio %.2f, replication factor %d)\n", *interval, *ratio, *replFactor)

	if *metricsAddr != "" {
		o, err := obs.Serve(*metricsAddr, m.Metrics(), func() any {
			return map[string]any{
				"stats":  m.Stats(),
				"events": m.Events(),
			}
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "volap-manager:", err)
			os.Exit(1)
		}
		defer o.Close()
		fmt.Printf("volap-manager: observability on http://%s/metrics\n", o.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	if *verbose {
		tick := time.NewTicker(*interval * 5)
		defer tick.Stop()
		for {
			select {
			case <-sig:
				m.Close()
				return
			case <-tick.C:
				st := m.Stats()
				fmt.Printf("volap-manager: passes=%d splits=%d migrations=%d moved=%d\n",
					st.Passes, st.Splits, st.Migrations, st.MovedItems)
			}
		}
	}
	<-sig
	m.Close()
}
