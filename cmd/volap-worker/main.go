// Command volap-worker runs one VOLAP worker node (§III-A): it hosts data
// shards in Hilbert PDC trees, serves insert/query/split/migrate
// operations over TCP, and publishes shard statistics to the coordination
// service.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/coord"
	"repro/internal/durable"
	"repro/internal/image"
	"repro/internal/keys"
	"repro/internal/manager"
	"repro/internal/obs"
	"repro/internal/worker"
)

func main() {
	coordAddr := flag.String("coord", "127.0.0.1:5550", "coordination service address")
	id := flag.String("id", "", "worker ID (required, e.g. w0)")
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	shards := flag.Int("shards", 4, "initial empty shards to create and register")
	stats := flag.Duration("stats", 500*time.Millisecond, "statistics publication interval")
	sessionTTL := flag.Duration("session-ttl", 5*time.Second, "liveness session TTL; the registration disappears this long after the worker dies")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/volap on this address (off when empty)")
	durability := flag.String("durability", "off", "persistence contract: off (in-memory), async (background group commit) or sync (fsync before ack)")
	dataDir := flag.String("data-dir", "", "directory for WALs and snapshots (required unless -durability off); reuse it across restarts to recover")
	ingestWorkers := flag.Int("ingest-workers", 0, "background insertion-drain goroutines; 0 keeps inserts synchronous")
	maxPending := flag.Int("max-pending-items", 0, "per-shard insertion buffer bound before inserts block (0 = default 64Ki)")
	queryPar := flag.Int("query-parallelism", 0, "max shards one query fans across concurrently (0 = GOMAXPROCS)")
	flag.Parse()
	if *id == "" {
		fmt.Fprintln(os.Stderr, "volap-worker: -id is required")
		os.Exit(2)
	}
	mode, err := durable.ParseMode(*durability)
	if err != nil {
		fmt.Fprintln(os.Stderr, "volap-worker:", err)
		os.Exit(2)
	}
	if mode != durable.ModeOff && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "volap-worker: -data-dir is required with -durability", mode)
		os.Exit(2)
	}

	co, err := coord.DialClient(*coordAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "volap-worker: coord:", err)
		os.Exit(1)
	}
	defer co.Close()
	raw, _, err := co.Get(image.PathConfig)
	if err != nil {
		fmt.Fprintln(os.Stderr, "volap-worker: cluster config:", err)
		os.Exit(1)
	}
	cfg, err := image.DecodeClusterConfigBytes(raw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "volap-worker:", err)
		os.Exit(1)
	}

	if *ingestWorkers < 0 || *maxPending < 0 || *queryPar < 0 {
		fmt.Fprintln(os.Stderr, "volap-worker: -ingest-workers, -max-pending-items and -query-parallelism must not be negative")
		os.Exit(2)
	}
	w := worker.NewWithOptions(*id, cfg, worker.Options{
		IngestWorkers:    *ingestWorkers,
		MaxPendingItems:  *maxPending,
		QueryParallelism: *queryPar,
	})
	var rec *durable.Recovery
	if mode != durable.ModeOff {
		d, err := durable.Open(*dataDir, *id, mode, durable.Config{Metrics: w.Metrics()})
		if err != nil {
			fmt.Fprintln(os.Stderr, "volap-worker: durable:", err)
			os.Exit(1)
		}
		rec, err = w.AttachDurability(d)
		if err != nil {
			fmt.Fprintln(os.Stderr, "volap-worker: recovery:", err)
			os.Exit(1)
		}
		if len(rec.Shards) > 0 {
			fmt.Printf("volap-worker %s: recovered %d shards in %v (replayed %d records / %d bytes, truncated %d torn tails, %d released)\n",
				*id, len(rec.Shards), rec.Duration.Round(time.Millisecond),
				rec.ReplayedRecords, rec.ReplayedBytes, rec.TruncatedTails, rec.Released)
		}
	}
	bound, err := w.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "volap-worker:", err)
		os.Exit(1)
	}
	// A restart after a crash races the old incarnation's TTL: its
	// ephemeral registration may still advertise the dead address. Clear
	// it before re-registering so servers switch over immediately.
	if err := co.Delete(image.WorkerPath(*id), coord.AnyVersion); err != nil && !errors.Is(err, coord.ErrNoNode) {
		fmt.Fprintln(os.Stderr, "volap-worker: clear stale registration:", err)
		os.Exit(1)
	}
	// Register ephemerally under a liveness session: if this process dies,
	// the registration is reaped after one TTL and servers mark the
	// worker's shards down instead of timing out against a corpse.
	sess, err := coord.OpenSession(co, *sessionTTL)
	if err != nil {
		fmt.Fprintln(os.Stderr, "volap-worker: session:", err)
		os.Exit(1)
	}
	publish := func(m *image.WorkerMeta) {
		_ = sess.Publish(image.WorkerPath(*id), m.EncodeBytes())
	}
	publish(w.Meta())
	w.StartStats(publish, *stats)

	if rec != nil && len(rec.Shards) > 0 {
		// Recovered shards re-animate their persistent records in the
		// global image — reconcile instead of minting fresh shards.
		res, err := manager.ReadoptShards(co, *id, w.ShardIDs())
		if err != nil {
			fmt.Fprintln(os.Stderr, "volap-worker: readopt:", err)
			os.Exit(1)
		}
		fmt.Printf("volap-worker %s: readopted %d shards (%d conflicts, %d orphans)\n",
			*id, res.Readopted, res.Conflicts, res.Orphans)
	} else if *shards > 0 {
		first, err := manager.AllocShardIDs(co, uint64(*shards))
		if err != nil {
			fmt.Fprintln(os.Stderr, "volap-worker: alloc shards:", err)
			os.Exit(1)
		}
		for i := 0; i < *shards; i++ {
			sid := first + image.ShardID(i)
			if err := w.CreateShard(sid); err != nil {
				fmt.Fprintln(os.Stderr, "volap-worker:", err)
				os.Exit(1)
			}
			meta := &image.ShardMeta{
				ID:     sid,
				Worker: *id,
				Key:    keys.NewEmpty(cfg.Keys, cfg.Schema.NumDims(), cfg.MDSCap),
			}
			if _, err := co.CreateOrSet(image.ShardPath(sid), meta.EncodeBytes()); err != nil {
				fmt.Fprintln(os.Stderr, "volap-worker: register shard:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("volap-worker %s: created shards %d..%d\n", *id, first, first+image.ShardID(*shards)-1)
	}
	fmt.Printf("volap-worker %s: serving on %s\n", *id, bound)

	if *metricsAddr != "" {
		o, err := obs.Serve(*metricsAddr, w.Metrics(), func() any {
			return map[string]any{
				"id":       w.ID(),
				"addr":     w.Addr(),
				"shards":   w.ShardCounts(),
				"op_stats": w.OpStats(),
				"trace":    w.Trace().Events(),
			}
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "volap-worker:", err)
			os.Exit(1)
		}
		defer o.Close()
		fmt.Printf("volap-worker %s: observability on http://%s/metrics\n", *id, o.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	w.Close()
	_ = sess.Close() // graceful deregistration: ephemerals vanish now, not after TTL
}
