// Command volap-bench regenerates every figure of the VOLAP paper's
// evaluation section (§IV) plus the ablation benches from DESIGN.md.
//
// Usage:
//
//	volap-bench [-scale S] [-seed N] <experiment>
//
// Experiments: fig4 fig5 fig6 fig7 fig8 fig9 fig10 bulk
// ablation-keys ablation-split ablation-sync all
//
// -scale multiplies workload sizes (1 = laptop defaults; the paper ran at
// roughly 5000x on 20 EC2 nodes). Output is the same rows/series the
// paper plots; EXPERIMENTS.md records paper-vs-measured values.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload size multiplier")
	seed := flag.Int64("seed", 42, "workload RNG seed")
	qpb := flag.Int("queries-per-band", 20, "queries per coverage band (fig4)")
	phases := flag.Int("phases", 5, "scale-up phases (fig6/fig7)")
	metricsAddr := flag.String("metrics-addr", "", "serve the bench's /metrics on this address while experiments run (off when empty)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: volap-bench [flags] <fig4|fig5|fig6|fig7|fig8|fig9|fig10|bulk|ablation-keys|ablation-split|ablation-sync|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	if *metricsAddr != "" {
		o, err := obs.Serve(*metricsAddr, bench.Metrics(), nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "volap-bench:", err)
			os.Exit(1)
		}
		defer o.Close()
		fmt.Printf("volap-bench: observability on http://%s/metrics\n", o.Addr())
	}

	s := bench.Scale(*scale)
	var run func(name string) error
	run = func(name string) error {
		w := os.Stdout
		switch name {
		case "fig4":
			rows, err := bench.Fig4(s, *qpb, *seed)
			if err != nil {
				return err
			}
			bench.PrintFig4(w, rows)
		case "fig5":
			rows, err := bench.Fig5(s, nil, *seed)
			if err != nil {
				return err
			}
			bench.PrintFig5(w, rows)
		case "fig6", "fig7":
			rows, err := bench.ScaleUp(bench.ScaleUpConfig{Scale: s, Phases: *phases, Seed: *seed})
			if err != nil {
				return err
			}
			if name == "fig6" {
				bench.PrintFig6(w, rows)
			} else {
				bench.PrintFig7(w, rows)
			}
		case "fig8":
			rows, err := bench.Fig8(bench.Fig8Config{Scale: s, Seed: *seed})
			if err != nil {
				return err
			}
			bench.PrintFig8(w, rows)
		case "fig9":
			pts, err := bench.Fig9(s, 0, *seed)
			if err != nil {
				return err
			}
			bench.PrintFig9(w, pts)
		case "fig10":
			out, err := bench.Fig10(s, *seed)
			if err != nil {
				return err
			}
			bench.PrintFig10(w, out)
		case "bulk":
			rows, err := bench.Bulk(s, *seed)
			if err != nil {
				return err
			}
			bench.PrintBulk(w, rows)
		case "ablation-keys":
			rows, err := bench.AblationKeys(s, *seed)
			if err != nil {
				return err
			}
			bench.PrintAblationKeys(w, rows)
		case "ablation-split":
			rows, err := bench.AblationSplit(s, *seed)
			if err != nil {
				return err
			}
			bench.PrintAblationSplit(w, rows)
		case "ablation-sync":
			rows, err := bench.AblationSync(*seed)
			if err != nil {
				return err
			}
			bench.PrintAblationSync(w, rows)
		case "all":
			for _, n := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "bulk", "ablation-keys", "ablation-split", "ablation-sync"} {
				fmt.Println()
				if err := run(n); err != nil {
					return fmt.Errorf("%s: %w", n, err)
				}
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "volap-bench:", err)
		os.Exit(1)
	}
}
