// Command volap-coord runs VOLAP's coordination service (the Zookeeper
// role of §III-B): an in-memory tree of versioned nodes holding the
// global system image, served over TCP with watch support.
//
// With -init (the default) it seeds /volap/config with the TPC-DS schema
// of the paper's Figure 1 and the default shard store configuration
// (Hilbert PDC tree, MDS keys) so workers and servers can boot against
// it directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"repro/internal/coord"
	"repro/internal/image"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rollup"
	"repro/internal/tpcds"
)

// rollupSpecs collects repeatable -rollup flags.
type rollupSpecs []string

func (r *rollupSpecs) String() string { return fmt.Sprint(*r) }
func (r *rollupSpecs) Set(s string) error {
	*r = append(*r, s)
	return nil
}

func main() {
	listen := flag.String("listen", "127.0.0.1:5550", "TCP listen address")
	initCfg := flag.Bool("init", true, "seed /volap/config with the TPC-DS cluster configuration if absent")
	leafCap := flag.Int("leaf-capacity", 64, "shard tree leaf capacity")
	dirCap := flag.Int("dir-capacity", 16, "shard tree directory fan-out")
	var rollups rollupSpecs
	flag.Var(&rollups, "rollup", "materialized rollup definition, e.g. Store:1,Date:2 (repeatable; dims omitted from the spec are aggregated away)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/volap on this address (off when empty)")
	flag.Parse()

	store := coord.NewStore()
	if *initCfg {
		cfg := &image.ClusterConfig{
			Schema:       tpcds.Schema(),
			LeafCapacity: *leafCap,
			DirCapacity:  *dirCap,
		}
		for _, spec := range rollups {
			def, err := rollup.ParseDef(cfg.Schema, spec)
			if err != nil {
				fmt.Fprintln(os.Stderr, "volap-coord: -rollup:", err)
				os.Exit(1)
			}
			cfg.Rollups = append(cfg.Rollups, def)
		}
		if _, err := store.Create(image.PathConfig, cfg.EncodeBytes()); err != nil {
			fmt.Fprintln(os.Stderr, "volap-coord: init:", err)
			os.Exit(1)
		}
	}
	srv, bound, err := coord.Serve(store, *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "volap-coord:", err)
		os.Exit(1)
	}
	fmt.Printf("volap-coord: serving global system image on %s\n", bound)

	if *metricsAddr != "" {
		reg := metrics.NewRegistry()
		store.RegisterMetrics(reg)
		o, err := obs.Serve(*metricsAddr, reg, func() any {
			nodes, seq := store.Snapshot("/")
			paths := make([]string, 0, len(nodes))
			for p := range nodes {
				paths = append(paths, p)
			}
			sort.Strings(paths)
			return map[string]any{"seq": seq, "nodes": paths}
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "volap-coord:", err)
			os.Exit(1)
		}
		defer o.Close()
		fmt.Printf("volap-coord: observability on http://%s/metrics\n", o.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	srv.Close()
	store.Close()
}
