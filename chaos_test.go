package volap

import (
	"bufio"
	"bytes"
	"errors"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/image"
	"repro/internal/metrics"
	"repro/internal/netmsg"
)

// The chaos suite drives the failure-detection pipeline end to end with
// deterministic schedules: seeded workloads, a fake coordination clock
// for session expiry, Count-limited fault rules, and injector hooks (or
// bounded state polling) instead of wall-clock sleeps.

// chaosClock is an adjustable time source for the coordination store, so
// tests advance session deadlines instead of waiting them out. The base
// is the real start time: deadlines stamped before SetClock stay
// consistent with fake readings after it.
type chaosClock struct {
	base   time.Time
	offset atomic.Int64 // nanoseconds added to base
}

func newChaosClock() *chaosClock { return &chaosClock{base: time.Now()} }

func (c *chaosClock) now() time.Time { return c.base.Add(time.Duration(c.offset.Load())) }

func (c *chaosClock) advance(d time.Duration) { c.offset.Add(int64(d)) }

// chaosCluster boots a small two-worker cluster tuned for failure tests:
// the background balancer and image sync are parked (the tests drive
// state changes explicitly) while worker stats republish fast, so a
// transiently expired live session re-registers within milliseconds.
func chaosCluster(t *testing.T, fault *FaultInjector) *Cluster {
	t.Helper()
	c, err := Start(Options{
		Schema:          TPCDSSchema(),
		Workers:         2,
		Servers:         1,
		ShardsPerWorker: 2,
		BalanceInterval: -1,
		SyncInterval:    time.Hour,
		StatsInterval:   50 * time.Millisecond,
		SessionTTL:      time.Second,
		Fault:           fault,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

// seedStream inserts n deterministic items and returns the per-worker
// item counts (ordered by worker ID). It fails the test if the workload
// did not reach every worker — a partial-results assertion needs data on
// both sides of the failure.
func seedStream(t *testing.T, c *Cluster, cl *Client, n int) []uint64 {
	t.Helper()
	gen := NewGenerator(c.Schema(), 17, 1.1)
	for i := 0; i < n; i++ {
		if err := cl.InsertNoCtx(gen.Item()); err != nil {
			t.Fatalf("seed insert %d: %v", i, err)
		}
	}
	ids, loads, err := c.WorkerLoads()
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if loads[i] == 0 {
			t.Fatalf("seed left worker %s empty: ids=%v loads=%v", id, ids, loads)
		}
	}
	return loads
}

// TestChaosKillWorkerMidInsertStream kills a worker halfway through an
// insert stream and checks the full degradation pipeline: the abandoned
// session expires after its TTL (driven by the fake clock), servers mark
// the worker down, queries degrade to partial results naming the missing
// shards, and inserts routed to the dead worker fail fast with
// ErrWorkerDown while the surviving worker keeps absorbing writes.
func TestChaosKillWorkerMidInsertStream(t *testing.T) {
	c := chaosCluster(t, nil)
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	loads := seedStream(t, c, cl, 300)
	liveCount := loads[0] // w0 survives; w1 dies

	res, err := cl.QueryNoCtx(AllRect(c.Schema()))
	if err != nil || res.Info.Partial() {
		t.Fatalf("healthy query: err=%v res=%+v", err, res)
	}
	if res.Agg.Count != loads[0]+loads[1] {
		t.Fatalf("healthy count = %d, want %d", res.Agg.Count, loads[0]+loads[1])
	}

	// Crash w1 mid-stream and let its lease run out on the fake clock.
	// The surviving worker's session may expire too (its heartbeats race
	// the jump), but its stats loop re-registers it within StatsInterval;
	// the dead worker never comes back. The poll below converges on
	// exactly that fixed point.
	clk := newChaosClock()
	c.CoordStore().SetClock(clk.now)
	if err := c.KillWorker("w1"); err != nil {
		t.Fatal(err)
	}
	clk.advance(c.opts.SessionTTL + time.Second)

	// Registrations first: Exists forces lazy expiry, so polling it
	// drives the store to its fixed point — w1 reaped for good, w0
	// either refreshed in time or re-registered by its keeper (both
	// leave its lease stamped against the advanced clock, so no further
	// expiry can fire).
	deadline := time.Now().Add(10 * time.Second)
	for {
		w0Up := c.CoordStore().Exists(image.WorkerPath("w0"))
		w1Up := c.CoordStore().Exists(image.WorkerPath("w1"))
		if w0Up && !w1Up {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("registrations never settled: w0=%v w1=%v, want true/false", w0Up, w1Up)
		}
		time.Sleep(time.Millisecond)
	}

	deadline = time.Now().Add(10 * time.Second)
	for {
		res, err = cl.QueryNoCtx(AllRect(c.Schema()))
		if err == nil && res.Info.Partial() &&
			len(res.Info.MissingShards) == 2 && res.Agg.Count == liveCount {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("degraded state never settled: err=%v res=%+v want=%d", err, res, liveCount)
		}
		time.Sleep(time.Millisecond)
	}
	// w0 owns shards {0,1}, w1 owns {2,3} (sequential allocation).
	if res.Info.MissingShards[0] != 2 || res.Info.MissingShards[1] != 3 {
		t.Fatalf("missing shards = %v, want [2 3]", res.Info.MissingShards)
	}

	// The stream continues against the degraded cluster: every insert
	// either lands on the survivor or fails typed — nothing hangs,
	// nothing reports an untyped error.
	gen := NewGenerator(c.Schema(), 23, 1.1)
	var ok, down int
	for i := 0; i < 300; i++ {
		switch err := cl.InsertNoCtx(gen.Item()); {
		case err == nil:
			ok++
		case errors.Is(err, ErrWorkerDown):
			down++
		default:
			t.Fatalf("insert %d: %v, want nil or ErrWorkerDown", i, err)
		}
	}
	if ok == 0 || down == 0 {
		t.Fatalf("degraded stream: ok=%d down=%d, want both > 0", ok, down)
	}
}

// TestChaosKillRestartRecover is the durability pipeline end to end: a
// sync-durable worker is killed mid-insert-stream (fds dropped without
// flushing, like SIGKILL), the cluster degrades to partial results, and a
// replacement process over the same data directory recovers every
// acknowledged insert — queries converge back to full results with zero
// missing shards.
func TestChaosKillRestartRecover(t *testing.T) {
	chaosKillRestartRecover(t, 0)
}

// TestChaosKillRestartRecoverPipeline is the same crash/recover drill
// with the asynchronous ingest pipeline enabled: acknowledgements now
// race the background drains, but sync durability still guarantees no
// acked-and-lost items across Crash + RestartWorker.
func TestChaosKillRestartRecoverPipeline(t *testing.T) {
	chaosKillRestartRecover(t, 2)
}

func chaosKillRestartRecover(t *testing.T, ingestWorkers int) {
	c, err := Start(Options{
		Schema:          TPCDSSchema(),
		Workers:         2,
		Servers:         1,
		ShardsPerWorker: 2,
		BalanceInterval: -1,
		SyncInterval:    time.Hour,
		StatsInterval:   50 * time.Millisecond,
		SessionTTL:      time.Second,
		Durability:      DurabilitySync,
		DataDir:         t.TempDir(),
		IngestWorkers:   ingestWorkers,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	loads := seedStream(t, c, cl, 200)
	seeded := loads[0] + loads[1]

	// SIGKILL w1 and let its lease run out on the fake clock.
	clk := newChaosClock()
	c.CoordStore().SetClock(clk.now)
	if err := c.KillWorker("w1"); err != nil {
		t.Fatal(err)
	}
	clk.advance(c.opts.SessionTTL + time.Second)

	// The stream continues against the degraded cluster; successes land
	// on the survivor, inserts routed at the corpse fail typed.
	gen := NewGenerator(c.Schema(), 23, 1.1)
	var ok uint64
	var down int
	for i := 0; i < 200; i++ {
		switch err := cl.InsertNoCtx(gen.Item()); {
		case err == nil:
			ok++
		case errors.Is(err, ErrWorkerDown):
			down++
		default:
			t.Fatalf("degraded insert %d: %v, want nil or ErrWorkerDown", i, err)
		}
	}
	if down == 0 {
		t.Fatal("no insert ever hit the dead worker")
	}

	// Restart over the same data directory: snapshots + WAL replay must
	// resurrect both of w1's shards with every acknowledged item.
	rec, err := c.RestartWorker("w1")
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || len(rec.Shards) != 2 {
		t.Fatalf("recovery report = %+v, want 2 shards", rec)
	}
	if rec.ReplayedRecords == 0 {
		t.Fatal("recovery replayed no WAL records")
	}

	// Convergence: full results, zero missing shards, exact count.
	want := seeded + ok
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := cl.QueryNoCtx(AllRect(c.Schema()))
		if err == nil && !res.Info.Partial() && len(res.Info.MissingShards) == 0 && res.Agg.Count == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovery never converged: err=%v res=%+v want=%d", err, res, want)
		}
		time.Sleep(time.Millisecond)
	}

	// The recovered worker keeps absorbing writes durably.
	for i := 0; i < 50; i++ {
		if err := cl.InsertNoCtx(gen.Item()); err != nil {
			t.Fatalf("post-recovery insert %d: %v", i, err)
		}
	}
	res, err := cl.QueryNoCtx(AllRect(c.Schema()))
	if err != nil || res.Info.Partial() || res.Agg.Count != want+50 {
		t.Fatalf("post-recovery query: err=%v res=%+v want=%d", err, res, want+50)
	}
}

// prometheusCounter extracts a counter value from Prometheus text
// exposition output.
func prometheusCounter(t *testing.T, out, name string) uint64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		if rest, found := strings.CutPrefix(sc.Text(), name+" "); found {
			v, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				t.Fatalf("parse %s value %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, out)
	return 0
}

// TestChaosPartitionServerWorker cuts the network between the server and
// one worker: queries degrade to partial results while the worker stays
// registered (its coordination heartbeats are unaffected), and healing
// the partition restores full results — no restart, no re-registration.
func TestChaosPartitionServerWorker(t *testing.T) {
	f := NewFaultInjector(21)
	reg := metrics.NewRegistry()
	f.RegisterMetrics(reg)
	c := chaosCluster(t, f)
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	loads := seedStream(t, c, cl, 300)
	total := loads[0] + loads[1]

	f.Partition("server/s0", c.WorkerAddr(1))
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := cl.QueryNoCtx(AllRect(c.Schema()))
		if err == nil && res.Info.Partial() &&
			len(res.Info.MissingShards) == 2 && res.Agg.Count == loads[0] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("partitioned query never degraded: err=%v res=%+v want=%d", err, res, loads[0])
		}
		time.Sleep(time.Millisecond)
	}
	// The worker is unreachable, not dead: its registration must survive.
	if !c.CoordStore().Exists(image.WorkerPath("w1")) {
		t.Fatal("partitioned worker lost its registration")
	}

	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if n := prometheusCounter(t, b.String(), "netmsg_faults_severed_total"); n == 0 {
		t.Fatal("partition fired no sever faults")
	}
	if n := prometheusCounter(t, b.String(), "netmsg_faults_injected_total"); n == 0 {
		t.Fatal("injected counter stayed zero across a partition")
	}

	f.Heal("server/s0", c.WorkerAddr(1))
	deadline = time.Now().Add(10 * time.Second)
	for {
		res, err := cl.QueryNoCtx(AllRect(c.Schema()))
		if err == nil && !res.Info.Partial() && res.Agg.Count == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healed query never recovered: err=%v res=%+v want=%d", err, res, total)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosHeartbeatDropPastTTL drops a session's heartbeats on the wire
// until the TTL reaps its ephemeral registration, then heals and checks
// the keeper re-registers under a fresh session — the full Zookeeper
// lose-and-reclaim dance over the RPC transport.
func TestChaosHeartbeatDropPastTTL(t *testing.T) {
	store := coord.NewStore()
	defer store.Close()
	srv, addr, err := coord.Serve(store, "inproc://chaos-heartbeat")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	f := netmsg.NewFaultInjector(7)
	var drops atomic.Uint64
	f.SetHook(func(p netmsg.FaultPoint, a netmsg.FaultAction) {
		if p.Op == "coord.heartbeat" && a == netmsg.FaultDrop {
			drops.Add(1)
		}
	})
	cl, err := coord.DialClientOptions(addr, netmsg.DialOpts{
		DefaultTimeout: 100 * time.Millisecond,
		Fault:          f,
		Party:          "chaos-worker",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const ttl = 300 * time.Millisecond
	const path = "/volap/workers/chaos"
	sess, err := coord.OpenSession(cl, ttl)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sess.Close() }()
	if err := sess.Publish(path, []byte("up")); err != nil {
		t.Fatal(err)
	}
	if !store.Exists(path) {
		t.Fatal("registration missing after Publish")
	}

	// Cut heartbeats only: session management and publishes still flow,
	// exactly like a lossy link that starves the lease.
	cancelDrop := f.Add(netmsg.FaultRule{
		Op:     "coord.heartbeat",
		Kind:   netmsg.KindRequest,
		Action: netmsg.FaultDrop,
	})
	deadline := time.Now().Add(10 * time.Second)
	for store.Exists(path) {
		if time.Now().After(deadline) {
			t.Fatal("registration survived dropped heartbeats past the TTL")
		}
		time.Sleep(time.Millisecond)
	}
	if drops.Load() == 0 {
		t.Fatal("node reaped but no heartbeat was ever dropped")
	}
	evs, _, err := store.EventsSince(0, "/volap/workers", 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	var deleted bool
	for _, ev := range evs {
		if ev.Type == coord.EventDeleted && ev.Path == path {
			deleted = true
		}
	}
	if !deleted {
		t.Fatalf("no EventDeleted for the reaped registration in %+v", evs)
	}

	// Heal: the next Publish reclaims the path under a replacement
	// session (retry while the keeper races its own re-establish).
	cancelDrop()
	oldID := sess.ID()
	deadline = time.Now().Add(10 * time.Second)
	for {
		if err := sess.Publish(path, []byte("back")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("publish never succeeded after healing")
		}
		time.Sleep(time.Millisecond)
	}
	if !store.Exists(path) {
		t.Fatal("registration missing after re-publish")
	}
	if sess.Expirations() == 0 {
		t.Fatal("session keeper never recorded the expiry")
	}
	if sess.ID() == oldID && sess.Expirations() > 0 {
		t.Fatal("session ID unchanged across an expiry")
	}
}

// TestChaosPrimaryFailover is the replication pipeline end to end: with
// RF=2 every primary ships its WAL records to a follower before acking,
// so killing a worker mid-ingest-stream loses nothing — the manager
// promotes the freshest follower as soon as the dead primary's session
// expiry is observed, and one image refresh later queries are complete
// again with zero missing shards and the exact acknowledged count.
func TestChaosPrimaryFailover(t *testing.T) {
	chaosPrimaryFailover(t, 0)
}

// TestChaosPrimaryFailoverPipeline is the same failover drill with the
// asynchronous ingest pipeline enabled: replication ships under the same
// read-lock hold as the buffer + WAL append, so acked-but-undrained
// items survive the primary's death too.
func TestChaosPrimaryFailoverPipeline(t *testing.T) {
	chaosPrimaryFailover(t, 2)
}

func chaosPrimaryFailover(t *testing.T, ingestWorkers int) {
	c, err := Start(Options{
		Schema:            TPCDSSchema(),
		Workers:           2,
		Servers:           1,
		ShardsPerWorker:   2,
		BalanceInterval:   -1,
		SyncInterval:      time.Hour,
		StatsInterval:     50 * time.Millisecond,
		SessionTTL:        time.Second,
		Durability:        DurabilitySync,
		DataDir:           t.TempDir(),
		ReplicationFactor: 2,
		IngestWorkers:     ingestWorkers,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Start seeded every shard's replica set synchronously; the image
	// must say so before the failure, or the test proves nothing.
	for id := ShardID(0); id < 4; id++ {
		raw, _, err := c.CoordStore().Get(image.ShardPath(id))
		if err != nil {
			t.Fatal(err)
		}
		meta, err := image.DecodeShardMetaBytes(raw)
		if err != nil {
			t.Fatal(err)
		}
		if len(meta.Replicas) != 1 {
			t.Fatalf("shard %d replicas = %v, want exactly 1", id, meta.Replicas)
		}
	}

	loads := seedStream(t, c, cl, 200)
	seeded := loads[0] + loads[1]

	// SIGKILL w1 mid-stream and let its lease run out on the fake clock.
	clk := newChaosClock()
	c.CoordStore().SetClock(clk.now)
	if err := c.KillWorker("w1"); err != nil {
		t.Fatal(err)
	}
	clk.advance(c.opts.SessionTTL + time.Second)
	deadline := time.Now().Add(10 * time.Second)
	for {
		w0Up := c.CoordStore().Exists(image.WorkerPath("w0"))
		w1Up := c.CoordStore().Exists(image.WorkerPath("w1"))
		if w0Up && !w1Up {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("registrations never settled: w0=%v w1=%v, want true/false", w0Up, w1Up)
		}
		time.Sleep(time.Millisecond)
	}

	// The stream continues against the degraded cluster. Every ack —
	// before and after the kill — must survive the failover.
	gen := NewGenerator(c.Schema(), 23, 1.1)
	var ok uint64
	for i := 0; i < 200; i++ {
		switch err := cl.InsertNoCtx(gen.Item()); {
		case err == nil:
			ok++
		case errors.Is(err, ErrWorkerDown):
		default:
			t.Fatalf("degraded insert %d: %v, want nil or ErrWorkerDown", i, err)
		}
	}

	// One manager pass observes the expired session and promotes the
	// follower for both of w1's shards.
	if _, err := c.RunBalancePass(); err != nil {
		t.Fatal(err)
	}
	if got := c.BalanceStats().Promotions; got != 2 {
		t.Fatalf("promotions = %d, want 2", got)
	}

	// One image refresh later: complete answers, zero missing shards,
	// and the exact acknowledged count — nothing acked was lost.
	want := seeded + ok
	deadline = time.Now().Add(10 * time.Second)
	for {
		res, err := cl.QueryNoCtx(AllRect(c.Schema()))
		if err == nil && !res.Info.Partial() && len(res.Info.MissingShards) == 0 && res.Agg.Count == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failover never converged: err=%v res=%+v want=%d", err, res, want)
		}
		time.Sleep(time.Millisecond)
	}

	// The promoted shards absorb writes: the whole keyspace is writable
	// again with w1 still dead.
	deadline = time.Now().Add(10 * time.Second)
	var extra uint64
	for extra < 50 {
		if err := cl.InsertNoCtx(gen.Item()); err == nil {
			extra++
			continue
		} else if !errors.Is(err, ErrWorkerDown) {
			t.Fatalf("post-failover insert: %v", err)
		}
		// A stale route can linger for one refresh; never past the poll.
		if time.Now().After(deadline) {
			t.Fatal("post-failover inserts kept failing")
		}
		time.Sleep(time.Millisecond)
	}
	res, err := cl.QueryNoCtx(AllRect(c.Schema()))
	if err != nil || res.Info.Partial() || res.Agg.Count != want+extra {
		t.Fatalf("post-failover query: err=%v res=%+v want=%d", err, res, want+extra)
	}
}

// TestReplicaReadPath drives ReadPreferReplica end to end on a healthy
// RF=2 cluster: queries succeed with the same aggregate as leader reads,
// report replica-served shards in QueryInfo, and bump the server's
// replica-read counter.
func TestReplicaReadPath(t *testing.T) {
	c, err := Start(Options{
		Schema:            TPCDSSchema(),
		Workers:           2,
		Servers:           1,
		ShardsPerWorker:   2,
		BalanceInterval:   -1,
		SyncInterval:      time.Hour,
		StatsInterval:     50 * time.Millisecond,
		Durability:        DurabilitySync,
		DataDir:           t.TempDir(),
		ReplicationFactor: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	seedStream(t, c, cl, 300)
	leader, err := cl.QueryNoCtx(AllRect(c.Schema()))
	if err != nil {
		t.Fatal(err)
	}
	leaderAgg := leader.Agg

	sawReplica := false
	for i := 0; i < 8; i++ {
		agg, info, err := cl.QueryWithNoCtx(AllRect(c.Schema()), QueryOptions{Read: ReadPreferReplica})
		if err != nil {
			t.Fatalf("replica query %d: %v", i, err)
		}
		if agg.Count != leaderAgg.Count {
			t.Fatalf("replica query %d count = %d, want %d", i, agg.Count, leaderAgg.Count)
		}
		if len(info.ReplicaShards) > 0 {
			sawReplica = true
		}
	}
	if !sawReplica {
		t.Fatal("no query was ever served from a replica")
	}

	var b bytes.Buffer
	if err := c.servers[0].Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if n := prometheusCounter(t, b.String(), "server_replica_reads_total"); n == 0 {
		t.Fatal("server_replica_reads_total stayed zero across replica reads")
	}

	// Session-level preference via functional options: the plain Query
	// path uses it too.
	rcl, err := Connect(c.ServerAddr(0), WithReadPreference(ReadPreferReplica))
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()
	res, err := rcl.QueryNoCtx(AllRect(c.Schema()))
	if err != nil || res.Agg.Count != leaderAgg.Count {
		t.Fatalf("session-preference query: err=%v res=%+v want=%d", err, res, leaderAgg.Count)
	}
}

// TestPromoteReplicaManual exercises planned promotion on a live
// cluster: PromoteReplica flips a shard's primary to its follower
// without losing a single acked item, and the old primary forwards
// late-routed inserts to the new one.
func TestPromoteReplicaManual(t *testing.T) {
	c, err := Start(Options{
		Schema:            TPCDSSchema(),
		Workers:           2,
		Servers:           1,
		ShardsPerWorker:   2,
		BalanceInterval:   -1,
		SyncInterval:      time.Hour,
		StatsInterval:     50 * time.Millisecond,
		Durability:        DurabilitySync,
		DataDir:           t.TempDir(),
		ReplicationFactor: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	loads := seedStream(t, c, cl, 300)
	total := loads[0] + loads[1]

	// Shard 0 lives on w0 (sequential allocation); its follower is w1.
	promoted, err := c.PromoteReplica(0)
	if err != nil {
		t.Fatal(err)
	}
	if promoted != "w1" {
		t.Fatalf("promoted worker = %q, want w1", promoted)
	}
	if got := c.BalanceStats().Promotions; got != 1 {
		t.Fatalf("promotions = %d, want 1", got)
	}

	// No item lost, and the cluster keeps absorbing the stream across
	// the ownership flip (stale routes retry through the image refresh).
	gen := NewGenerator(c.Schema(), 31, 1.1)
	for i := 0; i < 100; i++ {
		if err := cl.InsertNoCtx(gen.Item()); err != nil {
			t.Fatalf("post-promotion insert %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := cl.QueryNoCtx(AllRect(c.Schema()))
		if err == nil && !res.Info.Partial() && res.Agg.Count == total+100 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("promotion never converged: err=%v res=%+v want=%d", err, res, total+100)
		}
		time.Sleep(time.Millisecond)
	}
}
