package volap

import (
	"math/rand"
	"testing"
	"time"
)

// Rollup benchmarks: the repeated group-by/dashboard workload served
// from materialized rollup cells versus the raw per-shard tree scans.
// scripts/bench_rollup.sh runs these and emits BENCH_rollup.json.

// benchRollupCluster boots a 2-worker TPC-DS cluster with rollup
// definitions matching the dashboard's grouping dimensions, loads it,
// and waits until the servers' image makes the full count visible.
func benchRollupCluster(b *testing.B, items int) *Client {
	b.Helper()
	opts := DefaultOptions(TPCDSSchema())
	opts.Workers = 2
	opts.Servers = 1
	opts.ShardsPerWorker = 2
	opts.BalanceInterval = -1
	opts.SyncInterval = 25 * time.Millisecond
	for _, spec := range []string{"all", "Store:1", "Store:1,Date:1", "Item:1,Date:1"} {
		def, err := ParseRollupDef(opts.Schema, spec)
		if err != nil {
			b.Fatal(err)
		}
		opts.Rollups = append(opts.Rollups, def)
	}
	c, err := Start(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Stop)
	cl, err := c.Client()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cl.Close)
	gen := NewGenerator(opts.Schema, 42, 1.1)
	for off := 0; off < items; off += 2000 {
		n := 2000
		if off+n > items {
			n = items - off
		}
		if err := cl.BulkLoadNoCtx(gen.Items(n)); err != nil {
			b.Fatal(err)
		}
	}
	all := AllRect(opts.Schema)
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := cl.QueryNoCtx(all)
		if err != nil {
			b.Fatal(err)
		}
		if res.Agg.Count == uint64(items) && !res.Info.Partial() {
			return cl
		}
		if time.Now().After(deadline) {
			b.Fatalf("full count not visible: got %d, want %d", res.Agg.Count, items)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// BenchmarkRollupGroupBy meters the dashboard pattern — group revenue
// by store country and by sale year over the full space — with the
// rollup router on (sub-benchmark "rollup") and forced to the raw tree
// path (sub-benchmark "raw"). One op is one grouped query.
func BenchmarkRollupGroupBy(b *testing.B) {
	const items = 60000
	type q struct {
		dim, level int
	}
	queries := []q{{0, 0}, {4, 0}} // Store country, Date year
	run := func(b *testing.B, extra ...QueryOption) {
		cl := benchRollupCluster(b, items)
		rng := rand.New(rand.NewSource(7))
		all := AllRect(TPCDSSchema())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pick := queries[rng.Intn(len(queries))]
			opt := append([]QueryOption{WithGroupBy(pick.dim, pick.level)}, extra...)
			res, err := cl.QueryNoCtx(all, opt...)
			if err != nil {
				b.Fatal(err)
			}
			if res.Agg.Count != items {
				b.Fatalf("count = %d, want %d", res.Agg.Count, items)
			}
		}
	}
	b.Run("rollup", func(b *testing.B) {
		run(b)
	})
	b.Run("raw", func(b *testing.B) {
		run(b, WithNoRollup())
	})
}
