// Elastic scale-out: the Figure 6 scenario as a narrative. The cluster
// starts with two workers, ingests data in phases, and two empty workers
// are added before each subsequent phase; the output shows the load
// balancer pulling the min/max items-per-worker band back together after
// every expansion via shard splits and migrations — while the data stays
// fully queryable.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	volap "repro"
)

func main() {
	phases := flag.Int("phases", 4, "load phases")
	perPhase := flag.Int("items", 20000, "items ingested per phase")
	flag.Parse()

	schema := volap.TPCDSSchema()
	opts := volap.DefaultOptions(schema)
	opts.Workers = 2
	opts.Servers = 2
	opts.SyncInterval = 200 * time.Millisecond
	opts.BalanceInterval = -1 // run passes explicitly so the story is visible
	opts.MinMoveItems = 512
	cluster, err := volap.Start(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	client, err := cluster.Client()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	gen := volap.NewGenerator(schema, 11, 1.1)

	var expected uint64
	for phase := 0; phase < *phases; phase++ {
		if phase > 0 {
			for i := 0; i < 2; i++ {
				id, err := cluster.AddWorker()
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf(">> added empty worker %s\n", id)
			}
		}

		// Balance until quiescent, narrating each pass.
		time.Sleep(150 * time.Millisecond) // let worker stats land
		for pass := 0; ; pass++ {
			ops, err := cluster.RunBalancePass()
			if err != nil {
				log.Fatal(err)
			}
			report(client, fmt.Sprintf("phase %d balance pass %d (%d ops)", phase, pass, ops))
			if ops == 0 {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}

		// Load phase.
		for off := 0; off < *perPhase; off += 4000 {
			n := 4000
			if off+n > *perPhase {
				n = *perPhase - off
			}
			if err := client.BulkLoadNoCtx(gen.Items(n)); err != nil {
				log.Fatal(err)
			}
		}
		expected += uint64(*perPhase)
		report(client, fmt.Sprintf("phase %d loaded %d items", phase, *perPhase))

		// The database remains exact throughout.
		res, err := client.QueryNoCtx(volap.AllRect(schema))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   query check: count=%d (expected %d)\n", res.Agg.Count, expected)
		if res.Agg.Count != expected {
			log.Fatalf("lost data: %d != %d", res.Agg.Count, expected)
		}
	}

	st := cluster.BalanceStats()
	fmt.Printf("\ndone: %d workers, %d items, %d splits, %d migrations (%d items moved)\n",
		cluster.NumWorkers(), expected, st.Splits, st.Migrations, st.MovedItems)
}

// report prints the per-worker load band like Figure 6's red region,
// using the public ClusterStats API — the same numbers an operator would
// scrape, not the cluster's internals.
func report(client *volap.Client, label string) {
	cs, err := client.ClusterStatsNoCtx()
	if err != nil {
		return
	}
	var lo, hi, total uint64
	lo = ^uint64(0)
	for _, ws := range cs.Workers {
		total += ws.Items
		if ws.Items < lo {
			lo = ws.Items
		}
		if ws.Items > hi {
			hi = ws.Items
		}
	}
	fmt.Printf("%-42s workers=%d items=%-8d min/worker=%-8d max/worker=%-8d\n",
		label, len(cs.Workers), total, lo, hi)
}
