// Retail analytics: the workload the paper's introduction motivates — a
// high-velocity stream of sales events interleaved with live dashboard
// aggregations over the TPC-DS dimension hierarchies. The example runs a
// mixed stream (50% inserts / 50% aggregate queries across all coverage
// bands) against an embedded cluster and prints a rolling dashboard of
// throughput, latency, and a few business aggregates.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	volap "repro"
)

func main() {
	seconds := flag.Int("seconds", 10, "how long to run the stream")
	workers := flag.Int("workers", 3, "worker nodes")
	preload := flag.Int("preload", 50000, "items bulk-loaded before the stream starts")
	flag.Parse()

	schema := volap.TPCDSSchema()
	opts := volap.DefaultOptions(schema)
	opts.Workers = *workers
	opts.Servers = 2
	opts.SyncInterval = 500 * time.Millisecond
	opts.BalanceInterval = time.Second
	cluster, err := volap.Start(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	client, err := cluster.Client()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Historical load (the paper's bulk ingestion path).
	gen := volap.NewGenerator(schema, 2026, 1.1)
	start := time.Now()
	for off := 0; off < *preload; off += 5000 {
		n := 5000
		if off+n > *preload {
			n = *preload - off
		}
		if err := client.BulkLoadNoCtx(gen.Items(n)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("bulk-loaded %d historical sales in %v (%.0f items/s)\n",
		*preload, time.Since(start).Round(time.Millisecond),
		float64(*preload)/time.Since(start).Seconds())

	// Bin dashboard queries by their true coverage, as §IV does.
	count := func(q volap.Rect) uint64 {
		res, err := client.QueryNoCtx(q)
		if err != nil {
			return 0
		}
		return res.Agg.Count
	}
	total, err := client.QueryNoCtx(volap.AllRect(schema))
	if err != nil {
		log.Fatal(err)
	}
	bins := gen.GenerateBinned(count, total.Agg.Count, 10, 3000)

	// The live stream: 50% inserts, 50% queries drawn across bands.
	rng := rand.New(rand.NewSource(7))
	deadline := time.Now().Add(time.Duration(*seconds) * time.Second)
	nextReport := time.Now().Add(2 * time.Second)
	var inserts, queries uint64
	var insNanos, qryNanos int64
	for time.Now().Before(deadline) {
		if rng.Intn(2) == 0 {
			t0 := time.Now()
			if err := client.InsertNoCtx(gen.Item()); err != nil {
				log.Fatal(err)
			}
			insNanos += time.Since(t0).Nanoseconds()
			inserts++
		} else {
			band := volap.Band(rng.Intn(3))
			t0 := time.Now()
			if _, err := client.QueryNoCtx(bins.Pick(rng, band)); err != nil {
				log.Fatal(err)
			}
			qryNanos += time.Since(t0).Nanoseconds()
			queries++
		}
		if time.Now().After(nextReport) {
			dashboard(client, schema, inserts, queries, insNanos, qryNanos)
			nextReport = time.Now().Add(2 * time.Second)
		}
	}
	dashboard(client, schema, inserts, queries, insNanos, qryNanos)

	names, loads, err := cluster.WorkerLoads()
	if err == nil {
		fmt.Println("final worker loads:")
		for i, name := range names {
			fmt.Printf("  %-4s %d items\n", name, loads[i])
		}
	}
	st := cluster.BalanceStats()
	fmt.Printf("load balancer: %d splits, %d migrations, %d items moved\n",
		st.Splits, st.Migrations, st.MovedItems)
}

// dashboard prints stream rates and three live aggregates at different
// hierarchy levels.
func dashboard(client *volap.Client, schema *volap.Schema, ins, qry uint64, insNs, qryNs int64) {
	insMs, qryMs := 0.0, 0.0
	if ins > 0 {
		insMs = float64(insNs) / float64(ins) / 1e6
	}
	if qry > 0 {
		qryMs = float64(qryNs) / float64(qry) / 1e6
	}
	allRes, err := client.QueryNoCtx(volap.AllRect(schema))
	if err != nil {
		return
	}
	all := allRes.Agg
	// Revenue by store country: a grouped query over dimension 0. The
	// unified API answers it from a materialized rollup when one covers
	// the query (grouped.Info.Source() reports which path served it).
	grouped, err := client.QueryNoCtx(volap.AllRect(schema), volap.WithGroupBy(0, 0))
	if err != nil || len(grouped.Groups) == 0 {
		return
	}
	groups := grouped.Groups
	best := groups[0]
	for _, g := range groups {
		if g.Agg.Sum > best.Agg.Sum {
			best = g
		}
	}
	fmt.Printf("[dashboard] ops: %d ins (%.2fms) / %d qry (%.2fms) | revenue: total %.0f (n=%d) | top country #%d: %.0f (%.1f%%)\n",
		ins, insMs, qry, qryMs, all.Sum, all.Count, best.Value, best.Agg.Sum, 100*float64(best.Agg.Count)/float64(all.Count))
}
