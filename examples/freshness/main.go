// Freshness: the §IV-F experiment in miniature. Two client sessions are
// attached to two different servers; session A inserts bursts of items
// and session B measures how long they take to appear in its aggregate
// queries.
//
// The example demonstrates both visibility regimes the paper analyzes:
//
//   - Items inside regions the global image already describes are visible
//     to the other session immediately — data lives on the workers, so any
//     query that routes to the shard sees it. This is why the average
//     missed-insert count collapses within the insert pipeline latency.
//   - Items that expand a shard's bounding box stay invisible to *narrow*
//     remote queries over the new region until the inserting server's next
//     image sync — bounded by the sync interval (paper default 3 s, and
//     "consistency ... was always observed in under 3 seconds").
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	volap "repro"
)

func main() {
	syncInterval := flag.Duration("sync", 500*time.Millisecond, "server image sync interval (paper: 3s)")
	bursts := flag.Int("bursts", 8, "insert bursts to measure")
	flag.Parse()

	schema := volap.TPCDSSchema()
	opts := volap.DefaultOptions(schema)
	opts.Workers = 2
	opts.Servers = 2
	opts.SyncInterval = *syncInterval
	opts.BalanceInterval = -1
	cluster, err := volap.Start(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	a, err := cluster.ClientTo(0) // session on server 0
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	b, err := cluster.ClientTo(1) // session on server 1
	if err != nil {
		log.Fatal(err)
	}
	defer b.Close()

	// Base data: skewed, so high ordinals remain untouched — the bursts
	// below will expand bounding boxes into that unseen territory.
	gen := volap.NewGenerator(schema, 5, 1.1)
	if err := a.BulkLoadNoCtx(gen.Items(20000)); err != nil {
		log.Fatal(err)
	}
	waitVisible(b, volap.AllRect(schema), 20000)
	fmt.Printf("base data visible on both servers; sync interval = %v\n\n", *syncInterval)

	// Regime 1: inserts into already-described space — immediate.
	firstItem := gen.Item()
	before, _ := b.QueryNoCtx(volap.AllRect(schema))
	if err := a.InsertNoCtx(firstItem); err != nil {
		log.Fatal(err)
	}
	lag := waitVisible(b, volap.AllRect(schema), before.Agg.Count+1)
	fmt.Printf("in-box insert visible cross-server after %v (no sync needed: data lives on workers)\n\n", lag.Round(time.Microsecond))

	// Regime 2: bursts into unseen corners of the space. Each burst gets
	// its own slice of high Time-dimension ordinals so every burst forces
	// a fresh bounding-box expansion; B's query covers only that region.
	fmt.Printf("%6s %16s %16s\n", "burst", "sameServer", "crossServer")
	timeDim := schema.Dim(7) // Time: Hour/Minute
	var worst time.Duration
	for burst := 0; burst < *bursts; burst++ {
		// One unseen minute per burst, from the top of the space down.
		ord := timeDim.LeafCount() - 1 - uint64(burst)
		items := make([]volap.Item, 50)
		for i := range items {
			it := gen.Item()
			it.Coords[7] = ord
			items[i] = it
		}
		region := volap.AllRect(schema)
		region.Ivs[7] = volap.Interval{Lo: ord, Hi: ord}

		t0 := time.Now()
		if err := a.InsertBatchNoCtx(items); err != nil {
			log.Fatal(err)
		}
		sameLag := waitVisible(a, region, 50)  // A expanded its own image
		crossLag := waitVisible(b, region, 50) // B must wait for the sync
		if crossLag > worst {
			worst = crossLag
		}
		_ = t0
		fmt.Printf("%6d %16v %16v\n", burst, sameLag.Round(time.Microsecond), crossLag.Round(time.Millisecond))
	}

	fmt.Printf("\nworst observed cross-server lag for box-expanding inserts: %v (sync interval %v)\n",
		worst.Round(time.Millisecond), *syncInterval)
	if worst <= 3*(*syncInterval) {
		fmt.Println("consistent with the paper: consistency always within a few sync intervals")
	}
}

// waitVisible polls the session until the query's count reaches want and
// returns how long it took.
func waitVisible(cl *volap.Client, q volap.Rect, want uint64) time.Duration {
	start := time.Now()
	for {
		res, err := cl.QueryNoCtx(q)
		if err == nil && res.Agg.Count >= want {
			return time.Since(start)
		}
		if time.Since(start) > 30*time.Second {
			log.Fatalf("visibility timed out (want %d)", want)
		}
		time.Sleep(time.Millisecond)
	}
}
