// Quickstart: boot an embedded VOLAP cluster, define a small dimension
// hierarchy, insert a few sales records, and run aggregate queries at
// several hierarchy levels — the minimal end-to-end tour of the public
// API.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	volap "repro"
)

func main() {
	// A sales cube with three hierarchical dimensions.
	store, err := volap.NewDimension("Store",
		volap.Level{Name: "Country", Fanout: 4},
		volap.Level{Name: "City", Fanout: 8},
	)
	check(err)
	product, err := volap.NewDimension("Product",
		volap.Level{Name: "Category", Fanout: 6},
		volap.Level{Name: "SKU", Fanout: 20},
	)
	check(err)
	date, err := volap.NewDimension("Date",
		volap.Level{Name: "Year", Fanout: 3},
		volap.Level{Name: "Month", Fanout: 12},
	)
	check(err)
	schema, err := volap.NewSchema(store, product, date)
	check(err)

	// Start an embedded cluster: 2 workers, 1 server, Hilbert PDC tree
	// shards with MDS keys (the paper's defaults).
	cluster, err := volap.Start(volap.DefaultOptions(schema))
	check(err)
	defer cluster.Stop()

	client, err := cluster.Client()
	check(err)
	defer client.Close()

	// Insert sales: Item{Coords, Measure}. Coordinates are leaf ordinals;
	// Dimension.Ordinal converts a per-level path.
	sale := func(country, city, cat, sku, year, month uint32, amount float64) volap.Item {
		s, err := store.Ordinal([]uint32{country, city})
		check(err)
		p, err := product.Ordinal([]uint32{cat, sku})
		check(err)
		d, err := date.Ordinal([]uint32{year, month})
		check(err)
		return volap.Item{Coords: []uint64{s, p, d}, Measure: amount}
	}
	items := []volap.Item{
		sale(0, 0, 0, 3, 0, 0, 19.99),
		sale(0, 1, 0, 4, 0, 1, 5.49),
		sale(0, 1, 1, 0, 1, 6, 129.00),
		sale(1, 5, 2, 10, 1, 7, 42.00),
		sale(1, 5, 0, 3, 2, 11, 19.99),
		sale(3, 7, 5, 19, 2, 3, 7.25),
	}
	// Every operation is context-first: cancellable and deadline-bounded.
	// (The NoCtx variants — client.InsertBatchNoCtx(items) — wrap
	// context.Background() for one-liners.)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	check(client.InsertBatch(ctx, items))
	fmt.Printf("inserted %d sales\n", len(items))

	// Query 1: everything. Query returns a Result holding the aggregate
	// plus QueryInfo (shards searched, and whether a materialized rollup
	// or the raw trees served it — res.Info.Source()).
	res, err := client.Query(ctx, volap.AllRect(schema))
	check(err)
	fmt.Printf("total:            count=%d sum=%.2f avg=%.2f (searched %d shards, source=%s)\n",
		res.Agg.Count, res.Agg.Sum, res.Agg.Avg(), res.Info.ShardsSearched, res.Info.Source())

	// Query 2: one country, all products, all dates — a level-1 value in
	// the Store hierarchy is a contiguous interval of leaf ordinals.
	country0, err := store.NodeInterval(1, []uint32{0})
	check(err)
	allProducts, _ := product.NodeInterval(0, nil)
	allDates, _ := date.NodeInterval(0, nil)
	res, err = client.Query(ctx, volap.NewRect(country0, allProducts, allDates))
	check(err)
	fmt.Printf("country 0:        count=%d sum=%.2f\n", res.Agg.Count, res.Agg.Sum)

	// Query 3: category 0 in year 2 — values at different levels in
	// different dimensions, as VOLAP queries always are.
	allStores, _ := store.NodeInterval(0, nil)
	cat0, err := product.NodeInterval(1, []uint32{0})
	check(err)
	year2, err := date.NodeInterval(1, []uint32{2})
	check(err)
	res, err = client.Query(ctx, volap.NewRect(allStores, cat0, year2))
	check(err)
	fmt.Printf("cat 0 in year 2:  count=%d sum=%.2f min=%.2f max=%.2f\n",
		res.Agg.Count, res.Agg.Sum, res.Agg.Min, res.Agg.Max)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
