GO ?= go

.PHONY: check vet build test race bench examples

# The standard gate: everything CI (and the tier-1 verify) runs.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

examples:
	$(GO) run ./examples/quickstart
