GO ?= go

.PHONY: check fmt vet build test race bench bench-ingest bench-worker bench-replication bench-rollup examples smoke

# The standard gate: everything CI (and the tier-1 verify) runs.
check: fmt vet build race

# gofmt gate: fails listing any file that needs formatting.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench: bench-ingest
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Durability ingest overhead (off/async/sync), emitted machine-readable
# as BENCH_ingest.json.
bench-ingest:
	./scripts/bench_ingest.sh

# Intra-worker parallelism: ingest-pipeline ack latency and multi-shard
# query fan-out scaling, emitted machine-readable as BENCH_worker.json.
bench-worker:
	./scripts/bench_worker.sh

# Shard replication: hot-shard read throughput RF=1 vs RF=2 prefer-replica
# and the failover window, emitted machine-readable as BENCH_replication.json.
bench-replication:
	./scripts/bench_replication.sh

# Materialized rollups: grouped-query latency from rollup cells vs the
# raw tree-scan path, emitted machine-readable as BENCH_rollup.json.
bench-rollup:
	./scripts/bench_rollup.sh

examples:
	$(GO) run ./examples/quickstart

# Boots a real 1-server/2-worker cluster from the built binaries, drives
# inserts+queries, and asserts /metrics reports nonzero op counters.
smoke:
	./scripts/smoke.sh
