package volap_test

// Process-level integration test: builds the real binaries and boots a
// full multi-process VOLAP deployment over TCP — coordination service,
// two workers, one server, the manager — then drives it with the CLI
// client library. This is the closest in-repo equivalent of the paper's
// EC2 deployment topology.

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	volap "repro"

	"repro/internal/coord"
	"repro/internal/image"
	"repro/internal/tpcds"
)

// freePort reserves a distinct local TCP port.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func TestMultiProcessDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process deployment test skipped in -short mode")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./cmd/volap-coord", "./cmd/volap-worker", "./cmd/volap-server", "./cmd/volap-manager")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building binaries: %v", err)
	}

	coordAddr := freePort(t)
	w0Addr := freePort(t)
	w1Addr := freePort(t)
	srvAddr := freePort(t)
	w0Obs := freePort(t)
	w1Obs := freePort(t)
	srvObs := freePort(t)

	spawn := func(name string, args ...string) *exec.Cmd {
		cmd := exec.Command(filepath.Join(bin, name), args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		})
		return cmd
	}

	spawn("volap-coord", "-listen", coordAddr)
	waitDial(t, coordAddr)
	spawn("volap-worker", "-coord", coordAddr, "-id", "w0", "-listen", w0Addr, "-shards", "4", "-metrics-addr", w0Obs)
	spawn("volap-worker", "-coord", coordAddr, "-id", "w1", "-listen", w1Addr, "-shards", "4", "-metrics-addr", w1Obs)
	waitDial(t, w0Addr)
	waitDial(t, w1Addr)
	spawn("volap-server", "-coord", coordAddr, "-id", "s0", "-listen", srvAddr, "-sync", "300ms", "-metrics-addr", srvObs)
	spawn("volap-manager", "-coord", coordAddr, "-interval", "300ms")
	waitDial(t, srvAddr)

	// Drive the deployment through the public client API.
	schema := tpcds.Schema()
	cl, err := volap.Connect(srvAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	gen := volap.NewGenerator(schema, 3, 1.1)
	const n = 10000
	for off := 0; off < n; off += 1000 {
		if err := cl.InsertBatchNoCtx(gen.Items(1000)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := cl.QueryNoCtx(volap.AllRect(schema))
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.Count != n {
		t.Fatalf("count over TCP deployment = %d, want %d", res.Agg.Count, n)
	}
	if res.Info.WorkersContacted != 2 {
		t.Errorf("workers contacted = %d, want 2", res.Info.WorkersContacted)
	}

	// A traced query: the same trace ID must surface in the trace-event
	// buffers of all three processes (server and both workers), read
	// back over their /debug/volap endpoints.
	ctx, traceID := volap.WithTrace(context.Background())
	if _, err := cl.Query(ctx, volap.AllRect(schema)); err != nil {
		t.Fatal(err)
	}
	for _, obsAddr := range []string{srvObs, w0Obs, w1Obs} {
		if !debugHasTrace(t, obsAddr, traceID) {
			t.Errorf("process at %s has no trace %d in its /debug/volap buffer", obsAddr, traceID)
		}
	}

	// Every process serves parseable Prometheus text with nonzero op
	// counters after the traffic above.
	for addr, counter := range map[string]string{
		srvObs: "server_routes_total",
		w0Obs:  "worker_insert_seconds_count",
		w1Obs:  "worker_insert_seconds_count",
	} {
		if v := scrapeTotal(t, addr, counter); v == 0 {
			t.Errorf("process at %s: %s = 0, want nonzero", addr, counter)
		}
	}

	// The public cluster-stats API sees both workers and conserves the
	// item total (polled: a migration may be mid-flight).
	statsDeadline := time.Now().Add(10 * time.Second)
	for {
		cs, err := cl.ClusterStatsNoCtx()
		if err != nil {
			t.Fatal(err)
		}
		var itemsTotal uint64
		for _, ws := range cs.Workers {
			itemsTotal += ws.Items
		}
		if len(cs.Workers) == 2 && itemsTotal == n {
			break
		}
		if time.Now().After(statsDeadline) {
			t.Fatalf("cluster stats never converged: %d workers, %d items (want 2, %d)",
				len(cs.Workers), itemsTotal, n)
		}
		time.Sleep(100 * time.Millisecond)
	}

	groups, err := cl.GroupByNoCtx(volap.AllRect(schema), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, g := range groups {
		total += g.Agg.Count
	}
	if total != n {
		t.Fatalf("group-by over TCP sums to %d", total)
	}

	// The manager balanced real processes: check the global image.
	co, err := coord.DialClient(coordAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ws, _ := co.Children(image.PathWorkers)
		var loads []uint64
		for _, w := range ws {
			raw, _, err := co.Get(image.WorkerPath(w))
			if err == nil {
				if m, err := image.DecodeWorkerMetaBytes(raw); err == nil {
					loads = append(loads, m.Items)
				}
			}
		}
		if len(loads) == 2 && loads[0] > 0 && loads[1] > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never both held data: %v", loads)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestMultiProcessWorkerKill checks failure detection across real
// process boundaries: a SIGKILLed worker cannot say goodbye, so its
// ephemeral registration must vanish through session expiry alone —
// heartbeats from the live process sustain the lease, the kill starves
// it, the coordination janitor reaps it.
func TestMultiProcessWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process kill test skipped in -short mode")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./cmd/volap-coord", "./cmd/volap-worker")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building binaries: %v", err)
	}

	coordAddr := freePort(t)
	workerAddr := freePort(t)
	coordCmd := exec.Command(filepath.Join(bin, "volap-coord"), "-listen", coordAddr)
	coordCmd.Stdout = os.Stderr
	coordCmd.Stderr = os.Stderr
	if err := coordCmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = coordCmd.Process.Kill()
		_, _ = coordCmd.Process.Wait()
	})
	waitDial(t, coordAddr)

	const ttl = 500 * time.Millisecond
	workerCmd := exec.Command(filepath.Join(bin, "volap-worker"),
		"-coord", coordAddr, "-id", "w0", "-listen", workerAddr,
		"-shards", "2", "-session-ttl", ttl.String())
	workerCmd.Stdout = os.Stderr
	workerCmd.Stderr = os.Stderr
	if err := workerCmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = workerCmd.Process.Kill()
		_, _ = workerCmd.Process.Wait()
	})

	co, err := coord.DialClient(coordAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	registered := func() bool { return co.Exists(image.WorkerPath("w0")) }

	deadline := time.Now().Add(10 * time.Second)
	for !registered() {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Heartbeats must hold the lease across several TTL windows while the
	// process lives.
	hold := time.Now().Add(3 * ttl)
	for time.Now().Before(hold) {
		if !registered() {
			t.Fatal("registration lapsed while the worker was alive")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// SIGKILL: no deferred cleanup runs in the worker, so only the
	// session TTL can clear the registration.
	if err := workerCmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = workerCmd.Process.Wait()
	killedAt := time.Now()
	deadline = killedAt.Add(10 * time.Second)
	for registered() {
		if time.Now().After(deadline) {
			t.Fatal("registration survived 10s past a SIGKILL")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The lease ran its course: reaping can't beat the TTL itself (a
	// too-early reap would mean expiry ignores heartbeats entirely).
	if took := time.Since(killedAt); took > 5*time.Second {
		t.Errorf("expiry took %v, want within a few TTLs of the kill", took)
	}
}

// debugHasTrace reads a process's /debug/volap endpoint and reports
// whether its trace-event buffer contains the given trace ID.
func debugHasTrace(t *testing.T, addr string, traceID uint64) bool {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/debug/volap")
	if err != nil {
		t.Fatalf("GET %s/debug/volap: %v", addr, err)
	}
	defer resp.Body.Close()
	var state struct {
		Trace []struct {
			TraceID uint64 `json:"trace_id"`
		} `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		t.Fatalf("decoding %s/debug/volap: %v", addr, err)
	}
	for _, ev := range state.Trace {
		if ev.TraceID == traceID {
			return true
		}
	}
	return false
}

// scrapeTotal fetches a process's /metrics endpoint, checks every sample
// line parses as Prometheus text, and returns the summed value of the
// named metric across its label sets.
func scrapeTotal(t *testing.T, addr, name string) float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET %s/metrics: %v", addr, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cut := strings.LastIndexByte(line, ' ')
		if cut < 0 {
			t.Fatalf("unparseable metrics line from %s: %q", addr, line)
		}
		series, val := line[:cut], line[cut+1:]
		if val != "+Inf" && val != "NaN" {
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				t.Fatalf("unparseable metrics value from %s: %q", addr, line)
			}
			if series == name || strings.HasPrefix(series, name+"{") {
				total += v
			}
		}
	}
	return total
}

func waitDial(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never came up: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
