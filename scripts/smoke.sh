#!/bin/sh
# Smoke test for the multi-process deployment and its observability
# surface: builds the binaries, boots coord + 2 workers + 1 server,
# drives inserts and queries through the CLI client, then asserts every
# process's /metrics endpoint serves Prometheus text with nonzero op
# counters.
set -eu

cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
LOG=$(mktemp -d)
PIDS=""

cleanup() {
	for pid in $PIDS; do
		kill "$pid" 2>/dev/null || true
	done
	wait 2>/dev/null || true
	rm -rf "$BIN" "$LOG"
}
trap cleanup EXIT INT TERM

fail() {
	echo "smoke: FAIL: $*" >&2
	echo "---- process logs ----" >&2
	cat "$LOG"/*.log >&2 || true
	exit 1
}

echo "smoke: building binaries"
go build -o "$BIN" ./cmd/volap-coord ./cmd/volap-worker ./cmd/volap-server ./cmd/volap

COORD=127.0.0.1:19550
W0=127.0.0.1:19561
W1=127.0.0.1:19562
SRV=127.0.0.1:19570
W0_OBS=127.0.0.1:19661
W1_OBS=127.0.0.1:19662
SRV_OBS=127.0.0.1:19670

spawn() {
	name=$1
	shift
	"$BIN/$name" "$@" >"$LOG/$name-$$.log" 2>&1 &
	PIDS="$PIDS $!"
}

wait_tcp() {
	i=0
	# curl exits 7 while the port refuses connections; once it connects,
	# the raw protocol probe fails differently (timeout/recv error),
	# which is all we need to know the listener is up.
	while curl -s -o /dev/null --max-time 1 "telnet://$1" 2>/dev/null; [ $? -eq 7 ]; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && fail "$1 never came up"
		sleep 0.1
	done
}

echo "smoke: booting 1-server/2-worker cluster"
spawn volap-coord -listen "$COORD"
wait_tcp "$COORD"
spawn volap-worker -coord "$COORD" -id w0 -listen "$W0" -shards 4 -metrics-addr "$W0_OBS"
spawn volap-worker -coord "$COORD" -id w1 -listen "$W1" -shards 4 -metrics-addr "$W1_OBS"
wait_tcp "$W0"
wait_tcp "$W1"
spawn volap-server -coord "$COORD" -id s0 -listen "$SRV" -sync 300ms -metrics-addr "$SRV_OBS"
wait_tcp "$SRV"

echo "smoke: driving inserts and queries"
"$BIN/volap" insert -coord "$COORD" -n 5000 -seed 7 >"$LOG/insert.log" 2>&1 || fail "insert stream"
"$BIN/volap" query -coord "$COORD" -n 3 -seed 7 >"$LOG/query.log" 2>&1 || fail "query stream"

# check_metrics ADDR COUNTER: the scrape must parse as Prometheus text
# and report a nonzero value for COUNTER (summed across label sets).
check_metrics() {
	addr=$1
	counter=$2
	body=$(curl -sf --max-time 5 "http://$addr/metrics") || fail "scraping $addr"
	echo "$body" | grep -q "^# TYPE " || fail "$addr: no TYPE comments in scrape"
	total=$(echo "$body" | awk -v name="$counter" '
		$1 == name || index($1, name "{") == 1 { sum += $2 }
		END { print sum + 0 }')
	case "$total" in
	0 | "") fail "$addr: $counter = 0, want nonzero" ;;
	esac
	echo "smoke: $addr $counter = $total"
}

check_metrics "$SRV_OBS" server_routes_total
check_metrics "$W0_OBS" worker_insert_seconds_count
check_metrics "$W1_OBS" worker_insert_seconds_count
check_metrics "$SRV_OBS" netmsg_request_seconds_count

curl -sf --max-time 5 "http://$SRV_OBS/debug/volap" | grep -q '"trace"' ||
	fail "$SRV_OBS: /debug/volap has no trace buffer"

echo "smoke: PASS"
