#!/bin/sh
# Smoke test for the multi-process deployment, its observability surface,
# the durability pipeline, shard replication and materialized rollups:
# builds the binaries, boots coord (with -rollup definitions) + 2 durable
# workers + 1 server + the manager at -replication-factor 2, drives
# inserts and queries through the CLI client, asserts every process's
# /metrics endpoint serves Prometheus text with nonzero op counters
# (including replica_ship_bytes_total, replica_lag_records and
# server_replica_reads_total from a -read-pref replica query, and
# rollup_hits_total / rollup_cells from a -group-by query answered from
# rollup cells), then SIGKILLs one worker, asserts the manager promotes
# its shards' followers (manager_promotions_total), restarts it over the
# same data directory and asserts it replayed its WAL
# (durable_recovery_replayed_records > 0).
#
# Every component listens on 127.0.0.1:0 and the script reads the bound
# address back from its log line, so concurrent runs (CI, a developer's
# second terminal) never collide on ports.
set -eu

cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
LOG=$(mktemp -d)
DATA=$(mktemp -d)
PIDS=""

cleanup() {
	for pid in $PIDS; do
		kill "$pid" 2>/dev/null || true
	done
	wait 2>/dev/null || true
	rm -rf "$BIN" "$LOG" "$DATA"
}
trap cleanup EXIT INT TERM

fail() {
	echo "smoke: FAIL: $*" >&2
	echo "---- process logs ----" >&2
	cat "$LOG"/*.log >&2 || true
	exit 1
}

echo "smoke: building binaries"
go build -o "$BIN" ./cmd/volap-coord ./cmd/volap-worker ./cmd/volap-server ./cmd/volap-manager ./cmd/volap

# spawn LABEL BINARY ARGS...: start a process with its own log file. The
# new pid is left in LAST_PID for callers that need to kill one process.
spawn() {
	label=$1
	name=$2
	shift 2
	"$BIN/$name" "$@" >"$LOG/$label.log" 2>&1 &
	LAST_PID=$!
	PIDS="$PIDS $LAST_PID"
}

# wait_log LABEL SED_EXPR: poll LABEL's log until SED_EXPR extracts a
# value (the address a component reported binding), then print it. The
# components print after Listen succeeds, so the address is dialable the
# moment it appears.
wait_log() {
	i=0
	while :; do
		v=$(sed -n "$2" "$LOG/$1.log" 2>/dev/null | head -n 1)
		if [ -n "$v" ]; then
			printf '%s\n' "$v"
			return 0
		fi
		i=$((i + 1))
		[ "$i" -gt 100 ] && return 1
		sleep 0.1
	done
}

obs_addr() {
	wait_log "$1" 's|.*observability on http://\([^/]*\)/metrics|\1|p'
}

echo "smoke: booting 1-server/2-worker cluster"
spawn coord volap-coord -listen 127.0.0.1:0 -rollup all -rollup Store:1
COORD=$(wait_log coord 's/^volap-coord: serving global system image on //p') ||
	fail "coord never reported its address"
spawn w0 volap-worker -coord "$COORD" -id w0 -listen 127.0.0.1:0 -shards 4 -metrics-addr 127.0.0.1:0 \
	-durability async -data-dir "$DATA/w0" -session-ttl 1s
W0_PID=$LAST_PID
spawn w1 volap-worker -coord "$COORD" -id w1 -listen 127.0.0.1:0 -shards 4 -metrics-addr 127.0.0.1:0 \
	-durability async -data-dir "$DATA/w1" -session-ttl 1s
wait_log w0 's/^volap-worker w0: serving on //p' >/dev/null || fail "w0 never came up"
wait_log w1 's/^volap-worker w1: serving on //p' >/dev/null || fail "w1 never came up"
W0_OBS=$(obs_addr w0) || fail "w0 never reported its metrics address"
W1_OBS=$(obs_addr w1) || fail "w1 never reported its metrics address"
spawn srv volap-server -coord "$COORD" -id s0 -listen 127.0.0.1:0 -sync 300ms -metrics-addr 127.0.0.1:0
wait_log srv 's/^volap-server s0: serving clients on \([^ ]*\).*/\1/p' >/dev/null ||
	fail "server never came up"
SRV_OBS=$(obs_addr srv) || fail "server never reported its metrics address"
spawn mgr volap-manager -coord "$COORD" -interval 300ms -replication-factor 2 -metrics-addr 127.0.0.1:0
MGR_OBS=$(obs_addr mgr) || fail "manager never reported its metrics address"

echo "smoke: driving inserts and queries"
"$BIN/volap" insert -coord "$COORD" -n 5000 -seed 7 >"$LOG/insert.log" 2>&1 || fail "insert stream"
"$BIN/volap" query -coord "$COORD" -n 3 -seed 7 >"$LOG/query.log" 2>&1 || fail "query stream"

# check_metrics ADDR COUNTER: the scrape must parse as Prometheus text
# and report a nonzero value for COUNTER (summed across label sets).
check_metrics() {
	addr=$1
	counter=$2
	body=$(curl -sf --max-time 5 "http://$addr/metrics") || fail "scraping $addr"
	echo "$body" | grep -q "^# TYPE " || fail "$addr: no TYPE comments in scrape"
	total=$(echo "$body" | awk -v name="$counter" '
		$1 == name || index($1, name "{") == 1 { sum += $2 }
		END { print sum + 0 }')
	case "$total" in
	0 | "") fail "$addr: $counter = 0, want nonzero" ;;
	esac
	echo "smoke: $addr $counter = $total"
}

# metrics_value ADDR NAME: print the metric's value summed across label
# sets, or 0 when the scrape fails or the metric is absent.
metrics_value() {
	curl -sf --max-time 5 "http://$1/metrics" 2>/dev/null | awk -v name="$2" '
		$1 == name || index($1, name "{") == 1 { sum += $2 }
		END { printf "%d\n", sum + 0 }'
}

check_metrics "$SRV_OBS" server_routes_total
check_metrics "$W0_OBS" worker_insert_seconds_count
check_metrics "$W1_OBS" worker_insert_seconds_count
check_metrics "$SRV_OBS" netmsg_request_seconds_count

echo "smoke: grouped query served from materialized rollups"
"$BIN/volap" query -coord "$COORD" -group-by Store:0 >"$LOG/query-groupby.log" 2>&1 ||
	fail "group-by query stream"
grep -q 'source=rollup' "$LOG/query-groupby.log" ||
	fail "group-by query not answered from rollups: $(head -n 1 "$LOG/query-groupby.log")"
# The ingest pipeline drains asynchronously; re-issue the grouped query
# until both workers report rollup activity on /metrics.
i=0
while :; do
	hits=$(( $(metrics_value "$W0_OBS" rollup_hits_total) + $(metrics_value "$W1_OBS" rollup_hits_total) ))
	cells=$(( $(metrics_value "$W0_OBS" rollup_cells) + $(metrics_value "$W1_OBS" rollup_cells) ))
	[ "$hits" -gt 0 ] && [ "$cells" -gt 0 ] && break
	i=$((i + 1))
	[ "$i" -gt 50 ] && fail "rollup metrics stayed 0 (rollup_hits_total=$hits rollup_cells=$cells)"
	"$BIN/volap" query -coord "$COORD" -group-by Store:0 >>"$LOG/query-groupby.log" 2>&1 || fail "group-by retry"
	sleep 0.2
done
echo "smoke: rollup_hits_total = $hits, rollup_cells = $cells"

echo "smoke: waiting for the manager to establish RF=2 replica sets"
i=0
while :; do
	ship=$(( $(metrics_value "$W0_OBS" replica_ship_bytes_total) + $(metrics_value "$W1_OBS" replica_ship_bytes_total) ))
	[ "$ship" -gt 0 ] && break
	i=$((i + 1))
	[ "$i" -gt 50 ] && fail "replica_ship_bytes_total stayed 0: manager never seeded replicas"
	# Replicas seeded after the initial load only ship records inserted
	# from now on — keep a trickle going until the stream is observed.
	"$BIN/volap" insert -coord "$COORD" -n 200 -seed "$i" >>"$LOG/insert.log" 2>&1 || fail "replication trickle insert"
	sleep 0.2
done
echo "smoke: replica_ship_bytes_total = $ship"
curl -sf --max-time 5 "http://$W0_OBS/metrics" "http://$W1_OBS/metrics" | grep -q '^replica_lag_records{' ||
	fail "no replica_lag_records gauge on either worker"

echo "smoke: replica-preferring query"
i=0
while :; do
	"$BIN/volap" query -coord "$COORD" -n 1 -seed 7 -read-pref replica >"$LOG/query-replica.log" 2>&1 ||
		fail "replica-preferring query stream"
	[ "$(metrics_value "$SRV_OBS" server_replica_reads_total)" -gt 0 ] && break
	i=$((i + 1))
	[ "$i" -gt 20 ] && fail "server_replica_reads_total stayed 0 across -read-pref replica queries"
	sleep 0.2
done
check_metrics "$SRV_OBS" server_replica_reads_total

curl -sf --max-time 5 "http://$SRV_OBS/debug/volap" | grep -q '"trace"' ||
	fail "$SRV_OBS: /debug/volap has no trace buffer"

echo "smoke: SIGKILL w0 and wait for the manager to promote its shards"
kill -9 "$W0_PID"
i=0
until [ "$(metrics_value "$MGR_OBS" manager_promotions_total)" -ge 1 ]; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && fail "manager_promotions_total stayed 0 after killing w0"
	sleep 0.2
done
echo "smoke: manager_promotions_total = $(metrics_value "$MGR_OBS" manager_promotions_total)"

echo "smoke: restart w0 over the same data dir"
spawn w0r volap-worker -coord "$COORD" -id w0 -listen 127.0.0.1:0 -shards 4 -metrics-addr 127.0.0.1:0 \
	-durability async -data-dir "$DATA/w0" -session-ttl 1s
wait_log w0r 's/^volap-worker w0: recovered \([0-9]*\) shards.*/\1/p' >/dev/null ||
	fail "restarted w0 never reported recovery"
wait_log w0r 's/^volap-worker w0: serving on //p' >/dev/null || fail "restarted w0 never came up"
W0R_OBS=$(obs_addr w0r) || fail "restarted w0 never reported its metrics address"
check_metrics "$W0R_OBS" durable_recovery_replayed_records
check_metrics "$W0R_OBS" durable_recovered_shards

# The recovered worker serves queries again once the server re-learns its
# address (it re-registers immediately; the server syncs every 300ms).
i=0
until "$BIN/volap" query -coord "$COORD" -n 1 -seed 9 >"$LOG/query-recovered.log" 2>&1; do
	i=$((i + 1))
	[ "$i" -gt 50 ] && fail "query against recovered worker"
	sleep 0.2
done

echo "smoke: PASS"
