#!/bin/sh
# Runs the materialized-rollup benchmarks and emits BENCH_rollup.json:
# grouped-query latency with the rollup router on (queries answered from
# precomputed rollup cells) versus forced to the raw per-shard tree scan
# (WithNoRollup), on a 60k-item TPC-DS cluster.
#
# One op is one full-space group-by (Store country or Date year). The
# rollup path reads a handful of materialized cells per shard; the raw
# path walks every shard tree and buckets leaves at query time, so the
# gap widens with data volume. The issue's acceptance bar is a >=5x
# latency drop for the rollup path.
#
# Usage: scripts/bench_rollup.sh [output.json]   (default BENCH_rollup.json)
set -eu

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_rollup.json}
BENCHTIME=${BENCHTIME:-200x}
CPUS=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT INT TERM

echo "bench_rollup: running go test -bench BenchmarkRollupGroupBy -benchtime $BENCHTIME"
go test -bench 'BenchmarkRollupGroupBy' -benchtime "$BENCHTIME" -run '^$' . | tee "$RAW"

awk -v cpus="$CPUS" '
/^BenchmarkRollupGroupBy\// {
	name = $1
	sub(/^BenchmarkRollupGroupBy\//, "", name)
	sub(/-[0-9]+$/, "", name)          # strip GOMAXPROCS suffix
	ns = 0
	for (i = 2; i <= NF; i++) if ($i == "ns/op") ns = $(i - 1)
	if (ns > 0) { lat[name] = ns; order[n++] = name }
}
END {
	if (!("rollup" in lat) || !("raw" in lat)) {
		print "bench_rollup: missing benchmark lines" > "/dev/stderr"; exit 1
	}
	printf "{\n  \"benchmark\": \"MaterializedRollups\",\n  \"cpus\": %d,\n", cpus
	printf "  \"group_by_latency\": {\n"
	printf "    \"unit\": \"one op = one full-space group-by (Store country or Date year) on a 60k-item TPC-DS cluster; rollup answers from materialized cells, raw forces the per-shard tree scan via WithNoRollup\",\n"
	base = lat["raw"]
	for (i = 0; i < n; i++) {
		m = order[i]
		printf "    \"%s\": {\"ns_per_query\": %.0f, \"queries_per_sec\": %.1f, \"speedup_vs_raw\": %.2f}%s\n",
			m, lat[m], 1e9 / lat[m], base / lat[m], (i < n - 1 ? "," : "")
	}
	printf "  },\n"
	printf "  \"target\": {\"rollup_speedup_vs_raw_min\": 5.0, \"met\": %s}\n}\n",
		(base / lat["rollup"] >= 5.0 ? "true" : "false")
}
' "$RAW" >"$OUT"

echo "bench_rollup: wrote $OUT"
cat "$OUT"
