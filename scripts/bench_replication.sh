#!/bin/sh
# Runs the shard-replication benchmarks and emits BENCH_replication.json:
# hot-shard read throughput at RF=1 (leader-only reads) vs RF=2 with
# ReadPreferReplica, plus the measured failover window (manager promotion
# pass through the first complete query answer, detection TTL factored
# out by a fake clock).
#
# The read workload is a point query against one hot shard that holds a
# standing ~60k-item ingest backlog, refilled between timed sections so
# the write stream is untimed and identical in both configurations. A
# leader read merges store + pending insertion buffer (an O(backlog)
# scan); a standby holds applied-only state because records ship and
# apply at ack time, so replica-preferring reads skip the backlog on the
# follower copy. This is a read-path asymmetry, not core parallelism —
# the numbers here come from a single-CPU host (cpus is recorded).
#
# Usage: scripts/bench_replication.sh [output.json]   (default BENCH_replication.json)
set -eu

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_replication.json}
BENCHTIME=${BENCHTIME:-200x}
CPUS=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)
RAW=$(mktemp)
FAILOVER=$(mktemp)
trap 'rm -f "$RAW" "$FAILOVER"' EXIT INT TERM

echo "bench_replication: running go test -bench BenchmarkReplicaRead -benchtime $BENCHTIME"
go test -bench 'BenchmarkReplicaRead' -benchtime "$BENCHTIME" -run '^$' . | tee "$RAW"

echo "bench_replication: running go test -run TestReplicationFailoverTime"
go test -v -run 'TestReplicationFailoverTime' . | tee "$FAILOVER"

MS=$(sed -n 's/^failover_ms=//p' "$FAILOVER" | head -n 1)
if [ -z "$MS" ]; then
	echo "bench_replication: no failover_ms line in test output" >&2
	exit 1
fi

awk -v cpus="$CPUS" -v failover_ms="$MS" '
/^BenchmarkReplicaRead\// {
	name = $1
	sub(/^BenchmarkReplicaRead\//, "", name)
	sub(/-[0-9]+$/, "", name)          # strip GOMAXPROCS suffix
	ns = 0
	for (i = 2; i <= NF; i++) if ($i == "ns/op") ns = $(i - 1)
	if (ns > 0) { read[name] = ns; order[n++] = name }
}
END {
	if (!("rf1-leader" in read) || !("rf2-replica" in read)) {
		print "bench_replication: missing benchmark lines" > "/dev/stderr"; exit 1
	}
	printf "{\n  \"benchmark\": \"ShardReplication\",\n  \"cpus\": %d,\n", cpus
	printf "  \"read_throughput\": {\n"
	printf "    \"unit\": \"one op = one point query against a hot shard holding a ~60k-item standing ingest backlog; the write stream refilling the backlog is untimed and identical in both configs\",\n"
	base = read["rf1-leader"]
	for (i = 0; i < n; i++) {
		m = order[i]
		printf "    \"%s\": {\"ns_per_query\": %.0f, \"queries_per_sec\": %.1f, \"speedup_vs_rf1\": %.2f}%s\n",
			m, read[m], 1e9 / read[m], base / read[m], (i < n - 1 ? "," : "")
	}
	printf "  },\n"
	printf "  \"failover\": {\n"
	printf "    \"unit\": \"RF=2, one of two workers killed; window from the manager promotion pass to the first complete (non-partial, exact-count) query; session-TTL detection excluded via a fake clock\",\n"
	printf "    \"promotion_to_full_reads_ms\": %d\n", failover_ms
	printf "  }\n}\n"
}
' "$RAW" >"$OUT"

echo "bench_replication: wrote $OUT"
cat "$OUT"
