#!/bin/sh
# Runs the durability ingest benchmarks and emits BENCH_ingest.json: one
# machine-readable record per persistence contract (off/async/sync) with
# ns per 64-item batch, batches/sec and items/sec, so CI and EXPERIMENTS
# tables regenerate without scraping Go bench text by hand.
#
# Usage: scripts/bench_ingest.sh [output.json]   (default BENCH_ingest.json)
set -eu

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_ingest.json}
BENCHTIME=${BENCHTIME:-50x}
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT INT TERM

echo "bench_ingest: running go test -bench IngestDurability -benchtime $BENCHTIME"
go test -bench 'BenchmarkIngestDurability' -benchtime "$BENCHTIME" -run '^$' . | tee "$RAW"

awk '
/^BenchmarkIngestDurability/ {
	name = $1
	sub(/^BenchmarkIngestDurability/, "", name)
	sub(/-[0-9]+$/, "", name)          # strip GOMAXPROCS suffix
	mode = tolower(name)
	ns = 0
	items = 64
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		if ($i == "items/op") items = $(i - 1)
	}
	if (ns > 0) {
		modes[mode] = sprintf("\"%s\": {\"ns_per_batch\": %.0f, \"batch_items\": %.0f, \"batches_per_sec\": %.1f, \"items_per_sec\": %.1f}",
			mode, ns, items, 1e9 / ns, 1e9 / ns * items)
		order[n++] = mode
	}
}
END {
	if (n == 0) { print "bench_ingest: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
	printf "{\n  \"benchmark\": \"IngestDurability\",\n  \"unit\": \"one op = one %d-item batch through the worker ingest path\",\n  \"modes\": {\n", 64
	for (i = 0; i < n; i++) printf "    %s%s\n", modes[order[i]], (i < n - 1 ? "," : "")
	printf "  }\n}\n"
}
' "$RAW" >"$OUT"

echo "bench_ingest: wrote $OUT"
cat "$OUT"
