#!/bin/sh
# Runs the intra-worker parallelism benchmarks and emits BENCH_worker.json:
# one record per ingest-pipeline configuration (inline apply vs 1/2/4/8
# background drain goroutines, measuring insert ack latency per 64-item
# batch) and one per query fan-out width (sequential vs 2/4/8 goroutines
# over 8 shards), with speedups against the sequential baselines. The host
# CPU count is recorded alongside: fan-out speedup is bounded by physical
# cores, so single-core hosts legitimately report ~1.0x there.
#
# Usage: scripts/bench_worker.sh [output.json]   (default BENCH_worker.json)
set -eu

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_worker.json}
BENCHTIME=${BENCHTIME:-50x}
CPUS=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT INT TERM

echo "bench_worker: running go test -bench 'WorkerIngestParallel|WorkerQueryFanout' -benchtime $BENCHTIME"
go test -bench 'BenchmarkWorkerIngestParallel|BenchmarkWorkerQueryFanout' -benchtime "$BENCHTIME" -run '^$' . | tee "$RAW"

awk -v cpus="$CPUS" '
/^BenchmarkWorkerIngestParallel\// {
	name = $1
	sub(/^BenchmarkWorkerIngestParallel\//, "", name)
	sub(/-[0-9]+$/, "", name)          # strip GOMAXPROCS suffix
	ns = 0
	for (i = 2; i <= NF; i++) if ($i == "ns/op") ns = $(i - 1)
	if (ns > 0) { ingest[name] = ns; iorder[ni++] = name }
}
/^BenchmarkWorkerQueryFanout\// {
	name = $1
	sub(/^BenchmarkWorkerQueryFanout\//, "", name)
	sub(/-[0-9]+$/, "", name)
	ns = 0
	for (i = 2; i <= NF; i++) if ($i == "ns/op") ns = $(i - 1)
	if (ns > 0) { fanout[name] = ns; forder[nf++] = name }
}
END {
	if (ni == 0 || nf == 0) { print "bench_worker: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
	printf "{\n  \"benchmark\": \"WorkerParallelism\",\n  \"cpus\": %d,\n", cpus
	printf "  \"ingest\": {\n    \"unit\": \"one op = one 64-item insert RPC ack (inline applies before the ack; workersN ack after buffer+WAL append)\",\n"
	base = ingest["inline"]
	for (i = 0; i < ni; i++) {
		m = iorder[i]
		printf "    \"%s\": {\"ns_per_batch\": %.0f, \"batches_per_sec\": %.1f, \"ack_speedup_vs_inline\": %.2f}%s\n",
			m, ingest[m], 1e9 / ingest[m], base / ingest[m], (i < ni - 1 ? "," : "")
	}
	printf "  },\n  \"query_fanout\": {\n    \"unit\": \"one op = one medium-coverage query over 8 shards x 20000 items\",\n"
	base = fanout["seq"]
	for (i = 0; i < nf; i++) {
		m = forder[i]
		printf "    \"%s\": {\"ns_per_query\": %.0f, \"queries_per_sec\": %.1f, \"speedup_vs_seq\": %.2f}%s\n",
			m, fanout[m], 1e9 / fanout[m], base / fanout[m], (i < nf - 1 ? "," : "")
	}
	printf "  }\n}\n"
}
' "$RAW" >"$OUT"

echo "bench_worker: wrote $OUT"
cat "$OUT"
