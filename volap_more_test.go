package volap

import (
	"math/rand"
	"testing"
	"time"
)

// Additional API-surface tests: option defaults, accessors, and error
// paths not exercised by the scenario tests.

func TestDefaultOptions(t *testing.T) {
	s := smallSchema(t)
	o := DefaultOptions(s)
	if o.Store != StoreHilbertPDC || o.Keys != MDS {
		t.Errorf("defaults = %v/%v", o.Store, o.Keys)
	}
	if err := o.defaults(); err != nil {
		t.Fatal(err)
	}
	if o.Workers != 2 || o.Servers != 1 || o.ShardsPerWorker != 4 {
		t.Errorf("sizing defaults = %d/%d/%d", o.Workers, o.Servers, o.ShardsPerWorker)
	}
	if o.SyncInterval != 3*time.Second {
		t.Errorf("sync default = %v", o.SyncInterval)
	}
	if o.Transport != "inproc" || o.Name == "" {
		t.Errorf("transport defaults = %q %q", o.Transport, o.Name)
	}
	if o.BalanceRatio != 1.25 {
		t.Errorf("ratio default = %f", o.BalanceRatio)
	}
}

func TestClusterAccessors(t *testing.T) {
	c, err := Start(testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if c.ServerAddr(0) == "" || c.ServerAddr(1) == "" {
		t.Error("server addresses empty")
	}
	if _, err := c.ClientTo(-1); err == nil {
		t.Error("negative server index should fail")
	}
	if _, err := c.ClientTo(99); err == nil {
		t.Error("out-of-range server index should fail")
	}
	// Round-robin distributes sessions.
	a, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Sync() reaches the session's server.
	if err := a.SyncNoCtx(); err != nil {
		t.Fatal(err)
	}
	st := c.BalanceStats()
	if st.Passes != 0 {
		t.Errorf("manual-balance cluster ran %d passes", st.Passes)
	}
}

func TestConnectFailure(t *testing.T) {
	if _, err := Connect("inproc://no-such-server"); err == nil {
		t.Error("connecting to a missing server should fail")
	}
}

func TestInsertValidationThroughStack(t *testing.T) {
	c, err := Start(testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, _ := c.Client()
	defer cl.Close()
	// Out-of-range coordinates are rejected by the server with a remote
	// error, not a hang or a panic.
	if err := cl.InsertNoCtx(Item{Coords: []uint64{1 << 60, 0}, Measure: 1}); err == nil {
		t.Error("out-of-range insert should fail")
	}
	if err := cl.InsertNoCtx(Item{Coords: []uint64{1}, Measure: 1}); err == nil {
		t.Error("wrong-arity insert should fail")
	}
	// The cluster still works afterwards.
	rng := rand.New(rand.NewSource(1))
	if err := cl.InsertNoCtx(randItem(rng, c.Schema())); err != nil {
		t.Fatal(err)
	}
	res, err := cl.QueryNoCtx(AllRect(c.Schema()))
	if err != nil || res.Agg.Count != 1 {
		t.Fatalf("after bad inserts: %v %v", res, err)
	}
}

func TestAddWorkerAddresses(t *testing.T) {
	c, err := Start(testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	id, err := c.AddWorker()
	if err != nil {
		t.Fatal(err)
	}
	if id != "w2" {
		t.Errorf("new worker id = %q", id)
	}
	if c.NumWorkers() != 3 {
		t.Errorf("NumWorkers = %d", c.NumWorkers())
	}
}
