package volap_test

// One testing.B benchmark per paper figure/table (plus the §IV-C bulk
// ingestion claim). These are the micro-benchmark companions of the full
// drivers in internal/bench and cmd/volap-bench: each measures the hot
// operation underlying its figure so `go test -bench=.` gives a quick
// per-operation profile, while `volap-bench <figN>` regenerates the
// figure's full table.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	volap "repro"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/image"
	"repro/internal/keys"
	"repro/internal/pbs"
	"repro/internal/rtree"
	"repro/internal/tpcds"
	"repro/internal/worker"
)

// --- shared fixtures -------------------------------------------------------

var (
	fixOnce    sync.Once
	fixHilbert core.Store
	fixPDC     core.Store
	fixBins    tpcds.BinnedQueries
	fixItems   []core.Item
)

func fixtures(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		schema := tpcds.Schema()
		gen := tpcds.NewGenerator(schema, 42, 1.1)
		fixItems = gen.Items(30000)
		fixHilbert, _ = core.NewStore(core.Config{Schema: schema, Store: core.StoreHilbertPDC})
		_ = fixHilbert.BulkLoad(fixItems)
		fixPDC, _ = core.NewStore(core.Config{Schema: schema, Store: core.StorePDC})
		for _, it := range fixItems {
			_ = fixPDC.Insert(it)
		}
		count := func(q keys.Rect) uint64 { return fixHilbert.Query(q).Count }
		fixBins = gen.GenerateBinned(count, fixHilbert.Count(), 10, 4000)
	})
}

// --- Figure 4: Hilbert PDC vs PDC query latency ---------------------------

func benchQueryBand(b *testing.B, st core.Store, band tpcds.Band) {
	fixtures(b)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Query(fixBins.Pick(rng, band))
	}
}

func BenchmarkFig4HilbertPDCQueryLow(b *testing.B) {
	fixtures(b)
	benchQueryBand(b, fixHilbert, tpcds.Low)
}
func BenchmarkFig4HilbertPDCQueryMed(b *testing.B) {
	fixtures(b)
	benchQueryBand(b, fixHilbert, tpcds.Medium)
}
func BenchmarkFig4HilbertPDCQueryHigh(b *testing.B) {
	fixtures(b)
	benchQueryBand(b, fixHilbert, tpcds.High)
}
func BenchmarkFig4PDCQueryLow(b *testing.B)  { fixtures(b); benchQueryBand(b, fixPDC, tpcds.Low) }
func BenchmarkFig4PDCQueryMed(b *testing.B)  { fixtures(b); benchQueryBand(b, fixPDC, tpcds.Medium) }
func BenchmarkFig4PDCQueryHigh(b *testing.B) { fixtures(b); benchQueryBand(b, fixPDC, tpcds.High) }

// --- Figure 5: insert latency by variant at 16 dimensions ------------------

func fig5Schema() (*volap.Schema, []core.Item) {
	schema := tpcds.SyntheticSchema(16, 2, 8)
	gen := tpcds.NewGenerator(schema, 7, 1.0)
	return schema, gen.Items(4096)
}

func BenchmarkFig5InsertRTree16d(b *testing.B) {
	schema, items := fig5Schema()
	t, _ := rtree.New(rtree.Config{Schema: schema, Kind: rtree.Classic})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.Insert(items[i%len(items)])
	}
}

func BenchmarkFig5InsertHilbertRTree16d(b *testing.B) {
	schema, items := fig5Schema()
	t, _ := rtree.New(rtree.Config{Schema: schema, Kind: rtree.HilbertRT})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.Insert(items[i%len(items)])
	}
}

func BenchmarkFig5InsertPDC16d(b *testing.B) {
	schema, items := fig5Schema()
	st, _ := core.NewStore(core.Config{Schema: schema, Store: core.StorePDC})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.Insert(items[i%len(items)])
	}
}

func BenchmarkFig5InsertHilbertPDC16d(b *testing.B) {
	schema, items := fig5Schema()
	st, _ := core.NewStore(core.Config{Schema: schema, Store: core.StoreHilbertPDC})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.Insert(items[i%len(items)])
	}
}

// --- Figure 6: load balancing primitive (serialize+split) ------------------

func BenchmarkFig6ShardSplit(b *testing.B) {
	fixtures(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := fixHilbert.SplitQuery()
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := fixHilbert.Split(h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6ShardSerialize(b *testing.B) {
	fixtures(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob := fixHilbert.Serialize()
		if i == 0 {
			b.SetBytes(int64(len(blob)))
		}
	}
}

// --- Figures 7 and 8: distributed insert and query path --------------------

var (
	clusterOnce sync.Once
	benchClus   *volap.Cluster
	benchClient *volap.Client
	benchGen    *tpcds.Generator
	benchBins   tpcds.BinnedQueries
)

func cluster(b *testing.B) {
	b.Helper()
	clusterOnce.Do(func() {
		opts := volap.DefaultOptions(tpcds.Schema())
		opts.Workers = 4
		opts.Servers = 2
		opts.SyncInterval = 200 * time.Millisecond
		opts.BalanceInterval = -1
		c, err := volap.Start(opts)
		if err != nil {
			panic(err)
		}
		benchClus = c
		benchClient, err = c.Client()
		if err != nil {
			panic(err)
		}
		benchGen = tpcds.NewGenerator(tpcds.Schema(), 42, 1.1)
		if err := benchClient.BulkLoadNoCtx(benchGen.Items(20000)); err != nil {
			panic(err)
		}
		count := func(q volap.Rect) uint64 {
			res, err := benchClient.QueryNoCtx(q)
			if err != nil {
				return 0
			}
			return res.Agg.Count
		}
		total, _ := benchClient.QueryNoCtx(volap.AllRect(benchClus.Schema()))
		benchBins = benchGen.GenerateBinned(count, total.Agg.Count, 10, 3000)
	})
}

func BenchmarkFig7ClusterInsert(b *testing.B) {
	cluster(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := benchClient.InsertNoCtx(benchGen.Item()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7ClusterQueryLow(b *testing.B)  { benchClusterQuery(b, tpcds.Low) }
func BenchmarkFig7ClusterQueryMed(b *testing.B)  { benchClusterQuery(b, tpcds.Medium) }
func BenchmarkFig7ClusterQueryHigh(b *testing.B) { benchClusterQuery(b, tpcds.High) }

func benchClusterQuery(b *testing.B, band tpcds.Band) {
	cluster(b)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := benchClient.QueryNoCtx(benchBins.Pick(rng, band)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Mixed50(b *testing.B) {
	cluster(b)
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			if err := benchClient.InsertNoCtx(benchGen.Item()); err != nil {
				b.Fatal(err)
			}
		} else {
			band := tpcds.Band(rng.Intn(3))
			if _, err := benchClient.QueryNoCtx(benchBins.Pick(rng, band)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Figure 9: routing cost ------------------------------------------------

func BenchmarkFig9RouteQuery(b *testing.B) {
	schema := tpcds.Schema()
	idx := image.NewIndex(schema, keys.MDS, 4, 8)
	gen := tpcds.NewGenerator(schema, 5, 1.1)
	for i := 0; i < 64; i++ {
		_ = idx.AddShard(image.ShardID(i), nil)
	}
	for i := 0; i < 20000; i++ {
		if _, _, err := idx.RouteInsert(gen.Item().Coords); err != nil {
			b.Fatal(err)
		}
	}
	qs := make([]keys.Rect, 256)
	for i := range qs {
		qs[i] = gen.Query()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.RouteQuery(qs[i%len(qs)])
	}
}

// --- Figure 10: PBS simulation ----------------------------------------------

func BenchmarkFig10Simulate(b *testing.B) {
	p := pbs.Params{
		InsertRate:    50000,
		InsertLatMean: 20 * time.Millisecond,
		SyncInterval:  3 * time.Second,
		PropMean:      20 * time.Millisecond,
		PropJitter:    30 * time.Millisecond,
		ExpandProb:    1e-5,
		Coverage:      0.5,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pbs.Simulate(p, time.Second, 2000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §IV-C: bulk ingestion ---------------------------------------------------

func BenchmarkBulkLoadTree(b *testing.B) {
	fixtures(b)
	schema := tpcds.Schema()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, _ := core.NewStore(core.Config{Schema: schema, Store: core.StoreHilbertPDC})
		if err := st.BulkLoad(fixItems); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(fixItems)))
}

// --- Durability: ingest cost by persistence contract ------------------------
//
// One op = one 64-item batch through the worker ingest path, so the three
// modes isolate exactly the durability overhead: off is the paper's pure
// in-memory apply, async adds the WAL append (group-committed in the
// background), sync adds an fsync barrier before the ack.
// scripts/bench_ingest.sh turns these into BENCH_ingest.json.

const ingestBatch = 64

func benchIngestDurability(b *testing.B, mode durable.Mode) {
	schema := tpcds.Schema()
	cfg := &image.ClusterConfig{Schema: schema, Store: core.StoreHilbertPDC, Keys: keys.MDS}
	w := worker.New("bench", cfg)
	defer w.Close()
	if mode != durable.ModeOff {
		d, err := durable.Open(b.TempDir(), "bench", mode, durable.Config{Metrics: w.Metrics()})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.AttachDurability(d); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.CreateShard(1); err != nil {
		b.Fatal(err)
	}
	gen := tpcds.NewGenerator(schema, 11, 1.1)
	pool := make([][]core.Item, 64)
	for i := range pool {
		pool[i] = gen.Items(ingestBatch)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Insert(ctx, 1, pool[i%len(pool)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(ingestBatch), "items/op")
}

func BenchmarkIngestDurabilityOff(b *testing.B)   { benchIngestDurability(b, durable.ModeOff) }
func BenchmarkIngestDurabilityAsync(b *testing.B) { benchIngestDurability(b, durable.ModeAsync) }
func BenchmarkIngestDurabilitySync(b *testing.B)  { benchIngestDurability(b, durable.ModeSync) }

// --- Intra-worker parallelism: ingest pipeline + query fan-out ---------------
//
// BenchmarkWorkerIngestParallel measures insert ack latency per 64-item
// batch: "inline" is the synchronous apply-before-ack path
// (IngestWorkers 0), "workersN" acks after the buffer append and lets N
// background goroutines drain. BenchmarkWorkerQueryFanout measures a
// multi-shard query across 8 shards: "seq" visits shards one at a time
// (QueryParallelism 1), "parN" fans them across N goroutines.
// scripts/bench_worker.sh turns both into BENCH_worker.json.

func benchIngestWorker(b *testing.B, ingestWorkers int) {
	schema := tpcds.Schema()
	cfg := &image.ClusterConfig{Schema: schema, Store: core.StoreHilbertPDC, Keys: keys.MDS}
	w := worker.NewWithOptions("bench", cfg, worker.Options{IngestWorkers: ingestWorkers})
	defer w.Close()
	if err := w.CreateShard(1); err != nil {
		b.Fatal(err)
	}
	gen := tpcds.NewGenerator(schema, 11, 1.1)
	pool := make([][]core.Item, 64)
	for i := range pool {
		pool[i] = gen.Items(ingestBatch)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Insert(ctx, 1, pool[i%len(pool)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	w.Flush() // drain outside the timed region; acks were the measurement
	b.ReportMetric(float64(ingestBatch), "items/op")
}

func BenchmarkWorkerIngestParallel(b *testing.B) {
	b.Run("inline", func(b *testing.B) { benchIngestWorker(b, 0) })
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", n), func(b *testing.B) { benchIngestWorker(b, n) })
	}
}

const (
	fanoutShards        = 8
	fanoutItemsPerShard = 20000
)

func benchQueryFanout(b *testing.B, par int) {
	schema := tpcds.Schema()
	cfg := &image.ClusterConfig{Schema: schema, Store: core.StoreHilbertPDC, Keys: keys.MDS}
	w := worker.NewWithOptions("bench", cfg, worker.Options{QueryParallelism: par})
	defer w.Close()
	ctx := context.Background()
	gen := tpcds.NewGenerator(schema, 13, 1.1)
	ids := make([]image.ShardID, fanoutShards)
	for i := range ids {
		ids[i] = image.ShardID(i + 1)
		if err := w.CreateShard(ids[i]); err != nil {
			b.Fatal(err)
		}
		if err := w.Insert(ctx, ids[i], gen.Items(fanoutItemsPerShard)); err != nil {
			b.Fatal(err)
		}
	}
	// Medium/high-coverage rectangles force real descents in every shard
	// (an all-space query would be answered from the root aggregates).
	count := func(q keys.Rect) uint64 {
		agg, _, err := w.QueryShards(ctx, q, ids)
		if err != nil {
			return 0
		}
		return agg.Count
	}
	bins := gen.GenerateBinned(count, uint64(fanoutShards*fanoutItemsPerShard), 10, 1000)
	rng := rand.New(rand.NewSource(17))
	qs := make([]keys.Rect, 64)
	for i := range qs {
		qs[i] = bins.Pick(rng, tpcds.Medium)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := w.QueryShards(ctx, qs[i%len(qs)], ids); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(fanoutShards), "shards/op")
}

func BenchmarkWorkerQueryFanout(b *testing.B) {
	b.Run("seq", func(b *testing.B) { benchQueryFanout(b, 1) })
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("par%d", n), func(b *testing.B) { benchQueryFanout(b, n) })
	}
}

func BenchmarkPointInsertTree(b *testing.B) {
	schema := tpcds.Schema()
	st, _ := core.NewStore(core.Config{Schema: schema, Store: core.StoreHilbertPDC})
	gen := tpcds.NewGenerator(schema, 9, 1.1)
	items := gen.Items(8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Insert(items[i%len(items)]); err != nil {
			b.Fatal(err)
		}
	}
}
