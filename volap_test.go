package volap

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/hierarchy"
	"repro/internal/tpcds"
)

// smallSchema keeps integration tests fast.
func smallSchema(tb testing.TB) *Schema {
	tb.Helper()
	return hierarchy.MustSchema(
		hierarchy.MustDimension("A",
			Level{Name: "L1", Fanout: 10},
			Level{Name: "L2", Fanout: 10}),
		hierarchy.MustDimension("B",
			Level{Name: "L1", Fanout: 40}),
	)
}

func testOptions(tb testing.TB) Options {
	o := DefaultOptions(smallSchema(tb))
	o.Workers = 2
	o.Servers = 2
	o.ShardsPerWorker = 2
	o.SyncInterval = 40 * time.Millisecond
	o.StatsInterval = 20 * time.Millisecond
	o.BalanceInterval = -1 // manual balancing in tests
	o.MinMoveItems = 64
	return o
}

func randItem(rng *rand.Rand, s *Schema) Item {
	coords := make([]uint64, s.NumDims())
	for d := range coords {
		f := rng.Float64()
		coords[d] = uint64(f * f * float64(s.Dim(d).LeafCount()))
		if coords[d] >= s.Dim(d).LeafCount() {
			coords[d] = s.Dim(d).LeafCount() - 1
		}
	}
	return Item{Coords: coords, Measure: 1}
}

func randRect(rng *rand.Rand, s *Schema) Rect {
	ivs := make([]Interval, s.NumDims())
	for d := range ivs {
		dim := s.Dim(d)
		depth := rng.Intn(dim.Depth() + 1)
		prefix := make([]uint32, depth)
		for l := 0; l < depth; l++ {
			prefix[l] = uint32(rng.Intn(int(dim.Level(l).Fanout)))
		}
		iv, err := dim.NodeInterval(depth, prefix)
		if err != nil {
			panic(err)
		}
		ivs[d] = iv
	}
	return NewRect(ivs...)
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(Options{}); err == nil {
		t.Error("missing schema should fail")
	}
	if _, err := Start(Options{Schema: smallSchema(t), Transport: "carrier-pigeon"}); err == nil {
		t.Error("unknown transport should fail")
	}
}

func TestStartStop(t *testing.T) {
	c, err := Start(testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumWorkers() != 2 || c.NumServers() != 2 {
		t.Errorf("cluster shape %d/%d", c.NumWorkers(), c.NumServers())
	}
	if c.Schema().NumDims() != 2 {
		t.Error("schema wrong")
	}
	c.Stop()
	c.Stop() // idempotent
}

// TestInsertQueryMatchesReference drives the full distributed stack and
// compares against brute force.
func TestInsertQueryMatchesReference(t *testing.T) {
	c, err := Start(testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(1))
	var ref []Item
	var batch []Item
	for i := 0; i < 3000; i++ {
		it := randItem(rng, c.Schema())
		ref = append(ref, it)
		batch = append(batch, it)
		if len(batch) == 100 {
			if err := cl.InsertBatchNoCtx(batch); err != nil {
				t.Fatal(err)
			}
			batch = nil
		}
	}
	res, err := cl.QueryNoCtx(AllRect(c.Schema()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.Count != 3000 {
		t.Fatalf("full query = %d", res.Agg.Count)
	}
	if res.Info.ShardsConsidered == 0 || res.Info.WorkersContacted == 0 {
		t.Errorf("query info empty: %+v", res.Info)
	}
	for q := 0; q < 30; q++ {
		rect := randRect(rng, c.Schema())
		res, err := cl.QueryNoCtx(rect)
		if err != nil {
			t.Fatal(err)
		}
		var want uint64
		for _, it := range ref {
			if rect.ContainsPoint(it.Coords) {
				want++
			}
		}
		if res.Agg.Count != want {
			t.Fatalf("query %v = %d, want %d", rect, res.Agg.Count, want)
		}
	}
}

func TestBulkLoad(t *testing.T) {
	c, err := Start(testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, _ := c.Client()
	defer cl.Close()
	rng := rand.New(rand.NewSource(2))
	items := make([]Item, 5000)
	for i := range items {
		items[i] = randItem(rng, c.Schema())
	}
	if err := cl.BulkLoadNoCtx(items); err != nil {
		t.Fatal(err)
	}
	res, err := cl.QueryNoCtx(AllRect(c.Schema()))
	if err != nil || res.Agg.Count != 5000 {
		t.Fatalf("after bulk: %v %v", res, err)
	}
}

// TestCrossServerFreshness checks the paper's §IV-F behaviour: a session
// on the same server sees its own inserts immediately; a session on a
// different server converges after the synchronization interval.
func TestCrossServerFreshness(t *testing.T) {
	c, err := Start(testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	a, _ := c.ClientTo(0)
	defer a.Close()
	b, _ := c.ClientTo(1)
	defer b.Close()

	rng := rand.New(rand.NewSource(3))
	items := make([]Item, 500)
	for i := range items {
		items[i] = randItem(rng, c.Schema())
	}
	if err := a.InsertBatchNoCtx(items); err != nil {
		t.Fatal(err)
	}
	// Same-server session: immediately visible.
	res, err := a.QueryNoCtx(AllRect(c.Schema()))
	if err != nil || res.Agg.Count != 500 {
		t.Fatalf("same-server query = %v %v", res, err)
	}
	// Cross-server session: converges within a few sync intervals.
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := b.QueryNoCtx(AllRect(c.Schema()))
		if err != nil {
			t.Fatal(err)
		}
		if res.Agg.Count == 500 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cross-server query stuck at %d", res.Agg.Count)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLoadBalancing adds an empty worker and checks the manager moves
// data onto it without losing anything (the Figure 6 mechanism).
func TestLoadBalancing(t *testing.T) {
	opts := testOptions(t)
	opts.Workers = 2
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, _ := c.Client()
	defer cl.Close()

	rng := rand.New(rand.NewSource(4))
	items := make([]Item, 6000)
	for i := range items {
		items[i] = randItem(rng, c.Schema())
	}
	if err := cl.BulkLoadNoCtx(items); err != nil {
		t.Fatal(err)
	}

	if _, err := c.AddWorker(); err != nil {
		t.Fatal(err)
	}
	// Give stats publication a moment, then balance until quiescent.
	time.Sleep(50 * time.Millisecond)
	totalOps := 0
	for pass := 0; pass < 30; pass++ {
		ops, err := c.RunBalancePass()
		if err != nil {
			t.Fatal(err)
		}
		totalOps += ops
		if ops == 0 && pass > 0 {
			break
		}
		time.Sleep(30 * time.Millisecond)
	}
	if totalOps == 0 {
		t.Fatal("balancer did nothing")
	}
	st := c.BalanceStats()
	if st.Migrations == 0 {
		t.Errorf("no migrations: %+v", st)
	}
	ids, loads, err := c.WorkerLoads()
	if err != nil {
		t.Fatal(err)
	}
	var total, maxL, minL uint64
	minL = ^uint64(0)
	for i, n := range loads {
		total += n
		if n > maxL {
			maxL = n
		}
		if n < minL {
			minL = n
		}
		_ = ids[i]
	}
	if total != 6000 {
		t.Fatalf("items after balancing = %d, want 6000", total)
	}
	if minL == 0 {
		t.Errorf("new worker still empty: %v", loads)
	}
	// Queries remain exact throughout (forwarding + image updates).
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := cl.QueryNoCtx(AllRect(c.Schema()))
		if err == nil && res.Agg.Count == 6000 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query after balancing = %v %v", res, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDrainWorker shrinks the cluster: all shards leave one worker and
// the data remains exact.
func TestDrainWorker(t *testing.T) {
	opts := testOptions(t)
	opts.Workers = 3
	opts.ShardsPerWorker = 2
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, _ := c.Client()
	defer cl.Close()

	rng := rand.New(rand.NewSource(8))
	items := make([]Item, 5000)
	for i := range items {
		items[i] = randItem(rng, c.Schema())
	}
	if err := cl.BulkLoadNoCtx(items); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // let worker stats publish

	moved, err := c.DrainWorker("w1")
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("nothing drained")
	}
	ids, loads, err := c.WorkerLoads()
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for i, id := range ids {
		total += loads[i]
		if id == "w1" && loads[i] != 0 {
			t.Errorf("w1 still holds %d items", loads[i])
		}
	}
	if total != 5000 {
		t.Fatalf("items after drain = %d", total)
	}
	// Queries converge to the full count (forwarding + image updates).
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := cl.QueryNoCtx(AllRect(c.Schema()))
		if err == nil && res.Agg.Count == 5000 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query after drain: %v %v", res, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestConcurrentSessions runs several client sessions (mixed inserts and
// queries) against both servers simultaneously.
func TestConcurrentSessions(t *testing.T) {
	c, err := Start(testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	const sessions = 4
	const perSession = 400
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			cl, err := c.Client()
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perSession; i++ {
				if err := cl.InsertNoCtx(randItem(rng, c.Schema())); err != nil {
					t.Error(err)
					return
				}
				if i%50 == 0 {
					if _, err := cl.QueryNoCtx(randRect(rng, c.Schema())); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(int64(s + 100))
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	cl, _ := c.Client()
	defer cl.Close()
	deadline := time.Now().Add(5 * time.Second)
	want := uint64(sessions * perSession)
	for {
		res, err := cl.QueryNoCtx(AllRect(c.Schema()))
		if err != nil {
			t.Fatal(err)
		}
		if res.Agg.Count == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("converged to %d, want %d", res.Agg.Count, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestGroupBy checks the OLAP roll-up primitive against brute force: the
// per-group counts partition the total and match reference aggregation.
func TestGroupBy(t *testing.T) {
	c, err := Start(testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, _ := c.Client()
	defer cl.Close()

	rng := rand.New(rand.NewSource(17))
	var ref []Item
	items := make([]Item, 4000)
	for i := range items {
		items[i] = randItem(rng, c.Schema())
		ref = append(ref, items[i])
	}
	if err := cl.BulkLoadNoCtx(items); err != nil {
		t.Fatal(err)
	}

	// Group by level 0 of dimension 0 (10 values).
	groups, err := cl.GroupByNoCtx(AllRect(c.Schema()), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	d0 := c.Schema().Dim(0)
	if len(groups) != int(d0.Level(0).Fanout) {
		t.Fatalf("groups = %d, want %d", len(groups), d0.Level(0).Fanout)
	}
	var total uint64
	span := d0.LeavesUnder(1)
	for _, g := range groups {
		total += g.Agg.Count
		var want uint64
		var wantSum float64
		for _, it := range ref {
			if it.Coords[0]/span == g.Value {
				want++
				wantSum += it.Measure
			}
		}
		if g.Agg.Count != want {
			t.Fatalf("group %d count = %d, want %d", g.Value, g.Agg.Count, want)
		}
		if wantSum != g.Agg.Sum {
			t.Fatalf("group %d sum = %f, want %f", g.Value, g.Agg.Sum, wantSum)
		}
	}
	if total != 4000 {
		t.Fatalf("groups sum to %d", total)
	}

	// Group within a restricted base region at a deeper level.
	base := AllRect(c.Schema())
	iv, err := c.Schema().Dim(0).NodeInterval(1, []uint32{0})
	if err != nil {
		t.Fatal(err)
	}
	base.Ivs[0] = iv
	sub, err := cl.GroupByNoCtx(base, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != int(d0.Level(1).Fanout) {
		t.Fatalf("sub-groups = %d", len(sub))
	}
	var subTotal uint64
	for _, g := range sub {
		subTotal += g.Agg.Count
	}
	if subTotal != groups[0].Agg.Count {
		t.Fatalf("drill-down sums to %d, parent group has %d", subTotal, groups[0].Agg.Count)
	}

	// Errors.
	if _, err := cl.GroupByNoCtx(AllRect(c.Schema()), 99, 0); err == nil {
		t.Error("bad dimension should fail")
	}
	if _, err := cl.GroupByNoCtx(AllRect(c.Schema()), 0, 99); err == nil {
		t.Error("bad level should fail")
	}
}

// TestTCPTransport boots the same stack over real TCP sockets.
func TestTCPTransport(t *testing.T) {
	opts := testOptions(t)
	opts.Transport = "tcp"
	opts.Servers = 1
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rng := rand.New(rand.NewSource(6))
	items := make([]Item, 800)
	for i := range items {
		items[i] = randItem(rng, c.Schema())
	}
	if err := cl.InsertBatchNoCtx(items); err != nil {
		t.Fatal(err)
	}
	res, err := cl.QueryNoCtx(AllRect(c.Schema()))
	if err != nil || res.Agg.Count != 800 {
		t.Fatalf("tcp query = %v %v", res, err)
	}
}

// TestTPCDSEndToEnd runs the paper's workload (TPC-DS schema, skewed
// generator, binned queries) through the full stack.
func TestTPCDSEndToEnd(t *testing.T) {
	opts := DefaultOptions(TPCDSSchema())
	opts.Workers = 2
	opts.Servers = 1
	opts.ShardsPerWorker = 2
	opts.SyncInterval = 50 * time.Millisecond
	opts.BalanceInterval = -1
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, _ := c.Client()
	defer cl.Close()

	gen := tpcds.NewGenerator(TPCDSSchema(), 42, 1.1)
	items := gen.Items(4000)
	if err := cl.BulkLoadNoCtx(items); err != nil {
		t.Fatal(err)
	}
	count := func(q Rect) uint64 {
		res, err := cl.QueryNoCtx(q)
		if err != nil {
			t.Fatal(err)
		}
		return res.Agg.Count
	}
	bins := gen.GenerateBinned(count, 4000, 3, 2000)
	for b := tpcds.Low; b <= tpcds.High; b++ {
		if len(bins.Rects[b]) == 0 {
			t.Errorf("band %s empty", b)
		}
	}
	// Mixed stream: 50% inserts, 50% queries (the Figure 8 workload mix).
	rng := rand.New(rand.NewSource(7))
	inserted := uint64(0)
	for i := 0; i < 400; i++ {
		if i%2 == 0 {
			if err := cl.InsertNoCtx(gen.Item()); err != nil {
				t.Fatal(err)
			}
			inserted++
		} else {
			band := tpcds.Band(rng.Intn(3))
			if _, err := cl.QueryNoCtx(bins.Pick(rng, band)); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := cl.QueryNoCtx(AllRect(c.Schema()))
	if err != nil || res.Agg.Count != 4000+inserted {
		t.Fatalf("final count = %v %v, want %d", res, err, 4000+inserted)
	}
}
