package volap

import (
	"bufio"
	"bytes"
	"math/rand"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// mustRollup parses a rollup spec against a schema or fails the test.
func mustRollup(tb testing.TB, s *Schema, spec string) RollupDef {
	tb.Helper()
	def, err := ParseRollupDef(s, spec)
	if err != nil {
		tb.Fatal(err)
	}
	return def
}

// randRollupDef draws a random valid definition: an independent random
// depth for every dimension.
func randRollupDef(rng *rand.Rand, s *Schema) RollupDef {
	def := RollupDef{Depths: make([]int, s.NumDims())}
	for d := range def.Depths {
		def.Depths[d] = rng.Intn(s.Dim(d).Depth() + 1)
	}
	return def
}

func sameAggregate(a, b Aggregate) bool {
	if a.Count == 0 && b.Count == 0 {
		return true
	}
	return a.Count == b.Count && a.Sum == b.Sum && a.Min == b.Min && a.Max == b.Max
}

// TestRollupEquivalence is the equivalence property test: with random
// rollup configurations, under concurrent ingest (async pipeline),
// balance passes, splits, and worker add/drain migrations, the rollup
// path and the raw tree path agree — bounded during churn, exactly at
// quiescence.
func TestRollupEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	opts := testOptions(t)
	// Two fixed definitions the assertions rely on, plus random ones.
	opts.Rollups = []RollupDef{
		mustRollup(t, opts.Schema, "all"),
		mustRollup(t, opts.Schema, "A:1"),
		randRollupDef(rng, opts.Schema),
		randRollupDef(rng, opts.Schema),
	}
	opts.IngestWorkers = 2   // rollup maintenance rides the drain pipeline
	opts.MaxShardItems = 400 // balance passes split oversized shards
	opts.MinMoveItems = 64
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// issued counts items handed to the cluster, including the
	// in-flight batch: no reader may ever see more than this.
	const total = 3000
	var issued atomic.Uint64
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		wrng := rand.New(rand.NewSource(12))
		for off := 0; off < total; off += 25 {
			batch := make([]Item, 25)
			for i := range batch {
				batch[i] = randItem(wrng, c.Schema())
			}
			issued.Add(25)
			if err := cl.InsertBatchNoCtx(batch); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()

	// Churn: periodic balance passes (which also split oversized
	// shards), one scale-out, one drain-driven migration wave.
	churnDone := make(chan struct{})
	stopChurn := make(chan struct{})
	defer func() {
		// Reap both goroutines before the cluster shuts down, whatever
		// path exits the test.
		select {
		case <-stopChurn:
		default:
			close(stopChurn)
		}
		<-churnDone
		<-writerDone
	}()
	go func() {
		defer close(churnDone)
		var added string
		for i := 0; ; i++ {
			select {
			case <-stopChurn:
				return
			case <-time.After(10 * time.Millisecond):
			}
			if _, err := c.RunBalancePass(); err != nil {
				t.Errorf("balance pass: %v", err)
				return
			}
			if i == 10 {
				id, err := c.AddWorker()
				if err != nil {
					t.Errorf("add worker: %v", err)
					return
				}
				added = id
			}
			if i == 30 && added != "" {
				if _, err := c.DrainWorker(added); err != nil {
					t.Errorf("drain worker: %v", err)
					return
				}
			}
		}
	}()

	// During churn: both paths stay inside the acked window on the full
	// rectangle, and never error.
	all := AllRect(c.Schema())
	for alive := true; alive; {
		select {
		case <-writerDone:
			alive = false
		default:
		}
		for _, opt := range [][]QueryOption{nil, {WithNoRollup()}} {
			res, err := cl.QueryNoCtx(all, opt...)
			if err != nil {
				t.Fatalf("query during churn: %v", err)
			}
			// Mid-churn answers may transiently undercount (a freshly
			// split shard is invisible until the next image sync — the
			// seed's convergence contract), but no item may ever be
			// counted twice: rollup cells, tree, migration queue, and
			// insertion buffer partition the data at every instant.
			if after := issued.Load(); res.Agg.Count > after {
				t.Fatalf("count %d exceeds %d issued items; info=%+v", res.Agg.Count, after, res.Info)
			}
		}
		// Random sub-rectangles exercise the race surface of both paths.
		q := randRect(rng, c.Schema())
		if _, err := cl.QueryNoCtx(q); err != nil {
			t.Fatalf("sub-rect query during churn: %v", err)
		}
		if _, err := cl.QueryNoCtx(q, WithNoRollup()); err != nil {
			t.Fatalf("raw sub-rect query during churn: %v", err)
		}
	}
	close(stopChurn)
	<-churnDone
	<-writerDone
	if t.Failed() {
		return
	}

	// Quiescent: both paths converge on the exact total.
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := cl.QueryNoCtx(all)
		if err == nil && res.Agg.Count == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rollup path never converged: %v res=%+v", err, res)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The "all" definition covers the full rectangle: the default path
	// must answer it from rollups alone.
	res, err := cl.QueryNoCtx(all)
	if err != nil {
		t.Fatal(err)
	}
	if res.Info.Source() != SourceRollup || res.Info.RollupShards == 0 {
		t.Fatalf("full query source = %q (%d rollup shards), want rollup", res.Info.Source(), res.Info.RollupShards)
	}
	raw, err := cl.QueryNoCtx(all, WithNoRollup())
	if err != nil {
		t.Fatal(err)
	}
	if raw.Info.Source() != SourceTree || raw.Info.RollupShards != 0 {
		t.Fatalf("WithNoRollup source = %q (%d rollup shards), want tree", raw.Info.Source(), raw.Info.RollupShards)
	}
	if !sameAggregate(res.Agg, raw.Agg) {
		t.Fatalf("rollup %+v != raw %+v on full rect", res.Agg, raw.Agg)
	}

	// Exact equivalence on random rectangles, covered or not.
	covered := 0
	for i := 0; i < 100; i++ {
		q := randRect(rng, c.Schema())
		res, err := cl.QueryNoCtx(q)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := cl.QueryNoCtx(q, WithNoRollup())
		if err != nil {
			t.Fatal(err)
		}
		if !sameAggregate(res.Agg, raw.Agg) {
			t.Fatalf("query %v: rollup %+v != raw %+v", q, res.Agg, raw.Agg)
		}
		anyCovers := false
		for _, def := range opts.Rollups {
			if def.Covers(c.Schema(), q) {
				anyCovers = true
				break
			}
		}
		if anyCovers {
			covered++
			if res.Info.RollupShards == 0 {
				t.Fatalf("covered query %v answered without rollups: %+v", q, res.Info)
			}
		}
	}
	if covered == 0 {
		t.Fatal("no test query was rollup-covered; property vacuous")
	}

	// Group-by equivalence on both dimensions at every level, rollup
	// path against forced raw path.
	for dim := 0; dim < c.Schema().NumDims(); dim++ {
		for level := 0; level < c.Schema().Dim(dim).Depth(); level++ {
			res, err := cl.QueryNoCtx(all, WithGroupBy(dim, level))
			if err != nil {
				t.Fatal(err)
			}
			raw, err := cl.QueryNoCtx(all, WithGroupBy(dim, level), WithNoRollup())
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Groups) != len(raw.Groups) {
				t.Fatalf("group-by %d:%d: %d groups vs %d raw", dim, level, len(res.Groups), len(raw.Groups))
			}
			var sum uint64
			for i := range res.Groups {
				if res.Groups[i].Value != raw.Groups[i].Value || !sameAggregate(res.Groups[i].Agg, raw.Groups[i].Agg) {
					t.Fatalf("group-by %d:%d group %d: %+v vs raw %+v", dim, level, i, res.Groups[i], raw.Groups[i])
				}
				sum += res.Groups[i].Agg.Count
			}
			if sum != total {
				t.Fatalf("group-by %d:%d counts sum to %d, want %d", dim, level, sum, total)
			}
		}
	}
	// The A:1 definition serves dim-0 level-0 grouping from cells alone.
	res, err = cl.QueryNoCtx(all, WithGroupBy(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Info.Source() != SourceRollup {
		t.Fatalf("group-by 0:0 source = %q, want rollup", res.Info.Source())
	}
}

// metricSum sums every series of one metric family in Prometheus text
// output (labelled gauges like rollup_cells{shard="3"} included).
func metricSum(t *testing.T, out, name string) float64 {
	t.Helper()
	var sum float64
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "# ") {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		sum += v
	}
	return sum
}

// TestRollupStaleness pins the staleness contract of the async ingest
// pipeline: a rollup-path answer includes every acknowledged item
// immediately (reads merge the insertion buffer on top of the cells),
// and the materialized cells themselves absorb acknowledged items no
// later than the next drain — observable via the rollup_cells gauge.
func TestRollupStaleness(t *testing.T) {
	opts := testOptions(t)
	opts.Rollups = []RollupDef{mustRollup(t, opts.Schema, "all"), mustRollup(t, opts.Schema, "A:1")}
	opts.IngestWorkers = 1
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(21))
	const n = 500
	for i := 0; i < n; i++ {
		if err := cl.InsertNoCtx(randItem(rng, c.Schema())); err != nil {
			t.Fatal(err)
		}
	}
	// Acked ⇒ visible to the rollup path, with zero drain-lag allowance.
	res, err := cl.QueryNoCtx(AllRect(c.Schema()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.Count != n {
		t.Fatalf("rollup-path count right after acks = %d, want %d", res.Agg.Count, n)
	}
	if res.Info.Source() != SourceRollup {
		t.Fatalf("source = %q, want rollup", res.Info.Source())
	}

	// Force the drain boundary, then the tables themselves must hold
	// every acked item: a second full drain pass has nothing to add and
	// the cells gauge is stable and nonzero.
	for _, w := range c.workers {
		w.Flush()
	}
	cells := func() float64 {
		var total float64
		for _, w := range c.workers {
			var b bytes.Buffer
			if err := w.Metrics().WritePrometheus(&b); err != nil {
				t.Fatal(err)
			}
			total += metricSum(t, b.String(), "rollup_cells")
		}
		return total
	}
	afterFirst := cells()
	if afterFirst == 0 {
		t.Fatal("rollup_cells still zero after a full drain")
	}
	for _, w := range c.workers {
		w.Flush()
	}
	if again := cells(); again != afterFirst {
		t.Fatalf("rollup_cells moved %v -> %v across an empty drain; staleness exceeded one drain interval", afterFirst, again)
	}
	// Hits were recorded for the rollup-served query above.
	var hits float64
	for _, w := range c.workers {
		var b bytes.Buffer
		if err := w.Metrics().WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		hits += metricSum(t, b.String(), "rollup_hits_total")
	}
	if hits == 0 {
		t.Fatal("rollup_hits_total stayed zero after a rollup-served query")
	}
}

// TestRollupRecoveryRestart kills a worker and restarts it over its
// durable state: rollup tables come back (from snapshot trailers and WAL
// replay) without a raw rescan having to be observable — the restarted
// worker serves rollup-path queries that agree with the raw scan.
func TestRollupRecoveryRestart(t *testing.T) {
	opts := testOptions(t)
	opts.Workers = 2
	opts.Servers = 1
	opts.SessionTTL = time.Second
	opts.Durability = DurabilitySync
	opts.DataDir = t.TempDir()
	opts.Rollups = []RollupDef{mustRollup(t, opts.Schema, "all"), mustRollup(t, opts.Schema, "A:1")}
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(31))
	const n = 2000
	items := make([]Item, n)
	for i := range items {
		items[i] = randItem(rng, c.Schema())
	}
	if err := cl.BulkLoadNoCtx(items); err != nil {
		t.Fatal(err)
	}
	// Checkpoint half the shards so recovery exercises both restore
	// paths: snapshot trailer decode and WAL-replay refold.
	for _, w := range c.workers[:1] {
		for id := ShardID(0); id < 8; id++ {
			_ = w.CheckpointShard(id) // unknown shards error; ignored
		}
	}

	if err := c.KillWorker("w1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RestartWorker("w1"); err != nil {
		t.Fatal(err)
	}

	all := AllRect(c.Schema())
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := cl.QueryNoCtx(all)
		if err == nil && !res.Info.Partial() && res.Agg.Count == n {
			if res.Info.Source() != SourceRollup {
				t.Fatalf("post-restart source = %q, want rollup", res.Info.Source())
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-restart query never converged: err=%v res=%+v", err, res)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Equivalence still holds after recovery.
	for i := 0; i < 30; i++ {
		q := randRect(rng, c.Schema())
		res, err := cl.QueryNoCtx(q)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := cl.QueryNoCtx(q, WithNoRollup())
		if err != nil {
			t.Fatal(err)
		}
		if !sameAggregate(res.Agg, raw.Agg) {
			t.Fatalf("post-restart query %v: rollup %+v != raw %+v", q, res.Agg, raw.Agg)
		}
	}
	// Grouped queries report complete info after recovery too.
	res, err := cl.QueryNoCtx(all, WithGroupBy(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Info.Partial() {
		t.Fatalf("post-restart group-by partial: %+v", res.Info)
	}
	var sum uint64
	for _, g := range res.Groups {
		sum += g.Agg.Count
	}
	if sum != n {
		t.Fatalf("post-restart group-by sums to %d, want %d", sum, n)
	}
}
