package volap

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/image"
)

// Replication benchmarks: read scaling from replica-preferring queries
// (the same data served by RF copies instead of one primary) and the
// wall-clock cost of a failover (promotion through query convergence).
// scripts/bench_replication.sh runs these and emits BENCH_replication.json.

// benchReplicaCluster boots a 2-worker cluster at the given replication
// factor with the async ingest pipeline on, seeds it, and pins a
// standing ingest backlog on one hot shard for the whole run. It returns
// a client, a point rect routed to that shard, and a refill func.
//
// The scenario is the read-path asymmetry replication buys under
// high-velocity ingest. A leader read must merge store + pending
// insertion buffer (an O(backlog) scan per query); a standby holds
// applied state only, because records ship and apply at ack time, so a
// replica read never sees the backlog. ReadPreferReplica round-robins
// the hot shard's reads across both copies.
//
// The refill func tops the backlog back up to a fixed setpoint (watching
// the hot worker's pending-items gauge) through direct worker inserts;
// the benchmark calls it between timed sections (StopTimer/StartTimer)
// so the backlog holds its depth instead of decaying at the drain pool's
// mercy. Only reads are metered — the write stream is the scenario, not
// the measured quantity, and it is identical in both configurations.
func benchReplicaCluster(b *testing.B, rf int) (*Client, Rect, func()) {
	b.Helper()
	c, err := Start(Options{
		Schema:            TPCDSSchema(),
		Workers:           2,
		Servers:           1,
		ShardsPerWorker:   2,
		BalanceInterval:   -1,
		SyncInterval:      time.Hour,
		Durability:        DurabilityAsync,
		DataDir:           b.TempDir(),
		ReplicationFactor: rf,
		IngestWorkers:     2,
		MaxPendingItems:   1 << 17,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Stop)
	cl, err := c.Client()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cl.Close)
	gen := NewGenerator(c.Schema(), 7, 1.1)
	for i := 0; i < 10; i++ {
		if err := cl.BulkLoadNoCtx(gen.Items(2000)); err != nil {
			b.Fatal(err)
		}
	}

	// The hot spot: a point rect at a seeded coordinate, plus the shard
	// and primary worker it routes to.
	probe := NewGenerator(c.Schema(), 7, 1.1).Item()
	ivs := make([]Interval, len(probe.Coords))
	for d, v := range probe.Coords {
		ivs[d] = Interval{Lo: v, Hi: v}
	}
	hotRect := NewRect(ivs...)
	hotShard, hotWorker := hotOwner(b, c, hotRect)

	// Pre-generate distinct refill batches (the worker applies them to
	// whatever shard the insert names — routing happened at the server),
	// so refills spend their time acknowledging, not generating. Distinct
	// coordinates keep the drain path honestly priced.
	const (
		backlogTarget = 60000
		refillBatch   = 2000
	)
	hotGen := NewGenerator(c.Schema(), 99, 1.1)
	batches := make([][]Item, 30)
	for i := range batches {
		batches[i] = hotGen.Items(refillBatch)
	}
	// Refill in concurrent waves: enough inserter goroutines outweigh the
	// drain pool in scheduler share, so acks outrun drains even when each
	// ack also ships to a standby (RF=2).
	const wave = 8
	next := 0
	ctx := context.Background()
	refill := func() {
		for tries := 0; pendingItems(b, c, hotWorker) < backlogTarget; tries++ {
			if tries > 100 {
				b.Fatalf("backlog never reached %d: drains outpace direct inserts", backlogTarget)
			}
			errs := make(chan error, wave)
			for g := 0; g < wave; g++ {
				go func(batch []Item) {
					errs <- c.workers[hotWorker].Insert(ctx, hotShard, batch)
				}(batches[next])
				next = (next + 1) % len(batches)
			}
			for g := 0; g < wave; g++ {
				if err := <-errs; err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	refill()
	return cl, hotRect, refill
}

// hotOwner resolves which shard holds the probe point and which cluster
// worker owns it, by asking every worker's stores directly.
func hotOwner(b *testing.B, c *Cluster, q Rect) (ShardID, int) {
	b.Helper()
	ctx := context.Background()
	names, err := c.CoordStore().Children(image.PathShards)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range names {
		id, ok := image.ParseShardPath(image.PathShards + "/" + name)
		if !ok {
			continue
		}
		for i, w := range c.workers {
			agg, searched, err := w.QueryShards(ctx, q, []image.ShardID{id})
			if err != nil || searched != 1 {
				continue
			}
			if agg.Count > 0 {
				return id, i
			}
		}
	}
	b.Fatal("no worker store contains the probe point")
	return 0, 0
}

// pendingItems reads one worker's insertion-buffer depth gauge.
func pendingItems(b *testing.B, c *Cluster, worker int) int {
	b.Helper()
	var buf bytes.Buffer
	if err := c.workers[worker].Metrics().WritePrometheus(&buf); err != nil {
		b.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		if rest, found := strings.CutPrefix(sc.Text(), "worker_ingest_queue_items "); found {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				b.Fatalf("parse worker_ingest_queue_items %q: %v", rest, err)
			}
			return int(v)
		}
	}
	b.Fatal("worker_ingest_queue_items not exported")
	return 0
}

// BenchmarkReplicaRead measures hot-shard read throughput under a
// standing ingest backlog. rf1-leader is the baseline (every read hits
// the one primary and pays the pending-buffer scan); rf2-replica spreads
// the same reads across primary + follower with bounded staleness.
func BenchmarkReplicaRead(b *testing.B) {
	for _, cfg := range []struct {
		name string
		rf   int
		opts QueryOptions
	}{
		{"rf1-leader", 1, QueryOptions{}},
		{"rf2-replica", 2, QueryOptions{Read: ReadPreferReplica}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			cl, q, refill := benchReplicaCluster(b, cfg.rf)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%5 == 0 {
					b.StopTimer()
					refill()
					b.StartTimer()
				}
				if _, _, err := cl.QueryWithNoCtx(q, cfg.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestReplicationFailoverTime measures the failover window itself: from
// the manager pass that observes the dead primary to the first complete
// query answer, with the detection TTL factored out (the fake clock
// expires the session instantly, as the chaos suite does). Prints a
// machine-readable line for scripts/bench_replication.sh:
//
//	failover_ms=<elapsed>
func TestReplicationFailoverTime(t *testing.T) {
	c, err := Start(Options{
		Schema:            TPCDSSchema(),
		Workers:           2,
		Servers:           1,
		ShardsPerWorker:   2,
		BalanceInterval:   -1,
		SyncInterval:      time.Hour,
		StatsInterval:     50 * time.Millisecond,
		SessionTTL:        time.Second,
		Durability:        DurabilitySync,
		DataDir:           t.TempDir(),
		ReplicationFactor: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	loads := seedStream(t, c, cl, 200)
	want := loads[0] + loads[1]

	clk := newChaosClock()
	c.CoordStore().SetClock(clk.now)
	if err := c.KillWorker("w1"); err != nil {
		t.Fatal(err)
	}
	clk.advance(c.opts.SessionTTL + time.Second)
	deadline := time.Now().Add(10 * time.Second)
	for {
		// The clock jump transiently expires the survivor's session too;
		// wait until it has re-registered and only the dead worker is gone.
		w0Up := c.CoordStore().Exists(image.WorkerPath("w0"))
		w1Up := c.CoordStore().Exists(image.WorkerPath("w1"))
		if w0Up && !w1Up {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("registrations never settled: w0=%v w1=%v, want true/false", w0Up, w1Up)
		}
		time.Sleep(time.Millisecond)
	}

	// The measured window: promotion pass through full query results.
	start := time.Now()
	if _, err := c.RunBalancePass(); err != nil {
		t.Fatal(err)
	}
	if got := c.BalanceStats().Promotions; got != 2 {
		t.Fatalf("promotions = %d, want 2", got)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		res, err := cl.QueryNoCtx(AllRect(c.Schema()))
		if err == nil && !res.Info.Partial() && res.Agg.Count == want {
			break
		}
		if err != nil && !errors.Is(err, ErrUnavailable) && !errors.Is(err, ErrWorkerDown) {
			t.Fatalf("failover query: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("failover never converged: err=%v res=%+v want=%d", err, res, want)
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("failover_ms=%d\n", time.Since(start).Milliseconds())
}
